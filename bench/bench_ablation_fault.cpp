// Ablation C (§4.5): what fault tolerance costs.
//
// The paper claims many-trust groups add "less than two seconds of
// overhead" for tolerating h-1 faults, because only k-(h-1) servers handle
// messages in the common case — the extra cost is the slightly larger
// group (Appendix B) during setup, plus buddy-group escrow. This bench
// measures, with real crypto: (1) group setup time vs. h, (2) the buddy
// escrow cost per server, (3) the recovery path after a catastrophic
// failure, and (4) — the live half of the ablation — completed-round
// throughput on a pipelined loopback fleet under each injected fault
// class (FaultPlan specs, the scenario harness's injection surface)
// against the fault-free baseline on the identical deployment.
//
// --smoke shrinks the sweeps for CI. Emits BENCH_bench_ablation_fault.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/client.h"
#include "src/core/round.h"
#include "src/crypto/threshold.h"
#include "src/net/faults.h"
#include "src/net/mesh.h"
#include "src/net/node_process.h"
#include "src/net/round_driver.h"
#include "src/topology/groups.h"
#include "src/util/bytes.h"

namespace atom {
namespace {

using namespace std::chrono_literals;

double Seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct FleetRun {
  size_t completed = 0;
  size_t aborted = 0;
  double seconds = 0;

  double RoundsPerSec() const {
    return seconds > 0 ? static_cast<double>(completed) / seconds : 0;
  }
};

// Runs `rounds` pipelined engine rounds over an in-process loopback fleet
// (one NodeProcess per topology group, real sockets + encrypted links),
// every server mesh carrying the given FaultPlan spec ("" = fault-free).
// The identical seed rebuilds the identical deployment and submissions
// for every fault class, so the only variable is the injected fault.
FleetRun RunFaultedFleet(const std::string& fault_spec, size_t rounds,
                         size_t users, uint64_t seed) {
  Rng rng(seed);
  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 4;
  config.params.num_groups = 2;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 32;
  config.beacon = ToBytes("bench-ablation-fault");
  config.workers = 2;
  Round round(config, rng);

  // All specs are built before the clock starts: this bench measures the
  // mixing fleet under faults, not submission crypto.
  std::vector<EngineRound> specs;
  uint64_t next_client = 1;
  for (size_t r = 0; r < rounds; r++) {
    for (size_t u = 0; u < users; u++) {
      uint32_t gid = static_cast<uint32_t>(u % round.NumGroups());
      auto sub = MakeTrapSubmission(
          round.EntryPk(gid), gid, round.TrusteePk(),
          BytesView(ToBytes("m" + std::to_string(next_client))),
          round.layout(), rng);
      sub.client_id = next_client++;
      if (!round.SubmitTrap(sub)) {
        std::fprintf(stderr, "submission rejected — bench setup broken\n");
        return {};
      }
    }
    specs.push_back(round.TakeEngineRound({}, rng));
  }

  Rng setup_rng(seed + 1);
  KemKeypair driver_key = KemKeyGen(setup_rng);
  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;
  for (uint32_t g = 0; g < round.NumGroups(); g++) {
    KemKeypair key = KemKeyGen(setup_rng);
    auto proc = std::make_unique<NodeProcess>(g + 1, Variant::kTrap, key,
                                              driver_key.pk,
                                              /*max_rounds=*/rounds + 2);
    if (!fault_spec.empty()) {
      auto plan = FaultPlan::Parse(fault_spec);
      if (plan == nullptr) {
        std::fprintf(stderr, "bad fault spec: %s\n", fault_spec.c_str());
        return {};
      }
      proc->SetFaultPlan(std::move(plan));
    }
    if (!proc->Listen(0)) {
      return {};
    }
    proc->Start();
    roster.push_back(MeshPeer{g + 1, "127.0.0.1", proc->port(), key.pk});
    hosts.push_back(g + 1);
    procs.push_back(std::move(proc));
  }
  mesh.SetRoster(roster);
  mesh.set_next_round_id(1);
  if (!mesh.ConnectAndPushRoster()) {
    return {};
  }
  for (uint32_t g = 0; g < round.NumGroups(); g++) {
    if (!mesh.SendHostGroup(hosts[g], g, round.group(g).dkg())) {
      return {};
    }
  }

  FleetRun run;
  {
    DistributedRoundDriver driver(&mesh, hosts);
    // Faulted rounds that lose a frame abort via this timeout; keep it
    // short enough that the lossy classes don't dominate wall time while
    // staying ~100x a healthy round.
    driver.set_round_timeout(15s);
    run.seconds = Seconds([&] {
      std::vector<uint64_t> tickets;
      for (EngineRound& spec : specs) {
        tickets.push_back(driver.Submit(std::move(spec)));
      }
      for (uint64_t ticket : tickets) {
        if (driver.Wait(ticket).round.aborted) {
          run.aborted++;
        } else {
          run.completed++;
        }
      }
    });
    mesh.Stop();  // join readers before the driver dies
  }
  for (auto& proc : procs) {
    proc->Stop();
  }
  return run;
}

}  // namespace
}  // namespace atom

int main(int argc, char** argv) {
  using namespace atom;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  PrintHeader("Ablation: fault-tolerance overhead (many-trust + buddies)",
              "tolerating h-1 faults adds <2s; mixing cost unchanged "
              "(threshold servers only)");
  BenchJson json("bench_ablation_fault");
  json.Bool("smoke", smoke);
  Rng rng(0xab1c);

  std::printf("\nsetup cost vs. h (f=0.2, G=1024; one dealer + one verifier "
              "measured, real DKG):\n");
  std::printf("  h | k (App. B) | deal (ms) | verify all (ms)\n");
  std::printf("  --+------------+-----------+----------------\n");
  std::vector<size_t> h_sweep = smoke ? std::vector<size_t>{1, 2}
                                      : std::vector<size_t>{1, 2, 3};
  for (size_t h : h_sweep) {
    size_t k = MinGroupSize(0.2, 1024, h);
    DkgParams params{k, k - (h - 1)};
    double deal = Seconds([&] { MakeDealing(1, params, rng); });
    std::vector<DkgDealing> dealings;
    for (uint32_t d = 1; d <= k; d++) {
      dealings.push_back(MakeDealing(d, params, rng));
    }
    double verify = Seconds([&] { VerifyDealings(1, params, dealings); });
    std::printf("  %zu | %10zu | %9.1f | %14.1f\n", h, k, deal * 1e3,
                verify * 1e3);
    size_t row = json.Row();
    json.RowStr(row, "section", "dkg_setup");
    json.RowNum(row, "h", static_cast<double>(h));
    json.RowNum(row, "k", static_cast<double>(k));
    json.RowNum(row, "deal_ms", deal * 1e3);
    json.RowNum(row, "verify_all_ms", verify * 1e3);
  }

  std::printf("\nbuddy escrow + recovery (k=33, threshold 32, 3-of-5 buddy "
              "group, real crypto):\n");
  DkgParams params{33, 32};
  auto dkg = RunDkg(params, rng);
  BuddyEscrow escrow;
  double escrow_time =
      Seconds([&] { escrow = EscrowShare(dkg.keys[7], 5, 3, rng); });
  std::optional<DkgServerKey> recovered;
  double recover_time = Seconds([&] {
    recovered = RecoverShare(dkg.pub, 8,
                             std::span(escrow.sub_shares).subspan(0, 3), 3);
  });
  std::printf("  escrow one share:   %7.1f ms\n", escrow_time * 1e3);
  std::printf("  recover + verify:   %7.1f ms (succeeded: %s)\n",
              recover_time * 1e3, recovered.has_value() ? "yes" : "NO");
  json.Num("escrow_ms", escrow_time * 1e3);
  json.Num("recover_ms", recover_time * 1e3);
  json.Bool("recover_ok", recovered.has_value());

  // ---- Live fleet: round throughput per fault class vs fault-free.
  const size_t rounds = smoke ? 3 : 10;
  const size_t users = smoke ? 4 : 8;
  const uint64_t seed = 0xfa111;
  struct FaultClass {
    const char* name;
    const char* spec;  // FaultPlan grammar (src/net/faults.h)
  };
  const FaultClass classes[] = {
      {"baseline", ""},
      {"delay", "seed=7;delay=5@0.5"},
      {"duplicate", "seed=7;dup=0.3"},
      {"stall", "seed=7;stall=3"},
      {"corrupt", "seed=7;corrupt=0.02"},
  };

  std::printf("\nround throughput per fault class (pipelined loopback "
              "fleet, %zu rounds x %zu users,\nTrap variant, faults on "
              "every server mesh). delay/stall are latency-only; "
              "duplicate\nis a nonce REPLAY and corrupt is tampering — "
              "SecureLink kills those links by\ndesign, so their rounds "
              "may abort (bounded by the driver timeout), never hang:\n",
              rounds, users);
  std::printf("  class     | completed | aborted | elapsed (s) | rounds/s "
              "| vs baseline\n");
  std::printf("  ----------+-----------+---------+-------------+----------"
              "+------------\n");
  double baseline_rps = 0;
  for (const FaultClass& fc : classes) {
    FleetRun run = RunFaultedFleet(fc.spec, rounds, users, seed);
    double rps = run.RoundsPerSec();
    if (std::strcmp(fc.name, "baseline") == 0) {
      baseline_rps = rps;
    }
    double ratio = baseline_rps > 0 ? rps / baseline_rps : 0;
    std::printf("  %-9s | %9zu | %7zu | %11.2f | %8.2f | %10.2fx\n",
                fc.name, run.completed, run.aborted, run.seconds, rps,
                ratio);
    size_t row = json.Row();
    json.RowStr(row, "section", "fault_throughput");
    json.RowStr(row, "fault_class", fc.name);
    json.RowStr(row, "fault_spec", fc.spec);
    json.RowNum(row, "rounds", static_cast<double>(rounds));
    json.RowNum(row, "users_per_round", static_cast<double>(users));
    json.RowNum(row, "completed", static_cast<double>(run.completed));
    json.RowNum(row, "aborted", static_cast<double>(run.aborted));
    json.RowNum(row, "elapsed_s", run.seconds);
    json.RowNum(row, "rounds_per_sec", rps);
    json.RowNum(row, "vs_baseline", ratio);
    // The harness exists to catch hangs: a class that completed nothing
    // AND aborted nothing wedged, which is a hard failure.
    if (run.completed + run.aborted != rounds) {
      std::fprintf(stderr, "fault class %s lost rounds (%zu + %zu != %zu)\n",
                   fc.name, run.completed, run.aborted, rounds);
      return 1;
    }
  }

  std::printf("\nShape check: all setup overheads well under the paper's "
              "2-second budget (the\nincrease from h=1 to h=3 is one or two "
              "extra servers' worth of DKG work);\ndelay/stall cost only "
              "latency, while replay/tamper classes convert into\n"
              "timeout-bounded aborts — the abort-or-complete liveness "
              "contract, priced.\n");
  return 0;
}
