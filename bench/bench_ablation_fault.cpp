// Ablation C (§4.5): what fault tolerance costs.
//
// The paper claims many-trust groups add "less than two seconds of
// overhead" for tolerating h-1 faults, because only k-(h-1) servers handle
// messages in the common case — the extra cost is the slightly larger
// group (Appendix B) during setup, plus buddy-group escrow. This bench
// measures, with real crypto: (1) group setup time vs. h, (2) the buddy
// escrow cost per server, and (3) the recovery path after a catastrophic
// failure.
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/crypto/threshold.h"
#include "src/topology/groups.h"

namespace atom {
namespace {

double Seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace
}  // namespace atom

int main() {
  using namespace atom;
  PrintHeader("Ablation: fault-tolerance overhead (many-trust + buddies)",
              "tolerating h-1 faults adds <2s; mixing cost unchanged "
              "(threshold servers only)");
  Rng rng(0xab1c);

  std::printf("\nsetup cost vs. h (f=0.2, G=1024; one dealer + one verifier "
              "measured, real DKG):\n");
  std::printf("  h | k (App. B) | deal (ms) | verify all (ms)\n");
  std::printf("  --+------------+-----------+----------------\n");
  for (size_t h : {1u, 2u, 3u}) {
    size_t k = MinGroupSize(0.2, 1024, h);
    DkgParams params{k, k - (h - 1)};
    double deal = Seconds([&] { MakeDealing(1, params, rng); });
    std::vector<DkgDealing> dealings;
    for (uint32_t d = 1; d <= k; d++) {
      dealings.push_back(MakeDealing(d, params, rng));
    }
    double verify = Seconds([&] { VerifyDealings(1, params, dealings); });
    std::printf("  %zu | %10zu | %9.1f | %14.1f\n", h, k, deal * 1e3,
                verify * 1e3);
  }

  std::printf("\nbuddy escrow + recovery (k=33, threshold 32, 3-of-5 buddy "
              "group, real crypto):\n");
  DkgParams params{33, 32};
  auto dkg = RunDkg(params, rng);
  BuddyEscrow escrow;
  double escrow_time =
      Seconds([&] { escrow = EscrowShare(dkg.keys[7], 5, 3, rng); });
  std::optional<DkgServerKey> recovered;
  double recover_time = Seconds([&] {
    recovered = RecoverShare(dkg.pub, 8,
                             std::span(escrow.sub_shares).subspan(0, 3), 3);
  });
  std::printf("  escrow one share:   %7.1f ms\n", escrow_time * 1e3);
  std::printf("  recover + verify:   %7.1f ms (succeeded: %s)\n",
              recover_time * 1e3, recovered.has_value() ? "yes" : "NO");
  std::printf("\nShape check: all overheads well under the paper's 2-second "
              "budget; the\nincrease from h=1 to h=3 is one or two extra "
              "servers' worth of DKG work.\n");
  return 0;
}
