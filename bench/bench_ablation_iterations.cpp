// Ablation F (§3): how many mixing iterations does the square network need?
//
// The paper runs T = 10 square-network iterations on Håstad's O(1)-round
// guarantee but reports no mixing-quality data. This bench measures the
// total-variation distance from uniform of a tracked message's exit
// distribution (and of a message-pair joint distribution, which catches
// correlations the marginal misses) as T grows — empirically justifying
// the choice of T and quantifying the latency/anonymity trade.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/topology/mixquality.h"

int main() {
  using namespace atom;
  PrintHeader("Ablation: mixing quality vs. iterations (square network)",
              "Hastad: near-uniform after O(1) iterations; the paper uses "
              "T = 10");
  Rng rng(0xab1e);
  constexpr size_t kTrials = 4000;

  std::printf("\n4x4 square network (16 messages, %zu trials; sampling "
              "noise floor ~0.02):\n",
              kTrials);
  std::printf("  T  | marginal TV | joint TV\n");
  std::printf("  ---+-------------+---------\n");
  for (size_t iterations : {1u, 2u, 3u, 4u, 6u, 8u, 10u}) {
    SquareTopology topo(4, iterations);
    auto quality = MeasureMixQuality(topo, 4, kTrials, rng);
    std::printf("  %2zu | %11.3f | %8.3f\n", iterations,
                quality.marginal_tv, quality.joint_tv);
  }

  std::printf("\niterated butterfly on 8 vertices (16 messages):\n");
  std::printf("  passes | layers | marginal TV | joint TV\n");
  std::printf("  -------+--------+-------------+---------\n");
  for (size_t passes : {1u, 2u, 3u, 5u}) {
    ButterflyTopology topo(3, passes);
    auto quality = MeasureMixQuality(topo, 2, kTrials, rng);
    std::printf("  %6zu | %6zu | %11.3f | %8.3f\n", passes,
                topo.NumLayers(), quality.marginal_tv, quality.joint_tv);
  }

  std::printf("\nShape check: the square network's TV distance collapses to "
              "the sampling noise\nfloor within a handful of iterations "
              "(Hastad's O(1)); one butterfly pass is\nvisibly non-uniform "
              "and needs ~log(M) passes, matching Czumaj-Vocking.\n");
  return 0;
}
