// Ablation D (§4.7): pipelining — trading latency for throughput.
//
// The paper notes that Atom can assign disjoint server sets to the
// network's layers and admit a new batch every "one group's worth of
// latency", but does not evaluate it ("latency is more important for the
// applications we consider"). This bench quantifies the trade: sequential
// rounds deliver M messages per full round; the pipelined network delivers
// M messages per beat (one layer time), at the cost of each layer owning
// only 1/T of the servers.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace atom;
  PrintHeader("Ablation: pipelining (throughput mode, §4.7)",
              "pipelined Atom outputs one batch per layer-time instead of "
              "per round (not evaluated in the paper)");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xab1d);

  NetworkModel net = NetworkModel::TorLike(1024, rng);
  std::printf("\n1,024 servers, varying batch size:\n");
  std::printf("  batch     | sequential msg/s | pipelined msg/s | gain | "
              "latency seq (min) | pipe (min)\n");
  std::printf("  ----------+------------------+-----------------+------+"
              "-------------------+-----------\n");
  for (size_t messages : {20'000u, 100'000u, 1'000'000u}) {
    auto config = PaperDeployment(1024, messages, Variant::kTrap, 160);
    auto seq = EstimateRound(config, net, costs);
    auto pipe = EstimatePipelined(config, net, costs);
    double seq_tput =
        static_cast<double>(config.total_messages) / seq.total_seconds;
    std::printf("  %9zu | %16.0f | %15.0f | %3.1fx | %17.1f | %9.1f\n",
                messages, seq_tput, pipe.throughput_msgs_per_second,
                pipe.throughput_msgs_per_second / seq_tput,
                seq.total_seconds / 60.0, pipe.latency_seconds / 60.0);
  }
  std::printf("\nShape check: at light load (latency-bound: WAN barriers "
              "dominate) pipelining\napproaches a T-fold throughput gain; "
              "at heavy load the aggregate-compute floor\nbinds and the "
              "gain shrinks — each message still costs the same core-"
              "seconds.\nThis is why the paper reserves pipelining for "
              "throughput-oriented deployments.\n");
  return 0;
}
