// Ablation E (§4.7): staggering server positions across groups.
//
// "To ensure that every server is active as much as possible, we stagger
// the position of a server when it appears in different groups." This bench
// runs the discrete-event simulation of one mixing iteration over shared
// servers, comparing an aligned layout (every server always at the same
// chain position — only N/k servers can ever be 'first') against the
// staggered layout. Staggering should recover close to the work/capacity
// lower bound; alignment should serialize the waves.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/stagger.h"

int main() {
  using namespace atom;
  PrintHeader("Ablation: §4.7 position staggering (DES over shared hosts)",
              "staggering minimizes idle time; naive layouts leave servers "
              "waiting on each other");

  std::printf("\n  servers | k  | layout    | makespan (s) | utilization\n");
  std::printf("  --------+----+-----------+--------------+------------\n");
  for (size_t k : {8u, 16u}) {
    size_t servers = k * k;  // k position classes of k servers
    NetworkModel net = NetworkModel::Uniform(servers, /*cores=*/1, 100e6);
    LayerSimConfig config;
    config.step_seconds = 1.0;
    config.hop_latency_seconds = 0.05;

    config.groups = AlignedLayout(servers, k);
    auto aligned = SimulateLayer(config, net);
    config.groups = StaggeredLayout(servers, k);
    auto staggered = SimulateLayer(config, net);

    std::printf("  %7zu | %2zu | aligned   | %12.1f | %10.2f\n", servers, k,
                aligned.makespan_seconds, aligned.utilization);
    std::printf("  %7zu | %2zu | staggered | %12.1f | %10.2f\n", servers, k,
                staggered.makespan_seconds, staggered.utilization);
    std::printf("  %7zu | %2zu | gain      | %11.1fx |\n", servers, k,
                aligned.makespan_seconds / staggered.makespan_seconds);
  }
  std::printf("\nShape check: the aligned layout pipelines but idles every "
              "position class during\nwarm-up and drain; staggering gives "
              "each server one chain step per wave, pushing\nutilization "
              "toward 1 and shaving the makespan — the §4.7 claim.\n");
  return 0;
}
