// Ablation A (§3 discussion): square network vs. iterated butterfly.
//
// The paper chooses Håstad's square network over the iterated butterfly
// because of its shallower depth: T ∈ O(1) (10 in practice) versus
// T ∈ O(log² G). This bench quantifies that choice: per-network depth,
// per-server ciphertext load (the C(M,N) scalability metric of §2.2), and
// the modeled end-to-end mixing time for both topologies.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/topology/permnet.h"

int main() {
  using namespace atom;
  PrintHeader("Ablation: square vs. iterated-butterfly topology",
              "square T=O(1) beats butterfly T=O(log^2 G) in depth; both "
              "scale horizontally");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xab1a);
  constexpr size_t kMessages = 1'000'000;

  std::printf("\n  groups | sq depth | bf depth | sq msgs/srv | bf msgs/srv "
              "| sq time(h) | bf time(h)\n");
  std::printf("  -------+----------+----------+-------------+-------------+"
              "------------+-----------\n");
  for (size_t log2g : {6u, 8u, 10u, 12u}) {
    size_t groups = size_t{1} << log2g;
    SquareTopology square(groups, 10);
    ButterflyTopology butterfly(log2g, ButterflyPassesFor(log2g));

    double per_group = 2.0 * kMessages / static_cast<double>(groups);
    double sq_load = per_group * static_cast<double>(square.NumLayers());
    double bf_load = per_group * static_cast<double>(butterfly.NumLayers());

    NetworkModel net = NetworkModel::TorLike(groups, rng);
    auto config = PaperDeployment(groups, kMessages, Variant::kTrap, 160);
    config.params.iterations = square.NumLayers();
    double sq_time = EstimateRound(config, net, costs).total_seconds;
    config.params.iterations = butterfly.NumLayers();
    // Butterfly layers have β = 2: connection overhead is per-link.
    config.per_connection_seconds *= 2.0 / static_cast<double>(groups);
    double bf_time = EstimateRound(config, net, costs).total_seconds;

    std::printf("  %6zu | %8zu | %8zu | %11.0f | %11.0f | %10.2f | %9.2f\n",
                groups, square.NumLayers(), butterfly.NumLayers(), sq_load,
                bf_load, sq_time / 3600.0, bf_time / 3600.0);
  }
  std::printf("\nShape check: butterfly depth (and total per-server load) "
              "grows with log^2(G);\nthe square network's fixed depth wins "
              "end-to-end, as the paper argues, while the\nbutterfly's O(1) "
              "fan-out avoids the G^2 connection overhead at extreme "
              "scale.\n");
  return 0;
}
