// Ablation B (§6.1): the cost of proactive security — NIZK variant vs.
// trap variant, end to end.
//
// The paper estimates "a full Atom network using NIZKs would be four times
// slower than a trap-based Atom network". This bench compares the two
// variants at deployment scale with the calibrated model, and also reports
// the per-message crypto budget behind the ratio (the trap variant pays 2x
// messages; the NIZK variant pays proof generation + verification on every
// hop).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace atom;
  PrintHeader("Ablation: NIZK variant vs. trap variant, end to end",
              "NIZK ~4x slower at equal message load (§6.1)");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xab1b);

  // Per-element crypto budget per hop (one server's step).
  double trap_ops = costs.shuffle_per_msg + costs.reenc;
  double nizk_ops = costs.shuffle_per_msg + costs.shuf_prove_per_msg +
                    costs.shuf_verify_per_msg + costs.reenc +
                    costs.reenc_prove + costs.reenc_verify;
  std::printf("\nper-element, per-hop crypto cost:\n");
  std::printf("  trap: %.3f ms    nizk: %.3f ms    ratio %.2fx "
              "(trap additionally doubles the\n  element count with traps, "
              "so the end-to-end gap is about half the raw ratio)\n",
              trap_ops * 1e3, nizk_ops * 1e3, nizk_ops / trap_ops);

  std::printf("\nend-to-end at 1M messages:\n");
  std::printf("  servers | trap (min) | nizk (min) | ratio\n");
  std::printf("  --------+------------+------------+------\n");
  for (size_t servers : {256u, 1024u}) {
    NetworkModel net = NetworkModel::TorLike(servers, rng);
    double trap =
        EstimateRound(PaperDeployment(servers, 1'000'000, Variant::kTrap,
                                      160),
                      net, costs)
            .total_seconds;
    double nizk =
        EstimateRound(PaperDeployment(servers, 1'000'000, Variant::kNizk,
                                      160),
                      net, costs)
            .total_seconds;
    std::printf("  %7zu | %10.1f | %10.1f | %4.1fx\n", servers, trap / 60.0,
                nizk / 60.0, nizk / trap);
  }
  std::printf("\nShape check: the ratio should sit in the ~3-5x band the "
              "paper reports.\n");
  return 0;
}
