// Shared helpers for the benchmark harness: one cached live calibration of
// the cost model (each binary calibrates once) and uniform table printing,
// so every bench emits a paper-style table that EXPERIMENTS.md can quote.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/message.h"
#include "src/sim/costmodel.h"
#include "src/sim/netsim.h"
#include "src/util/rng.h"

namespace atom {

inline const CostModel& CalibratedCosts() {
  static const CostModel costs = [] {
    std::printf("# calibrating cost model on this machine "
                "(real crypto, one-time)...\n");
    Rng rng(0xca11b7a7e0ULL);
    return CostModel::Measure(rng, 48);
  }();
  return costs;
}

// The paper's deployment configuration (§6.2): groups of 33 with one
// tolerated failure (h=2, threshold 32), T=10 square-network iterations.
inline NetSimConfig PaperDeployment(size_t servers, size_t messages,
                                    Variant variant, size_t message_len,
                                    size_t dummies = 0) {
  NetSimConfig config;
  config.params.variant = variant;
  config.params.num_servers = servers;
  config.params.num_groups = servers;  // one group per server slot
  config.params.group_size = 33;
  config.params.honest_needed = 2;
  config.params.iterations = 10;
  config.params.message_len = message_len;
  config.total_messages = messages;
  config.dummy_messages = dummies;
  config.components = LayoutFor(variant, message_len).num_points;
  return config;
}

inline void PrintHeader(const char* title, const char* paper_claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

// Machine-readable sibling of the printed tables: collects flat key/value
// pairs plus row records and writes BENCH_<name>.json next to the text
// output, so the perf trajectory is tracked across PRs instead of living
// only in scrollback. Values are numbers, strings, or bools; rows share
// one flat schema per bench.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() { Write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Num(const std::string& key, double value) {
    fields_.push_back({key, NumberRepr(value)});
  }
  void Str(const std::string& key, const std::string& value) {
    fields_.push_back({key, Quote(value)});
  }
  void Bool(const std::string& key, bool value) {
    fields_.push_back({key, value ? "true" : "false"});
  }

  // Appends one row record; pass alternating key, numeric value pairs
  // through RowNum on the returned index.
  size_t Row() {
    rows_.emplace_back();
    return rows_.size() - 1;
  }
  void RowNum(size_t row, const std::string& key, double value) {
    rows_[row].push_back({key, NumberRepr(value)});
  }
  void RowStr(size_t row, const std::string& key, const std::string& value) {
    rows_[row].push_back({key, Quote(value)});
  }

 private:
  using Field = std::pair<std::string, std::string>;

  static std::string NumberRepr(double value) {
    // JSON has no inf/nan (a zero-duration timing section can produce
    // either); null keeps the file parseable.
    if (!std::isfinite(value)) {
      return "null";
    }
    char buf[64];
    // Exactly representable integers print without decimal noise (the
    // cast is UB outside long long's range, hence the bound); everything
    // else gets 6 significant digits — plenty for perf tracking.
    if (std::abs(value) < 9.0e15 &&
        value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    }
    return buf;
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out.push_back(' ');
      } else {
        out.push_back(c);
      }
    }
    out.push_back('"');
    return out;
  }

  static void WriteFields(std::FILE* f, const std::vector<Field>& fields) {
    for (size_t i = 0; i < fields.size(); i++) {
      std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                   Quote(fields[i].first).c_str(),
                   fields[i].second.c_str());
    }
  }

  void Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return;  // an unwritable cwd must not fail the bench itself
    }
    std::fprintf(f, "{");
    std::fprintf(f, "\"bench\": %s", Quote(name_).c_str());
    if (!fields_.empty()) {
      std::fprintf(f, ", ");
      WriteFields(f, fields_);
    }
    if (!rows_.empty()) {
      std::fprintf(f, ", \"rows\": [");
      for (size_t r = 0; r < rows_.size(); r++) {
        std::fprintf(f, "%s{", r == 0 ? "" : ", ");
        WriteFields(f, rows_[r]);
        std::fprintf(f, "}");
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("# wrote %s\n", path.c_str());
  }

  std::string name_;
  std::vector<Field> fields_;
  std::vector<std::vector<Field>> rows_;
};

}  // namespace atom

#endif  // BENCH_BENCH_COMMON_H_
