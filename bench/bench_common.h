// Shared helpers for the benchmark harness: one cached live calibration of
// the cost model (each binary calibrates once) and uniform table printing,
// so every bench emits a paper-style table that EXPERIMENTS.md can quote.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>

#include "src/core/message.h"
#include "src/sim/costmodel.h"
#include "src/sim/netsim.h"
#include "src/util/rng.h"

namespace atom {

inline const CostModel& CalibratedCosts() {
  static const CostModel costs = [] {
    std::printf("# calibrating cost model on this machine "
                "(real crypto, one-time)...\n");
    Rng rng(0xca11b7a7e0ULL);
    return CostModel::Measure(rng, 48);
  }();
  return costs;
}

// The paper's deployment configuration (§6.2): groups of 33 with one
// tolerated failure (h=2, threshold 32), T=10 square-network iterations.
inline NetSimConfig PaperDeployment(size_t servers, size_t messages,
                                    Variant variant, size_t message_len,
                                    size_t dummies = 0) {
  NetSimConfig config;
  config.params.variant = variant;
  config.params.num_servers = servers;
  config.params.num_groups = servers;  // one group per server slot
  config.params.group_size = 33;
  config.params.honest_needed = 2;
  config.params.iterations = 10;
  config.params.message_len = message_len;
  config.total_messages = messages;
  config.dummy_messages = dummies;
  config.components = LayoutFor(variant, message_len).num_points;
  return config;
}

inline void PrintHeader(const char* title, const char* paper_claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace atom

#endif  // BENCH_BENCH_COMMON_H_
