// §7 "Estimated deployment costs": what it costs a volunteer to run an
// Atom server. The paper rate-matches compute and bandwidth: a 4-core
// server reencrypts ~2,700 msg/s and shuffles ~9,200 msg/s (32-byte
// messages), needing ~90-300 KB/s of bandwidth — about $7.20/month of AWS
// egress against ~$146/month of compute. We reproduce the computation from
// this machine's measured primitive costs.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/groupsim.h"

int main() {
  using namespace atom;
  PrintHeader("§7 deployment-cost estimate (rate-matched bandwidth)",
              "4-core server: ~2700 reenc/s, ~9200 shuffle/s, <=300KB/s "
              "=> ~$7.2/mo bandwidth vs ~$146/mo compute");
  const CostModel& costs = CalibratedCosts();

  // The paper quotes per-stream rates (1/Table-3 cost) and counts one
  // 33-byte encoded point per routed message on the wire.
  double reenc_rate = 1.0 / costs.reenc;
  double shuffle_rate = 1.0 / costs.shuffle_per_msg;
  double reenc_bw = reenc_rate * 33.0;
  double shuffle_bw = shuffle_rate * 33.0;
  std::printf("\nper-stream crypto throughput (this machine):\n");
  std::printf("  reencrypt : %7.0f msg/s  (paper: ~2700)  -> %6.0f KB/s "
              "(paper: ~90)\n",
              reenc_rate, reenc_bw / 1e3);
  std::printf("  shuffle   : %7.0f msg/s  (paper: ~9200)  -> %6.0f KB/s "
              "(paper: ~300)\n",
              shuffle_rate, shuffle_bw / 1e3);

  double worst_bw = std::max(reenc_bw, shuffle_bw);
  double monthly_gb = worst_bw * 86400 * 30 / 1e9;
  std::printf("\nrate-matched egress: %.0f GB/month\n", monthly_gb);
  std::printf("  at $0.09/GB list egress : ~$%.0f/month\n",
              monthly_gb * 0.09);
  std::printf("  vs compute rental       : ~$146/month (4-core), "
              "~$1165/month (36-core)\n");
  std::printf("\nShape check: a server saturates its CPU long before a "
              "commodity uplink — the\npaper's conclusion that Atom "
              "volunteers are compute-bound, not bandwidth-bound\n(<1 MB/s "
              "per server; Vuvuzela needs 166 MB/s).\n");
  return 0;
}
