// Figure 10-style throughput for the DISTRIBUTED deployment (§4.7): how
// much does overlapping rounds across server processes buy over running
// one round at a time on the same mesh, and what does the wire cost
// against the in-process engine?
//
// Three executors drive identical seeded EngineRound specs:
//
//   engine             RoundEngine, in process (the PR 1-2 pipeline).
//   mesh-sequential    DistributedRoundDriver over loopback TCP servers,
//                      Submit -> Wait one round at a time (the pre-refactor
//                      deployment shape: a global barrier on the wire).
//   mesh-pipelined     Same driver, all rounds submitted before any Wait:
//                      round r+1's intake mixes while round r drains — the
//                      paper's "new batch every layer-time" mode.
//
// The servers are real NodeProcess instances behind encrypted loopback
// links (full wire serialization, control plane, per-round lanes); they
// share this process so the bench needs no child-process management — the
// multi-process twin is examples/distributed_nodes --tcp --pipelined.
// Each server gets its own small ThreadPool (mirroring the real
// one-pool-per-process deployment) and the mesh's netem-style send-delay
// knob emulates WAN hop latency: that is exactly the idle bubble Figure
// 10's pipelining exists to fill, and what makes the gain visible even on
// a single-core host where pure CPU overlap cannot help.
//
// Emits BENCH_distributed_pipeline.json next to the text table and exits
// nonzero if pipelined-over-mesh throughput is not strictly above
// sequential-over-mesh — the property this refactor exists to deliver.
//
//   ./build/bench/bench_distributed_pipeline [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/round.h"
#include "src/net/node_process.h"
#include "src/net/round_driver.h"
#include "src/util/parallel.h"

namespace {

using namespace atom;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Fixture {
  std::unique_ptr<Round> round;
  uint64_t next_client = 1;
  size_t users_per_round = 0;
  size_t layers = 0;  // == config.params.iterations
  Rng rng{uint64_t{0xd15f10}};

  explicit Fixture(bool smoke) {
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = 6;
    config.params.num_groups = smoke ? 2 : 4;
    config.params.group_size = 3;
    config.params.honest_needed = 1;
    config.params.iterations = smoke ? 2 : 4;
    config.params.message_len = 64;
    config.beacon = ToBytes("bench-distributed-pipeline");
    config.workers = 1;  // leave cores for cross-round overlap
    users_per_round = smoke ? 4 : 12;
    layers = config.params.iterations;
    round = std::make_unique<Round>(config, rng);
  }

  // Submits one round's users and drains them into a spec.
  EngineRound TakeSpec() {
    for (size_t u = 0; u < users_per_round; u++) {
      uint32_t gid = static_cast<uint32_t>(u % round->NumGroups());
      std::string msg = "msg " + std::to_string(next_client);
      auto sub = MakeTrapSubmission(round->EntryPk(gid), gid,
                                    round->TrusteePk(),
                                    BytesView(ToBytes(msg)),
                                    round->layout(), rng);
      sub.client_id = next_client++;
      if (!round->SubmitTrap(sub)) {
        std::fprintf(stderr, "submission rejected\n");
        std::exit(1);
      }
    }
    return round->TakeEngineRound({}, rng);
  }

  std::vector<EngineRound> TakeSpecs(size_t n) {
    std::vector<EngineRound> specs;
    for (size_t i = 0; i < n; i++) {
      specs.push_back(TakeSpec());
    }
    return specs;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintHeader("Distributed pipelined rounds (loopback TCP mesh, measured)",
              "§4.7/Fig 10: a new batch enters the network every "
              "layer-time once rounds overlap");

  Fixture fx(smoke);
  const size_t in_flight = smoke ? 3 : 4;
  const size_t width = fx.round->NumGroups();
  const size_t layers = fx.layers;
  const double msgs_per_round =
      static_cast<double>(fx.users_per_round);

  // ---- In-process engine baseline.
  std::vector<EngineRound> engine_specs = fx.TakeSpecs(in_flight);
  double engine_seconds = 0;
  {
    RoundEngine engine(&ThreadPool::Shared());
    auto t0 = Clock::now();
    std::vector<uint64_t> tickets;
    for (EngineRound& spec : engine_specs) {
      tickets.push_back(engine.Submit(std::move(spec)));
    }
    for (uint64_t ticket : tickets) {
      auto result = engine.Wait(ticket);
      if (result.aborted) {
        std::fprintf(stderr, "engine round aborted: %s\n",
                     result.abort_reason.c_str());
        return 1;
      }
    }
    engine_seconds = SecondsSince(t0);
  }

  // ---- The loopback fleet: one NodeProcess per topology group behind
  // real encrypted sockets (shared pool; see header comment).
  // Emulated one-way WAN latency per frame. Loopback is ~free; this is
  // the stall pipelining hides (§4.7's motivation is exactly that WAN
  // links leave servers idle between layers).
  const auto wan_delay = std::chrono::milliseconds(smoke ? 40 : 80);
  Rng setup_rng = Rng::FromOsEntropy();
  KemKeypair driver_key = KemKeyGen(setup_rng);
  std::vector<std::unique_ptr<ThreadPool>> pools;
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;
  for (uint32_t g = 0; g < width; g++) {
    KemKeypair key = KemKeyGen(setup_rng);
    pools.push_back(std::make_unique<ThreadPool>(3));
    auto proc = std::make_unique<NodeProcess>(g + 1, Variant::kTrap, key,
                                              driver_key.pk, /*max_rounds=*/8,
                                              pools.back().get());
    proc->set_wire_delay(wan_delay);
    if (!proc->Listen(0)) {
      std::fprintf(stderr, "listen failed\n");
      return 1;
    }
    proc->Start();
    roster.push_back(MeshPeer{g + 1, "127.0.0.1", proc->port(), key.pk});
    hosts.push_back(g + 1);
    procs.push_back(std::move(proc));
  }
  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  mesh.SetRoster(roster);
  if (!mesh.ConnectAndPushRoster()) {
    std::fprintf(stderr, "roster push failed\n");
    return 1;
  }
  for (uint32_t g = 0; g < width; g++) {
    if (!mesh.SendHostGroup(hosts[g], g, fx.round->group(g).dkg())) {
      std::fprintf(stderr, "host-group push failed\n");
      return 1;
    }
  }

  double seq_seconds = 0, pipe_seconds = 0;
  {
    DistributedRoundDriver driver(&mesh, hosts);
    driver.set_round_timeout(std::chrono::seconds(120));

    // ---- Sequential over the mesh: a global barrier between rounds.
    std::vector<EngineRound> seq_specs = fx.TakeSpecs(in_flight);
    auto t1 = Clock::now();
    for (EngineRound& spec : seq_specs) {
      auto result = driver.Wait(driver.Submit(std::move(spec)));
      if (result.aborted) {
        std::fprintf(stderr, "sequential mesh round aborted: %s\n",
                     result.abort_reason.c_str());
        return 1;
      }
    }
    seq_seconds = SecondsSince(t1);

    // ---- Pipelined over the mesh: every round in flight at once.
    std::vector<EngineRound> pipe_specs = fx.TakeSpecs(in_flight);
    auto t2 = Clock::now();
    std::vector<uint64_t> tickets;
    for (EngineRound& spec : pipe_specs) {
      tickets.push_back(driver.Submit(std::move(spec)));
    }
    for (uint64_t ticket : tickets) {
      auto result = driver.Wait(ticket);
      if (result.aborted) {
        std::fprintf(stderr, "pipelined mesh round aborted: %s\n",
                     result.abort_reason.c_str());
        return 1;
      }
    }
    pipe_seconds = SecondsSince(t2);
    mesh.Stop();
  }
  for (auto& proc : procs) {
    proc->Stop();
  }

  const double total_msgs = msgs_per_round * static_cast<double>(in_flight);
  const double seq_tput = total_msgs / seq_seconds;
  const double pipe_tput = total_msgs / pipe_seconds;
  const double engine_tput = total_msgs / engine_seconds;
  // Sequential wall-clock divided by every (round, layer) pair: the
  // effective per-hop latency including the wire.
  const double per_hop_ms =
      seq_seconds * 1000.0 /
      static_cast<double>(in_flight * layers);

  std::printf("\n%zu rounds x %zu msgs, %zu groups, %zu layers, trap "
              "variant, %lld ms emulated WAN latency:\n",
              in_flight, fx.users_per_round, width, layers,
              static_cast<long long>(wan_delay.count()));
  std::printf("  %-18s %10s %14s\n", "executor", "seconds", "msgs/s");
  std::printf("  %-18s %10.3f %14.1f\n", "engine (in-proc)", engine_seconds,
              engine_tput);
  std::printf("  %-18s %10.3f %14.1f\n", "mesh sequential", seq_seconds,
              seq_tput);
  std::printf("  %-18s %10.3f %14.1f\n", "mesh pipelined", pipe_seconds,
              pipe_tput);
  std::printf("  pipelining gain over the mesh: %.2fx (%zu rounds in "
              "flight)\n",
              seq_seconds / pipe_seconds, in_flight);
  std::printf("  per-hop latency over the mesh: %.2f ms (sequential, "
              "incl. wire)\n",
              per_hop_ms);

  {
    BenchJson json("distributed_pipeline");
    json.Bool("smoke", smoke);
    json.Num("rounds_in_flight", static_cast<double>(in_flight));
    json.Num("msgs_per_round", msgs_per_round);
    json.Num("groups", static_cast<double>(width));
    json.Num("layers", static_cast<double>(layers));
    json.Str("variant", "trap");
    json.Num("wan_delay_ms", static_cast<double>(wan_delay.count()));
    json.Num("per_hop_latency_ms", per_hop_ms);
    json.Num("pipelining_gain", seq_seconds / pipe_seconds);
    size_t r0 = json.Row();
    json.RowStr(r0, "executor", "engine");
    json.RowNum(r0, "seconds", engine_seconds);
    json.RowNum(r0, "msgs_per_second", engine_tput);
    size_t r1 = json.Row();
    json.RowStr(r1, "executor", "mesh_sequential");
    json.RowNum(r1, "seconds", seq_seconds);
    json.RowNum(r1, "msgs_per_second", seq_tput);
    size_t r2 = json.Row();
    json.RowStr(r2, "executor", "mesh_pipelined");
    json.RowNum(r2, "seconds", pipe_seconds);
    json.RowNum(r2, "msgs_per_second", pipe_tput);
  }

  if (pipe_tput <= seq_tput) {
    std::fprintf(stderr,
                 "FAIL: pipelined mesh throughput (%.1f msgs/s) is not "
                 "above sequential (%.1f msgs/s)\n",
                 pipe_tput, seq_tput);
    return 1;
  }
  std::printf("PASS: pipelined-over-mesh beats sequential-over-mesh with "
              "%zu rounds in flight\n",
              in_flight);
  return 0;
}
