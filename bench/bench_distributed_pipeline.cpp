// Figure 10/11-style throughput for the DISTRIBUTED deployment (§4.7):
// how much does overlapping rounds across server processes buy over
// running one round at a time on the same mesh, what does the wire cost
// against the in-process engine, and what does the WAN transport
// pipeline (per-peer frame coalescing + send/serialize overlap through
// the mesh's sender lanes) buy over the legacy inline
// one-frame-per-envelope path?
//
// Executors driving identical seeded EngineRound specs:
//
//   engine             RoundEngine, in process (the PR 1-2 pipeline).
//   mesh-sequential    DistributedRoundDriver over loopback TCP servers,
//                      Submit -> Wait one round at a time (a global
//                      barrier on the wire).
//   mesh-legacy        Pipelined driver with coalescing OFF: every
//                      envelope ships as its own kEnvelope frame,
//                      serialized inline on the sending lane (the
//                      pre-refactor transport).
//   mesh-coalesced     Pipelined driver with coalescing ON: per-peer
//                      kEnvelopeBundle frames through the async sender
//                      lanes, so AEAD-seal of bundle n+1 overlaps the
//                      emulated wire stall of bundle n.
//   *-wan-matrix       The same pair under a two-region WAN matrix
//                      (cheap intra-region links, slow bandwidth-capped
//                      cross-region links via set_peer_profile) — the
//                      Figure 10/11 deployment shape.
//
// The servers are real NodeProcess instances behind encrypted loopback
// links (full wire serialization, control plane, per-round lanes); they
// share this process so the bench needs no child-process management.
// Each server gets its own small ThreadPool (mirroring the real
// one-pool-per-process deployment) and the mesh's netem-style delay
// knobs emulate WAN hop latency: that is exactly the idle bubble both
// pipelining and the sender lanes exist to fill.
//
// Emits BENCH_distributed_pipeline.json next to the text table. Exits
// nonzero if pipelined throughput is not strictly above sequential, or
// (on hosts with >= 2 hardware threads, where overlap is physically
// possible) if coalesced throughput is below 1.3x legacy under the
// emulated WAN.
//
//   ./build/bench/bench_distributed_pipeline [--smoke]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/round.h"
#include "src/net/node_process.h"
#include "src/net/round_driver.h"
#include "src/util/parallel.h"

namespace {

using namespace atom;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Fixture {
  std::unique_ptr<Round> round;
  uint64_t next_client = 1;
  size_t users_per_round = 0;
  size_t layers = 0;  // == config.params.iterations
  Rng rng{uint64_t{0xd15f10}};

  explicit Fixture(bool smoke) {
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = 6;
    // Four groups on two hosting servers (see RunFleet): multi-envelope
    // fan-outs per peer are what give bundles something to coalesce.
    config.params.num_groups = 4;
    config.params.group_size = 3;
    config.params.honest_needed = 1;
    config.params.iterations = smoke ? 2 : 4;
    config.params.message_len = 64;
    config.beacon = ToBytes("bench-distributed-pipeline");
    config.workers = 1;  // leave cores for cross-round overlap
    users_per_round = smoke ? 4 : 12;
    layers = config.params.iterations;
    round = std::make_unique<Round>(config, rng);
  }

  // Submits one round's users and drains them into a spec.
  EngineRound TakeSpec() {
    for (size_t u = 0; u < users_per_round; u++) {
      uint32_t gid = static_cast<uint32_t>(u % round->NumGroups());
      std::string msg = "msg " + std::to_string(next_client);
      auto sub = MakeTrapSubmission(round->EntryPk(gid), gid,
                                    round->TrusteePk(),
                                    BytesView(ToBytes(msg)),
                                    round->layout(), rng);
      sub.client_id = next_client++;
      if (!round->SubmitTrap(sub)) {
        std::fprintf(stderr, "submission rejected\n");
        std::exit(1);
      }
    }
    return round->TakeEngineRound({}, rng);
  }

  std::vector<EngineRound> TakeSpecs(size_t n) {
    std::vector<EngineRound> specs;
    for (size_t i = 0; i < n; i++) {
      specs.push_back(TakeSpec());
    }
    return specs;
  }
};

// One fleet configuration: transport mode plus WAN emulation shape.
struct FleetOpts {
  bool coalesce = true;    // bundles + sender lanes vs legacy inline
  bool sequential = false; // Wait each round before submitting the next
  std::chrono::milliseconds wan_delay{0};  // uniform per-frame stall
  bool wan_matrix = false;  // two-region matrix (overrides wan_delay)
  std::chrono::milliseconds intra_delay{0};
  std::chrono::milliseconds cross_delay{0};
  size_t cross_bytes_per_ms = 0;  // cross-region bandwidth cap
};

// Transport totals summed over every server mesh plus the driver mesh.
struct WireTotals {
  uint64_t bytes = 0;
  uint64_t frames = 0;
  uint64_t bundles = 0;
  uint64_t enveloped = 0;
  size_t queue_peak = 0;
  size_t drops = 0;

  void Add(const MeshTransportStats& stats) {
    bytes += stats.TotalBytes();
    frames += stats.TotalFrames();
    bundles += stats.TotalBundles();
    enveloped += stats.TotalEnvelopesBundled();
    queue_peak = std::max(queue_peak, stats.QueueDepthPeak());
    drops += stats.send_queue_drops;
  }

  double BundleFill() const {
    return bundles == 0 ? 0.0
                        : static_cast<double>(enveloped) /
                              static_cast<double>(bundles);
  }
};

struct FleetResult {
  double seconds = 0;
  WireTotals wire;
};

// Builds a fresh loopback fleet with `opts`, drives `specs` through it,
// tears it down, and returns wall-clock plus transport counters. A fresh
// fleet per configuration because the transport knobs (coalescing, WAN
// profiles) must be set before the server processes start.
FleetResult RunFleet(Fixture& fx, std::vector<EngineRound> specs,
                     const FleetOpts& opts) {
  const size_t width = fx.round->NumGroups();
  // Two groups per hosting server: every hop fan-out and exit-bucket
  // spray owes each peer MULTIPLE envelopes, which is what per-peer
  // coalescing packs into one bundle frame.
  const size_t num_hosts = width / 2;
  Rng setup_rng = Rng::FromOsEntropy();
  KemKeypair driver_key = KemKeyGen(setup_rng);
  std::vector<std::unique_ptr<ThreadPool>> pools;
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;
  for (uint32_t g = 0; g < width; g++) {
    hosts.push_back(static_cast<uint32_t>(g / 2) + 1);
  }
  // Two-region matrix: the low half of the server ids is region 0, the
  // high half region 1, the driver sits in region 0.
  auto region = [&](uint32_t id) {
    return id == kMeshDriverId ? 0 : (id - 1 < num_hosts / 2 ? 0 : 1);
  };
  auto profile_for = [&](uint32_t from, uint32_t to) {
    WanProfile profile;
    if (region(from) == region(to)) {
      profile.delay = opts.intra_delay;
    } else {
      profile.delay = opts.cross_delay;
      profile.bytes_per_ms = opts.cross_bytes_per_ms;
    }
    return profile;
  };
  for (uint32_t h = 1; h <= num_hosts; h++) {
    KemKeypair key = KemKeyGen(setup_rng);
    pools.push_back(std::make_unique<ThreadPool>(3));
    auto proc = std::make_unique<NodeProcess>(h, Variant::kTrap, key,
                                              driver_key.pk, /*max_rounds=*/8,
                                              pools.back().get());
    proc->set_coalesce_sends(opts.coalesce);
    if (opts.wan_matrix) {
      for (uint32_t p = 1; p <= num_hosts; p++) {
        if (p != h) {
          proc->set_peer_profile(p, profile_for(h, p));
        }
      }
      proc->set_peer_profile(kMeshDriverId, profile_for(h, kMeshDriverId));
    } else {
      proc->set_wire_delay(opts.wan_delay);
    }
    if (!proc->Listen(0)) {
      std::fprintf(stderr, "listen failed\n");
      std::exit(1);
    }
    proc->Start();
    roster.push_back(MeshPeer{h, "127.0.0.1", proc->port(), key.pk});
    procs.push_back(std::move(proc));
  }
  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  // The driver is remote too: its entry flush rides the same WAN.
  if (opts.wan_matrix) {
    for (uint32_t p = 1; p <= num_hosts; p++) {
      mesh.set_peer_profile(p, profile_for(kMeshDriverId, p));
    }
  } else {
    mesh.set_send_delay(opts.wan_delay);
  }
  mesh.SetRoster(roster);
  if (!mesh.ConnectAndPushRoster()) {
    std::fprintf(stderr, "roster push failed\n");
    std::exit(1);
  }
  for (uint32_t g = 0; g < width; g++) {
    if (!mesh.SendHostGroup(hosts[g], g, fx.round->group(g).dkg())) {
      std::fprintf(stderr, "host-group push failed\n");
      std::exit(1);
    }
  }

  FleetResult result;
  {
    DistributedRoundDriver driver(&mesh, hosts);
    driver.set_coalesce_entries(opts.coalesce);
    driver.set_round_timeout(std::chrono::seconds(120));
    auto t0 = Clock::now();
    if (opts.sequential) {
      for (EngineRound& spec : specs) {
        auto got = driver.Wait(driver.Submit(std::move(spec)));
        if (got.aborted) {
          std::fprintf(stderr, "mesh round aborted: %s\n",
                       got.abort_reason.c_str());
          std::exit(1);
        }
      }
    } else {
      std::vector<uint64_t> tickets;
      for (EngineRound& spec : specs) {
        tickets.push_back(driver.Submit(std::move(spec)));
      }
      for (uint64_t ticket : tickets) {
        auto got = driver.Wait(ticket);
        if (got.aborted) {
          std::fprintf(stderr, "mesh round aborted: %s\n",
                       got.abort_reason.c_str());
          std::exit(1);
        }
      }
    }
    result.seconds = SecondsSince(t0);
    result.wire.Add(mesh.Stats());
    for (auto& proc : procs) {
      result.wire.Add(proc->TransportStats());
    }
    mesh.Stop();
  }
  for (auto& proc : procs) {
    proc->Stop();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintHeader("Distributed pipelined rounds (loopback TCP mesh, measured)",
              "§4.7/Fig 10-11: a new batch enters the network every "
              "layer-time; WAN stalls hide behind coalesced async sends");

  Fixture fx(smoke);
  const size_t in_flight = smoke ? 3 : 4;
  const size_t width = fx.round->NumGroups();
  const size_t layers = fx.layers;
  const double msgs_per_round = static_cast<double>(fx.users_per_round);
  const unsigned hw_threads = std::thread::hardware_concurrency();

  // ---- In-process engine baseline.
  std::vector<EngineRound> engine_specs = fx.TakeSpecs(in_flight);
  double engine_seconds = 0;
  {
    RoundEngine engine(&ThreadPool::Shared());
    auto t0 = Clock::now();
    std::vector<uint64_t> tickets;
    for (EngineRound& spec : engine_specs) {
      tickets.push_back(engine.Submit(std::move(spec)));
    }
    for (uint64_t ticket : tickets) {
      auto result = engine.Wait(ticket);
      if (result.aborted) {
        std::fprintf(stderr, "engine round aborted: %s\n",
                     result.abort_reason.c_str());
        return 1;
      }
    }
    engine_seconds = SecondsSince(t0);
  }

  // Emulated one-way WAN latency per frame. Loopback is ~free; this is
  // the stall both pipelining and the sender lanes exist to hide.
  const auto wan_delay = std::chrono::milliseconds(smoke ? 40 : 80);
  FleetOpts seq_opts;
  seq_opts.sequential = true;
  seq_opts.wan_delay = wan_delay;
  FleetOpts legacy_opts;
  legacy_opts.coalesce = false;
  legacy_opts.wan_delay = wan_delay;
  FleetOpts coalesced_opts;
  coalesced_opts.wan_delay = wan_delay;
  // Two-region matrix: cheap intra-region links, slow bandwidth-capped
  // cross-region links (Figure 10/11's geo-distributed shape).
  FleetOpts matrix_legacy;
  matrix_legacy.coalesce = false;
  matrix_legacy.wan_matrix = true;
  matrix_legacy.intra_delay = std::chrono::milliseconds(smoke ? 10 : 20);
  matrix_legacy.cross_delay = std::chrono::milliseconds(smoke ? 40 : 80);
  matrix_legacy.cross_bytes_per_ms = 8192;  // ~8 MB/s transcontinental
  FleetOpts matrix_coalesced = matrix_legacy;
  matrix_coalesced.coalesce = true;

  FleetResult seq = RunFleet(fx, fx.TakeSpecs(in_flight), seq_opts);
  FleetResult legacy = RunFleet(fx, fx.TakeSpecs(in_flight), legacy_opts);
  FleetResult coalesced =
      RunFleet(fx, fx.TakeSpecs(in_flight), coalesced_opts);
  FleetResult wan_legacy =
      RunFleet(fx, fx.TakeSpecs(in_flight), matrix_legacy);
  FleetResult wan_coalesced =
      RunFleet(fx, fx.TakeSpecs(in_flight), matrix_coalesced);

  const double total_msgs = msgs_per_round * static_cast<double>(in_flight);
  auto tput = [&](const FleetResult& r) { return total_msgs / r.seconds; };
  const double engine_tput = total_msgs / engine_seconds;
  // Sequential wall-clock divided by every (round, layer) pair: the
  // effective per-hop latency including the wire.
  const double per_hop_ms =
      seq.seconds * 1000.0 / static_cast<double>(in_flight * layers);
  const double pipelining_gain = seq.seconds / coalesced.seconds;
  const double coalescing_gain = legacy.seconds / coalesced.seconds;
  const double wan_gain = wan_legacy.seconds / wan_coalesced.seconds;

  std::printf("\n%zu rounds x %zu msgs, %zu groups, %zu layers, trap "
              "variant, %lld ms emulated WAN latency, %u hw threads:\n",
              in_flight, fx.users_per_round, width, layers,
              static_cast<long long>(wan_delay.count()), hw_threads);
  std::printf("  %-22s %8s %10s %10s %8s %6s\n", "executor", "seconds",
              "msgs/s", "KiB sent", "frames", "fill");
  auto row = [&](const char* name, double seconds, const WireTotals* wire) {
    std::printf("  %-22s %8.3f %10.1f", name, seconds, total_msgs / seconds);
    if (wire != nullptr) {
      std::printf(" %10.1f %8llu %6.2f",
                  static_cast<double>(wire->bytes) / 1024.0,
                  static_cast<unsigned long long>(wire->frames),
                  wire->BundleFill());
    }
    std::printf("\n");
  };
  row("engine (in-proc)", engine_seconds, nullptr);
  row("mesh sequential", seq.seconds, &seq.wire);
  row("mesh legacy", legacy.seconds, &legacy.wire);
  row("mesh coalesced", coalesced.seconds, &coalesced.wire);
  row("mesh legacy (matrix)", wan_legacy.seconds, &wan_legacy.wire);
  row("mesh coalesced (matrix)", wan_coalesced.seconds, &wan_coalesced.wire);
  std::printf("  pipelining gain over sequential: %.2fx (%zu rounds in "
              "flight)\n",
              pipelining_gain, in_flight);
  std::printf("  coalescing gain over legacy: %.2fx uniform, %.2fx "
              "two-region matrix\n",
              coalescing_gain, wan_gain);
  std::printf("  per-hop latency over the mesh: %.2f ms (sequential, "
              "incl. wire)\n",
              per_hop_ms);

  {
    BenchJson json("distributed_pipeline");
    json.Bool("smoke", smoke);
    json.Num("rounds_in_flight", static_cast<double>(in_flight));
    json.Num("msgs_per_round", msgs_per_round);
    json.Num("groups", static_cast<double>(width));
    json.Num("layers", static_cast<double>(layers));
    json.Str("variant", "trap");
    json.Num("wan_delay_ms", static_cast<double>(wan_delay.count()));
    json.Num("hardware_threads", static_cast<double>(hw_threads));
    json.Num("per_hop_latency_ms", per_hop_ms);
    json.Num("pipelining_gain", pipelining_gain);
    json.Num("coalescing_gain", coalescing_gain);
    json.Num("coalescing_gain_wan_matrix", wan_gain);
    auto emit = [&](const char* name, double seconds,
                    const WireTotals* wire) {
      size_t r = json.Row();
      json.RowStr(r, "executor", name);
      json.RowNum(r, "seconds", seconds);
      json.RowNum(r, "msgs_per_second", total_msgs / seconds);
      if (wire != nullptr) {
        json.RowNum(r, "bytes_sent", static_cast<double>(wire->bytes));
        json.RowNum(r, "frames_sent", static_cast<double>(wire->frames));
        json.RowNum(r, "bundles_sent", static_cast<double>(wire->bundles));
        json.RowNum(r, "bundle_fill", wire->BundleFill());
        json.RowNum(r, "queue_depth_peak",
                    static_cast<double>(wire->queue_peak));
        json.RowNum(r, "send_queue_drops",
                    static_cast<double>(wire->drops));
      }
    };
    emit("engine", engine_seconds, nullptr);
    emit("mesh_sequential", seq.seconds, &seq.wire);
    emit("mesh_pipelined_legacy", legacy.seconds, &legacy.wire);
    emit("mesh_pipelined_coalesced", coalesced.seconds, &coalesced.wire);
    emit("mesh_wan_matrix_legacy", wan_legacy.seconds, &wan_legacy.wire);
    emit("mesh_wan_matrix_coalesced", wan_coalesced.seconds,
         &wan_coalesced.wire);
  }

  if (tput(coalesced) <= tput(seq)) {
    std::fprintf(stderr,
                 "FAIL: pipelined mesh throughput (%.1f msgs/s) is not "
                 "above sequential (%.1f msgs/s)\n",
                 tput(coalesced), tput(seq));
    return 1;
  }
  // The overlap gate needs real parallel hardware: with one thread the
  // sender lane cannot overlap anything, so the gain only gets reported.
  if (hw_threads >= 2 && coalescing_gain < 1.3) {
    std::fprintf(stderr,
                 "FAIL: coalesced transport is only %.2fx legacy under "
                 "emulated WAN (gate: 1.3x at >= 2 hardware threads)\n",
                 coalescing_gain);
    return 1;
  }
  std::printf("PASS: pipelined beats sequential (%.2fx) and coalesced "
              "beats legacy (%.2fx)\n",
              pipelining_gain, coalescing_gain);
  return 0;
}
