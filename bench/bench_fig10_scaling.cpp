// Figure 10: horizontal scalability — speed-up of Atom networks of 128,
// 256, 512, and 1,024 servers routing one million microblog messages,
// relative to the 128-server network.
//
// Paper: 3.81h / 1.89h / 0.94h / 0.47h — linear speed-up in server count
// (each doubling of the network halves the per-group batch).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace atom;
  PrintHeader("Figure 10: speed-up vs. network size (1M microblog messages)",
              "linear: 1x / 2x / 4x / 8x at 128/256/512/1024 servers "
              "(3.81h down to 0.47h)");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xf19a);

  double base = 0;
  std::printf("\n  servers | latency (h) | speed-up | paper (h)\n");
  std::printf("  --------+-------------+----------+----------\n");
  const double paper_hours[] = {3.81, 1.89, 0.94, 0.47};
  int i = 0;
  for (size_t servers : {128u, 256u, 512u, 1024u}) {
    NetworkModel net = NetworkModel::TorLike(servers, rng);
    auto est = EstimateRound(
        PaperDeployment(servers, 1'000'000, Variant::kTrap, 160), net,
        costs);
    double hours = est.total_seconds / 3600.0;
    if (base == 0) {
      base = hours;
    }
    std::printf("  %7zu | %11.2f | %7.2fx | %8.2f\n", servers, hours,
                base / hours, paper_hours[i++]);
  }
  std::printf("\nShape check: speed-up column should read ~1 / 2 / 4 / 8.\n");
  return 0;
}
