// Figure 11: simulated speed-up of very large Atom networks (2^10 .. 2^15
// servers) routing one BILLION microblog messages, relative to the
// 1,024-server network.
//
// Paper: 483.6h at 2^10 down to 20.5h at 2^15 — speed-up of 23.6x against
// an ideal 32x, i.e. noticeably sub-linear at this scale. The paper blames
// (1) the G² inter-layer connections and (2) the single trustee group's
// TLS termination; both terms are modeled here on top of the calibrated
// compute costs (the paper itself produced this figure from a Table-3
// cost model, the same methodology).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace atom;
  PrintHeader("Figure 11: speed-up at 2^10..2^15 servers (1B messages)",
              "sub-linear: 23.6x at 2^15 vs ideal 32x "
              "(483.6h -> 20.5h on their cost model)");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xf19b);

  double base = 0;
  std::printf("\n  servers | latency (h) | speed-up | ideal\n");
  std::printf("  --------+-------------+----------+------\n");
  for (size_t log2s = 10; log2s <= 15; log2s++) {
    size_t servers = size_t{1} << log2s;
    NetworkModel net = NetworkModel::TorLike(servers, rng);
    auto est = EstimateRound(
        PaperDeployment(servers, 1'000'000'000, Variant::kTrap, 160), net,
        costs);
    double hours = est.total_seconds / 3600.0;
    if (base == 0) {
      base = hours;
    }
    std::printf("  %7zu | %11.1f | %7.2fx | %4zux\n", servers, hours,
                base / hours, size_t{1} << (log2s - 10));
  }
  std::printf("\nShape check: the speed-up column should fall increasingly "
              "behind the ideal column\nas the G^2 connection overhead "
              "grows.\n");
  return 0;
}
