// Figure 13 (Appendix B): required group size k as a function of the
// number of required honest servers h, for f = 0.2 and G = 1,024 at the
// 2^-64 failure target.
//
// Paper shape: k ≈ 32 at h = 1, growing by ~2 per extra required honest
// server, staying below ~70 at h = 20. (The paper's §4.5 text quotes k=33
// for h=2; the exact Appendix-B bound gives a slightly larger k — see
// EXPERIMENTS.md for the discrepancy note.)
#include <cstdio>

#include "src/topology/groups.h"

int main() {
  using namespace atom;
  std::printf("Figure 13 reproduction: group size k vs. required honest "
              "servers h\n(f = 0.2, G = 1024, failure < 2^-64)\n\n");
  std::printf("  h  | k   | log2 Pr[any group bad]\n");
  std::printf("  ---+-----+-----------------------\n");
  for (size_t h = 1; h <= 20; h++) {
    size_t k = MinGroupSize(0.2, 1024, h);
    double log2p = Log2ProbGroupBad(k, 0.2, h) + 10.0;  // + log2(1024)
    std::printf("  %2zu | %3zu | %8.1f\n", h, k, log2p);
  }
  std::printf("\nShape check: k grows roughly linearly in h with slope ~2 "
              "and k(1) = 32,\nmatching the paper's §4.1 example and the "
              "Fig. 13 curve.\n");
  return 0;
}
