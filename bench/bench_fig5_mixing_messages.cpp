// Figure 5: time per mixing iteration for a single group of 32 servers as
// the number of messages varies (128..16384), NIZK vs. trap.
//
// Two data sources:
//  * "model": the calibrated cost model + WAN chain timeline (the paper's
//    own Fig.-11 methodology) across the full sweep;
//  * "real": actual GroupRuntime::RunHop executions of a 32-server chain at
//    the small end of the sweep, to validate the model's compute term.
//
// Paper shape: both curves linear in the message count; NIZK ≈ 4x trap.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/group_runtime.h"
#include "src/sim/groupsim.h"

namespace atom {
namespace {

double RealHopSeconds(Variant variant, size_t k, size_t messages) {
  Rng rng(0xf195 + messages + (variant == Variant::kNizk ? 1 : 0));
  DkgParams params{k, k};
  GroupRuntime group(0, RunDkg(params, rng));
  GroupRuntime next(1, RunDkg(DkgParams{3, 3}, rng));
  CiphertextBatch batch(messages);
  Point m = *EmbedMessage(BytesView(ToBytes("fig5")));
  for (size_t i = 0; i < messages; i++) {
    batch[i].push_back(ElGamalEncrypt(group.pk(), m, rng));
  }
  std::vector<Point> next_pks = {next.pk()};
  auto t0 = std::chrono::steady_clock::now();
  auto hop = group.RunHop(batch, next_pks, variant, rng);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ATOM_CHECK(!hop.aborted);
  return elapsed;
}

}  // namespace
}  // namespace atom

int main() {
  using namespace atom;
  PrintHeader("Figure 5: time per mixing iteration, one 32-server group",
              "linear in messages; NIZK ~4x trap (e.g. 16384 msgs: "
              "trap ~750s, NIZK ~3000s on c4.xlarge)");
  const CostModel& costs = CalibratedCosts();

  std::printf("\nmodel sweep (32 servers, 4 cores each, 40-160ms WAN):\n");
  std::printf("  messages | trap (s) | nizk (s) | nizk/trap\n");
  std::printf("  ---------+----------+----------+----------\n");
  for (size_t n : {128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    GroupSimConfig config;
    config.group_size = config.threshold = 32;
    config.messages = n;
    config.components = 1;
    config.cores_per_server = 4;
    config.variant = Variant::kTrap;
    double trap = EstimateGroupHop(config, costs).total_seconds;
    config.variant = Variant::kNizk;
    double nizk = EstimateGroupHop(config, costs).total_seconds;
    std::printf("  %8zu | %8.2f | %8.2f | %8.2fx\n", n, trap, nizk,
                nizk / trap);
  }

  std::printf("\nreal 32-server chain executions (in-process, single "
              "worker, no WAN;\ncompare against the model's compute term "
              "x4 for the core-count difference):\n");
  std::printf("  messages | variant | seconds\n");
  std::printf("  ---------+---------+--------\n");
  for (size_t n : {64u, 128u}) {
    std::printf("  %8zu | trap    | %7.2f\n", n,
                RealHopSeconds(Variant::kTrap, 32, n));
  }
  std::printf("  %8u | nizk    | %7.2f\n", 64u,
              RealHopSeconds(Variant::kNizk, 32, 64));
  return 0;
}
