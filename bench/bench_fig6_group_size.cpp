// Figure 6: time per mixing iteration for a single group routing 1,024
// messages as the group size varies (k ∈ {4, 8, 16, 32, 64}).
//
// Paper shape: linear in k — every additional server adds one serial
// shuffle + reencrypt step to the group chain — with the NIZK variant a
// constant factor above the trap variant.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/group_runtime.h"
#include "src/sim/groupsim.h"

namespace atom {
namespace {

double RealHopSeconds(size_t k, size_t messages) {
  Rng rng(0xf196 + k);
  GroupRuntime group(0, RunDkg(DkgParams{k, k}, rng));
  GroupRuntime next(1, RunDkg(DkgParams{3, 3}, rng));
  CiphertextBatch batch(messages);
  Point m = *EmbedMessage(BytesView(ToBytes("fig6")));
  for (size_t i = 0; i < messages; i++) {
    batch[i].push_back(ElGamalEncrypt(group.pk(), m, rng));
  }
  std::vector<Point> next_pks = {next.pk()};
  auto t0 = std::chrono::steady_clock::now();
  auto hop = group.RunHop(batch, next_pks, Variant::kTrap, rng);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ATOM_CHECK(!hop.aborted);
  return elapsed;
}

}  // namespace
}  // namespace atom

int main() {
  using namespace atom;
  PrintHeader("Figure 6: mixing iteration time vs. group size (1024 msgs)",
              "linear in group size for both variants (at k=64: trap ~60s, "
              "NIZK ~230s)");
  const CostModel& costs = CalibratedCosts();

  std::printf("\nmodel sweep (1024 messages, 4 cores, 40-160ms WAN):\n");
  std::printf("  group size | trap (s) | nizk (s)\n");
  std::printf("  -----------+----------+---------\n");
  for (size_t k : {4u, 8u, 16u, 32u, 64u}) {
    GroupSimConfig config;
    config.group_size = config.threshold = k;
    config.messages = 1024;
    config.cores_per_server = 4;
    config.variant = Variant::kTrap;
    double trap = EstimateGroupHop(config, costs).total_seconds;
    config.variant = Variant::kNizk;
    double nizk = EstimateGroupHop(config, costs).total_seconds;
    std::printf("  %10zu | %8.2f | %8.2f\n", k, trap, nizk);
  }

  std::printf("\nreal chain executions (trap, 96 messages, in-process):\n");
  std::printf("  group size | seconds\n");
  std::printf("  -----------+--------\n");
  for (size_t k : {4u, 8u, 16u}) {
    std::printf("  %10zu | %7.2f\n", k, RealHopSeconds(k, 96));
  }
  return 0;
}
