// Figure 7: speed-up of one mixing iteration as the per-server core count
// grows (4 -> 8 -> 16 -> 36), relative to the 4-core baseline.
//
// Paper shape: near-linear speed-up for the trap variant (the mixing work
// is embarrassingly parallel) and sub-linear for the NIZK variant (the
// shuffle-proof commitment chain is inherently sequential).
//
// Two data sources: the Amdahl decomposition over the calibrated cost model
// (full 4..36 sweep), and a real multi-worker execution of the parallel
// shuffle path on this machine's cores as a spot check.
// --smoke shrinks the real-shuffle spot check for CI; both modes write
// BENCH_bench_fig7_cores.json (model sweep + real-shuffle rows).
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "src/crypto/shuffle.h"
#include "src/sim/groupsim.h"
#include "src/util/parallel.h"

namespace atom {
namespace {

double RealShuffleSeconds(size_t workers, size_t messages) {
  Rng rng(0xf197);
  auto kp = ElGamalKeyGen(rng);
  Point m = *EmbedMessage(BytesView(ToBytes("fig7")));
  CiphertextBatch batch(messages);
  for (size_t i = 0; i < messages; i++) {
    batch[i].push_back(ElGamalEncrypt(kp.pk, m, rng));
  }
  auto t0 = std::chrono::steady_clock::now();
  ShuffleBatch(kp.pk, batch, rng, nullptr, nullptr, workers);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace
}  // namespace atom

int main(int argc, char** argv) {
  using namespace atom;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  PrintHeader("Figure 7: mixing speed-up vs. cores (baseline: 4 cores)",
              "trap near-linear (~8x at 36 cores), NIZK sub-linear "
              "(sequential proof chain)");
  BenchJson json("bench_fig7_cores");
  json.Bool("smoke", smoke);
  const CostModel& costs = CalibratedCosts();

  GroupSimConfig config;
  config.group_size = config.threshold = 32;
  config.messages = 1024;
  config.hop_latency_seconds = 0;  // compute-only, as in the paper's figure

  std::printf("\nmodel (Amdahl over measured op mix):\n");
  std::printf("  cores | trap speed-up | nizk speed-up\n");
  std::printf("  ------+---------------+--------------\n");
  auto compute = [&](Variant v, size_t cores) {
    config.variant = v;
    config.cores_per_server = cores;
    return EstimateGroupHop(config, costs).compute_seconds;
  };
  double trap_base = compute(Variant::kTrap, 4);
  double nizk_base = compute(Variant::kNizk, 4);
  for (size_t cores : {4u, 8u, 16u, 36u}) {
    double trap_gain = trap_base / compute(Variant::kTrap, cores);
    double nizk_gain = nizk_base / compute(Variant::kNizk, cores);
    std::printf("  %5zu | %13.2f | %12.2f\n", cores, trap_gain, nizk_gain);
    size_t row = json.Row();
    json.RowStr(row, "kind", "model");
    json.RowNum(row, "cores", static_cast<double>(cores));
    json.RowNum(row, "trap_speedup", trap_gain);
    json.RowNum(row, "nizk_speedup", nizk_gain);
  }

  size_t hw = HardwareThreads();
  const size_t messages = smoke ? 128 : 512;
  json.Num("hardware_threads", static_cast<double>(hw));
  json.Num("real_shuffle_messages", static_cast<double>(messages));
  std::printf("\nreal parallel shuffle on this machine (%zu hw threads):\n",
              hw);
  std::printf("  workers | seconds | speed-up\n");
  std::printf("  --------+---------+---------\n");
  double base = RealShuffleSeconds(1, messages);
  std::printf("  %7u | %7.2f | %7.2fx\n", 1u, base, 1.0);
  size_t row = json.Row();
  json.RowStr(row, "kind", "real");
  json.RowNum(row, "workers", 1);
  json.RowNum(row, "seconds", base);
  json.RowNum(row, "speedup", 1.0);
  for (size_t w = 2; w <= hw; w *= 2) {
    double t = RealShuffleSeconds(w, messages);
    std::printf("  %7zu | %7.2f | %7.2fx\n", w, t, base / t);
    row = json.Row();
    json.RowStr(row, "kind", "real");
    json.RowNum(row, "workers", static_cast<double>(w));
    json.RowNum(row, "seconds", t);
    json.RowNum(row, "speedup", base / t);
  }
  return 0;
}
