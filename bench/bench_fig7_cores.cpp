// Figure 7: speed-up of one mixing iteration as the per-server core count
// grows (4 -> 8 -> 16 -> 36), relative to the 4-core baseline.
//
// Paper shape: near-linear speed-up for the trap variant (the mixing work
// is embarrassingly parallel) and sub-linear for the NIZK variant (the
// shuffle-proof commitment chain is inherently sequential).
//
// Two data sources: the Amdahl decomposition over the calibrated cost model
// (full 4..36 sweep), and a real multi-worker execution of the parallel
// shuffle path on this machine's cores as a spot check.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/crypto/shuffle.h"
#include "src/sim/groupsim.h"
#include "src/util/parallel.h"

namespace atom {
namespace {

double RealShuffleSeconds(size_t workers, size_t messages) {
  Rng rng(0xf197);
  auto kp = ElGamalKeyGen(rng);
  Point m = *EmbedMessage(BytesView(ToBytes("fig7")));
  CiphertextBatch batch(messages);
  for (size_t i = 0; i < messages; i++) {
    batch[i].push_back(ElGamalEncrypt(kp.pk, m, rng));
  }
  auto t0 = std::chrono::steady_clock::now();
  ShuffleBatch(kp.pk, batch, rng, nullptr, nullptr, workers);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace
}  // namespace atom

int main() {
  using namespace atom;
  PrintHeader("Figure 7: mixing speed-up vs. cores (baseline: 4 cores)",
              "trap near-linear (~8x at 36 cores), NIZK sub-linear "
              "(sequential proof chain)");
  const CostModel& costs = CalibratedCosts();

  GroupSimConfig config;
  config.group_size = config.threshold = 32;
  config.messages = 1024;
  config.hop_latency_seconds = 0;  // compute-only, as in the paper's figure

  std::printf("\nmodel (Amdahl over measured op mix):\n");
  std::printf("  cores | trap speed-up | nizk speed-up\n");
  std::printf("  ------+---------------+--------------\n");
  auto compute = [&](Variant v, size_t cores) {
    config.variant = v;
    config.cores_per_server = cores;
    return EstimateGroupHop(config, costs).compute_seconds;
  };
  double trap_base = compute(Variant::kTrap, 4);
  double nizk_base = compute(Variant::kNizk, 4);
  for (size_t cores : {4u, 8u, 16u, 36u}) {
    std::printf("  %5zu | %13.2f | %12.2f\n", cores,
                trap_base / compute(Variant::kTrap, cores),
                nizk_base / compute(Variant::kNizk, cores));
  }

  size_t hw = HardwareThreads();
  std::printf("\nreal parallel shuffle on this machine (%zu hw threads):\n",
              hw);
  std::printf("  workers | seconds | speed-up\n");
  std::printf("  --------+---------+---------\n");
  double base = RealShuffleSeconds(1, 512);
  std::printf("  %7u | %7.2f | %7.2fx\n", 1u, base, 1.0);
  for (size_t w = 2; w <= hw; w *= 2) {
    double t = RealShuffleSeconds(w, 512);
    std::printf("  %7zu | %7.2f | %7.2fx\n", w, t, base / t);
  }
  return 0;
}
