// Figure 9: end-to-end latency of Atom for microblogging and dialing as the
// number of messages varies (0.25M .. 2M), on the paper's 1,024-server
// heterogeneous deployment (trap variant, k=33, h=2, T=10).
//
// Paper shape: latency linear in the message count; dialing slightly
// cheaper per message than microblogging (smaller messages), both curves
// passing ~28 minutes at one million messages on their hardware. Dialing
// additionally carries the differential-privacy dummy load
// (µ=13,000 per noise server, ~410K dummies).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace atom;
  PrintHeader("Figure 9: latency vs. number of messages (1,024 servers)",
              "linear; ~28 min at 1M messages for both applications "
              "(their testbed)");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xf199);
  NetworkModel net = NetworkModel::TorLike(1024, rng);
  constexpr size_t kDialDummies = 13000 * 32;  // µ per server x 32 servers

  std::printf("\n  messages  | microblog (min) | dialing (min)\n");
  std::printf("  ----------+-----------------+--------------\n");
  for (size_t m : {250'000u, 500'000u, 750'000u, 1'000'000u, 1'250'000u,
                   1'500'000u, 1'750'000u, 2'000'000u}) {
    auto micro = EstimateRound(
        PaperDeployment(1024, m, Variant::kTrap, 160), net, costs);
    auto dial = EstimateRound(
        PaperDeployment(1024, m, Variant::kTrap, 80, kDialDummies), net,
        costs);
    std::printf("  %9zu | %15.1f | %13.1f\n", m, micro.total_seconds / 60.0,
                dial.total_seconds / 60.0);
  }
  std::printf("\nShape check: doubling the message count should roughly "
              "double both columns.\n");
  return 0;
}
