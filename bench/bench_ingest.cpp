// bench_ingest: the client ingress tier under load.
//
// Two measurements, both emitted into BENCH_bench_ingest.json:
//
//  1. Gateway throughput: C registered clients connect over authenticated
//     loopback TCP sessions and submit concurrently into one open round;
//     sustained accepted-submissions/sec from round-open to last verdict.
//
//  2. Verify-overlap gain (the streaming-intake claim): the same wire
//     bytes pushed through (a) accept-then-verify — decode EVERY frame
//     first, then one pool-verified batch — and (b) the pipelined
//     streaming intake, where producer threads decode+push into the
//     bounded MPSC rings while pump tasks verify earlier spans
//     concurrently. Pipelined must beat the serial split: verification
//     overlapping acceptance is exactly what Round::StreamSubmit +
//     PumpStream exist for.
//
// --smoke shrinks the sizes for CI and skips the hard perf gate (timing
// noise on shared runners); the full run enforces overlap_gain > 1.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/directory.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/net/client_session.h"
#include "src/net/gateway.h"
#include "src/net/registry.h"
#include "src/util/parallel.h"

namespace {

using namespace atom;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

RoundConfig IngestConfig() {
  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 4;
  config.params.num_groups = 2;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = 2;
  config.params.message_len = 32;
  config.beacon = ToBytes("bench-ingest-epoch");
  config.workers = HardwareThreads();
  return config;
}

// ---- Section 1: end-to-end gateway throughput over loopback TCP.

double GatewayThroughput(size_t clients, BenchJson& json) {
  RoundConfig config = IngestConfig();
  Rng rng(uint64_t{0x16e57});
  Round round(config, rng);

  Directory directory(ToBytes("bench-ingest-genesis"));
  Rng key_rng(uint64_t{0x16e58});
  std::map<uint64_t, KemKeypair> keys;
  for (size_t u = 0; u < clients; u++) {
    uint64_t id = 100 + u;
    SchnorrKeypair kp = SchnorrKeyGen(key_rng);
    if (!directory.RegisterClient(MakeClientRegistration(id, kp, key_rng))) {
      std::fprintf(stderr, "registration failed\n");
      std::exit(1);
    }
    keys[id] = KemKeypair{kp.sk, kp.pk};
  }
  ClientRegistry registry;
  registry.SeedFromDirectory(directory);

  KemKeypair gateway_key = KemKeyGen(key_rng);
  GatewayConfig gateway_config;
  gateway_config.verify_workers = config.workers;
  SubmissionGateway gateway(&round, &registry, gateway_key, gateway_config);
  if (!gateway.Listen(0)) {
    std::fprintf(stderr, "gateway listen failed\n");
    std::exit(1);
  }
  gateway.Start();

  // Sessions connect and submissions are prebuilt outside the timed
  // window: the measurement is the intake pipeline, not key setup.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TrapSubmission> subs;
  for (size_t u = 0; u < clients; u++) {
    uint64_t id = 100 + u;
    auto session = ClientSession::Connect("127.0.0.1", gateway.port(), id,
                                          keys[id], gateway_key.pk);
    if (session == nullptr) {
      std::fprintf(stderr, "client %zu failed to connect\n", u);
      std::exit(1);
    }
    sessions.push_back(std::move(session));
    uint32_t gid = static_cast<uint32_t>(u % round.NumGroups());
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("load " +
                                                    std::to_string(u))),
                                  round.layout(), rng);
    sub.client_id = id;
    subs.push_back(std::move(sub));
  }

  gateway.OpenRound(1);
  std::atomic<size_t> accepted{0};
  auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t u = 0; u < clients; u++) {
    threads.emplace_back([&, u] {
      if (sessions[u]->SubmitAndWait(subs[u])) {
        accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  double wall_ms = MillisSince(start);
  gateway.Cutoff();

  double per_sec = accepted.load() / (wall_ms / 1000.0);
  std::printf("%-28s %6zu clients  %8.1f ms  %10.1f accepted subs/sec\n",
              "gateway loopback", clients, wall_ms, per_sec);
  json.Num("clients", static_cast<double>(clients));
  json.Num("gateway_accepted", static_cast<double>(accepted.load()));
  json.Num("gateway_wall_ms", wall_ms);
  json.Num("submissions_per_sec", per_sec);
  if (accepted.load() != clients) {
    std::fprintf(stderr, "only %zu/%zu submissions accepted\n",
                 accepted.load(), clients);
    std::exit(1);
  }

  for (auto& session : sessions) {
    session->Close();
  }
  gateway.Stop();
  return per_sec;
}

// ---- Section 2: verify-overlap gain.

struct WireLoad {
  std::vector<Bytes> frames;  // encoded trap submissions
};

WireLoad BuildLoad(Round& round, size_t count) {
  Rng rng(uint64_t{0xfeed5});
  WireLoad load;
  for (size_t i = 0; i < count; i++) {
    uint32_t gid = static_cast<uint32_t>(i % round.NumGroups());
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("overlap " +
                                                    std::to_string(i))),
                                  round.layout(), rng);
    sub.client_id = 10000 + i;
    load.frames.push_back(EncodeTrapSubmission(sub));
  }
  return load;
}

// Accept-then-verify: every frame decoded before any verification runs —
// the pre-streaming intake shape.
double SerialIntake(const WireLoad& load, size_t producers,
                    size_t* accepted_out) {
  RoundConfig config = IngestConfig();
  Rng rng(uint64_t{0x16e57});
  Round round(config, rng);
  auto start = Clock::now();
  std::vector<TrapSubmission> decoded(load.frames.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; p++) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= load.frames.size()) {
          return;
        }
        auto sub = DecodeTrapSubmission(BytesView(load.frames[i]));
        if (sub) {
          decoded[i] = std::move(*sub);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<bool> accepted =
      round.SubmitTrapBatch(decoded, config.workers);
  double wall_ms = MillisSince(start);
  *accepted_out = static_cast<size_t>(
      std::count(accepted.begin(), accepted.end(), true));
  return wall_ms;
}

// Streaming intake: producers decode+push, pumps verify concurrently.
double PipelinedIntake(const WireLoad& load, size_t producers,
                       size_t* accepted_out) {
  RoundConfig config = IngestConfig();
  Rng rng(uint64_t{0x16e57});
  Round round(config, rng);
  const size_t total = load.frames.size();
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> accepted{0};

  // One pump lane per shard, exactly the gateway's discipline.
  struct Pump {
    explicit Pump(ThreadPool* pool) : serial(pool) {}
    SerialExecutor serial;
    std::atomic<bool> scheduled{false};
  };
  std::vector<std::unique_ptr<Pump>> pumps;
  for (size_t g = 0; g < round.NumGroups(); g++) {
    pumps.push_back(std::make_unique<Pump>(nullptr));
  }
  auto pump_shard = [&](uint32_t gid) {
    round.PumpStream(gid, config.workers,
                     [&](uint64_t, bool ok) {
                       if (ok) {
                         accepted.fetch_add(1);
                       }
                       resolved.fetch_add(1);
                     });
  };
  auto schedule = [&](uint32_t gid) {
    Pump& pump = *pumps[gid];
    if (pump.scheduled.exchange(true)) {
      return;
    }
    pump.serial.Submit([&, gid] {
      pumps[gid]->scheduled.store(false);
      pump_shard(gid);
    });
  };

  auto start = Clock::now();
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; p++) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= total) {
          return;
        }
        auto sub = DecodeTrapSubmission(BytesView(load.frames[i]));
        if (!sub) {
          resolved.fetch_add(1);
          continue;
        }
        StreamedSubmission item;
        item.cookie = i + 1;
        uint32_t gid = sub->entry_gid;
        item.trap = std::move(*sub);
        while (!round.StreamSubmit(std::move(item))) {
          // Ring full: the bound is the backpressure. Let the pump catch
          // up, then retry — item survives the failed push untouched
          // only because StreamSubmit rejected before consuming it, so
          // rebuild defensively.
          schedule(gid);
          std::this_thread::yield();
          auto again = DecodeTrapSubmission(BytesView(load.frames[i]));
          item = StreamedSubmission{};
          item.cookie = i + 1;
          item.trap = std::move(*again);
        }
        schedule(gid);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Producers done: final pumps drain the tails.
  while (resolved.load() < total) {
    for (uint32_t g = 0; g < pumps.size(); g++) {
      pumps[g]->serial.Submit([&, g] { pump_shard(g); });
      pumps[g]->serial.Drain();
    }
  }
  double wall_ms = MillisSince(start);
  *accepted_out = accepted.load();
  return wall_ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const size_t clients = smoke ? 6 : 24;
  const size_t overlap_subs = smoke ? 32 : 256;
  // Few producers, many verify workers: the gateway shape (a handful of
  // connection readers feeding a pool-wide verification stage).
  const size_t producers = 2;

  PrintHeader("bench_ingest: client ingress tier",
              "streaming intake overlaps proof verification with "
              "acceptance (§4.2 entry phase at millions-of-users scale)");
  BenchJson json("bench_ingest");
  json.Bool("smoke", smoke);

  GatewayThroughput(clients, json);

  Rng rng(uint64_t{0x16e57});
  RoundConfig config = IngestConfig();
  Round layout_round(config, rng);
  WireLoad load = BuildLoad(layout_round, overlap_subs);

  size_t serial_accepted = 0, pipelined_accepted = 0;
  double serial_ms = SerialIntake(load, producers, &serial_accepted);
  double pipelined_ms = PipelinedIntake(load, producers,
                                        &pipelined_accepted);
  double gain = serial_ms / pipelined_ms;
  std::printf("%-28s %6zu subs     %8.1f ms   (decode-all, then verify)\n",
              "accept-then-verify", overlap_subs, serial_ms);
  std::printf("%-28s %6zu subs     %8.1f ms   (verify overlaps reads)\n",
              "pipelined streaming intake", overlap_subs, pipelined_ms);
  std::printf("verify-overlap gain: %.2fx\n", gain);
  json.Num("overlap_submissions", static_cast<double>(overlap_subs));
  json.Num("serial_ms", serial_ms);
  json.Num("pipelined_ms", pipelined_ms);
  json.Num("overlap_gain", gain);
  json.Num("hardware_threads", static_cast<double>(HardwareThreads()));

  if (serial_accepted != overlap_subs ||
      pipelined_accepted != overlap_subs) {
    std::fprintf(stderr,
                 "acceptance mismatch: serial %zu, pipelined %zu, want "
                 "%zu\n",
                 serial_accepted, pipelined_accepted, overlap_subs);
    return 1;
  }
  // Overlap is a concurrency win: accept-then-verify wastes the idle
  // cores during its decode phase, which the pipelined intake keeps fed.
  // On a single hardware thread there is no idle core to reclaim, so the
  // comparison degenerates to noise — report it, but only gate where the
  // win is physically possible (and --smoke never gates: CI runners are
  // too noisy for a hard perf assertion on every push).
  if (!smoke && HardwareThreads() >= 2 && gain <= 1.0) {
    std::fprintf(stderr,
                 "pipelined intake (%.1f ms) did not beat "
                 "accept-then-verify (%.1f ms)\n",
                 pipelined_ms, serial_ms);
    return 1;
  }
  if (HardwareThreads() < 2) {
    std::printf("(single hardware thread: overlap gain not gated)\n");
  }
  std::printf("ingest pipeline: OK\n");
  return 0;
}
