// bench_ingest: the client ingress tier under load.
//
// Three measurements, all emitted into BENCH_bench_ingest.json:
//
//  1. Gateway throughput: C registered clients connect over authenticated
//     loopback TCP sessions and submit concurrently into one open round;
//     sustained accepted-submissions/sec from round-open to last verdict.
//     Runs against BOTH ingress backends (thread-per-connection and the
//     epoll reactor) for an apples-to-apples before/after row, and in
//     full mode a larger gate pair pins the reactor against the baseline.
//
//  2. Verify-overlap gain (the streaming-intake claim): the same wire
//     bytes pushed through (a) accept-then-verify — decode EVERY frame
//     first, then one pool-verified batch — and (b) the pipelined
//     streaming intake, where producer threads decode+push into the
//     bounded MPSC rings while pump tasks verify earlier spans
//     concurrently. Pipelined must beat the serial split: verification
//     overlapping acceptance is exactly what Round::StreamSubmit +
//     PumpStream exist for.
//
//  3. Connection scaling: an epoll-based load generator drives
//     --connections (default 100k full / 2048 smoke) simultaneously
//     established sessions against reactor gateways on one host,
//     reporting connection-setup/sec, accepted-subs/sec at peak
//     concurrency, and p50/p99 admission latency from a merged
//     power-of-two histogram. RLIMIT_NOFILE bounds how many sockets one
//     process may hold, and the hard limit is often unraisable inside a
//     container — so the section shards itself: the binary re-execs as
//     --worker-gateway / --worker-loadgen pairs (each pair one gateway
//     process + one load process, each holding at most nofile-512
//     sockets), coordinated over pipes with a barrier between "everyone
//     is established" and "everyone submits", so the submit storm really
//     happens at peak host-wide concurrency.
//
// --smoke shrinks the sizes for CI and skips the hard perf gates (timing
// noise on shared runners); the full run enforces overlap_gain > 1 and
// the reactor-vs-threads gate. --scale-only runs just section 3 (the CI
// 10k-connection job). Correctness gates — every established session's
// submission accepted, worker stats consistent — apply in every mode.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/directory.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/crypto/aead.h"
#include "src/net/client_session.h"
#include "src/net/gateway.h"
#include "src/net/handshake.h"
#include "src/net/reactor.h"
#include "src/net/registry.h"
#include "src/obs/metrics.h"
#include "src/util/parallel.h"

namespace {

using namespace atom;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

RoundConfig IngestConfig() {
  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 4;
  config.params.num_groups = 2;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = 2;
  config.params.message_len = 32;
  config.beacon = ToBytes("bench-ingest-epoch");
  config.workers = HardwareThreads();
  return config;
}

const char* BackendName(GatewayBackend backend) {
  return backend == GatewayBackend::kReactor ? "reactor" : "threads";
}

// Raises the soft fd limit to the hard limit (the hard limit itself is
// often unraisable in a container, even as root) and returns what we got.
uint64_t RaiseNoFileLimit() {
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    return 1024;
  }
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  return rl.rlim_cur == RLIM_INFINITY ? (uint64_t{1} << 20)
                                      : static_cast<uint64_t>(rl.rlim_cur);
}

// ---- Section 1: end-to-end gateway throughput over loopback TCP.

// `legacy_fields` additionally emits the flat JSON keys the pre-reactor
// bench wrote, so the perf trajectory across PRs stays comparable.
double GatewayThroughput(GatewayBackend backend, size_t clients,
                         BenchJson& json, bool legacy_fields) {
  RoundConfig config = IngestConfig();
  Rng rng(uint64_t{0x16e57});
  Round round(config, rng);

  Directory directory(ToBytes("bench-ingest-genesis"));
  Rng key_rng(uint64_t{0x16e58});
  std::map<uint64_t, KemKeypair> keys;
  for (size_t u = 0; u < clients; u++) {
    uint64_t id = 100 + u;
    SchnorrKeypair kp = SchnorrKeyGen(key_rng);
    if (!directory.RegisterClient(MakeClientRegistration(id, kp, key_rng))) {
      std::fprintf(stderr, "registration failed\n");
      std::exit(1);
    }
    keys[id] = KemKeypair{kp.sk, kp.pk};
  }
  ClientRegistry registry;
  registry.SeedFromDirectory(directory);

  KemKeypair gateway_key = KemKeyGen(key_rng);
  GatewayConfig gateway_config;
  gateway_config.verify_workers = config.workers;
  std::unique_ptr<ClientGateway> gateway = MakeClientGateway(
      backend, &round, &registry, gateway_key, gateway_config);
  if (!gateway->Listen(0)) {
    std::fprintf(stderr, "gateway listen failed\n");
    std::exit(1);
  }
  gateway->Start();

  // Sessions connect and submissions are prebuilt outside the timed
  // window: the measurement is the intake pipeline, not key setup.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<TrapSubmission> subs;
  for (size_t u = 0; u < clients; u++) {
    uint64_t id = 100 + u;
    auto session = ClientSession::Connect("127.0.0.1", gateway->port(), id,
                                          keys[id], gateway_key.pk);
    if (session == nullptr) {
      std::fprintf(stderr, "client %zu failed to connect\n", u);
      std::exit(1);
    }
    sessions.push_back(std::move(session));
    uint32_t gid = static_cast<uint32_t>(u % round.NumGroups());
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("load " +
                                                    std::to_string(u))),
                                  round.layout(), rng);
    sub.client_id = id;
    subs.push_back(std::move(sub));
  }

  gateway->OpenRound(1);
  std::atomic<size_t> accepted{0};
  auto start = Clock::now();
  std::vector<std::thread> threads;
  for (size_t u = 0; u < clients; u++) {
    threads.emplace_back([&, u] {
      if (sessions[u]->SubmitAndWait(subs[u])) {
        accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  double wall_ms = MillisSince(start);
  gateway->Cutoff();

  double per_sec = accepted.load() / (wall_ms / 1000.0);
  char label[64];
  std::snprintf(label, sizeof(label), "gateway loopback (%s)",
                BackendName(backend));
  std::printf("%-28s %6zu clients  %8.1f ms  %10.1f accepted subs/sec\n",
              label, clients, wall_ms, per_sec);
  size_t row = json.Row();
  json.RowStr(row, "kind", "throughput");
  json.RowStr(row, "backend", BackendName(backend));
  json.RowNum(row, "clients", static_cast<double>(clients));
  json.RowNum(row, "wall_ms", wall_ms);
  json.RowNum(row, "submissions_per_sec", per_sec);
  if (legacy_fields) {
    json.Num("clients", static_cast<double>(clients));
    json.Num("gateway_accepted", static_cast<double>(accepted.load()));
    json.Num("gateway_wall_ms", wall_ms);
    json.Num("submissions_per_sec", per_sec);
  }
  if (accepted.load() != clients) {
    std::fprintf(stderr, "only %zu/%zu submissions accepted (%s)\n",
                 accepted.load(), clients, BackendName(backend));
    std::exit(1);
  }

  for (auto& session : sessions) {
    session->Close();
  }
  gateway->Stop();
  return per_sec;
}

// ---- Section 2: verify-overlap gain.

struct WireLoad {
  std::vector<Bytes> frames;  // encoded trap submissions
};

WireLoad BuildLoad(Round& round, size_t count) {
  Rng rng(uint64_t{0xfeed5});
  WireLoad load;
  for (size_t i = 0; i < count; i++) {
    uint32_t gid = static_cast<uint32_t>(i % round.NumGroups());
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("overlap " +
                                                    std::to_string(i))),
                                  round.layout(), rng);
    sub.client_id = 10000 + i;
    load.frames.push_back(EncodeTrapSubmission(sub));
  }
  return load;
}

// Accept-then-verify: every frame decoded before any verification runs —
// the pre-streaming intake shape.
double SerialIntake(const WireLoad& load, size_t producers,
                    size_t* accepted_out) {
  RoundConfig config = IngestConfig();
  Rng rng(uint64_t{0x16e57});
  Round round(config, rng);
  auto start = Clock::now();
  std::vector<TrapSubmission> decoded(load.frames.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; p++) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= load.frames.size()) {
          return;
        }
        auto sub = DecodeTrapSubmission(BytesView(load.frames[i]));
        if (sub) {
          decoded[i] = std::move(*sub);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<bool> accepted =
      round.SubmitTrapBatch(decoded, config.workers);
  double wall_ms = MillisSince(start);
  *accepted_out = static_cast<size_t>(
      std::count(accepted.begin(), accepted.end(), true));
  return wall_ms;
}

// Streaming intake: producers decode+push, pumps verify concurrently.
double PipelinedIntake(const WireLoad& load, size_t producers,
                       size_t* accepted_out) {
  RoundConfig config = IngestConfig();
  Rng rng(uint64_t{0x16e57});
  Round round(config, rng);
  const size_t total = load.frames.size();
  std::atomic<size_t> resolved{0};
  std::atomic<size_t> accepted{0};

  // One pump lane per shard, exactly the gateway's discipline.
  struct Pump {
    explicit Pump(ThreadPool* pool) : serial(pool) {}
    SerialExecutor serial;
    std::atomic<bool> scheduled{false};
  };
  std::vector<std::unique_ptr<Pump>> pumps;
  for (size_t g = 0; g < round.NumGroups(); g++) {
    pumps.push_back(std::make_unique<Pump>(nullptr));
  }
  auto pump_shard = [&](uint32_t gid) {
    round.PumpStream(gid, config.workers,
                     [&](uint64_t, bool ok) {
                       if (ok) {
                         accepted.fetch_add(1);
                       }
                       resolved.fetch_add(1);
                     });
  };
  auto schedule = [&](uint32_t gid) {
    Pump& pump = *pumps[gid];
    if (pump.scheduled.exchange(true)) {
      return;
    }
    pump.serial.Submit([&, gid] {
      pumps[gid]->scheduled.store(false);
      pump_shard(gid);
    });
  };

  auto start = Clock::now();
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < producers; p++) {
    threads.emplace_back([&] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= total) {
          return;
        }
        auto sub = DecodeTrapSubmission(BytesView(load.frames[i]));
        if (!sub) {
          resolved.fetch_add(1);
          continue;
        }
        StreamedSubmission item;
        item.cookie = i + 1;
        uint32_t gid = sub->entry_gid;
        item.trap = std::move(*sub);
        while (!round.StreamSubmit(std::move(item))) {
          // Ring full: the bound is the backpressure. Let the pump catch
          // up, then retry — item survives the failed push untouched
          // only because StreamSubmit rejected before consuming it, so
          // rebuild defensively.
          schedule(gid);
          std::this_thread::yield();
          auto again = DecodeTrapSubmission(BytesView(load.frames[i]));
          item = StreamedSubmission{};
          item.cookie = i + 1;
          item.trap = std::move(*again);
        }
        schedule(gid);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Producers done: final pumps drain the tails.
  while (resolved.load() < total) {
    for (uint32_t g = 0; g < pumps.size(); g++) {
      pumps[g]->serial.Submit([&, g] { pump_shard(g); });
      pumps[g]->serial.Drain();
    }
  }
  double wall_ms = MillisSince(start);
  *accepted_out = accepted.load();
  return wall_ms;
}

// ---- Section 3: connection scaling across re-exec'd worker pairs.

constexpr uint64_t kScaleIdBase = 1'000'000;
// Verdict latency uses the shared power-of-two histogram from src/obs/
// (the registry's bucket scheme); the pipe wire format below stays one
// count per bucket.
using atom::obs::kLatencyBuckets;
// Concurrent connect+handshake cap in the load generator: far below the
// listener's 4096 backlog, so the SYN queue never drops, while deep
// enough to keep the gateway's handshake pool saturated.
constexpr size_t kSetupWindow = 512;

// Both sides of a worker pair derive the same identities from the pair's
// seed, so the gateway can pre-seed its registry and the load generator
// can complete handshakes without any key exchange over the control pipe.
KemKeypair ScaleGatewayKey(uint64_t seed) {
  Rng rng(seed ^ uint64_t{0x6a7e3a7e});
  return KemKeyGen(rng);
}

std::vector<SchnorrKeypair> ScaleClientKeys(uint64_t seed, size_t sessions) {
  Rng rng(seed ^ uint64_t{0xc11e9745});
  std::vector<SchnorrKeypair> keys(sessions);
  for (auto& k : keys) {
    k = SchnorrKeyGen(rng);
  }
  return keys;
}

struct ScalePlan {
  size_t requested = 0;
  size_t total = 0;     // sessions actually planned (fd-limit aware)
  size_t pairs = 0;     // gateway/loadgen process pairs
  size_t per_pair = 0;  // sessions per pair (last pair takes the rest)
  uint64_t nofile = 0;

  size_t SessionsFor(size_t pair) const {
    return pair + 1 == pairs ? total - per_pair * (pairs - 1) : per_pair;
  }
};

ScalePlan PlanShards(size_t requested) {
  ScalePlan plan;
  plan.requested = requested;
  plan.nofile = RaiseNoFileLimit();
  // One socket per session plus a few dozen descriptors of the process's
  // own (epoll, eventfd, pipes, listener); 512 is the safety margin.
  size_t budget = plan.nofile > 1024 ? plan.nofile - 512 : plan.nofile / 2;
  plan.per_pair = std::max<size_t>(1, std::min(requested, budget));
  plan.pairs = (requested + plan.per_pair - 1) / plan.per_pair;
  const size_t kMaxPairs = 32;  // process-count sanity bound
  plan.pairs = std::min(plan.pairs, kMaxPairs);
  plan.total = std::min(requested, plan.pairs * plan.per_pair);
  return plan;
}

// --worker-gateway: one ingress shard — its own Round, a registry
// pre-seeded with the pair's derived client keys, and the chosen gateway
// backend. Prints its port, then serves until EXIT on stdin.
int GatewayWorkerMain(GatewayBackend backend, uint64_t seed,
                      size_t sessions) {
  RaiseNoFileLimit();
  RoundConfig config = IngestConfig();
  Rng rng(seed);
  Round round(config, rng);
  ClientRegistry registry;
  {
    auto keys = ScaleClientKeys(seed, sessions);
    for (size_t i = 0; i < sessions; i++) {
      ClientRecord record;
      record.client_id = kScaleIdBase + i;
      record.pk = keys[i].pk;
      if (!registry.Add(record)) {
        std::fprintf(stderr, "worker-gateway: registry add failed\n");
        return 1;
      }
    }
  }
  GatewayConfig gc;
  gc.verify_workers = config.workers;
  // The load generator paces its handshakes, but on an oversubscribed
  // host the tail of a 100k storm can sit behind minutes of queued
  // crypto; the reaper's correctness is reactor_test's job, not this
  // bench's, so give the deadline room.
  gc.handshake_deadline_ms = 600'000;
  std::unique_ptr<ClientGateway> gateway = MakeClientGateway(
      backend, &round, &registry, ScaleGatewayKey(seed), gc);
  if (!gateway->Listen(0)) {
    std::fprintf(stderr, "worker-gateway: listen failed\n");
    return 1;
  }
  gateway->Start();
  gateway->OpenRound(1);
  std::printf("PORT %u\n", gateway->port());
  std::fflush(stdout);

  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    if (std::strncmp(line, "CUTOFF", 6) == 0) {
      gateway->Cutoff();
      std::printf("STATS %zu %zu %zu\n", gateway->accepted_count(),
                  gateway->resolved_count(), gateway->connection_count());
      std::fflush(stdout);
    } else if (std::strncmp(line, "EXIT", 4) == 0) {
      break;
    }
  }
  gateway->Stop();
  return 0;
}

// --worker-loadgen: this pair's client half — an epoll state machine per
// session (connect -> hello -> confirm -> welcome -> submit -> verdict),
// over the same resumable handshake objects the reactor itself uses.
// Reports CONNECTED after every session is established and its
// submission prebuilt, then waits for the parent's SUBMIT barrier so the
// storm lands at peak host-wide concurrency.
int LoadgenWorkerMain(uint16_t port, uint64_t seed, size_t sessions) {
  RaiseNoFileLimit();
  std::signal(SIGPIPE, SIG_IGN);
  Rng rng(seed ^ uint64_t{0x10ad9e4});
  auto keys = ScaleClientKeys(seed, sessions);
  KemKeypair gateway_key = ScaleGatewayKey(seed);  // only .pk is used
  // Every session encapsulates to the same gateway key: precompute once.
  FixedBaseTable gateway_table(gateway_key.pk);
  const size_t num_groups = IngestConfig().params.num_groups;

  struct Sess {
    int fd = -1;
    enum class S : uint8_t {
      kConnecting,
      kHelloSent,
      kConfirmSent,
      kReady,
      kAwaitVerdict,
      kDone,
      kFailed,
    } state = S::kConnecting;
    uint64_t id = 0;
    uint32_t gid = 0;
    LinkDialerHandshake hs;
    FrameAssembler assembler{kMaxHandshakeFrame};
    RecordChannel channel;
    Bytes out;
    size_t out_pos = 0;
    Bytes submit_plain;  // kSubmit client frame, sealed fresh per (re)try
    Clock::time_point submit_at{};
  };
  using S = Sess::S;

  int ep = epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    std::fprintf(stderr, "worker-loadgen: epoll_create1 failed\n");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  std::vector<Sess> sess(sessions);
  size_t inflight = 0, welcomed = 0, failed = 0;
  size_t done = 0, accepted = 0, rejected = 0, backpressure = 0;
  atom::obs::Pow2Hist hist;
  std::vector<size_t> retry;
  GatewayWelcome welcome;
  bool have_welcome = false;
  auto last_progress = Clock::now();

  auto fail = [&](Sess& s) {
    if (s.state == S::kFailed || s.state == S::kDone) {
      return;
    }
    if (s.state == S::kAwaitVerdict) {
      done++;  // resolve the submit-phase wait; the parent gate catches it
    } else if (s.state != S::kReady) {
      inflight--;
    }
    s.state = S::kFailed;
    failed++;
    if (s.fd >= 0) {
      epoll_ctl(ep, EPOLL_CTL_DEL, s.fd, nullptr);
      close(s.fd);
      s.fd = -1;
    }
  };

  auto update_interest = [&](size_t i) {
    Sess& s = sess[i];
    if (s.fd < 0) {
      return;
    }
    epoll_event ev{};
    ev.data.u64 = i;
    ev.events = s.state == S::kConnecting
                    ? EPOLLOUT
                    : (EPOLLIN |
                       (s.out_pos < s.out.size() ? EPOLLOUT : 0u));
    epoll_ctl(ep, EPOLL_CTL_MOD, s.fd, &ev);
  };

  auto flush = [&](size_t i) {
    Sess& s = sess[i];
    while (s.fd >= 0 && s.out_pos < s.out.size()) {
      ssize_t n = send(s.fd, s.out.data() + s.out_pos,
                       s.out.size() - s.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        s.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      fail(s);
      return;
    }
    if (s.fd >= 0 && s.out_pos == s.out.size()) {
      s.out.clear();
      s.out_pos = 0;
    }
  };

  auto queue_bytes = [&](size_t i, Bytes bytes) {
    Sess& s = sess[i];
    s.out.insert(s.out.end(), bytes.begin(), bytes.end());
    flush(i);
    update_interest(i);
  };

  auto start_session = [&](size_t i) {
    Sess& s = sess[i];
    s.id = kScaleIdBase + i;
    s.gid = static_cast<uint32_t>(i % num_groups);
    s.fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (s.fd < 0) {
      s.state = S::kFailed;
      failed++;
      return;
    }
    int one = 1;
    setsockopt(s.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connect(s.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0 &&
        errno != EINPROGRESS) {
      close(s.fd);
      s.fd = -1;
      s.state = S::kFailed;
      failed++;
      return;
    }
    inflight++;
    epoll_event ev{};
    ev.data.u64 = i;
    ev.events = EPOLLOUT;
    epoll_ctl(ep, EPOLL_CTL_ADD, s.fd, &ev);
  };

  auto on_connected = [&](size_t i) {
    Sess& s = sess[i];
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(s.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      fail(s);
      return;
    }
    KemKeypair self{keys[i].sk, keys[i].pk};
    Bytes hello = s.hs.Start(s.id, self, kGatewayLinkId, gateway_key.pk,
                             rng, &gateway_table);
    s.state = S::kHelloSent;
    queue_bytes(i, EncodeFrame(BytesView(hello)));
  };

  auto process_frames = [&](size_t i) {
    Sess& s = sess[i];
    while (s.fd >= 0) {
      auto frame = s.assembler.Next();
      if (!frame) {
        if (s.assembler.poisoned()) {
          fail(s);
        }
        return;
      }
      if (s.state == S::kHelloSent) {
        auto confirm = s.hs.OnResponse(BytesView(*frame));
        if (!confirm) {
          fail(s);
          return;
        }
        s.channel = s.hs.TakeChannel();
        s.assembler.set_max_payload(kMaxFramePayload + kAeadTagSize);
        s.state = S::kConfirmSent;
        queue_bytes(i, EncodeFrame(BytesView(*confirm)));
        continue;
      }
      auto payload = s.channel.Open(BytesView(*frame));
      if (!payload) {
        fail(s);
        return;
      }
      auto cf = UnpackClientFrame(BytesView(*payload));
      if (!cf) {
        fail(s);
        return;
      }
      if (s.state == S::kConfirmSent && cf->type == ClientMsg::kWelcome) {
        auto w = DecodeWelcome(BytesView(cf->body));
        if (!w || w->open_round == 0) {
          fail(s);
          return;
        }
        if (!have_welcome) {
          welcome = *w;
          have_welcome = true;
        }
        s.state = S::kReady;
        welcomed++;
        inflight--;
        last_progress = Clock::now();
      } else if (s.state == S::kAwaitVerdict &&
                 cf->type == ClientMsg::kSubmitResult) {
        auto result = DecodeSubmitResult(BytesView(cf->body));
        if (!result) {
          fail(s);
          return;
        }
        last_progress = Clock::now();
        if (result->status == SubmitStatus::kBackpressure) {
          // The bounded ring said "not now" — the verdict returned the
          // credit, so resend (a fresh seal: the record counter moved).
          backpressure++;
          retry.push_back(i);
        } else {
          uint64_t us = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - s.submit_at)
                  .count());
          hist.Observe(us);
          s.state = S::kDone;
          done++;
          if (result->status == SubmitStatus::kAccepted) {
            accepted++;
          } else {
            rejected++;
          }
        }
      }
      // Round open/cutoff notices are broadcast noise for this harness.
    }
  };

  auto on_readable = [&](size_t i) {
    Sess& s = sess[i];
    uint8_t buf[64 * 1024];
    while (s.fd >= 0) {
      ssize_t n = recv(s.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        s.assembler.Feed(BytesView(buf, static_cast<size_t>(n)));
        if (static_cast<size_t>(n) < sizeof(buf)) {
          break;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      fail(s);  // EOF or hard error
      return;
    }
    process_frames(i);
  };

  auto handle_events = [&](int timeout_ms) {
    epoll_event events[256];
    int n = epoll_wait(ep, events, 256, timeout_ms);
    for (int e = 0; e < n; e++) {
      size_t i = events[e].data.u64;
      Sess& s = sess[i];
      if (s.fd < 0) {
        continue;
      }
      if (s.state == S::kConnecting) {
        if (events[e].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
          on_connected(i);
          update_interest(i);
        }
        continue;
      }
      if (events[e].events & EPOLLIN) {
        on_readable(i);
      }
      if (s.fd >= 0 && (events[e].events & EPOLLOUT)) {
        flush(i);
        update_interest(i);
      }
      if (s.fd >= 0 && !(events[e].events & (EPOLLIN | EPOLLOUT)) &&
          (events[e].events & (EPOLLERR | EPOLLHUP))) {
        fail(s);
      }
    }
  };

  // Phase 1: paced connect + handshake until every session is welcomed.
  auto setup_start = Clock::now();
  size_t next_start = 0;
  while (welcomed + failed < sessions) {
    while (next_start < sessions && inflight < kSetupWindow) {
      start_session(next_start++);
    }
    handle_events(100);
    if (MillisSince(last_progress) > 300'000) {
      std::fprintf(stderr, "worker-loadgen: setup stalled at %zu/%zu\n",
                   welcomed, sessions);
      break;
    }
  }
  double setup_ms = MillisSince(setup_start);

  // Prebuild every submission outside the measured submit window (the
  // welcome carried the entry-group and trustee keys; precomputed tables
  // make the 100k build tractable).
  if (have_welcome &&
      static_cast<Variant>(welcome.variant) == Variant::kTrap &&
      welcome.trustee_pk.has_value()) {
    MessageLayout layout;
    layout.plaintext_len = welcome.plaintext_len;
    layout.padded_len = welcome.padded_len;
    layout.num_points = welcome.num_points;
    std::vector<std::unique_ptr<FixedBaseTable>> entry_tables;
    for (const auto& pk : welcome.entry_pks) {
      entry_tables.push_back(std::make_unique<FixedBaseTable>(pk));
    }
    FixedBaseTable trustee_table(*welcome.trustee_pk);
    for (size_t i = 0; i < sessions; i++) {
      Sess& s = sess[i];
      if (s.state != S::kReady || s.gid >= entry_tables.size()) {
        continue;
      }
      auto sub = MakeTrapSubmission(
          *entry_tables[s.gid], s.gid, trustee_table,
          BytesView(ToBytes("scale " + std::to_string(s.id))), layout, rng);
      sub.client_id = s.id;
      Bytes encoded = EncodeTrapSubmission(sub);
      SchnorrSignature sig = SchnorrSign(
          keys[i].sk, keys[i].pk,
          BytesView(SubmissionSigMessage(BytesView(encoded))), rng);
      s.submit_plain = PackClientFrame(
          ClientMsg::kSubmit,
          BytesView(EncodeSubmitSigned(1, BytesView(encoded), sig)));
    }
  }

  std::printf("CONNECTED %zu %.1f %zu\n", welcomed, setup_ms, failed);
  std::fflush(stdout);
  char line[256];
  if (std::fgets(line, sizeof(line), stdin) == nullptr ||
      std::strncmp(line, "SUBMIT", 6) != 0) {
    return 1;
  }

  // Phase 2: the submit storm, at peak host-wide concurrency.
  auto submit_start = Clock::now();
  last_progress = submit_start;
  for (size_t i = 0; i < sessions; i++) {
    Sess& s = sess[i];
    if (s.state != S::kReady || s.submit_plain.empty()) {
      continue;
    }
    s.state = S::kAwaitVerdict;
    s.submit_at = Clock::now();
    queue_bytes(i, EncodeFrame(BytesView(s.channel.Seal(
                       BytesView(s.submit_plain)))));
  }
  auto last_retry_flush = Clock::now();
  while (done < welcomed) {
    handle_events(50);
    if (!retry.empty() && MillisSince(last_retry_flush) > 50) {
      std::vector<size_t> batch;
      batch.swap(retry);
      for (size_t i : batch) {
        Sess& s = sess[i];
        if (s.state == S::kAwaitVerdict) {
          queue_bytes(i, EncodeFrame(BytesView(s.channel.Seal(
                             BytesView(s.submit_plain)))));
        }
      }
      last_retry_flush = Clock::now();
    }
    if (MillisSince(last_progress) > 300'000) {
      std::fprintf(stderr, "worker-loadgen: submit stalled at %zu/%zu\n",
                   done, welcomed);
      break;
    }
  }
  double submit_ms = MillisSince(submit_start);

  std::printf("DONE %zu %zu %zu %.1f", accepted, rejected, backpressure,
              submit_ms);
  for (size_t b = 0; b < kLatencyBuckets; b++) {
    std::printf(" %llu", static_cast<unsigned long long>(hist.buckets[b]));
  }
  std::printf("\n");
  std::fflush(stdout);
  std::fgets(line, sizeof(line), stdin);  // EXIT

  for (auto& s : sess) {
    if (s.fd >= 0) {
      close(s.fd);
    }
  }
  close(ep);
  return 0;
}

// ---- Section 3, parent side: spawn, barrier, merge.

struct WorkerProc {
  pid_t pid = -1;
  int to_child = -1;  // parent writes phase commands here
  std::FILE* from_child = nullptr;
};

WorkerProc SpawnWorker(const std::vector<std::string>& args) {
  WorkerProc proc;
  int to_pipe[2], from_pipe[2];
  if (pipe(to_pipe) != 0 || pipe(from_pipe) != 0) {
    return proc;
  }
  pid_t pid = fork();
  if (pid < 0) {
    return proc;
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec (other
    // threads — pools, reactors — exist in the parent image).
    dup2(to_pipe[0], 0);
    dup2(from_pipe[1], 1);
    close(to_pipe[0]);
    close(to_pipe[1]);
    close(from_pipe[0]);
    close(from_pipe[1]);
    std::vector<char*> child_argv;
    child_argv.reserve(args.size() + 1);
    for (const auto& a : args) {
      child_argv.push_back(const_cast<char*>(a.c_str()));
    }
    child_argv.push_back(nullptr);
    execv("/proc/self/exe", child_argv.data());
    _exit(127);
  }
  close(to_pipe[0]);
  close(from_pipe[1]);
  proc.pid = pid;
  proc.to_child = to_pipe[1];
  proc.from_child = fdopen(from_pipe[0], "r");
  return proc;
}

void SendCommand(WorkerProc& proc, const char* cmd) {
  if (proc.to_child >= 0) {
    std::string line = std::string(cmd) + "\n";
    ssize_t ignored = write(proc.to_child, line.data(), line.size());
    (void)ignored;
  }
}

void ReapWorker(WorkerProc& proc) {
  if (proc.to_child >= 0) {
    close(proc.to_child);
    proc.to_child = -1;
  }
  if (proc.from_child != nullptr) {
    std::fclose(proc.from_child);
    proc.from_child = nullptr;
  }
  if (proc.pid > 0) {
    int status = 0;
    waitpid(proc.pid, &status, 0);
    proc.pid = -1;
  }
}

bool RunConnectionScaling(size_t requested, GatewayBackend backend,
                          BenchJson& json) {
  std::signal(SIGPIPE, SIG_IGN);
  ScalePlan plan = PlanShards(requested);
  std::printf("\nconnection scaling (%s): %zu sessions across %zu "
              "gateway/loadgen pairs (RLIMIT_NOFILE %llu, %zu per pair)\n",
              BackendName(backend), plan.total, plan.pairs,
              static_cast<unsigned long long>(plan.nofile), plan.per_pair);
  if (plan.total < plan.requested) {
    std::printf("NOTE: fd limit caps this host at %zu of the %zu "
                "requested sessions; reporting the achieved count\n",
                plan.total, plan.requested);
  }

  std::vector<WorkerProc> gateways(plan.pairs), loadgens(plan.pairs);
  std::vector<uint16_t> ports(plan.pairs, 0);
  auto cleanup = [&] {
    for (auto& w : loadgens) {
      SendCommand(w, "EXIT");
      ReapWorker(w);
    }
    for (auto& w : gateways) {
      SendCommand(w, "EXIT");
      ReapWorker(w);
    }
  };

  for (size_t p = 0; p < plan.pairs; p++) {
    uint64_t seed = uint64_t{0x5ca1e000} + p;
    gateways[p] = SpawnWorker(
        {"bench_ingest", "--worker-gateway",
         std::to_string(static_cast<int>(backend)), std::to_string(seed),
         std::to_string(plan.SessionsFor(p))});
    if (gateways[p].from_child == nullptr ||
        std::fscanf(gateways[p].from_child, "PORT %hu", &ports[p]) != 1) {
      std::fprintf(stderr, "scaling: gateway worker %zu failed to start\n",
                   p);
      cleanup();
      return false;
    }
  }
  for (size_t p = 0; p < plan.pairs; p++) {
    uint64_t seed = uint64_t{0x5ca1e000} + p;
    loadgens[p] = SpawnWorker(
        {"bench_ingest", "--worker-loadgen", std::to_string(ports[p]),
         std::to_string(seed), std::to_string(plan.SessionsFor(p))});
    if (loadgens[p].from_child == nullptr) {
      std::fprintf(stderr, "scaling: loadgen worker %zu failed to start\n",
                   p);
      cleanup();
      return false;
    }
  }

  // Barrier input: every pair reports established-and-prebuilt.
  size_t connected = 0, setup_failures = 0;
  double max_setup_ms = 0;
  for (size_t p = 0; p < plan.pairs; p++) {
    size_t n = 0, f = 0;
    double ms = 0;
    if (std::fscanf(loadgens[p].from_child, "CONNECTED %zu %lf %zu", &n,
                    &ms, &f) != 3) {
      std::fprintf(stderr, "scaling: loadgen %zu died before barrier\n", p);
      cleanup();
      return false;
    }
    connected += n;
    setup_failures += f;
    max_setup_ms = std::max(max_setup_ms, ms);
    size_t row = json.Row();
    json.RowStr(row, "kind", "scale_pair");
    json.RowNum(row, "pair", static_cast<double>(p));
    json.RowNum(row, "sessions", static_cast<double>(n));
    json.RowNum(row, "setup_ms", ms);
  }

  // Barrier release: submit at peak host-wide concurrency.
  auto submit_start = Clock::now();
  for (auto& w : loadgens) {
    SendCommand(w, "SUBMIT");
  }
  size_t accepted = 0, rejected = 0, backpressure = 0;
  atom::obs::Pow2Hist hist;
  for (size_t p = 0; p < plan.pairs; p++) {
    size_t a = 0, r = 0, b = 0;
    double ms = 0;
    if (std::fscanf(loadgens[p].from_child, " DONE %zu %zu %zu %lf", &a,
                    &r, &b, &ms) != 4) {
      std::fprintf(stderr, "scaling: loadgen %zu died mid-submit\n", p);
      cleanup();
      return false;
    }
    for (size_t i = 0; i < kLatencyBuckets; i++) {
      unsigned long long count = 0;
      if (std::fscanf(loadgens[p].from_child, " %llu", &count) != 1) {
        cleanup();
        return false;
      }
      hist.buckets[i] += count;
    }
    accepted += a;
    rejected += r;
    backpressure += b;
  }
  double submit_wall_ms = MillisSince(submit_start);

  for (auto& w : loadgens) {
    SendCommand(w, "EXIT");
    ReapWorker(w);
  }
  size_t gw_accepted = 0;
  for (auto& w : gateways) {
    SendCommand(w, "CUTOFF");
    size_t a = 0, res = 0, conns = 0;
    if (std::fscanf(w.from_child, " STATS %zu %zu %zu", &a, &res, &conns) ==
        3) {
      gw_accepted += a;
    }
    SendCommand(w, "EXIT");
    ReapWorker(w);
  }

  // Percentiles from the merged power-of-two histogram (bucket b covers
  // [2^b, 2^(b+1)) microseconds; the upper edge is reported).
  double p50_us = hist.Percentile(0.50);
  double p99_us = hist.Percentile(0.99);
  double setup_per_sec =
      max_setup_ms > 0 ? connected / (max_setup_ms / 1000.0) : 0;
  double accepted_per_sec =
      submit_wall_ms > 0 ? accepted / (submit_wall_ms / 1000.0) : 0;

  std::printf("%-28s %6zu concurrent sessions established\n",
              "peak concurrency", connected);
  std::printf("%-28s %10.1f sessions/sec (slowest pair: %.1f ms)\n",
              "connection setup", setup_per_sec, max_setup_ms);
  std::printf("%-28s %10.1f accepted subs/sec (%.1f ms storm)\n",
              "admission at peak", accepted_per_sec, submit_wall_ms);
  std::printf("%-28s p50 <= %.0f us, p99 <= %.0f us (%zu backpressure "
              "retries)\n",
              "admission latency", p50_us, p99_us, backpressure);

  json.Str("scale_backend", BackendName(backend));
  json.Num("scale_connections_requested",
           static_cast<double>(plan.requested));
  json.Num("scale_connections", static_cast<double>(connected));
  json.Num("scale_pairs", static_cast<double>(plan.pairs));
  json.Num("scale_nofile_limit", static_cast<double>(plan.nofile));
  json.Num("connection_setup_per_sec", setup_per_sec);
  json.Num("scale_setup_wall_ms", max_setup_ms);
  json.Num("scale_accepted", static_cast<double>(accepted));
  json.Num("scale_accepted_per_sec", accepted_per_sec);
  json.Num("scale_submit_wall_ms", submit_wall_ms);
  json.Num("admission_p50_us", p50_us);
  json.Num("admission_p99_us", p99_us);
  json.Num("scale_backpressure_retries", static_cast<double>(backpressure));

  // Correctness gates, enforced in every mode: each pair established all
  // of its sessions, every established session's submission was accepted
  // (backpressure verdicts must convert into acceptance via retry, never
  // loss), and the gateways' own counters agree with the clients'.
  if (setup_failures != 0 || connected != plan.total) {
    std::fprintf(stderr,
                 "scaling: only %zu/%zu sessions established "
                 "(%zu failures)\n",
                 connected, plan.total, setup_failures);
    return false;
  }
  if (accepted != connected || rejected != 0) {
    std::fprintf(stderr,
                 "scaling: %zu/%zu submissions accepted (%zu rejected)\n",
                 accepted, connected, rejected);
    return false;
  }
  if (gw_accepted != accepted) {
    std::fprintf(stderr,
                 "scaling: gateways counted %zu accepted, clients %zu\n",
                 gw_accepted, accepted);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Internal re-exec entry points for the scaling section's worker pairs.
  if (argc == 5 && std::strcmp(argv[1], "--worker-gateway") == 0) {
    return GatewayWorkerMain(
        static_cast<GatewayBackend>(std::atoi(argv[2])),
        std::strtoull(argv[3], nullptr, 10),
        std::strtoull(argv[4], nullptr, 10));
  }
  if (argc == 5 && std::strcmp(argv[1], "--worker-loadgen") == 0) {
    return LoadgenWorkerMain(
        static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10)),
        std::strtoull(argv[3], nullptr, 10),
        std::strtoull(argv[4], nullptr, 10));
  }

  bool smoke = false;
  bool scale_only = false;
  size_t connections = 0;  // 0 = mode default
  GatewayBackend scale_backend = GatewayBackend::kReactor;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--scale-only") == 0) {
      scale_only = true;
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--scale-backend") == 0 &&
               i + 1 < argc) {
      scale_backend = std::strcmp(argv[++i], "threads") == 0
                          ? GatewayBackend::kThreadPerConnection
                          : GatewayBackend::kReactor;
    } else {
      std::fprintf(stderr,
                   "usage: bench_ingest [--smoke] [--scale-only] "
                   "[--connections N] [--scale-backend threads|reactor]\n");
      return 2;
    }
  }
  RaiseNoFileLimit();
  const size_t clients = smoke ? 6 : 24;
  const size_t overlap_subs = smoke ? 32 : 256;
  if (connections == 0) {
    connections = smoke ? 2048 : 100'000;
  }
  // Few producers, many verify workers: the gateway shape (a handful of
  // connection readers feeding a pool-wide verification stage).
  const size_t producers = 2;

  PrintHeader("bench_ingest: client ingress tier",
              "streaming intake overlaps proof verification with "
              "acceptance (§4.2 entry phase at millions-of-users scale)");
  BenchJson json("bench_ingest");
  json.Bool("smoke", smoke);

  if (!scale_only) {
    GatewayThroughput(GatewayBackend::kThreadPerConnection, clients, json,
                      /*legacy_fields=*/true);
    GatewayThroughput(GatewayBackend::kReactor, clients, json,
                      /*legacy_fields=*/false);
    if (!smoke) {
      // The gain gate: both backends at a concurrency the baseline can
      // still serve. Admission throughput is crypto-bound for both (the
      // pool verifies either way), so the reactor's structural win is
      // holding orders of magnitude more sessions for the same rate —
      // this gate pins "no throughput regression at the baseline's
      // knee"; the scale section shows the headroom. Only gated where a
      // scheduler exists to contend with (>= 2 hardware threads).
      const size_t gate_clients = 512;
      double threads_ps = GatewayThroughput(
          GatewayBackend::kThreadPerConnection, gate_clients, json, false);
      double reactor_ps = GatewayThroughput(GatewayBackend::kReactor,
                                            gate_clients, json, false);
      double gain = threads_ps > 0 ? reactor_ps / threads_ps : 0;
      bool enforce = HardwareThreads() >= 2;
      std::printf("reactor vs thread-per-connection @%zu clients: %.2fx\n",
                  gate_clients, gain);
      json.Num("scale_gate_clients", static_cast<double>(gate_clients));
      json.Num("threads_subs_per_sec", threads_ps);
      json.Num("reactor_subs_per_sec", reactor_ps);
      json.Num("reactor_gain", gain);
      json.Bool("gain_gate_enforced", enforce);
      if (enforce && gain < 0.9) {
        std::fprintf(stderr,
                     "reactor (%.1f subs/sec) regressed below "
                     "thread-per-connection (%.1f subs/sec) at %zu "
                     "clients\n",
                     reactor_ps, threads_ps, gate_clients);
        return 1;
      }
      if (!enforce) {
        std::printf("(single hardware thread: reactor gain not gated)\n");
      }
    }

    Rng rng(uint64_t{0x16e57});
    RoundConfig config = IngestConfig();
    Round layout_round(config, rng);
    WireLoad load = BuildLoad(layout_round, overlap_subs);

    size_t serial_accepted = 0, pipelined_accepted = 0;
    double serial_ms = SerialIntake(load, producers, &serial_accepted);
    double pipelined_ms = PipelinedIntake(load, producers,
                                          &pipelined_accepted);
    double gain = serial_ms / pipelined_ms;
    std::printf("%-28s %6zu subs     %8.1f ms   (decode-all, then "
                "verify)\n",
                "accept-then-verify", overlap_subs, serial_ms);
    std::printf("%-28s %6zu subs     %8.1f ms   (verify overlaps reads)\n",
                "pipelined streaming intake", overlap_subs, pipelined_ms);
    std::printf("verify-overlap gain: %.2fx\n", gain);
    json.Num("overlap_submissions", static_cast<double>(overlap_subs));
    json.Num("serial_ms", serial_ms);
    json.Num("pipelined_ms", pipelined_ms);
    json.Num("overlap_gain", gain);

    if (serial_accepted != overlap_subs ||
        pipelined_accepted != overlap_subs) {
      std::fprintf(stderr,
                   "acceptance mismatch: serial %zu, pipelined %zu, want "
                   "%zu\n",
                   serial_accepted, pipelined_accepted, overlap_subs);
      return 1;
    }
    // Overlap is a concurrency win: accept-then-verify wastes the idle
    // cores during its decode phase, which the pipelined intake keeps
    // fed. On a single hardware thread there is no idle core to reclaim,
    // so the comparison degenerates to noise — report it, but only gate
    // where the win is physically possible (and --smoke never gates: CI
    // runners are too noisy for a hard perf assertion on every push).
    if (!smoke && HardwareThreads() >= 2 && gain <= 1.0) {
      std::fprintf(stderr,
                   "pipelined intake (%.1f ms) did not beat "
                   "accept-then-verify (%.1f ms)\n",
                   pipelined_ms, serial_ms);
      return 1;
    }
    if (HardwareThreads() < 2) {
      std::printf("(single hardware thread: overlap gain not gated)\n");
    }
  }
  json.Num("hardware_threads", static_cast<double>(HardwareThreads()));

  if (!RunConnectionScaling(connections, scale_backend, json)) {
    return 1;
  }
  std::printf("ingest pipeline: OK\n");
  return 0;
}
