// Executed pipelining (§4.7): the RoundEngine running the real permutation
// network, measured — not the analytical EstimatePipelined model.
//
// Sequential mode drains each round before admitting the next (the old
// layer-barrier driver's schedule). Pipelined mode submits R rounds at
// once: hop (r, ℓ, g) runs as soon as its inputs arrive, so while round r
// occupies layer ℓ, round r+1 occupies layer ℓ-1 — a new batch enters the
// network every layer-time. On an N-core host the pipeline keeps every
// core busy and approaches min(N, in-flight work) speedup; with 3+ rounds
// in flight a multi-core host should see >= 2x executed throughput.
//
// The end-to-end section then runs the full protocol path — sharded
// intake (pool-verified batch submission), mixing, AND the engine-native
// exit phase (trap sort/check/trustee/decrypt as hop tasks) — pipelined
// over several engine rounds of one key epoch. Because exit work overlaps
// the next round's mixing instead of serializing on the caller, the
// end-to-end throughput must stay within 1.25x of mixing-only throughput;
// this binary exits non-zero when the exit phase degenerates back into a
// serial tail. `--smoke` shrinks every knob so CI can run the whole
// intake→mix→exit path in seconds on every push.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"
#include "src/core/round.h"
#include "src/crypto/elgamal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/parallel.h"

namespace {

using atom::CiphertextBatch;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MixNetwork {
  std::unique_ptr<atom::SquareTopology> topology;
  std::vector<std::unique_ptr<atom::GroupRuntime>> groups;
  std::vector<const atom::GroupRuntime*> ptrs;

  MixNetwork(size_t width, size_t iterations, size_t k, atom::Rng& rng) {
    topology = std::make_unique<atom::SquareTopology>(width, iterations);
    for (uint32_t g = 0; g < width; g++) {
      groups.push_back(std::make_unique<atom::GroupRuntime>(
          g, atom::RunDkg(atom::DkgParams{k, k}, rng)));
      ptrs.push_back(groups.back().get());
    }
  }

  std::vector<CiphertextBatch> MakeEntry(size_t per_group, atom::Rng& rng) {
    std::vector<CiphertextBatch> entry(topology->Width());
    for (uint32_t g = 0; g < topology->Width(); g++) {
      for (size_t i = 0; i < per_group; i++) {
        atom::Bytes payload = {static_cast<uint8_t>(g),
                               static_cast<uint8_t>(i)};
        entry[g].push_back({atom::ElGamalEncrypt(
            groups[g]->pk(),
            *atom::EmbedMessage(atom::BytesView(payload)), rng)});
      }
    }
    return entry;
  }

  atom::EngineRound Spec(std::vector<CiphertextBatch> entry,
                         atom::Rng& rng) const {
    atom::EngineRound spec;
    spec.topology = topology.get();
    spec.groups = ptrs;
    spec.variant = atom::Variant::kTrap;
    spec.hop_workers = 1;  // pipeline parallelism only, for a clean A/B
    spec.entry = std::move(entry);
    rng.Fill(spec.seed.data(), spec.seed.size());
    return spec;
  }
};

// End-to-end pipelined execution over one key epoch: returns 0 on success.
int RunEndToEnd(bool smoke, atom::Rng& rng) {
  using namespace atom;
  const size_t kGroups = 4;
  const size_t kIterations = smoke ? 3 : 4;
  const size_t kUsersPerGroup = smoke ? 3 : 8;
  const size_t kRounds = smoke ? 2 : 4;

  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 8;
  config.params.num_groups = kGroups;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = kIterations;
  config.params.message_len = 32;
  config.beacon = ToBytes("bench-pipeline-e2e");
  Round round(config, rng);

  std::printf("\nend to end: intake -> mix -> exit inside the engine "
              "(%zux%zu square, %zu users/group, %zu rounds in flight)\n",
              kGroups, kIterations, kUsersPerGroup, kRounds);

  // Pre-make every round's submissions so intake timing measures
  // verification + sharded acceptance, not client-side encryption.
  std::vector<std::vector<TrapSubmission>> subs(kRounds);
  for (size_t r = 0; r < kRounds; r++) {
    for (uint32_t g = 0; g < kGroups; g++) {
      for (size_t u = 0; u < kUsersPerGroup; u++) {
        Bytes msg = {static_cast<uint8_t>(r), static_cast<uint8_t>(g),
                     static_cast<uint8_t>(u)};
        auto sub = MakeTrapSubmission(round.EntryPk(g), g, round.TrusteePk(),
                                      BytesView(msg), round.layout(), rng);
        sub.client_id = (r << 16) | (g << 8) | (u + 1);
        subs[r].push_back(std::move(sub));
      }
    }
  }
  const size_t per_round = kGroups * kUsersPerGroup;
  const size_t workers = HardwareThreads();

  RoundEngine engine(&ThreadPool::Shared());

  // Two repetitions, best time of each section: the workload is small
  // (CI smoke-runs this on shared runners), so a single scheduling stall
  // in one rep must not be able to fail the tail-ratio gate below.
  double intake_seconds = 0;
  double mix_seconds = 0, e2e_seconds = 0;
  std::vector<uint64_t> tickets;
  for (int rep = 0; rep < 2; rep++) {
    // Intake + take: each round's submissions verify on the shared pool,
    // then drain into a self-contained spec (its own trap commitments).
    // Resubmitting the same client ids is fine — every take starts a
    // fresh intake epoch.
    std::vector<EngineRound> e2e_specs, mix_specs;
    auto t_intake = Clock::now();
    for (size_t r = 0; r < kRounds; r++) {
      auto accepted = round.SubmitTrapBatch(subs[r], workers);
      for (bool ok : accepted) {
        if (!ok) {
          std::fprintf(stderr, "intake rejected an honest submission\n");
          return 1;
        }
      }
      e2e_specs.push_back(round.TakeEngineRound({}, rng));
    }
    double intake_rep = SecondsSince(t_intake);
    intake_seconds =
        rep == 0 ? intake_rep : std::min(intake_seconds, intake_rep);
    // Mixing-only twins built from the same ciphertexts for the A/B.
    for (size_t r = 0; r < kRounds; r++) {
      std::vector<CiphertextBatch> entry(kGroups);
      for (const TrapSubmission& sub : subs[r]) {
        entry[sub.entry_gid].push_back(sub.first);
        entry[sub.entry_gid].push_back(sub.second);
      }
      mix_specs.push_back(round.MakeEngineRound(std::move(entry), {}, rng));
    }

    // A: mixing only, pipelined (what the old bench measured).
    auto t_mix = Clock::now();
    tickets.clear();
    for (auto& spec : mix_specs) {
      tickets.push_back(engine.Submit(std::move(spec)));
    }
    for (uint64_t ticket : tickets) {
      if (engine.Wait(ticket).aborted) {
        std::fprintf(stderr, "mixing-only round aborted\n");
        return 1;
      }
    }
    double mix_rep = SecondsSince(t_mix);
    mix_seconds = rep == 0 ? mix_rep : std::min(mix_seconds, mix_rep);

    // B: full rounds, pipelined — the exit phase rides the same DAG, so
    // round r's trap sorting overlaps round r+1's mixing.
    auto t_e2e = Clock::now();
    tickets.clear();
    for (auto& spec : e2e_specs) {
      tickets.push_back(engine.Submit(std::move(spec)));
    }
    for (size_t r = 0; r < tickets.size(); r++) {
      auto result = engine.Wait(tickets[r]).round;
      if (result.aborted) {
        std::fprintf(stderr, "end-to-end round %zu aborted: %s\n", r,
                     result.abort_reason.c_str());
        return 1;
      }
      if (result.plaintexts.size() != per_round ||
          result.traps_seen != per_round) {
        std::fprintf(stderr, "end-to-end round %zu lost messages\n", r);
        return 1;
      }
    }
    double e2e_rep = SecondsSince(t_e2e);
    e2e_seconds = rep == 0 ? e2e_rep : std::min(e2e_seconds, e2e_rep);
  }

  double msgs = static_cast<double>(per_round * kRounds);
  double tail_ratio = e2e_seconds / mix_seconds;
  // Full mode enforces the real 1.25x exit-tail budget; smoke mode runs
  // sub-second sections on shared CI runners, so it keeps the lost-
  // message/abort checks hard but gives the timing gate noise headroom.
  const double budget = smoke ? 2.0 : 1.25;
  std::printf("  intake (verify on %zu workers): %7.0f submissions/s\n",
              workers, msgs / intake_seconds);
  std::printf("  pipelined mixing only:          %7.0f msg/s\n",
              msgs / mix_seconds);
  std::printf("  pipelined intake->mix->exit:    %7.0f msg/s "
              "(%.2fx mixing-only time)\n",
              msgs / e2e_seconds, tail_ratio);
  if (tail_ratio > budget) {
    std::fprintf(stderr, "exit phase is a serial tail again: end-to-end "
                         "took %.2fx mixing-only (budget %.2fx)\n",
                 tail_ratio, budget);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atom;
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PrintHeader("Pipelined round execution (engine, measured)",
              "§4.7: a pipelined deployment admits a new batch every "
              "layer-time instead of every round-time");

  const size_t kWidth = 4;       // groups per layer
  const size_t kIterations = 4;  // mixing layers T
  const size_t kGroupSize = 2;   // servers per group
  const size_t kPerGroup = smoke ? 4 : 16;  // messages per entry group
  Rng rng(0x9173e11e);

  std::printf("\nnetwork: %zux%zu square, k=%zu, %zu msgs/group, "
              "%zu hardware threads%s\n",
              kWidth, kIterations, kGroupSize, kPerGroup, HardwareThreads(),
              smoke ? " (smoke mode)" : "");
  MixNetwork net(kWidth, kIterations, kGroupSize, rng);
  const size_t per_round = kWidth * kPerGroup;

  // Warm-up: one round end to end (also populates any lazy init).
  {
    RoundEngine engine(&ThreadPool::Shared());
    auto r = engine.RunToCompletion(net.Spec(net.MakeEntry(kPerGroup, rng),
                                             rng));
    if (r.aborted) {
      std::fprintf(stderr, "warm-up aborted: %s\n", r.abort_reason.c_str());
      return 1;
    }
  }

  BenchJson json("pipeline_execution");
  json.Bool("smoke", smoke);
  json.Num("width", static_cast<double>(kWidth));
  json.Num("iterations", static_cast<double>(kIterations));
  json.Num("msgs_per_group", static_cast<double>(kPerGroup));
  json.Num("hardware_threads", static_cast<double>(HardwareThreads()));

  std::printf("\n  in-flight | sequential msg/s | pipelined msg/s | gain\n");
  std::printf("  ----------+------------------+-----------------+-----\n");
  double exec_gain_at_3 = 0;
  std::vector<size_t> in_flight_counts =
      smoke ? std::vector<size_t>{1, 3} : std::vector<size_t>{1, 2, 3, 4, 6};
  for (size_t in_flight : in_flight_counts) {
    // Pre-encrypt every round's batch so only mixing is timed.
    std::vector<std::vector<CiphertextBatch>> entries_seq, entries_pipe;
    for (size_t r = 0; r < in_flight; r++) {
      entries_seq.push_back(net.MakeEntry(kPerGroup, rng));
      entries_pipe.push_back(net.MakeEntry(kPerGroup, rng));
    }

    RoundEngine engine(&ThreadPool::Shared());
    auto t0 = Clock::now();
    for (auto& entry : entries_seq) {
      auto r = engine.RunToCompletion(net.Spec(std::move(entry), rng));
      if (r.aborted) {
        std::fprintf(stderr, "sequential round aborted\n");
        return 1;
      }
    }
    double seq_seconds = SecondsSince(t0);

    auto t1 = Clock::now();
    std::vector<uint64_t> tickets;
    for (auto& entry : entries_pipe) {
      tickets.push_back(engine.Submit(net.Spec(std::move(entry), rng)));
    }
    for (uint64_t ticket : tickets) {
      if (engine.Wait(ticket).aborted) {
        std::fprintf(stderr, "pipelined round aborted\n");
        return 1;
      }
    }
    double pipe_seconds = SecondsSince(t1);

    double msgs = static_cast<double>(per_round * in_flight);
    double gain = seq_seconds / pipe_seconds;
    if (in_flight == 3) {
      exec_gain_at_3 = gain;
    }
    std::printf("  %9zu | %16.0f | %15.0f | %3.2fx\n", in_flight,
                msgs / seq_seconds, msgs / pipe_seconds, gain);
    size_t row = json.Row();
    json.RowNum(row, "in_flight", static_cast<double>(in_flight));
    json.RowNum(row, "sequential_msgs_per_second", msgs / seq_seconds);
    json.RowNum(row, "pipelined_msgs_per_second", msgs / pipe_seconds);
    json.RowNum(row, "gain", gain);
  }

  // ---- Observability overhead: the plane must be ~free when dark and
  // cheap when lit. Same 3-in-flight pipelined workload, A/B'd with the
  // timing gate + span collector off (the production default) and on.
  {
    const size_t kInFlight = 3;
    auto run_pipelined = [&]() {
      std::vector<std::vector<CiphertextBatch>> entries;
      for (size_t r = 0; r < kInFlight; r++) {
        entries.push_back(net.MakeEntry(kPerGroup, rng));
      }
      RoundEngine engine(&ThreadPool::Shared());
      auto t = Clock::now();
      std::vector<uint64_t> tickets;
      for (auto& entry : entries) {
        tickets.push_back(engine.Submit(net.Spec(std::move(entry), rng)));
      }
      for (uint64_t ticket : tickets) {
        if (engine.Wait(ticket).aborted) {
          return -1.0;
        }
      }
      return SecondsSince(t);
    };
    double off_seconds = 0, on_seconds = 0;
    for (int rep = 0; rep < 2; rep++) {
      obs::SetTimingEnabled(false);
      double off = run_pipelined();
      obs::Trace::Enable();
      obs::SetTimingEnabled(true);
      double on = run_pipelined();
      obs::SetTimingEnabled(false);
      obs::Trace::Disable();
      obs::Trace::Clear();
      if (off < 0 || on < 0) {
        std::fprintf(stderr, "observability A/B round aborted\n");
        return 1;
      }
      off_seconds = rep == 0 ? off : std::min(off_seconds, off);
      on_seconds = rep == 0 ? on : std::min(on_seconds, on);
    }
    // The dark path is one relaxed load + branch per instrumentation
    // point; measure it directly and express it as a fraction of the hop
    // rate the pipelined engine actually sustains.
    constexpr size_t kSpanIters = 1 << 21;
    auto t_span = Clock::now();
    for (size_t i = 0; i < kSpanIters; i++) {
      obs::TraceSpan span("probe", "bench", 0);
    }
    const double span_ns = SecondsSince(t_span) / kSpanIters * 1e9;
    const double hops_per_round =
        static_cast<double>(kWidth) * kIterations + 3;  // + exit phases
    const double hops_per_second =
        hops_per_round * kInFlight / off_seconds;
    const double dark_fraction = span_ns * 1e-9 * hops_per_second;
    const double msgs = static_cast<double>(per_round * kInFlight);
    const double lit_overhead = on_seconds / off_seconds - 1.0;
    std::printf("\nobservability overhead (3 in-flight pipelined rounds):\n");
    std::printf("  metrics+tracing off:  %7.0f msg/s\n", msgs / off_seconds);
    std::printf("  metrics+tracing on:   %7.0f msg/s  (%+.1f%%)\n",
                msgs / on_seconds, lit_overhead * 100.0);
    std::printf("  disabled span probe:  %.1f ns/branch -> %.4f%% of the "
                "hop budget\n", span_ns, dark_fraction * 100.0);
    json.Num("obs_off_msgs_per_second", msgs / off_seconds);
    json.Num("obs_on_msgs_per_second", msgs / on_seconds);
    json.Num("obs_enabled_overhead", lit_overhead);
    json.Num("obs_disabled_span_ns", span_ns);
    json.Num("obs_disabled_overhead_fraction", dark_fraction);
    // Gates: the dark path must cost < 1% of hop throughput; the lit
    // path < 5%. Smoke mode keeps the dark gate (it is timing-noise
    // immune) but widens the lit one — sub-second sections on shared CI
    // runners see scheduler noise bigger than the budget.
    if (dark_fraction > 0.01) {
      std::fprintf(stderr, "disabled observability path costs %.2f%% of "
                           "hop throughput (budget 1%%)\n",
                   dark_fraction * 100.0);
      return 1;
    }
    const double lit_budget = smoke ? 0.50 : 0.05;
    if (lit_overhead > lit_budget) {
      std::fprintf(stderr, "enabled observability overhead %.1f%% exceeds "
                           "the %.0f%% budget\n",
                   lit_overhead * 100.0, lit_budget * 100.0);
      return 1;
    }
  }

  // ---- End to end: the exit phase rides the engine's DAG.
  int e2e_status = RunEndToEnd(smoke, rng);
  if (e2e_status != 0) {
    return e2e_status;
  }
  if (smoke) {
    std::printf("\nsmoke mode: analytical cross-check skipped\n");
    return 0;
  }

  // ---- Shape cross-check against the analytical model (src/sim/netsim.h).
  const CostModel& costs = CalibratedCosts();
  NetworkModel model = NetworkModel::TorLike(256, rng);
  auto config = PaperDeployment(256, 100'000, Variant::kTrap, 160);
  auto est_seq = EstimateRound(config, model, costs);
  auto est_pipe = EstimatePipelined(config, model, costs);
  double est_gain = est_pipe.throughput_msgs_per_second /
                    (static_cast<double>(config.total_messages) /
                     est_seq.total_seconds);
  std::printf("\nanalytical cross-check (256 servers, 100k msgs): estimated "
              "pipelining gain %.1fx\n", est_gain);
  std::printf("executed gain at 3 in-flight rounds on this host: %.2fx "
              "(%zu hardware threads;\nthe executed gain tracks "
              "min(cores, in-flight) while the estimate assumes a full "
              "WAN\ndeployment — both must exceed 1x and saturate, which "
              "is the shape EstimatePipelined\npredicts)\n",
              exec_gain_at_3, HardwareThreads());
  if (exec_gain_at_3 <= 0.8) {
    std::fprintf(stderr, "pipelined execution slower than sequential — "
                         "engine regression\n");
    return 1;
  }
  return 0;
}
