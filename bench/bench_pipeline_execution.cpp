// Executed pipelining (§4.7): the RoundEngine running the real permutation
// network, measured — not the analytical EstimatePipelined model.
//
// Sequential mode drains each round before admitting the next (the old
// layer-barrier driver's schedule). Pipelined mode submits R rounds at
// once: hop (r, ℓ, g) runs as soon as its inputs arrive, so while round r
// occupies layer ℓ, round r+1 occupies layer ℓ-1 — a new batch enters the
// network every layer-time. On an N-core host the pipeline keeps every
// core busy and approaches min(N, in-flight work) speedup; with 3+ rounds
// in flight a multi-core host should see >= 2x executed throughput. The
// final section cross-checks the *shape* of the analytical model: both the
// executed and estimated gains must exceed 1 and grow with the number of
// rounds in flight until the compute floor binds.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"
#include "src/crypto/elgamal.h"
#include "src/util/parallel.h"

namespace {

using atom::CiphertextBatch;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MixNetwork {
  std::unique_ptr<atom::SquareTopology> topology;
  std::vector<std::unique_ptr<atom::GroupRuntime>> groups;
  std::vector<const atom::GroupRuntime*> ptrs;

  MixNetwork(size_t width, size_t iterations, size_t k, atom::Rng& rng) {
    topology = std::make_unique<atom::SquareTopology>(width, iterations);
    for (uint32_t g = 0; g < width; g++) {
      groups.push_back(std::make_unique<atom::GroupRuntime>(
          g, atom::RunDkg(atom::DkgParams{k, k}, rng)));
      ptrs.push_back(groups.back().get());
    }
  }

  std::vector<CiphertextBatch> MakeEntry(size_t per_group, atom::Rng& rng) {
    std::vector<CiphertextBatch> entry(topology->Width());
    for (uint32_t g = 0; g < topology->Width(); g++) {
      for (size_t i = 0; i < per_group; i++) {
        atom::Bytes payload = {static_cast<uint8_t>(g),
                               static_cast<uint8_t>(i)};
        entry[g].push_back({atom::ElGamalEncrypt(
            groups[g]->pk(),
            *atom::EmbedMessage(atom::BytesView(payload)), rng)});
      }
    }
    return entry;
  }

  atom::EngineRound Spec(std::vector<CiphertextBatch> entry,
                         atom::Rng& rng) const {
    atom::EngineRound spec;
    spec.topology = topology.get();
    spec.groups = ptrs;
    spec.variant = atom::Variant::kTrap;
    spec.hop_workers = 1;  // pipeline parallelism only, for a clean A/B
    spec.entry = std::move(entry);
    rng.Fill(spec.seed.data(), spec.seed.size());
    return spec;
  }
};

}  // namespace

int main() {
  using namespace atom;
  PrintHeader("Pipelined round execution (engine, measured)",
              "§4.7: a pipelined deployment admits a new batch every "
              "layer-time instead of every round-time");

  const size_t kWidth = 4;       // groups per layer
  const size_t kIterations = 4;  // mixing layers T
  const size_t kGroupSize = 2;   // servers per group
  const size_t kPerGroup = 16;   // messages per entry group
  Rng rng(0x9173e11e);

  std::printf("\nnetwork: %zux%zu square, k=%zu, %zu msgs/group, "
              "%zu hardware threads\n",
              kWidth, kIterations, kGroupSize, kPerGroup, HardwareThreads());
  MixNetwork net(kWidth, kIterations, kGroupSize, rng);
  const size_t per_round = kWidth * kPerGroup;

  // Warm-up: one round end to end (also populates any lazy init).
  {
    RoundEngine engine(&ThreadPool::Shared());
    auto r = engine.RunToCompletion(net.Spec(net.MakeEntry(kPerGroup, rng),
                                             rng));
    if (r.aborted) {
      std::fprintf(stderr, "warm-up aborted: %s\n", r.abort_reason.c_str());
      return 1;
    }
  }

  std::printf("\n  in-flight | sequential msg/s | pipelined msg/s | gain\n");
  std::printf("  ----------+------------------+-----------------+-----\n");
  double exec_gain_at_3 = 0;
  for (size_t in_flight : {1u, 2u, 3u, 4u, 6u}) {
    // Pre-encrypt every round's batch so only mixing is timed.
    std::vector<std::vector<CiphertextBatch>> entries_seq, entries_pipe;
    for (size_t r = 0; r < in_flight; r++) {
      entries_seq.push_back(net.MakeEntry(kPerGroup, rng));
      entries_pipe.push_back(net.MakeEntry(kPerGroup, rng));
    }

    RoundEngine engine(&ThreadPool::Shared());
    auto t0 = Clock::now();
    for (auto& entry : entries_seq) {
      auto r = engine.RunToCompletion(net.Spec(std::move(entry), rng));
      if (r.aborted) {
        std::fprintf(stderr, "sequential round aborted\n");
        return 1;
      }
    }
    double seq_seconds = SecondsSince(t0);

    auto t1 = Clock::now();
    std::vector<uint64_t> tickets;
    for (auto& entry : entries_pipe) {
      tickets.push_back(engine.Submit(net.Spec(std::move(entry), rng)));
    }
    for (uint64_t ticket : tickets) {
      if (engine.Wait(ticket).aborted) {
        std::fprintf(stderr, "pipelined round aborted\n");
        return 1;
      }
    }
    double pipe_seconds = SecondsSince(t1);

    double msgs = static_cast<double>(per_round * in_flight);
    double gain = seq_seconds / pipe_seconds;
    if (in_flight == 3) {
      exec_gain_at_3 = gain;
    }
    std::printf("  %9zu | %16.0f | %15.0f | %3.2fx\n", in_flight,
                msgs / seq_seconds, msgs / pipe_seconds, gain);
  }

  // ---- Shape cross-check against the analytical model (src/sim/netsim.h).
  const CostModel& costs = CalibratedCosts();
  NetworkModel model = NetworkModel::TorLike(256, rng);
  auto config = PaperDeployment(256, 100'000, Variant::kTrap, 160);
  auto est_seq = EstimateRound(config, model, costs);
  auto est_pipe = EstimatePipelined(config, model, costs);
  double est_gain = est_pipe.throughput_msgs_per_second /
                    (static_cast<double>(config.total_messages) /
                     est_seq.total_seconds);
  std::printf("\nanalytical cross-check (256 servers, 100k msgs): estimated "
              "pipelining gain %.1fx\n", est_gain);
  std::printf("executed gain at 3 in-flight rounds on this host: %.2fx "
              "(%zu hardware threads;\nthe executed gain tracks "
              "min(cores, in-flight) while the estimate assumes a full "
              "WAN\ndeployment — both must exceed 1x and saturate, which "
              "is the shape EstimatePipelined\npredicts)\n",
              exec_gain_at_3, HardwareThreads());
  if (exec_gain_at_3 <= 0.8) {
    std::fprintf(stderr, "pipelined execution slower than sequential — "
                         "engine regression\n");
    return 1;
  }
  return 0;
}
