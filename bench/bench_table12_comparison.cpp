// Table 12: latency to support one million users — Atom at 128/256/512/1024
// servers (microblogging and dialing) against Riposte (microblogging,
// 3 x 36-core) and Vuvuzela / Alpenhorn (dialing, 3 x 36-core).
//
// Paper: Atom@1024 microblogs 1M in 28.2 min (23.7x faster than Riposte's
// 669.2 min); Vuvuzela dials 1M in 0.5 min (56x faster than Atom's 27.9) —
// Atom wins on scalability and tamper-resistance, the centralized systems
// win on raw dialing latency.
//
// The Riposte row is measured from this repository's real DPF write path
// and extrapolated (its cost is Θ(M²)); Vuvuzela from the measured hybrid
// decryption cost (Θ(M) per server).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/riposte.h"
#include "src/baselines/vuvuzela.h"

int main() {
  using namespace atom;
  PrintHeader("Table 12: latency to support one million users",
              "Atom@1024 28.2min vs Riposte 669.2min (23.7x); "
              "Vuvuzela 0.5min vs Atom dial 27.9min (56x)");
  const CostModel& costs = CalibratedCosts();
  Rng rng(0xf19c);
  constexpr size_t kUsers = 1'000'000;
  constexpr size_t kDialDummies = 13000 * 32;

  // Baselines first (they anchor the ratios).
  auto riposte = EstimateRiposteRound(kUsers, 160, 36, rng);
  double riposte_min = riposte.round_seconds / 60.0;
  double vuvuzela_min =
      EstimateVuvuzelaDialing(kUsers, kDialDummies, 3, 36, costs) / 60.0;

  std::printf("\n  config            | microblog (min) | vs Riposte | "
              "dial (min) | vs Vuvuzela\n");
  std::printf("  ------------------+-----------------+------------+"
              "------------+------------\n");
  for (size_t servers : {128u, 256u, 512u, 1024u}) {
    NetworkModel net = NetworkModel::TorLike(servers, rng);
    double micro_min =
        EstimateRound(PaperDeployment(servers, kUsers, Variant::kTrap, 160),
                      net, costs)
            .total_seconds /
        60.0;
    double dial_min =
        EstimateRound(PaperDeployment(servers, kUsers, Variant::kTrap, 80,
                                      kDialDummies),
                      net, costs)
            .total_seconds /
        60.0;
    std::printf("  Atom %5zux mixed | %15.1f | %9.1fx | %10.1f | %9.0fx\n",
                servers, micro_min, riposte_min / micro_min, dial_min,
                dial_min / vuvuzela_min);
  }
  std::printf("  Riposte 3x36-core | %15.1f | %9.1fx |          - |"
              "          -\n",
              riposte_min, 1.0);
  std::printf("  Vuvuzela 3x36-core|               - |          - | "
              "%10.2f | %9.0fx\n",
              vuvuzela_min, 1.0);

  std::printf("\nShape checks: Atom's advantage over Riposte grows with "
              "server count; Vuvuzela\nremains 1-2 orders of magnitude "
              "faster for dialing (centralized, hybrid crypto).\n");
  return 0;
}
