// Table 3: performance of the cryptographic primitives.
//
// Regenerates the paper's primitive-latency table by timing the real
// implementations: Enc, ReEnc, Shuffle(1024), EncProof / ReEncProof
// (prove + verify), and ShufProof(1024) (prove + verify) on 32-byte
// (single-point) messages. Absolute numbers differ from the paper's
// Go-on-c4.xlarge measurements; the orderings (verify > prove for the
// shuffle, ReEnc > Enc, proof costs >> plain ops) must match.
#include <benchmark/benchmark.h>

#include "src/crypto/shuffle.h"
#include "src/crypto/sigma.h"
#include "src/util/rng.h"

namespace atom {
namespace {

struct Fixture {
  Rng rng{uint64_t{0x7ab1e3}};
  ElGamalKeypair group = ElGamalKeyGen(rng);
  ElGamalKeypair next = ElGamalKeyGen(rng);
  Point m = *EmbedMessage(BytesView(ToBytes("32-byte message, one point")));

  CiphertextBatch Batch(size_t n) {
    CiphertextBatch batch(n);
    for (size_t i = 0; i < n; i++) {
      batch[i].push_back(ElGamalEncrypt(group.pk, m, rng));
    }
    return batch;
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_Enc(benchmark::State& state) {
  auto& f = F();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalEncrypt(f.group.pk, f.m, f.rng));
  }
}
BENCHMARK(BM_Enc)->Unit(benchmark::kMicrosecond);

void BM_ReEnc(benchmark::State& state) {
  auto& f = F();
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalReEnc(f.group.sk, &f.next.pk, ct, f.rng));
  }
}
BENCHMARK(BM_ReEnc)->Unit(benchmark::kMicrosecond);

void BM_Shuffle1024(benchmark::State& state) {
  auto& f = F();
  auto batch = f.Batch(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleBatch(f.group.pk, batch, f.rng));
  }
}
BENCHMARK(BM_Shuffle1024)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_EncProof_Prove(benchmark::State& state) {
  auto& f = F();
  Scalar r;
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng, &r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeEncProof(f.group.pk, 0, ct, r, f.rng));
  }
}
BENCHMARK(BM_EncProof_Prove)->Unit(benchmark::kMicrosecond);

void BM_EncProof_Verify(benchmark::State& state) {
  auto& f = F();
  Scalar r;
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng, &r);
  auto proof = MakeEncProof(f.group.pk, 0, ct, r, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyEncProof(f.group.pk, 0, ct, proof));
  }
}
BENCHMARK(BM_EncProof_Verify)->Unit(benchmark::kMicrosecond);

void BM_ReEncProof_Prove(benchmark::State& state) {
  auto& f = F();
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(f.group.sk, &f.next.pk, ct, f.rng, &rewrap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeReEncProof(f.group.sk, f.group.pk,
                                            &f.next.pk, ct, out, rewrap,
                                            f.rng));
  }
}
BENCHMARK(BM_ReEncProof_Prove)->Unit(benchmark::kMicrosecond);

void BM_ReEncProof_Verify(benchmark::State& state) {
  auto& f = F();
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(f.group.sk, &f.next.pk, ct, f.rng, &rewrap);
  auto proof = MakeReEncProof(f.group.sk, f.group.pk, &f.next.pk, ct, out,
                              rewrap, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyReEncProof(f.group.pk, &f.next.pk, ct, out, proof));
  }
}
BENCHMARK(BM_ReEncProof_Verify)->Unit(benchmark::kMicrosecond);

void BM_EncProof_BatchVerify256(benchmark::State& state) {
  // Entry groups verify every user's proofs; the random-linear-combination
  // batch test turns 2N scalar mults into one Pippenger MSM. Per-proof cost
  // here should be several times below BM_EncProof_Verify.
  auto& f = F();
  constexpr size_t kBatch = 256;
  std::vector<Point> ms(kBatch, f.m);
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(f.group.pk, ms, f.rng, &rs);
  auto proofs = MakeEncProofVec(f.group.pk, 0, cts, rs, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyEncProofBatch(f.group.pk, 0, cts, proofs));
  }
  state.counters["us_per_proof"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_EncProof_BatchVerify256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_ShufProof1024_Prove(benchmark::State& state) {
  auto& f = F();
  auto batch = f.Batch(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleAndProve(f.group.pk, batch, f.rng));
  }
}
BENCHMARK(BM_ShufProof1024_Prove)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ShufProof1024_Verify(benchmark::State& state) {
  auto& f = F();
  auto batch = f.Batch(1024);
  auto result = ShuffleAndProve(f.group.pk, batch, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyShuffle(f.group.pk, batch, result.output, result.proof));
  }
}
BENCHMARK(BM_ShufProof1024_Verify)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace atom

int main(int argc, char** argv) {
  std::printf("Table 3 reproduction: cryptographic primitive latencies.\n");
  std::printf("Paper (Go, c4.xlarge): Enc 140us, ReEnc 335us, "
              "Shuffle(1024) 107ms,\n  EncProof 162/139us, "
              "ReEncProof 655/446us, ShufProof(1024) 757/1410ms.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
