// Table 3: performance of the cryptographic primitives.
//
// Regenerates the paper's primitive-latency table by timing the real
// implementations: Enc, ReEnc, Shuffle(1024), EncProof / ReEncProof
// (prove + verify), and ShufProof(1024) (prove + verify) on 32-byte
// (single-point) messages. Absolute numbers differ from the paper's
// Go-on-c4.xlarge measurements; the orderings (verify > prove for the
// shuffle, ReEnc > Enc, proof costs >> plain ops) must match.
// --smoke runs only the hand-timed hot-path section (small rep counts)
// and writes BENCH_bench_table3_primitives.json for CI artifact upload;
// the full google-benchmark table is skipped.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench/bench_common.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/sigma.h"
#include "src/util/rng.h"

namespace atom {
namespace {

struct Fixture {
  Rng rng{uint64_t{0x7ab1e3}};
  ElGamalKeypair group = ElGamalKeyGen(rng);
  ElGamalKeypair next = ElGamalKeyGen(rng);
  Point m = *EmbedMessage(BytesView(ToBytes("32-byte message, one point")));

  CiphertextBatch Batch(size_t n) {
    CiphertextBatch batch(n);
    for (size_t i = 0; i < n; i++) {
      batch[i].push_back(ElGamalEncrypt(group.pk, m, rng));
    }
    return batch;
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

void BM_Enc(benchmark::State& state) {
  auto& f = F();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalEncrypt(f.group.pk, f.m, f.rng));
  }
}
BENCHMARK(BM_Enc)->Unit(benchmark::kMicrosecond);

void BM_ReEnc(benchmark::State& state) {
  auto& f = F();
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ElGamalReEnc(f.group.sk, &f.next.pk, ct, f.rng));
  }
}
BENCHMARK(BM_ReEnc)->Unit(benchmark::kMicrosecond);

void BM_Shuffle1024(benchmark::State& state) {
  auto& f = F();
  auto batch = f.Batch(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleBatch(f.group.pk, batch, f.rng));
  }
}
BENCHMARK(BM_Shuffle1024)->Unit(benchmark::kMillisecond)->Iterations(2);

void BM_EncProof_Prove(benchmark::State& state) {
  auto& f = F();
  Scalar r;
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng, &r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeEncProof(f.group.pk, 0, ct, r, f.rng));
  }
}
BENCHMARK(BM_EncProof_Prove)->Unit(benchmark::kMicrosecond);

void BM_EncProof_Verify(benchmark::State& state) {
  auto& f = F();
  Scalar r;
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng, &r);
  auto proof = MakeEncProof(f.group.pk, 0, ct, r, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyEncProof(f.group.pk, 0, ct, proof));
  }
}
BENCHMARK(BM_EncProof_Verify)->Unit(benchmark::kMicrosecond);

void BM_ReEncProof_Prove(benchmark::State& state) {
  auto& f = F();
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(f.group.sk, &f.next.pk, ct, f.rng, &rewrap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeReEncProof(f.group.sk, f.group.pk,
                                            &f.next.pk, ct, out, rewrap,
                                            f.rng));
  }
}
BENCHMARK(BM_ReEncProof_Prove)->Unit(benchmark::kMicrosecond);

void BM_ReEncProof_Verify(benchmark::State& state) {
  auto& f = F();
  auto ct = ElGamalEncrypt(f.group.pk, f.m, f.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(f.group.sk, &f.next.pk, ct, f.rng, &rewrap);
  auto proof = MakeReEncProof(f.group.sk, f.group.pk, &f.next.pk, ct, out,
                              rewrap, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyReEncProof(f.group.pk, &f.next.pk, ct, out, proof));
  }
}
BENCHMARK(BM_ReEncProof_Verify)->Unit(benchmark::kMicrosecond);

void BM_EncProof_BatchVerify256(benchmark::State& state) {
  // Entry groups verify every user's proofs; the random-linear-combination
  // batch test turns 2N scalar mults into one Pippenger MSM. Per-proof cost
  // here should be several times below BM_EncProof_Verify.
  auto& f = F();
  constexpr size_t kBatch = 256;
  std::vector<Point> ms(kBatch, f.m);
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(f.group.pk, ms, f.rng, &rs);
  auto proofs = MakeEncProofVec(f.group.pk, 0, cts, rs, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyEncProofBatch(f.group.pk, 0, cts, proofs));
  }
  state.counters["us_per_proof"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_EncProof_BatchVerify256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_ShufProof1024_Prove(benchmark::State& state) {
  auto& f = F();
  auto batch = f.Batch(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleAndProve(f.group.pk, batch, f.rng));
  }
}
BENCHMARK(BM_ShufProof1024_Prove)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_ShufProof1024_Verify(benchmark::State& state) {
  auto& f = F();
  auto batch = f.Batch(1024);
  auto result = ShuffleAndProve(f.group.pk, batch, f.rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VerifyShuffle(f.group.pk, batch, result.output, result.proof));
  }
}
BENCHMARK(BM_ShufProof1024_Verify)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Hand-timed hot-path measurements (the crypto fast paths this repo layers
// on top of the paper's primitives), recorded to the bench JSON so the
// speedups are tracked across PRs:
//   - repeated same-base scalar mult through a FixedBaseTable (built
//     inside the timed section: the reuse amortizes it) vs generic Mul,
//   - batch point encoding (EncodePoints: one shared inversion) vs a
//     per-point Encode loop at N = 1024,
//   - the naive-vs-Pippenger MSM crossover backing the thresholds
//     documented in p256.cpp's MultiScalarMul.
void MeasureHotPath(BenchJson& json, bool smoke) {
  Rng rng(uint64_t{0x7ab1e4});
  using Clock = std::chrono::steady_clock;

  // ---- repeated same-base scalar multiplication.
  const size_t reps = smoke ? 512 : 4096;
  Point base = Point::BaseMul(Scalar::Random(rng));
  std::vector<Scalar> ks;
  ks.reserve(reps);
  for (size_t i = 0; i < reps; i++) {
    ks.push_back(Scalar::Random(rng));
  }
  // Warm both paths once so neither pays first-touch noise.
  benchmark::DoNotOptimize(base.Mul(ks[0]));
  auto t0 = Clock::now();
  for (const Scalar& k : ks) {
    benchmark::DoNotOptimize(base.Mul(k));
  }
  double generic_s = SecondsSince(t0);
  t0 = Clock::now();
  FixedBaseTable table(base);
  for (const Scalar& k : ks) {
    benchmark::DoNotOptimize(table.Mul(k));
  }
  double table_s = SecondsSince(t0);
  double mul_speedup = generic_s / table_s;
  std::printf("same-base mult x%zu: generic %.1f us/op, table %.1f us/op "
              "(build amortized) -> %.2fx\n",
              reps, 1e6 * generic_s / static_cast<double>(reps),
              1e6 * table_s / static_cast<double>(reps), mul_speedup);
  json.Num("table_mul_reps", static_cast<double>(reps));
  json.Num("table_mul_generic_us",
           1e6 * generic_s / static_cast<double>(reps));
  json.Num("table_mul_us", 1e6 * table_s / static_cast<double>(reps));
  json.Num("table_mul_speedup", mul_speedup);

  // ---- batch point encoding at N = 1024.
  const size_t kEncodeN = 1024;
  std::vector<Point> points;
  points.reserve(kEncodeN);
  for (size_t i = 0; i < kEncodeN; i++) {
    points.push_back(table.Mul(ks[i % ks.size()]));
  }
  t0 = Clock::now();
  Bytes looped;
  looped.reserve(kEncodeN * Point::kEncodedSize);
  for (const Point& p : points) {
    Bytes one = p.Encode();
    looped.insert(looped.end(), one.begin(), one.end());
  }
  double loop_s = SecondsSince(t0);
  t0 = Clock::now();
  Bytes batched = EncodePoints(points);
  double batch_s = SecondsSince(t0);
  ATOM_CHECK(batched == looped);  // byte-identical fast path
  double encode_speedup = loop_s / batch_s;
  std::printf("encode x%zu: loop %.2f ms, batch %.2f ms -> %.2fx\n",
              kEncodeN, 1e3 * loop_s, 1e3 * batch_s, encode_speedup);
  json.Num("encode_batch_n", static_cast<double>(kEncodeN));
  json.Num("encode_loop_ms", 1e3 * loop_s);
  json.Num("encode_batch_ms", 1e3 * batch_s);
  json.Num("encode_batch_speedup", encode_speedup);

  // ---- MSM crossover spot checks (naive sum-of-muls vs MultiScalarMul).
  for (size_t n : {4u, 8u, 32u}) {
    std::vector<Point> ps(points.begin(),
                          points.begin() + static_cast<ptrdiff_t>(n));
    std::vector<Scalar> ss(ks.begin(),
                           ks.begin() + static_cast<ptrdiff_t>(n));
    t0 = Clock::now();
    Point naive = Point::Infinity();
    for (size_t i = 0; i < n; i++) {
      naive = naive + ps[i].Mul(ss[i]);
    }
    double naive_s = SecondsSince(t0);
    t0 = Clock::now();
    Point msm = MultiScalarMul(ps, ss);
    double msm_s = SecondsSince(t0);
    ATOM_CHECK(msm == naive);
    size_t row = json.Row();
    json.RowNum(row, "msm_n", static_cast<double>(n));
    json.RowNum(row, "naive_us", 1e6 * naive_s);
    json.RowNum(row, "msm_us", 1e6 * msm_s);
    std::printf("msm n=%-3zu: naive %.0f us, pippenger %.0f us\n", n,
                1e6 * naive_s, 1e6 * msm_s);
  }
}

}  // namespace
}  // namespace atom

int main(int argc, char** argv) {
  using namespace atom;
  bool smoke = false;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; i++) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      bench_argv.push_back(argv[i]);  // keep benchmark's own flags intact
    }
  }
  std::printf("Table 3 reproduction: cryptographic primitive latencies.\n");
  std::printf("Paper (Go, c4.xlarge): Enc 140us, ReEnc 335us, "
              "Shuffle(1024) 107ms,\n  EncProof 162/139us, "
              "ReEncProof 655/446us, ShufProof(1024) 757/1410ms.\n\n");
  {
    BenchJson json("bench_table3_primitives");
    json.Bool("smoke", smoke);
    MeasureHotPath(json, smoke);
  }  // write the JSON before the (skippable) google-benchmark table
  if (!smoke) {
    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
