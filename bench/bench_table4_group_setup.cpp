// Table 4: latency to create an anytrust group, as a function of group size
// k ∈ {4, 8, 16, 32, 64}. The dominating cost is the dealer-less threshold
// key generation (DVSS): every server deals, every server verifies k
// dealings. In deployment all dealers (and all verifiers) work in parallel,
// so the wall clock is one dealing + one full verification pass + two WAN
// broadcast rounds; we measure the real DKG code for the compute terms.
//
// Paper: 7.4 ms (k=4) to 1432 ms (k=64) — superlinear in k because share
// verification is O(k) work per dealing and there are k dealings.
#include <chrono>
#include <cstdio>
#include <functional>

#include "src/crypto/dkg.h"
#include "src/util/rng.h"

namespace atom {
namespace {

double Seconds(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void MeasureGroupSetup(size_t k) {
  Rng rng(0x7ab1e4 + k);
  DkgParams params{k, k};

  // All k dealers deal in parallel: wall = one dealing.
  double deal = Seconds([&] { MakeDealing(1, params, rng); });

  // All k participants verify in parallel: wall = one participant
  // verifying all k dealings.
  std::vector<DkgDealing> dealings;
  for (uint32_t d = 1; d <= k; d++) {
    dealings.push_back(MakeDealing(d, params, rng));
  }
  double verify = Seconds([&] { VerifyDealings(1, params, dealings); });
  double aggregate = Seconds([&] { AggregateDkg(params, dealings, {}); });

  // Two broadcast rounds (dealings out, complaints/acks back) over the
  // worst-case 160 ms WAN link.
  constexpr double kWanRound = 2 * 0.160;
  double total = deal + verify + aggregate / static_cast<double>(k) +
                 kWanRound;
  std::printf("  %4zu | %9.1f | %10.1f | %10.1f | %9.1f\n", k, total * 1e3,
              deal * 1e3, verify * 1e3, kWanRound * 1e3);
}

}  // namespace
}  // namespace atom

int main() {
  std::printf("Table 4 reproduction: anytrust group setup latency (DVSS).\n");
  std::printf("Paper: k=4: 7.4ms  k=8: 29.4ms  k=16: 93.3ms  k=32: 361.8ms  "
              "k=64: 1432.1ms\n");
  std::printf("(paper numbers exclude WAN rounds; ours are itemized)\n\n");
  std::printf("  k    | total(ms) | deal(ms)   | verify(ms) | wan(ms)\n");
  std::printf("  -----+-----------+------------+------------+---------\n");
  for (size_t k : {4u, 8u, 16u, 32u, 64u}) {
    atom::MeasureGroupSetup(k);
  }
  std::printf("\nShape check: verification cost grows ~quadratically in k\n"
              "(k dealings x O(k) Horner steps), matching the paper's "
              "superlinear column.\n");
  return 0;
}
