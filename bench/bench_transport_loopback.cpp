// Measures the encrypted TCP transport (src/net/) on loopback:
//
//   1. SecureLink record throughput and ping-pong latency — the raw cost
//      of the AEAD record layer + kernel sockets, i.e. what every
//      inter-server protocol byte pays compared to LocalBus's free
//      in-process delivery.
//   2. One full trap group hop (3 servers) driven through LocalBus vs.
//      through a TcpPeerMesh of NodeProcess servers in this process, over
//      real sockets. The delta is the transport tax on a protocol round;
//      the paper's deployment model (§6) assumes WAN latency dominates,
//      so the loopback tax should be small next to the crypto.
//
// Usage: bench_transport_loopback [--smoke]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/node.h"
#include "src/net/link.h"
#include "src/net/mesh.h"
#include "src/net/node_process.h"
#include "src/util/rng.h"

namespace {

using namespace atom;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct LinkPair {
  std::unique_ptr<SecureLink> a;  // dialer
  std::unique_ptr<SecureLink> b;  // listener
};

LinkPair ConnectPair(Rng& rng) {
  KemKeypair ka = KemKeyGen(rng), kb = KemKeyGen(rng);
  auto listener = TcpListener::Bind(0);
  LinkPair pair;
  std::thread accept_thread([&] {
    auto socket = listener->Accept();
    if (!socket) {
      return;
    }
    Rng accept_rng = Rng::FromOsEntropy();
    pair.b = SecureLink::Accept(
        std::move(*socket), 2, kb,
        [&](uint32_t) -> std::optional<Point> { return ka.pk; }, accept_rng);
  });
  auto socket = TcpSocket::Dial("127.0.0.1", listener->port());
  Rng dial_rng = Rng::FromOsEntropy();
  pair.a = SecureLink::Dial(std::move(*socket), 1, ka, 2, kb.pk, dial_rng);
  accept_thread.join();
  return pair;
}

void BenchRecords(bool smoke, BenchJson& json) {
  Rng rng(uint64_t{0xbe7c});
  LinkPair pair = ConnectPair(rng);
  if (pair.a == nullptr || pair.b == nullptr) {
    std::fprintf(stderr, "link setup failed\n");
    return;
  }

  std::printf("\nSecureLink records (loopback, ChaCha20-Poly1305 sealed):\n");
  std::printf("%12s %10s %12s\n", "record", "frames", "throughput");
  const size_t sizes[] = {1u << 10, 64u << 10, 1u << 20};
  for (size_t size : sizes) {
    size_t frames = (smoke ? size_t{8} : (256u << 20) / size / 4);
    if (frames < 8) {
      frames = 8;
    }
    Bytes payload = rng.NextBytes(size);
    std::thread drain([&] {
      for (size_t i = 0; i < frames; i++) {
        if (!pair.b->Recv()) {
          return;
        }
      }
    });
    auto start = Clock::now();
    for (size_t i = 0; i < frames; i++) {
      pair.a->Send(BytesView(payload));
    }
    drain.join();
    double seconds = MsSince(start) / 1000.0;
    double mib = static_cast<double>(size * frames) / (1u << 20);
    std::printf("%9zu KiB %10zu %9.0f MiB/s\n", size >> 10, frames,
                mib / seconds);
    size_t row = json.Row();
    json.RowStr(row, "metric", "record_throughput");
    json.RowNum(row, "record_kib", static_cast<double>(size >> 10));
    json.RowNum(row, "mib_per_second", mib / seconds);
  }

  const int pings = smoke ? 20 : 2000;
  Bytes ping = rng.NextBytes(256);
  std::thread echo([&] {
    for (int i = 0; i < pings; i++) {
      auto got = pair.b->Recv();
      if (!got || !pair.b->Send(BytesView(*got))) {
        return;
      }
    }
  });
  auto start = Clock::now();
  for (int i = 0; i < pings; i++) {
    pair.a->Send(BytesView(ping));
    pair.a->Recv();
  }
  echo.join();
  double rtt_us = MsSince(start) * 1000.0 / pings;
  std::printf("ping-pong (256 B): %.1f us round trip\n", rtt_us);
  json.Num("ping_pong_rtt_us", rtt_us);
}

struct HopSetup {
  Rng rng{uint64_t{0x407a}};
  DkgResult dkg;
  std::vector<uint32_t> chain = {100, 101, 102};
  CiphertextBatch batch;

  explicit HopSetup(size_t messages) {
    dkg = RunDkg(DkgParams{3, 3}, rng);
    batch.resize(messages);
    for (size_t i = 0; i < messages; i++) {
      Bytes payload = {static_cast<uint8_t>(i), 0x42};
      batch[i].push_back(ElGamalEncrypt(
          dkg.pub.group_pk, *EmbedMessage(BytesView(payload)), rng));
    }
  }

  NodeMsg Entry() const {
    NodeMsg msg;
    msg.type = NodeMsg::Type::kShuffleStep;
    msg.gid = 0;
    msg.chain_pos = 0;
    msg.batch = batch;
    return msg;
  }
};

double BenchHop(Bus& bus, const HopSetup& setup, Rng& run_rng, int rounds) {
  auto start = Clock::now();
  for (int r = 0; r < rounds; r++) {
    bus.ClearOutputs();
    bus.Send(Envelope{100, setup.Entry()});
    if (!bus.Run(run_rng)) {
      std::fprintf(stderr, "hop aborted\n");
      return -1;
    }
  }
  return MsSince(start) / rounds;
}

void BenchGroupHop(bool smoke, BenchJson& json) {
  const size_t messages = smoke ? 8 : 64;
  const int rounds = smoke ? 2 : 8;
  HopSetup setup(messages);

  // LocalBus.
  LocalBus local;
  std::vector<std::unique_ptr<AtomNode>> nodes;
  for (uint32_t pos = 0; pos < 3; pos++) {
    nodes.push_back(
        std::make_unique<AtomNode>(setup.chain[pos], Variant::kTrap));
    nodes.back()->JoinGroup(0, MakeNodeGroupKeys(setup.dkg, setup.chain, pos));
    local.RegisterNode(nodes.back().get());
  }
  Rng run_rng_local(uint64_t{11});
  BenchHop(local, setup, run_rng_local, 1);  // warmup
  double local_ms = BenchHop(local, setup, run_rng_local, rounds);

  // TcpPeerMesh over loopback NodeProcesses.
  Rng key_rng(uint64_t{12});
  KemKeypair driver_key = KemKeyGen(key_rng);
  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  for (uint32_t pos = 0; pos < 3; pos++) {
    KemKeypair key = KemKeyGen(key_rng);
    auto proc = std::make_unique<NodeProcess>(setup.chain[pos],
                                              Variant::kTrap, key,
                                              driver_key.pk);
    proc->Listen(0);
    proc->Start();
    roster.push_back(
        MeshPeer{setup.chain[pos], "127.0.0.1", proc->port(), key.pk});
    procs.push_back(std::move(proc));
  }
  driver.SetRoster(roster);
  if (!driver.ConnectAndPushRoster()) {
    std::fprintf(stderr, "mesh setup failed\n");
    return;
  }
  for (uint32_t pos = 0; pos < 3; pos++) {
    driver.SendJoinGroup(setup.chain[pos], 0,
                         MakeNodeGroupKeys(setup.dkg, setup.chain, pos));
  }
  Rng run_rng_mesh(uint64_t{11});
  BenchHop(driver, setup, run_rng_mesh, 1);  // warmup
  double mesh_ms = BenchHop(driver, setup, run_rng_mesh, rounds);
  driver.Stop();
  for (auto& proc : procs) {
    proc->Stop();
  }

  std::printf("\nTrap group hop, 3 servers, %zu messages (avg of %d):\n",
              messages, rounds);
  std::printf("  LocalBus (in-process):      %8.2f ms\n", local_ms);
  std::printf("  TcpPeerMesh (3 processes'\n"
              "   worth of loopback links):  %8.2f ms\n", mesh_ms);
  if (local_ms > 0) {
    std::printf("  transport tax:              %8.2f ms (%.1f%%)\n",
                mesh_ms - local_ms, 100.0 * (mesh_ms - local_ms) / local_ms);
  }
  json.Num("hop_messages", static_cast<double>(messages));
  json.Num("local_bus_hop_ms", local_ms);
  json.Num("mesh_hop_ms", mesh_ms);
  json.Num("transport_tax_ms", mesh_ms - local_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("==============================================================\n");
  std::printf("Encrypted TCP transport vs in-process delivery (loopback)\n");
  std::printf("==============================================================\n");
  BenchJson json("transport_loopback");
  json.Bool("smoke", smoke);
  BenchRecords(smoke, json);
  BenchGroupHop(smoke, json);
  return 0;
}
