// Model validation: real end-to-end protocol rounds (full crypto, all
// phases: DKG, submission verification, T mixing iterations, exit checks,
// trustee release) on a small in-process network, timed wall-clock and
// compared against the calibrated model's compute prediction for the same
// shape. This anchors the large-scale figures (9-11), which rely on the
// model, to the real implementation.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/round.h"
#include "src/sim/groupsim.h"

namespace atom {
namespace {

struct E2eResult {
  double setup_seconds = 0;
  double submit_seconds = 0;
  double run_seconds = 0;
  size_t messages = 0;
};

E2eResult RunRealRound(Variant variant, size_t users) {
  using Clock = std::chrono::steady_clock;
  Rng rng(0xe2e0 + users + (variant == Variant::kNizk ? 1 : 0));
  RoundConfig config;
  config.params.variant = variant;
  config.params.num_servers = 8;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.iterations = 3;
  config.params.message_len = 32;
  config.beacon = ToBytes("validation");

  E2eResult result;
  result.messages = users;
  auto t0 = Clock::now();
  Round round(config, rng);
  auto t1 = Clock::now();
  for (size_t u = 0; u < users; u++) {
    uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
    if (variant == Variant::kTrap) {
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes("validation msg")),
                                    round.layout(), rng);
      ATOM_CHECK(round.SubmitTrap(sub));
    } else {
      auto sub = MakeNizkSubmission(round.EntryPk(gid), gid,
                                    BytesView(ToBytes("validation msg")),
                                    round.layout(), rng);
      ATOM_CHECK(round.SubmitNizk(sub));
    }
  }
  auto t2 = Clock::now();
  auto outcome = round.Run(rng);
  auto t3 = Clock::now();
  ATOM_CHECK_MSG(!outcome.aborted, "validation round aborted");
  ATOM_CHECK(outcome.plaintexts.size() == users);

  result.setup_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.submit_seconds = std::chrono::duration<double>(t2 - t1).count();
  result.run_seconds = std::chrono::duration<double>(t3 - t2).count();
  return result;
}

}  // namespace
}  // namespace atom

int main() {
  using namespace atom;
  PrintHeader("End-to-end validation: real rounds vs. model prediction",
              "the figures' cost model must track the actual protocol "
              "implementation");
  const CostModel& costs = CalibratedCosts();

  std::printf("\n  variant | users | setup (s) | submit (s) | mix+exit (s) "
              "| model mix (s)\n");
  std::printf("  --------+-------+-----------+------------+--------------+"
              "--------------\n");
  for (Variant variant : {Variant::kTrap, Variant::kNizk}) {
    for (size_t users : {8u, 16u}) {
      auto real = RunRealRound(variant, users);
      // Model for the same shape: 4 groups x 3 layers, single worker. The
      // per-group batch doubles in the trap variant (traps ride along).
      size_t layout_points =
          LayoutFor(variant, 32).num_points;
      double per_group =
          static_cast<double>(users * (variant == Variant::kTrap ? 2 : 1)) /
          4.0;
      GroupSimConfig gconf;
      gconf.group_size = gconf.threshold = 3;
      gconf.messages = static_cast<size_t>(per_group);
      gconf.components = layout_points;
      gconf.variant = variant;
      gconf.cores_per_server = 1;
      gconf.hop_latency_seconds = 0;  // in-process
      double model =
          EstimateGroupHop(gconf, costs).compute_seconds * 4.0 * 3.0;
      std::printf("  %7s | %5zu | %9.2f | %10.2f | %12.2f | %12.2f\n",
                  variant == Variant::kTrap ? "trap" : "nizk", users,
                  real.setup_seconds, real.submit_seconds, real.run_seconds,
                  model);
    }
  }
  std::printf("\nShape check: the model column should sit within ~2x of the "
              "measured mix+exit\ncolumn (the model omits exit-phase "
              "sorting/decryption and per-hop bookkeeping).\n");
  return 0;
}
