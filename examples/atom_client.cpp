// atom_client: one registered Atom user in one OS process.
//
// Dials a SubmissionGateway (src/net/gateway.h) over an authenticated
// encrypted link under the client's registered long-term key, waits for a
// round to open, builds a submission from the gateway's welcome (variant,
// layout, entry-group and trustee keys all arrive on the wire — the
// client needs no local copy of the round state), streams it, and prints
// the gateway's verdict.
//
//   atom_client --host H --port P --id N (--keyfile PATH | --sk <hex32>)
//               --gateway-pk <hex33> --message "text"
//               [--gid G] [--count K]
//
// With --count K the client sends K copies "text #i" pipelined through
// its credit window — a one-process load generator for the ingress tier.
// The identity key loads like atom_server's: --keyfile holds the 32-byte
// secret scalar hex-encoded; --sk on argv is the loopback demo fallback.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/net/client_session.h"
#include "src/util/hex.h"

namespace {

std::optional<unsigned long long> ParseNumber(const std::string& value,
                                              unsigned long long max) {
  if (value.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || parsed > max) {
    return std::nullopt;
  }
  return parsed;
}

std::optional<std::string> ReadKeyfileHex(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::string hex;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (!std::isspace(c)) {
      hex.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  return hex;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atom;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t id = 0;
  uint32_t gid = 0;
  uint64_t count = 1;
  std::string sk_hex, keyfile, gateway_pk_hex, message;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--host") {
      host = value;
    } else if (flag == "--port") {
      auto parsed = ParseNumber(value, 65535);
      if (!parsed) {
        std::fprintf(stderr, "--port must be a number in [0, 65535]\n");
        return 2;
      }
      port = static_cast<uint16_t>(*parsed);
    } else if (flag == "--id") {
      auto parsed = ParseNumber(value, ~0ULL);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "--id must be a nonzero number\n");
        return 2;
      }
      id = *parsed;
    } else if (flag == "--gid") {
      auto parsed = ParseNumber(value, 0xffffffffULL);
      if (!parsed) {
        std::fprintf(stderr, "--gid must be a number\n");
        return 2;
      }
      gid = static_cast<uint32_t>(*parsed);
    } else if (flag == "--count") {
      auto parsed = ParseNumber(value, 1ULL << 20);
      if (!parsed || *parsed == 0) {
        std::fprintf(stderr, "--count must be in [1, 2^20]\n");
        return 2;
      }
      count = *parsed;
    } else if (flag == "--sk") {
      sk_hex = value;
    } else if (flag == "--keyfile") {
      keyfile = value;
    } else if (flag == "--gateway-pk") {
      gateway_pk_hex = value;
    } else if (flag == "--message") {
      message = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }
  if (id == 0 || port == 0 || (sk_hex.empty() && keyfile.empty()) ||
      gateway_pk_hex.empty() || message.empty()) {
    std::fprintf(stderr,
                 "usage: atom_client --host H --port P --id N "
                 "(--keyfile PATH | --sk <hex32>) --gateway-pk <hex33> "
                 "--message \"text\" [--gid G] [--count K]\n");
    return 2;
  }
  if (!keyfile.empty()) {
    if (!sk_hex.empty()) {
      std::fprintf(stderr, "--keyfile and --sk are mutually exclusive\n");
      return 2;
    }
    auto loaded = ReadKeyfileHex(keyfile);
    if (!loaded) {
      std::fprintf(stderr, "could not read keyfile %s\n", keyfile.c_str());
      return 2;
    }
    sk_hex = std::move(*loaded);
  }
  auto sk_bytes = HexDecode(sk_hex);
  if (!sk_bytes || sk_bytes->size() != 32) {
    std::fprintf(stderr, "the identity key must be 32 hex-encoded bytes\n");
    return 2;
  }
  auto sk = Scalar::FromBytes(BytesView(*sk_bytes));
  if (!sk) {
    std::fprintf(stderr, "the identity key is not a valid scalar\n");
    return 2;
  }
  auto pk_bytes = HexDecode(gateway_pk_hex);
  auto gateway_pk =
      pk_bytes ? Point::Decode(BytesView(*pk_bytes)) : std::nullopt;
  if (!gateway_pk) {
    std::fprintf(stderr, "--gateway-pk is not a valid point\n");
    return 2;
  }

  KemKeypair identity{*sk, Point::BaseMul(*sk)};
  auto session =
      ClientSession::Connect(host, port, id, identity, *gateway_pk);
  if (session == nullptr) {
    std::fprintf(stderr,
                 "connect failed (unreachable gateway, unregistered id, "
                 "or wrong key)\n");
    return 1;
  }
  const GatewayWelcome& welcome = session->welcome();
  std::printf("authenticated as client %llu: %zu entry groups, %s "
              "variant, credit window %u\n",
              static_cast<unsigned long long>(id),
              welcome.entry_pks.size(),
              static_cast<Variant>(welcome.variant) == Variant::kTrap
                  ? "trap"
                  : "nizk",
              welcome.credit);
  if (gid >= welcome.entry_pks.size()) {
    std::fprintf(stderr, "--gid out of range (gateway serves %zu groups)\n",
                 welcome.entry_pks.size());
    return 2;
  }

  uint64_t round_id = session->WaitRoundOpen();
  if (round_id == 0) {
    std::fprintf(stderr, "no round opened before the timeout\n");
    return 1;
  }
  std::printf("round %llu open for intake\n",
              static_cast<unsigned long long>(round_id));

  Rng rng = Rng::FromOsEntropy();
  uint64_t accepted = 0;
  if (count == 1) {
    if (session->SendMessage(BytesView(ToBytes(message)), gid, rng)) {
      accepted = 1;
    }
  } else {
    // Pipelined through the credit window: submissions stream while the
    // gateway verifies earlier ones; only one id is ours, so spread the
    // copies over distinct synthetic suffixes (the id-duplicate rule
    // still caps acceptance at one per round — this mode is a wire-level
    // load generator, not a multi-identity client).
    std::vector<uint64_t> seqs;
    for (uint64_t i = 0; i < count; i++) {
      std::string text = message + " #" + std::to_string(i);
      MessageLayout layout;
      layout.plaintext_len = welcome.plaintext_len;
      layout.padded_len = welcome.padded_len;
      layout.num_points = welcome.num_points;
      uint64_t seq = 0;
      if (static_cast<Variant>(welcome.variant) == Variant::kTrap &&
          welcome.trustee_pk.has_value()) {
        TrapSubmission sub = MakeTrapSubmission(
            welcome.entry_pks[gid], gid, *welcome.trustee_pk,
            BytesView(ToBytes(text)), layout, rng);
        sub.client_id = id;
        seq = session->Submit(sub);
      } else {
        NizkSubmission sub =
            MakeNizkSubmission(welcome.entry_pks[gid], gid,
                               BytesView(ToBytes(text)), layout, rng);
        sub.client_id = id;
        seq = session->Submit(sub);
      }
      if (seq == 0) {
        break;
      }
      seqs.push_back(seq);
    }
    for (uint64_t seq : seqs) {
      auto status = session->WaitResult(seq);
      if (status.has_value() && *status == SubmitStatus::kAccepted) {
        accepted++;
      }
    }
  }
  std::printf("%llu of %llu submissions accepted\n",
              static_cast<unsigned long long>(accepted),
              static_cast<unsigned long long>(count));
  return accepted > 0 ? 0 : 1;
}
