// atom_server: one Atom server in one OS process.
//
// Hosts a single AtomNode behind the encrypted TCP peer mesh
// (src/net/node_process.h). Everything else — the peer roster, per-group
// key shares, run keys, and protocol traffic — arrives over authenticated
// links from the round driver (see examples/distributed_nodes.cpp, which
// spawns a fleet of these and drives a round through it).
//
//   atom_server --id N (--keyfile PATH | --sk <hex32>) --driver-pk <hex33>
//               [--port P] [--variant trap|nizk]
//
// The long-term identity key loads from --keyfile (a file holding the
// 32-byte secret scalar hex-encoded, whitespace ignored — the first step
// of keystore-based server identities); --sk on argv remains as a demo
// fallback for loopback runs, where key exposure via /proc/cmdline does
// not matter.
//
// Prints "ATOM_SERVER_PORT=<port>" on stdout once listening (port 0, the
// default, picks an ephemeral port — the spawner reads this line), then
// serves until stdin reaches EOF, so a child process exits as soon as its
// spawner closes the pipe or dies.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/net/node_process.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/util/hex.h"

namespace {

// strtoul with full validation: rejects junk, trailing characters, and
// values past `max` instead of throwing or silently truncating.
std::optional<unsigned long> ParseNumber(const std::string& value,
                                         unsigned long max) {
  if (value.empty()) {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  if (errno != 0 || end != value.c_str() + value.size() || parsed > max) {
    return std::nullopt;
  }
  return parsed;
}

// Reads a hex-encoded secret key from `path`: whitespace (including the
// trailing newline every editor adds) is ignored; anything else must be
// exactly 64 hex digits.
std::optional<std::string> ReadKeyfileHex(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::string hex;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (!std::isspace(c)) {
      hex.push_back(static_cast<char>(c));
    }
  }
  std::fclose(f);
  return hex;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace atom;
  uint32_t id = 0;
  uint16_t port = 0;
  Variant variant = Variant::kTrap;
  int metrics_port = -1;
  std::string sk_hex, keyfile, driver_pk_hex, fault_spec;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--id") {
      auto parsed = ParseNumber(value, 0xffffffffUL);
      if (!parsed) {
        std::fprintf(stderr, "--id must be a number\n");
        return 2;
      }
      id = static_cast<uint32_t>(*parsed);
    } else if (flag == "--port") {
      auto parsed = ParseNumber(value, 65535);
      if (!parsed) {
        std::fprintf(stderr, "--port must be a number in [0, 65535]\n");
        return 2;
      }
      port = static_cast<uint16_t>(*parsed);
    } else if (flag == "--sk") {
      sk_hex = value;
    } else if (flag == "--keyfile") {
      keyfile = value;
    } else if (flag == "--driver-pk") {
      driver_pk_hex = value;
    } else if (flag == "--variant") {
      variant = (value == "nizk") ? Variant::kNizk : Variant::kTrap;
    } else if (flag == "--fault-spec") {
      fault_spec = value;
    } else if (flag == "--metrics-port") {
      auto parsed = ParseNumber(value, 65535);
      if (!parsed) {
        std::fprintf(stderr, "--metrics-port must be a number in [0, 65535]\n");
        return 2;
      }
      metrics_port = static_cast<int>(*parsed);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return 2;
    }
  }
  if (id == kMeshDriverId || (sk_hex.empty() && keyfile.empty()) ||
      driver_pk_hex.empty()) {
    std::fprintf(stderr,
                 "usage: atom_server --id N (--keyfile PATH | --sk <hex32>) "
                 "--driver-pk <hex33> [--port P] [--variant trap|nizk] "
                 "[--fault-spec SPEC] [--metrics-port P]\n");
    return 2;
  }
  if (!keyfile.empty()) {
    if (!sk_hex.empty()) {
      std::fprintf(stderr, "--keyfile and --sk are mutually exclusive\n");
      return 2;
    }
    auto loaded = ReadKeyfileHex(keyfile);
    if (!loaded) {
      std::fprintf(stderr, "could not read keyfile %s\n", keyfile.c_str());
      return 2;
    }
    sk_hex = std::move(*loaded);
  }

  auto sk_bytes = HexDecode(sk_hex);
  if (!sk_bytes || sk_bytes->size() != 32) {
    std::fprintf(stderr,
                 "the identity key must be 32 hex-encoded bytes\n");
    return 2;
  }
  auto sk = Scalar::FromBytes(BytesView(*sk_bytes));
  if (!sk) {
    std::fprintf(stderr, "--sk is not a valid scalar\n");
    return 2;
  }
  auto pk_bytes = HexDecode(driver_pk_hex);
  auto driver_pk =
      pk_bytes ? Point::Decode(BytesView(*pk_bytes)) : std::nullopt;
  if (!driver_pk) {
    std::fprintf(stderr, "--driver-pk is not a valid point\n");
    return 2;
  }

  KemKeypair identity{*sk, Point::BaseMul(*sk)};
  NodeProcess process(id, variant, identity, *driver_pk);
  if (!fault_spec.empty()) {
    // Scenario harness (src/net/faults.h): this server misbehaves per the
    // seeded plan — dropped/corrupted frames, stalls, severed links,
    // byzantine tamper rounds — all replayable from the spec's seed.
    auto plan = FaultPlan::Parse(fault_spec);
    if (plan == nullptr) {
      std::fprintf(stderr, "malformed --fault-spec: %s\n",
                   fault_spec.c_str());
      return 2;
    }
    process.SetFaultPlan(std::move(plan));
  }
  // Local plaintext scrape endpoint for this server's registry; the
  // fleet-merged view still travels over the control plane regardless
  // (kMetricsSnapshot), so this is for operators pointing Prometheus or
  // curl at one process.
  obs::MetricsHttpServer metrics_server;
  if (metrics_port >= 0) {
    obs::SetTimingEnabled(true);
    if (!metrics_server.Start(static_cast<uint16_t>(metrics_port))) {
      std::fprintf(stderr, "server %u: could not bind --metrics-port %d\n",
                   id, metrics_port);
      return 1;
    }
  }
  if (!process.Listen(port)) {
    std::fprintf(stderr, "server %u: could not bind port %u\n", id, port);
    return 1;
  }
  process.Start();
  std::printf("ATOM_SERVER_PORT=%u\n", process.port());
  if (metrics_port >= 0) {
    std::printf("ATOM_METRICS_PORT=%u\n", metrics_server.port());
  }
  std::fflush(stdout);

  // Serve until the spawner closes our stdin (or we get EOF any other
  // way); NodeProcess threads do all the work.
  while (std::fgetc(stdin) != EOF) {
  }
  process.Stop();
  metrics_server.Stop();
  return 0;
}
