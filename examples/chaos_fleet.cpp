// chaos_fleet: drive the adversarial scenario harness from the command
// line (src/testing/scenario.h).
//
//   chaos_fleet [--scenario NAME|all] [--seed N] [--rounds N] [--users N]
//               [--workload raw|dialing|microblog]
//               [--gateway threads|reactor] [--smoke] [--report PATH]
//
// Each scenario spawns a real atom_server fleet (found next to this
// binary), a client gateway (--gateway picks the thread-per-connection
// or epoll reactor ingress engine), and authenticated ClientSessions,
// injects
// its named fault deployment from the seed, and asserts the invariant
// matrix. Exits nonzero on the first violation, printing the replay
// command. --smoke shrinks to the fastest honest configuration (2 rounds)
// for the per-push CI job; --report writes one JSON object per scenario
// (a JSON array) for CI artifact upload.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/testing/scenario.h"

int main(int argc, char** argv) {
  using namespace atom;
  std::string scenario = "all";
  std::string report_path;
  std::string metrics_path;
  ScenarioConfig config;
  config.seed = 1;
  config.rounds = 3;
  config.users = 6;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--smoke") {
      smoke = true;
      continue;
    }
    const char* value = next();
    if (value == nullptr) {
      std::fprintf(stderr, "%s needs a value\n", flag.c_str());
      return 2;
    }
    if (flag == "--scenario") {
      scenario = value;
    } else if (flag == "--seed") {
      config.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--rounds") {
      config.rounds = std::strtoul(value, nullptr, 10);
    } else if (flag == "--users") {
      config.users = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--workload") {
      if (std::strcmp(value, "raw") == 0) {
        config.workload = WorkloadKind::kRaw;
      } else if (std::strcmp(value, "dialing") == 0) {
        config.workload = WorkloadKind::kDialing;
      } else if (std::strcmp(value, "microblog") == 0) {
        config.workload = WorkloadKind::kMicroblog;
      } else {
        std::fprintf(stderr, "unknown workload: %s\n", value);
        return 2;
      }
    } else if (flag == "--report") {
      report_path = value;
    } else if (flag == "--metrics-out") {
      metrics_path = value;
    } else if (flag == "--gateway") {
      if (std::strcmp(value, "threads") == 0) {
        config.gateway_backend = GatewayBackend::kThreadPerConnection;
      } else if (std::strcmp(value, "reactor") == 0) {
        config.gateway_backend = GatewayBackend::kReactor;
      } else {
        std::fprintf(stderr, "unknown gateway backend: %s\n", value);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: chaos_fleet [--scenario NAME|all] [--seed N] "
                   "[--rounds N] [--users N] "
                   "[--workload raw|dialing|microblog] "
                   "[--gateway threads|reactor] [--smoke] "
                   "[--report PATH] [--metrics-out PATH]\n");
      return 2;
    }
  }
  if (smoke) {
    config.rounds = 2;  // still >= the faulted round
    config.users = 4;
  }
  config.verbose = true;
  config.collect_fleet_metrics = !metrics_path.empty();

  // The atom_server fleet binary lives next to us in the build tree.
  std::string self = argv[0];
  size_t slash = self.rfind('/');
  config.server_binary =
      (slash == std::string::npos ? std::string(".")
                                  : self.substr(0, slash)) +
      "/atom_server";

  std::vector<std::string> names;
  if (scenario == "all") {
    names = ScenarioNames();
  } else {
    names.push_back(scenario);
  }

  int rc = 0;
  std::string reports_json = "[";
  for (size_t i = 0; i < names.size(); i++) {
    config.name = names[i];
    std::printf("=== scenario %s (seed=%llu, %zu rounds, workload %s)\n",
                config.name.c_str(),
                static_cast<unsigned long long>(config.seed), config.rounds,
                WorkloadName(config.workload));
    std::fflush(stdout);
    ScenarioReport report = RunScenario(config);
    if (i > 0) {
      reports_json += ",";
    }
    reports_json += report.ToJson();
    if (report.ok) {
      std::printf("=== scenario %s: OK\n", config.name.c_str());
    } else {
      std::fprintf(stderr,
                   "=== scenario %s: FAILED\n    %s\n    replay: "
                   "chaos_fleet --scenario %s --seed %llu --rounds %zu "
                   "--users %u --workload %s\n",
                   config.name.c_str(), report.failure.c_str(),
                   config.name.c_str(),
                   static_cast<unsigned long long>(config.seed),
                   config.rounds, config.users,
                   WorkloadName(config.workload));
      rc = 1;
    }
  }
  reports_json += "]";
  if (!report_path.empty()) {
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "could not write %s\n", report_path.c_str());
      return 2;
    }
    std::fputs(reports_json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("scenario report written to %s\n", report_path.c_str());
  }
  if (!metrics_path.empty()) {
    // One fleet-wide view: this process's registry (driver, gateway,
    // thread pools) merged with every server registry captured before
    // each scenario's teardown.
    const std::string exposition = FleetMetricsExposition();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "could not write %s\n", metrics_path.c_str());
      return 2;
    }
    std::fwrite(exposition.data(), 1, exposition.size(), f);
    std::fclose(f);
    std::printf("fleet metrics exposition written to %s (%zu bytes)\n",
                metrics_path.c_str(), exposition.size());
  }
  return rc;
}
