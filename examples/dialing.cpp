// Dialing (paper §5, second target application): Alice bootstraps a shared
// secret with Bob by sending her ephemeral public key through Atom, exactly
// as a private-messaging system (Vuvuzela/Alpenhorn) would use it.
//
// The exit servers sort dial requests into mailboxes by recipient id; an
// anytrust group injects Laplace-distributed dummy dials so that the number
// of calls a user receives is differentially private.
//
// Build & run:  cmake --build build && ./build/examples/dialing
#include <cstdio>

#include "src/apps/dialing.h"
#include "src/core/round.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

int main() {
  using namespace atom;
  Rng rng = Rng::FromOsEntropy();

  // Long-term identities: Bob and Carol publish KEM public keys; their
  // 64-bit identifiers determine their mailboxes.
  auto bob = KemKeyGen(rng);
  auto carol = KemKeyGen(rng);
  constexpr uint64_t kBobId = 0xB0B, kCarolId = 0xCA401;

  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = kDialMessageLen;  // 80-byte dial messages
  config.beacon = ToBytes("dialing-round-beacon");
  Round round(config, rng);

  // Alice dials Bob and Carol: each dial carries a fresh handshake payload
  // (in a real deployment: her ephemeral DH key, truncated/encoded).
  Bytes alice_to_bob = rng.NextBytes(kDialPayloadLen);
  Bytes alice_to_carol = rng.NextBytes(kDialPayloadLen);
  std::vector<Bytes> dials = {
      MakeDialRequest(kBobId, bob.pk, BytesView(alice_to_bob), rng),
      MakeDialRequest(kCarolId, carol.pk, BytesView(alice_to_carol), rng),
  };

  // The noise group contributes dummy dials for differential privacy
  // (paper: µ = 13,000 per server at scale; 3 here for the demo).
  auto dummies = MakeDummyDials(SampleDummyCount(3, 1.0, rng), 1 << 16, rng);
  for (auto& d : dummies) {
    dials.push_back(std::move(d));
  }
  std::printf("submitting %zu dials (2 real, %zu dummies)\n", dials.size(),
              dials.size() - 2);

  for (size_t i = 0; i < dials.size(); i++) {
    uint32_t gid = static_cast<uint32_t>(i) % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(dials[i]), round.layout(), rng);
    if (!round.SubmitTrap(sub)) {
      std::fprintf(stderr, "dial submission rejected\n");
      return 1;
    }
  }

  auto result = round.Run(rng);
  if (result.aborted) {
    std::fprintf(stderr, "round aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }

  // Exit servers sort the anonymized dials into mailboxes.
  MailboxSystem mailboxes(64);
  size_t dropped = mailboxes.Deliver(result.plaintexts);
  std::printf("round done: %zu dials delivered, %zu dropped\n",
              result.plaintexts.size() - dropped, dropped);

  // Bob downloads his mailbox and trial-decrypts everything in it.
  size_t bob_box = mailboxes.MailboxOf(kBobId);
  std::printf("Bob scans mailbox %zu (%zu entries)...\n", bob_box,
              mailboxes.mailbox(bob_box).size());
  for (const Bytes& entry : mailboxes.mailbox(bob_box)) {
    auto opened = OpenDialRequest(kBobId, bob.sk, BytesView(entry));
    if (opened.has_value()) {
      std::printf("  Bob received a dial; shared payload: %s\n",
                  HexEncode(BytesView(*opened)).c_str());
      if (*opened == alice_to_bob) {
        std::printf("  -> matches Alice's handshake: secret established.\n");
      }
    }
  }

  size_t carol_box = mailboxes.MailboxOf(kCarolId);
  for (const Bytes& entry : mailboxes.mailbox(carol_box)) {
    auto opened = OpenDialRequest(kCarolId, carol.sk, BytesView(entry));
    if (opened.has_value() && *opened == alice_to_carol) {
      std::printf("Carol also received her dial in mailbox %zu.\n",
                  carol_box);
    }
  }
  return 0;
}
