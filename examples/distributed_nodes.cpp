// Distributed deployment shape: per-server nodes exchanging protocol
// messages, instead of the in-process Round orchestrator.
//
// Each AtomNode holds exactly ONE server's key shares and reacts to
// messages — the structure a real multi-machine deployment would have, with
// the LocalBus standing in for TLS links. Two groups of three servers mix a
// batch across two hops (one forwarding hop, one exit hop) while a second
// batch from another entry group interleaves on the same bus.
//
// Build & run:  cmake --build build && ./build/examples/distributed_nodes
#include <cstdio>
#include <memory>

#include "src/core/node.h"
#include "src/util/rng.h"

int main() {
  using namespace atom;
  Rng rng = Rng::FromOsEntropy();

  // ---- Stand up six server processes forming two anytrust groups.
  std::vector<std::unique_ptr<AtomNode>> servers;
  LocalBus bus;
  auto add_group = [&](uint32_t gid, uint32_t first_id) {
    DkgResult dkg = RunDkg(DkgParams{3, 3}, rng);
    std::vector<uint32_t> chain = {first_id, first_id + 1, first_id + 2};
    for (uint32_t pos = 0; pos < 3; pos++) {
      auto node = std::make_unique<AtomNode>(first_id + pos, Variant::kTrap);
      node->JoinGroup(gid, MakeNodeGroupKeys(dkg, chain, pos));
      bus.RegisterNode(node.get());
      servers.push_back(std::move(node));
    }
    return dkg;
  };
  auto g0 = add_group(0, 100);
  auto g1 = add_group(1, 200);
  std::printf("6 server nodes up: group 0 = {100,101,102}, "
              "group 1 = {200,201,202}\n");

  // ---- Users encrypt to their entry group (group 0 here).
  const char* posts[] = {"first!", "hello from nowhere", "mix me",
                         "fourth message"};
  CiphertextBatch batch;
  for (const char* post : posts) {
    Bytes padded = ToBytes(post);
    padded.resize(kEmbedCapacity, 0);
    batch.push_back({ElGamalEncrypt(g0.pub.group_pk,
                                    *EmbedMessage(BytesView(padded)), rng)});
  }

  // ---- Hop 1: group 0 shuffles and reencrypts toward group 1.
  NodeMsg entry;
  entry.type = NodeMsg::Type::kShuffleStep;
  entry.gid = 0;
  entry.chain_pos = 0;
  entry.batch = std::move(batch);
  entry.next_pks = {g1.pub.group_pk};
  bus.Send(Envelope{100, std::move(entry)});
  if (!bus.Run(rng)) {
    std::fprintf(stderr, "hop 1 aborted: %s\n",
                 bus.aborts()[0].abort_reason.c_str());
    return 1;
  }
  std::printf("hop 1 complete: group 0 forwarded %zu ciphertexts to "
              "group 1\n",
              bus.outputs()[0].subs[0].size());
  CiphertextBatch forwarded = bus.outputs()[0].subs[0];
  bus.ClearOutputs();

  // ---- Hop 2: group 1 is the exit layer.
  NodeMsg exit_msg;
  exit_msg.type = NodeMsg::Type::kShuffleStep;
  exit_msg.gid = 1;
  exit_msg.chain_pos = 0;
  exit_msg.batch = std::move(forwarded);
  bus.Send(Envelope{200, std::move(exit_msg)});
  if (!bus.Run(rng)) {
    std::fprintf(stderr, "hop 2 aborted\n");
    return 1;
  }

  std::printf("hop 2 complete; anonymized output:\n");
  for (const auto& vec : bus.outputs()[0].subs[0]) {
    auto m = ElGamalDecrypt(Scalar::Zero(), vec[0]);
    if (m.has_value()) {
      auto bytes = ExtractMessage(*m);
      if (bytes.has_value()) {
        size_t end = bytes->size();
        while (end > 0 && (*bytes)[end - 1] == 0) {
          end--;
        }
        std::printf("  > %.*s\n", static_cast<int>(end),
                    reinterpret_cast<const char*>(bytes->data()));
      }
    }
  }
  return 0;
}
