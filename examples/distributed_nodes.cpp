// Distributed deployment shape: per-server nodes exchanging protocol
// messages, instead of the in-process Round orchestrator.
//
// Each AtomNode holds exactly ONE server's key shares and reacts to
// messages. Two groups of three servers mix a batch across two hops (one
// forwarding hop, one exit hop).
//
// Two modes:
//
//   ./build/examples/distributed_nodes
//       In-process: six AtomNodes on a LocalBus (the original demo).
//
//   ./build/examples/distributed_nodes --tcp [--seed N]
//       Multi-process: spawns six ./atom_server processes (one per
//       server) over loopback TCP with encrypted authenticated links,
//       drives the SAME seeded round through BOTH transports, and checks
//       the group outputs are byte-identical. Then it SIGKILLs a
//       mid-chain server and verifies the next round surfaces an abort
//       instead of hanging. Exits nonzero on any mismatch — CI runs this
//       as the multi-process transport smoke test.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/node.h"
#include "src/core/wire.h"
#include "src/net/mesh.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace {

using namespace atom;

const char* kPosts[] = {"first!", "hello from nowhere", "mix me",
                        "fourth message"};

CiphertextBatch MakeBatch(const Point& pk, Rng& rng) {
  CiphertextBatch batch;
  for (const char* post : kPosts) {
    Bytes padded = ToBytes(post);
    padded.resize(kEmbedCapacity, 0);
    batch.push_back(
        {ElGamalEncrypt(pk, *EmbedMessage(BytesView(padded)), rng)});
  }
  return batch;
}

NodeMsg EntryMsg(uint32_t gid, CiphertextBatch batch,
                 std::vector<Point> next_pks) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = gid;
  msg.chain_pos = 0;
  msg.batch = std::move(batch);
  msg.next_pks = std::move(next_pks);
  return msg;
}

void PrintPlaintexts(const CiphertextBatch& batch) {
  for (const auto& vec : batch) {
    auto m = ElGamalDecrypt(Scalar::Zero(), vec[0]);
    if (!m.has_value()) {
      continue;
    }
    auto bytes = ExtractMessage(*m);
    if (!bytes.has_value()) {
      continue;
    }
    size_t end = bytes->size();
    while (end > 0 && (*bytes)[end - 1] == 0) {
      end--;
    }
    std::printf("  > %.*s\n", static_cast<int>(end),
                reinterpret_cast<const char*>(bytes->data()));
  }
}

// ------------------------------------------------------- in-process mode

int RunLocal() {
  Rng rng = Rng::FromOsEntropy();
  std::vector<std::unique_ptr<AtomNode>> servers;
  LocalBus bus;
  auto add_group = [&](uint32_t gid, uint32_t first_id) {
    DkgResult dkg = RunDkg(DkgParams{3, 3}, rng);
    std::vector<uint32_t> chain = {first_id, first_id + 1, first_id + 2};
    for (uint32_t pos = 0; pos < 3; pos++) {
      auto node = std::make_unique<AtomNode>(first_id + pos, Variant::kTrap);
      node->JoinGroup(gid, MakeNodeGroupKeys(dkg, chain, pos));
      bus.RegisterNode(node.get());
      servers.push_back(std::move(node));
    }
    return dkg;
  };
  auto g0 = add_group(0, 100);
  auto g1 = add_group(1, 200);
  std::printf("6 server nodes up: group 0 = {100,101,102}, "
              "group 1 = {200,201,202}\n");

  bus.Send(Envelope{100, EntryMsg(0, MakeBatch(g0.pub.group_pk, rng),
                                  {g1.pub.group_pk})});
  if (!bus.Run(rng)) {
    std::fprintf(stderr, "hop 1 aborted: %s\n",
                 bus.aborts()[0].abort_reason.c_str());
    return 1;
  }
  std::printf("hop 1 complete: group 0 forwarded %zu ciphertexts to "
              "group 1\n",
              bus.outputs()[0].subs[0].size());
  CiphertextBatch forwarded = bus.outputs()[0].subs[0];
  bus.ClearOutputs();

  bus.Send(Envelope{200, EntryMsg(1, std::move(forwarded), {})});
  if (!bus.Run(rng)) {
    std::fprintf(stderr, "hop 2 aborted\n");
    return 1;
  }
  std::printf("hop 2 complete; anonymized output:\n");
  PrintPlaintexts(bus.outputs()[0].subs[0]);
  return 0;
}

// ----------------------------------------------------- multi-process mode

struct ServerHandle {
  pid_t pid = -1;
  int stdin_w = -1;   // closing this tells the child to exit
  uint16_t port = 0;
};

std::string ServerBinaryPath(const char* argv0) {
  std::string self = argv0;
  size_t slash = self.rfind('/');
  std::string dir = (slash == std::string::npos) ? "." : self.substr(0, slash);
  return dir + "/atom_server";
}

bool SpawnServer(const std::string& binary, uint32_t id, const Scalar& sk,
                 const Point& driver_pk, ServerHandle* out) {
  int in_pipe[2], out_pipe[2];
  if (pipe(in_pipe) != 0 || pipe(out_pipe) != 0) {
    return false;
  }
  std::string id_str = std::to_string(id);
  auto sk_bytes = sk.ToBytes();
  std::string sk_hex = HexEncode(BytesView(sk_bytes.data(), sk_bytes.size()));
  std::string pk_hex = HexEncode(BytesView(driver_pk.Encode()));
  pid_t pid = fork();
  if (pid < 0) {
    return false;
  }
  if (pid == 0) {
    dup2(in_pipe[0], STDIN_FILENO);
    dup2(out_pipe[1], STDOUT_FILENO);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execl(binary.c_str(), "atom_server", "--id", id_str.c_str(), "--sk",
          sk_hex.c_str(), "--driver-pk", pk_hex.c_str(),
          static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s failed\n", binary.c_str());
    _exit(127);
  }
  close(in_pipe[0]);
  close(out_pipe[1]);
  // The child prints ATOM_SERVER_PORT=<port> once it listens.
  FILE* child_out = fdopen(out_pipe[0], "r");
  char line[128];
  unsigned port = 0;
  if (child_out == nullptr || std::fgets(line, sizeof(line), child_out) ==
                                  nullptr ||
      std::sscanf(line, "ATOM_SERVER_PORT=%u", &port) != 1) {
    if (child_out != nullptr) {
      std::fclose(child_out);
    }
    kill(pid, SIGKILL);
    return false;
  }
  std::fclose(child_out);  // closes out_pipe[0]; child writes nothing else
  out->pid = pid;
  out->stdin_w = in_pipe[1];
  out->port = static_cast<uint16_t>(port);
  return true;
}

void ReapAll(std::vector<ServerHandle>& servers) {
  for (ServerHandle& server : servers) {
    if (server.stdin_w >= 0) {
      close(server.stdin_w);  // EOF -> child exits
      server.stdin_w = -1;
    }
  }
  for (ServerHandle& server : servers) {
    if (server.pid < 0) {
      continue;
    }
    for (int i = 0; i < 100; i++) {  // ~1s of patience, then the hammer
      if (waitpid(server.pid, nullptr, WNOHANG) != 0) {
        server.pid = -1;
        break;
      }
      usleep(10'000);
    }
    if (server.pid >= 0) {
      kill(server.pid, SIGKILL);
      waitpid(server.pid, nullptr, 0);
      server.pid = -1;
    }
  }
}

int RunTcp(const char* argv0, uint64_t seed) {
  signal(SIGPIPE, SIG_IGN);  // dead-child pipe writes must not kill us
  Rng rng(seed);
  std::string binary = ServerBinaryPath(argv0);

  // ---- Key material and groups, generated once and shared by both
  // transports so a seeded round is directly comparable.
  KemKeypair driver_key = KemKeyGen(rng);
  DkgResult g0 = RunDkg(DkgParams{3, 3}, rng);
  DkgResult g1 = RunDkg(DkgParams{3, 3}, rng);
  struct ServerSpec {
    uint32_t id;
    uint32_t gid;
    KemKeypair key;
    NodeGroupKeys group_keys;
  };
  std::vector<ServerSpec> specs;
  std::vector<uint32_t> chain0 = {100, 101, 102}, chain1 = {200, 201, 202};
  for (uint32_t pos = 0; pos < 3; pos++) {
    specs.push_back(ServerSpec{chain0[pos], 0, KemKeyGen(rng),
                               MakeNodeGroupKeys(g0, chain0, pos)});
  }
  for (uint32_t pos = 0; pos < 3; pos++) {
    specs.push_back(ServerSpec{chain1[pos], 1, KemKeyGen(rng),
                               MakeNodeGroupKeys(g1, chain1, pos)});
  }

  // ---- One real OS process per server.
  std::vector<ServerHandle> servers(specs.size());
  std::vector<MeshPeer> roster;
  for (size_t i = 0; i < specs.size(); i++) {
    if (!SpawnServer(binary, specs[i].id, specs[i].key.sk, driver_key.pk,
                     &servers[i])) {
      std::fprintf(stderr, "failed to spawn atom_server for %u\n",
                   specs[i].id);
      ReapAll(servers);
      return 1;
    }
    roster.push_back(MeshPeer{specs[i].id, "127.0.0.1", servers[i].port,
                              specs[i].key.pk});
  }
  std::printf("6 atom_server processes up (pids");
  for (const ServerHandle& server : servers) {
    std::printf(" %d", static_cast<int>(server.pid));
  }
  std::printf("), loopback ports");
  for (const ServerHandle& server : servers) {
    std::printf(" %u", server.port);
  }
  std::printf("\n");

  // ---- Driver mesh: dial, authenticate, push roster + group keys.
  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  driver.SetRoster(roster);
  driver.set_dial_attempts(3);
  if (!driver.ConnectAndPushRoster()) {
    std::fprintf(stderr, "roster push failed\n");
    ReapAll(servers);
    return 1;
  }
  for (const ServerSpec& spec : specs) {
    if (!driver.SendJoinGroup(spec.id, spec.gid, spec.group_keys)) {
      std::fprintf(stderr, "join-group push to %u failed\n", spec.id);
      ReapAll(servers);
      return 1;
    }
  }
  std::printf("encrypted links up; roster and group keys distributed\n");

  // ---- The in-process twin: same keys, same seed, LocalBus transport.
  LocalBus local_bus;
  std::vector<std::unique_ptr<AtomNode>> local_nodes;
  for (const ServerSpec& spec : specs) {
    local_nodes.push_back(
        std::make_unique<AtomNode>(spec.id, Variant::kTrap));
    local_nodes.back()->JoinGroup(spec.gid, spec.group_keys);
    local_bus.RegisterNode(local_nodes.back().get());
  }

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, rng);
  Rng run_rng_local(seed + 1);
  Rng run_rng_mesh(seed + 1);

  auto run_hop = [&](uint32_t entry_server, const NodeMsg& entry,
                     const char* label) -> bool {
    local_bus.Send(Envelope{entry_server, entry});
    if (!local_bus.Run(run_rng_local)) {
      std::fprintf(stderr, "%s aborted on LocalBus\n", label);
      return false;
    }
    driver.Send(Envelope{entry_server, entry});
    if (!driver.Run(run_rng_mesh)) {
      std::fprintf(stderr, "%s aborted on mesh: %s\n", label,
                   driver.aborts().back().abort_reason.c_str());
      return false;
    }
    if (local_bus.outputs().size() != 1 || driver.outputs().size() != 1 ||
        EncodeNodeMsg(local_bus.outputs()[0]) !=
            EncodeNodeMsg(driver.outputs()[0])) {
      std::fprintf(stderr, "%s: transports DIVERGED\n", label);
      return false;
    }
    std::printf("%s: LocalBus and TCP mesh group outputs are "
                "byte-identical (%zu bytes)\n",
                label, EncodeNodeMsg(driver.outputs()[0]).size());
    return true;
  };

  if (!run_hop(100, EntryMsg(0, batch, {g1.pub.group_pk}), "hop 1")) {
    ReapAll(servers);
    return 1;
  }
  CiphertextBatch forwarded = driver.outputs()[0].subs[0];
  local_bus.ClearOutputs();
  driver.ClearOutputs();
  if (!run_hop(200, EntryMsg(1, forwarded, {}), "hop 2 (exit)")) {
    ReapAll(servers);
    return 1;
  }
  std::printf("anonymized output via 6 processes over TCP:\n");
  PrintPlaintexts(driver.outputs()[0].subs[0]);

  // ---- Fault demo: SIGKILL a mid-chain server; the next round must
  // surface an abort quickly, never hang.
  std::printf("killing server 101 (pid %d) mid-deployment...\n",
              static_cast<int>(servers[1].pid));
  kill(servers[1].pid, SIGKILL);
  waitpid(servers[1].pid, nullptr, 0);
  servers[1].pid = -1;
  driver.ClearOutputs();
  driver.set_dial_attempts(1);
  driver.Send(
      Envelope{100, EntryMsg(0, MakeBatch(g0.pub.group_pk, rng), {})});
  Rng run_rng_fault(seed + 2);
  if (driver.Run(run_rng_fault)) {
    std::fprintf(stderr, "round with a killed peer unexpectedly passed\n");
    ReapAll(servers);
    return 1;
  }
  std::printf("killed peer surfaced as abort: %s\n",
              driver.aborts().back().abort_reason.c_str());

  driver.Stop();
  ReapAll(servers);
  std::printf("multi-process transport smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool tcp = false;
  uint64_t seed = 42;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--tcp") == 0) {
      tcp = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      char* end = nullptr;
      seed = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--seed must be a number\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: distributed_nodes [--tcp] [--seed N]\n");
      return 2;
    }
  }
  return tcp ? RunTcp(argv[0], seed) : RunLocal();
}
