// Distributed deployment shape: per-server nodes exchanging protocol
// messages, instead of the in-process Round orchestrator.
//
// Each AtomNode holds exactly ONE server's key shares and reacts to
// messages. Two groups of three servers mix a batch across two hops (one
// forwarding hop, one exit hop).
//
// Two modes:
//
//   ./build/examples/distributed_nodes
//       In-process: six AtomNodes on a LocalBus (the original demo).
//
//   ./build/examples/distributed_nodes --tcp [--seed N]
//       Multi-process: spawns six ./atom_server processes (one per
//       server) over loopback TCP with encrypted authenticated links,
//       drives the SAME seeded round through BOTH transports, and checks
//       the group outputs are byte-identical. Then it SIGKILLs a
//       mid-chain server and verifies the next round surfaces an abort
//       instead of hanging. Exits nonzero on any mismatch — CI runs this
//       as the multi-process transport smoke test.
//
//   ./build/examples/distributed_nodes --tcp --pipelined [--seed N]
//       Distributed pipelined rounds (§4.7 throughput mode over real
//       sockets): spawns one ./atom_server process per topology group
//       (identity keys loaded via --keyfile), ships each group's DKG
//       material over the control plane, then drives THREE overlapping
//       engine rounds through the DistributedRoundDriver — round r+1's
//       intake enters the network while round r is still mixing — and
//       checks every RoundResult byte-for-byte against the in-process
//       RoundEngine running the same seeded specs. Exits nonzero on any
//       divergence — CI runs this as the pipelined-mesh smoke test.
//
//   ./build/examples/distributed_nodes --tcp --pipelined --net-clients
//       [--seed N]
//       Full deployment shape including the client ingress tier: users
//       register Schnorr identities with the Directory, a
//       SubmissionGateway fronts the round's streaming intake, and every
//       submission arrives over an authenticated TCP ClientSession —
//       round r+1's intake fills through the gateway while round r mixes
//       on the atom_server fleet. Every RoundResult is byte-compared
//       against a twin round whose identical submissions were made
//       in-process. CI runs this as the ingress smoke test.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/directory.h"
#include "src/core/node.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/net/client_session.h"
#include "src/net/gateway.h"
#include "src/net/mesh.h"
#include "src/net/reactor.h"
#include "src/net/registry.h"
#include "src/net/round_driver.h"
#include "src/net/socket.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/hex.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace {

using namespace atom;

// Observability flags (see main): --trace-out arms the span collector,
// --metrics-out / --metrics-port export the metrics plane. The pipelined
// modes fill g_fleet_exposition with the MERGED fleet view (driver
// registry + every server's kMetricsSnapshot reply) before tearing the
// mesh down; main() writes it to --metrics-out.
std::string g_trace_out;
std::string g_metrics_out;
int g_metrics_port = -1;
std::string g_fleet_exposition;

// Pulls every live server's registry over the control plane and merges it
// with the local (driver-side) registry into one fleet-wide snapshot.
obs::MetricsSnapshot CollectFleetMetrics(TcpPeerMesh& mesh,
                                         const std::vector<uint32_t>& hosts) {
  obs::MetricsSnapshot fleet = obs::Registry::Global().Snapshot();
  size_t fetched = 0;
  for (uint32_t host : hosts) {
    auto snap = mesh.FetchMetricsSnapshot(host);
    if (snap.has_value()) {
      fleet.MergeFrom(*snap);
      fetched++;
    } else {
      std::fprintf(stderr, "metrics snapshot from server %u timed out\n",
                   host);
    }
  }
  std::printf("fleet metrics: merged %zu server registries + the driver "
              "(%zu counters, %zu gauges, %zu histograms)\n",
              fetched, fleet.counters.size(), fleet.gauges.size(),
              fleet.histograms.size());
  // A few load-bearing series, so the merged view is visible in the smoke
  // log without opening the full exposition.
  uint64_t mesh_bytes = 0, pool_tasks = 0;
  for (const auto& [name, value] : fleet.counters) {
    if (name.rfind("atom_mesh_bytes_sent_total", 0) == 0) {
      mesh_bytes += value;
    } else if (name.rfind("atom_pool_tasks_total", 0) == 0) {
      pool_tasks += value;
    }
  }
  std::printf("  atom_mesh_bytes_sent_total (fleet) = %llu\n",
              static_cast<unsigned long long>(mesh_bytes));
  std::printf("  atom_pool_tasks_total (fleet)      = %llu\n",
              static_cast<unsigned long long>(pool_tasks));
  return fleet;
}

const char* kPosts[] = {"first!", "hello from nowhere", "mix me",
                        "fourth message"};

CiphertextBatch MakeBatch(const Point& pk, Rng& rng) {
  CiphertextBatch batch;
  for (const char* post : kPosts) {
    Bytes padded = ToBytes(post);
    padded.resize(kEmbedCapacity, 0);
    batch.push_back(
        {ElGamalEncrypt(pk, *EmbedMessage(BytesView(padded)), rng)});
  }
  return batch;
}

NodeMsg EntryMsg(uint32_t gid, CiphertextBatch batch,
                 std::vector<Point> next_pks) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = gid;
  msg.chain_pos = 0;
  msg.batch = std::move(batch);
  msg.next_pks = std::move(next_pks);
  return msg;
}

void PrintPlaintexts(const CiphertextBatch& batch) {
  for (const auto& vec : batch) {
    auto m = ElGamalDecrypt(Scalar::Zero(), vec[0]);
    if (!m.has_value()) {
      continue;
    }
    auto bytes = ExtractMessage(*m);
    if (!bytes.has_value()) {
      continue;
    }
    size_t end = bytes->size();
    while (end > 0 && (*bytes)[end - 1] == 0) {
      end--;
    }
    std::printf("  > %.*s\n", static_cast<int>(end),
                reinterpret_cast<const char*>(bytes->data()));
  }
}

// ------------------------------------------------------- in-process mode

int RunLocal() {
  Rng rng = Rng::FromOsEntropy();
  std::vector<std::unique_ptr<AtomNode>> servers;
  LocalBus bus;
  auto add_group = [&](uint32_t gid, uint32_t first_id) {
    DkgResult dkg = RunDkg(DkgParams{3, 3}, rng);
    std::vector<uint32_t> chain = {first_id, first_id + 1, first_id + 2};
    for (uint32_t pos = 0; pos < 3; pos++) {
      auto node = std::make_unique<AtomNode>(first_id + pos, Variant::kTrap);
      node->JoinGroup(gid, MakeNodeGroupKeys(dkg, chain, pos));
      bus.RegisterNode(node.get());
      servers.push_back(std::move(node));
    }
    return dkg;
  };
  auto g0 = add_group(0, 100);
  auto g1 = add_group(1, 200);
  std::printf("6 server nodes up: group 0 = {100,101,102}, "
              "group 1 = {200,201,202}\n");

  bus.Send(Envelope{100, EntryMsg(0, MakeBatch(g0.pub.group_pk, rng),
                                  {g1.pub.group_pk})});
  if (!bus.Run(rng)) {
    std::fprintf(stderr, "hop 1 aborted: %s\n",
                 bus.aborts()[0].abort_reason.c_str());
    return 1;
  }
  std::printf("hop 1 complete: group 0 forwarded %zu ciphertexts to "
              "group 1\n",
              bus.outputs()[0].subs[0].size());
  CiphertextBatch forwarded = bus.outputs()[0].subs[0];
  bus.ClearOutputs();

  bus.Send(Envelope{200, EntryMsg(1, std::move(forwarded), {})});
  if (!bus.Run(rng)) {
    std::fprintf(stderr, "hop 2 aborted\n");
    return 1;
  }
  std::printf("hop 2 complete; anonymized output:\n");
  PrintPlaintexts(bus.outputs()[0].subs[0]);
  return 0;
}

// ----------------------------------------------------- multi-process mode

struct ServerHandle {
  pid_t pid = -1;
  int stdin_w = -1;   // closing this tells the child to exit
  uint16_t port = 0;
  std::string keyfile;  // temp keystore file, removed at reap
};

std::string ServerBinaryPath(const char* argv0) {
  std::string self = argv0;
  size_t slash = self.rfind('/');
  std::string dir = (slash == std::string::npos) ? "." : self.substr(0, slash);
  return dir + "/atom_server";
}

// Spawns one atom_server. With `use_keyfile` the identity key travels via
// a private temp file and --keyfile (the keystore path a real deployment
// uses); otherwise it rides argv as --sk (the loopback demo fallback).
bool SpawnServer(const std::string& binary, uint32_t id, const Scalar& sk,
                 const Point& driver_pk, bool use_keyfile,
                 ServerHandle* out) {
  int in_pipe[2], out_pipe[2];
  if (pipe(in_pipe) != 0 || pipe(out_pipe) != 0) {
    return false;
  }
  std::string id_str = std::to_string(id);
  auto sk_bytes = sk.ToBytes();
  std::string sk_hex = HexEncode(BytesView(sk_bytes.data(), sk_bytes.size()));
  std::string pk_hex = HexEncode(BytesView(driver_pk.Encode()));
  std::string keyfile;
  if (use_keyfile) {
    keyfile = "/tmp/atom_server_key_" +
              std::to_string(static_cast<long>(getpid())) + "_" + id_str;
    // Recorded before any failure path so ReapAll always unlinks it, and
    // created 0600 + O_EXCL: the file holds a long-term secret, and a
    // pre-existing entry (stale run, planted symlink) must fail, not be
    // followed.
    out->keyfile = keyfile;
    unlink(keyfile.c_str());
    int fd = open(keyfile.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
    if (fd < 0) {
      return false;
    }
    std::string line = sk_hex + "\n";
    if (write(fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size())) {
      close(fd);
      return false;
    }
    close(fd);
  }
  pid_t pid = fork();
  if (pid < 0) {
    return false;
  }
  if (pid == 0) {
    dup2(in_pipe[0], STDIN_FILENO);
    dup2(out_pipe[1], STDOUT_FILENO);
    close(in_pipe[0]);
    close(in_pipe[1]);
    close(out_pipe[0]);
    close(out_pipe[1]);
    if (use_keyfile) {
      execl(binary.c_str(), "atom_server", "--id", id_str.c_str(),
            "--keyfile", keyfile.c_str(), "--driver-pk", pk_hex.c_str(),
            static_cast<char*>(nullptr));
    } else {
      execl(binary.c_str(), "atom_server", "--id", id_str.c_str(), "--sk",
            sk_hex.c_str(), "--driver-pk", pk_hex.c_str(),
            static_cast<char*>(nullptr));
    }
    std::fprintf(stderr, "exec %s failed\n", binary.c_str());
    _exit(127);
  }
  close(in_pipe[0]);
  close(out_pipe[1]);
  // The child prints ATOM_SERVER_PORT=<port> once it listens.
  FILE* child_out = fdopen(out_pipe[0], "r");
  char line[128];
  unsigned port = 0;
  if (child_out == nullptr || std::fgets(line, sizeof(line), child_out) ==
                                  nullptr ||
      std::sscanf(line, "ATOM_SERVER_PORT=%u", &port) != 1) {
    if (child_out != nullptr) {
      std::fclose(child_out);
    }
    kill(pid, SIGKILL);
    return false;
  }
  std::fclose(child_out);  // closes out_pipe[0]; child writes nothing else
  out->pid = pid;
  out->stdin_w = in_pipe[1];
  out->port = static_cast<uint16_t>(port);
  return true;
}

void ReapAll(std::vector<ServerHandle>& servers) {
  for (ServerHandle& server : servers) {
    if (server.stdin_w >= 0) {
      close(server.stdin_w);  // EOF -> child exits
      server.stdin_w = -1;
    }
  }
  for (ServerHandle& server : servers) {
    if (server.pid < 0) {
      continue;
    }
    for (int i = 0; i < 100; i++) {  // ~1s of patience, then the hammer
      if (waitpid(server.pid, nullptr, WNOHANG) != 0) {
        server.pid = -1;
        break;
      }
      usleep(10'000);
    }
    if (server.pid >= 0) {
      kill(server.pid, SIGKILL);
      waitpid(server.pid, nullptr, 0);
      server.pid = -1;
    }
  }
  for (ServerHandle& server : servers) {
    if (!server.keyfile.empty()) {
      unlink(server.keyfile.c_str());
      server.keyfile.clear();
    }
  }
}

int RunTcp(const char* argv0, uint64_t seed) {
  signal(SIGPIPE, SIG_IGN);  // dead-child pipe writes must not kill us
  Rng rng(seed);
  std::string binary = ServerBinaryPath(argv0);

  // ---- Key material and groups, generated once and shared by both
  // transports so a seeded round is directly comparable.
  KemKeypair driver_key = KemKeyGen(rng);
  DkgResult g0 = RunDkg(DkgParams{3, 3}, rng);
  DkgResult g1 = RunDkg(DkgParams{3, 3}, rng);
  struct ServerSpec {
    uint32_t id;
    uint32_t gid;
    KemKeypair key;
    NodeGroupKeys group_keys;
  };
  std::vector<ServerSpec> specs;
  std::vector<uint32_t> chain0 = {100, 101, 102}, chain1 = {200, 201, 202};
  for (uint32_t pos = 0; pos < 3; pos++) {
    specs.push_back(ServerSpec{chain0[pos], 0, KemKeyGen(rng),
                               MakeNodeGroupKeys(g0, chain0, pos)});
  }
  for (uint32_t pos = 0; pos < 3; pos++) {
    specs.push_back(ServerSpec{chain1[pos], 1, KemKeyGen(rng),
                               MakeNodeGroupKeys(g1, chain1, pos)});
  }

  // ---- One real OS process per server.
  std::vector<ServerHandle> servers(specs.size());
  std::vector<MeshPeer> roster;
  for (size_t i = 0; i < specs.size(); i++) {
    if (!SpawnServer(binary, specs[i].id, specs[i].key.sk, driver_key.pk,
                     /*use_keyfile=*/false, &servers[i])) {
      std::fprintf(stderr, "failed to spawn atom_server for %u\n",
                   specs[i].id);
      ReapAll(servers);
      return 1;
    }
    roster.push_back(MeshPeer{specs[i].id, "127.0.0.1", servers[i].port,
                              specs[i].key.pk});
  }
  std::printf("6 atom_server processes up (pids");
  for (const ServerHandle& server : servers) {
    std::printf(" %d", static_cast<int>(server.pid));
  }
  std::printf("), loopback ports");
  for (const ServerHandle& server : servers) {
    std::printf(" %u", server.port);
  }
  std::printf("\n");

  // ---- Driver mesh: dial, authenticate, push roster + group keys.
  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  driver.SetRoster(roster);
  driver.set_dial_attempts(3);
  if (!driver.ConnectAndPushRoster()) {
    std::fprintf(stderr, "roster push failed\n");
    ReapAll(servers);
    return 1;
  }
  for (const ServerSpec& spec : specs) {
    if (!driver.SendJoinGroup(spec.id, spec.gid, spec.group_keys)) {
      std::fprintf(stderr, "join-group push to %u failed\n", spec.id);
      ReapAll(servers);
      return 1;
    }
  }
  std::printf("encrypted links up; roster and group keys distributed\n");

  // ---- The in-process twin: same keys, same seed, LocalBus transport.
  LocalBus local_bus;
  std::vector<std::unique_ptr<AtomNode>> local_nodes;
  for (const ServerSpec& spec : specs) {
    local_nodes.push_back(
        std::make_unique<AtomNode>(spec.id, Variant::kTrap));
    local_nodes.back()->JoinGroup(spec.gid, spec.group_keys);
    local_bus.RegisterNode(local_nodes.back().get());
  }

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, rng);
  Rng run_rng_local(seed + 1);
  Rng run_rng_mesh(seed + 1);

  auto run_hop = [&](uint32_t entry_server, const NodeMsg& entry,
                     const char* label) -> bool {
    local_bus.Send(Envelope{entry_server, entry});
    if (!local_bus.Run(run_rng_local)) {
      std::fprintf(stderr, "%s aborted on LocalBus\n", label);
      return false;
    }
    driver.Send(Envelope{entry_server, entry});
    if (!driver.Run(run_rng_mesh)) {
      std::fprintf(stderr, "%s aborted on mesh: %s\n", label,
                   driver.aborts().back().abort_reason.c_str());
      return false;
    }
    if (local_bus.outputs().size() != 1 || driver.outputs().size() != 1 ||
        EncodeNodeMsg(local_bus.outputs()[0]) !=
            EncodeNodeMsg(driver.outputs()[0])) {
      std::fprintf(stderr, "%s: transports DIVERGED\n", label);
      return false;
    }
    std::printf("%s: LocalBus and TCP mesh group outputs are "
                "byte-identical (%zu bytes)\n",
                label, EncodeNodeMsg(driver.outputs()[0]).size());
    return true;
  };

  if (!run_hop(100, EntryMsg(0, batch, {g1.pub.group_pk}), "hop 1")) {
    ReapAll(servers);
    return 1;
  }
  CiphertextBatch forwarded = driver.outputs()[0].subs[0];
  local_bus.ClearOutputs();
  driver.ClearOutputs();
  if (!run_hop(200, EntryMsg(1, forwarded, {}), "hop 2 (exit)")) {
    ReapAll(servers);
    return 1;
  }
  std::printf("anonymized output via 6 processes over TCP:\n");
  PrintPlaintexts(driver.outputs()[0].subs[0]);

  // ---- Fault demo: SIGKILL a mid-chain server; the next round must
  // surface an abort quickly, never hang.
  std::printf("killing server 101 (pid %d) mid-deployment...\n",
              static_cast<int>(servers[1].pid));
  kill(servers[1].pid, SIGKILL);
  waitpid(servers[1].pid, nullptr, 0);
  servers[1].pid = -1;
  driver.ClearOutputs();
  driver.set_dial_attempts(1);
  driver.Send(
      Envelope{100, EntryMsg(0, MakeBatch(g0.pub.group_pk, rng), {})});
  Rng run_rng_fault(seed + 2);
  if (driver.Run(run_rng_fault)) {
    std::fprintf(stderr, "round with a killed peer unexpectedly passed\n");
    ReapAll(servers);
    return 1;
  }
  std::printf("killed peer surfaced as abort: %s\n",
              driver.aborts().back().abort_reason.c_str());

  driver.Stop();
  ReapAll(servers);
  std::printf("multi-process transport smoke: OK\n");
  return 0;
}

// --------------------------------------------- pipelined multi-round mode

int RunPipelined(const char* argv0, uint64_t seed) {
  signal(SIGPIPE, SIG_IGN);
  std::string binary = ServerBinaryPath(argv0);

  // One key epoch, taken from the same seeded Round both executors use.
  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 64;
  config.beacon = ToBytes("distributed-pipelined-epoch");
  config.workers = 2;

  Rng rng(seed);
  std::printf("setting up %zu groups of %zu servers (one DKG epoch)...\n",
              config.params.num_groups, config.params.group_size);
  Round round(config, rng);
  const size_t width = round.NumGroups();

  // Three rounds of users enter the intake back to back; each drained
  // spec carries its own entry batches, seed, and trap commitments.
  constexpr size_t kRounds = 3;
  constexpr uint32_t kUsersPerRound = 6;
  uint64_t next_client = 1000;
  std::vector<EngineRound> specs;
  for (size_t r = 0; r < kRounds; r++) {
    for (uint32_t u = 0; u < kUsersPerRound; u++) {
      uint32_t gid = u % static_cast<uint32_t>(width);
      std::string msg = "pipelined round " + std::to_string(r) +
                        " message " + std::to_string(u);
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(ToBytes(msg)),
                                    round.layout(), rng);
      sub.client_id = next_client++;
      if (!round.SubmitTrap(sub)) {
        std::fprintf(stderr, "submission rejected\n");
        return 1;
      }
    }
    specs.push_back(round.TakeEngineRound({}, rng));
  }

  // Reference: the in-process engine runs copies of the same specs.
  std::vector<RoundResult> reference;
  {
    RoundEngine engine(&ThreadPool::Shared());
    std::vector<uint64_t> tickets;
    for (const EngineRound& spec : specs) {
      tickets.push_back(engine.Submit(EngineRound(spec)));
    }
    for (uint64_t ticket : tickets) {
      reference.push_back(engine.Wait(ticket).round);
    }
  }

  // The fleet: one atom_server process per topology group, identity keys
  // delivered through --keyfile (the keystore path).
  KemKeypair driver_key = KemKeyGen(rng);
  std::vector<ServerHandle> servers(width);
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;
  std::vector<KemKeypair> server_keys;
  for (uint32_t g = 0; g < width; g++) {
    server_keys.push_back(KemKeyGen(rng));
    hosts.push_back(g + 1);
  }
  for (uint32_t g = 0; g < width; g++) {
    if (!SpawnServer(binary, hosts[g], server_keys[g].sk, driver_key.pk,
                     /*use_keyfile=*/true, &servers[g])) {
      std::fprintf(stderr, "failed to spawn atom_server %u\n", hosts[g]);
      ReapAll(servers);
      return 1;
    }
    roster.push_back(MeshPeer{hosts[g], "127.0.0.1", servers[g].port,
                              server_keys[g].pk});
  }
  std::printf("%zu atom_server processes up (one per group, keys via "
              "--keyfile), loopback ports",
              width);
  for (const ServerHandle& server : servers) {
    std::printf(" %u", server.port);
  }
  std::printf("\n");

  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  mesh.SetRoster(roster);
  mesh.set_dial_attempts(3);
  if (!mesh.ConnectAndPushRoster()) {
    std::fprintf(stderr, "roster push failed\n");
    ReapAll(servers);
    return 1;
  }
  for (uint32_t g = 0; g < width; g++) {
    if (!mesh.SendHostGroup(hosts[g], g, round.group(g).dkg())) {
      std::fprintf(stderr, "host-group push to %u failed\n", hosts[g]);
      ReapAll(servers);
      return 1;
    }
  }
  std::printf("encrypted links up; group DKG material distributed\n");

  int rc = 0;
  {
    DistributedRoundDriver driver(&mesh, hosts);
    driver.set_round_timeout(std::chrono::seconds(60));

    // All three rounds enter the network before any is waited on: round
    // r+1's intake flushes while round r is still mixing.
    std::vector<uint64_t> tickets;
    for (EngineRound& spec : specs) {
      tickets.push_back(driver.Submit(std::move(spec)));
    }
    std::printf("%zu rounds in flight over the mesh\n", driver.InFlight());

    for (size_t r = 0; r < kRounds && rc == 0; r++) {
      RoundResult mesh_result = driver.Wait(tickets[r]).round;
      const RoundResult& want = reference[r];
      if (mesh_result.aborted || want.aborted) {
        std::fprintf(stderr, "round %zu aborted (mesh: %s / engine: %s)\n",
                     r, mesh_result.abort_reason.c_str(),
                     want.abort_reason.c_str());
        rc = 1;
        break;
      }
      if (mesh_result.plaintexts != want.plaintexts ||
          mesh_result.traps_seen != want.traps_seen ||
          mesh_result.inner_seen != want.inner_seen) {
        std::fprintf(stderr, "round %zu DIVERGED from the engine\n", r);
        rc = 1;
        break;
      }
      std::printf("round %zu: mesh RoundResult byte-identical to the "
                  "engine (%zu plaintexts, %llu traps)\n",
                  r, mesh_result.plaintexts.size(),
                  static_cast<unsigned long long>(mesh_result.traps_seen));
      for (const Bytes& plaintext : mesh_result.plaintexts) {
        size_t end = plaintext.size();
        while (end > 0 && plaintext[end - 1] == 0) {
          end--;
        }
        std::printf("  > %.*s\n", static_cast<int>(end),
                    reinterpret_cast<const char*>(plaintext.data()));
      }
    }
    // Fleet-wide telemetry: every server publishes its registry upstream
    // via kMetricsSnapshot while the links are still up.
    if (rc == 0) {
      g_fleet_exposition = CollectFleetMetrics(mesh, hosts).Exposition();
    }
    mesh.Stop();  // joins reader threads before the driver dies
  }
  ReapAll(servers);
  if (rc == 0) {
    std::printf("distributed pipelined rounds: OK\n");
  }
  return rc;
}

// ----------------------------------- pipelined rounds with TCP clients

// The full deployment shape: registered clients -> SubmissionGateway ->
// streaming intake -> DistributedRoundDriver -> atom_server fleet, with a
// twin round fed the identical submissions in process as the oracle.
int RunPipelinedNetClients(const char* argv0, uint64_t seed,
                           GatewayBackend backend) {
  signal(SIGPIPE, SIG_IGN);
  std::string binary = ServerBinaryPath(argv0);

  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 64;
  config.beacon = ToBytes("distributed-ingress-epoch");
  config.workers = 2;

  // Twin rounds from one seed: byte-identical groups, keys, trustees.
  // `net` is fed over TCP ClientSessions; `ref` gets the same submission
  // bytes via in-process SubmitTrap, in the same per-shard order.
  Rng rng_ref(seed);
  Rng rng_net(seed);
  std::printf("setting up twin key epochs (%zu groups of %zu servers)...\n",
              config.params.num_groups, config.params.group_size);
  Round ref(config, rng_ref);
  Round net(config, rng_net);
  const size_t width = net.NumGroups();

  constexpr size_t kRounds = 3;
  constexpr uint32_t kUsersPerRound = 6;

  // Users register Schnorr identities with the Directory; the gateway
  // authenticates against the synced global registry.
  Directory directory(ToBytes("ingress-example-genesis"));
  Rng key_rng(seed + 11);
  std::map<uint64_t, KemKeypair> client_keys;
  for (uint32_t u = 0; u < kUsersPerRound; u++) {
    uint64_t id = 1000 + u;
    SchnorrKeypair kp = SchnorrKeyGen(key_rng);
    if (!directory.RegisterClient(MakeClientRegistration(id, kp, key_rng))) {
      std::fprintf(stderr, "client registration failed\n");
      return 1;
    }
    client_keys[id] = KemKeypair{kp.sk, kp.pk};
  }
  // Duplicate ids are rejected globally at registration time.
  SchnorrKeypair squatter = SchnorrKeyGen(key_rng);
  if (directory.RegisterClient(
          MakeClientRegistration(1000, squatter, key_rng))) {
    std::fprintf(stderr, "duplicate registration unexpectedly accepted\n");
    return 1;
  }
  ClientRegistry registry;
  registry.SeedFromDirectory(directory);
  std::printf("%zu clients registered (global registry; duplicate id "
              "rejected at registration)\n",
              registry.size());

  // All submissions prebuilt from one generator so both paths consume
  // byte-identical ciphertexts.
  Rng sub_rng(seed + 23);
  std::vector<std::vector<TrapSubmission>> subs(kRounds);
  for (size_t r = 0; r < kRounds; r++) {
    for (uint32_t u = 0; u < kUsersPerRound; u++) {
      uint32_t gid = u % static_cast<uint32_t>(width);
      std::string msg = "ingress round " + std::to_string(r) + " message " +
                        std::to_string(u);
      auto sub = MakeTrapSubmission(ref.EntryPk(gid), gid, ref.TrusteePk(),
                                    BytesView(ToBytes(msg)), ref.layout(),
                                    sub_rng);
      sub.client_id = 1000 + u;
      subs[r].push_back(std::move(sub));
    }
  }

  // Reference: in-process submission, same per-round epochs.
  std::vector<RoundResult> reference;
  {
    Rng take_ref(seed + 31);
    RoundEngine engine(&ThreadPool::Shared());
    std::vector<uint64_t> tickets;
    for (size_t r = 0; r < kRounds; r++) {
      for (const TrapSubmission& sub : subs[r]) {
        if (!ref.SubmitTrap(sub)) {
          std::fprintf(stderr, "reference submission rejected\n");
          return 1;
        }
      }
      tickets.push_back(engine.Submit(ref.TakeEngineRound({}, take_ref)));
    }
    for (uint64_t ticket : tickets) {
      reference.push_back(engine.Wait(ticket).round);
    }
  }

  // The atom_server fleet, one process per topology group.
  KemKeypair driver_key = KemKeyGen(key_rng);
  std::vector<ServerHandle> servers(width);
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;
  std::vector<KemKeypair> server_keys;
  for (uint32_t g = 0; g < width; g++) {
    server_keys.push_back(KemKeyGen(key_rng));
    hosts.push_back(g + 1);
  }
  for (uint32_t g = 0; g < width; g++) {
    if (!SpawnServer(binary, hosts[g], server_keys[g].sk, driver_key.pk,
                     /*use_keyfile=*/true, &servers[g])) {
      std::fprintf(stderr, "failed to spawn atom_server %u\n", hosts[g]);
      ReapAll(servers);
      return 1;
    }
    roster.push_back(MeshPeer{hosts[g], "127.0.0.1", servers[g].port,
                              server_keys[g].pk});
  }
  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  mesh.SetRoster(roster);
  mesh.set_dial_attempts(3);
  if (!mesh.ConnectAndPushRoster()) {
    std::fprintf(stderr, "roster push failed\n");
    ReapAll(servers);
    return 1;
  }
  for (uint32_t g = 0; g < width; g++) {
    if (!mesh.SendHostGroup(hosts[g], g, net.group(g).dkg())) {
      std::fprintf(stderr, "host-group push to %u failed\n", hosts[g]);
      ReapAll(servers);
      return 1;
    }
  }
  std::printf("%zu atom_server processes up; DKG material distributed\n",
              width);

  int rc = 0;
  {
    // The ingress tier: gateway fronting the net round's streaming
    // intake, one authenticated ClientSession per registered user.
    KemKeypair gateway_key = KemKeyGen(key_rng);
    GatewayConfig gateway_config;
    gateway_config.verify_workers = config.workers;
    // Backend-selectable so CI pins the reactor's RoundResults
    // byte-identical to both the in-process twin and the
    // thread-per-connection run of the same seed.
    std::unique_ptr<ClientGateway> gateway_ptr = MakeClientGateway(
        backend, &net, &registry, gateway_key, gateway_config);
    ClientGateway& gateway = *gateway_ptr;
    if (!gateway.Listen(0)) {
      std::fprintf(stderr, "gateway listen failed\n");
      ReapAll(servers);
      return 1;
    }
    gateway.Start();
    std::vector<std::unique_ptr<ClientSession>> sessions;
    for (uint32_t u = 0; u < kUsersPerRound; u++) {
      uint64_t id = 1000 + u;
      auto session = ClientSession::Connect("127.0.0.1", gateway.port(), id,
                                            client_keys[id], gateway_key.pk);
      if (session == nullptr) {
        std::fprintf(stderr, "client %llu failed to authenticate\n",
                     static_cast<unsigned long long>(id));
        ReapAll(servers);
        return 1;
      }
      sessions.push_back(std::move(session));
    }
    std::printf("gateway up on port %u; %zu authenticated client "
                "sessions connected\n",
                gateway.port(), sessions.size());

    DistributedRoundDriver driver(&mesh, hosts);
    driver.set_round_timeout(std::chrono::seconds(60));
    Rng take_net(seed + 31);
    std::vector<uint64_t> tickets;
    for (size_t r = 0; r < kRounds; r++) {
      // Open intake for round r, stream this round's submissions over
      // TCP, cut off, and ship — the previous rounds are still mixing on
      // the fleet while this intake fills.
      gateway.OpenRound(r + 1);
      for (uint32_t u = 0; u < kUsersPerRound; u++) {
        if (!sessions[u]->SubmitAndWait(subs[r][u])) {
          std::fprintf(stderr, "round %zu: client %u rejected\n", r, u);
          rc = 1;
          break;
        }
      }
      if (rc != 0) {
        break;
      }
      gateway.Cutoff();
      tickets.push_back(driver.Submit(net.TakeEngineRound({}, take_net)));
      std::printf("round %zu shipped to the fleet (%zu in flight); "
                  "intake reopens immediately\n",
                  r, driver.InFlight());
    }

    for (size_t r = 0; rc == 0 && r < tickets.size(); r++) {
      RoundResult got = driver.Wait(tickets[r]).round;
      const RoundResult& want = reference[r];
      if (got.aborted || want.aborted) {
        std::fprintf(stderr, "round %zu aborted (mesh: %s / ref: %s)\n", r,
                     got.abort_reason.c_str(), want.abort_reason.c_str());
        rc = 1;
        break;
      }
      if (got.plaintexts != want.plaintexts ||
          got.traps_seen != want.traps_seen ||
          got.inner_seen != want.inner_seen) {
        std::fprintf(stderr,
                     "round %zu: TCP-client intake DIVERGED from "
                     "in-process submission\n",
                     r);
        rc = 1;
        break;
      }
      std::printf("round %zu: RoundResult byte-identical to in-process "
                  "submission (%zu plaintexts, %llu traps)\n",
                  r, got.plaintexts.size(),
                  static_cast<unsigned long long>(got.traps_seen));
    }
    sessions.clear();
    gateway.Stop();
    if (rc == 0) {
      g_fleet_exposition = CollectFleetMetrics(mesh, hosts).Exposition();
    }
    mesh.Stop();
  }
  ReapAll(servers);
  if (rc == 0) {
    std::printf("distributed pipelined rounds with TCP clients: OK\n");
  }
  return rc;
}

// Scrapes the local --metrics-port endpoint the way Prometheus (or curl)
// would, and sanity-checks the payload, so CI exercises the real HTTP
// path instead of just the in-process exposition call.
bool ScrapeMetricsEndpoint(uint16_t port) {
  auto sock = TcpSocket::Dial("127.0.0.1", port);
  if (!sock.has_value()) {
    std::fprintf(stderr, "metrics scrape: dial failed\n");
    return false;
  }
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  if (!sock->SendAll(BytesView(reinterpret_cast<const uint8_t*>(
                                   request.data()),
                               request.size()))) {
    std::fprintf(stderr, "metrics scrape: send failed\n");
    return false;
  }
  sock->SetRecvTimeout(5000);
  std::string response;
  uint8_t buf[4096];
  // RecvAll wants exact counts; drain byte-wise until EOF (the server
  // closes after one response, and the payload is small).
  for (;;) {
    if (!sock->RecvAll(buf, 1)) {
      break;
    }
    response.push_back(static_cast<char>(buf[0]));
    if (response.size() > (1u << 24)) {
      break;
    }
  }
  if (response.rfind("HTTP/1.0 200 OK", 0) != 0 ||
      response.find("atom_") == std::string::npos) {
    std::fprintf(stderr, "metrics scrape: unexpected response (%zu bytes)\n",
                 response.size());
    return false;
  }
  std::printf("metrics endpoint scrape: OK (%zu bytes of exposition)\n",
              response.size());
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool tcp = false;
  bool pipelined = false;
  bool net_clients = false;
  GatewayBackend backend = GatewayBackend::kThreadPerConnection;
  uint64_t seed = 42;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--tcp") == 0) {
      tcp = true;
    } else if (std::strcmp(argv[i], "--pipelined") == 0) {
      pipelined = true;
    } else if (std::strcmp(argv[i], "--net-clients") == 0) {
      net_clients = true;
    } else if (std::strcmp(argv[i], "--reactor-gateway") == 0) {
      backend = GatewayBackend::kReactor;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      char* end = nullptr;
      seed = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "--seed must be a number\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      g_trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      g_metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-port") == 0 && i + 1 < argc) {
      char* end = nullptr;
      g_metrics_port = static_cast<int>(std::strtol(argv[++i], &end, 10));
      if (end == argv[i] || *end != '\0' || g_metrics_port < 0 ||
          g_metrics_port > 65535) {
        std::fprintf(stderr, "--metrics-port must be a port number\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: distributed_nodes [--tcp] [--pipelined] "
                   "[--net-clients] [--reactor-gateway] [--seed N] "
                   "[--trace-out FILE] [--metrics-out FILE] "
                   "[--metrics-port P]\n");
      return 2;
    }
  }

  if (!g_trace_out.empty()) {
    // Arm the span collector AND the timing gate before any work runs, so
    // the trace carries phase spans and the histograms carry samples.
    obs::Trace::Enable();
    obs::SetTimingEnabled(true);
  }
  obs::MetricsHttpServer metrics_server;
  if (g_metrics_port >= 0) {
    obs::SetTimingEnabled(true);
    if (!metrics_server.Start(static_cast<uint16_t>(g_metrics_port))) {
      std::fprintf(stderr, "could not bind --metrics-port %d\n",
                   g_metrics_port);
      return 1;
    }
    std::printf("metrics endpoint up on port %u\n", metrics_server.port());
  }

  int rc;
  if (net_clients) {
    rc = RunPipelinedNetClients(argv[0], seed, backend);
  } else if (pipelined) {
    rc = RunPipelined(argv[0], seed);
  } else {
    rc = tcp ? RunTcp(argv[0], seed) : RunLocal();
  }

  if (g_metrics_port >= 0) {
    if (rc == 0 && !ScrapeMetricsEndpoint(metrics_server.port())) {
      rc = 1;
    }
    metrics_server.Stop();
  }
  if (!g_trace_out.empty()) {
    std::string json = obs::Trace::ToJson();
    std::string error;
    if (!obs::ValidateTraceJson(json, &error)) {
      std::fprintf(stderr, "trace JSON failed validation: %s\n",
                   error.c_str());
      rc = rc == 0 ? 1 : rc;
    } else if (!obs::Trace::WriteTo(g_trace_out)) {
      std::fprintf(stderr, "could not write %s\n", g_trace_out.c_str());
      rc = rc == 0 ? 1 : rc;
    } else {
      std::printf("trace: %zu spans -> %s (valid Chrome trace-event "
                  "JSON; load in chrome://tracing or Perfetto)\n",
                  obs::Trace::EventCount(), g_trace_out.c_str());
    }
  }
  if (!g_metrics_out.empty()) {
    // Prefer the merged fleet view a pipelined run collected; fall back
    // to this process's own registry.
    const std::string body = !g_fleet_exposition.empty()
                                 ? g_fleet_exposition
                                 : obs::Registry::Global().ExpositionText();
    if (!WriteTextFile(g_metrics_out, body)) {
      std::fprintf(stderr, "could not write %s\n", g_metrics_out.c_str());
      rc = rc == 0 ? 1 : rc;
    } else {
      std::printf("metrics exposition -> %s (%zu bytes%s)\n",
                  g_metrics_out.c_str(), body.size(),
                  !g_fleet_exposition.empty() ? ", fleet-merged" : "");
    }
  }
  return rc;
}
