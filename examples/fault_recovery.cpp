// Fault tolerance (paper §4.5): many-trust groups and buddy-group recovery.
//
// A group sized for h = 2 honest servers keeps working when one server
// fails. When MORE than h-1 servers fail, the group key would be lost —
// unless members escrowed their shares with a buddy group, from which a
// replacement reconstructs the missing share and the round proceeds.
//
// Build & run:  cmake --build build && ./build/examples/fault_recovery
#include <cstdio>

#include "src/core/round.h"
#include "src/topology/groups.h"
#include "src/util/rng.h"

int main() {
  using namespace atom;
  Rng rng = Rng::FromOsEntropy();

  // Appendix B sizing at deployment scale: how big must groups be?
  std::printf("Appendix-B group sizes at f = 20%%, G = 1024, 2^-64 target:\n");
  for (size_t h = 1; h <= 3; h++) {
    std::printf("  h = %zu -> k >= %zu\n", h, MinGroupSize(0.2, 1024, h));
  }

  // Demo network: groups of 4 with threshold 3 (h = 2).
  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 8;
  config.params.num_groups = 4;
  config.params.group_size = 4;
  config.params.honest_needed = 2;  // tolerate 1 failure per group
  config.params.iterations = 3;
  config.params.message_len = 64;
  config.beacon = ToBytes("fault-demo-beacon");
  Round round(config, rng);

  for (int u = 0; u < 8; u++) {
    uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("resilient message")),
                                  round.layout(), rng);
    if (!round.SubmitTrap(sub)) {
      std::fprintf(stderr, "submission rejected\n");
      return 1;
    }
  }

  // ---- Before the round: group 2's servers escrow their shares with a
  // buddy group (3 escrow holders, any 2 reconstruct). In deployment every
  // group does this for every member; we escrow the two we will crash.
  GroupRuntime& g2 = round.group(2);
  auto escrow_s1 = EscrowShare(g2.dkg().keys[0], 3, 2, rng);
  auto escrow_s3 = EscrowShare(g2.dkg().keys[2], 3, 2, rng);

  // ---- Benign failure within tolerance: one server of group 1 crashes.
  round.group(1).MarkFailed(4);
  std::printf("\ngroup 1 lost server 4 (within h-1 = 1 tolerance)\n");

  // ---- Catastrophic failure: group 2 loses TWO servers.
  g2.MarkFailed(1);
  g2.MarkFailed(3);
  std::printf("group 2 lost servers 1 and 3 (beyond tolerance): %zu alive\n",
              g2.AliveCount());

  // Buddy recovery: replacements reconstruct the lost shares from any two
  // escrow sub-shares each, verified against the DKG transcript.
  auto rec1 = RecoverShare(g2.dkg().pub, 1,
                           std::span(escrow_s1.sub_shares).subspan(0, 2), 2);
  auto rec3 = RecoverShare(g2.dkg().pub, 3,
                           std::span(escrow_s3.sub_shares).subspan(1, 2), 2);
  if (!rec1.has_value() || !rec3.has_value()) {
    std::fprintf(stderr, "buddy recovery failed\n");
    return 1;
  }
  g2.Restore(*rec1);
  g2.Restore(*rec3);
  std::printf("buddy group reconstructed both shares; group 2 restored "
              "(%zu alive)\n",
              g2.AliveCount());

  // ---- The round still completes.
  auto result = round.Run(rng);
  if (result.aborted) {
    std::fprintf(stderr, "round aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }
  std::printf("\nround completed despite 3 server failures: %zu messages "
              "delivered\n",
              result.plaintexts.size());
  return 0;
}
