// Anonymous microblogging (paper §5, first target application).
//
// Demonstrates the full microblogging flow over two protocol rounds with a
// persistent bulletin board, and then shows the active-attack story: a
// malicious server tries to deanonymize by duplicating a ciphertext, and
// the trap machinery makes the trustees withhold the round key.
//
// Build & run:  cmake --build build && ./build/examples/microblogging
#include <cstdio>
#include <string>

#include "src/apps/microblog.h"
#include "src/core/round.h"
#include "src/util/rng.h"

namespace {

atom::RoundConfig MicroblogConfig(uint64_t round_id) {
  atom::RoundConfig config;
  config.params.variant = atom::Variant::kTrap;
  config.params.num_servers = 8;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 160;  // Tweet-length, as in the evaluation
  config.beacon = atom::ToBytes("beacon-round-" + std::to_string(round_id));
  return config;
}

}  // namespace

int main() {
  using namespace atom;
  Rng rng = Rng::FromOsEntropy();
  BulletinBoard board;

  // ---- Two normal rounds of microblogging.
  for (uint64_t round_id = 1; round_id <= 2; round_id++) {
    Round round(MicroblogConfig(round_id), rng);
    for (int u = 0; u < 6; u++) {
      std::string post = "round " + std::to_string(round_id) + " post " +
                         std::to_string(u) + ": whistleblowing safely";
      uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes(post)), round.layout(),
                                    rng);
      if (!round.SubmitTrap(sub)) {
        std::fprintf(stderr, "submission rejected\n");
        return 1;
      }
    }
    auto result = round.Run(rng);
    if (result.aborted) {
      std::fprintf(stderr, "round %llu aborted: %s\n",
                   static_cast<unsigned long long>(round_id),
                   result.abort_reason.c_str());
      return 1;
    }
    board.PostRound(round_id, result.plaintexts);
    std::printf("round %llu: %zu posts published\n",
                static_cast<unsigned long long>(round_id),
                result.plaintexts.size());
  }

  std::printf("\nBulletin board after 2 rounds:\n");
  for (uint64_t round_id = 1; round_id <= 2; round_id++) {
    for (const std::string& post : board.RenderRound(round_id)) {
      std::printf("  [round %llu] %s\n",
                  static_cast<unsigned long long>(round_id), post.c_str());
    }
  }

  // ---- Round 3: one server misbehaves (duplicates a ciphertext during its
  // shuffle, hoping to trace it). Trap accounting catches this at the exit
  // and the trustees refuse to decrypt — nothing is ever published.
  std::printf("\nRound 3: group 1's second server duplicates a message...\n");
  Round evil_round(MicroblogConfig(3), rng);
  for (int u = 0; u < 6; u++) {
    uint32_t gid = static_cast<uint32_t>(u) % evil_round.NumGroups();
    auto sub = MakeTrapSubmission(evil_round.EntryPk(gid), gid,
                                  evil_round.TrusteePk(),
                                  BytesView(ToBytes("sensitive message")),
                                  evil_round.layout(), rng);
    if (!evil_round.SubmitTrap(sub)) {
      std::fprintf(stderr, "submission rejected\n");
      return 1;
    }
  }
  Round::Evil evil{/*layer=*/0, /*gid=*/1,
                   {MaliciousAction::Kind::kDuplicateDuringShuffle,
                    /*server_index=*/2, /*target_message=*/0}};
  auto result = evil_round.Run(rng, &evil);
  if (result.aborted) {
    std::printf("round 3 aborted as designed: %s\n",
                result.abort_reason.c_str());
    std::printf("no plaintext was released; users remain anonymous.\n");
    return 0;
  }
  std::fprintf(stderr, "ERROR: tampering went undetected!\n");
  return 1;
}
