// Pipelined full rounds: one key epoch, many engine rounds in flight.
//
// The quickstart runs one synchronous round. This example drives the
// throughput-mode deployment from §4.7 instead: three batches of users
// submit through the sharded intake (duplicate client ids are rejected at
// the door), each batch drains into its own self-contained engine round
// via TakeEngineRound, and all three rounds traverse the permutation
// network concurrently — intake verification, mixing hops, trap sorting,
// trustee checks, and final decryption all ride the same thread pool, so
// round 1's exit overlaps round 2's mixing. One DKG epoch serves the whole
// pipeline.
//
// Build & run:  cmake --build build && ./build/examples/pipelined_rounds
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/round.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

int main() {
  using namespace atom;

  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 64;
  config.beacon = ToBytes("public-randomness-for-epoch-7");

  Rng rng = Rng::FromOsEntropy();
  std::printf("Setting up %zu groups of %zu servers (one DKG epoch)...\n",
              config.params.num_groups, config.params.group_size);
  Round round(config, rng);
  RoundEngine engine(&ThreadPool::Shared());

  // A client that retries its submission is caught by the per-round
  // duplicate check instead of being double-counted into the mix.
  {
    auto sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                  BytesView(ToBytes("posted once")),
                                  round.layout(), rng);
    sub.client_id = 1001;
    auto retry = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                    BytesView(ToBytes("posted twice?")),
                                    round.layout(), rng);
    retry.client_id = 1001;
    bool first = round.SubmitTrap(sub);
    bool second = round.SubmitTrap(retry);
    std::printf("client 1001 submits: %s; retries: %s\n",
                first ? "accepted" : "rejected",
                second ? "accepted" : "rejected");
  }

  // Three rounds of users enter the pipeline back to back. Each
  // TakeEngineRound packages that batch's ciphertexts AND its trap
  // commitments, so the exit checks of concurrent rounds never mix.
  constexpr size_t kRounds = 3;
  constexpr uint32_t kUsersPerRound = 6;
  std::vector<uint64_t> tickets;
  std::vector<uint64_t> epochs;  // for blame / blame-data release
  uint64_t next_client = 2000;
  for (size_t r = 0; r < kRounds; r++) {
    uint32_t submitted = r == 0 ? 1 : 0;  // round 0 carries client 1001
    for (uint32_t u = 0; u < kUsersPerRound; u++) {
      uint32_t gid = u % round.NumGroups();
      std::string msg = "round " + std::to_string(r) + " message " +
                        std::to_string(u);
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes(msg)), round.layout(),
                                    rng);
      sub.client_id = next_client++;
      if (round.SubmitTrap(sub)) {
        submitted++;
      }
    }
    auto spec = round.TakeEngineRound({}, rng);
    epochs.push_back(spec.intake_epoch);
    tickets.push_back(engine.Submit(std::move(spec)));
    std::printf("round %zu: %u submissions entered the network\n", r,
                submitted);
  }

  // All three rounds are in flight; the engine finishes each one fully
  // (exit phase included) and hands back its RoundResult.
  for (size_t r = 0; r < kRounds; r++) {
    auto result = engine.Wait(tickets[r]).round;
    if (result.aborted) {
      // A disrupted round keeps its blame data: BlameEntryGroup(gid,
      // epochs[r]) would identify the cheating submissions.
      std::fprintf(stderr, "round %zu aborted: %s\n", r,
                   result.abort_reason.c_str());
      return 1;
    }
    round.ReleaseBlameEpoch(epochs[r]);  // clean: drop retained blame data
    std::printf("round %zu complete: %llu traps verified, %zu messages:\n",
                r, static_cast<unsigned long long>(result.traps_seen),
                result.plaintexts.size());
    for (const Bytes& plaintext : result.plaintexts) {
      size_t end = plaintext.size();
      while (end > 0 && plaintext[end - 1] == 0) {
        end--;
      }
      std::printf("  > %.*s\n", static_cast<int>(end),
                  reinterpret_cast<const char*>(plaintext.data()));
    }
  }
  return 0;
}
