// Quickstart: the smallest complete Atom deployment.
//
// Sets up a 4-group network of 3-server anytrust groups, has eight users
// submit short messages through the trap-variant protocol, runs the full
// round (DKG, submission proofs, T mixing iterations, trap checks, trustee
// key release), and prints the anonymized output.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/round.h"
#include "src/util/rng.h"

int main() {
  using namespace atom;

  // 1. Configure a small network. In a real deployment these parameters
  //    come from the directory: f = 20% adversarial, group size from
  //    Appendix B, T = 10. We shrink everything for a fast demo.
  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 64;
  config.beacon = ToBytes("public-randomness-for-round-1");

  Rng rng = Rng::FromOsEntropy();
  std::printf("Setting up %zu groups of %zu servers (DKG per group)...\n",
              config.params.num_groups, config.params.group_size);
  Round round(config, rng);

  // 2. Users encrypt to their chosen entry group and submit. Each
  //    submission carries the real message (under the trustees' key) and an
  //    equal-length trap, in random order.
  const char* messages[] = {
      "assemble at the square at noon", "bring water and masks",
      "the permit was denied",          "medics meet at the east gate",
      "legal aid: +1-555-0100",         "watch for provocateurs",
      "tomorrow same time",             "stay safe everyone",
  };
  for (uint32_t u = 0; u < 8; u++) {
    uint32_t gid = u % round.NumGroups();  // load-balanced entry choice
    auto submission = MakeTrapSubmission(
        round.EntryPk(gid), gid, round.TrusteePk(),
        BytesView(ToBytes(messages[u])), round.layout(), rng);
    if (!round.SubmitTrap(submission)) {
      std::fprintf(stderr, "submission rejected for user %u\n", u);
      return 1;
    }
  }
  std::printf("8 users submitted (ciphertext + trap + commitment each).\n");

  // 3. Run the round: shuffle / divide / reencrypt through the square
  //    network, then the exit phase sorts traps and inner ciphertexts,
  //    every group reports, and the trustees release the round key.
  auto result = round.Run(rng);
  if (result.aborted) {
    std::fprintf(stderr, "round aborted: %s\n", result.abort_reason.c_str());
    return 1;
  }

  std::printf("Round complete: %llu traps verified, %zu messages "
              "anonymized.\n\n",
              static_cast<unsigned long long>(result.traps_seen),
              result.plaintexts.size());
  std::printf("Anonymized bulletin (order is a secret permutation):\n");
  for (const Bytes& plaintext : result.plaintexts) {
    size_t end = plaintext.size();
    while (end > 0 && plaintext[end - 1] == 0) {
      end--;
    }
    std::printf("  > %.*s\n", static_cast<int>(end),
                reinterpret_cast<const char*>(plaintext.data()));
  }
  return 0;
}
