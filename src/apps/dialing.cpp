#include "src/apps/dialing.h"

#include <cmath>

#include "src/util/serde.h"

namespace atom {

Bytes MakeDialRequest(uint64_t recipient_id, const Point& recipient_pk,
                      BytesView payload, Rng& rng) {
  ATOM_CHECK(payload.size() == kDialPayloadLen);
  ByteWriter w;
  w.U64(recipient_id);
  w.Raw(BytesView(KemEncrypt(recipient_pk, payload, rng)));
  Bytes out = w.Take();
  ATOM_CHECK(out.size() == kDialMessageLen);
  return out;
}

std::optional<uint64_t> DialRecipient(BytesView request) {
  if (request.size() != kDialMessageLen) {
    return std::nullopt;
  }
  ByteReader r(request);
  return r.U64();
}

std::optional<Bytes> OpenDialRequest(uint64_t recipient_id,
                                     const Scalar& recipient_sk,
                                     BytesView request) {
  auto id = DialRecipient(request);
  if (!id.has_value() || *id != recipient_id) {
    return std::nullopt;
  }
  return KemDecrypt(recipient_sk, request.subspan(8));
}

MailboxSystem::MailboxSystem(size_t num_mailboxes) : boxes_(num_mailboxes) {
  ATOM_CHECK(num_mailboxes >= 1);
}

size_t MailboxSystem::Deliver(std::span<const Bytes> plaintexts) {
  size_t dropped = 0;
  for (const Bytes& p : plaintexts) {
    auto id = DialRecipient(BytesView(p));
    if (!id.has_value()) {
      dropped++;
      continue;
    }
    boxes_[MailboxOf(*id)].push_back(p);
  }
  return dropped;
}

size_t SampleDummyCount(double mu, double b, Rng& rng) {
  // Laplace(0, b) via inverse CDF on u ∈ (-1/2, 1/2).
  double u = (static_cast<double>(rng.NextU64()) /
                  static_cast<double>(UINT64_MAX) -
              0.5);
  double noise = -b * std::copysign(1.0, u) *
                 std::log(1.0 - 2.0 * std::abs(u) + 1e-18);
  double count = mu + noise;
  if (count < 0) {
    return 0;
  }
  return static_cast<size_t>(std::llround(count));
}

std::vector<Bytes> MakeDummyDials(size_t count, uint64_t id_space, Rng& rng) {
  std::vector<Bytes> out;
  out.reserve(count);
  auto throwaway = KemKeyGen(rng);
  Bytes payload(kDialPayloadLen, 0);
  for (size_t i = 0; i < count; i++) {
    rng.Fill(payload.data(), payload.size());
    uint64_t id = rng.NextBelow(id_space);
    out.push_back(MakeDialRequest(id, throwaway.pk, BytesView(payload), rng));
  }
  return out;
}

}  // namespace atom
