// Dialing on top of Atom (§5): bootstrapping a shared secret for private
// messaging systems, in the style of Vuvuzela/Alpenhorn.
//
// Alice encrypts her public key to Bob's long-term key (IND-CCA2 KEM) and
// sends [Bob's identifier || ciphertext] through Atom. The exit servers
// deposit each dial request into mailbox (identifier mod m); Bob downloads
// his mailbox and trial-decrypts. To hide how many calls a user receives,
// an anytrust group injects dummy dials per mailbox with counts drawn from
// a (shifted, clamped) Laplace distribution — Vuvuzela's differential-
// privacy mechanism, with the paper's µ = 13,000 per server.
#ifndef SRC_APPS_DIALING_H_
#define SRC_APPS_DIALING_H_

#include <optional>
#include <vector>

#include "src/crypto/kem.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace atom {

// The paper's simple 80-byte dialing message: 8-byte recipient identifier
// plus a KEM encryption of the caller's 23-byte handshake payload
// (33 + 23 + 16 = 72 bytes of ciphertext).
inline constexpr size_t kDialMessageLen = 80;
inline constexpr size_t kDialPayloadLen =
    kDialMessageLen - 8 - kKemOverhead;

// Builds a dial request for `recipient_id` carrying `payload` (exactly
// kDialPayloadLen bytes, e.g. a truncated/encoded caller public key).
Bytes MakeDialRequest(uint64_t recipient_id, const Point& recipient_pk,
                      BytesView payload, Rng& rng);

// Recipient side: parses a dial request addressed to `recipient_id` and
// attempts decryption; nullopt when malformed or not for this key.
std::optional<Bytes> OpenDialRequest(uint64_t recipient_id,
                                     const Scalar& recipient_sk,
                                     BytesView request);

// Extracts just the recipient identifier (what exit servers route on).
std::optional<uint64_t> DialRecipient(BytesView request);

// Exit-side mailbox sorting.
class MailboxSystem {
 public:
  explicit MailboxSystem(size_t num_mailboxes);

  // Routes each anonymized plaintext to mailbox (recipient_id mod m);
  // undecodable plaintexts are dropped (returns how many were dropped).
  size_t Deliver(std::span<const Bytes> plaintexts);

  size_t num_mailboxes() const { return boxes_.size(); }
  size_t MailboxOf(uint64_t recipient_id) const {
    return recipient_id % boxes_.size();
  }
  const std::vector<Bytes>& mailbox(size_t idx) const { return boxes_[idx]; }

 private:
  std::vector<std::vector<Bytes>> boxes_;
};

// Vuvuzela-style dummy counts: max(0, round(µ + Laplace(0, b))) per server.
// Each of the k servers in the noise group contributes one draw.
size_t SampleDummyCount(double mu, double b, Rng& rng);

// Generates `count` indistinguishable dummy dial requests to random
// mailboxes under a throwaway key.
std::vector<Bytes> MakeDummyDials(size_t count, uint64_t id_space, Rng& rng);

}  // namespace atom

#endif  // SRC_APPS_DIALING_H_
