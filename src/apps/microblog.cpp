#include "src/apps/microblog.h"

namespace atom {

void BulletinBoard::PostRound(uint64_t round_id,
                              std::span<const Bytes> plaintexts) {
  for (const Bytes& p : plaintexts) {
    Post post;
    post.round = round_id;
    size_t end = p.size();
    while (end > 0 && p[end - 1] == 0) {
      end--;
    }
    post.content.assign(p.begin(), p.begin() + static_cast<ptrdiff_t>(end));
    posts_.push_back(std::move(post));
  }
}

std::vector<std::string> BulletinBoard::RenderRound(uint64_t round_id) const {
  std::vector<std::string> out;
  for (const Post& post : posts_) {
    if (post.round != round_id) {
      continue;
    }
    std::string text;
    text.reserve(post.content.size());
    for (uint8_t b : post.content) {
      text.push_back((b >= 0x20 && b < 0x7f) ? static_cast<char>(b) : '.');
    }
    out.push_back(std::move(text));
  }
  return out;
}

}  // namespace atom
