// Anonymous microblogging on top of Atom (§5): the exit servers post the
// anonymized plaintexts to a public bulletin board that anyone can read.
#ifndef SRC_APPS_MICROBLOG_H_
#define SRC_APPS_MICROBLOG_H_

#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace atom {

class BulletinBoard {
 public:
  struct Post {
    uint64_t round = 0;
    Bytes content;  // padding stripped
  };

  // Publishes one round's anonymized plaintexts. Zero padding added by the
  // protocol (PadTo) is stripped from the tail.
  void PostRound(uint64_t round_id, std::span<const Bytes> plaintexts);

  const std::vector<Post>& posts() const { return posts_; }

  // Posts from one round, as printable strings (non-printables escaped).
  std::vector<std::string> RenderRound(uint64_t round_id) const;

 private:
  std::vector<Post> posts_;
};

}  // namespace atom

#endif  // SRC_APPS_MICROBLOG_H_
