// Application workloads for the adversarial scenario harness
// (src/testing/scenario.h): deterministic traffic generator + end-to-end
// validator pairs that run the §5 applications over the real client path
// (ClientSession -> SubmissionGateway -> DistributedRoundDriver) instead
// of synthetic submissions.
//
//  * kRaw       — seeded opaque bytes; validation is multiset equality of
//                 anonymized plaintexts vs. accepted submissions.
//  * kDialing   — each client dials a ring neighbour (MakeDialRequest);
//                 validation additionally routes the round's plaintexts
//                 through MailboxSystem and has every dialed recipient
//                 trial-decrypt its mailbox (OpenDialRequest), asserting
//                 the handshake payload survived the mix byte-for-byte.
//  * kMicroblog — printable posts; validation posts the round to a
//                 BulletinBoard and asserts every accepted post renders.
//
// Generation is a pure function of (seed, round, client), so a scenario
// replayed from its seed submits identical application traffic, and the
// validator can reconstruct expectations for exactly the subset of
// submissions the gateway accepted (under churn, not every generated
// message is accepted — callers pass the accepted set).
#ifndef SRC_APPS_WORKLOAD_H_
#define SRC_APPS_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/crypto/kem.h"
#include "src/util/bytes.h"

namespace atom {

enum class WorkloadKind : uint8_t {
  kRaw = 0,
  kDialing = 1,
  kMicroblog = 2,
};

const char* WorkloadName(WorkloadKind kind);

class ScenarioWorkload {
 public:
  // `message_len` is the round's plaintext length: every generated
  // message is exactly this long (dialing requires >= kDialMessageLen;
  // shorter application payloads are zero-padded to it, matching the
  // protocol's own padding so accepted-vs-plaintext comparison is exact).
  // `client_ids` fixes the dialing ring (each id dials its successor).
  ScenarioWorkload(WorkloadKind kind, size_t message_len, uint64_t seed,
                   std::span<const uint64_t> client_ids);

  WorkloadKind kind() const { return kind_; }

  // The message client `client_id` submits in round `round_id`.
  // Deterministic in (seed, round, client); the bytes are also recorded
  // so CheckRound can validate whichever subset was accepted.
  Bytes Message(uint64_t round_id, uint64_t client_id);

  // Validates one completed round end to end. `accepted` is the multiset
  // of messages the gateway accepted (as returned by Message);
  // `plaintexts` is the RoundResult's anonymized output. Returns an empty
  // string on success, else a description of the first violation.
  std::string CheckRound(uint64_t round_id, std::span<const Bytes> accepted,
                         std::span<const Bytes> plaintexts);

 private:
  struct DialExpectation {
    uint64_t recipient = 0;
    Bytes payload;  // what OpenDialRequest must recover
  };

  const WorkloadKind kind_;
  const size_t message_len_;
  const uint64_t seed_;
  std::vector<uint64_t> client_ids_;
  std::map<uint64_t, KemKeypair> dial_keys_;  // dialing: per-client KEM key
  // Generated message bytes -> its dial expectation (keyed by bytes so
  // the accepted subset selects exactly the right expectations).
  std::map<Bytes, DialExpectation> dials_;
};

}  // namespace atom

#endif  // SRC_APPS_WORKLOAD_H_
