#include "src/baselines/dpf.h"

#include <cmath>
#include <cstring>

#include "src/crypto/chacha20.h"
#include "src/util/check.h"

namespace atom {
namespace {

// PRG: expands a 16-byte seed into cols*slot_bytes pseudorandom bytes.
Bytes Expand(const std::array<uint8_t, 16>& seed, size_t out_len) {
  uint8_t key[32] = {0};
  std::memcpy(key, seed.data(), 16);
  uint8_t nonce[12] = {'d', 'p', 'f', '-', 'p', 'r', 'g', 0, 0, 0, 0, 0};
  Bytes out(out_len, 0);
  ChaCha20Xor(key, nonce, 0, out.data(), out.size());
  return out;
}

void XorInto(Bytes* dst, BytesView src) {
  ATOM_CHECK(dst->size() == src.size());
  for (size_t i = 0; i < src.size(); i++) {
    (*dst)[i] ^= src[i];
  }
}

}  // namespace

DpfParams DpfParams::For(size_t slots, size_t slot_bytes) {
  DpfParams p;
  p.slot_bytes = slot_bytes;
  p.rows = static_cast<size_t>(std::ceil(std::sqrt(
      static_cast<double>(slots))));
  p.cols = (slots + p.rows - 1) / p.rows;
  return p;
}

DpfKeyPair DpfGen(const DpfParams& params, size_t alpha, BytesView msg,
                  Rng& rng) {
  ATOM_CHECK(alpha < params.Slots());
  ATOM_CHECK(msg.size() == params.slot_bytes);
  const size_t target_row = alpha / params.cols;
  const size_t target_col = alpha % params.cols;
  const size_t row_bytes = params.cols * params.slot_bytes;

  DpfKeyPair pair;
  pair.a.params = pair.b.params = params;
  pair.a.seeds.resize(params.rows);
  pair.b.seeds.resize(params.rows);
  pair.a.bits.resize(params.rows);
  pair.b.bits.resize(params.rows);

  for (size_t r = 0; r < params.rows; r++) {
    rng.Fill(pair.a.seeds[r].data(), 16);
    if (r == target_row) {
      rng.Fill(pair.b.seeds[r].data(), 16);  // independent seed at the target
    } else {
      pair.b.seeds[r] = pair.a.seeds[r];  // shared elsewhere
    }
    pair.a.bits[r] = static_cast<uint8_t>(rng.NextU64() & 1);
    pair.b.bits[r] = (r == target_row) ? (pair.a.bits[r] ^ 1)
                                       : pair.a.bits[r];
  }

  // Correction word: PRG(sA) ^ PRG(sB) ^ (unit vector at target_col ⊗ msg).
  Bytes corr = Expand(pair.a.seeds[target_row], row_bytes);
  XorInto(&corr, BytesView(Expand(pair.b.seeds[target_row], row_bytes)));
  for (size_t i = 0; i < params.slot_bytes; i++) {
    corr[target_col * params.slot_bytes + i] ^= msg[i];
  }
  pair.a.correction = corr;
  pair.b.correction = std::move(corr);
  return pair;
}

Bytes DpfEvalRow(const DpfKey& key, size_t row) {
  ATOM_CHECK(row < key.params.rows);
  const size_t row_bytes = key.params.cols * key.params.slot_bytes;
  Bytes out = Expand(key.seeds[row], row_bytes);
  if (key.bits[row] != 0) {
    XorInto(&out, BytesView(key.correction));
  }
  return out;
}

Bytes DpfEval(const DpfKey& key) {
  const size_t row_bytes = key.params.cols * key.params.slot_bytes;
  Bytes out;
  out.reserve(key.params.rows * row_bytes);
  for (size_t r = 0; r < key.params.rows; r++) {
    Bytes row = DpfEvalRow(key, r);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

}  // namespace atom
