// Two-server distributed point function (DPF), the core primitive of the
// Riposte baseline (Corrigan-Gibbs et al., S&P 2015).
//
// A client wanting to write message m into slot α of an L-slot database
// splits the write into two keys. Each server expands its key into an
// L-slot table; the XOR of the two expansions is zero everywhere except
// slot α, where it is m. Neither key alone reveals α or m.
//
// This is the classic √L construction Riposte uses: the database is an
// R × C matrix (R = C = ⌈√L⌉); the keys share R-1 of R row seeds and
// differ in one, plus a correction word that plants the message.
#ifndef SRC_BASELINES_DPF_H_
#define SRC_BASELINES_DPF_H_

#include <optional>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace atom {

struct DpfParams {
  size_t rows = 0;
  size_t cols = 0;
  size_t slot_bytes = 0;

  static DpfParams For(size_t slots, size_t slot_bytes);
  size_t Slots() const { return rows * cols; }
};

struct DpfKey {
  DpfParams params;
  std::vector<std::array<uint8_t, 16>> seeds;  // one per row
  std::vector<uint8_t> bits;                   // one per row
  Bytes correction;                            // cols * slot_bytes
};

struct DpfKeyPair {
  DpfKey a, b;
};

// Generates keys for writing `msg` (slot_bytes long) into slot `alpha`.
DpfKeyPair DpfGen(const DpfParams& params, size_t alpha, BytesView msg,
                  Rng& rng);

// Expands one key into a full table (rows*cols*slot_bytes bytes). The XOR
// of both servers' tables is the point function.
Bytes DpfEval(const DpfKey& key);

// Expands a single row (the unit of server work; used for cost accounting).
Bytes DpfEvalRow(const DpfKey& key, size_t row);

}  // namespace atom

#endif  // SRC_BASELINES_DPF_H_
