#include "src/baselines/riposte.h"

#include <chrono>

#include "src/util/check.h"

namespace atom {

RiposteServer::RiposteServer(const DpfParams& params)
    : params_(params),
      db_(params.rows * params.cols * params.slot_bytes, 0) {}

void RiposteServer::ApplyWrite(const DpfKey& key) {
  ATOM_CHECK(key.params.rows == params_.rows &&
             key.params.cols == params_.cols &&
             key.params.slot_bytes == params_.slot_bytes);
  const size_t row_bytes = params_.cols * params_.slot_bytes;
  for (size_t r = 0; r < params_.rows; r++) {
    Bytes row = DpfEvalRow(key, r);
    for (size_t i = 0; i < row_bytes; i++) {
      db_[r * row_bytes + i] ^= row[i];
    }
  }
  writes_++;
}

Bytes CombineReplicas(std::span<const RiposteServer* const> servers) {
  ATOM_CHECK(!servers.empty());
  Bytes out = servers[0]->database();
  for (size_t s = 1; s < servers.size(); s++) {
    const Bytes& db = servers[s]->database();
    ATOM_CHECK(db.size() == out.size());
    for (size_t i = 0; i < out.size(); i++) {
      out[i] ^= db[i];
    }
  }
  return out;
}

RiposteEstimate EstimateRiposteRound(size_t num_messages, size_t msg_bytes,
                                     size_t cores, Rng& rng) {
  // Measure the real write path on a small database, then scale the PRG
  // work linearly in the database size (it is a pure streaming XOR).
  constexpr size_t kProbeSlots = 4096;
  constexpr size_t kProbeWrites = 8;
  DpfParams probe = DpfParams::For(kProbeSlots, msg_bytes);
  RiposteServer server(probe);
  Bytes msg(msg_bytes, 0x42);

  std::vector<DpfKey> keys;
  for (size_t i = 0; i < kProbeWrites; i++) {
    auto pair = DpfGen(probe, i * 17 % probe.Slots(), BytesView(msg), rng);
    keys.push_back(std::move(pair.a));
  }
  // Best of three probe passes: scheduling noise only ever inflates a
  // timing, so the minimum is the most faithful per-write cost.
  double probe_seconds = 1e18;
  for (int pass = 0; pass < 3; pass++) {
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& key : keys) {
      server.ApplyWrite(key);
    }
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        kProbeWrites;
    probe_seconds = std::min(probe_seconds, elapsed);
  }

  RiposteEstimate est;
  double scale = static_cast<double>(num_messages) /
                 static_cast<double>(probe.Slots());
  est.per_write_seconds = probe_seconds * scale;
  est.round_seconds = est.per_write_seconds *
                      static_cast<double>(num_messages) /
                      static_cast<double>(cores);
  return est;
}

}  // namespace atom
