// Riposte baseline (Table 12): a centralized anytrust anonymous
// microblogging system where each client write is a DPF applied by every
// server to its full database — Θ(M) PRG work per write, hence Θ(M²) per
// round. Riposte cannot scale horizontally without weakening its trust
// assumption (§6.2 discussion), which is the comparison Atom makes.
//
// We implement the real write path (apply a DPF key to a replicated
// database, then combine replicas) and derive the Table 12 row by measuring
// it and extrapolating to the paper's configuration (3 × 36-core servers,
// one million 160-byte messages).
#ifndef SRC_BASELINES_RIPOSTE_H_
#define SRC_BASELINES_RIPOSTE_H_

#include "src/baselines/dpf.h"

namespace atom {

// One Riposte server: holds an XOR-shared replica of the database.
class RiposteServer {
 public:
  explicit RiposteServer(const DpfParams& params);

  // Applies one client's write (expands the key over the whole database).
  void ApplyWrite(const DpfKey& key);

  const Bytes& database() const { return db_; }
  size_t writes_applied() const { return writes_; }

 private:
  DpfParams params_;
  Bytes db_;
  size_t writes_ = 0;
};

// XOR-combines server replicas into the plaintext database.
Bytes CombineReplicas(std::span<const RiposteServer* const> servers);

// Measures the per-write server cost at a small database size and
// extrapolates a full round (M writes into an M-slot database, spread over
// `cores` cores) — the Table 12 estimate methodology.
struct RiposteEstimate {
  double per_write_seconds = 0;  // one server, one core, M-slot database
  double round_seconds = 0;      // M writes / cores
};
RiposteEstimate EstimateRiposteRound(size_t num_messages, size_t msg_bytes,
                                     size_t cores, Rng& rng);

}  // namespace atom

#endif  // SRC_BASELINES_RIPOSTE_H_
