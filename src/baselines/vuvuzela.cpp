#include "src/baselines/vuvuzela.h"

#include <algorithm>

#include "src/crypto/shuffle.h"

namespace atom {

VuvuzelaChain::VuvuzelaChain(size_t num_servers, Rng& rng) {
  ATOM_CHECK(num_servers >= 1);
  keys_.reserve(num_servers);
  for (size_t i = 0; i < num_servers; i++) {
    keys_.push_back(KemKeyGen(rng));
  }
}

Bytes VuvuzelaChain::Wrap(BytesView payload, Rng& rng) const {
  // Innermost layer for the last server, outermost for the first.
  Bytes onion(payload.begin(), payload.end());
  for (size_t i = keys_.size(); i > 0; i--) {
    onion = KemEncrypt(keys_[i - 1].pk, BytesView(onion), rng);
  }
  return onion;
}

std::vector<Bytes> VuvuzelaChain::Process(std::vector<Bytes> batch,
                                          Rng& rng) const {
  for (const KemKeypair& server : keys_) {
    std::vector<Bytes> next;
    next.reserve(batch.size());
    for (const Bytes& onion : batch) {
      auto inner = KemDecrypt(server.sk, BytesView(onion));
      if (inner.has_value()) {
        next.push_back(std::move(*inner));
      }
    }
    // In-memory shuffle (cheap compared to the crypto).
    auto perm = RandomPermutation(next.size(), rng);
    std::vector<Bytes> shuffled(next.size());
    for (size_t i = 0; i < next.size(); i++) {
      shuffled[i] = std::move(next[perm[i]]);
    }
    batch = std::move(shuffled);
  }
  return batch;
}

double EstimateVuvuzelaDialing(size_t num_messages, size_t noise_messages,
                               size_t servers, size_t cores,
                               const CostModel& costs) {
  // Every server hybrid-decrypts every (real + dummy) message; servers work
  // in series but each is internally parallel. Inter-server transfer over
  // a 10 Gbps link (paper's setup) plus mailbox sorting at the end.
  double per_server_messages =
      static_cast<double>(num_messages + noise_messages);
  double decrypt_wall = per_server_messages * costs.kem_decrypt /
                        static_cast<double>(cores);
  double bytes = per_server_messages * 80.0;
  double transfer = bytes / (10e9 / 8.0) + 0.001;  // LAN latency
  return static_cast<double>(servers) * (decrypt_wall + transfer);
}

}  // namespace atom
