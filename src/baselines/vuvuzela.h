// Vuvuzela / Alpenhorn dialing baseline (Table 12): a fixed chain of
// anytrust servers through which every dial message passes. Each server
// strips one onion layer (hybrid decryption), shuffles in memory, adds
// differential-privacy dummies, and forwards; the last server sorts into
// mailboxes. Centralized anytrust: all M messages cross every server, so
// the system scales only vertically — Atom's point of comparison.
//
// We implement the real onion pipeline (KEM layers over the dial payload)
// and estimate the paper's configuration (3 × 36-core servers) from
// measured per-message costs.
#ifndef SRC_BASELINES_VUVUZELA_H_
#define SRC_BASELINES_VUVUZELA_H_

#include "src/crypto/kem.h"
#include "src/sim/costmodel.h"

namespace atom {

// A chain of anytrust mix servers with hybrid (KEM+AEAD) onion encryption.
class VuvuzelaChain {
 public:
  VuvuzelaChain(size_t num_servers, Rng& rng);

  size_t num_servers() const { return keys_.size(); }
  const Point& server_pk(size_t i) const { return keys_[i].pk; }

  // Client: onion-encrypts `payload` for the whole chain (innermost layer
  // encrypted to the last server).
  Bytes Wrap(BytesView payload, Rng& rng) const;

  // Runs the full pipeline over a batch: each server strips its layer and
  // shuffles. Returns the plaintext payloads in shuffled order; malformed
  // onions are dropped.
  std::vector<Bytes> Process(std::vector<Bytes> batch, Rng& rng) const;

 private:
  std::vector<KemKeypair> keys_;
};

// Table 12 estimate: M dial messages through `servers` chain servers with
// `cores` cores each, using the measured hybrid-decryption cost.
double EstimateVuvuzelaDialing(size_t num_messages, size_t noise_messages,
                               size_t servers, size_t cores,
                               const CostModel& costs);

}  // namespace atom

#endif  // SRC_BASELINES_VUVUZELA_H_
