#include "src/core/blame.h"

#include <algorithm>
#include <map>

#include "src/util/hex.h"

namespace atom {
namespace {

// Decrypts one ciphertext vector and reassembles the padded plaintext.
std::optional<Bytes> DecryptToBytes(const Scalar& secret,
                                    const ElGamalCiphertextVec& ct,
                                    const MessageLayout& layout) {
  auto points = ElGamalDecryptVec(secret, ct);
  if (!points.has_value()) {
    return std::nullopt;
  }
  return ReassembleFromPoints(*points, layout);
}

}  // namespace

BlameResult RunBlame(const Scalar& entry_secret,
                     std::span<const TrapSubmission> submissions,
                     const MessageLayout& layout) {
  BlameResult result;
  // inner ciphertext (hex) -> first submitter seen.
  std::map<std::string, size_t> inner_seen;

  for (size_t u = 0; u < submissions.size(); u++) {
    const TrapSubmission& sub = submissions[u];
    auto first = DecryptToBytes(entry_secret, sub.first, layout);
    auto second = DecryptToBytes(entry_secret, sub.second, layout);
    if (!first.has_value() || !second.has_value()) {
      result.bad_users.push_back(u);
      continue;
    }

    // Exactly one of the two must be a trap matching the commitment and
    // carrying this group's gid; the other must be a message.
    auto classify = [&](const Bytes& plain) {
      auto trap = ParseTrap(BytesView(plain));
      if (trap.has_value()) {
        return trap->gid == sub.entry_gid &&
               ConstantTimeEqual(BytesView(CommitTrap(BytesView(plain))),
                                 BytesView(sub.trap_commitment))
                   ? 1   // valid trap
                   : -1;  // malformed trap
      }
      return ParseMessage(BytesView(plain)).has_value() ? 0 : -1;
    };
    int c1 = classify(*first);
    int c2 = classify(*second);
    if (c1 < 0 || c2 < 0 || c1 + c2 != 1) {
      result.bad_users.push_back(u);
      continue;
    }

    const Bytes& message_plain = (c1 == 0) ? *first : *second;
    auto inner = ParseMessage(BytesView(message_plain));
    std::string key = HexEncode(BytesView(*inner));
    auto [it, fresh] = inner_seen.emplace(std::move(key), u);
    if (!fresh) {
      // Duplicate inner ciphertexts: both submitters are implicated (an
      // honest user's inner ciphertext is unique with overwhelming
      // probability, so a duplicate means copying).
      result.bad_users.push_back(it->second);
      result.bad_users.push_back(u);
    }
  }

  // Deduplicate indices (a user can be flagged twice).
  std::sort(result.bad_users.begin(), result.bad_users.end());
  result.bad_users.erase(
      std::unique(result.bad_users.begin(), result.bad_users.end()),
      result.bad_users.end());
  return result;
}

}  // namespace atom
