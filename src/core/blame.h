// Malicious-user identification after a disrupted round (§4.6).
//
// In the trap variant, a malicious USER can disrupt a round by submitting a
// trap that does not match its commitment, no trap at all, or a duplicated
// inner ciphertext; the trustees then refuse to release the key and the
// round yields nothing. To identify the culprits, every entry group reveals
// its (round-specific) private key, decrypts the submissions it accepted,
// and checks each user's pair directly.
#ifndef SRC_CORE_BLAME_H_
#define SRC_CORE_BLAME_H_

#include <vector>

#include "src/core/client.h"
#include "src/core/message.h"

namespace atom {

struct BlameResult {
  // Indices (into the submissions span) of users whose submission is
  // provably malformed: wrong/missing trap, or duplicated inner ciphertext.
  std::vector<size_t> bad_users;
};

// `entry_secret` is the entry group's reconstructed private key (the group
// reveals it; those keys are per-round, so this sacrifices nothing beyond
// the already-disrupted round).
BlameResult RunBlame(const Scalar& entry_secret,
                     std::span<const TrapSubmission> submissions,
                     const MessageLayout& layout);

}  // namespace atom

#endif  // SRC_CORE_BLAME_H_
