#include "src/core/client.h"

#include "src/crypto/kem.h"

namespace atom {
namespace {

// Encrypts a padded plaintext as a ciphertext vector with proofs. When a
// precomputed table for entry_pk is supplied the encryptions route through
// it (the EncProof commitments use only the generator, which already has a
// shared table), producing bit-identical output.
void EncryptWithProofs(const Point& entry_pk,
                       const FixedBaseTable* entry_table, uint32_t entry_gid,
                       BytesView padded, const MessageLayout& layout,
                       Rng& rng, ElGamalCiphertextVec* ct_out,
                       std::vector<EncProof>* proofs_out) {
  std::vector<Point> points = FragmentToPoints(padded, layout);
  std::vector<Scalar> randomness;
  *ct_out = entry_table != nullptr
                ? ElGamalEncryptVec(*entry_table, points, rng, &randomness)
                : ElGamalEncryptVec(entry_pk, points, rng, &randomness);
  *proofs_out = MakeEncProofVec(entry_pk, entry_gid, *ct_out, randomness, rng);
}

NizkSubmission MakeNizkSubmissionImpl(const Point& entry_pk,
                                      const FixedBaseTable* entry_table,
                                      uint32_t entry_gid, BytesView message,
                                      const MessageLayout& layout, Rng& rng) {
  NizkSubmission sub;
  sub.entry_gid = entry_gid;
  Bytes padded = PadTo(message, layout.padded_len);
  EncryptWithProofs(entry_pk, entry_table, entry_gid, BytesView(padded),
                    layout, rng, &sub.ciphertext, &sub.proofs);
  return sub;
}

}  // namespace

NizkSubmission MakeNizkSubmission(const Point& entry_pk, uint32_t entry_gid,
                                  BytesView message,
                                  const MessageLayout& layout, Rng& rng) {
  return MakeNizkSubmissionImpl(entry_pk, nullptr, entry_gid, message, layout,
                                rng);
}

NizkSubmission MakeNizkSubmission(const FixedBaseTable& entry_pk,
                                  uint32_t entry_gid, BytesView message,
                                  const MessageLayout& layout, Rng& rng) {
  return MakeNizkSubmissionImpl(entry_pk.base(), &entry_pk, entry_gid,
                                message, layout, rng);
}

bool VerifyNizkSubmission(const Point& entry_pk,
                          const NizkSubmission& submission,
                          const MessageLayout& layout) {
  if (submission.ciphertext.size() != layout.num_points) {
    return false;
  }
  return VerifyEncProofVec(entry_pk, submission.entry_gid,
                           submission.ciphertext, submission.proofs);
}

namespace {

TrapSubmission MakeTrapSubmissionImpl(
    const Point& entry_pk, const FixedBaseTable* entry_table,
    uint32_t entry_gid, const Point& trustee_pk,
    const FixedBaseTable* trustee_table, BytesView message,
    const MessageLayout& layout, Rng& rng,
    TrapSubmissionSecrets* secrets_out) {
  TrapSubmission sub;
  sub.entry_gid = entry_gid;

  // Inner ciphertext: IND-CCA2 encryption of the padded message under the
  // trustees' round key, so no mix server can maul it (§4.4).
  Bytes padded_msg = PadTo(message, layout.plaintext_len);
  Bytes inner = trustee_table != nullptr
                    ? KemEncrypt(*trustee_table, BytesView(padded_msg), rng)
                    : KemEncrypt(trustee_pk, BytesView(padded_msg), rng);
  Bytes msg_plaintext = MakeMessagePlaintext(BytesView(inner), layout);

  // Trap: entry gid + fresh nonce, padded to the same length.
  Bytes nonce = rng.NextBytes(kTrapNonceLen);
  Bytes trap_plaintext = MakeTrapPlaintext(entry_gid, BytesView(nonce),
                                           layout);
  sub.trap_commitment = CommitTrap(BytesView(trap_plaintext));

  ElGamalCiphertextVec msg_ct, trap_ct;
  std::vector<EncProof> msg_proofs, trap_proofs;
  EncryptWithProofs(entry_pk, entry_table, entry_gid,
                    BytesView(msg_plaintext), layout, rng, &msg_ct,
                    &msg_proofs);
  EncryptWithProofs(entry_pk, entry_table, entry_gid,
                    BytesView(trap_plaintext), layout, rng, &trap_ct,
                    &trap_proofs);

  // Random submission order: a server that drops one of the two cannot tell
  // whether it dropped the trap (50% detection per §4.4).
  bool first_is_trap = (rng.NextU64() & 1) != 0;
  if (first_is_trap) {
    sub.first = std::move(trap_ct);
    sub.first_proofs = std::move(trap_proofs);
    sub.second = std::move(msg_ct);
    sub.second_proofs = std::move(msg_proofs);
  } else {
    sub.first = std::move(msg_ct);
    sub.first_proofs = std::move(msg_proofs);
    sub.second = std::move(trap_ct);
    sub.second_proofs = std::move(trap_proofs);
  }
  if (secrets_out != nullptr) {
    secrets_out->trap_plaintext = std::move(trap_plaintext);
    secrets_out->first_is_trap = first_is_trap;
  }
  return sub;
}

}  // namespace

TrapSubmission MakeTrapSubmission(const Point& entry_pk, uint32_t entry_gid,
                                  const Point& trustee_pk, BytesView message,
                                  const MessageLayout& layout, Rng& rng,
                                  TrapSubmissionSecrets* secrets_out) {
  return MakeTrapSubmissionImpl(entry_pk, nullptr, entry_gid, trustee_pk,
                                nullptr, message, layout, rng, secrets_out);
}

TrapSubmission MakeTrapSubmission(const FixedBaseTable& entry_pk,
                                  uint32_t entry_gid,
                                  const FixedBaseTable& trustee_pk,
                                  BytesView message,
                                  const MessageLayout& layout, Rng& rng,
                                  TrapSubmissionSecrets* secrets_out) {
  return MakeTrapSubmissionImpl(entry_pk.base(), &entry_pk, entry_gid,
                                trustee_pk.base(), &trustee_pk, message,
                                layout, rng, secrets_out);
}

bool VerifyTrapSubmission(const Point& entry_pk,
                          const TrapSubmission& submission,
                          const MessageLayout& layout) {
  if (submission.first.size() != layout.num_points ||
      submission.second.size() != layout.num_points) {
    return false;
  }
  return VerifyEncProofVec(entry_pk, submission.entry_gid, submission.first,
                           submission.first_proofs) &&
         VerifyEncProofVec(entry_pk, submission.entry_gid, submission.second,
                           submission.second_proofs);
}

}  // namespace atom
