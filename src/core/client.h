// User-side message preparation (§4.2-§4.4).
//
// A user picks an entry group, encrypts her (padded, fragmented) message to
// the entry group's key, and proves knowledge of the plaintext (EncProof,
// bound to the entry group id). In the trap variant she additionally builds
// an equal-length trap ciphertext, commits to the trap, and submits the two
// ciphertexts in random order.
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <optional>

#include "src/core/message.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/sigma.h"
#include "src/util/rng.h"

namespace atom {

// Client identity attached to a submission. Entry-group servers reject a
// second submission carrying the same id within one engine round (the
// anti-double-counting rule); kAnonymousClient opts out of the check for
// drivers that do their own accounting.
//
// Trust assumption: the id is bookkeeping, not cryptography — it is not
// covered by the submission proofs. The authenticated channel that makes
// it trustworthy is the client ingress tier (src/net/gateway.h): ids bind
// to Schnorr keys via signed registrations in a GLOBAL registry
// (Directory::RegisterClient, src/net/registry.h — duplicates rejected at
// registration time, across all entry groups), a SubmissionGateway only
// completes the SecureLink handshake against the registered key, and it
// rejects any submission whose id differs from the channel that carried
// it. In-process drivers that bypass the gateway still stand in for that
// authentication themselves (or wire Round::SetClientAuth to a registry).
inline constexpr uint64_t kAnonymousClient = 0;

// NIZK-variant submission: one ciphertext vector + per-component proofs.
struct NizkSubmission {
  uint32_t entry_gid = 0;
  uint64_t client_id = kAnonymousClient;
  ElGamalCiphertextVec ciphertext;
  std::vector<EncProof> proofs;
};

NizkSubmission MakeNizkSubmission(const Point& entry_pk, uint32_t entry_gid,
                                  BytesView message,
                                  const MessageLayout& layout, Rng& rng);

// Same, through a precomputed table for the entry group's key. A client
// that submits more than a handful of fragments (or keeps a session open
// across rounds, src/net/client_session.h) amortizes the table build; the
// outputs are bit-identical to the Point overload for the same Rng state.
NizkSubmission MakeNizkSubmission(const FixedBaseTable& entry_pk,
                                  uint32_t entry_gid, BytesView message,
                                  const MessageLayout& layout, Rng& rng);

// Verifies the proofs of a NIZK submission (every entry-group server does
// this on receipt).
bool VerifyNizkSubmission(const Point& entry_pk,
                          const NizkSubmission& submission,
                          const MessageLayout& layout);

// Trap-variant submission: two equal-length ciphertext vectors in random
// order plus the trap commitment. `first_is_trap` is the user's secret coin;
// it is NOT part of what servers can see (ciphertexts are indistinguishable).
struct TrapSubmission {
  uint32_t entry_gid = 0;
  uint64_t client_id = kAnonymousClient;
  ElGamalCiphertextVec first;
  std::vector<EncProof> first_proofs;
  ElGamalCiphertextVec second;
  std::vector<EncProof> second_proofs;
  std::array<uint8_t, 32> trap_commitment{};
};

struct TrapSubmissionSecrets {
  Bytes trap_plaintext;  // what the user expects to reappear at exit
  bool first_is_trap = false;
};

TrapSubmission MakeTrapSubmission(const Point& entry_pk, uint32_t entry_gid,
                                  const Point& trustee_pk, BytesView message,
                                  const MessageLayout& layout, Rng& rng,
                                  TrapSubmissionSecrets* secrets_out = nullptr);

// Table-accelerated variant (entry key for the two ciphertext vectors,
// trustee key for the inner KEM); bit-identical outputs.
TrapSubmission MakeTrapSubmission(const FixedBaseTable& entry_pk,
                                  uint32_t entry_gid,
                                  const FixedBaseTable& trustee_pk,
                                  BytesView message,
                                  const MessageLayout& layout, Rng& rng,
                                  TrapSubmissionSecrets* secrets_out = nullptr);

bool VerifyTrapSubmission(const Point& entry_pk,
                          const TrapSubmission& submission,
                          const MessageLayout& layout);

}  // namespace atom

#endif  // SRC_CORE_CLIENT_H_
