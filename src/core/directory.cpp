#include "src/core/directory.h"

#include "src/crypto/sha256.h"
#include "src/util/serde.h"

namespace atom {

Bytes ServerRecord::Encode() const {
  ByteWriter w;
  w.U32(id);
  w.Raw(BytesView(identity_pk.Encode()));
  w.U32(cluster);
  return w.Take();
}

std::optional<ServerRecord> ServerRecord::Decode(BytesView bytes) {
  ByteReader r(bytes);
  auto id = r.U32();
  auto pk_raw = r.Raw(Point::kEncodedSize);
  auto cluster = r.U32();
  if (!id || !pk_raw || !cluster.has_value() || !r.Done()) {
    return std::nullopt;
  }
  auto pk = Point::Decode(BytesView(*pk_raw));
  if (!pk.has_value() || pk->IsInfinity()) {
    return std::nullopt;
  }
  return ServerRecord{*id, *pk, *cluster};
}

ServerRegistration MakeServerRegistration(uint32_t id, uint32_t cluster,
                                          const SchnorrKeypair& identity,
                                          Rng& rng) {
  ServerRegistration reg;
  reg.record.id = id;
  reg.record.identity_pk = identity.pk;
  reg.record.cluster = cluster;
  reg.signature = SchnorrSign(identity.sk, identity.pk,
                              BytesView(reg.record.Encode()), rng);
  return reg;
}

Bytes ClientRecord::Encode() const {
  ByteWriter w;
  w.U64(client_id);
  w.Raw(BytesView(pk.Encode()));
  return w.Take();
}

std::optional<ClientRecord> ClientRecord::Decode(BytesView bytes) {
  ByteReader r(bytes);
  auto id = r.U64();
  auto pk_raw = r.Raw(Point::kEncodedSize);
  if (!id || !pk_raw || !r.Done()) {
    return std::nullopt;
  }
  auto pk = Point::Decode(BytesView(*pk_raw));
  if (!pk.has_value() || pk->IsInfinity()) {
    return std::nullopt;
  }
  return ClientRecord{*id, *pk};
}

namespace {

// Domain-separates client registrations from server registrations (both
// are Schnorr signatures over a record encoding).
Bytes ClientRegistrationMessage(const ClientRecord& record) {
  ByteWriter w;
  w.Raw(ToBytes("atom/client-reg/v1"));
  w.Raw(BytesView(record.Encode()));
  return w.Take();
}

}  // namespace

ClientRegistration MakeClientRegistration(uint64_t client_id,
                                          const SchnorrKeypair& identity,
                                          Rng& rng) {
  ClientRegistration reg;
  reg.record.client_id = client_id;
  reg.record.pk = identity.pk;
  reg.signature =
      SchnorrSign(identity.sk, identity.pk,
                  BytesView(ClientRegistrationMessage(reg.record)), rng);
  return reg;
}

bool VerifyClientRegistration(const ClientRegistration& registration) {
  if (registration.record.client_id == 0 ||
      registration.record.pk.IsInfinity()) {
    return false;  // the anonymous id and the identity point are reserved
  }
  return SchnorrVerify(registration.record.pk,
                       BytesView(ClientRegistrationMessage(registration.record)),
                       registration.signature);
}

Directory::Directory(Bytes genesis) : genesis_(std::move(genesis)) {}

bool Directory::Register(const ServerRegistration& registration) {
  if (FindServer(registration.record.id) != nullptr) {
    return false;
  }
  if (!SchnorrVerify(registration.record.identity_pk,
                     BytesView(registration.record.Encode()),
                     registration.signature)) {
    return false;
  }
  servers_.push_back(registration.record);
  return true;
}

const ServerRecord* Directory::FindServer(uint32_t id) const {
  for (const ServerRecord& record : servers_) {
    if (record.id == id) {
      return &record;
    }
  }
  return nullptr;
}

bool Directory::RegisterClient(const ClientRegistration& registration) {
  if (FindClient(registration.record.client_id) != nullptr) {
    return false;  // global uniqueness: first registration wins
  }
  if (!VerifyClientRegistration(registration)) {
    return false;
  }
  client_index_[registration.record.client_id] = clients_.size();
  clients_.push_back(registration.record);
  return true;
}

const ClientRecord* Directory::FindClient(uint64_t client_id) const {
  auto it = client_index_.find(client_id);
  if (it == client_index_.end()) {
    return nullptr;
  }
  return &clients_[it->second];
}

Bytes Directory::BeaconFor(uint64_t round_id) const {
  // beacon_r = H(genesis ‖ r): every participant derives the same value and
  // the whole chain is fixed at genesis time.
  ByteWriter w;
  w.Var(BytesView(genesis_));
  w.Raw(ToBytes("atom/beacon/v1"));
  w.U64(round_id);
  auto digest = Sha256::Hash(BytesView(w.bytes()));
  return Bytes(digest.begin(), digest.end());
}

RoundDescriptor Directory::DescribeRound(uint64_t round_id,
                                         const AtomParams& params) const {
  ATOM_CHECK(params.num_servers == servers_.size());
  RoundDescriptor descriptor;
  descriptor.round_id = round_id;
  descriptor.beacon = BeaconFor(round_id);
  descriptor.params = params;
  descriptor.layout = FormGroups(servers_.size(), params.num_groups,
                                 params.group_size,
                                 BytesView(descriptor.beacon));
  return descriptor;
}

}  // namespace atom
