// Directory authority (§2.1): the component every participant trusts for
// *consistency* (not privacy) — the agreed list of servers and their
// identity keys, and the public, unbiased per-round randomness from which
// group membership is derived. The paper points to a fault-tolerant cluster
// of directory authorities (as in Tor) and external randomness beacons
// [14, 68]; we implement a single authority with a hash-chained beacon.
#ifndef SRC_CORE_DIRECTORY_H_
#define SRC_CORE_DIRECTORY_H_

#include <optional>
#include <vector>

#include "src/core/params.h"
#include "src/crypto/schnorr.h"
#include "src/topology/groups.h"

namespace atom {

struct ServerRecord {
  uint32_t id = 0;
  Point identity_pk;    // the server IS this key (§2.1)
  uint32_t cluster = 0;  // network-locality hint for the latency model

  Bytes Encode() const;
  static std::optional<ServerRecord> Decode(BytesView bytes);
};

// A server's signed registration: binds the record to its identity key, so
// nobody can register a record for a key they do not hold.
struct ServerRegistration {
  ServerRecord record;
  SchnorrSignature signature;
};

ServerRegistration MakeServerRegistration(uint32_t id, uint32_t cluster,
                                          const SchnorrKeypair& identity,
                                          Rng& rng);

// Everything a participant needs to join round `round_id`.
struct RoundDescriptor {
  uint64_t round_id = 0;
  Bytes beacon;
  AtomParams params;
  GroupLayout layout;
};

class Directory {
 public:
  // `genesis` seeds the beacon chain (in deployment: an external randomness
  // beacon output, e.g. a Bitcoin block hash or drand round).
  explicit Directory(Bytes genesis);

  // Verifies the signature and the id's uniqueness; returns false and
  // ignores the registration otherwise.
  bool Register(const ServerRegistration& registration);

  size_t NumServers() const { return servers_.size(); }
  const ServerRecord* FindServer(uint32_t id) const;
  const std::vector<ServerRecord>& servers() const { return servers_; }

  // Beacon for a round: hash-chained from genesis, so all parties agree and
  // no single round's value can be ground out by the directory (each value
  // is fixed by the chain; an adversarial directory could only stall).
  Bytes BeaconFor(uint64_t round_id) const;

  // Assembles the descriptor: beacon-derived group layout over the current
  // registry. Requires params.num_servers == NumServers().
  RoundDescriptor DescribeRound(uint64_t round_id,
                                const AtomParams& params) const;

 private:
  Bytes genesis_;
  std::vector<ServerRecord> servers_;
};

}  // namespace atom

#endif  // SRC_CORE_DIRECTORY_H_
