// Directory authority (§2.1): the component every participant trusts for
// *consistency* (not privacy) — the agreed list of servers and their
// identity keys, and the public, unbiased per-round randomness from which
// group membership is derived. The paper points to a fault-tolerant cluster
// of directory authorities (as in Tor) and external randomness beacons
// [14, 68]; we implement a single authority with a hash-chained beacon.
#ifndef SRC_CORE_DIRECTORY_H_
#define SRC_CORE_DIRECTORY_H_

#include <map>
#include <optional>
#include <vector>

#include "src/core/params.h"
#include "src/crypto/schnorr.h"
#include "src/topology/groups.h"

namespace atom {

struct ServerRecord {
  uint32_t id = 0;
  Point identity_pk;    // the server IS this key (§2.1)
  uint32_t cluster = 0;  // network-locality hint for the latency model

  Bytes Encode() const;
  static std::optional<ServerRecord> Decode(BytesView bytes);
};

// A server's signed registration: binds the record to its identity key, so
// nobody can register a record for a key they do not hold.
struct ServerRegistration {
  ServerRecord record;
  SchnorrSignature signature;
};

ServerRegistration MakeServerRegistration(uint32_t id, uint32_t cluster,
                                          const SchnorrKeypair& identity,
                                          Rng& rng);

// A registered user: the non-anonymous client id bound to the key that
// authenticates her submission channel (src/net/gateway.h). Registration
// is GLOBAL — one namespace across every entry group — so an id cannot be
// squatted at a second group after its owner registered it at the first
// (the per-group duplicate check in Round's intake only deduplicates
// within one group's epoch).
struct ClientRecord {
  uint64_t client_id = 0;  // kAnonymousClient (0) is never registrable
  Point pk;                // long-term identity key (Schnorr + channel KEM)

  Bytes Encode() const;
  static std::optional<ClientRecord> Decode(BytesView bytes);
};

// A client's signed registration: binds the id to the key, so nobody can
// register an id under a key they do not hold.
struct ClientRegistration {
  ClientRecord record;
  SchnorrSignature signature;
};

ClientRegistration MakeClientRegistration(uint64_t client_id,
                                          const SchnorrKeypair& identity,
                                          Rng& rng);

// Verifies the registration signature over the record (domain-separated
// from server registrations). Shared by the Directory and any replica
// applying a registry sync.
bool VerifyClientRegistration(const ClientRegistration& registration);

// Everything a participant needs to join round `round_id`.
struct RoundDescriptor {
  uint64_t round_id = 0;
  Bytes beacon;
  AtomParams params;
  GroupLayout layout;
};

class Directory {
 public:
  // `genesis` seeds the beacon chain (in deployment: an external randomness
  // beacon output, e.g. a Bitcoin block hash or drand round).
  explicit Directory(Bytes genesis);

  // Verifies the signature and the id's uniqueness; returns false and
  // ignores the registration otherwise.
  bool Register(const ServerRegistration& registration);

  size_t NumServers() const { return servers_.size(); }
  const ServerRecord* FindServer(uint32_t id) const;
  const std::vector<ServerRecord>& servers() const { return servers_; }

  // Client registration (§2.1 extended to users): verifies the signature
  // and enforces GLOBAL id uniqueness — a duplicate id is rejected here,
  // at registration time, not merely deduplicated per entry group at
  // submission time. Returns false and ignores the registration otherwise.
  bool RegisterClient(const ClientRegistration& registration);
  size_t NumClients() const { return clients_.size(); }
  const ClientRecord* FindClient(uint64_t client_id) const;
  const std::vector<ClientRecord>& clients() const { return clients_; }

  // Beacon for a round: hash-chained from genesis, so all parties agree and
  // no single round's value can be ground out by the directory (each value
  // is fixed by the chain; an adversarial directory could only stall).
  Bytes BeaconFor(uint64_t round_id) const;

  // Assembles the descriptor: beacon-derived group layout over the current
  // registry. Requires params.num_servers == NumServers().
  RoundDescriptor DescribeRound(uint64_t round_id,
                                const AtomParams& params) const;

 private:
  Bytes genesis_;
  std::vector<ServerRecord> servers_;
  std::vector<ClientRecord> clients_;
  // id -> index into clients_: registration is O(log N) per client, which
  // matters at the millions-of-users scale the ingress tier targets.
  std::map<uint64_t, size_t> client_index_;
};

}  // namespace atom

#endif  // SRC_CORE_DIRECTORY_H_
