#include "src/core/engine.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "src/crypto/kem.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"

namespace atom {

// One vertex of the hop DAG. `inbound` slots parallel `preds`; each
// predecessor writes exactly one slot, so slot writes never race, and the
// acq_rel countdown on `pending` publishes them to the hop task.
struct RoundEngine::HopNode {
  std::atomic<size_t> pending{0};
  std::vector<uint32_t> preds;  // predecessor gids, ascending
  std::vector<CiphertextBatch> inbound;
  const MaliciousAction* fault = nullptr;
};

namespace {

// Latency-aware ready-queue weights (ThreadPool drains highest weight
// first). Deeper layers outrank shallower ones, so with several rounds
// in flight the oldest round's remaining hops drain before fresh intake
// — round latency stays flat under pipelining instead of growing with
// the backlog. Within a layer, larger sub-batch totals go first: the
// biggest hop bounds the layer's critical path, so starting it early
// shortens the stragglers' shadow. Exit stages outrank every mixing hop
// (they gate a round's completion and are cheap by comparison), and
// later exit stages outrank earlier ones. Execution order never affects
// results — every hop draws from its own derived DRBG — so weighting is
// pure scheduling.
constexpr int64_t kLayerStride = int64_t{1} << 20;
constexpr size_t kBatchWeightCap = (size_t{1} << 20) - 1;

int64_t HopWeight(size_t layer, size_t input_vecs) {
  return static_cast<int64_t>(layer + 1) * kLayerStride +
         static_cast<int64_t>(std::min(input_vecs, kBatchWeightCap));
}

int64_t ExitStageWeight(size_t layers, int stage /* 0=sort,1=check,2=fin */) {
  return static_cast<int64_t>(layers + 1 + static_cast<size_t>(stage)) *
         kLayerStride;
}

// Engine telemetry, aggregated process-wide (one engine per process in the
// distributed deployment; benches with several see one combined series).
// Hop/round duration histograms sample only when obs::TimingEnabled();
// counters and the in-flight gauges are always on.
struct EngineMetrics {
  obs::Counter* hops;
  obs::Counter* rounds;
  obs::Counter* rounds_aborted;
  obs::Histogram* hop_us;
  obs::Histogram* round_us;
  obs::Gauge* inflight;
  obs::Gauge* inflight_peak;
  obs::Gauge* overlap_permille;

  static EngineMetrics& Get() {
    static EngineMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      EngineMetrics out;
      out.hops = reg.GetCounter("atom_engine_hops_total");
      out.rounds = reg.GetCounter("atom_engine_rounds_total");
      out.rounds_aborted = reg.GetCounter("atom_engine_rounds_aborted_total");
      out.hop_us = reg.GetHistogram("atom_engine_hop_duration_us");
      out.round_us = reg.GetHistogram("atom_engine_round_duration_us");
      out.inflight = reg.GetGauge("atom_engine_inflight_rounds");
      out.inflight_peak = reg.GetGauge("atom_engine_inflight_rounds_peak");
      out.overlap_permille =
          reg.GetGauge("atom_engine_pipeline_overlap_permille");
      return out;
    }();
    return m;
  }
};

// Pipeline-overlap bookkeeping (sampled only when obs::TimingEnabled()):
// the ratio of summed per-round wall time to the elapsed time since the
// first submit. Sequential rounds give ~1000 permille; a ratio of N×1000
// means N rounds' lifetimes overlapped on average — the direct measure of
// how much pipelining the engine actually achieved.
std::atomic<int64_t> g_first_submit_us{-1};
std::atomic<int64_t> g_round_active_us{0};
std::atomic<int64_t> g_inflight_rounds{0};

}  // namespace

struct RoundEngine::RoundState {
  EngineRound spec;
  uint64_t ticket = 0;      // engine ticket, doubles as the trace round id
  int64_t submit_us = -1;   // Trace::NowUs() at Submit; -1 = not sampled
  size_t layers = 0;
  size_t width = 0;
  std::vector<HopNode> hops;  // hops[layer * width + gid]
  // Counts every task of this round — mixing hops plus, with an ExitPlan,
  // the exit sorts, checks, and finalize. The last task flips `done`.
  std::atomic<size_t> tasks_remaining{0};
  std::atomic<bool> aborted{false};
  std::vector<CiphertextBatch> exits;  // written per-gid by exit hops

  // Engine-native exit state (allocated only when spec.exit is set). Each
  // stage writes per-gid slots, so slot writes never race; the acq_rel
  // countdowns publish them to the next stage, exactly like HopNode.
  bool native_exit = false;
  std::vector<ExitSort> sorted;             // trap: per source gid
  std::vector<std::vector<Bytes>> decoded;  // nizk: per gid
  std::atomic<size_t> sorts_pending{0};     // barrier before the checks
  std::vector<GroupReport> reports;         // trap: per destination gid
  std::vector<std::vector<Bytes>> gathered_inner;  // trap: per dest gid
  std::atomic<size_t> checks_pending{0};    // barrier before finalize
  RoundResult round;                        // written by finalize only

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::string abort_reason;  // guarded by mu; first abort wins
};

void RoundEngine::AbortRound(const std::shared_ptr<RoundState>& rs,
                             std::string reason) {
  bool expected = false;
  if (rs->aborted.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->abort_reason = std::move(reason);
  }
}

void RoundEngine::FinishTask(const std::shared_ptr<RoundState>& rs) {
  if (rs->tasks_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    EngineMetrics& metrics = EngineMetrics::Get();
    metrics.rounds->Add(1);
    if (rs->aborted.load(std::memory_order_acquire)) {
      metrics.rounds_aborted->Add(1);
    }
    metrics.inflight->Set(
        g_inflight_rounds.fetch_sub(1, std::memory_order_relaxed) - 1);
    if (rs->submit_us >= 0) {
      const int64_t now_us = obs::Trace::NowUs();
      const int64_t dur_us = now_us - rs->submit_us;
      metrics.round_us->Observe(static_cast<uint64_t>(dur_us));
      const int64_t active =
          g_round_active_us.fetch_add(dur_us, std::memory_order_relaxed) +
          dur_us;
      const int64_t first = g_first_submit_us.load(std::memory_order_relaxed);
      const int64_t elapsed = now_us - first;
      if (first >= 0 && elapsed > 0) {
        metrics.overlap_permille->Set(active * 1000 / elapsed);
      }
      if (obs::Trace::Enabled()) {
        // The round's full lifetime (submit -> last task), started on the
        // submitting thread and completed here on a pool worker.
        obs::TraceEvent event;
        event.name = "round";
        event.cat = "engine";
        event.ts_us = rs->submit_us;
        event.dur_us = dur_us;
        event.round_id = rs->ticket;
        obs::Trace::Emit(event);
      }
    }
    std::lock_guard<std::mutex> lock(rs->mu);
    rs->done = true;
    rs->cv.notify_all();
  }
}

RoundEngine::RoundEngine(ThreadPool* pool) : pool_(pool) {
  ATOM_CHECK(pool_ != nullptr);
}

RoundEngine::~RoundEngine() {
  std::vector<std::shared_ptr<RoundState>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [ticket, rs] : rounds_) {
      pending.push_back(rs);
    }
    rounds_.clear();
  }
  for (auto& rs : pending) {
    std::unique_lock<std::mutex> lock(rs->mu);
    rs->cv.wait(lock, [&] { return rs->done; });
  }
}

uint64_t RoundEngine::Submit(EngineRound round) {
  ATOM_CHECK(round.topology != nullptr);
  auto rs = std::make_shared<RoundState>();
  rs->spec = std::move(round);
  EngineRound& spec = rs->spec;
  rs->layers = spec.topology->NumLayers();
  rs->width = spec.topology->Width();
  // A zero-layer/zero-width topology would leave tasks_remaining at 0 with
  // no hop ever scheduled, so Wait would block forever.
  ATOM_CHECK_MSG(rs->layers >= 1 && rs->width >= 1,
                 "topology must have at least one layer and one vertex");
  ATOM_CHECK_MSG(spec.groups.size() == rs->width,
                 "need one GroupRuntime per topology vertex");
  ATOM_CHECK_MSG(spec.entry.size() == rs->width,
                 "need one entry batch per topology vertex");
  rs->hops = std::vector<HopNode>(rs->layers * rs->width);
  rs->exits.resize(rs->width);
  size_t total_tasks = rs->layers * rs->width;
  if (spec.exit.has_value()) {
    rs->native_exit = true;
    if (spec.variant == Variant::kTrap) {
      ATOM_CHECK_MSG(spec.exit->trustees != nullptr,
                     "trap exit plan needs a trustee group");
      ATOM_CHECK_MSG(spec.exit->commitments.size() == rs->width,
                     "need one commitment set per entry group");
      rs->sorted.resize(rs->width);
      rs->reports.resize(rs->width);
      rs->gathered_inner.resize(rs->width);
      rs->checks_pending.store(rs->width, std::memory_order_relaxed);
      total_tasks += 2 * rs->width + 1;  // sorts + checks + finalize
    } else {
      rs->decoded.resize(rs->width);
      total_tasks += rs->width + 1;  // decodes + finalize
    }
    rs->sorts_pending.store(rs->width, std::memory_order_relaxed);
  }
  rs->tasks_remaining.store(total_tasks, std::memory_order_relaxed);

  // Layer 0 is fed directly by the entry batches.
  for (uint32_t g = 0; g < rs->width; g++) {
    HopNode& node = rs->hops[g];
    node.inbound.push_back(std::move(spec.entry[g]));
    node.pending.store(0, std::memory_order_relaxed);
  }
  spec.entry.clear();

  // Later layers wait on every predecessor — even one whose batch is empty
  // delivers (an empty sub-batch), so the count is the full in-degree.
  for (size_t layer = 1; layer < rs->layers; layer++) {
    for (uint32_t p = 0; p < rs->width; p++) {
      std::vector<uint32_t> neighbors = spec.topology->Neighbors(layer - 1, p);
      // No sinks before the exit layer: a vertex with no outbound edges
      // would not be an ancestor of any exit hop, so it could still be
      // running — and abort — after the exit stages read the abort flag.
      ATOM_CHECK_MSG(!neighbors.empty(),
                     "topology vertex with no outbound edges");
      for (uint32_t dst : neighbors) {
        ATOM_CHECK(dst < rs->width);
        rs->hops[layer * rs->width + dst].preds.push_back(p);
      }
    }
    for (uint32_t g = 0; g < rs->width; g++) {
      HopNode& node = rs->hops[layer * rs->width + g];
      ATOM_CHECK_MSG(!node.preds.empty(),
                     "topology vertex with no inbound edges");
      // Strictly increasing: a duplicate neighbor edge would make two
      // deliveries share one inbound slot and silently drop a sub-batch.
      ATOM_CHECK(std::adjacent_find(node.preds.begin(), node.preds.end(),
                                    [](uint32_t a, uint32_t b) {
                                      return a >= b;
                                    }) == node.preds.end());
      node.inbound.resize(node.preds.size());
      node.pending.store(node.preds.size(), std::memory_order_relaxed);
    }
  }

  for (const HopFault& fault : spec.faults) {
    ATOM_CHECK(fault.layer < rs->layers && fault.gid < rs->width);
    // First matching fault wins, like the old driver's first-match scan.
    const MaliciousAction*& slot =
        rs->hops[fault.layer * rs->width + fault.gid].fault;
    if (slot == nullptr) {
      slot = &fault.action;
    }
  }
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    rounds_[ticket] = rs;
  }
  rs->ticket = ticket;
  EngineMetrics& metrics = EngineMetrics::Get();
  const int64_t inflight =
      g_inflight_rounds.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics.inflight->Set(inflight);
  metrics.inflight_peak->UpdateMax(inflight);
  if (obs::TimingEnabled() || obs::Trace::Enabled()) {
    rs->submit_us = obs::Trace::NowUs();
    int64_t expected = -1;
    g_first_submit_us.compare_exchange_strong(expected, rs->submit_us,
                                              std::memory_order_relaxed);
  }
  for (uint32_t g = 0; g < rs->width; g++) {
    ScheduleHop(rs, 0, g);
  }
  return ticket;
}

void RoundEngine::ScheduleHop(const std::shared_ptr<RoundState>& rs,
                              size_t layer, uint32_t gid) {
  // All predecessors have published their slots by the time the hop is
  // ready (Submit fills layer 0 before scheduling; Deliver's acq_rel
  // countdown publishes the rest), so the batch size is known here.
  const HopNode& node = rs->hops[layer * rs->width + gid];
  size_t input_vecs = 0;
  for (const CiphertextBatch& b : node.inbound) {
    input_vecs += b.size();
  }
  pool_->Submit([this, rs, layer, gid] { ExecuteHop(rs, layer, gid); },
                HopWeight(layer, input_vecs));
}

void RoundEngine::ExecuteHop(const std::shared_ptr<RoundState>& rs,
                             size_t layer, uint32_t gid) {
  obs::TraceSpan span("hop", "engine", rs->ticket, "layer", layer, "gid",
                      gid);
  const int64_t t0 = obs::TimingEnabled() ? obs::Trace::NowUs() : -1;
  const EngineRound& spec = rs->spec;
  HopNode& node = rs->hops[layer * rs->width + gid];

  // Concatenate inbound sub-batches in ascending predecessor order — the
  // same order the barrier driver produced, so replays are deterministic.
  CiphertextBatch input;
  size_t total = 0;
  for (const CiphertextBatch& b : node.inbound) {
    total += b.size();
  }
  input.reserve(total);
  for (CiphertextBatch& b : node.inbound) {
    for (auto& vec : b) {
      input.push_back(std::move(vec));
    }
  }
  node.inbound.clear();
  node.inbound.shrink_to_fit();

  const bool last = (layer + 1 == rs->layers);
  std::vector<uint32_t> neighbors;
  if (!last) {
    neighbors = spec.topology->Neighbors(layer, gid);
  }
  // Default: empty outputs (aborted round, or nothing routed this way yet —
  // the barrier driver's `continue` for empty groups).
  std::vector<CiphertextBatch> out(last ? 1 : neighbors.size());

  if (!rs->aborted.load(std::memory_order_acquire) && !input.empty()) {
    std::vector<Point> next_pks;
    next_pks.reserve(neighbors.size());
    for (uint32_t n : neighbors) {
      next_pks.push_back(spec.groups[n]->pk());
    }
    // This hop's private DRBG: the round's root key, separated by hop
    // index (independent full-entropy streams, replayable from the spec).
    std::array<uint8_t, 32> key =
        DeriveSubKey(spec.seed, layer * rs->width + gid);
    Rng rng(BytesView(key.data(), key.size()));
    HopResult hop;
    try {
      hop = spec.groups[gid]->RunHop(input, next_pks, spec.variant, rng,
                                     spec.hop_workers, node.fault);
    } catch (const std::exception& e) {
      // A throwing hop (e.g. bad_alloc) must not escape into the pool's
      // worker loop: convert it into an abort of this round only.
      hop.aborted = true;
      hop.abort_reason = std::string("hop threw: ") + e.what();
    } catch (...) {
      hop.aborted = true;
      hop.abort_reason = "hop threw a non-standard exception";
    }
    if (hop.aborted) {
      AbortRound(rs, "group " + std::to_string(gid) + " layer " +
                         std::to_string(layer) + ": " + hop.abort_reason);
    } else {
      ATOM_CHECK(hop.batches.size() == out.size());
      out = std::move(hop.batches);
    }
  }

  if (last) {
    rs->exits[gid] = std::move(out[0]);  // per-gid slot: no lock needed
    if (rs->native_exit) {
      // The exit batch continues straight into this round's exit-stage
      // DAG; ExecuteExitSort consumes the slot.
      pool_->Submit([this, rs, gid] { ExecuteExitSort(rs, gid); },
                    ExitStageWeight(rs->layers, 0));
    }
  } else {
    for (size_t b = 0; b < neighbors.size(); b++) {
      Deliver(rs, layer + 1, neighbors[b], gid, std::move(out[b]));
    }
  }

  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.hops->Add(1);
  if (t0 >= 0) {
    metrics.hop_us->Observe(
        static_cast<uint64_t>(obs::Trace::NowUs() - t0));
  }
  FinishTask(rs);
}

void RoundEngine::ExecuteExitSort(const std::shared_ptr<RoundState>& rs,
                                  uint32_t gid) {
  obs::TraceSpan span("exit_sort", "engine", rs->ticket, "gid", gid);
  const ExitPlan& plan = *rs->spec.exit;
  if (!rs->aborted.load(std::memory_order_acquire)) {
    // Like a mixing hop, an exit task must not let an exception (e.g.
    // bad_alloc) escape into the pool's worker loop: convert it into an
    // abort of this round only.
    try {
      CiphertextBatch batch = std::move(rs->exits[gid]);
      if (rs->spec.variant == Variant::kTrap) {
        ExitSort sort = SortTrapExits(gid, batch, plan.layout, rs->width);
        if (!sort.ok) {
          AbortRound(rs, "exit batch not fully decrypted");
        } else {
          rs->sorted[gid] = std::move(sort);  // per-gid slot
        }
      } else {
        NizkExitDecode decode = DecodeNizkExits(batch, plan.layout);
        if (!decode.ok) {
          AbortRound(rs, std::move(decode.error));
        } else {
          rs->decoded[gid] = std::move(decode.plaintexts);
        }
      }
    } catch (const std::exception& e) {
      AbortRound(rs, std::string("exit sort threw: ") + e.what());
    } catch (...) {
      AbortRound(rs, "exit sort threw a non-standard exception");
    }
  }
  // Sort barrier: the §4.4 checks need every group's buckets (a trap exits
  // anywhere in the network but is checked by the group named inside it).
  if (rs->sorts_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (rs->spec.variant == Variant::kTrap) {
      for (uint32_t g = 0; g < rs->width; g++) {
        pool_->Submit([this, rs, g] { ExecuteExitCheck(rs, g); },
                      ExitStageWeight(rs->layers, 1));
      }
    } else {
      pool_->Submit([this, rs] { ExecuteExitFinalize(rs); },
                    ExitStageWeight(rs->layers, 2));
    }
  }
  FinishTask(rs);
}

void RoundEngine::ExecuteExitCheck(const std::shared_ptr<RoundState>& rs,
                                   uint32_t gid) {
  obs::TraceSpan span("exit_check", "engine", rs->ticket, "gid", gid);
  // All sorts finished before any check was scheduled, so the abort flag
  // is stable here and the buckets are fully published.
  if (!rs->aborted.load(std::memory_order_acquire)) {
    try {
      const ExitPlan& plan = *rs->spec.exit;
      std::vector<Bytes> traps, inner;
      GatherExitBuckets(rs->sorted, gid, &traps, &inner);
      rs->reports[gid] =
          CheckExitGroup(gid, traps, inner, plan.commitments[gid]);
      rs->gathered_inner[gid] = std::move(inner);  // per-gid slot
    } catch (const std::exception& e) {
      AbortRound(rs, std::string("exit check threw: ") + e.what());
    } catch (...) {
      AbortRound(rs, "exit check threw a non-standard exception");
    }
  }
  if (rs->checks_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    pool_->Submit([this, rs] { ExecuteExitFinalize(rs); },
                  ExitStageWeight(rs->layers, 2));
  }
  FinishTask(rs);
}

void RoundEngine::ExecuteExitFinalize(const std::shared_ptr<RoundState>& rs) {
  obs::TraceSpan span("exit_finalize", "engine", rs->ticket);
  RoundResult& out = rs->round;
  try {
    if (rs->aborted.load(std::memory_order_acquire)) {
      out.aborted = true;
      std::lock_guard<std::mutex> lock(rs->mu);
      out.abort_reason = rs->abort_reason;
    } else if (rs->spec.variant == Variant::kNizk) {
      for (uint32_t g = 0; g < rs->width; g++) {
        for (Bytes& p : rs->decoded[g]) {
          out.plaintexts.push_back(std::move(p));
        }
      }
    } else {
      for (const GroupReport& report : rs->reports) {
        out.traps_seen += report.num_traps;
        out.inner_seen += report.num_inner;
      }
      auto round_secret =
          rs->spec.exit->trustees->MaybeReleaseKey(rs->reports);
      if (!round_secret.has_value()) {
        out.aborted = true;
        out.abort_reason =
            "trustees refused to release the round key (trap check failed)";
      } else {
        // Decrypt the inner ciphertexts on the pool; slots keep the
        // gather order so the plaintext sequence matches the synchronous
        // path.
        std::vector<const Bytes*> flat;
        for (uint32_t g = 0; g < rs->width; g++) {
          for (const Bytes& ct : rs->gathered_inner[g]) {
            flat.push_back(&ct);
          }
        }
        std::vector<std::optional<Bytes>> decrypted(flat.size());
        ParallelFor(rs->spec.hop_workers, flat.size(), [&](size_t i) {
          decrypted[i] = KemDecrypt(*round_secret, BytesView(*flat[i]));
        });
        for (auto& msg : decrypted) {
          if (msg.has_value()) {
            out.plaintexts.push_back(std::move(*msg));
          }
        }
      }
    }
  } catch (const std::exception& e) {
    // An aborted round releases nothing — discard any partial output.
    out = RoundResult{};
    out.aborted = true;
    out.abort_reason = std::string("exit finalize threw: ") + e.what();
  } catch (...) {
    out = RoundResult{};
    out.aborted = true;
    out.abort_reason = "exit finalize threw a non-standard exception";
  }
  FinishTask(rs);
}

void RoundEngine::Deliver(const std::shared_ptr<RoundState>& rs, size_t layer,
                          uint32_t dst, uint32_t src, CiphertextBatch batch) {
  HopNode& node = rs->hops[layer * rs->width + dst];
  auto it = std::lower_bound(node.preds.begin(), node.preds.end(), src);
  ATOM_CHECK(it != node.preds.end() && *it == src);
  node.inbound[static_cast<size_t>(it - node.preds.begin())] =
      std::move(batch);
  if (node.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ScheduleHop(rs, layer, dst);
  }
}

EngineRoundResult RoundEngine::Wait(uint64_t ticket) {
  std::shared_ptr<RoundState> rs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rounds_.find(ticket);
    ATOM_CHECK_MSG(it != rounds_.end(), "unknown or already-waited ticket");
    rs = it->second;
    rounds_.erase(it);
  }
  std::unique_lock<std::mutex> lock(rs->mu);
  rs->cv.wait(lock, [&] { return rs->done; });

  EngineRoundResult result;
  if (rs->native_exit) {
    // The engine consumed the exit batches; the full round outcome
    // (including a trustee-refused abort) lives in `round`.
    result.round = std::move(rs->round);
    result.aborted = result.round.aborted;
    result.abort_reason = result.round.abort_reason;
    return result;
  }
  if (rs->aborted.load(std::memory_order_acquire)) {
    result.aborted = true;
    result.abort_reason = rs->abort_reason;
    return result;
  }
  result.exits = std::move(rs->exits);
  return result;
}

EngineRoundResult RoundEngine::RunToCompletion(EngineRound round) {
  return Wait(Submit(std::move(round)));
}

}  // namespace atom
