// Dependency-scheduled round execution (§4.7 throughput mode, executed for
// real instead of estimated).
//
// The old driver ran the permutation network layer by layer behind a global
// barrier: no group could start layer ℓ+1 until every group finished layer
// ℓ, and a new round could not enter the network until the previous one
// exited. The RoundEngine replaces the barrier with a DAG of per-group hop
// tasks on the shared ThreadPool:
//
//   * hop (round r, layer ℓ, group g) becomes runnable as soon as all of
//     its inbound sub-batches from layer ℓ-1 have arrived — groups in the
//     same layer never wait for each other;
//   * several rounds can be in flight at once, so a new batch enters the
//     network every layer-time instead of every round-time — the pipelined
//     deployment the paper describes but does not evaluate (§4.7), and the
//     executed counterpart of EstimatePipelined (src/sim/netsim.h);
//   * intra-hop crypto parallelism (GroupRuntime::RunHop's ParallelFor)
//     runs on the same pool, so per-ciphertext work and cross-group /
//     cross-layer pipelining compose instead of fighting for threads.
//
// A MaliciousAction that trips a hop marks only its own round aborted; the
// round's remaining hops drain as cheap no-ops (empty batches) and other
// in-flight rounds are untouched. Every hop draws its randomness from a
// private ChaCha20 DRBG key-separated from the round's 256-bit root key,
// so no Rng is shared across threads and a (spec, seed) pair replays
// deterministically.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/group_runtime.h"
#include "src/topology/permnet.h"
#include "src/util/parallel.h"

namespace atom {

// One malicious action pinned to a (layer, group) hop of one round.
struct HopFault {
  size_t layer = 0;
  uint32_t gid = 0;
  MaliciousAction action;
};

// Specification of one in-flight round: one batch traversing the whole
// permutation network. The engine only mixes; entry-phase verification and
// the exit phase (trap sorting, trustee reports, decryption) stay with the
// caller (Round).
struct EngineRound {
  const Topology* topology = nullptr;
  // One runtime per topology vertex; RunHop is const and thread-safe, so
  // the same GroupRuntime may appear in many in-flight rounds.
  std::vector<const GroupRuntime*> groups;
  Variant variant = Variant::kTrap;
  size_t hop_workers = 1;  // intra-hop ParallelFor width
  // Per-group entry batches, moved into the engine (no copy).
  std::vector<CiphertextBatch> entry;
  std::vector<HopFault> faults;
  // 256-bit root key for this round's mixing randomness (fill from the
  // driver's Rng). Every hop's private ChaCha20 DRBG is key-separated from
  // it by hop index, so streams are independent, unpredictable with the
  // full key entropy, and replayable from (spec, seed).
  std::array<uint8_t, 32> seed{};
};

struct EngineRoundResult {
  bool aborted = false;
  std::string abort_reason;  // "group G layer L: why"
  // Per exit-layer group, fully stripped ciphertexts (plaintext points in
  // .c). Size 0 when the round aborted — check `aborted` before using
  // (ExitPhase requires one batch per group and rejects the empty vector).
  std::vector<CiphertextBatch> exits;
};

class RoundEngine {
 public:
  // The engine schedules on `pool` and owns no threads itself.
  explicit RoundEngine(ThreadPool* pool);
  // Blocks until every submitted round has drained.
  ~RoundEngine();

  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  // Starts a round's layer-0 hops immediately and returns a ticket.
  // Multiple submitted rounds pipeline through the network concurrently.
  uint64_t Submit(EngineRound round);

  // Blocks until the round drains and returns its result. Each ticket can
  // be waited on once.
  EngineRoundResult Wait(uint64_t ticket);

  // Convenience: one round, drained to completion (the sequential driver).
  EngineRoundResult RunToCompletion(EngineRound round);

 private:
  struct HopNode;
  struct RoundState;

  void ScheduleHop(const std::shared_ptr<RoundState>& rs, size_t layer,
                   uint32_t gid);
  void ExecuteHop(const std::shared_ptr<RoundState>& rs, size_t layer,
                  uint32_t gid);
  void Deliver(const std::shared_ptr<RoundState>& rs, size_t layer,
               uint32_t dst, uint32_t src, CiphertextBatch batch);

  ThreadPool* pool_;
  std::mutex mu_;
  uint64_t next_ticket_ = 1;
  std::map<uint64_t, std::shared_ptr<RoundState>> rounds_;
};

}  // namespace atom

#endif  // SRC_CORE_ENGINE_H_
