// Dependency-scheduled round execution (§4.7 throughput mode, executed for
// real instead of estimated).
//
// The old driver ran the permutation network layer by layer behind a global
// barrier: no group could start layer ℓ+1 until every group finished layer
// ℓ, and a new round could not enter the network until the previous one
// exited. The RoundEngine replaces the barrier with a DAG of per-group hop
// tasks on the shared ThreadPool:
//
//   * hop (round r, layer ℓ, group g) becomes runnable as soon as all of
//     its inbound sub-batches from layer ℓ-1 have arrived — groups in the
//     same layer never wait for each other;
//   * several rounds can be in flight at once, so a new batch enters the
//     network every layer-time instead of every round-time — the pipelined
//     deployment the paper describes but does not evaluate (§4.7), and the
//     executed counterpart of EstimatePipelined (src/sim/netsim.h);
//   * intra-hop crypto parallelism (GroupRuntime::RunHop's ParallelFor)
//     runs on the same pool, so per-ciphertext work and cross-group /
//     cross-layer pipelining compose instead of fighting for threads;
//   * an EngineRound carrying an ExitPlan extends its DAG past the last
//     mixing layer with exit-stage tasks (sort per group, §4.4 checks per
//     group, one trustee/decryption finalize), so the exit phase of round
//     r overlaps the mixing of rounds r+1… instead of running serially on
//     the caller after the DAG drains.
//
// A MaliciousAction that trips a hop marks only its own round aborted; the
// round's remaining hops drain as cheap no-ops (empty batches) and other
// in-flight rounds are untouched. Every hop draws its randomness from a
// private ChaCha20 DRBG key-separated from the round's 256-bit root key,
// so no Rng is shared across threads and a (spec, seed) pair replays
// deterministically.
#ifndef SRC_CORE_ENGINE_H_
#define SRC_CORE_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/exit.h"
#include "src/core/group_runtime.h"
#include "src/topology/permnet.h"
#include "src/util/parallel.h"

namespace atom {

// One malicious action pinned to a (layer, group) hop of one round.
struct HopFault {
  size_t layer = 0;
  uint32_t gid = 0;
  MaliciousAction action;
};

// Engine-native exit phase (§4.4): when present on an EngineRound the
// engine appends exit-stage tasks to the hop DAG — one sort task per group
// as its exit hop drains, one check task per destination group behind a
// sort barrier (trap variant), and a finalize task running the trustee
// decision and inner-ciphertext decryption — so pipelined rounds complete
// fully inside the engine instead of leaving the exit as a serial tail on
// the caller. Round i's exit work overlaps round i+1's mixing on the same
// pool.
struct ExitPlan {
  MessageLayout layout;
  // Trap variant only: the trustee group (shared across engine rounds —
  // the all-clear decision is const and thread-safe) and THIS engine
  // round's per-entry-group trap commitments. Commitments are keyed to
  // the engine round, not accumulated across rounds, so one key epoch
  // serves a whole pipeline without cross-round contamination.
  const Trustees* trustees = nullptr;
  std::vector<std::vector<std::array<uint8_t, 32>>> commitments;
};

// Specification of one in-flight round: one batch traversing the whole
// permutation network. Entry-phase verification stays with the caller
// (Round's sharded intake); the exit phase runs inside the engine when an
// ExitPlan is attached, and stays with the caller otherwise.
struct EngineRound {
  const Topology* topology = nullptr;
  // One runtime per topology vertex; RunHop is const and thread-safe, so
  // the same GroupRuntime may appear in many in-flight rounds.
  std::vector<const GroupRuntime*> groups;
  Variant variant = Variant::kTrap;
  size_t hop_workers = 1;  // intra-hop ParallelFor width
  // Per-group entry batches, moved into the engine (no copy).
  std::vector<CiphertextBatch> entry;
  std::vector<HopFault> faults;
  // 256-bit root key for this round's mixing randomness (fill from the
  // driver's Rng). Every hop's private ChaCha20 DRBG is key-separated from
  // it by hop index, so streams are independent, unpredictable with the
  // full key entropy, and replayable from (spec, seed).
  std::array<uint8_t, 32> seed{};
  // When set, the engine runs the exit phase natively (see ExitPlan) and
  // the result arrives in EngineRoundResult::round instead of ::exits.
  std::optional<ExitPlan> exit;
  // Driver-side correlation tag, ignored by the engine. Round::
  // TakeEngineRound stamps the intake epoch it drained here so that after
  // an abort the driver can blame the batch that actually ran
  // (Round::BlameEntryGroup(gid, epoch)) even with later epochs taken.
  uint64_t intake_epoch = 0;
};

struct EngineRoundResult {
  bool aborted = false;
  std::string abort_reason;  // "group G layer L: why"
  // Without an ExitPlan: per exit-layer group, fully stripped ciphertexts
  // (plaintext points in .c). Size 0 when the round aborted — check
  // `aborted` before using (ExitPhase requires one batch per group and
  // rejects the empty vector).
  std::vector<CiphertextBatch> exits;
  // With an ExitPlan: the full round outcome (plaintexts, trap accounting,
  // abort state); `exits` stays empty because the engine consumed them.
  RoundResult round;
};

class RoundEngine {
 public:
  // The engine schedules on `pool` and owns no threads itself.
  explicit RoundEngine(ThreadPool* pool);
  // Blocks until every submitted round has drained.
  ~RoundEngine();

  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  // Starts a round's layer-0 hops immediately and returns a ticket.
  // Multiple submitted rounds pipeline through the network concurrently.
  uint64_t Submit(EngineRound round);

  // Blocks until the round drains and returns its result. Each ticket can
  // be waited on once.
  EngineRoundResult Wait(uint64_t ticket);

  // Convenience: one round, drained to completion (the sequential driver).
  EngineRoundResult RunToCompletion(EngineRound round);

 private:
  struct HopNode;
  struct RoundState;

  void ScheduleHop(const std::shared_ptr<RoundState>& rs, size_t layer,
                   uint32_t gid);
  void ExecuteHop(const std::shared_ptr<RoundState>& rs, size_t layer,
                  uint32_t gid);
  void Deliver(const std::shared_ptr<RoundState>& rs, size_t layer,
               uint32_t dst, uint32_t src, CiphertextBatch batch);
  // Exit-stage tasks (scheduled only when the spec carries an ExitPlan).
  void ExecuteExitSort(const std::shared_ptr<RoundState>& rs, uint32_t gid);
  void ExecuteExitCheck(const std::shared_ptr<RoundState>& rs, uint32_t gid);
  void ExecuteExitFinalize(const std::shared_ptr<RoundState>& rs);
  // Marks this round aborted (first reason wins, like a failed hop).
  static void AbortRound(const std::shared_ptr<RoundState>& rs,
                         std::string reason);
  // Every task calls this exactly once; the last one flips `done`.
  static void FinishTask(const std::shared_ptr<RoundState>& rs);

  ThreadPool* pool_;
  std::mutex mu_;
  uint64_t next_ticket_ = 1;
  std::map<uint64_t, std::shared_ptr<RoundState>> rounds_;
};

}  // namespace atom

#endif  // SRC_CORE_ENGINE_H_
