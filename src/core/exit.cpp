#include "src/core/exit.h"

#include <map>
#include <set>

#include "src/core/group_runtime.h"
#include "src/crypto/sha256.h"

namespace atom {

ExitSort SortTrapExits(uint32_t self_gid, const CiphertextBatch& batch,
                       const MessageLayout& layout, size_t num_groups) {
  const size_t G = num_groups;
  ExitSort sort;
  sort.traps_for.resize(G);
  sort.inner_for.resize(G);

  auto points = ExitPlaintexts(batch);
  if (!points.has_value()) {
    sort.ok = false;
    return sort;
  }
  for (const auto& vec : *points) {
    auto bytes = ReassembleFromPoints(vec, layout);
    if (!bytes.has_value()) {
      // An undecodable exit message counts as a failed check for the
      // group that holds it: report and abort via the trustees.
      sort.traps_for[self_gid].push_back(Bytes{0xff});  // matches nothing
      continue;
    }
    if (IsDummy(BytesView(*bytes))) {
      continue;  // butterfly padding, discard before the checks
    }
    auto trap = ParseTrap(BytesView(*bytes));
    if (trap.has_value()) {
      if (trap->gid < G) {
        sort.traps_for[trap->gid].push_back(*bytes);
      } else {
        sort.traps_for[self_gid].push_back(Bytes{0xff});
      }
      continue;
    }
    auto inner = ParseMessage(BytesView(*bytes));
    if (inner.has_value()) {
      // Universal-hash load balancing over groups.
      auto digest = Sha256::Hash(BytesView(*inner));
      uint32_t dst = static_cast<uint32_t>(digest[0] | (digest[1] << 8) |
                                           (digest[2] << 16)) %
                     static_cast<uint32_t>(G);
      sort.inner_for[dst].push_back(*inner);
    } else {
      sort.traps_for[self_gid].push_back(Bytes{0xff});
    }
  }
  return sort;
}

NizkExitDecode DecodeNizkExits(const CiphertextBatch& batch,
                               const MessageLayout& layout) {
  NizkExitDecode out;
  auto points = ExitPlaintexts(batch);
  if (!points.has_value()) {
    out.ok = false;
    out.error = "exit batch not fully decrypted";
    return out;
  }
  for (const auto& vec : *points) {
    auto bytes = ReassembleFromPoints(vec, layout);
    if (!bytes.has_value()) {
      out.ok = false;
      out.error = "undecodable exit plaintext";
      out.plaintexts.clear();
      return out;
    }
    if (IsDummy(BytesView(*bytes))) {
      continue;  // butterfly padding, discard
    }
    out.plaintexts.push_back(*bytes);
  }
  return out;
}

void GatherExitBuckets(std::span<ExitSort> sorted, uint32_t dst,
                       std::vector<Bytes>* traps, std::vector<Bytes>* inner) {
  for (ExitSort& sort : sorted) {
    for (Bytes& trap : sort.traps_for[dst]) {
      traps->push_back(std::move(trap));
    }
    for (Bytes& ct : sort.inner_for[dst]) {
      inner->push_back(std::move(ct));
    }
  }
}

GroupReport CheckExitGroup(
    uint32_t gid, std::span<const Bytes> traps, std::span<const Bytes> inner,
    std::span<const std::array<uint8_t, 32>> commitments) {
  GroupReport report;
  report.gid = gid;
  report.num_traps = traps.size();
  report.num_inner = inner.size();

  // Trap check: multiset of arriving trap commitments must equal the
  // registered multiset.
  std::multiset<std::array<uint8_t, 32>> expected(commitments.begin(),
                                                  commitments.end());
  bool traps_ok = true;
  for (const Bytes& trap_bytes : traps) {
    auto it = expected.find(CommitTrap(BytesView(trap_bytes)));
    if (it == expected.end()) {
      traps_ok = false;
      break;
    }
    expected.erase(it);
  }
  report.traps_ok = traps_ok && expected.empty();

  // Inner check: no duplicates among the ciphertexts this group received.
  std::set<Bytes> inner_set;
  bool inner_ok = true;
  for (const Bytes& ct : inner) {
    if (!inner_set.insert(ct).second) {
      inner_ok = false;
      break;
    }
  }
  report.inner_ok = inner_ok;
  return report;
}

}  // namespace atom
