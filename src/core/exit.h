// Exit-phase building blocks (§4.4), shared by the legacy synchronous
// Round::ExitPhase and the engine-native exit-layer tasks
// (src/core/engine.h).
//
// The exit phase splits into three stages that map one-to-one onto hop
// tasks in the engine's DAG:
//
//   1. Sort (per exit group, independent): decode the group's fully
//      stripped exit batch and route each plaintext — traps to the entry
//      group named inside them, inner ciphertexts load-balanced by
//      universal hash — into destination-indexed buckets.
//   2. Check (per destination group, after every sort): the multiset of
//      arriving trap commitments must equal the multiset registered at
//      submission time, and the inner ciphertexts must be duplicate-free.
//   3. Finalize (global): the trustees release the round key iff every
//      report is clean and the global trap/inner counts balance; only
//      then are the inner ciphertexts decrypted.
//
// Both executors call the same functions on the same inputs, which is what
// the exit-equivalence suite in tests/engine_test.cpp pins down.
#ifndef SRC_CORE_EXIT_H_
#define SRC_CORE_EXIT_H_

#include <array>
#include <span>
#include <string>
#include <vector>

#include "src/core/message.h"
#include "src/core/trustees.h"
#include "src/crypto/shuffle.h"

namespace atom {

// The caller-facing outcome of one full protocol round (intake → mixing →
// exit). Produced by RoundEngine::RunToCompletion when the EngineRound
// carries an ExitPlan, and by the legacy Round::ExitPhase.
struct RoundResult {
  bool aborted = false;
  std::string abort_reason;
  // Anonymized application plaintexts (padded length = params.message_len).
  std::vector<Bytes> plaintexts;
  // Trap-variant accounting (populated even when the trustees refuse the
  // key, so a disrupted round still reports what arrived).
  uint64_t traps_seen = 0;
  uint64_t inner_seen = 0;
};

// One exit group's locally sorted view of its own exit batch (stage 1).
struct ExitSort {
  bool ok = true;  // false: a point in the batch failed extraction
  // Destination-indexed buckets, each sized num_groups. A trap that names
  // an out-of-range group, an undecodable plaintext, or an unparseable
  // payload becomes a sentinel trap for the sorting group itself — it
  // matches no commitment, so the check fails and the round aborts.
  std::vector<std::vector<Bytes>> traps_for;
  std::vector<std::vector<Bytes>> inner_for;
};

// Trap variant stage 1: decode group `self_gid`'s exit batch (dummies
// discarded) and sort into per-destination buckets.
ExitSort SortTrapExits(uint32_t self_gid, const CiphertextBatch& batch,
                       const MessageLayout& layout, size_t num_groups);

// NIZK variant stage 1: decode one group's exit batch straight into
// application plaintexts (dummies discarded). !ok carries the abort reason.
struct NizkExitDecode {
  bool ok = true;
  std::string error;
  std::vector<Bytes> plaintexts;
};
NizkExitDecode DecodeNizkExits(const CiphertextBatch& batch,
                               const MessageLayout& layout);

// Flattens every source group's buckets for destination `dst` in
// ascending source order, moving the entries into `traps`/`inner`. Both
// executors route through this one function: the byte-identical plaintext
// order the equivalence suite pins depends on this gather order.
void GatherExitBuckets(std::span<ExitSort> sorted, uint32_t dst,
                       std::vector<Bytes>* traps, std::vector<Bytes>* inner);

// Trap variant stage 2: one destination group's §4.4 checks against the
// trap commitments registered for THIS engine round (per-engine-round
// commitment sets: a pipelined driver passes each round its own).
GroupReport CheckExitGroup(uint32_t gid, std::span<const Bytes> traps,
                           std::span<const Bytes> inner,
                           std::span<const std::array<uint8_t, 32>> commitments);

}  // namespace atom

#endif  // SRC_CORE_EXIT_H_
