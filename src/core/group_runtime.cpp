#include "src/core/group_runtime.h"

#include <chrono>

#include "src/util/parallel.h"

namespace atom {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Tampers one ciphertext component in place (the malicious transformation:
// replace the payload with a related one, which is exactly what the NIZK /
// trap machinery must detect).
void Maul(ElGamalCiphertext* ct) {
  ct->c = ct->c + Point::Generator();
}

}  // namespace

GroupRuntime::GroupRuntime(uint32_t gid, DkgResult dkg)
    : gid_(gid),
      dkg_(std::move(dkg)),
      pk_table_(std::make_shared<const FixedBaseTable>(dkg_.pub.group_pk)) {
  alive_.assign(dkg_.pub.params.k, true);
}

void GroupRuntime::MarkFailed(uint32_t server_index) {
  ATOM_CHECK(server_index >= 1 && server_index <= alive_.size());
  alive_[server_index - 1] = false;
}

size_t GroupRuntime::AliveCount() const {
  size_t n = 0;
  for (bool a : alive_) {
    n += a ? 1 : 0;
  }
  return n;
}

void GroupRuntime::Restore(const DkgServerKey& key) {
  ATOM_CHECK(key.index >= 1 && key.index <= alive_.size());
  // Only accept a key matching the DKG transcript.
  ATOM_CHECK(Point::BaseMul(key.share) == dkg_.pub.share_pks[key.index - 1]);
  dkg_.keys[key.index - 1] = key;
  alive_[key.index - 1] = true;
}

HopResult GroupRuntime::RunHop(const CiphertextBatch& input,
                               std::span<const Point> next_pks,
                               Variant variant, Rng& rng, size_t workers,
                               const MaliciousAction* evil) const {
  HopResult result;
  result.stats.messages = input.size();

  const size_t threshold = dkg_.pub.params.threshold;
  std::vector<uint32_t> subset;
  for (uint32_t i = 1; i <= alive_.size() && subset.size() < threshold; i++) {
    if (alive_[i - 1]) {
      subset.push_back(i);
    }
  }
  if (subset.size() < threshold) {
    result.aborted = true;
    result.abort_reason = "too few alive servers in group";
    return result;
  }
  result.stats.participants = subset.size();

  auto evil_here = [&](MaliciousAction::Kind kind, uint32_t server) {
    return evil != nullptr && evil->kind == kind &&
           evil->server_index == server;
  };

  // ---- Phase 1: shuffle chain (Algorithm 1/2, step 1).
  CiphertextBatch batch = input;
  for (uint32_t s : subset) {
    if (variant == Variant::kNizk) {
      auto t0 = Clock::now();
      ShuffleResult shuffled = ShuffleAndProve(pk_table(), batch, rng, workers);
      result.stats.shuffle_seconds += SecondsSince(t0);

      if (evil_here(MaliciousAction::Kind::kTamperDuringShuffle, s)) {
        Maul(&shuffled.output[evil->target_message % shuffled.output.size()][0]);
      }
      if (evil_here(MaliciousAction::Kind::kDuplicateDuringShuffle, s)) {
        size_t t = evil->target_message % shuffled.output.size();
        shuffled.output[t] = shuffled.output[(t + 1) % shuffled.output.size()];
      }

      auto t1 = Clock::now();
      bool ok = VerifyShuffle(pk(), batch, shuffled.output, shuffled.proof,
                              workers);
      result.stats.verify_seconds += SecondsSince(t1);
      if (!ok) {
        result.aborted = true;
        result.abort_reason = "shuffle proof rejected (server " +
                              std::to_string(s) + ")";
        return result;
      }
      batch = std::move(shuffled.output);
    } else {
      auto t0 = Clock::now();
      batch = ShuffleBatch(pk_table(), batch, rng, nullptr, nullptr, workers);
      result.stats.shuffle_seconds += SecondsSince(t0);
      if (evil_here(MaliciousAction::Kind::kTamperDuringShuffle, s)) {
        Maul(&batch[evil->target_message % batch.size()][0]);
      }
      if (evil_here(MaliciousAction::Kind::kDuplicateDuringShuffle, s)) {
        size_t t = evil->target_message % batch.size();
        batch[t] = batch[(t + 1) % batch.size()];
      }
    }
  }

  // ---- Phase 2: divide into β contiguous sub-batches.
  const size_t beta = next_pks.empty() ? 1 : next_pks.size();
  std::vector<CiphertextBatch> batches(beta);
  {
    size_t base = batch.size() / beta, extra = batch.size() % beta;
    size_t off = 0;
    for (size_t b = 0; b < beta; b++) {
      size_t take = base + (b < extra ? 1 : 0);
      batches[b].assign(batch.begin() + static_cast<ptrdiff_t>(off),
                        batch.begin() + static_cast<ptrdiff_t>(off + take));
      off += take;
    }
  }

  // ---- Phase 3: decrypt-and-reencrypt chain (step 3).
  // Each neighbour key is the rewrap base for its whole sub-batch on every
  // participating server, so precompute one table per neighbour when the
  // reuse count amortizes the build (~16 multiplications; see shuffle.cpp).
  const size_t components = input.empty() ? 0 : input[0].size();
  std::vector<std::unique_ptr<FixedBaseTable>> next_tables(next_pks.size());
  for (size_t b = 0; b < next_pks.size(); b++) {
    if (batches[b].size() * components * subset.size() >= 16) {
      next_tables[b] = std::make_unique<FixedBaseTable>(next_pks[b]);
    }
  }
  for (size_t si = 0; si < subset.size(); si++) {
    uint32_t s = subset[si];
    Scalar weighted = WeightedShare(dkg_.keys[s - 1], subset);
    Point weighted_pub = WeightedSharePublic(dkg_.pub, s, subset);
    bool last_server = (si + 1 == subset.size());

    for (size_t b = 0; b < beta; b++) {
      const Point* next = next_pks.empty() ? nullptr : &next_pks[b];
      const FixedBaseTable* next_table =
          next_pks.empty() ? nullptr : next_tables[b].get();
      CiphertextBatch& sub = batches[b];

      // Pre-draw randomness serially, then reencrypt in parallel.
      auto t0 = Clock::now();
      std::vector<std::vector<Scalar>> rewrap(sub.size());
      std::vector<std::vector<Scalar>> draws(sub.size());
      for (size_t m = 0; m < sub.size(); m++) {
        draws[m].resize(sub[m].size());
        for (size_t c = 0; c < sub[m].size(); c++) {
          draws[m][c] = Scalar::Random(rng);
        }
      }
      CiphertextBatch out(sub.size());
      ParallelFor(workers, sub.size(), [&](size_t m) {
        out[m].resize(sub[m].size());
        rewrap[m].resize(sub[m].size());
        for (size_t c = 0; c < sub[m].size(); c++) {
          // Deterministic ReEnc with pre-drawn randomness: inline the
          // Appendix-A operation so the parallel path has no shared Rng.
          ElGamalCiphertext cur = sub[m][c];
          if (cur.YIsNull()) {
            cur.y = cur.r;
            cur.r = Point::Infinity();
          }
          cur.c = cur.c - cur.y.Mul(weighted);
          if (next != nullptr) {
            cur.r = cur.r + Point::BaseMul(draws[m][c]);
            cur.c = cur.c + (next_table != nullptr
                                 ? next_table->Mul(draws[m][c])
                                 : next->Mul(draws[m][c]));
            rewrap[m][c] = draws[m][c];
          } else {
            rewrap[m][c] = Scalar::Zero();
          }
          out[m][c] = cur;
        }
      });
      result.stats.reenc_seconds += SecondsSince(t0);

      if (evil_here(MaliciousAction::Kind::kTamperDuringReEnc, s) && b == 0) {
        Maul(&out[evil->target_message % out.size()][0]);
      }

      if (variant == Variant::kNizk) {
        // Prove and verify every component's reencryption.
        auto t2 = Clock::now();
        bool ok = true;
        for (size_t m = 0; m < sub.size() && ok; m++) {
          for (size_t c = 0; c < sub[m].size() && ok; c++) {
            ReEncProof proof =
                MakeReEncProof(weighted, weighted_pub, next, sub[m][c],
                               out[m][c], rewrap[m][c], rng);
            ok = VerifyReEncProof(weighted_pub, next, sub[m][c], out[m][c],
                                  proof);
          }
        }
        result.stats.verify_seconds += SecondsSince(t2);
        if (!ok) {
          result.aborted = true;
          result.abort_reason = "reencryption proof rejected (server " +
                                std::to_string(s) + ")";
          return result;
        }
      }

      if (last_server) {
        for (auto& vec : out) {
          for (auto& ct : vec) {
            ct = ElGamalFinalizeHop(ct);
          }
        }
      }
      sub = std::move(out);
    }
  }

  result.batches = std::move(batches);
  return result;
}

std::optional<std::vector<std::vector<Point>>> ExitPlaintexts(
    const CiphertextBatch& exit_batch) {
  std::vector<std::vector<Point>> out;
  out.reserve(exit_batch.size());
  for (const auto& vec : exit_batch) {
    std::vector<Point> points;
    points.reserve(vec.size());
    for (const auto& ct : vec) {
      auto m = ElGamalDecrypt(Scalar::Zero(), ct);
      if (!m.has_value()) {
        return std::nullopt;
      }
      points.push_back(*m);
    }
    out.push_back(std::move(points));
  }
  return out;
}

}  // namespace atom
