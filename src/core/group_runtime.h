// The anytrust-group protocol: Algorithm 1 (plain, trap variant) and
// Algorithm 2 (with NIZKs) from §4.2-§4.3, with threshold (many-trust)
// participation from §4.5.
//
// A group hop takes a batch of ciphertext vectors encrypted under this
// group's key (Y = ⊥) and produces β batches reencrypted toward the β
// neighbour groups (or decrypted plaintext points at the exit layer):
//
//   1. Shuffle: each participating server in order rerandomizes and
//      permutes the whole batch (with a ShufProof in NIZK mode, verified by
//      every other server — modelled by verifying once, since one honest
//      verifier suffices to abort).
//   2. Divide: the last server splits the batch into β contiguous
//      sub-batches.
//   3. Decrypt-and-reencrypt: each participating server in order strips its
//      (Lagrange-weighted) layer and rewraps sub-batch i toward neighbour
//      group i (ReEncProof in NIZK mode).
//
// Fault injection: a MaliciousAction lets tests and benches make one server
// misbehave (tamper, drop+replace, duplicate) at a chosen stage, to verify
// that the NIZK variant aborts and the trap variant detects at exit.
#ifndef SRC_CORE_GROUP_RUNTIME_H_
#define SRC_CORE_GROUP_RUNTIME_H_

#include <memory>
#include <optional>
#include <string>

#include "src/core/params.h"
#include "src/crypto/dkg.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/sigma.h"
#include "src/crypto/threshold.h"

namespace atom {

struct MaliciousAction {
  enum class Kind {
    kNone,
    kTamperDuringShuffle,   // replace one output ciphertext after shuffling
    kTamperDuringReEnc,     // maul one ciphertext during reencryption
    kDuplicateDuringShuffle,  // duplicate one message over another
  };
  Kind kind = Kind::kNone;
  uint32_t server_index = 0;  // 1-based index of the misbehaving server
  size_t target_message = 0;  // which message to hit
};

// Timing breakdown of one hop (for the evaluation harness).
struct HopStats {
  double shuffle_seconds = 0;  // total across servers, incl. proof generation
  double reenc_seconds = 0;
  double verify_seconds = 0;  // NIZK verification work (one honest verifier)
  size_t messages = 0;
  size_t participants = 0;
};

struct HopResult {
  bool aborted = false;
  std::string abort_reason;
  // batches[i] goes to neighbour i; at the exit layer there is exactly one
  // batch whose ciphertexts are fully stripped (plaintext in .c).
  std::vector<CiphertextBatch> batches;
  HopStats stats;
};

// One group's runtime state: its id, DKG output, and all member keys (the
// in-process driver holds every server's key; a real deployment would hold
// only its own).
class GroupRuntime {
 public:
  GroupRuntime(uint32_t gid, DkgResult dkg);

  uint32_t gid() const { return gid_; }
  const Point& pk() const { return dkg_.pub.group_pk; }
  // Precomputed table for pk(), built once at construction and reused by
  // every shuffle/rerandomization this group performs (and by the engine
  // when it encrypts dummy padding under this group's key).
  const FixedBaseTable& pk_table() const { return *pk_table_; }
  const DkgResult& dkg() const { return dkg_; }

  // Marks a server (1-based) as failed; it will not participate. Fails the
  // group if fewer than Threshold() servers remain alive.
  void MarkFailed(uint32_t server_index);
  size_t AliveCount() const;

  // Restores a failed server with a (possibly buddy-recovered) key.
  void Restore(const DkgServerKey& key);

  // Runs one hop. `next_pks` holds the β neighbour group keys; empty means
  // exit layer (final decryption). `workers` bounds intra-server
  // parallelism. `evil` optionally injects one malicious action.
  HopResult RunHop(const CiphertextBatch& input,
                   std::span<const Point> next_pks, Variant variant, Rng& rng,
                   size_t workers = 1,
                   const MaliciousAction* evil = nullptr) const;

 private:
  uint32_t gid_;
  DkgResult dkg_;
  // shared_ptr keeps GroupRuntime copyable; the table is immutable.
  std::shared_ptr<const FixedBaseTable> pk_table_;
  std::vector<bool> alive_;
};

// Extracts the plaintext points from an exit batch (all layers stripped).
std::optional<std::vector<std::vector<Point>>> ExitPlaintexts(
    const CiphertextBatch& exit_batch);

}  // namespace atom

#endif  // SRC_CORE_GROUP_RUNTIME_H_
