#include "src/core/message.h"

#include "src/crypto/keccak.h"
#include "src/crypto/kem.h"
#include "src/util/serde.h"

namespace atom {

MessageLayout LayoutFor(Variant variant, size_t message_len) {
  MessageLayout layout;
  layout.plaintext_len = message_len;
  if (variant == Variant::kNizk) {
    layout.padded_len = message_len;
  } else {
    // marker + KEM(message): encap point + message + AEAD tag.
    layout.padded_len = 1 + kKemOverhead + message_len;
  }
  layout.num_points =
      (layout.padded_len + kEmbedCapacity - 1) / kEmbedCapacity;
  return layout;
}

std::vector<Point> FragmentToPoints(BytesView data,
                                    const MessageLayout& layout) {
  ATOM_CHECK(data.size() == layout.padded_len);
  std::vector<Point> points;
  points.reserve(layout.num_points);
  for (size_t off = 0; off < data.size(); off += kEmbedCapacity) {
    size_t take = std::min(kEmbedCapacity, data.size() - off);
    auto p = EmbedMessage(data.subspan(off, take));
    ATOM_CHECK(p.has_value());
    points.push_back(*p);
  }
  ATOM_CHECK(points.size() == layout.num_points);
  return points;
}

std::optional<Bytes> ReassembleFromPoints(std::span<const Point> points,
                                          const MessageLayout& layout) {
  if (points.size() != layout.num_points) {
    return std::nullopt;
  }
  Bytes out;
  out.reserve(layout.padded_len);
  for (const Point& p : points) {
    auto chunk = ExtractMessage(p);
    if (!chunk.has_value()) {
      return std::nullopt;
    }
    out.insert(out.end(), chunk->begin(), chunk->end());
  }
  if (out.size() != layout.padded_len) {
    return std::nullopt;
  }
  return out;
}

Bytes PadTo(BytesView msg, size_t len) {
  ATOM_CHECK(msg.size() <= len);
  Bytes out(msg.begin(), msg.end());
  out.resize(len, 0);
  return out;
}

Bytes MakeTrapPlaintext(uint32_t gid, BytesView nonce,
                        const MessageLayout& layout) {
  ATOM_CHECK(nonce.size() == kTrapNonceLen);
  ByteWriter w;
  w.U8(kMarkerTrap);
  w.U32(gid);
  w.Raw(nonce);
  return PadTo(BytesView(w.bytes()), layout.padded_len);
}

std::optional<TrapContent> ParseTrap(BytesView exit_plaintext) {
  ByteReader r(exit_plaintext);
  auto marker = r.U8();
  if (!marker || *marker != kMarkerTrap) {
    return std::nullopt;
  }
  auto gid = r.U32();
  auto nonce = r.Raw(kTrapNonceLen);
  if (!gid || !nonce) {
    return std::nullopt;
  }
  return TrapContent{*gid, *nonce};
}

Bytes MakeMessagePlaintext(BytesView inner_ciphertext,
                           const MessageLayout& layout) {
  ByteWriter w;
  w.U8(kMarkerMessage);
  w.Raw(inner_ciphertext);
  ATOM_CHECK(w.bytes().size() == layout.padded_len);
  return w.Take();
}

std::optional<Bytes> ParseMessage(BytesView exit_plaintext) {
  if (exit_plaintext.empty() || exit_plaintext[0] != kMarkerMessage) {
    return std::nullopt;
  }
  return Bytes(exit_plaintext.begin() + 1, exit_plaintext.end());
}

Bytes MakeDummyPlaintext(const MessageLayout& layout, Rng& rng) {
  ATOM_CHECK(layout.padded_len >= sizeof(kDummyMagic));
  Bytes out = rng.NextBytes(layout.padded_len);
  std::copy(std::begin(kDummyMagic), std::end(kDummyMagic), out.begin());
  return out;
}

bool IsDummy(BytesView exit_plaintext) {
  if (exit_plaintext.size() < sizeof(kDummyMagic)) {
    return false;
  }
  return std::equal(std::begin(kDummyMagic), std::end(kDummyMagic),
                    exit_plaintext.begin());
}

std::array<uint8_t, 32> CommitTrap(BytesView trap_plaintext) {
  Bytes domain = Concat({BytesView(ToBytes("atom/trap-commit/v1")),
                         trap_plaintext});
  return Sha3_256(BytesView(domain));
}

}  // namespace atom
