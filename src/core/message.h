// Wire formats for Atom messages (§4.4, §5).
//
// Every submission is a fixed-size byte string fragmented into curve points
// (kEmbedCapacity bytes per point) and encrypted component-wise. In the trap
// variant each user submits TWO equal-length ciphertext vectors in random
// order — the real message (an IND-CCA2 "inner ciphertext" under the
// trustees' key, tagged 'M') and a trap (entry group id + nonce, tagged 'T')
// — plus a SHA3-256 commitment to the trap plaintext. Equal length is what
// makes traps indistinguishable from real messages in transit.
#ifndef SRC_CORE_MESSAGE_H_
#define SRC_CORE_MESSAGE_H_

#include <optional>

#include "src/core/params.h"
#include "src/crypto/p256.h"
#include "src/util/bytes.h"

namespace atom {

// Payload type markers (first byte of every exit plaintext).
inline constexpr uint8_t kMarkerMessage = 'M';
inline constexpr uint8_t kMarkerTrap = 'T';
// Dummy padding (§3): the iterated-butterfly network only yields a
// near-uniform permutation when a constant fraction of dummy messages is
// mixed in; dummies are discarded at the exit. Identified by a 16-byte
// magic prefix rather than a single marker so that raw NIZK-variant user
// plaintexts cannot collide by accident (a user deliberately copying the
// magic only discards their own message).
inline constexpr uint8_t kDummyMagic[16] = {'A', 't', 'o', 'm', '/', 'd',
                                            'u', 'm', 'm', 'y', '/', 'v',
                                            '1', 0x00, 0xd5, 0x3e};

inline constexpr size_t kTrapNonceLen = 16;

// Derived sizes for one protocol configuration.
struct MessageLayout {
  size_t plaintext_len = 0;  // application message bytes
  size_t padded_len = 0;     // bytes carried through the mixnet per message
  size_t num_points = 0;     // curve points per message (vector length L)
};

// Computes the layout: the NIZK variant carries the padded plaintext
// directly; the trap variant carries marker + KEM ciphertext (and traps are
// padded to the same length).
MessageLayout LayoutFor(Variant variant, size_t message_len);

// Splits `data` (exactly layout.padded_len bytes) into layout.num_points
// embedded points. Aborts on size mismatch (caller pads first).
std::vector<Point> FragmentToPoints(BytesView data,
                                    const MessageLayout& layout);

// Recovers the byte string from an exit point vector; nullopt if any point
// fails extraction or sizes disagree.
std::optional<Bytes> ReassembleFromPoints(std::span<const Point> points,
                                          const MessageLayout& layout);

// Pads `msg` with zeros up to `len`; aborts if msg is longer.
Bytes PadTo(BytesView msg, size_t len);

// Builds the trap plaintext ['T' | gid | nonce | zero padding].
Bytes MakeTrapPlaintext(uint32_t gid, BytesView nonce,
                        const MessageLayout& layout);

struct TrapContent {
  uint32_t gid = 0;
  Bytes nonce;
};

// Parses an exit plaintext as a trap; nullopt if not marked 'T'.
std::optional<TrapContent> ParseTrap(BytesView exit_plaintext);

// Builds the real-message plaintext ['M' | inner ciphertext].
Bytes MakeMessagePlaintext(BytesView inner_ciphertext,
                           const MessageLayout& layout);

// Parses an exit plaintext as a real message, returning the inner
// ciphertext; nullopt if not marked 'M'.
std::optional<Bytes> ParseMessage(BytesView exit_plaintext);

// Commitment to a trap plaintext (§4.4 uses SHA-3 on the high-entropy trap).
std::array<uint8_t, 32> CommitTrap(BytesView trap_plaintext);

// Builds a dummy plaintext ['D' | random filler] of the layout's padded
// length (random filler so dummies are not linkable to each other even
// after decryption).
Bytes MakeDummyPlaintext(const MessageLayout& layout, Rng& rng);

// True when an exit plaintext is dummy padding.
bool IsDummy(BytesView exit_plaintext);

}  // namespace atom

#endif  // SRC_CORE_MESSAGE_H_
