#include "src/core/node.h"

#include "src/crypto/threshold.h"

namespace atom {
namespace {

// Splits a batch into β contiguous sub-batches (β = 1 at the exit layer).
std::vector<CiphertextBatch> Divide(const CiphertextBatch& batch,
                                    size_t beta) {
  std::vector<CiphertextBatch> subs(beta);
  size_t base = batch.size() / beta, extra = batch.size() % beta;
  size_t off = 0;
  for (size_t b = 0; b < beta; b++) {
    size_t take = base + (b < extra ? 1 : 0);
    subs[b].assign(batch.begin() + static_cast<ptrdiff_t>(off),
                   batch.begin() + static_cast<ptrdiff_t>(off + take));
    off += take;
  }
  return subs;
}

NodeMsg AbortMsg(uint32_t gid, std::string reason) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kAbort;
  msg.gid = gid;
  msg.abort_reason = std::move(reason);
  return msg;
}

}  // namespace

AtomNode::AtomNode(uint32_t server_id, Variant variant)
    : server_id_(server_id), variant_(variant) {}

void AtomNode::JoinGroup(uint32_t gid, NodeGroupKeys keys) {
  ATOM_CHECK(keys.subset.size() == keys.chain_servers.size());
  groups_[gid] = std::move(keys);
}

std::vector<Envelope> AtomNode::Handle(const NodeMsg& msg, Rng& rng) {
  auto it = groups_.find(msg.gid);
  ATOM_CHECK_MSG(it != groups_.end(), "message for a group I am not in");
  const NodeGroupKeys& keys = it->second;
  ATOM_CHECK(msg.chain_pos < keys.chain_servers.size());
  ATOM_CHECK_MSG(keys.chain_servers[msg.chain_pos] == server_id_,
                 "message delivered to the wrong chain position");

  switch (msg.type) {
    case NodeMsg::Type::kShuffleStep:
      return HandleShuffle(msg, keys, rng);
    case NodeMsg::Type::kReEncStep:
      return HandleReEnc(msg, keys, rng);
    default:
      ATOM_CHECK_MSG(false, "driver-only message type sent to a node");
      return {};
  }
}

std::vector<Envelope> AtomNode::HandleShuffle(const NodeMsg& msg,
                                              const NodeGroupKeys& keys,
                                              Rng& rng) {
  const Point& group_pk = keys.pub.group_pk;

  // Verify the previous server's shuffle before building on it.
  if (variant_ == Variant::kNizk && msg.shuffle_proof.has_value()) {
    if (!VerifyShuffle(group_pk, msg.prev_batch, msg.batch,
                       *msg.shuffle_proof)) {
      return {Envelope{server_id_,
                       AbortMsg(msg.gid, "shuffle proof rejected at pos " +
                                             std::to_string(msg.chain_pos))}};
    }
  }

  NodeMsg out;
  out.gid = msg.gid;
  out.next_pks = msg.next_pks;
  if (variant_ == Variant::kNizk) {
    ShuffleResult result = ShuffleAndProve(group_pk, msg.batch, rng);
    out.batch = std::move(result.output);
    out.shuffle_proof = std::move(result.proof);
    out.prev_batch = msg.batch;
  } else {
    out.batch = ShuffleBatch(group_pk, msg.batch, rng);
  }

  const bool last = (msg.chain_pos + 1 == keys.chain_servers.size());
  if (!last) {
    out.type = NodeMsg::Type::kShuffleStep;
    out.chain_pos = msg.chain_pos + 1;
    return {Envelope{keys.chain_servers[out.chain_pos], std::move(out)}};
  }

  // Last shuffler divides and hands the sub-batches to the first server of
  // the reencryption chain; the shuffle proof rides along for them to check.
  size_t beta = msg.next_pks.empty() ? 1 : msg.next_pks.size();
  NodeMsg reenc;
  reenc.type = NodeMsg::Type::kReEncStep;
  reenc.gid = msg.gid;
  reenc.chain_pos = 0;
  reenc.next_pks = msg.next_pks;
  reenc.subs = Divide(out.batch, beta);
  reenc.prev_batch = std::move(out.prev_batch);
  reenc.batch = std::move(out.batch);
  reenc.shuffle_proof = std::move(out.shuffle_proof);
  reenc.prev_pos = msg.chain_pos;
  return {Envelope{keys.chain_servers[0], std::move(reenc)}};
}

std::vector<Envelope> AtomNode::HandleReEnc(const NodeMsg& msg,
                                            const NodeGroupKeys& keys,
                                            Rng& rng) {
  // Check the final shuffle proof (arrives with the first reenc step).
  if (variant_ == Variant::kNizk && msg.shuffle_proof.has_value()) {
    if (!VerifyShuffle(keys.pub.group_pk, msg.prev_batch, msg.batch,
                       *msg.shuffle_proof)) {
      return {Envelope{server_id_,
                       AbortMsg(msg.gid, "final shuffle proof rejected")}};
    }
  }
  // Check the previous server's reencryption proofs.
  if (variant_ == Variant::kNizk && !msg.reenc_proofs.empty()) {
    Point prev_pub = WeightedSharePublic(
        keys.pub, keys.subset[msg.prev_pos], keys.subset);
    size_t proof_idx = 0;
    for (size_t b = 0; b < msg.subs.size(); b++) {
      const Point* next =
          msg.next_pks.empty() ? nullptr : &msg.next_pks[b];
      for (size_t m = 0; m < msg.subs[b].size(); m++) {
        for (size_t c = 0; c < msg.subs[b][m].size(); c++) {
          ATOM_CHECK(proof_idx < msg.reenc_proofs.size());
          if (!VerifyReEncProof(prev_pub, next, msg.prev_subs[b][m][c],
                                msg.subs[b][m][c],
                                msg.reenc_proofs[proof_idx++])) {
            return {Envelope{
                server_id_,
                AbortMsg(msg.gid, "reencryption proof rejected at pos " +
                                      std::to_string(msg.chain_pos))}};
          }
        }
      }
    }
  }

  Scalar weighted = WeightedShare(keys.key, keys.subset);
  Point weighted_pub =
      WeightedSharePublic(keys.pub, keys.key.index, keys.subset);
  const bool last = (msg.chain_pos + 1 == keys.chain_servers.size());

  NodeMsg out;
  out.gid = msg.gid;
  out.next_pks = msg.next_pks;
  out.subs.resize(msg.subs.size());
  for (size_t b = 0; b < msg.subs.size(); b++) {
    const Point* next = msg.next_pks.empty() ? nullptr : &msg.next_pks[b];
    out.subs[b].resize(msg.subs[b].size());
    for (size_t m = 0; m < msg.subs[b].size(); m++) {
      out.subs[b][m].resize(msg.subs[b][m].size());
      for (size_t c = 0; c < msg.subs[b][m].size(); c++) {
        Scalar rewrap;
        ElGamalCiphertext next_ct =
            ElGamalReEnc(weighted, next, msg.subs[b][m][c], rng, &rewrap);
        if (variant_ == Variant::kNizk) {
          out.reenc_proofs.push_back(
              MakeReEncProof(weighted, weighted_pub, next,
                             msg.subs[b][m][c], next_ct, rewrap, rng));
        }
        if (last) {
          next_ct = ElGamalFinalizeHop(next_ct);
        }
        out.subs[b][m][c] = next_ct;
      }
    }
  }

  if (!last) {
    out.type = NodeMsg::Type::kReEncStep;
    out.chain_pos = msg.chain_pos + 1;
    out.prev_subs = msg.subs;
    out.prev_pos = msg.chain_pos;
    return {Envelope{keys.chain_servers[out.chain_pos], std::move(out)}};
  }
  // Note: the last server's own proofs would be verified by the receiving
  // group's first server in a full deployment; the in-process drivers
  // re-verify at the exit instead.
  out.type = NodeMsg::Type::kGroupOutput;
  out.chain_pos = msg.chain_pos;
  return {Envelope{server_id_, std::move(out)}};
}

void LocalBus::RegisterNode(AtomNode* node) {
  ATOM_CHECK(node != nullptr);
  ATOM_CHECK(nodes_.emplace(node->server_id(), node).second);
}

void LocalBus::Send(Envelope envelope) {
  queue_.push_back(std::move(envelope));
}

bool LocalBus::Run(Rng& rng) {
  while (!queue_.empty()) {
    Envelope env = std::move(queue_.front());
    queue_.pop_front();
    if (env.msg.type == NodeMsg::Type::kGroupOutput) {
      outputs_.push_back(std::move(env.msg));
      continue;
    }
    if (env.msg.type == NodeMsg::Type::kAbort) {
      aborts_.push_back(std::move(env.msg));
      return false;
    }
    auto it = nodes_.find(env.to_server);
    ATOM_CHECK_MSG(it != nodes_.end(), "envelope for unregistered server");
    for (Envelope& next : it->second->Handle(env.msg, rng)) {
      queue_.push_back(std::move(next));
    }
  }
  return aborts_.empty();
}

void LocalBus::ClearOutputs() { outputs_.clear(); }

NodeGroupKeys MakeNodeGroupKeys(const DkgResult& dkg,
                                std::span<const uint32_t> chain_servers,
                                uint32_t position) {
  ATOM_CHECK(chain_servers.size() <= dkg.keys.size());
  ATOM_CHECK(position < chain_servers.size());
  NodeGroupKeys keys;
  keys.pub = dkg.pub;
  keys.key = dkg.keys[position];  // chain order == DKG participant order
  keys.subset.resize(chain_servers.size());
  for (size_t i = 0; i < chain_servers.size(); i++) {
    keys.subset[i] = static_cast<uint32_t>(i + 1);
  }
  keys.chain_servers.assign(chain_servers.begin(), chain_servers.end());
  return keys;
}

}  // namespace atom
