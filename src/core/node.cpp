#include "src/core/node.h"

#include <exception>

#include "src/crypto/threshold.h"
#include "src/util/parallel.h"

namespace atom {
namespace {

// Splits a batch into β contiguous sub-batches (β = 1 at the exit layer).
std::vector<CiphertextBatch> Divide(const CiphertextBatch& batch,
                                    size_t beta) {
  std::vector<CiphertextBatch> subs(beta);
  size_t base = batch.size() / beta, extra = batch.size() % beta;
  size_t off = 0;
  for (size_t b = 0; b < beta; b++) {
    size_t take = base + (b < extra ? 1 : 0);
    subs[b].assign(batch.begin() + static_cast<ptrdiff_t>(off),
                   batch.begin() + static_cast<ptrdiff_t>(off + take));
    off += take;
  }
  return subs;
}

NodeMsg AbortMsg(uint32_t gid, std::string reason) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kAbort;
  msg.gid = gid;
  msg.abort_reason = std::move(reason);
  return msg;
}

}  // namespace

AtomNode::AtomNode(uint32_t server_id, Variant variant)
    : server_id_(server_id), variant_(variant) {}

void AtomNode::JoinGroup(uint32_t gid, NodeGroupKeys keys) {
  ATOM_CHECK(keys.subset.size() == keys.chain_servers.size());
  group_pk_tables_[gid] =
      std::make_shared<const FixedBaseTable>(keys.pub.group_pk);
  groups_[gid] = std::move(keys);
}

bool AtomNode::Accepts(const NodeMsg& msg) const {
  if (msg.type != NodeMsg::Type::kShuffleStep &&
      msg.type != NodeMsg::Type::kReEncStep) {
    return false;
  }
  auto it = groups_.find(msg.gid);
  if (it == groups_.end()) {
    return false;
  }
  const NodeGroupKeys& keys = it->second;
  return msg.chain_pos < keys.chain_servers.size() &&
         keys.chain_servers[msg.chain_pos] == server_id_;
}

std::vector<Envelope> AtomNode::Handle(const NodeMsg& msg, Rng& rng) {
  auto it = groups_.find(msg.gid);
  ATOM_CHECK_MSG(it != groups_.end(), "message for a group I am not in");
  const NodeGroupKeys& keys = it->second;
  ATOM_CHECK(msg.chain_pos < keys.chain_servers.size());
  ATOM_CHECK_MSG(keys.chain_servers[msg.chain_pos] == server_id_,
                 "message delivered to the wrong chain position");

  switch (msg.type) {
    case NodeMsg::Type::kShuffleStep:
      return HandleShuffle(msg, keys, rng);
    case NodeMsg::Type::kReEncStep:
      return HandleReEnc(msg, keys, rng);
    default:
      ATOM_CHECK_MSG(false, "driver-only message type sent to a node");
      return {};
  }
}

std::vector<Envelope> AtomNode::HandleShuffle(const NodeMsg& msg,
                                              const NodeGroupKeys& keys,
                                              Rng& rng) {
  const Point& group_pk = keys.pub.group_pk;

  // Verify the previous server's shuffle before building on it.
  if (variant_ == Variant::kNizk && msg.shuffle_proof.has_value()) {
    if (!VerifyShuffle(group_pk, msg.prev_batch, msg.batch,
                       *msg.shuffle_proof)) {
      return {Envelope{server_id_,
                       AbortMsg(msg.gid, "shuffle proof rejected at pos " +
                                             std::to_string(msg.chain_pos))}};
    }
  }

  NodeMsg out;
  out.gid = msg.gid;
  out.next_pks = msg.next_pks;
  const FixedBaseTable& pk_table = *group_pk_tables_.at(msg.gid);
  if (variant_ == Variant::kNizk) {
    ShuffleResult result = ShuffleAndProve(pk_table, msg.batch, rng);
    out.batch = std::move(result.output);
    out.shuffle_proof = std::move(result.proof);
    out.prev_batch = msg.batch;
  } else {
    out.batch = ShuffleBatch(pk_table, msg.batch, rng);
  }

  const bool last = (msg.chain_pos + 1 == keys.chain_servers.size());
  if (!last) {
    out.type = NodeMsg::Type::kShuffleStep;
    out.chain_pos = msg.chain_pos + 1;
    return {Envelope{keys.chain_servers[out.chain_pos], std::move(out)}};
  }

  // Last shuffler divides and hands the sub-batches to the first server of
  // the reencryption chain; the shuffle proof rides along for them to check.
  size_t beta = msg.next_pks.empty() ? 1 : msg.next_pks.size();
  NodeMsg reenc;
  reenc.type = NodeMsg::Type::kReEncStep;
  reenc.gid = msg.gid;
  reenc.chain_pos = 0;
  reenc.next_pks = msg.next_pks;
  reenc.subs = Divide(out.batch, beta);
  reenc.prev_batch = std::move(out.prev_batch);
  reenc.batch = std::move(out.batch);
  reenc.shuffle_proof = std::move(out.shuffle_proof);
  reenc.prev_pos = msg.chain_pos;
  return {Envelope{keys.chain_servers[0], std::move(reenc)}};
}

std::vector<Envelope> AtomNode::HandleReEnc(const NodeMsg& msg,
                                            const NodeGroupKeys& keys,
                                            Rng& rng) {
  // Check the final shuffle proof (arrives with the first reenc step).
  if (variant_ == Variant::kNizk && msg.shuffle_proof.has_value()) {
    if (!VerifyShuffle(keys.pub.group_pk, msg.prev_batch, msg.batch,
                       *msg.shuffle_proof)) {
      return {Envelope{server_id_,
                       AbortMsg(msg.gid, "final shuffle proof rejected")}};
    }
  }
  // Check the previous server's reencryption proofs.
  if (variant_ == Variant::kNizk && !msg.reenc_proofs.empty()) {
    Point prev_pub = WeightedSharePublic(
        keys.pub, keys.subset[msg.prev_pos], keys.subset);
    size_t proof_idx = 0;
    for (size_t b = 0; b < msg.subs.size(); b++) {
      const Point* next =
          msg.next_pks.empty() ? nullptr : &msg.next_pks[b];
      for (size_t m = 0; m < msg.subs[b].size(); m++) {
        for (size_t c = 0; c < msg.subs[b][m].size(); c++) {
          ATOM_CHECK(proof_idx < msg.reenc_proofs.size());
          if (!VerifyReEncProof(prev_pub, next, msg.prev_subs[b][m][c],
                                msg.subs[b][m][c],
                                msg.reenc_proofs[proof_idx++])) {
            return {Envelope{
                server_id_,
                AbortMsg(msg.gid, "reencryption proof rejected at pos " +
                                      std::to_string(msg.chain_pos))}};
          }
        }
      }
    }
  }

  Scalar weighted = WeightedShare(keys.key, keys.subset);
  Point weighted_pub =
      WeightedSharePublic(keys.pub, keys.key.index, keys.subset);
  const bool last = (msg.chain_pos + 1 == keys.chain_servers.size());

  NodeMsg out;
  out.gid = msg.gid;
  out.next_pks = msg.next_pks;
  out.subs.resize(msg.subs.size());
  for (size_t b = 0; b < msg.subs.size(); b++) {
    const Point* next = msg.next_pks.empty() ? nullptr : &msg.next_pks[b];
    // The rewrap base is fixed for the whole sub-batch; precompute its
    // table when the reuse amortizes the build (same threshold as
    // ShuffleBatch's internal table).
    const size_t components =
        msg.subs[b].empty() ? 0 : msg.subs[b][0].size();
    std::unique_ptr<FixedBaseTable> next_table;
    if (next != nullptr && msg.subs[b].size() * components >= 16) {
      next_table = std::make_unique<FixedBaseTable>(*next);
    }
    out.subs[b].resize(msg.subs[b].size());
    for (size_t m = 0; m < msg.subs[b].size(); m++) {
      out.subs[b][m].resize(msg.subs[b][m].size());
      for (size_t c = 0; c < msg.subs[b][m].size(); c++) {
        Scalar rewrap;
        ElGamalCiphertext next_ct =
            next_table != nullptr
                ? ElGamalReEnc(weighted, *next_table, msg.subs[b][m][c], rng,
                               &rewrap)
                : ElGamalReEnc(weighted, next, msg.subs[b][m][c], rng,
                               &rewrap);
        if (variant_ == Variant::kNizk) {
          out.reenc_proofs.push_back(
              MakeReEncProof(weighted, weighted_pub, next,
                             msg.subs[b][m][c], next_ct, rewrap, rng));
        }
        if (last) {
          next_ct = ElGamalFinalizeHop(next_ct);
        }
        out.subs[b][m][c] = next_ct;
      }
    }
  }

  if (!last) {
    out.type = NodeMsg::Type::kReEncStep;
    out.chain_pos = msg.chain_pos + 1;
    out.prev_subs = msg.subs;
    out.prev_pos = msg.chain_pos;
    return {Envelope{keys.chain_servers[out.chain_pos], std::move(out)}};
  }
  // Note: the last server's own proofs would be verified by the receiving
  // group's first server in a full deployment; the in-process drivers
  // re-verify at the exit instead.
  out.type = NodeMsg::Type::kGroupOutput;
  out.chain_pos = msg.chain_pos;
  return {Envelope{server_id_, std::move(out)}};
}

void LocalBus::RegisterNode(AtomNode* node) {
  ATOM_CHECK(node != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  ATOM_CHECK(nodes_.emplace(node->server_id(), node).second);
}

void LocalBus::Send(Envelope envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  Enqueue(std::move(envelope));
}

// Routes one envelope: driver-bound messages land in the collectors,
// server-bound messages join that server's serial queue, and an idle
// server with new work becomes a pool task. Caller holds mu_.
void LocalBus::Enqueue(Envelope envelope) {
  if (envelope.msg.type == NodeMsg::Type::kGroupOutput) {
    outputs_.push_back(std::move(envelope.msg));
    return;
  }
  if (envelope.msg.type == NodeMsg::Type::kAbort) {
    aborts_.push_back(std::move(envelope.msg));
    abort_seen_ = true;
    return;
  }
  ATOM_CHECK_MSG(nodes_.contains(envelope.to_server),
                 "envelope for unregistered server");
  ServerQueue& queue = queues_[envelope.to_server];
  queue.pending.push_back(std::move(envelope.msg));
  unfinished_++;
  if (running_ && !queue.active) {
    queue.active = true;
    drains_++;
    uint32_t server_id = envelope.to_server;
    ThreadPool::Shared().Submit(
        [this, server_id] { DrainServer(server_id); });
  }
}

void LocalBus::DrainServer(uint32_t server_id) {
  std::unique_lock<std::mutex> lock(mu_);
  ServerQueue& queue = queues_[server_id];
  AtomNode* node = nodes_[server_id];
  while (!queue.pending.empty()) {
    NodeMsg msg = std::move(queue.pending.front());
    queue.pending.pop_front();
    if (!abort_seen_) {
      // Private generator for this delivery: key-separate the run's
      // 256-bit root key by (server id, per-server delivery count) in
      // disjoint key bytes. Streams are never reused (each delivery gets a
      // fresh key even when two batches drive identical protocol steps)
      // and deterministic whenever a server's arrival order is — which it
      // is for serial chain traffic, the protocol's shape. Handle runs
      // unlocked so other servers' drains proceed concurrently.
      std::array<uint8_t, 32> key =
          DeriveSubKey(run_key_, server_id, queue.delivered++);
      Rng step_rng(BytesView(key.data(), key.size()));
      lock.unlock();
      std::vector<Envelope> emitted;
      try {
        emitted = node->Handle(msg, step_rng);
      } catch (const std::exception& e) {
        // Never let a throwing handler escape into the pool's worker
        // loop; surface it as an abort of this run.
        NodeMsg abort_msg;
        abort_msg.type = NodeMsg::Type::kAbort;
        abort_msg.gid = msg.gid;
        abort_msg.abort_reason = std::string("handler threw: ") + e.what();
        emitted.push_back(Envelope{server_id, std::move(abort_msg)});
      } catch (...) {
        NodeMsg abort_msg;
        abort_msg.type = NodeMsg::Type::kAbort;
        abort_msg.gid = msg.gid;
        abort_msg.abort_reason = "handler threw a non-standard exception";
        emitted.push_back(Envelope{server_id, std::move(abort_msg)});
      }
      lock.lock();
      for (Envelope& next : emitted) {
        Enqueue(std::move(next));
      }
    }
    unfinished_--;
  }
  queue.active = false;
  drains_--;
  if (unfinished_ == 0 || drains_ == 0) {
    cv_.notify_all();
  }
}

bool LocalBus::Run(Rng& rng) {
  std::unique_lock<std::mutex> lock(mu_);
  rng.Fill(run_key_.data(), run_key_.size());
  running_ = true;
  // Each Run reports the aborts it observes; an abort in an earlier Run
  // does not poison later ones (the bus stays usable for e.g. a blame or
  // recovery phase driven after a disrupted hop).
  abort_seen_ = false;
  const size_t aborts_before = aborts_.size();
  for (auto& [server_id, queue] : queues_) {
    queue.delivered = 0;  // per-run delivery counters
  }
  for (auto& [server_id, queue] : queues_) {
    if (!queue.pending.empty() && !queue.active) {
      queue.active = true;
      drains_++;
      uint32_t sid = server_id;
      ThreadPool::Shared().Submit([this, sid] { DrainServer(sid); });
    }
  }
  // Quiescent when every message is handled and every drain task has
  // retired (so no pool task still references this bus).
  cv_.wait(lock, [&] { return unfinished_ == 0 && drains_ == 0; });
  running_ = false;
  return aborts_.size() == aborts_before;
}

void LocalBus::ClearOutputs() {
  std::lock_guard<std::mutex> lock(mu_);
  outputs_.clear();
}

void LocalBus::AssertNotRunning() const {
#ifndef NDEBUG
  std::lock_guard<std::mutex> lock(mu_);
  ATOM_CHECK_MSG(!running_,
                 "LocalBus outputs()/aborts() read while Run is executing");
#endif
}

NodeGroupKeys MakeNodeGroupKeys(const DkgResult& dkg,
                                std::span<const uint32_t> chain_servers,
                                uint32_t position) {
  ATOM_CHECK(chain_servers.size() <= dkg.keys.size());
  ATOM_CHECK(position < chain_servers.size());
  NodeGroupKeys keys;
  keys.pub = dkg.pub;
  keys.key = dkg.keys[position];  // chain order == DKG participant order
  keys.subset.resize(chain_servers.size());
  for (size_t i = 0; i < chain_servers.size(); i++) {
    keys.subset[i] = static_cast<uint32_t>(i + 1);
  }
  keys.chain_servers.assign(chain_servers.begin(), chain_servers.end());
  return keys;
}

}  // namespace atom
