// A single Atom server as a message-driven state machine.
//
// GroupRuntime (src/core/group_runtime.h) executes a whole group's chain in
// one call and is convenient for tests and benches; AtomNode is the shape
// of a real deployment process: it holds exactly ONE server's per-group key
// shares and acts only on protocol messages, emitting messages to other
// servers. Message delivery is pluggable behind the Bus interface below:
// LocalBus delivers envelopes in process, and the TcpPeerMesh/NodeProcess
// pair in src/net/ delivers the same envelopes over encrypted TCP links
// with one OS process per server (see src/net/mesh.h).
//
// Message flow for one group hop (Algorithm 1/2):
//   kShuffleStep(pos=0) -> server at chain position 0 shuffles, sends
//   kShuffleStep(pos=1) -> ... last position divides into β sub-batches and
//   sends kReEncStep(pos=0) back to the first participant, which strips its
//   layer and rewraps; ... the last participant finalizes the hop and emits
//   kGroupOutput with the β outgoing batches.
//
// In the NIZK variant each step carries its proof; the receiving server
// verifies before acting (at least one receiving server per group is
// honest, so any deviation halts the chain with an abort notice).
#ifndef SRC_CORE_NODE_H_
#define SRC_CORE_NODE_H_

#include <array>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/core/params.h"
#include "src/core/trustees.h"
#include "src/crypto/dkg.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/sigma.h"
#include "src/util/rng.h"

namespace atom {

struct NodeMsg {
  enum class Type {
    kShuffleStep,   // batch + optional shuffle proof
    kReEncStep,     // β sub-batches + optional reenc proofs
    kGroupOutput,   // hop finished: β outgoing batches (to the driver)
    kAbort,         // proof verification failed
    // Distributed pipelined rounds (src/net/round_driver.h): a server
    // hosting a topology group executes whole engine hops, so overlapping
    // rounds flow between processes as round-tagged envelopes.
    kHopBatch,      // one sub-batch for hop (layer=chain_pos, gid); when
                    // chain_pos == num_layers it is the exit batch routed
                    // to the driver (no native exit plan)
    kExitBuckets,   // exit sort output: src group prev_pos's trap/inner
                    // buckets destined for group gid's §4.4 check
    kExitReport,    // dest group gid's GroupReport + gathered inner cts
    kExitPlain,     // NIZK exit: group gid's decoded plaintexts
  };

  Type type = Type::kShuffleStep;
  uint32_t gid = 0;
  uint32_t chain_pos = 0;  // chain position; kHopBatch: the hop's layer
  std::vector<Point> next_pks;  // β neighbour keys; empty = exit layer

  // Shuffle phase payload.
  CiphertextBatch batch;
  CiphertextBatch prev_batch;           // NIZK: verifier needs the input
  std::optional<ShuffleProof> shuffle_proof;

  // ReEnc phase payload.
  std::vector<CiphertextBatch> subs;
  std::vector<CiphertextBatch> prev_subs;
  std::vector<ReEncProof> reenc_proofs;  // flattened, per component
  uint32_t prev_pos = 0;                 // who produced the proofs; for
                                         // kHopBatch/kExitBuckets the
                                         // source gid

  // Exit-stage payloads for the distributed pipeline.
  std::vector<Bytes> exit_traps;  // kExitBuckets: trap bucket for gid
  std::vector<Bytes> exit_inner;  // kExitBuckets: inner bucket;
                                  // kExitReport: gathered inner (ascending
                                  // source gid); kExitPlain: plaintexts
  GroupReport report;             // kExitReport only

  std::string abort_reason;
};

struct Envelope {
  uint32_t to_server = 0;  // server id; the driver routes kGroupOutput/kAbort
  NodeMsg msg;
  // Which protocol round this frame belongs to. Overlapping rounds on the
  // TCP mesh demultiplex by this tag into per-round server state instead
  // of interleaving into one collector; in-process buses ignore it.
  uint64_t round_id = 0;
};

// One server's view of one group it serves in.
struct NodeGroupKeys {
  DkgPublic pub;
  DkgServerKey key;                 // this server's share
  std::vector<uint32_t> subset;     // participating chain (1-based indices)
  std::vector<uint32_t> chain_servers;  // server ids by chain position
};

class AtomNode {
 public:
  AtomNode(uint32_t server_id, Variant variant);

  uint32_t server_id() const { return server_id_; }

  // Registers this server's keys for a group (position derived from
  // chain_servers).
  void JoinGroup(uint32_t gid, NodeGroupKeys keys);

  // True when this node serves msg.gid at msg.chain_pos and the type is a
  // server-actionable step. Handle() treats violations as fatal invariant
  // failures (an in-process driver routing wrong is a bug); a network
  // transport checks Accepts() first so a misrouted or hostile message
  // from a peer becomes an abort instead of crashing the server.
  bool Accepts(const NodeMsg& msg) const;

  // Processes one protocol message, returning the envelopes to deliver.
  std::vector<Envelope> Handle(const NodeMsg& msg, Rng& rng);

 private:
  std::vector<Envelope> HandleShuffle(const NodeMsg& msg,
                                      const NodeGroupKeys& keys, Rng& rng);
  std::vector<Envelope> HandleReEnc(const NodeMsg& msg,
                                    const NodeGroupKeys& keys, Rng& rng);

  uint32_t server_id_;
  Variant variant_;
  std::map<uint32_t, NodeGroupKeys> groups_;
  // Per-group precomputed table for the group public key, built once at
  // JoinGroup: every shuffle step this lane executes rerandomizes the whole
  // batch under the same pk, so the table is reused across all rounds.
  std::map<uint32_t, std::shared_ptr<const FixedBaseTable>> group_pk_tables_;
};

// Message-delivery abstraction between Atom servers, as seen by a driver.
//
// A Bus accepts envelopes (Send), delivers them to the servers it fronts
// until the traffic quiesces (Run), and collects the driver-bound messages
// — kGroupOutput and kAbort — for inspection between runs. Run returns
// false when any chain aborted during that call. The accessors must only
// be read while Run is NOT executing; implementations assert this in
// debug builds.
//
// Implementations: LocalBus (below) delivers in process on the shared
// ThreadPool; TcpPeerMesh (src/net/mesh.h) delivers the same envelopes to
// one-process-per-server peers over authenticated encrypted TCP links.
class Bus {
 public:
  virtual ~Bus() = default;

  // Queues a message for a server (thread-safe).
  virtual void Send(Envelope envelope) = 0;

  // Delivers until quiescent; false if any chain aborted during this call.
  virtual bool Run(Rng& rng) = 0;

  // Collected kGroupOutput / kAbort messages. Only read while Run is not
  // executing.
  virtual const std::vector<NodeMsg>& outputs() const = 0;
  virtual const std::vector<NodeMsg>& aborts() const = 0;
  virtual void ClearOutputs() = 0;
};

// In-process message bus between registered nodes. Group outputs and
// aborts are collected for the driver.
//
// Delivery runs on the shared ThreadPool with the same ready-queue
// discipline as the RoundEngine (src/core/engine.h): each server owns a
// serial message queue (a real server processes its socket in order), a
// server with pending messages becomes a pool task, and independent
// servers — different groups, different chain positions — handle their
// messages concurrently instead of walking one global deque. Each
// delivered message gets a private Rng key-separated from a per-run root
// key, so no generator is shared across pool threads.
class LocalBus : public Bus {
 public:
  void RegisterNode(AtomNode* node);

  // Queues a message for a server (thread-safe; pool tasks re-enter it).
  void Send(Envelope envelope) override;

  // Delivers until quiescent. Returns false if any node aborted during
  // this call; once an abort is observed, messages still queued in this
  // call are discarded. A later Run starts fresh (aborts() keeps the
  // history).
  bool Run(Rng& rng) override;

  // Collected kGroupOutput messages (one per finished group hop). Only
  // read these while Run is not executing (debug builds assert it: a pool
  // drain task may still be appending).
  const std::vector<NodeMsg>& outputs() const override {
    AssertNotRunning();
    return outputs_;
  }
  const std::vector<NodeMsg>& aborts() const override {
    AssertNotRunning();
    return aborts_;
  }
  void ClearOutputs() override;

 private:
  struct ServerQueue {
    std::deque<NodeMsg> pending;
    bool active = false;     // a drain task is scheduled or running
    uint64_t delivered = 0;  // deliveries this Run (per-delivery Rng salt)
  };

  void Enqueue(Envelope envelope);  // requires mu_
  void DrainServer(uint32_t server_id);
  // Debug-build guard for the read-while-running hazard: outputs_/aborts_
  // are appended to by pool drain tasks while Run executes, so reading
  // them concurrently is a race. Compiled out under NDEBUG.
  void AssertNotRunning() const;

  std::map<uint32_t, AtomNode*> nodes_;
  std::map<uint32_t, ServerQueue> queues_;
  std::vector<NodeMsg> outputs_;
  std::vector<NodeMsg> aborts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t unfinished_ = 0;  // enqueued but not fully handled messages
  size_t drains_ = 0;      // outstanding drain tasks on the pool
  bool running_ = false;
  bool abort_seen_ = false;
  // 256-bit root key drawn from the driver's generator once per Run; every
  // delivery key-separates its private DRBG from it by (server id,
  // per-server delivery count), so randomness is never reused across
  // deliveries and a run replays deterministically from a seed whenever
  // each server's arrival order is deterministic (true for serial chain
  // traffic).
  std::array<uint8_t, 32> run_key_{};
};

// Builds per-server NodeGroupKeys from a group's DKG result and its chain
// (helper for drivers/tests).
NodeGroupKeys MakeNodeGroupKeys(const DkgResult& dkg,
                                std::span<const uint32_t> chain_servers,
                                uint32_t position);

}  // namespace atom

#endif  // SRC_CORE_NODE_H_
