// Atom protocol parameters.
#ifndef SRC_CORE_PARAMS_H_
#define SRC_CORE_PARAMS_H_

#include <cstddef>
#include <string>

namespace atom {

// The two defenses against actively malicious servers (§4.3 / §4.4).
enum class Variant {
  kNizk,  // verifiable shuffles + verifiable reencryption after every step
  kTrap,  // trap ciphertexts + trustee-gated decryption
};

// Which random permutation network connects the groups (§3).
enum class TopologyKind {
  kSquare,     // Håstad square network: β = G, T = O(1) (the paper's choice)
  kButterfly,  // iterated butterfly: β = 2, T = O(log² G); G must be 2^n
};

struct AtomParams {
  Variant variant = Variant::kTrap;

  // Network shape.
  TopologyKind topology = TopologyKind::kSquare;
  size_t num_servers = 0;
  size_t num_groups = 0;   // groups per layer (topology width G)
  size_t group_size = 0;   // servers per group (k)
  size_t honest_needed = 1;  // h: group tolerates h-1 faults (§4.5)
  size_t iterations = 10;    // mixing iterations T; for the butterfly this
                             // is the number of passes (T·log2(G) layers)

  // Application.
  size_t message_len = 160;  // plaintext bytes (160 microblog, 80 dialing)

  // Dummy padding fraction for the butterfly topology (§3: the iterated
  // butterfly is an "almost ideal" permutation network; mixing in a small
  // constant fraction of dummies makes it usable as a uniform one).
  double butterfly_dummy_fraction = 0.25;

  // Threat model.
  double adversary_fraction = 0.2;  // f

  // Servers that must participate to use a group key.
  size_t Threshold() const { return group_size - (honest_needed - 1); }

  // Returns an empty string when the configuration is coherent, otherwise a
  // human-readable description of the first problem found.
  std::string Validate() const {
    if (num_groups == 0 || group_size == 0 || iterations == 0 ||
        message_len == 0) {
      return "num_groups, group_size, iterations, message_len must be >= 1";
    }
    if (num_servers < group_size) {
      return "need at least group_size servers";
    }
    if (honest_needed == 0 || honest_needed > group_size) {
      return "honest_needed must be in [1, group_size]";
    }
    if (topology == TopologyKind::kButterfly) {
      if ((num_groups & (num_groups - 1)) != 0) {
        return "butterfly topology needs a power-of-two group count";
      }
      if (variant == Variant::kNizk && message_len < 16 &&
          butterfly_dummy_fraction > 0) {
        return "butterfly dummies need NIZK messages of >= 16 bytes";
      }
    }
    if (butterfly_dummy_fraction < 0 || butterfly_dummy_fraction > 4) {
      return "butterfly_dummy_fraction out of range";
    }
    return "";
  }
};

}  // namespace atom

#endif  // SRC_CORE_PARAMS_H_
