#include "src/core/round.h"

#include <cmath>
#include <utility>

#include "src/crypto/kem.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/parallel.h"

namespace atom {

namespace {

// Streaming-intake telemetry, aggregated across every Round in the
// process (one per server in the distributed deployment). Counts are
// per-submission but carry no client identity — aggregate-only like the
// rest of the observability plane.
struct IntakeMetrics {
  obs::Counter* accepted;
  obs::Counter* rejected;
  obs::Counter* backpressure;
  obs::Gauge* stream_depth_peak;

  static IntakeMetrics& Get() {
    static IntakeMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      IntakeMetrics out;
      out.accepted = reg.GetCounter("atom_intake_accepted_total");
      out.rejected = reg.GetCounter("atom_intake_rejected_total");
      out.backpressure = reg.GetCounter("atom_intake_backpressure_total");
      out.stream_depth_peak = reg.GetGauge("atom_intake_stream_depth_peak");
      return out;
    }();
    return m;
  }
};

}  // namespace

Round::Round(RoundConfig config, Rng& rng)
    : config_(std::move(config)),
      layout_(LayoutFor(config_.params.variant, config_.params.message_len)) {
  const AtomParams& p = config_.params;
  std::string problem = p.Validate();
  ATOM_CHECK_MSG(problem.empty(), "invalid AtomParams: %s", problem.c_str());

  group_layout_ = FormGroups(p.num_servers, p.num_groups, p.group_size,
                             BytesView(config_.beacon));
  groups_.reserve(p.num_groups);
  for (uint32_t g = 0; g < p.num_groups; g++) {
    DkgParams dkg_params{p.group_size, p.Threshold()};
    groups_.push_back(
        std::make_unique<GroupRuntime>(g, RunDkg(dkg_params, rng)));
  }
  if (p.variant == Variant::kTrap) {
    trustees_ = std::make_unique<Trustees>(p.group_size, p.Threshold(), rng);
  }
  if (p.topology == TopologyKind::kSquare) {
    topology_ = std::make_unique<SquareTopology>(p.num_groups, p.iterations);
  } else {
    size_t log2_width = 0;
    while ((size_t{1} << log2_width) < p.num_groups) {
      log2_width++;
    }
    ATOM_CHECK_MSG((size_t{1} << log2_width) == p.num_groups,
                   "butterfly topology needs a power-of-two group count");
    topology_ = std::make_unique<ButterflyTopology>(log2_width,
                                                    p.iterations);
  }

  intake_.reserve(p.num_groups);
  for (uint32_t g = 0; g < p.num_groups; g++) {
    intake_.push_back(
        std::make_unique<IntakeShard>(config_.stream_queue_capacity));
  }
}

void Round::SetClientAuth(std::function<bool(uint64_t)> fn) {
  client_auth_ = std::move(fn);
}

const Point& Round::EntryPk(uint32_t gid) const {
  ATOM_CHECK(gid < groups_.size());
  return groups_[gid]->pk();
}

const Point& Round::TrusteePk() const {
  ATOM_CHECK(trustees_ != nullptr);
  return trustees_->round_pk();
}

bool Round::AcceptNizk(const NizkSubmission& submission) {
  IntakeShard& shard = *intake_[submission.entry_gid];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (submission.client_id != kAnonymousClient &&
      !shard.clients.insert(submission.client_id).second) {
    return false;  // duplicate client id within this engine round
  }
  shard.batch.push_back(submission.ciphertext);
  return true;
}

bool Round::AcceptTrap(const TrapSubmission& submission) {
  IntakeShard& shard = *intake_[submission.entry_gid];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (submission.client_id != kAnonymousClient &&
      !shard.clients.insert(submission.client_id).second) {
    return false;  // duplicate client id within this engine round
  }
  shard.batch.push_back(submission.first);
  shard.batch.push_back(submission.second);
  shard.commitments.push_back(submission.trap_commitment);
  shard.submissions.push_back(submission);
  return true;
}

bool Round::ClientAllowed(uint64_t client_id) const {
  // An unwired registry accepts every id (the in-process drivers stand in
  // for channel authentication, as before); a wired one gates every
  // non-anonymous id at intake, mirroring the gateway's channel check.
  return client_id == kAnonymousClient || client_auth_ == nullptr ||
         client_auth_(client_id);
}

bool Round::SubmitNizk(const NizkSubmission& submission) {
  ATOM_CHECK(config_.params.variant == Variant::kNizk);
  // Verification is the expensive part and touches no shared state; only
  // the accept runs under the shard lock.
  if (submission.entry_gid >= groups_.size() ||
      !ClientAllowed(submission.client_id) ||
      !VerifyNizkSubmission(EntryPk(submission.entry_gid), submission,
                            layout_)) {
    return false;
  }
  return AcceptNizk(submission);
}

bool Round::SubmitTrap(const TrapSubmission& submission) {
  ATOM_CHECK(config_.params.variant == Variant::kTrap);
  if (submission.entry_gid >= groups_.size() ||
      !ClientAllowed(submission.client_id) ||
      !VerifyTrapSubmission(EntryPk(submission.entry_gid), submission,
                            layout_)) {
    return false;
  }
  return AcceptTrap(submission);
}

std::vector<bool> Round::SubmitNizkBatch(std::span<const NizkSubmission> subs,
                                         size_t workers) {
  ATOM_CHECK(config_.params.variant == Variant::kNizk);
  std::vector<uint8_t> valid(subs.size(), 0);
  ParallelFor(workers, subs.size(), [&](size_t i) {
    const NizkSubmission& s = subs[i];
    valid[i] = s.entry_gid < groups_.size() && ClientAllowed(s.client_id) &&
               VerifyNizkSubmission(EntryPk(s.entry_gid), s, layout_);
  });
  std::vector<bool> accepted(subs.size(), false);
  for (size_t i = 0; i < subs.size(); i++) {
    accepted[i] = valid[i] && AcceptNizk(subs[i]);
  }
  return accepted;
}

std::vector<bool> Round::SubmitTrapBatch(std::span<const TrapSubmission> subs,
                                         size_t workers) {
  ATOM_CHECK(config_.params.variant == Variant::kTrap);
  std::vector<uint8_t> valid(subs.size(), 0);
  ParallelFor(workers, subs.size(), [&](size_t i) {
    const TrapSubmission& s = subs[i];
    valid[i] = s.entry_gid < groups_.size() && ClientAllowed(s.client_id) &&
               VerifyTrapSubmission(EntryPk(s.entry_gid), s, layout_);
  });
  std::vector<bool> accepted(subs.size(), false);
  for (size_t i = 0; i < subs.size(); i++) {
    accepted[i] = valid[i] && AcceptTrap(subs[i]);
  }
  return accepted;
}

bool Round::StreamSubmit(StreamedSubmission item) {
  const uint32_t gid = config_.params.variant == Variant::kTrap
                           ? item.trap.entry_gid
                           : item.nizk.entry_gid;
  if (gid >= intake_.size()) {
    IntakeMetrics::Get().rejected->Add(1);
    return false;
  }
  IntakeShard& shard = *intake_[gid];
  if (!shard.stream.TryPush(std::move(item))) {
    // Ring full: the backpressure verdict the gateway relays to clients.
    IntakeMetrics::Get().backpressure->Add(1);
    return false;
  }
  IntakeMetrics::Get().stream_depth_peak->UpdateMax(
      static_cast<int64_t>(shard.stream.SizeApprox()));
  return true;
}

size_t Round::PumpStream(
    uint32_t gid, size_t workers,
    const std::function<void(uint64_t cookie, bool accepted)>& done) {
  ATOM_CHECK(gid < intake_.size());
  IntakeShard& shard = *intake_[gid];
  // Drain what is queued NOW into one span; submissions arriving while
  // this span verifies are the next pump's work — that is the pipelining.
  std::vector<StreamedSubmission> items;
  while (auto item = shard.stream.TryPop()) {
    items.push_back(std::move(*item));
  }
  if (items.empty()) {
    return 0;
  }
  obs::TraceSpan span("verify", "intake", 0, "gid", gid, "items",
                      items.size());

  // Signature gate first: fold every signed item in the span into one
  // SchnorrVerifyBatch (a single MSM). Only on batch failure do we pay for
  // per-signature verification to identify the culprits — the honest-path
  // cost stays one MSM regardless of span size.
  std::vector<uint8_t> sig_ok(items.size(), 1);
  std::vector<size_t> signed_idx;
  std::vector<Point> sig_pks;
  std::vector<BytesView> sig_msgs;
  std::vector<SchnorrSignature> sigs;
  for (size_t i = 0; i < items.size(); i++) {
    if (items[i].has_sig) {
      signed_idx.push_back(i);
      sig_pks.push_back(items[i].sig_pk);
      sig_msgs.push_back(BytesView(items[i].sig_msg));
      sigs.push_back(items[i].sig);
    }
  }
  if (!signed_idx.empty() && !SchnorrVerifyBatch(sig_pks, sig_msgs, sigs)) {
    for (size_t j = 0; j < signed_idx.size(); j++) {
      if (!SchnorrVerify(sig_pks[j], sig_msgs[j], sigs[j])) {
        sig_ok[signed_idx[j]] = 0;
      }
    }
  }

  // Proof verification + acceptance for the signature survivors.
  const bool is_trap = config_.params.variant == Variant::kTrap;
  std::vector<size_t> batch_idx;  // items index per batch element
  std::vector<NizkSubmission> nizk;
  std::vector<TrapSubmission> trap;
  for (size_t i = 0; i < items.size(); i++) {
    if (!sig_ok[i]) {
      continue;
    }
    batch_idx.push_back(i);
    if (is_trap) {
      trap.push_back(std::move(items[i].trap));
    } else {
      nizk.push_back(std::move(items[i].nizk));
    }
  }
  std::vector<bool> accepted =
      is_trap ? SubmitTrapBatch(trap, workers)
              : SubmitNizkBatch(nizk, workers);
  std::vector<uint8_t> ok(items.size(), 0);
  size_t num_ok = 0;
  for (size_t j = 0; j < batch_idx.size(); j++) {
    ok[batch_idx[j]] = accepted[j] ? 1 : 0;
    num_ok += accepted[j] ? 1 : 0;
  }
  IntakeMetrics& metrics = IntakeMetrics::Get();
  metrics.accepted->Add(num_ok);
  // Batch-verify rejects: bad signature, bad proof, duplicate client.
  metrics.rejected->Add(items.size() - num_ok);
  if (done) {
    for (size_t i = 0; i < items.size(); i++) {
      done(items[i].cookie, ok[i] != 0);
    }
  }
  return items.size();
}

size_t Round::StreamDepth(uint32_t gid) const {
  ATOM_CHECK(gid < intake_.size());
  return intake_[gid]->stream.SizeApprox();
}

Round::IntakeEpoch Round::DrainIntake() {
  const size_t G = config_.params.num_groups;
  IntakeEpoch epoch;
  epoch.entry.resize(G);
  epoch.commitments.resize(G);
  std::vector<std::vector<TrapSubmission>> submissions(G);
  for (uint32_t g = 0; g < G; g++) {
    IntakeShard& shard = *intake_[g];
    std::lock_guard<std::mutex> lock(shard.mu);
    epoch.entry[g] = std::move(shard.batch);
    epoch.commitments[g] = std::move(shard.commitments);
    submissions[g] = std::move(shard.submissions);
    shard.batch = {};
    shard.commitments = {};
    shard.submissions = {};
    shard.clients.clear();
  }
  std::lock_guard<std::mutex> lock(epoch_mu_);
  epoch.id = next_epoch_++;
  blame_history_[epoch.id] = std::move(submissions);
  while (blame_history_.size() > kBlameHistoryEpochs) {
    blame_history_.erase(blame_history_.begin());  // oldest epoch first
  }
  return epoch;
}

RoundResult Round::Run(Rng& rng, const Evil* evil) {
  if (evil == nullptr) {
    return RunWithEvils(rng, {});
  }
  return RunWithEvils(rng, std::span<const Evil>(evil, 1));
}

EngineRound Round::MakeEngineRound(std::vector<CiphertextBatch> entry,
                                   std::span<const Evil> evils, Rng& rng) {
  const AtomParams& p = config_.params;
  const size_t G = topology_->Width();
  ATOM_CHECK(entry.size() == G);

  // §3: butterfly mixing needs a constant fraction of dummies; each entry
  // group pads its own batch (dummies are discarded at the exit).
  if (p.topology == TopologyKind::kButterfly &&
      p.butterfly_dummy_fraction > 0) {
    for (uint32_t g = 0; g < G; g++) {
      size_t dummies = static_cast<size_t>(
          std::ceil(static_cast<double>(entry[g].size()) *
                    p.butterfly_dummy_fraction));
      for (size_t d = 0; d < dummies; d++) {
        Bytes plain = MakeDummyPlaintext(layout_, rng);
        entry[g].push_back(ElGamalEncryptVec(
            groups_[g]->pk_table(),
            FragmentToPoints(BytesView(plain), layout_), rng));
      }
    }
  }

  EngineRound spec;
  spec.topology = topology_.get();
  spec.groups.reserve(G);
  for (uint32_t g = 0; g < G; g++) {
    spec.groups.push_back(groups_[g].get());
  }
  spec.variant = p.variant;
  spec.hop_workers = config_.workers;
  spec.entry = std::move(entry);
  spec.faults.reserve(evils.size());
  for (const Evil& evil : evils) {
    spec.faults.push_back(HopFault{evil.layer, evil.gid, evil.action});
  }
  rng.Fill(spec.seed.data(), spec.seed.size());
  return spec;
}

EngineRound Round::TakeEngineRound(std::span<const Evil> evils, Rng& rng) {
  IntakeEpoch epoch = DrainIntake();
  EngineRound spec = MakeEngineRound(std::move(epoch.entry), evils, rng);
  ExitPlan plan;
  plan.layout = layout_;
  plan.trustees = trustees_.get();
  plan.commitments = std::move(epoch.commitments);
  spec.exit = std::move(plan);
  spec.intake_epoch = epoch.id;
  return spec;
}

uint64_t Round::AbandonIntakeEpoch() { return DrainIntake().id; }

void Round::ReleaseBlameEpoch(uint64_t intake_epoch) {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  blame_history_.erase(intake_epoch);
}

RoundResult Round::RunWithEvils(Rng& rng, std::span<const Evil> evils) {
  // The accepted submissions move into the engine — a round consumes its
  // intake epoch (ciphertexts, commitments, blame submissions) whether it
  // completes or aborts, so resubmit-and-run always starts clean. The
  // engine runs mixing and the exit phase and hands back the RoundResult.
  RoundEngine engine(&ThreadPool::Shared());
  EngineRound spec = TakeEngineRound(evils, rng);
  const uint64_t epoch = spec.intake_epoch;
  RoundResult result = engine.RunToCompletion(std::move(spec)).round;
  if (!result.aborted) {
    // Blame data only matters for disrupted rounds.
    ReleaseBlameEpoch(epoch);
  }
  return result;
}

RoundResult Round::ExitPhase(std::vector<CiphertextBatch> at) {
  RoundResult result;
  const AtomParams& p = config_.params;
  const size_t G = topology_->Width();
  ATOM_CHECK(at.size() == G);

  // The intake epoch is consumed on every exit path (success or abort),
  // keeping the Round's state symmetric with the engine-native path.
  IntakeEpoch epoch = DrainIntake();

  if (p.variant == Variant::kNizk) {
    for (uint32_t g = 0; g < G; g++) {
      NizkExitDecode decode = DecodeNizkExits(at[g], layout_);
      if (!decode.ok) {
        result.aborted = true;
        result.abort_reason = std::move(decode.error);
        // An aborted round releases nothing: discard earlier groups'
        // output (the engine-native finalize behaves the same way).
        result.plaintexts.clear();
        return result;
      }
      for (Bytes& plain : decode.plaintexts) {
        result.plaintexts.push_back(std::move(plain));
      }
    }
    ReleaseBlameEpoch(epoch.id);  // clean completion: nothing to blame
    return result;
  }

  // Trap variant (§4.4): sort exits into traps (to their entry group) and
  // inner ciphertexts (load-balanced by hash), check, report, maybe decrypt.
  std::vector<ExitSort> sorts;
  sorts.reserve(G);
  for (uint32_t g = 0; g < G; g++) {
    ExitSort sort = SortTrapExits(g, at[g], layout_, G);
    if (!sort.ok) {
      result.aborted = true;
      result.abort_reason = "exit batch not fully decrypted";
      return result;
    }
    sorts.push_back(std::move(sort));
  }

  // Per-group checks + reports (same gather as the engine's check tasks).
  std::vector<std::vector<Bytes>> inner_for(G);
  std::vector<GroupReport> reports;
  reports.reserve(G);
  for (uint32_t g = 0; g < G; g++) {
    std::vector<Bytes> traps, inner;
    GatherExitBuckets(sorts, g, &traps, &inner);
    GroupReport report =
        CheckExitGroup(g, traps, inner, epoch.commitments[g]);
    result.traps_seen += report.num_traps;
    result.inner_seen += report.num_inner;
    reports.push_back(report);
    inner_for[g] = std::move(inner);
  }

  auto round_secret = trustees_->MaybeReleaseKey(reports);
  if (!round_secret.has_value()) {
    result.aborted = true;
    result.abort_reason =
        "trustees refused to release the round key (trap check failed)";
    return result;
  }

  for (uint32_t g = 0; g < G; g++) {
    for (const auto& inner : inner_for[g]) {
      auto msg = KemDecrypt(*round_secret, BytesView(inner));
      if (msg.has_value()) {
        result.plaintexts.push_back(*msg);
      }
    }
  }
  ReleaseBlameEpoch(epoch.id);  // clean completion: nothing to blame
  return result;
}

Scalar Round::GroupSecret(uint32_t gid) const {
  const DkgResult& dkg = groups_[gid]->dkg();
  std::vector<Share> shares;
  shares.reserve(dkg.pub.params.threshold);
  for (size_t i = 0; i < dkg.pub.params.threshold; i++) {
    shares.push_back(Share{dkg.keys[i].index, dkg.keys[i].share});
  }
  auto secret = ShamirReconstruct(shares, dkg.pub.params.threshold);
  ATOM_CHECK(secret.has_value());
  return *secret;
}

BlameResult Round::BlameEntryGroup(uint32_t gid) {
  ATOM_CHECK(gid < groups_.size());
  // Once an epoch has been drained, blame always targets the batch that
  // ran — submissions accepted afterwards must not mask a disrupted
  // round's cheater. Before the first drain, inspect the pending batch.
  // Copies come out under one lock acquisition (a concurrent drain could
  // prune an epoch id between two acquisitions); RunBlame reveals the
  // entry key and decrypts every pair, too slow to hold any lock across.
  std::vector<TrapSubmission> submissions;
  bool have_epoch = false;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (!blame_history_.empty()) {
      submissions = blame_history_.rbegin()->second[gid];
      have_epoch = true;
    }
  }
  if (!have_epoch) {
    IntakeShard& shard = *intake_[gid];
    std::lock_guard<std::mutex> lock(shard.mu);
    submissions = shard.submissions;
  }
  return RunBlame(GroupSecret(gid), submissions, layout_);
}

BlameResult Round::BlameEntryGroup(uint32_t gid, uint64_t intake_epoch) {
  ATOM_CHECK(gid < groups_.size());
  std::vector<TrapSubmission> submissions;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    auto it = blame_history_.find(intake_epoch);
    ATOM_CHECK_MSG(it != blame_history_.end(),
                   "intake epoch %llu not retained (only the last %zu "
                   "drained epochs keep blame data)",
                   static_cast<unsigned long long>(intake_epoch),
                   Round::kBlameHistoryEpochs);
    submissions = it->second[gid];  // copy: a concurrent drain may prune
  }
  return RunBlame(GroupSecret(gid), submissions, layout_);
}

void Round::EscrowAllShares(Rng& rng) {
  const size_t k = config_.params.group_size;
  const size_t buddy_threshold = k / 2 + 1;
  escrows_.assign(groups_.size(), {});
  for (uint32_t g = 0; g < groups_.size(); g++) {
    escrows_[g].reserve(k);
    for (const DkgServerKey& key : groups_[g]->dkg().keys) {
      // Buddy group = next group in gid order (the paper suggests one or
      // more buddies per group; one suffices for recovery coverage).
      escrows_[g].push_back(EscrowShare(key, k, buddy_threshold, rng));
    }
  }
}

bool Round::RecoverServer(uint32_t gid, uint32_t server_index) {
  if (escrows_.empty() || gid >= groups_.size() || server_index == 0 ||
      server_index > config_.params.group_size) {
    return false;
  }
  const BuddyEscrow& escrow = escrows_[gid][server_index - 1];
  // Any buddy_threshold sub-shares reconstruct; take the first ones (in a
  // deployment: whichever buddy servers respond).
  auto recovered = RecoverShare(
      groups_[gid]->dkg().pub, server_index,
      std::span(escrow.sub_shares).subspan(0, escrow.threshold),
      escrow.threshold);
  if (!recovered.has_value()) {
    return false;
  }
  groups_[gid]->Restore(*recovered);
  return true;
}

}  // namespace atom
