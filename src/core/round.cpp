#include "src/core/round.h"

#include <cmath>
#include <set>
#include <utility>

#include "src/crypto/kem.h"
#include "src/crypto/sha256.h"
#include "src/util/hex.h"

namespace atom {

Round::Round(RoundConfig config, Rng& rng)
    : config_(std::move(config)),
      layout_(LayoutFor(config_.params.variant, config_.params.message_len)) {
  const AtomParams& p = config_.params;
  std::string problem = p.Validate();
  ATOM_CHECK_MSG(problem.empty(), "invalid AtomParams: %s", problem.c_str());

  group_layout_ = FormGroups(p.num_servers, p.num_groups, p.group_size,
                             BytesView(config_.beacon));
  groups_.reserve(p.num_groups);
  for (uint32_t g = 0; g < p.num_groups; g++) {
    DkgParams dkg_params{p.group_size, p.Threshold()};
    groups_.push_back(
        std::make_unique<GroupRuntime>(g, RunDkg(dkg_params, rng)));
  }
  if (p.variant == Variant::kTrap) {
    trustees_ = std::make_unique<Trustees>(p.group_size, p.Threshold(), rng);
  }
  if (p.topology == TopologyKind::kSquare) {
    topology_ = std::make_unique<SquareTopology>(p.num_groups, p.iterations);
  } else {
    size_t log2_width = 0;
    while ((size_t{1} << log2_width) < p.num_groups) {
      log2_width++;
    }
    ATOM_CHECK_MSG((size_t{1} << log2_width) == p.num_groups,
                   "butterfly topology needs a power-of-two group count");
    topology_ = std::make_unique<ButterflyTopology>(log2_width,
                                                    p.iterations);
  }

  entry_batches_.resize(p.num_groups);
  trap_commitments_.resize(p.num_groups);
  trap_submissions_.resize(p.num_groups);
}

const Point& Round::EntryPk(uint32_t gid) const {
  ATOM_CHECK(gid < groups_.size());
  return groups_[gid]->pk();
}

const Point& Round::TrusteePk() const {
  ATOM_CHECK(trustees_ != nullptr);
  return trustees_->round_pk();
}

bool Round::SubmitNizk(const NizkSubmission& submission) {
  ATOM_CHECK(config_.params.variant == Variant::kNizk);
  if (submission.entry_gid >= groups_.size() ||
      !VerifyNizkSubmission(EntryPk(submission.entry_gid), submission,
                            layout_)) {
    return false;
  }
  entry_batches_[submission.entry_gid].push_back(submission.ciphertext);
  return true;
}

bool Round::SubmitTrap(const TrapSubmission& submission) {
  ATOM_CHECK(config_.params.variant == Variant::kTrap);
  if (submission.entry_gid >= groups_.size() ||
      !VerifyTrapSubmission(EntryPk(submission.entry_gid), submission,
                            layout_)) {
    return false;
  }
  CiphertextBatch& batch = entry_batches_[submission.entry_gid];
  batch.push_back(submission.first);
  batch.push_back(submission.second);
  trap_commitments_[submission.entry_gid].push_back(
      submission.trap_commitment);
  trap_submissions_[submission.entry_gid].push_back(submission);
  return true;
}

RoundResult Round::Run(Rng& rng, const Evil* evil) {
  if (evil == nullptr) {
    return RunWithEvils(rng, {});
  }
  return RunWithEvils(rng, std::span<const Evil>(evil, 1));
}

EngineRound Round::MakeEngineRound(std::vector<CiphertextBatch> entry,
                                   std::span<const Evil> evils, Rng& rng) {
  const AtomParams& p = config_.params;
  const size_t G = topology_->Width();
  ATOM_CHECK(entry.size() == G);

  // §3: butterfly mixing needs a constant fraction of dummies; each entry
  // group pads its own batch (dummies are discarded at the exit).
  if (p.topology == TopologyKind::kButterfly &&
      p.butterfly_dummy_fraction > 0) {
    for (uint32_t g = 0; g < G; g++) {
      size_t dummies = static_cast<size_t>(
          std::ceil(static_cast<double>(entry[g].size()) *
                    p.butterfly_dummy_fraction));
      for (size_t d = 0; d < dummies; d++) {
        Bytes plain = MakeDummyPlaintext(layout_, rng);
        entry[g].push_back(ElGamalEncryptVec(
            groups_[g]->pk(), FragmentToPoints(BytesView(plain), layout_),
            rng));
      }
    }
  }

  EngineRound spec;
  spec.topology = topology_.get();
  spec.groups.reserve(G);
  for (uint32_t g = 0; g < G; g++) {
    spec.groups.push_back(groups_[g].get());
  }
  spec.variant = p.variant;
  spec.hop_workers = config_.workers;
  spec.entry = std::move(entry);
  spec.faults.reserve(evils.size());
  for (const Evil& evil : evils) {
    spec.faults.push_back(HopFault{evil.layer, evil.gid, evil.action});
  }
  rng.Fill(spec.seed.data(), spec.seed.size());
  return spec;
}

RoundResult Round::RunWithEvils(Rng& rng, std::span<const Evil> evils) {
  // The accepted submissions move into the engine — a round consumes its
  // batch (the old driver deep-copied every ciphertext vector here) — and
  // the raw trap submissions shift to the blame slot. Every path (success
  // or abort) leaves the Round uniformly drained, so resubmit-and-run
  // always starts clean: ExitPhase consumes the commitments on completed
  // runs, the abort path below resets them.
  std::vector<CiphertextBatch> entry = std::move(entry_batches_);
  entry_batches_.assign(config_.params.num_groups, {});
  last_run_submissions_ = std::move(trap_submissions_);
  trap_submissions_.assign(config_.params.num_groups, {});

  RoundEngine engine(&ThreadPool::Shared());
  EngineRoundResult mixed =
      engine.RunToCompletion(MakeEngineRound(std::move(entry), evils, rng));
  if (mixed.aborted) {
    trap_commitments_.assign(config_.params.num_groups, {});
    RoundResult result;
    result.aborted = true;
    result.abort_reason = std::move(mixed.abort_reason);
    return result;
  }
  return ExitPhase(std::move(mixed.exits));
}

RoundResult Round::ExitPhase(std::vector<CiphertextBatch> at) {
  RoundResult result;
  const AtomParams& p = config_.params;
  const size_t G = topology_->Width();
  ATOM_CHECK(at.size() == G);

  // The commitments registered for this run are consumed on every exit
  // path (success or abort), keeping the Round's state symmetric.
  std::vector<std::vector<std::array<uint8_t, 32>>> commitments =
      std::exchange(trap_commitments_,
                    std::vector<std::vector<std::array<uint8_t, 32>>>(G));
  if (p.variant == Variant::kNizk) {
    for (uint32_t g = 0; g < G; g++) {
      auto points = ExitPlaintexts(at[g]);
      if (!points.has_value()) {
        result.aborted = true;
        result.abort_reason = "exit batch not fully decrypted";
        return result;
      }
      for (const auto& vec : *points) {
        auto bytes = ReassembleFromPoints(vec, layout_);
        if (!bytes.has_value()) {
          result.aborted = true;
          result.abort_reason = "undecodable exit plaintext";
          return result;
        }
        if (IsDummy(BytesView(*bytes))) {
          continue;  // butterfly padding, discard
        }
        result.plaintexts.push_back(*bytes);
      }
    }
    return result;
  }

  // Trap variant (§4.4): sort exits into traps (to their entry group) and
  // inner ciphertexts (load-balanced by hash), check, report, maybe decrypt.
  std::vector<std::vector<Bytes>> traps_for(G);
  std::vector<std::vector<Bytes>> inner_for(G);
  for (uint32_t g = 0; g < G; g++) {
    auto points = ExitPlaintexts(at[g]);
    if (!points.has_value()) {
      result.aborted = true;
      result.abort_reason = "exit batch not fully decrypted";
      return result;
    }
    for (const auto& vec : *points) {
      auto bytes = ReassembleFromPoints(vec, layout_);
      if (!bytes.has_value()) {
        // An undecodable exit message counts as a failed check for the
        // group that holds it: report and abort via the trustees.
        traps_for[g].push_back(Bytes{0xff});  // sentinel that matches nothing
        continue;
      }
      if (IsDummy(BytesView(*bytes))) {
        continue;  // butterfly padding, discard before the checks
      }
      auto trap = ParseTrap(BytesView(*bytes));
      if (trap.has_value()) {
        if (trap->gid < G) {
          traps_for[trap->gid].push_back(*bytes);
        } else {
          traps_for[g].push_back(Bytes{0xff});
        }
        continue;
      }
      auto inner = ParseMessage(BytesView(*bytes));
      if (inner.has_value()) {
        // Universal-hash load balancing over groups.
        auto digest = Sha256::Hash(BytesView(*inner));
        uint32_t dst = static_cast<uint32_t>(digest[0] | (digest[1] << 8) |
                                             (digest[2] << 16)) %
                       static_cast<uint32_t>(G);
        inner_for[dst].push_back(*inner);
      } else {
        traps_for[g].push_back(Bytes{0xff});
      }
    }
  }

  // Per-group checks + reports.
  std::vector<GroupReport> reports;
  reports.reserve(G);
  for (uint32_t g = 0; g < G; g++) {
    GroupReport report;
    report.gid = g;
    report.num_traps = traps_for[g].size();
    report.num_inner = inner_for[g].size();

    // Trap check: multiset of arriving trap commitments must equal the
    // registered multiset.
    std::multiset<std::string> expected;
    for (const auto& commitment : commitments[g]) {
      expected.insert(HexEncode(BytesView(commitment)));
    }
    bool traps_ok = true;
    for (const auto& trap_bytes : traps_for[g]) {
      auto commitment = CommitTrap(BytesView(trap_bytes));
      auto it = expected.find(
          HexEncode(BytesView(commitment.data(), commitment.size())));
      if (it == expected.end()) {
        traps_ok = false;
        break;
      }
      expected.erase(it);
    }
    report.traps_ok = traps_ok && expected.empty();

    // Inner check: no duplicates among the ciphertexts this group received.
    std::set<std::string> inner_set;
    bool inner_ok = true;
    for (const auto& inner : inner_for[g]) {
      if (!inner_set.insert(HexEncode(BytesView(inner))).second) {
        inner_ok = false;
        break;
      }
    }
    report.inner_ok = inner_ok;
    result.traps_seen += report.num_traps;
    result.inner_seen += report.num_inner;
    reports.push_back(report);
  }

  auto round_secret = trustees_->MaybeReleaseKey(reports);
  if (!round_secret.has_value()) {
    result.aborted = true;
    result.abort_reason =
        "trustees refused to release the round key (trap check failed)";
    return result;
  }

  for (uint32_t g = 0; g < G; g++) {
    for (const auto& inner : inner_for[g]) {
      auto msg = KemDecrypt(*round_secret, BytesView(inner));
      if (msg.has_value()) {
        result.plaintexts.push_back(*msg);
      }
    }
  }
  return result;
}

Scalar Round::GroupSecret(uint32_t gid) const {
  const DkgResult& dkg = groups_[gid]->dkg();
  std::vector<Share> shares;
  shares.reserve(dkg.pub.params.threshold);
  for (size_t i = 0; i < dkg.pub.params.threshold; i++) {
    shares.push_back(Share{dkg.keys[i].index, dkg.keys[i].share});
  }
  auto secret = ShamirReconstruct(shares, dkg.pub.params.threshold);
  ATOM_CHECK(secret.has_value());
  return *secret;
}

BlameResult Round::BlameEntryGroup(uint32_t gid) {
  ATOM_CHECK(gid < groups_.size());
  // Once a run has happened, blame always targets the batch that ran —
  // submissions accepted afterwards must not mask a disrupted round's
  // cheater. Before the first run, inspect the pending batch.
  const std::vector<TrapSubmission>& subs =
      last_run_submissions_.empty() ? trap_submissions_[gid]
                                    : last_run_submissions_[gid];
  return RunBlame(GroupSecret(gid), subs, layout_);
}

void Round::EscrowAllShares(Rng& rng) {
  const size_t k = config_.params.group_size;
  const size_t buddy_threshold = k / 2 + 1;
  escrows_.assign(groups_.size(), {});
  for (uint32_t g = 0; g < groups_.size(); g++) {
    escrows_[g].reserve(k);
    for (const DkgServerKey& key : groups_[g]->dkg().keys) {
      // Buddy group = next group in gid order (the paper suggests one or
      // more buddies per group; one suffices for recovery coverage).
      escrows_[g].push_back(EscrowShare(key, k, buddy_threshold, rng));
    }
  }
}

bool Round::RecoverServer(uint32_t gid, uint32_t server_index) {
  if (escrows_.empty() || gid >= groups_.size() || server_index == 0 ||
      server_index > config_.params.group_size) {
    return false;
  }
  const BuddyEscrow& escrow = escrows_[gid][server_index - 1];
  // Any buddy_threshold sub-shares reconstruct; take the first ones (in a
  // deployment: whichever buddy servers respond).
  auto recovered = RecoverShare(
      groups_[gid]->dkg().pub, server_index,
      std::span(escrow.sub_shares).subspan(0, escrow.threshold),
      escrow.threshold);
  if (!recovered.has_value()) {
    return false;
  }
  groups_[gid]->Restore(*recovered);
  return true;
}

}  // namespace atom
