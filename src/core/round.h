// One full Atom protocol round, run in process with real cryptography.
//
// The Round owns the network for one epoch: the group layout (sampled from
// the beacon), one DKG per group, the trustees (trap variant), the mixing
// topology, and the submission intake. Intake is sharded per entry group —
// each group's servers verify and accept submissions behind their own lock,
// so many client threads submit concurrently — and every call to
// TakeEngineRound drains the accepted batch (ciphertexts, trap commitments,
// raw submissions for blame) into one self-contained EngineRound, so a
// single key epoch serves a whole pipeline of engine rounds. Tests,
// examples, and the single-group benchmarks all drive the protocol through
// this class; the discrete-event simulator (src/sim) replays the identical
// control flow against a cost model for network-scale experiments.
#ifndef SRC_CORE_ROUND_H_
#define SRC_CORE_ROUND_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/core/blame.h"
#include "src/core/client.h"
#include "src/core/engine.h"
#include "src/core/group_runtime.h"
#include "src/core/trustees.h"
#include "src/crypto/schnorr.h"
#include "src/topology/groups.h"
#include "src/topology/permnet.h"
#include "src/util/mpsc.h"

namespace atom {

struct RoundConfig {
  AtomParams params;
  Bytes beacon;        // public randomness for this round's group formation
  size_t workers = 1;  // intra-server parallelism
  // Bound on each entry-group shard's streaming-intake ring (rounded up to
  // a power of two). A full ring fails StreamSubmit — the backpressure
  // signal a gateway turns into withheld client credit.
  size_t stream_queue_capacity = 4096;
};

// One queued streaming submission. Exactly one of nizk/trap is populated,
// matching the round's variant; `cookie` is an opaque caller correlation
// tag handed back by the pump's completion callback (a gateway maps it to
// the connection + sequence number awaiting the verdict).
struct StreamedSubmission {
  NizkSubmission nizk;
  TrapSubmission trap;
  uint64_t cookie = 0;
  // Optional client signature over the submission bytes (the gateway fills
  // these from the wire frame and the registry key for the connection).
  // The pump batch-verifies every signed item in a drained span with one
  // Pippenger MSM (SchnorrVerifyBatch) before any proof work runs; a bad
  // signature rejects the item without touching its proofs.
  bool has_sig = false;
  Point sig_pk;
  SchnorrSignature sig;
  Bytes sig_msg;
};

// RoundResult lives in src/core/exit.h (shared with the engine-native exit
// phase, which produces it inside RoundEngine::RunToCompletion).

class Round {
 public:
  // Forms groups from the beacon, runs every group's DKG and the trustee
  // DKG. Deterministic given (config, rng state).
  Round(RoundConfig config, Rng& rng);

  size_t NumGroups() const { return groups_.size(); }
  Variant variant() const { return config_.params.variant; }
  const Point& EntryPk(uint32_t gid) const;
  const Point& TrusteePk() const;
  const MessageLayout& layout() const { return layout_; }
  GroupRuntime& group(uint32_t gid) { return *groups_[gid]; }

  // Optional registered-client check, wired by a deployment that holds a
  // client registry (src/net/registry.h): when set, a submission carrying
  // a non-anonymous client id the predicate rejects fails intake even if
  // its proofs verify. Set during setup, before any submission arrives
  // (the hook is read without synchronization on the hot path).
  void SetClientAuth(std::function<bool(uint64_t client_id)> fn);

  // Submission intake, sharded per entry group: proof verification runs
  // outside any lock, acceptance appends under the target group's shard
  // lock, so submissions from many threads are safe and never lost or
  // double-counted. A submission is rejected (returns false) when its
  // proofs fail, its entry group is out of range, or another accepted
  // submission to the same entry group in the current intake epoch
  // already carried the same non-anonymous client id (duplicate ids would
  // otherwise double-count and poison the exit checks). Ids are scoped to
  // the entry group, matching the paper's model of users registered with
  // one group — the submission proof binds the gid, so an id cannot
  // wander between groups unnoticed by its own group's servers.
  bool SubmitNizk(const NizkSubmission& submission);
  bool SubmitTrap(const TrapSubmission& submission);

  // Batch intake: verifies many submissions concurrently on the shared
  // ThreadPool (`workers` bounds the fan-out), then accepts the valid ones
  // in order. accepted[i] mirrors what SubmitX(submissions[i]) would have
  // returned; acceptance order is deterministic (submission order), which
  // concurrent single submissions do not guarantee.
  std::vector<bool> SubmitNizkBatch(std::span<const NizkSubmission> subs,
                                    size_t workers);
  std::vector<bool> SubmitTrapBatch(std::span<const TrapSubmission> subs,
                                    size_t workers);

  // Streaming intake (millions-of-users ingest): each entry-group shard
  // owns a bounded lock-free MPSC ring. Many reader threads StreamSubmit
  // decoded submissions without taking any lock; false means the target
  // shard's ring is full (backpressure) or the entry gid is out of range —
  // nothing was queued either way. Queued submissions are NOT yet part of
  // the intake epoch: a pump must drain them through verification.
  bool StreamSubmit(StreamedSubmission item);

  // Drains everything currently queued on shard `gid` through the usual
  // pool-verified batch acceptance (SubmitNizkBatch/SubmitTrapBatch
  // semantics, including duplicate-id rejection), invoking `done` once per
  // drained submission in queue order. Returns the number drained. SINGLE
  // CONSUMER per shard: concurrent PumpStream calls for the same gid are
  // undefined; gateways serialize pumps on a per-shard executor, which is
  // exactly what lets verification of span k overlap the socket reads
  // producing span k+1.
  size_t PumpStream(uint32_t gid, size_t workers,
                    const std::function<void(uint64_t cookie, bool accepted)>&
                        done);

  // Racy depth estimate of one shard's streaming ring (monitoring).
  size_t StreamDepth(uint32_t gid) const;

  // Optional fault injection for one (layer, group).
  struct Evil {
    size_t layer = 0;
    uint32_t gid = 0;
    MaliciousAction action;
  };

  // Runs T mixing iterations plus the exit phase. A thin wrapper: it
  // drains the intake epoch into one engine round (TakeEngineRound) and
  // blocks on RoundEngine::RunToCompletion, which executes mixing AND the
  // exit phase (trap sorting, trustee decision, decryption) as hop tasks
  // and produces the RoundResult. Every run — completed or aborted —
  // consumes the accepted submissions, so submit again before running
  // another round. After an aborted trap round, BlameEntryGroup identifies
  // the culprits; note §4.6 blame reveals the entry key, so a real
  // deployment re-keys with a fresh Round afterwards.
  RoundResult Run(Rng& rng, const Evil* evil = nullptr);

  // Variant with several independent malicious actions (§7 intersection-
  // attack analysis: κ tamperings survive undetected only with
  // probability 2^-κ).
  RoundResult RunWithEvils(Rng& rng, std::span<const Evil> evils);

  // Pipelined drivers' building block: drains the current intake epoch —
  // entry batches, THIS batch's trap commitments, and the raw submissions
  // (kept for blame) — into a self-contained EngineRound that carries an
  // ExitPlan, then starts a fresh epoch. Submit the spec to a RoundEngine
  // (several at once pipeline through the network) and read the
  // RoundResult from EngineRoundResult::round; a fault or trap mismatch in
  // one taken round cannot corrupt another, because each spec owns its
  // commitment set. RunWithEvils is exactly
  // engine.RunToCompletion(TakeEngineRound(evils, rng)).round.
  EngineRound TakeEngineRound(std::span<const Evil> evils, Rng& rng);

  // Mixing-only spec over an arbitrary entry-batch set (one batch per
  // group, moved in; butterfly dummy padding applied here). Does NOT drain
  // the intake epoch and carries no ExitPlan — pair with ExitPhase below.
  EngineRound MakeEngineRound(std::vector<CiphertextBatch> entry,
                              std::span<const Evil> evils, Rng& rng);

  // Legacy synchronous exit phase, applied to the engine's exit batches on
  // the caller's thread. Consumes the current intake epoch (commitments
  // move into the check, submissions into the blame history) exactly like
  // TakeEngineRound; the engine-native path must match it byte for byte
  // (tests/engine_test.cpp's exit-equivalence suite).
  RoundResult ExitPhase(std::vector<CiphertextBatch> exits);

  // Legacy-driver companion to ExitPhase: when a MakeEngineRound spec
  // aborts during mixing, ExitPhase never runs, so the driver must
  // abandon the epoch instead — otherwise its batches, commitments, and
  // client ids leak into the next round and poison the trap check. The
  // submissions still enter the blame history; returns the epoch id for
  // BlameEntryGroup(gid, epoch). (TakeEngineRound drivers never need
  // this: taking the spec already drained the epoch.)
  uint64_t AbandonIntakeEpoch();

  // §4.6: after a disrupted trap round, an entry group reveals its key and
  // identifies malformed submissions. Returns indices into that group's
  // accepted submissions, in acceptance order. The one-argument form
  // inspects the most recently drained intake epoch (submissions accepted
  // afterwards cannot mask a disrupted round's cheater); before the first
  // drain it inspects the pending batch. A pipelined driver with several
  // epochs in flight passes the aborted spec's `intake_epoch` instead —
  // the Round retains the last kBlameHistoryEpochs drained epochs'
  // submissions, so a cheater in round i is still identifiable after
  // rounds i+1, i+2, ... were taken.
  static constexpr size_t kBlameHistoryEpochs = 16;
  BlameResult BlameEntryGroup(uint32_t gid);
  BlameResult BlameEntryGroup(uint32_t gid, uint64_t intake_epoch);

  // Drops one epoch's retained submissions (no-op if already pruned).
  // Blame data only matters for disrupted rounds; a pipelined driver
  // calls this when a round completes cleanly so steady-state retention
  // stays near zero instead of pinning kBlameHistoryEpochs rounds of
  // ciphertexts. Run/RunWithEvils release their epoch automatically on a
  // clean completion.
  void ReleaseBlameEpoch(uint64_t intake_epoch);

  // §4.5 buddy groups: every server escrows its share with the next group
  // (gid+1 mod G), threshold ⌈k/2⌉+1, so a replacement can rebuild any
  // share as long as the buddy group is mostly online. Call once after
  // construction; then RecoverServer() restores a server that failed beyond
  // the h-1 tolerance.
  void EscrowAllShares(Rng& rng);
  bool RecoverServer(uint32_t gid, uint32_t server_index);

 private:
  // One entry group's share of the intake: its accepted batch and (trap
  // variant) the registered trap commitments and raw submissions, plus the
  // client ids seen this epoch. Guarded by its own mutex so groups accept
  // in parallel — the paper's millions-of-users entry path is exactly this
  // per-group partition.
  struct IntakeShard {
    explicit IntakeShard(size_t stream_capacity) : stream(stream_capacity) {}
    std::mutex mu;
    CiphertextBatch batch;
    std::vector<std::array<uint8_t, 32>> commitments;
    std::vector<TrapSubmission> submissions;
    std::set<uint64_t> clients;
    // Streaming side-entrance: pushed lock-free by reader threads, drained
    // by this shard's single pump into the verified state above.
    MpscRing<StreamedSubmission> stream;
  };

  // What one TakeEngineRound/ExitPhase drains out of the shards.
  struct IntakeEpoch {
    uint64_t id = 0;
    std::vector<CiphertextBatch> entry;
    std::vector<std::vector<std::array<uint8_t, 32>>> commitments;
  };

  Scalar GroupSecret(uint32_t gid) const;  // threshold-reconstructed
  bool ClientAllowed(uint64_t client_id) const;
  bool AcceptNizk(const NizkSubmission& submission);
  bool AcceptTrap(const TrapSubmission& submission);
  IntakeEpoch DrainIntake();

  RoundConfig config_;
  MessageLayout layout_;
  std::function<bool(uint64_t)> client_auth_;  // null = no registry wired
  GroupLayout group_layout_;
  std::vector<std::unique_ptr<GroupRuntime>> groups_;
  std::unique_ptr<Trustees> trustees_;  // trap variant only
  std::unique_ptr<Topology> topology_;

  std::vector<std::unique_ptr<IntakeShard>> intake_;
  // Drained epochs' submissions (newest last, pruned to
  // kBlameHistoryEpochs), so blame targets the batch that actually ran —
  // by epoch id for pipelined drivers, newest by default. epoch_mu_
  // guards the book: a driver thread may drain the next epoch while
  // another thread blames an aborted one.
  std::mutex epoch_mu_;
  uint64_t next_epoch_ = 1;
  std::map<uint64_t, std::vector<std::vector<TrapSubmission>>>
      blame_history_;

  // Buddy escrow: escrows_[gid][i] holds group gid's server i+1's share,
  // sub-shared to the buddy group (gid+1 mod G).
  std::vector<std::vector<BuddyEscrow>> escrows_;
};

}  // namespace atom

#endif  // SRC_CORE_ROUND_H_
