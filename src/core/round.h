// One full Atom protocol round, run in process with real cryptography.
//
// The Round owns the network for one epoch: the group layout (sampled from
// the beacon), one DKG per group, the trustees (trap variant), the mixing
// topology, and the exit-phase bookkeeping (trap commitments per entry
// group, trap/inner sorting, trustee reports). Tests, examples, and the
// single-group benchmarks all drive the protocol through this class; the
// discrete-event simulator (src/sim) replays the identical control flow
// against a cost model for network-scale experiments.
#ifndef SRC_CORE_ROUND_H_
#define SRC_CORE_ROUND_H_

#include <map>
#include <memory>
#include <string>

#include "src/core/blame.h"
#include "src/core/client.h"
#include "src/core/engine.h"
#include "src/core/group_runtime.h"
#include "src/core/trustees.h"
#include "src/topology/groups.h"
#include "src/topology/permnet.h"

namespace atom {

struct RoundConfig {
  AtomParams params;
  Bytes beacon;        // public randomness for this round's group formation
  size_t workers = 1;  // intra-server parallelism
};

struct RoundResult {
  bool aborted = false;
  std::string abort_reason;
  // Anonymized application plaintexts (padded length = params.message_len).
  std::vector<Bytes> plaintexts;
  // Trap-variant accounting.
  uint64_t traps_seen = 0;
  uint64_t inner_seen = 0;
};

class Round {
 public:
  // Forms groups from the beacon, runs every group's DKG and the trustee
  // DKG. Deterministic given (config, rng state).
  Round(RoundConfig config, Rng& rng);

  size_t NumGroups() const { return groups_.size(); }
  const Point& EntryPk(uint32_t gid) const;
  const Point& TrusteePk() const;
  const MessageLayout& layout() const { return layout_; }
  GroupRuntime& group(uint32_t gid) { return *groups_[gid]; }

  // Submission intake: every entry-group server verifies the proofs; a
  // submission failing verification is rejected (returns false).
  bool SubmitNizk(const NizkSubmission& submission);
  bool SubmitTrap(const TrapSubmission& submission);

  // Optional fault injection for one (layer, group).
  struct Evil {
    size_t layer = 0;
    uint32_t gid = 0;
    MaliciousAction action;
  };

  // Runs T mixing iterations plus the exit phase. Mixing executes on the
  // dependency-scheduled RoundEngine (src/core/engine.h) over the shared
  // thread pool; this call submits one round and drains it to completion,
  // preserving the old synchronous contract. Every run — completed or
  // aborted — consumes the accepted submissions (ciphertexts move into
  // the engine at the start; trap commitments are consumed with them), so
  // submit again before running another round. After an aborted trap
  // round, BlameEntryGroup identifies the culprits; note §4.6 blame
  // reveals the entry key, so a real deployment re-keys with a fresh
  // Round afterwards.
  RoundResult Run(Rng& rng, const Evil* evil = nullptr);

  // Variant with several independent malicious actions (§7 intersection-
  // attack analysis: κ tamperings survive undetected only with
  // probability 2^-κ).
  RoundResult RunWithEvils(Rng& rng, std::span<const Evil> evils);

  // Building blocks for pipelined execution (bench/bench_pipeline_execution
  // and custom drivers): an EngineRound spec for this network's mixing
  // phase over an arbitrary entry-batch set (one batch per group, moved
  // in; butterfly dummy padding applied here), and the exit phase applied
  // to the engine's exit batches. RunWithEvils is exactly
  // ExitPhase(engine.RunToCompletion(MakeEngineRound(...)).exits).
  EngineRound MakeEngineRound(std::vector<CiphertextBatch> entry,
                              std::span<const Evil> evils, Rng& rng);
  RoundResult ExitPhase(std::vector<CiphertextBatch> exits);

  // §4.6: after a disrupted trap round, an entry group reveals its key and
  // identifies malformed submissions. Returns indices into that group's
  // accepted submissions, in submission order. Inspects the batch of the
  // most recent Run (submissions accepted afterwards cannot mask a
  // disrupted round's cheater); before the first run it inspects the
  // pending batch.
  BlameResult BlameEntryGroup(uint32_t gid);

  // §4.5 buddy groups: every server escrows its share with the next group
  // (gid+1 mod G), threshold ⌈k/2⌉+1, so a replacement can rebuild any
  // share as long as the buddy group is mostly online. Call once after
  // construction; then RecoverServer() restores a server that failed beyond
  // the h-1 tolerance.
  void EscrowAllShares(Rng& rng);
  bool RecoverServer(uint32_t gid, uint32_t server_index);

 private:
  Scalar GroupSecret(uint32_t gid) const;  // threshold-reconstructed

  RoundConfig config_;
  MessageLayout layout_;
  GroupLayout group_layout_;
  std::vector<std::unique_ptr<GroupRuntime>> groups_;
  std::unique_ptr<Trustees> trustees_;  // trap variant only
  std::unique_ptr<Topology> topology_;

  // Per entry group: the accepted input batches and (trap variant) the
  // registered trap commitments and raw submissions (kept for blame). A
  // run consumes the batches and commitments; the submissions move into
  // last_run_submissions_ so blame targets the batch that actually ran.
  std::vector<CiphertextBatch> entry_batches_;
  std::vector<std::vector<std::array<uint8_t, 32>>> trap_commitments_;
  std::vector<std::vector<TrapSubmission>> trap_submissions_;
  std::vector<std::vector<TrapSubmission>> last_run_submissions_;

  // Buddy escrow: escrows_[gid][i] holds group gid's server i+1's share,
  // sub-shared to the buddy group (gid+1 mod G).
  std::vector<std::vector<BuddyEscrow>> escrows_;
};

}  // namespace atom

#endif  // SRC_CORE_ROUND_H_
