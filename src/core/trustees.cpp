#include "src/core/trustees.h"

namespace atom {

Trustees::Trustees(size_t k, size_t threshold, Rng& rng)
    : dkg_(RunDkg(DkgParams{k, threshold}, rng)) {}

std::optional<Scalar> Trustees::MaybeReleaseKey(
    std::span<const GroupReport> reports) const {
  uint64_t traps = 0, inner = 0;
  for (const GroupReport& r : reports) {
    if (!r.traps_ok || !r.inner_ok) {
      return std::nullopt;
    }
    traps += r.num_traps;
    inner += r.num_inner;
  }
  if (traps != inner) {
    return std::nullopt;
  }
  // All clear: each trustee releases its share; any threshold subset
  // reconstructs the round secret.
  std::vector<Share> shares;
  shares.reserve(dkg_.pub.params.threshold);
  for (size_t i = 0; i < dkg_.pub.params.threshold; i++) {
    shares.push_back(Share{dkg_.keys[i].index, dkg_.keys[i].share});
  }
  return ShamirReconstruct(shares, dkg_.pub.params.threshold);
}

}  // namespace atom
