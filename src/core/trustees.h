// The trustee group for the trap variant (§4.4).
//
// Trustees are an extra anytrust group holding a per-round threshold keypair.
// Users encrypt their real messages (IND-CCA2) under the round key. After
// mixing, every group reports whether its trap and inner-ciphertext checks
// passed; the trustees release their key shares — reconstructing the round
// secret — if and only if every report is clean and the global trap count
// equals the inner-ciphertext count. Otherwise the shares are destroyed and
// the round yields nothing.
#ifndef SRC_CORE_TRUSTEES_H_
#define SRC_CORE_TRUSTEES_H_

#include <optional>

#include "src/crypto/dkg.h"

namespace atom {

// What each group reports to the trustees after the exit sorting phase.
struct GroupReport {
  uint32_t gid = 0;
  bool traps_ok = false;   // every commitment matched by exactly one trap
  bool inner_ok = false;   // forwarding correct, no duplicate inner cts
  uint64_t num_traps = 0;
  uint64_t num_inner = 0;
};

class Trustees {
 public:
  // Runs the trustee DKG: k trustees, any `threshold` can reconstruct.
  Trustees(size_t k, size_t threshold, Rng& rng);

  const Point& round_pk() const { return dkg_.pub.group_pk; }
  const DkgPublic& dkg_public() const { return dkg_.pub; }

  // The all-clear decision plus threshold key release. Returns the round
  // secret when every group reported clean checks and counts balance;
  // nullopt means the shares are deleted and the round aborts. Const and
  // state-free, so one trustee group safely serves many pipelined engine
  // rounds concurrently (the engine's exit-finalize tasks call this from
  // pool threads); each engine round is judged only on its own reports
  // and its own commitment set.
  std::optional<Scalar> MaybeReleaseKey(
      std::span<const GroupReport> reports) const;

 private:
  DkgResult dkg_;
};

}  // namespace atom

#endif  // SRC_CORE_TRUSTEES_H_
