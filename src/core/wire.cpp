#include "src/core/wire.h"

#include "src/util/serde.h"

namespace atom {
namespace {

void PutCiphertextVec(ByteWriter& w, const ElGamalCiphertextVec& cts) {
  // Same byte layout as EncodeCiphertextVec: one batched inversion for the
  // whole [r, c, y] point run instead of one per point.
  w.Raw(BytesView(EncodeCiphertextVec(cts)));
}

bool GetCiphertextVec(ByteReader& r, ElGamalCiphertextVec* out) {
  auto n = r.U32();
  if (!n || *n > (1u << 16)) {
    return false;
  }
  out->reserve(*n);
  for (uint32_t i = 0; i < *n; i++) {
    auto raw = r.Raw(ElGamalCiphertext::kEncodedSize);
    if (!raw) {
      return false;
    }
    auto ct = ElGamalCiphertext::Decode(BytesView(*raw));
    if (!ct) {
      return false;
    }
    out->push_back(*ct);
  }
  return true;
}

void PutProofs(ByteWriter& w, const std::vector<EncProof>& proofs) {
  w.U32(static_cast<uint32_t>(proofs.size()));
  for (const auto& proof : proofs) {
    w.Raw(BytesView(proof.Encode()));
  }
}

bool GetProofs(ByteReader& r, std::vector<EncProof>* out) {
  auto n = r.U32();
  if (!n || *n > (1u << 16)) {
    return false;
  }
  out->reserve(*n);
  for (uint32_t i = 0; i < *n; i++) {
    auto raw = r.Raw(EncProof::kEncodedSize);
    if (!raw) {
      return false;
    }
    auto proof = EncProof::Decode(BytesView(*raw));
    if (!proof) {
      return false;
    }
    out->push_back(*proof);
  }
  return true;
}

}  // namespace

Bytes EncodeNizkSubmission(const NizkSubmission& submission) {
  ByteWriter w;
  w.U32(submission.entry_gid);
  PutCiphertextVec(w, submission.ciphertext);
  PutProofs(w, submission.proofs);
  // Format change (not backward compatible): client_id appended last so
  // the fixed prefix offsets (gid, vector counts) keep their positions.
  w.U64(submission.client_id);
  return w.Take();
}

std::optional<NizkSubmission> DecodeNizkSubmission(BytesView bytes) {
  ByteReader r(bytes);
  NizkSubmission out;
  auto gid = r.U32();
  if (!gid || !GetCiphertextVec(r, &out.ciphertext) ||
      !GetProofs(r, &out.proofs)) {
    return std::nullopt;
  }
  auto client = r.U64();
  if (!client || !r.Done()) {
    return std::nullopt;
  }
  out.entry_gid = *gid;
  out.client_id = *client;
  return out;
}

namespace {

void PutBatch(ByteWriter& w, const CiphertextBatch& batch) {
  w.U32(static_cast<uint32_t>(batch.size()));
  for (const auto& vec : batch) {
    PutCiphertextVec(w, vec);
  }
}

bool GetBatch(ByteReader& r, CiphertextBatch* out) {
  auto n = r.U32();
  if (!n || *n > (1u << 22)) {
    return false;
  }
  out->resize(*n);
  for (uint32_t i = 0; i < *n; i++) {
    if (!GetCiphertextVec(r, &(*out)[i])) {
      return false;
    }
  }
  return true;
}

void PutPoints(ByteWriter& w, const std::vector<Point>& points) {
  w.U32(static_cast<uint32_t>(points.size()));
  w.Raw(BytesView(EncodePoints(points)));
}

bool GetPoints(ByteReader& r, std::vector<Point>* out) {
  auto n = r.U32();
  if (!n || *n > (1u << 20)) {
    return false;
  }
  out->reserve(*n);
  for (uint32_t i = 0; i < *n; i++) {
    auto raw = r.Raw(Point::kEncodedSize);
    if (!raw) {
      return false;
    }
    auto p = Point::Decode(BytesView(*raw));
    if (!p) {
      return false;
    }
    out->push_back(*p);
  }
  return true;
}

}  // namespace

Bytes EncodeDkgDealing(const DkgDealing& dealing) {
  ByteWriter w;
  w.U32(dealing.dealer);
  ByteWriter points;
  for (const Point& p : dealing.commitments) {
    points.Raw(BytesView(p.Encode()));
  }
  w.U32(static_cast<uint32_t>(dealing.commitments.size()));
  w.Raw(BytesView(points.bytes()));
  w.U32(static_cast<uint32_t>(dealing.shares.size()));
  for (const Share& share : dealing.shares) {
    w.U32(share.index);
    auto sv = share.value.ToBytes();
    w.Raw(BytesView(sv.data(), sv.size()));
  }
  return w.Take();
}

std::optional<DkgDealing> DecodeDkgDealing(BytesView bytes) {
  ByteReader r(bytes);
  DkgDealing dealing;
  auto dealer = r.U32();
  auto num_commitments = r.U32();
  if (!dealer || !num_commitments || *num_commitments > (1u << 12)) {
    return std::nullopt;
  }
  dealing.dealer = *dealer;
  for (uint32_t i = 0; i < *num_commitments; i++) {
    auto raw = r.Raw(Point::kEncodedSize);
    if (!raw) {
      return std::nullopt;
    }
    auto p = Point::Decode(BytesView(*raw));
    if (!p) {
      return std::nullopt;
    }
    dealing.commitments.push_back(*p);
  }
  auto num_shares = r.U32();
  if (!num_shares || *num_shares > (1u << 12)) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < *num_shares; i++) {
    auto index = r.U32();
    auto raw = r.Raw(32);
    if (!index || !raw) {
      return std::nullopt;
    }
    auto value = Scalar::FromBytes(BytesView(*raw));
    if (!value) {
      return std::nullopt;
    }
    dealing.shares.push_back(Share{*index, *value});
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return dealing;
}

Bytes EncodeDkgComplaint(const DkgComplaint& complaint) {
  ByteWriter w;
  w.U32(complaint.accuser);
  w.U32(complaint.dealer);
  return w.Take();
}

std::optional<DkgComplaint> DecodeDkgComplaint(BytesView bytes) {
  ByteReader r(bytes);
  auto accuser = r.U32();
  auto dealer = r.U32();
  if (!accuser || !dealer || !r.Done()) {
    return std::nullopt;
  }
  return DkgComplaint{*accuser, *dealer};
}

namespace {

// Exact serialized size of EncodeNodeMsg's output, so the hot fan-out
// path reserves once instead of growing the buffer geometrically while
// appending megabytes of ciphertexts. Must mirror EncodeNodeMsg
// field-for-field; `shuffle_proof_size` is the pre-encoded proof length
// (the one sub-encoding whose size is not derivable without encoding).
size_t NodeMsgEncodedSize(const NodeMsg& msg, size_t shuffle_proof_size) {
  auto vec_size = [](const ElGamalCiphertextVec& v) {
    return 4 + v.size() * ElGamalCiphertext::kEncodedSize;
  };
  auto batch_size = [&vec_size](const CiphertextBatch& b) {
    size_t s = 4;
    for (const auto& v : b) {
      s += vec_size(v);
    }
    return s;
  };
  size_t s = 1 + 4 + 4 + 4;  // type, gid, chain_pos, prev_pos
  s += 4 + msg.next_pks.size() * Point::kEncodedSize;
  s += batch_size(msg.batch) + batch_size(msg.prev_batch);
  s += 1 + (msg.shuffle_proof.has_value() ? 4 + shuffle_proof_size : 0);
  s += 4;
  for (const auto& sub : msg.subs) {
    s += batch_size(sub);
  }
  s += 4;
  for (const auto& sub : msg.prev_subs) {
    s += batch_size(sub);
  }
  s += 4 + msg.reenc_proofs.size() * ReEncProof::kEncodedSize;
  s += 4;
  for (const Bytes& b : msg.exit_traps) {
    s += 4 + b.size();
  }
  s += 4;
  for (const Bytes& b : msg.exit_inner) {
    s += 4 + b.size();
  }
  s += 4 + 1 + 1 + 8 + 8;  // report
  s += 4 + msg.abort_reason.size();
  return s;
}

}  // namespace

Bytes EncodeNodeMsg(const NodeMsg& msg) {
  Bytes proof_bytes;
  if (msg.shuffle_proof.has_value()) {
    proof_bytes = msg.shuffle_proof->Encode();
  }
  ByteWriter w(NodeMsgEncodedSize(msg, proof_bytes.size()));
  w.U8(static_cast<uint8_t>(msg.type));
  w.U32(msg.gid);
  w.U32(msg.chain_pos);
  w.U32(msg.prev_pos);
  PutPoints(w, msg.next_pks);
  PutBatch(w, msg.batch);
  PutBatch(w, msg.prev_batch);
  if (msg.shuffle_proof.has_value()) {
    w.U8(1);
    w.Var(BytesView(proof_bytes));
  } else {
    w.U8(0);
  }
  w.U32(static_cast<uint32_t>(msg.subs.size()));
  for (const auto& sub : msg.subs) {
    PutBatch(w, sub);
  }
  w.U32(static_cast<uint32_t>(msg.prev_subs.size()));
  for (const auto& sub : msg.prev_subs) {
    PutBatch(w, sub);
  }
  w.U32(static_cast<uint32_t>(msg.reenc_proofs.size()));
  for (const auto& proof : msg.reenc_proofs) {
    w.Raw(BytesView(proof.Encode()));
  }
  auto put_bytes_vec = [&w](const std::vector<Bytes>& v) {
    w.U32(static_cast<uint32_t>(v.size()));
    for (const Bytes& b : v) {
      w.Var(BytesView(b));
    }
  };
  put_bytes_vec(msg.exit_traps);
  put_bytes_vec(msg.exit_inner);
  w.U32(msg.report.gid);
  w.U8(msg.report.traps_ok ? 1 : 0);
  w.U8(msg.report.inner_ok ? 1 : 0);
  w.U64(msg.report.num_traps);
  w.U64(msg.report.num_inner);
  w.Var(BytesView(ToBytes(msg.abort_reason)));
  return w.Take();
}

std::optional<NodeMsg> DecodeNodeMsg(BytesView bytes) {
  ByteReader r(bytes);
  NodeMsg msg;
  auto type = r.U8();
  if (!type || *type > static_cast<uint8_t>(NodeMsg::Type::kExitPlain)) {
    return std::nullopt;
  }
  msg.type = static_cast<NodeMsg::Type>(*type);
  auto gid = r.U32();
  auto chain_pos = r.U32();
  auto prev_pos = r.U32();
  if (!gid || !chain_pos || !prev_pos) {
    return std::nullopt;
  }
  msg.gid = *gid;
  msg.chain_pos = *chain_pos;
  msg.prev_pos = *prev_pos;
  if (!GetPoints(r, &msg.next_pks) || !GetBatch(r, &msg.batch) ||
      !GetBatch(r, &msg.prev_batch)) {
    return std::nullopt;
  }
  auto has_proof = r.U8();
  if (!has_proof || *has_proof > 1) {
    return std::nullopt;
  }
  if (*has_proof == 1) {
    auto raw = r.Var();
    if (!raw) {
      return std::nullopt;
    }
    auto proof = ShuffleProof::Decode(BytesView(*raw));
    if (!proof) {
      return std::nullopt;
    }
    msg.shuffle_proof = std::move(*proof);
  }
  auto get_batches = [&r](std::vector<CiphertextBatch>* out) -> bool {
    auto n = r.U32();
    if (!n || *n > (1u << 16)) {
      return false;
    }
    out->resize(*n);
    for (uint32_t i = 0; i < *n; i++) {
      if (!GetBatch(r, &(*out)[i])) {
        return false;
      }
    }
    return true;
  };
  if (!get_batches(&msg.subs) || !get_batches(&msg.prev_subs)) {
    return std::nullopt;
  }
  auto num_proofs = r.U32();
  // Same reserve-bounding as the byte vectors below: a proof count the
  // remaining bytes cannot possibly hold is rejected before allocation.
  if (!num_proofs ||
      *num_proofs > r.remaining() / ReEncProof::kEncodedSize) {
    return std::nullopt;
  }
  msg.reenc_proofs.reserve(*num_proofs);
  for (uint32_t i = 0; i < *num_proofs; i++) {
    auto raw = r.Raw(ReEncProof::kEncodedSize);
    if (!raw) {
      return std::nullopt;
    }
    auto proof = ReEncProof::Decode(BytesView(*raw));
    if (!proof) {
      return std::nullopt;
    }
    msg.reenc_proofs.push_back(*proof);
  }
  auto get_bytes_vec = [&r](std::vector<Bytes>* out) -> bool {
    auto n = r.U32();
    // Every entry costs at least its 4-byte length prefix, so a count
    // exceeding remaining/4 cannot be honest — reject it before the
    // reserve, which otherwise lets a kilobyte frame demand a ~100 MB
    // allocation.
    if (!n || *n > r.remaining() / 4) {
      return false;
    }
    out->reserve(*n);
    for (uint32_t i = 0; i < *n; i++) {
      auto b = r.Var();
      if (!b) {
        return false;
      }
      out->push_back(std::move(*b));
    }
    return true;
  };
  if (!get_bytes_vec(&msg.exit_traps) || !get_bytes_vec(&msg.exit_inner)) {
    return std::nullopt;
  }
  auto report_gid = r.U32();
  auto traps_ok = r.U8();
  auto inner_ok = r.U8();
  auto num_traps = r.U64();
  auto num_inner = r.U64();
  if (!report_gid || !traps_ok || *traps_ok > 1 || !inner_ok ||
      *inner_ok > 1 || !num_traps || !num_inner) {
    return std::nullopt;
  }
  msg.report.gid = *report_gid;
  msg.report.traps_ok = *traps_ok == 1;
  msg.report.inner_ok = *inner_ok == 1;
  msg.report.num_traps = *num_traps;
  msg.report.num_inner = *num_inner;
  auto reason = r.Var();
  if (!reason || !r.Done()) {
    return std::nullopt;
  }
  msg.abort_reason.assign(reason->begin(), reason->end());
  return msg;
}

Bytes EncodeEnvelope(const Envelope& envelope) {
  Bytes body = EncodeNodeMsg(envelope.msg);
  ByteWriter w(12 + body.size());
  w.U32(envelope.to_server);
  w.U64(envelope.round_id);
  w.Raw(BytesView(body));
  return w.Take();
}

std::optional<Envelope> DecodeEnvelope(BytesView bytes) {
  ByteReader r(bytes);
  auto to_server = r.U32();
  auto round_id = r.U64();
  if (!to_server || !round_id) {
    return std::nullopt;
  }
  auto msg = DecodeNodeMsg(bytes.subspan(12));
  if (!msg) {
    return std::nullopt;
  }
  return Envelope{*to_server, std::move(*msg), *round_id};
}

Bytes EncodeEnvelopeBundle(const std::vector<Envelope>& envelopes) {
  std::vector<Bytes> bodies;
  bodies.reserve(envelopes.size());
  size_t total = 4;
  for (const Envelope& envelope : envelopes) {
    bodies.push_back(EncodeEnvelope(envelope));
    total += 4 + bodies.back().size();
  }
  ByteWriter w(total);
  w.U32(static_cast<uint32_t>(envelopes.size()));
  for (const Bytes& body : bodies) {
    w.Var(BytesView(body));
  }
  return w.Take();
}

std::optional<std::vector<Envelope>> DecodeEnvelopeBundle(BytesView bytes) {
  ByteReader r(bytes);
  auto count = r.U32();
  // Every entry costs at least its 4-byte length prefix: a count above
  // remaining()/4 is lying about the payload, so reject it before the
  // reserve. Empty bundles are never sent and never accepted.
  if (!count || *count == 0 || *count > r.remaining() / 4) {
    return std::nullopt;
  }
  std::vector<Envelope> out;
  out.reserve(*count);
  for (uint32_t i = 0; i < *count; i++) {
    auto raw = r.Var();
    if (!raw) {
      return std::nullopt;
    }
    auto envelope = DecodeEnvelope(BytesView(*raw));
    if (!envelope) {
      return std::nullopt;
    }
    out.push_back(std::move(*envelope));
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return out;
}

Bytes EncodeTrapSubmission(const TrapSubmission& submission) {
  ByteWriter w;
  w.U32(submission.entry_gid);
  PutCiphertextVec(w, submission.first);
  PutProofs(w, submission.first_proofs);
  PutCiphertextVec(w, submission.second);
  PutProofs(w, submission.second_proofs);
  w.Raw(BytesView(submission.trap_commitment.data(),
                  submission.trap_commitment.size()));
  // Format change (not backward compatible): client_id appended last so
  // the fixed prefix offsets (gid, vector counts) keep their positions.
  w.U64(submission.client_id);
  return w.Take();
}

std::optional<TrapSubmission> DecodeTrapSubmission(BytesView bytes) {
  ByteReader r(bytes);
  TrapSubmission out;
  auto gid = r.U32();
  if (!gid || !GetCiphertextVec(r, &out.first) ||
      !GetProofs(r, &out.first_proofs) ||
      !GetCiphertextVec(r, &out.second) ||
      !GetProofs(r, &out.second_proofs)) {
    return std::nullopt;
  }
  auto commitment = r.Raw(32);
  auto client = r.U64();
  if (!commitment || !client || !r.Done()) {
    return std::nullopt;
  }
  out.entry_gid = *gid;
  out.client_id = *client;
  std::copy(commitment->begin(), commitment->end(),
            out.trap_commitment.begin());
  return out;
}

}  // namespace atom
