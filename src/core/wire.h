// Wire encodings for client-to-server protocol messages. Everything a user
// uploads to its entry group serializes through these functions; decoding
// validates structure (point/scalar well-formedness comes from the
// underlying Decode routines) so a malformed upload is rejected before any
// proof verification work.
#ifndef SRC_CORE_WIRE_H_
#define SRC_CORE_WIRE_H_

#include <optional>

#include "src/core/client.h"
#include "src/core/node.h"

namespace atom {

Bytes EncodeNizkSubmission(const NizkSubmission& submission);
std::optional<NizkSubmission> DecodeNizkSubmission(BytesView bytes);

Bytes EncodeTrapSubmission(const TrapSubmission& submission);
std::optional<TrapSubmission> DecodeTrapSubmission(BytesView bytes);

// Inter-server protocol envelopes (the node runtime's messages): what a
// network transport puts on the wire between Atom servers (src/net/).
Bytes EncodeNodeMsg(const NodeMsg& msg);
std::optional<NodeMsg> DecodeNodeMsg(BytesView bytes);

// A routed envelope: destination server id + message. This is the payload
// of the TCP transport's encrypted kEnvelope frames; decoding applies the
// same length caps as DecodeNodeMsg, so an oversize or truncated frame is
// rejected before any crypto work.
Bytes EncodeEnvelope(const Envelope& envelope);
std::optional<Envelope> DecodeEnvelope(BytesView bytes);

// A multi-envelope frame: every envelope one sender owes one peer for one
// hop travels as a single sealed record instead of one frame per
// sub-batch (LinkMsg::kEnvelopeBundle). Layout: u32 count, then count
// length-prefixed EncodeEnvelope bodies. Decoding caps the declared count
// against the bytes actually present before reserving, so an inflated
// count word cannot force a large allocation.
Bytes EncodeEnvelopeBundle(const std::vector<Envelope>& envelopes);
std::optional<std::vector<Envelope>> DecodeEnvelopeBundle(BytesView bytes);

// DKG round-1/round-2 messages (group setup gossip).
Bytes EncodeDkgDealing(const DkgDealing& dealing);
std::optional<DkgDealing> DecodeDkgDealing(BytesView bytes);
Bytes EncodeDkgComplaint(const DkgComplaint& complaint);
std::optional<DkgComplaint> DecodeDkgComplaint(BytesView bytes);

}  // namespace atom

#endif  // SRC_CORE_WIRE_H_
