// Wire encodings for client-to-server protocol messages. Everything a user
// uploads to its entry group serializes through these functions; decoding
// validates structure (point/scalar well-formedness comes from the
// underlying Decode routines) so a malformed upload is rejected before any
// proof verification work.
#ifndef SRC_CORE_WIRE_H_
#define SRC_CORE_WIRE_H_

#include <optional>

#include "src/core/client.h"
#include "src/core/node.h"

namespace atom {

Bytes EncodeNizkSubmission(const NizkSubmission& submission);
std::optional<NizkSubmission> DecodeNizkSubmission(BytesView bytes);

Bytes EncodeTrapSubmission(const TrapSubmission& submission);
std::optional<TrapSubmission> DecodeTrapSubmission(BytesView bytes);

// Inter-server protocol envelopes (the node runtime's messages): what a
// network transport puts on the wire between Atom servers (src/net/).
Bytes EncodeNodeMsg(const NodeMsg& msg);
std::optional<NodeMsg> DecodeNodeMsg(BytesView bytes);

// A routed envelope: destination server id + message. This is the payload
// of the TCP transport's encrypted kEnvelope frames; decoding applies the
// same length caps as DecodeNodeMsg, so an oversize or truncated frame is
// rejected before any crypto work.
Bytes EncodeEnvelope(const Envelope& envelope);
std::optional<Envelope> DecodeEnvelope(BytesView bytes);

// DKG round-1/round-2 messages (group setup gossip).
Bytes EncodeDkgDealing(const DkgDealing& dealing);
std::optional<DkgDealing> DecodeDkgDealing(BytesView bytes);
Bytes EncodeDkgComplaint(const DkgComplaint& complaint);
std::optional<DkgComplaint> DecodeDkgComplaint(BytesView bytes);

}  // namespace atom

#endif  // SRC_CORE_WIRE_H_
