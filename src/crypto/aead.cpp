#include "src/crypto/aead.h"

#include <cstring>

#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"
#include "src/util/chacha_core.h"

namespace atom {
namespace {

// Derives the one-time Poly1305 key: first 32 bytes of ChaCha20 block 0.
void DeriveMacKey(const uint8_t key[32], const uint8_t nonce[12],
                  uint8_t mac_key[32]) {
  uint8_t block[64];
  ChaCha20Block(key, 0, nonce, block);
  std::memcpy(mac_key, block, 32);
}

// Builds the RFC 8439 MAC input: aad || pad || ct || pad || len(aad) || len(ct).
Bytes MacInput(BytesView aad, BytesView ct) {
  Bytes mac_data;
  mac_data.reserve(aad.size() + ct.size() + 32);
  auto pad16 = [&mac_data] {
    while (mac_data.size() % 16 != 0) {
      mac_data.push_back(0);
    }
  };
  mac_data.insert(mac_data.end(), aad.begin(), aad.end());
  pad16();
  mac_data.insert(mac_data.end(), ct.begin(), ct.end());
  pad16();
  auto append_le64 = [&mac_data](uint64_t v) {
    for (int i = 0; i < 8; i++) {
      mac_data.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  append_le64(aad.size());
  append_le64(ct.size());
  return mac_data;
}

}  // namespace

Bytes AeadSeal(const uint8_t key[kAeadKeySize],
               const uint8_t nonce[kAeadNonceSize], BytesView aad,
               BytesView plaintext) {
  Bytes out(plaintext.begin(), plaintext.end());
  ChaCha20Xor(key, nonce, 1, out.data(), out.size());

  uint8_t mac_key[32];
  DeriveMacKey(key, nonce, mac_key);
  Bytes mac_data = MacInput(aad, BytesView(out));
  auto tag = Poly1305Tag(mac_key, BytesView(mac_data));
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<Bytes> AeadOpen(const uint8_t key[kAeadKeySize],
                              const uint8_t nonce[kAeadNonceSize],
                              BytesView aad, BytesView sealed) {
  if (sealed.size() < kAeadTagSize) {
    return std::nullopt;
  }
  BytesView ct = sealed.subspan(0, sealed.size() - kAeadTagSize);
  BytesView tag = sealed.subspan(sealed.size() - kAeadTagSize);

  uint8_t mac_key[32];
  DeriveMacKey(key, nonce, mac_key);
  Bytes mac_data = MacInput(aad, ct);
  auto expect = Poly1305Tag(mac_key, BytesView(mac_data));
  if (!ConstantTimeEqual(BytesView(expect), tag)) {
    return std::nullopt;
  }

  Bytes out(ct.begin(), ct.end());
  ChaCha20Xor(key, nonce, 1, out.data(), out.size());
  return out;
}

}  // namespace atom
