// ChaCha20-Poly1305 AEAD (RFC 8439). This is the authenticated symmetric
// scheme "AEnc"/"ADec" used by Atom's IND-CCA2 hybrid encryption (Appendix A;
// the paper uses NaCl's secretbox, same construction family).
#ifndef SRC_CRYPTO_AEAD_H_
#define SRC_CRYPTO_AEAD_H_

#include <optional>

#include "src/util/bytes.h"

namespace atom {

inline constexpr size_t kAeadKeySize = 32;
inline constexpr size_t kAeadNonceSize = 12;
inline constexpr size_t kAeadTagSize = 16;

// Encrypts `plaintext` with additional data `aad`. Output layout:
// ciphertext || 16-byte tag.
Bytes AeadSeal(const uint8_t key[kAeadKeySize],
               const uint8_t nonce[kAeadNonceSize], BytesView aad,
               BytesView plaintext);

// Verifies and decrypts; returns std::nullopt on authentication failure.
std::optional<Bytes> AeadOpen(const uint8_t key[kAeadKeySize],
                              const uint8_t nonce[kAeadNonceSize],
                              BytesView aad, BytesView sealed);

}  // namespace atom

#endif  // SRC_CRYPTO_AEAD_H_
