#include "src/crypto/chacha20.h"

#include <algorithm>

#include "src/util/chacha_core.h"

namespace atom {

void ChaCha20Xor(const uint8_t key[32], const uint8_t nonce[12],
                 uint32_t counter, uint8_t* data, size_t len) {
  uint8_t block[64];
  size_t off = 0;
  while (off < len) {
    ChaCha20Block(key, counter++, nonce, block);
    size_t take = std::min<size_t>(64, len - off);
    for (size_t i = 0; i < take; i++) {
      data[off + i] ^= block[i];
    }
    off += take;
  }
}

}  // namespace atom
