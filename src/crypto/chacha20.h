// ChaCha20 stream cipher (RFC 8439), built on the shared block function.
#ifndef SRC_CRYPTO_CHACHA20_H_
#define SRC_CRYPTO_CHACHA20_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace atom {

// XORs `data` with the ChaCha20 keystream for (key, nonce) starting at block
// `counter`, in place. Encrypt and decrypt are the same operation.
void ChaCha20Xor(const uint8_t key[32], const uint8_t nonce[12],
                 uint32_t counter, uint8_t* data, size_t len);

}  // namespace atom

#endif  // SRC_CRYPTO_CHACHA20_H_
