#include "src/crypto/dkg.h"

#include <algorithm>
#include <set>

namespace atom {

DkgDealing MakeDealing(uint32_t dealer, const DkgParams& params, Rng& rng,
                       uint32_t corrupt_share_for) {
  ATOM_CHECK(params.threshold >= 1 && params.threshold <= params.k);
  Scalar secret = Scalar::Random(rng);
  FeldmanDealing feldman =
      FeldmanDeal(secret, params.threshold, params.k, rng);
  DkgDealing out;
  out.dealer = dealer;
  out.commitments = std::move(feldman.commitments);
  out.shares = std::move(feldman.shares);
  if (corrupt_share_for != 0) {
    ATOM_CHECK(corrupt_share_for <= params.k);
    Share& victim = out.shares[corrupt_share_for - 1];
    victim.value = victim.value + Scalar::One();
  }
  return out;
}

std::vector<DkgComplaint> VerifyDealings(
    uint32_t participant, const DkgParams& params,
    std::span<const DkgDealing> dealings) {
  std::vector<DkgComplaint> complaints;
  for (const DkgDealing& dealing : dealings) {
    if (dealing.commitments.size() != params.threshold ||
        dealing.shares.size() != params.k) {
      complaints.push_back(DkgComplaint{participant, dealing.dealer});
      continue;
    }
    const Share& mine = dealing.shares[participant - 1];
    if (mine.index != participant ||
        !FeldmanVerifyShare(dealing.commitments, mine)) {
      complaints.push_back(DkgComplaint{participant, dealing.dealer});
    }
  }
  return complaints;
}

DkgResult AggregateDkg(const DkgParams& params,
                       std::span<const DkgDealing> dealings,
                       std::span<const DkgComplaint> complaints) {
  std::set<uint32_t> bad;
  for (const DkgComplaint& c : complaints) {
    bad.insert(c.dealer);
  }

  DkgResult result;
  result.pub.params = params;
  result.pub.group_pk = Point::Infinity();
  result.pub.disqualified.assign(bad.begin(), bad.end());
  result.pub.share_pks.assign(params.k, Point::Infinity());
  result.keys.resize(params.k);
  for (uint32_t i = 1; i <= params.k; i++) {
    result.keys[i - 1].index = i;
    result.keys[i - 1].share = Scalar::Zero();
  }

  size_t qualified = 0;
  for (const DkgDealing& dealing : dealings) {
    if (bad.contains(dealing.dealer)) {
      continue;
    }
    qualified++;
    result.pub.group_pk =
        result.pub.group_pk + FeldmanPublicKey(dealing.commitments);
    for (uint32_t i = 1; i <= params.k; i++) {
      result.keys[i - 1].share =
          result.keys[i - 1].share + dealing.shares[i - 1].value;
      result.pub.share_pks[i - 1] =
          result.pub.share_pks[i - 1] +
          FeldmanSharePublic(dealing.commitments, i);
    }
  }
  // An anytrust group always contains at least one honest dealer, so at
  // least one dealing must survive.
  ATOM_CHECK_MSG(qualified > 0, "all DKG dealings disqualified");
  return result;
}

DkgResult RunDkg(const DkgParams& params, Rng& rng,
                 std::span<const uint32_t> cheating_dealers) {
  std::vector<DkgDealing> dealings;
  dealings.reserve(params.k);
  for (uint32_t d = 1; d <= params.k; d++) {
    bool cheats = std::find(cheating_dealers.begin(), cheating_dealers.end(),
                            d) != cheating_dealers.end();
    // A cheating dealer corrupts the share for its successor participant.
    uint32_t victim = cheats ? (d % params.k) + 1 : 0;
    dealings.push_back(MakeDealing(d, params, rng, victim));
  }
  std::vector<DkgComplaint> complaints;
  for (uint32_t p = 1; p <= params.k; p++) {
    auto mine = VerifyDealings(p, params, dealings);
    complaints.insert(complaints.end(), mine.begin(), mine.end());
  }
  return AggregateDkg(params, dealings, complaints);
}

}  // namespace atom
