// Dealer-less distributed key generation (DVSS, §4.5).
//
// The paper uses the Stinson–Strobl protocol [67] to generate each group's
// threshold ElGamal key without a trusted dealer. We implement the
// joint-Feldman construction (same family, same message complexity): every
// participant deals a random secret with Feldman VSS; dealings that fail
// verification are disqualified by complaint; the group key is the sum of
// the qualified dealers' A_0 commitments, and each participant's share of
// the group secret is the sum of the shares it received from qualified
// dealers. The resulting shares are a (threshold, k) Shamir sharing of the
// group secret, which is what the threshold ReEnc path (src/crypto/
// threshold.h) consumes.
//
// The protocol is expressed as explicit per-participant states and message
// rounds so the in-process driver, the tests (including cheating dealers),
// and the discrete-event simulator all exercise the same logic.
#ifndef SRC_CRYPTO_DKG_H_
#define SRC_CRYPTO_DKG_H_

#include <vector>

#include "src/crypto/shamir.h"

namespace atom {

struct DkgParams {
  size_t k = 0;          // participants
  size_t threshold = 0;  // shares needed to use the key: k - (h - 1) in Atom
};

// Round-1 broadcast from one dealer: Feldman commitments (public) plus one
// encrypted share per recipient (modelled as direct delivery here).
struct DkgDealing {
  uint32_t dealer = 0;  // 1-based participant index
  std::vector<Point> commitments;
  std::vector<Share> shares;  // shares[i] destined for participant i+1
};

// Round-2 complaint: `accuser` could not verify the share from `dealer`.
struct DkgComplaint {
  uint32_t accuser = 0;
  uint32_t dealer = 0;
};

// Final per-participant private output.
struct DkgServerKey {
  uint32_t index = 0;  // 1-based
  Scalar share;        // share of the group secret at x = index
};

// Public output agreed by all participants.
struct DkgPublic {
  DkgParams params;
  Point group_pk;
  // Verification key for each participant's share: X_i = x_i·G, derivable
  // from the qualified dealings. Used to verify ReEncProofs in the threshold
  // setting and to check buddy-group recovery.
  std::vector<Point> share_pks;  // share_pks[i] for participant i+1
  std::vector<uint32_t> disqualified;  // dealers removed by complaint
};

struct DkgResult {
  DkgPublic pub;
  std::vector<DkgServerKey> keys;  // keys[i] for participant i+1
};

// One participant's dealing (round 1). If `corrupt_share_for` is nonzero,
// the share destined for that participant index is corrupted — the honest
// participant will complain and the dealer is disqualified (used by tests
// and failure-injection benches).
DkgDealing MakeDealing(uint32_t dealer, const DkgParams& params, Rng& rng,
                       uint32_t corrupt_share_for = 0);

// Verifies the shares addressed to `participant` in every dealing and
// returns complaints against dealers whose share fails Feldman verification.
std::vector<DkgComplaint> VerifyDealings(
    uint32_t participant, const DkgParams& params,
    std::span<const DkgDealing> dealings);

// Aggregates qualified dealings into the group key and per-participant
// shares. Dealers named in any complaint are disqualified (with Feldman
// commitments public, a complaint is publicly checkable; we model the
// honest-majority outcome where cheaters are removed).
DkgResult AggregateDkg(const DkgParams& params,
                       std::span<const DkgDealing> dealings,
                       std::span<const DkgComplaint> complaints);

// Convenience driver: runs the full protocol among k honest participants
// (plus optional cheating dealers) in process.
DkgResult RunDkg(const DkgParams& params, Rng& rng,
                 std::span<const uint32_t> cheating_dealers = {});

}  // namespace atom

#endif  // SRC_CRYPTO_DKG_H_
