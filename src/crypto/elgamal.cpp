#include "src/crypto/elgamal.h"

#include "src/util/serde.h"

namespace atom {

ElGamalKeypair ElGamalKeyGen(Rng& rng) {
  ElGamalKeypair kp;
  kp.sk = Scalar::Random(rng);
  kp.pk = Point::BaseMul(kp.sk);
  return kp;
}

Bytes ElGamalCiphertext::Encode() const {
  Bytes out;
  out.reserve(kEncodedSize);
  for (const Point* p : {&r, &c, &y}) {
    Bytes enc = p->Encode();
    out.insert(out.end(), enc.begin(), enc.end());
  }
  return out;
}

std::optional<ElGamalCiphertext> ElGamalCiphertext::Decode(BytesView bytes) {
  if (bytes.size() != kEncodedSize) {
    return std::nullopt;
  }
  ElGamalCiphertext ct;
  Point* fields[3] = {&ct.r, &ct.c, &ct.y};
  for (int i = 0; i < 3; i++) {
    auto p = Point::Decode(
        bytes.subspan(static_cast<size_t>(i) * Point::kEncodedSize,
                      Point::kEncodedSize));
    if (!p.has_value()) {
      return std::nullopt;
    }
    *fields[i] = *p;
  }
  return ct;
}

ElGamalCiphertext ElGamalEncrypt(const Point& pk, const Point& m, Rng& rng,
                                 Scalar* randomness_out) {
  Scalar r = Scalar::Random(rng);
  if (randomness_out != nullptr) {
    *randomness_out = r;
  }
  ElGamalCiphertext ct;
  ct.r = Point::BaseMul(r);
  ct.c = m + pk.Mul(r);
  ct.y = Point::Infinity();
  return ct;
}

ElGamalCiphertext ElGamalEncrypt(const FixedBaseTable& pk, const Point& m,
                                 Rng& rng, Scalar* randomness_out) {
  Scalar r = Scalar::Random(rng);
  if (randomness_out != nullptr) {
    *randomness_out = r;
  }
  ElGamalCiphertext ct;
  ct.r = Point::BaseMul(r);
  ct.c = m + pk.Mul(r);
  ct.y = Point::Infinity();
  return ct;
}

std::optional<Point> ElGamalDecrypt(const Scalar& sk,
                                    const ElGamalCiphertext& ct) {
  if (!ct.YIsNull()) {
    return std::nullopt;
  }
  return ct.c - ct.r.Mul(sk);
}

std::optional<ElGamalCiphertext> ElGamalRerandomize(
    const Point& pk, const ElGamalCiphertext& ct, Rng& rng,
    Scalar* randomness_out) {
  if (!ct.YIsNull()) {
    return std::nullopt;
  }
  Scalar r = Scalar::Random(rng);
  if (randomness_out != nullptr) {
    *randomness_out = r;
  }
  ElGamalCiphertext out;
  out.r = ct.r + Point::BaseMul(r);
  out.c = ct.c + pk.Mul(r);
  out.y = Point::Infinity();
  return out;
}

std::optional<ElGamalCiphertext> ElGamalRerandomize(
    const FixedBaseTable& pk, const ElGamalCiphertext& ct, Rng& rng,
    Scalar* randomness_out) {
  if (!ct.YIsNull()) {
    return std::nullopt;
  }
  Scalar r = Scalar::Random(rng);
  if (randomness_out != nullptr) {
    *randomness_out = r;
  }
  ElGamalCiphertext out;
  out.r = ct.r + Point::BaseMul(r);
  out.c = ct.c + pk.Mul(r);
  out.y = Point::Infinity();
  return out;
}

ElGamalCiphertext ElGamalReEnc(const Scalar& sk, const Point* next_pk,
                               const ElGamalCiphertext& ct, Rng& rng,
                               Scalar* randomness_out) {
  ElGamalCiphertext out = ct;
  if (out.YIsNull()) {
    out.y = out.r;
    out.r = Point::Infinity();
  }
  // Strip this server's layer against Y.
  out.c = out.c - out.y.Mul(sk);
  // Rewrap toward the next group's key.
  if (next_pk != nullptr) {
    Scalar r = Scalar::Random(rng);
    if (randomness_out != nullptr) {
      *randomness_out = r;
    }
    out.r = out.r + Point::BaseMul(r);
    out.c = out.c + next_pk->Mul(r);
  } else if (randomness_out != nullptr) {
    *randomness_out = Scalar::Zero();
  }
  return out;
}

ElGamalCiphertext ElGamalReEnc(const Scalar& sk,
                               const FixedBaseTable& next_pk,
                               const ElGamalCiphertext& ct, Rng& rng,
                               Scalar* randomness_out) {
  ElGamalCiphertext out = ct;
  if (out.YIsNull()) {
    out.y = out.r;
    out.r = Point::Infinity();
  }
  out.c = out.c - out.y.Mul(sk);
  Scalar r = Scalar::Random(rng);
  if (randomness_out != nullptr) {
    *randomness_out = r;
  }
  out.r = out.r + Point::BaseMul(r);
  out.c = out.c + next_pk.Mul(r);
  return out;
}

ElGamalCiphertext ElGamalFinalizeHop(const ElGamalCiphertext& ct) {
  ElGamalCiphertext out = ct;
  out.y = Point::Infinity();
  return out;
}

ElGamalCiphertextVec ElGamalEncryptVec(const Point& pk,
                                       std::span<const Point> ms, Rng& rng,
                                       std::vector<Scalar>* randomness_out) {
  ElGamalCiphertextVec out;
  out.reserve(ms.size());
  if (randomness_out != nullptr) {
    randomness_out->clear();
    randomness_out->reserve(ms.size());
  }
  for (const Point& m : ms) {
    Scalar r;
    out.push_back(ElGamalEncrypt(pk, m, rng, &r));
    if (randomness_out != nullptr) {
      randomness_out->push_back(r);
    }
  }
  return out;
}

ElGamalCiphertextVec ElGamalEncryptVec(const FixedBaseTable& pk,
                                       std::span<const Point> ms, Rng& rng,
                                       std::vector<Scalar>* randomness_out) {
  ElGamalCiphertextVec out;
  out.reserve(ms.size());
  if (randomness_out != nullptr) {
    randomness_out->clear();
    randomness_out->reserve(ms.size());
  }
  for (const Point& m : ms) {
    Scalar r;
    out.push_back(ElGamalEncrypt(pk, m, rng, &r));
    if (randomness_out != nullptr) {
      randomness_out->push_back(r);
    }
  }
  return out;
}

std::optional<std::vector<Point>> ElGamalDecryptVec(
    const Scalar& sk, const ElGamalCiphertextVec& cts) {
  std::vector<Point> out;
  out.reserve(cts.size());
  for (const auto& ct : cts) {
    auto m = ElGamalDecrypt(sk, ct);
    if (!m.has_value()) {
      return std::nullopt;
    }
    out.push_back(*m);
  }
  return out;
}

Bytes EncodeCiphertextVec(const ElGamalCiphertextVec& cts) {
  // Flatten to one point span so the whole batch shares a single field
  // inversion (EncodePoints); the byte layout is unchanged.
  std::vector<Point> flat;
  flat.reserve(cts.size() * 3);
  for (const auto& ct : cts) {
    flat.push_back(ct.r);
    flat.push_back(ct.c);
    flat.push_back(ct.y);
  }
  ByteWriter w;
  w.U32(static_cast<uint32_t>(cts.size()));
  w.Raw(BytesView(EncodePoints(flat)));
  return w.Take();
}

std::optional<ElGamalCiphertextVec> DecodeCiphertextVec(BytesView bytes) {
  ByteReader r(bytes);
  auto n = r.U32();
  // A valid count never exceeds the ciphertexts the buffer can hold, so a
  // fuzzed length prefix cannot force a huge allocation.
  if (!n.has_value() || *n > r.remaining() / ElGamalCiphertext::kEncodedSize) {
    return std::nullopt;
  }
  ElGamalCiphertextVec out;
  out.reserve(*n);
  for (uint32_t i = 0; i < *n; i++) {
    auto raw = r.Raw(ElGamalCiphertext::kEncodedSize);
    if (!raw.has_value()) {
      return std::nullopt;
    }
    auto ct = ElGamalCiphertext::Decode(BytesView(*raw));
    if (!ct.has_value()) {
      return std::nullopt;
    }
    out.push_back(*ct);
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return out;
}

}  // namespace atom
