// Atom's rerandomizable ElGamal variant with out-of-order decryption and
// reencryption (paper Appendix A).
//
// A ciphertext is a triple (R, c, Y):
//   R holds the randomness accumulated for the *next* group's key,
//   c is the blinded message,
//   Y holds the randomness the *current* group decrypts against (⊥ before
//     the first ReEnc of a hop; we encode ⊥ as the identity point, which a
//     real Y = rG hits with negligible probability).
//
// The Y/R split is what lets a chain of servers simultaneously strip their
// own layer (against Y) and add a layer for the next group (into R): a user
// encrypts only to her entry group, and each group rewraps the batch for a
// successor the user never knew about (§4.2).
#ifndef SRC_CRYPTO_ELGAMAL_H_
#define SRC_CRYPTO_ELGAMAL_H_

#include <optional>
#include <vector>

#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

struct ElGamalKeypair {
  Scalar sk;
  Point pk;
};

// Fresh keypair: sk random, pk = sk * G.
ElGamalKeypair ElGamalKeyGen(Rng& rng);

struct ElGamalCiphertext {
  Point r;  // randomness toward the next key
  Point c;  // blinded message
  Point y;  // randomness toward the current key; identity encodes ⊥

  bool YIsNull() const { return y.IsInfinity(); }

  // 3 * 33 bytes.
  static constexpr size_t kEncodedSize = 3 * Point::kEncodedSize;
  Bytes Encode() const;
  static std::optional<ElGamalCiphertext> Decode(BytesView bytes);

  bool operator==(const ElGamalCiphertext& o) const {
    return r == o.r && c == o.c && y == o.y;
  }
};

// Encrypts point-message m under pk: (rG, m + r·pk, ⊥). If `randomness_out`
// is non-null the encryption randomness r is returned for proof generation.
ElGamalCiphertext ElGamalEncrypt(const Point& pk, const Point& m, Rng& rng,
                                 Scalar* randomness_out = nullptr);
// Table variant for hot paths that reuse one pk across a batch (identical
// output for identical rng state; the table must be built from pk).
ElGamalCiphertext ElGamalEncrypt(const FixedBaseTable& pk, const Point& m,
                                 Rng& rng, Scalar* randomness_out = nullptr);

// Decrypts (requires Y = ⊥): m = c - sk·R. Returns nullopt when Y ≠ ⊥.
std::optional<Point> ElGamalDecrypt(const Scalar& sk,
                                    const ElGamalCiphertext& ct);

// Rerandomizes under pk (requires Y = ⊥): (R + r'G, c + r'·pk, ⊥).
// Returns nullopt when Y ≠ ⊥. `randomness_out` as in ElGamalEncrypt.
std::optional<ElGamalCiphertext> ElGamalRerandomize(
    const Point& pk, const ElGamalCiphertext& ct, Rng& rng,
    Scalar* randomness_out = nullptr);
std::optional<ElGamalCiphertext> ElGamalRerandomize(
    const FixedBaseTable& pk, const ElGamalCiphertext& ct, Rng& rng,
    Scalar* randomness_out = nullptr);

// The out-of-order decrypt-and-reencrypt step (Appendix A ReEnc):
//   if Y = ⊥: Y ← R, R ← identity       (first server of a hop)
//   strip:    c ← c - sk·Y
//   rewrap:   r' random, R ← R + r'G, c ← c + r'·next_pk
// Pass next_pk = nullptr for the final hop (pure staged decryption, r' = 0).
// `randomness_out` receives r' for proof generation.
ElGamalCiphertext ElGamalReEnc(const Scalar& sk, const Point* next_pk,
                               const ElGamalCiphertext& ct, Rng& rng,
                               Scalar* randomness_out = nullptr);
// Table variant: the strip against Y stays generic (Y varies per
// ciphertext) but the rewrap base is fixed per sub-batch, so next_pk's
// table pays for itself across any real batch. Takes a reference — the
// final-hop case (no next key) keeps using the pointer overload above.
ElGamalCiphertext ElGamalReEnc(const Scalar& sk,
                               const FixedBaseTable& next_pk,
                               const ElGamalCiphertext& ct, Rng& rng,
                               Scalar* randomness_out = nullptr);

// Marks the hop complete: resets Y to ⊥ before forwarding to the next group
// (last server of a group does this; Appendix A).
ElGamalCiphertext ElGamalFinalizeHop(const ElGamalCiphertext& ct);

// Vector helpers: Atom messages longer than one embedded point are vectors
// of independent ciphertexts, with every operation applied per component.
using ElGamalCiphertextVec = std::vector<ElGamalCiphertext>;

ElGamalCiphertextVec ElGamalEncryptVec(const Point& pk,
                                       std::span<const Point> ms, Rng& rng,
                                       std::vector<Scalar>* randomness_out =
                                           nullptr);
ElGamalCiphertextVec ElGamalEncryptVec(const FixedBaseTable& pk,
                                       std::span<const Point> ms, Rng& rng,
                                       std::vector<Scalar>* randomness_out =
                                           nullptr);

std::optional<std::vector<Point>> ElGamalDecryptVec(
    const Scalar& sk, const ElGamalCiphertextVec& cts);

Bytes EncodeCiphertextVec(const ElGamalCiphertextVec& cts);
std::optional<ElGamalCiphertextVec> DecodeCiphertextVec(BytesView bytes);

}  // namespace atom

#endif  // SRC_CRYPTO_ELGAMAL_H_
