#include "src/crypto/keccak.h"

#include <cstring>

namespace atom {
namespace {

constexpr uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

// Rotation offsets for the rho step, indexed [x][y].
constexpr int kRho[5][5] = {{0, 36, 3, 41, 18},
                            {1, 44, 10, 45, 2},
                            {62, 6, 43, 15, 61},
                            {28, 55, 25, 21, 56},
                            {27, 20, 39, 8, 14}};

inline uint64_t Rotl64(uint64_t x, int n) {
  return n == 0 ? x : (x << n) | (x >> (64 - n));
}

void KeccakF1600(uint64_t a[25]) {
  auto idx = [](int x, int y) { return x + 5 * y; };
  for (int round = 0; round < 24; round++) {
    // Theta.
    uint64_t c[5];
    for (int x = 0; x < 5; x++) {
      c[x] = a[idx(x, 0)] ^ a[idx(x, 1)] ^ a[idx(x, 2)] ^ a[idx(x, 3)] ^
             a[idx(x, 4)];
    }
    uint64_t d[5];
    for (int x = 0; x < 5; x++) {
      d[x] = c[(x + 4) % 5] ^ Rotl64(c[(x + 1) % 5], 1);
    }
    for (int x = 0; x < 5; x++) {
      for (int y = 0; y < 5; y++) {
        a[idx(x, y)] ^= d[x];
      }
    }
    // Rho and pi.
    uint64_t b[25];
    for (int x = 0; x < 5; x++) {
      for (int y = 0; y < 5; y++) {
        b[idx(y, (2 * x + 3 * y) % 5)] = Rotl64(a[idx(x, y)], kRho[x][y]);
      }
    }
    // Chi.
    for (int x = 0; x < 5; x++) {
      for (int y = 0; y < 5; y++) {
        a[idx(x, y)] =
            b[idx(x, y)] ^ (~b[idx((x + 1) % 5, y)] & b[idx((x + 2) % 5, y)]);
      }
    }
    // Iota.
    a[0] ^= kRoundConstants[round];
  }
}

}  // namespace

std::array<uint8_t, 32> Sha3_256(BytesView data) {
  constexpr size_t kRate = 136;  // 1088-bit rate for SHA3-256.
  uint64_t state[25] = {0};
  auto absorb_block = [&](const uint8_t* block) {
    for (size_t i = 0; i < kRate / 8; i++) {
      uint64_t lane = 0;
      for (int b = 0; b < 8; b++) {
        lane |= static_cast<uint64_t>(block[8 * i + static_cast<size_t>(b)])
                << (8 * b);
      }
      state[i] ^= lane;
    }
    KeccakF1600(state);
  };

  size_t off = 0;
  while (data.size() - off >= kRate) {
    absorb_block(data.data() + off);
    off += kRate;
  }
  // Final block with SHA-3 domain padding (0x06 ... 0x80).
  uint8_t last[kRate];
  std::memset(last, 0, sizeof(last));
  std::memcpy(last, data.data() + off, data.size() - off);
  last[data.size() - off] = 0x06;
  last[kRate - 1] |= 0x80;
  absorb_block(last);

  std::array<uint8_t, 32> digest;
  for (size_t i = 0; i < 4; i++) {
    for (int b = 0; b < 8; b++) {
      digest[8 * i + static_cast<size_t>(b)] =
          static_cast<uint8_t>(state[i] >> (8 * b));
    }
  }
  return digest;
}

}  // namespace atom
