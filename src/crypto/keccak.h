// SHA3-256 (FIPS 202, Keccak-f[1600] sponge). The paper uses SHA-3 as the
// commitment function for trap messages (§4.4): traps carry a high-entropy
// nonce, so a plain hash is a binding and hiding commitment.
#ifndef SRC_CRYPTO_KECCAK_H_
#define SRC_CRYPTO_KECCAK_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace atom {

// One-shot SHA3-256.
std::array<uint8_t, 32> Sha3_256(BytesView data);

}  // namespace atom

#endif  // SRC_CRYPTO_KECCAK_H_
