#include "src/crypto/kem.h"

#include "src/crypto/aead.h"
#include "src/crypto/sha256.h"
#include "src/util/serde.h"

namespace atom {
namespace {

// KDF: symmetric key = SHA-256("atom/kem/v1" || encap point || shared point).
std::array<uint8_t, 32> DeriveKey(const Point& encap, const Point& shared) {
  ByteWriter w;
  w.Raw(ToBytes("atom/kem/v1"));
  w.Raw(BytesView(encap.Encode()));
  w.Raw(BytesView(shared.Encode()));
  return Sha256::Hash(BytesView(w.bytes()));
}

std::optional<Bytes> OpenWithShared(const Point& encap, const Point& shared,
                                    BytesView ciphertext) {
  auto key = DeriveKey(encap, shared);
  uint8_t nonce[kAeadNonceSize] = {0};  // fresh key per message: zero nonce
  Bytes aad = encap.Encode();
  return AeadOpen(key.data(), nonce, BytesView(aad),
                  ciphertext.subspan(Point::kEncodedSize));
}

}  // namespace

KemKeypair KemKeyGen(Rng& rng) {
  KemKeypair kp;
  kp.sk = Scalar::Random(rng);
  kp.pk = Point::BaseMul(kp.sk);
  return kp;
}

namespace {

Bytes SealWithShared(const Point& encap, const Point& shared, BytesView msg) {
  auto key = DeriveKey(encap, shared);
  uint8_t nonce[kAeadNonceSize] = {0};
  Bytes aad = encap.Encode();
  Bytes sealed = AeadSeal(key.data(), nonce, BytesView(aad), msg);
  Bytes out = encap.Encode();
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

}  // namespace

Bytes KemEncrypt(const Point& pk, BytesView msg, Rng& rng) {
  Scalar r = Scalar::Random(rng);
  return SealWithShared(Point::BaseMul(r), pk.Mul(r), msg);
}

Bytes KemEncrypt(const FixedBaseTable& pk, BytesView msg, Rng& rng) {
  Scalar r = Scalar::Random(rng);
  return SealWithShared(Point::BaseMul(r), pk.Mul(r), msg);
}

std::optional<Bytes> KemDecrypt(const Scalar& sk, BytesView ciphertext) {
  if (ciphertext.size() < kKemOverhead) {
    return std::nullopt;
  }
  auto encap = Point::Decode(ciphertext.subspan(0, Point::kEncodedSize));
  if (!encap.has_value() || encap->IsInfinity()) {
    return std::nullopt;
  }
  Point shared = encap->Mul(sk);
  return OpenWithShared(*encap, shared, ciphertext);
}

Point KemPartialDecap(const Scalar& weighted_share, BytesView ciphertext) {
  auto encap = Point::Decode(ciphertext.subspan(0, Point::kEncodedSize));
  if (!encap.has_value()) {
    return Point::Infinity();
  }
  return encap->Mul(weighted_share);
}

std::optional<Bytes> KemCombineDecap(std::span<const Point> partials,
                                     BytesView ciphertext) {
  if (ciphertext.size() < kKemOverhead) {
    return std::nullopt;
  }
  auto encap = Point::Decode(ciphertext.subspan(0, Point::kEncodedSize));
  if (!encap.has_value() || encap->IsInfinity()) {
    return std::nullopt;
  }
  Point shared = Point::Infinity();
  for (const Point& p : partials) {
    shared = shared + p;
  }
  return OpenWithShared(*encap, shared, ciphertext);
}

}  // namespace atom
