// IND-CCA2 hybrid encryption: ElGamal key encapsulation + ChaCha20-Poly1305
// DEM (Shoup-style KEM-DEM, as in paper Appendix A which uses ElGamal key
// encapsulation with NaCl's authenticated encryption).
//
// Atom's trap variant wraps every real message in this scheme under the
// trustees' key: the AEAD makes inner ciphertexts non-malleable, so a
// malicious server cannot transform an honest user's message into a related
// one (§4.4).
#ifndef SRC_CRYPTO_KEM_H_
#define SRC_CRYPTO_KEM_H_

#include <optional>

#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

struct KemKeypair {
  Scalar sk;
  Point pk;
};

KemKeypair KemKeyGen(Rng& rng);

// Encrypts msg under pk. Output: 33-byte encapsulation || AEAD ciphertext
// (msg.size() + 16 bytes). Overhead is kKemOverhead bytes total.
inline constexpr size_t kKemOverhead = Point::kEncodedSize + 16;
Bytes KemEncrypt(const Point& pk, BytesView msg, Rng& rng);
// Table variant for senders that encapsulate to the same key repeatedly
// (e.g. every trap submission targets the trustee key).
Bytes KemEncrypt(const FixedBaseTable& pk, BytesView msg, Rng& rng);

// Decrypts; nullopt on malformed input or authentication failure.
std::optional<Bytes> KemDecrypt(const Scalar& sk, BytesView ciphertext);

// Threshold variant: decapsulation shares. Each holder of a share x_i of the
// secret (with Lagrange coefficient folded in) computes a partial point
// (λ_i·x_i)·R; the combiner sums the partials to recover the KEM shared
// point without any party learning the full secret. Used by the trustees.
Point KemPartialDecap(const Scalar& weighted_share, BytesView ciphertext);
std::optional<Bytes> KemCombineDecap(std::span<const Point> partials,
                                     BytesView ciphertext);

}  // namespace atom

#endif  // SRC_CRYPTO_KEM_H_
