#include "src/crypto/mont.h"

#include <vector>

namespace atom {
namespace {

// -m^-1 mod 2^64 by Newton iteration (doubles correct bits each step).
uint64_t NegInv64(uint64_t m) {
  uint64_t inv = 1;
  for (int i = 0; i < 6; i++) {
    inv *= 2 - m * inv;
  }
  return ~inv + 1;  // -inv
}

}  // namespace

Mont::Mont(const U256& modulus) : m_(modulus) {
  ATOM_CHECK((modulus.v[0] & 1) == 1);
  n0inv_ = NegInv64(modulus.v[0]);

  // R mod m via 256 modular doublings of 1; R^2 mod m via 256 more.
  U256 acc = U256::FromU64(1);
  for (int i = 0; i < 512; i++) {
    uint64_t carry = U256Add(&acc, acc, acc);
    if (carry != 0 || !U256Less(acc, m_)) {
      U256Sub(&acc, acc, m_);
    }
    if (i == 255) {
      r_ = acc;
    }
  }
  r2_ = acc;
}

U256 Mont::Mul(const U256& a, const U256& b) const {
  // CIOS Montgomery multiplication; t has 4 + 2 limbs of headroom.
  uint64_t t[6] = {0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 4; i++) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (int j = 0; j < 4; j++) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a.v[i]) * b.v[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    unsigned __int128 cur = static_cast<unsigned __int128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(cur);
    t[5] = static_cast<uint64_t>(cur >> 64);

    // Reduce: t = (t + u*m) / 2^64 with u chosen so the low limb cancels.
    uint64_t u = t[0] * n0inv_;
    cur = static_cast<unsigned __int128>(u) * m_.v[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (int j = 1; j < 4; j++) {
      cur = static_cast<unsigned __int128>(u) * m_.v[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    cur = static_cast<unsigned __int128>(t[4]) + carry;
    t[3] = static_cast<uint64_t>(cur);
    t[4] = t[5] + static_cast<uint64_t>(cur >> 64);
    t[5] = 0;
  }

  U256 out = U256::FromLimbs(t[0], t[1], t[2], t[3]);
  if (t[4] != 0 || !U256Less(out, m_)) {
    U256Sub(&out, out, m_);
  }
  return out;
}

U256 Mont::Add(const U256& a, const U256& b) const {
  U256 out;
  uint64_t carry = U256Add(&out, a, b);
  if (carry != 0 || !U256Less(out, m_)) {
    U256Sub(&out, out, m_);
  }
  return out;
}

U256 Mont::Sub(const U256& a, const U256& b) const {
  U256 out;
  uint64_t borrow = U256Sub(&out, a, b);
  if (borrow != 0) {
    U256Add(&out, out, m_);
  }
  return out;
}

U256 Mont::Neg(const U256& a) const {
  if (a.IsZero()) {
    return a;
  }
  U256 out;
  U256Sub(&out, m_, a);
  return out;
}

U256 Mont::Pow(const U256& base, const U256& exp) const {
  U256 result = r_;  // 1 in Montgomery form
  U256 acc = base;
  for (int i = 0; i < 256; i++) {
    if (exp.Bit(i) != 0) {
      result = Mul(result, acc);
    }
    acc = Mul(acc, acc);
  }
  return result;
}

U256 Mont::Inv(const U256& a) const {
  ATOM_CHECK(!a.IsZero());
  U256 exp;
  U256Sub(&exp, m_, U256::FromU64(2));
  return Pow(a, exp);
}

void Mont::BatchInv(std::span<U256> values) const {
  if (values.empty()) {
    return;
  }
  // Forward pass: prefix[i] = values[0] * ... * values[i].
  std::vector<U256> prefix(values.size());
  prefix[0] = values[0];
  ATOM_CHECK(!values[0].IsZero());
  for (size_t i = 1; i < values.size(); i++) {
    ATOM_CHECK(!values[i].IsZero());
    prefix[i] = Mul(prefix[i - 1], values[i]);
  }
  // One inversion of the total product, then peel elements off the back:
  // inv(prefix[i]) * prefix[i-1] = inv(values[i]).
  U256 inv = Inv(prefix.back());
  for (size_t i = values.size() - 1; i > 0; i--) {
    U256 original = values[i];
    values[i] = Mul(inv, prefix[i - 1]);
    inv = Mul(inv, original);
  }
  values[0] = inv;
}

U256 Mont::Reduce(const U256& a) const {
  U256 out = a;
  while (!U256Less(out, m_)) {
    U256Sub(&out, out, m_);
  }
  return out;
}

namespace {

// NIST P-256 domain parameters (SEC 2 / FIPS 186-4), little-endian limbs.
const U256 kPrime = U256::FromLimbs(0xffffffffffffffffULL, 0x00000000ffffffffULL,
                                    0x0000000000000000ULL, 0xffffffff00000001ULL);
const U256 kOrder = U256::FromLimbs(0xf3b9cac2fc632551ULL, 0xbce6faada7179e84ULL,
                                    0xffffffffffffffffULL, 0xffffffff00000000ULL);
const U256 kB = U256::FromLimbs(0x3bce3c3e27d2604bULL, 0x651d06b0cc53b0f6ULL,
                                0xb3ebbd55769886bcULL, 0x5ac635d8aa3a93e7ULL);
const U256 kGx = U256::FromLimbs(0xf4a13945d898c296ULL, 0x77037d812deb33a0ULL,
                                 0xf8bce6e563a440f2ULL, 0x6b17d1f2e12c4247ULL);
const U256 kGy = U256::FromLimbs(0xcbb6406837bf51f5ULL, 0x2bce33576b315eceULL,
                                 0x8ee7eb4a7c0f9e16ULL, 0x4fe342e2fe1a7f9bULL);

}  // namespace

const Mont& FieldP() {
  static const Mont ctx(kPrime);
  return ctx;
}

const Mont& FieldN() {
  static const Mont ctx(kOrder);
  return ctx;
}

const U256& P256Prime() { return kPrime; }
const U256& P256Order() { return kOrder; }
const U256& P256B() { return kB; }
const U256& P256Gx() { return kGx; }
const U256& P256Gy() { return kGy; }

}  // namespace atom
