// Montgomery-form modular arithmetic over an odd 256-bit modulus.
//
// One implementation serves both P-256 fields: the coordinate field F_p and
// the scalar field F_n (curve order). All derived constants (n0inv, R², R)
// are computed in the constructor rather than hard-coded, so a transcription
// error in a modulus constant is caught by the known-answer tests instead of
// silently corrupting arithmetic.
#ifndef SRC_CRYPTO_MONT_H_
#define SRC_CRYPTO_MONT_H_

#include <span>

#include "src/crypto/u256.h"

namespace atom {

class Mont {
 public:
  // `modulus` must be odd and > 2^192 (true for both P-256 moduli).
  explicit Mont(const U256& modulus);

  const U256& modulus() const { return m_; }
  // 1 in Montgomery form (R mod m).
  const U256& one() const { return r_; }

  // Conversions between plain and Montgomery representation.
  U256 ToMont(const U256& a) const { return Mul(a, r2_); }
  U256 FromMont(const U256& a) const { return Mul(a, U256::FromU64(1)); }

  // Montgomery product: a * b * R^-1 mod m. Inputs/outputs in Montgomery form.
  U256 Mul(const U256& a, const U256& b) const;

  // Modular add/sub/negate (representation-agnostic: work for both forms).
  U256 Add(const U256& a, const U256& b) const;
  U256 Sub(const U256& a, const U256& b) const;
  U256 Neg(const U256& a) const;

  // base^exp mod m. `base` in Montgomery form, `exp` a plain integer.
  U256 Pow(const U256& base, const U256& exp) const;

  // Multiplicative inverse via Fermat's little theorem (modulus must be
  // prime, which holds for both P-256 moduli). a must be nonzero.
  U256 Inv(const U256& a) const;

  // Montgomery's batch-inversion trick: inverts every element in place
  // using one field inversion plus 3(n-1) multiplications, versus one
  // ~256-square-and-multiply inversion per element. Every element must be
  // nonzero (checked). Works in either representation, like Inv.
  void BatchInv(std::span<U256> values) const;

  // Reduces a plain 256-bit value mod m (at most one subtraction is needed
  // because both moduli exceed 2^255).
  U256 Reduce(const U256& a) const;

 private:
  U256 m_;
  U256 r_;       // R mod m
  U256 r2_;      // R^2 mod m
  uint64_t n0inv_;  // -m^-1 mod 2^64
};

// The two field contexts used by P-256. Initialized on first use.
const Mont& FieldP();  // coordinate field, p = 2^256 - 2^224 + 2^192 + 2^96 - 1
const Mont& FieldN();  // scalar field, the group order n

// P-256 curve constants (plain form).
const U256& P256Prime();
const U256& P256Order();
const U256& P256B();
const U256& P256Gx();
const U256& P256Gy();

}  // namespace atom

#endif  // SRC_CRYPTO_MONT_H_
