#include "src/crypto/p256.h"

#include <vector>

#include "src/crypto/sha256.h"
#include "src/util/serde.h"

namespace atom {
namespace {

// (p+1)/4, the exponent for square roots mod p (p ≡ 3 mod 4).
const U256& SqrtExponent() {
  static const U256 exp = [] {
    U256 e;
    uint64_t carry = U256Add(&e, P256Prime(), U256::FromU64(1));
    ATOM_CHECK(carry == 0);
    // Shift right by 2.
    for (int i = 0; i < 4; i++) {
      e.v[i] = (e.v[i] >> 2) | (i < 3 ? (e.v[i + 1] << 62) : 0);
    }
    return e;
  }();
  return exp;
}

// Curve coefficient a = -3 in Montgomery form.
const U256& MontA() {
  static const U256 a = [] {
    U256 three = U256::FromU64(3);
    U256 neg3;
    U256Sub(&neg3, P256Prime(), three);
    return FieldP().ToMont(neg3);
  }();
  return a;
}

// Curve coefficient b in Montgomery form.
const U256& MontB() {
  static const U256 b = FieldP().ToMont(P256B());
  return b;
}

// Computes x^3 + ax + b in Montgomery form.
U256 CurveRhs(const U256& mx) {
  const Mont& fp = FieldP();
  U256 x2 = fp.Mul(mx, mx);
  U256 x3 = fp.Mul(x2, mx);
  U256 ax = fp.Mul(MontA(), mx);
  return fp.Add(fp.Add(x3, ax), MontB());
}

// Square root mod p if it exists (p ≡ 3 mod 4 so a^((p+1)/4) works).
std::optional<U256> MontSqrt(const U256& ma) {
  const Mont& fp = FieldP();
  U256 s = fp.Pow(ma, SqrtExponent());
  if (fp.Mul(s, s) == ma) {
    return s;
  }
  return std::nullopt;
}

// Parity (least significant bit) of a Montgomery-form field element.
int MontParity(const U256& ma) {
  return FieldP().FromMont(ma).Bit(0);
}

}  // namespace

// ---------------------------------------------------------------- Scalar --

Scalar Scalar::One() {
  Scalar s;
  s.m_ = FieldN().one();
  return s;
}

Scalar Scalar::FromU64(uint64_t v) {
  Scalar s;
  s.m_ = FieldN().ToMont(U256::FromU64(v));
  return s;
}

Scalar Scalar::Random(Rng& rng) {
  for (;;) {
    Bytes raw = rng.NextBytes(32);
    U256 candidate = U256::FromBytesBe(BytesView(raw));
    if (U256Less(candidate, P256Order()) && !candidate.IsZero()) {
      Scalar s;
      s.m_ = FieldN().ToMont(candidate);
      return s;
    }
  }
}

Scalar Scalar::FromBytesReduced(BytesView bytes32) {
  ATOM_CHECK(bytes32.size() == 32);
  U256 v = FieldN().Reduce(U256::FromBytesBe(bytes32));
  Scalar s;
  s.m_ = FieldN().ToMont(v);
  return s;
}

std::optional<Scalar> Scalar::FromBytes(BytesView bytes32) {
  if (bytes32.size() != 32) {
    return std::nullopt;
  }
  U256 v = U256::FromBytesBe(bytes32);
  if (!U256Less(v, P256Order())) {
    return std::nullopt;
  }
  Scalar s;
  s.m_ = FieldN().ToMont(v);
  return s;
}

std::array<uint8_t, 32> Scalar::ToBytes() const {
  return FieldN().FromMont(m_).ToBytesBe();
}

Scalar Scalar::operator+(const Scalar& o) const {
  Scalar s;
  s.m_ = FieldN().Add(m_, o.m_);
  return s;
}

Scalar Scalar::operator-(const Scalar& o) const {
  Scalar s;
  s.m_ = FieldN().Sub(m_, o.m_);
  return s;
}

Scalar Scalar::operator*(const Scalar& o) const {
  Scalar s;
  s.m_ = FieldN().Mul(m_, o.m_);
  return s;
}

Scalar Scalar::Neg() const {
  Scalar s;
  s.m_ = FieldN().Neg(m_);
  return s;
}

Scalar Scalar::Inv() const {
  Scalar s;
  s.m_ = FieldN().Inv(m_);
  return s;
}

U256 Scalar::PlainValue() const { return FieldN().FromMont(m_); }

// ----------------------------------------------------------------- Point --

const Point& Point::Generator() {
  static const Point g = [] {
    auto p = Point::FromAffine(P256Gx(), P256Gy());
    ATOM_CHECK(p.has_value());
    return *p;
  }();
  return g;
}

std::optional<Point> Point::FromAffine(const U256& x, const U256& y) {
  const Mont& fp = FieldP();
  if (!U256Less(x, P256Prime()) || !U256Less(y, P256Prime())) {
    return std::nullopt;
  }
  Point p;
  p.x_ = fp.ToMont(x);
  p.y_ = fp.ToMont(y);
  p.z_ = fp.one();
  if (!p.IsOnCurve()) {
    return std::nullopt;
  }
  return p;
}

bool Point::IsOnCurve() const {
  if (IsInfinity()) {
    return true;
  }
  // y^2 == x^3 + a x z^4 + b z^6 in Jacobian form.
  const Mont& fp = FieldP();
  U256 y2 = fp.Mul(y_, y_);
  U256 z2 = fp.Mul(z_, z_);
  U256 z4 = fp.Mul(z2, z2);
  U256 z6 = fp.Mul(z4, z2);
  U256 x3 = fp.Mul(fp.Mul(x_, x_), x_);
  U256 rhs = fp.Add(fp.Add(x3, fp.Mul(fp.Mul(MontA(), x_), z4)),
                    fp.Mul(MontB(), z6));
  return y2 == rhs;
}

Point Point::Double() const {
  if (IsInfinity() || y_.IsZero()) {
    return Infinity();
  }
  const Mont& fp = FieldP();
  // dbl-2001-b for a = -3.
  U256 delta = fp.Mul(z_, z_);
  U256 gamma = fp.Mul(y_, y_);
  U256 beta = fp.Mul(x_, gamma);
  U256 t0 = fp.Sub(x_, delta);
  U256 t1 = fp.Add(x_, delta);
  U256 alpha = fp.Mul(t0, t1);
  alpha = fp.Add(fp.Add(alpha, alpha), alpha);  // 3 * (x-delta)(x+delta)

  Point out;
  U256 beta4 = fp.Add(fp.Add(beta, beta), fp.Add(beta, beta));
  U256 beta8 = fp.Add(beta4, beta4);
  out.x_ = fp.Sub(fp.Mul(alpha, alpha), beta8);
  U256 yz = fp.Add(y_, z_);
  out.z_ = fp.Sub(fp.Sub(fp.Mul(yz, yz), gamma), delta);
  U256 gamma2 = fp.Mul(gamma, gamma);
  U256 gamma2_8 = fp.Add(gamma2, gamma2);
  gamma2_8 = fp.Add(gamma2_8, gamma2_8);
  gamma2_8 = fp.Add(gamma2_8, gamma2_8);
  out.y_ = fp.Sub(fp.Mul(alpha, fp.Sub(beta4, out.x_)), gamma2_8);
  return out;
}

Point operator+(const Point& a, const Point& b) {
  if (a.IsInfinity()) {
    return b;
  }
  if (b.IsInfinity()) {
    return a;
  }
  const Mont& fp = FieldP();
  U256 z1z1 = fp.Mul(a.z_, a.z_);
  U256 z2z2 = fp.Mul(b.z_, b.z_);
  U256 u1 = fp.Mul(a.x_, z2z2);
  U256 u2 = fp.Mul(b.x_, z1z1);
  U256 s1 = fp.Mul(fp.Mul(a.y_, b.z_), z2z2);
  U256 s2 = fp.Mul(fp.Mul(b.y_, a.z_), z1z1);

  if (u1 == u2) {
    if (s1 == s2) {
      return a.Double();
    }
    return Point::Infinity();
  }

  U256 h = fp.Sub(u2, u1);
  U256 r = fp.Sub(s2, s1);
  U256 hh = fp.Mul(h, h);
  U256 hhh = fp.Mul(hh, h);
  U256 v = fp.Mul(u1, hh);

  Point out;
  U256 v2 = fp.Add(v, v);
  out.x_ = fp.Sub(fp.Sub(fp.Mul(r, r), hhh), v2);
  out.y_ = fp.Sub(fp.Mul(r, fp.Sub(v, out.x_)), fp.Mul(s1, hhh));
  out.z_ = fp.Mul(fp.Mul(a.z_, b.z_), h);
  return out;
}

Point Point::Neg() const {
  if (IsInfinity()) {
    return *this;
  }
  Point out = *this;
  out.y_ = FieldP().Neg(y_);
  return out;
}

bool Point::operator==(const Point& o) const {
  if (IsInfinity() || o.IsInfinity()) {
    return IsInfinity() == o.IsInfinity();
  }
  // Compare cross-multiplied Jacobian coordinates.
  const Mont& fp = FieldP();
  U256 z1z1 = fp.Mul(z_, z_);
  U256 z2z2 = fp.Mul(o.z_, o.z_);
  if (!(fp.Mul(x_, z2z2) == fp.Mul(o.x_, z1z1))) {
    return false;
  }
  U256 z1z1z1 = fp.Mul(z1z1, z_);
  U256 z2z2z2 = fp.Mul(z2z2, o.z_);
  return fp.Mul(y_, z2z2z2) == fp.Mul(o.y_, z1z1z1);
}

Point Point::Mul(const Scalar& k) const {
  if (IsInfinity() || k.IsZero()) {
    return Infinity();
  }
  // 4-bit fixed window: table[i] = i * P for i in [1, 15].
  Point table[15];
  table[0] = *this;
  for (int i = 1; i < 15; i++) {
    table[i] = table[i - 1] + *this;
  }

  U256 e = k.PlainValue();
  Point acc = Infinity();
  for (int window = 63; window >= 0; window--) {
    for (int i = 0; i < 4; i++) {
      acc = acc.Double();
    }
    uint64_t digit = (e.v[window / 16] >> (4 * (window % 16))) & 0xf;
    if (digit != 0) {
      acc = acc + table[digit - 1];
    }
  }
  return acc;
}

Point Point::AddMixed(const Point& jacobian, const Point& affine) {
  if (jacobian.IsInfinity()) {
    return affine;
  }
  if (affine.IsInfinity()) {
    return jacobian;
  }
  // madd-2008-g: with Z2 == 1, u1/s1 need no scaling and Z3 drops one mul.
  const Mont& fp = FieldP();
  U256 z1z1 = fp.Mul(jacobian.z_, jacobian.z_);
  U256 u2 = fp.Mul(affine.x_, z1z1);
  U256 s2 = fp.Mul(fp.Mul(affine.y_, jacobian.z_), z1z1);

  if (u2 == jacobian.x_) {
    if (s2 == jacobian.y_) {
      return jacobian.Double();
    }
    return Infinity();
  }

  U256 h = fp.Sub(u2, jacobian.x_);
  U256 r = fp.Sub(s2, jacobian.y_);
  U256 hh = fp.Mul(h, h);
  U256 hhh = fp.Mul(hh, h);
  U256 v = fp.Mul(jacobian.x_, hh);

  Point out;
  U256 v2 = fp.Add(v, v);
  out.x_ = fp.Sub(fp.Sub(fp.Mul(r, r), hhh), v2);
  out.y_ = fp.Sub(fp.Mul(r, fp.Sub(v, out.x_)), fp.Mul(jacobian.y_, hhh));
  out.z_ = fp.Mul(jacobian.z_, h);
  return out;
}

FixedBaseTable::FixedBaseTable(const Point& base) : base_(base) {
  if (base.IsInfinity()) {
    return;  // Mul short-circuits; the table is never consulted.
  }
  Point cur = base;
  for (int w = 0; w < 64; w++) {
    table_[w][0] = cur;
    for (int d = 1; d < 15; d++) {
      table_[w][d] = table_[w][d - 1] + cur;
    }
    cur = table_[w][14] + cur;  // cur <<= 4
  }
  // Normalize all 960 entries to affine (z == 1) with ONE shared inversion
  // so Mul can use the mixed add. Every entry is (d << 4w) * base with a
  // multiplier in [1, 15 * 2^252] < n, so none is the identity and every z
  // is invertible (the curve has prime order, cofactor 1).
  const Mont& fp = FieldP();
  std::vector<U256> zs;
  zs.reserve(64 * 15);
  for (int w = 0; w < 64; w++) {
    for (int d = 0; d < 15; d++) {
      zs.push_back(table_[w][d].z_);
    }
  }
  fp.BatchInv(zs);
  for (int w = 0; w < 64; w++) {
    for (int d = 0; d < 15; d++) {
      Point& p = table_[w][d];
      const U256& zinv = zs[static_cast<size_t>(w) * 15 + d];
      U256 zinv2 = fp.Mul(zinv, zinv);
      p.x_ = fp.Mul(p.x_, zinv2);
      p.y_ = fp.Mul(p.y_, fp.Mul(zinv2, zinv));
      p.z_ = fp.one();
    }
  }
}

Point FixedBaseTable::Mul(const Scalar& k) const {
  if (base_.IsInfinity() || k.IsZero()) {
    return Point::Infinity();
  }
  U256 e = k.PlainValue();
  Point acc = Point::Infinity();
  for (int window = 0; window < 64; window++) {
    uint64_t digit = (e.v[window / 16] >> (4 * (window % 16))) & 0xf;
    if (digit != 0) {
      acc = Point::AddMixed(acc, table_[window][digit - 1]);
    }
  }
  return acc;
}

const FixedBaseTable& Point::GeneratorTable() {
  static const FixedBaseTable table(Generator());
  return table;
}

Point Point::BaseMul(const Scalar& k) { return GeneratorTable().Mul(k); }

void Point::ToAffine(U256* out_x, U256* out_y) const {
  ATOM_CHECK(!IsInfinity());
  const Mont& fp = FieldP();
  U256 zinv = fp.Inv(z_);
  U256 zinv2 = fp.Mul(zinv, zinv);
  U256 zinv3 = fp.Mul(zinv2, zinv);
  *out_x = fp.FromMont(fp.Mul(x_, zinv2));
  *out_y = fp.FromMont(fp.Mul(y_, zinv3));
}

std::vector<Point::AffineCoords> Point::BatchToAffine(
    std::span<const Point> points) {
  const Mont& fp = FieldP();
  std::vector<AffineCoords> out(points.size());
  std::vector<U256> zs;
  zs.reserve(points.size());
  for (const Point& p : points) {
    if (!p.IsInfinity()) {
      zs.push_back(p.z_);
    }
  }
  fp.BatchInv(zs);
  size_t j = 0;
  for (size_t i = 0; i < points.size(); i++) {
    if (points[i].IsInfinity()) {
      out[i].infinity = true;
      continue;
    }
    const U256& zinv = zs[j++];
    U256 zinv2 = fp.Mul(zinv, zinv);
    out[i].x = fp.FromMont(fp.Mul(points[i].x_, zinv2));
    out[i].y = fp.FromMont(fp.Mul(points[i].y_, fp.Mul(zinv2, zinv)));
  }
  return out;
}

Bytes Point::Encode() const {
  Bytes out(kEncodedSize, 0);
  if (IsInfinity()) {
    return out;
  }
  U256 ax, ay;
  ToAffine(&ax, &ay);
  out[0] = static_cast<uint8_t>(0x02 | ay.Bit(0));
  auto xb = ax.ToBytesBe();
  std::copy(xb.begin(), xb.end(), out.begin() + 1);
  return out;
}

std::optional<Point> Point::Decode(BytesView bytes33) {
  if (bytes33.size() != kEncodedSize) {
    return std::nullopt;
  }
  if (bytes33[0] == 0x00) {
    for (size_t i = 1; i < kEncodedSize; i++) {
      if (bytes33[i] != 0) {
        return std::nullopt;
      }
    }
    return Infinity();
  }
  if (bytes33[0] != 0x02 && bytes33[0] != 0x03) {
    return std::nullopt;
  }
  U256 x = U256::FromBytesBe(bytes33.subspan(1));
  if (!U256Less(x, P256Prime())) {
    return std::nullopt;
  }
  const Mont& fp = FieldP();
  U256 mx = fp.ToMont(x);
  auto my = MontSqrt(CurveRhs(mx));
  if (!my.has_value()) {
    return std::nullopt;
  }
  int want_parity = bytes33[0] & 1;
  U256 y = *my;
  if (MontParity(y) != want_parity) {
    y = fp.Neg(y);
  }
  Point p;
  p.x_ = mx;
  p.y_ = y;
  p.z_ = fp.one();
  return p;
}

// ------------------------------------------------------------------- MSM --

Bytes EncodePoints(std::span<const Point> points) {
  auto affine = Point::BatchToAffine(points);
  Bytes out(points.size() * Point::kEncodedSize, 0);
  for (size_t i = 0; i < points.size(); i++) {
    if (affine[i].infinity) {
      continue;  // the identity encodes as 33 zero bytes, already in place
    }
    uint8_t* dst = out.data() + i * Point::kEncodedSize;
    dst[0] = static_cast<uint8_t>(0x02 | affine[i].y.Bit(0));
    auto xb = affine[i].x.ToBytesBe();
    std::copy(xb.begin(), xb.end(), dst + 1);
  }
  return out;
}

Point MultiScalarMul(std::span<const Point> points,
                     std::span<const Scalar> scalars) {
  ATOM_CHECK(points.size() == scalars.size());
  const size_t n = points.size();
  if (n == 0) {
    return Point::Infinity();
  }
  // Below n = 8 the naive sum wins: Pippenger's smallest window (c = 4)
  // still pays 256 doublings plus a 15-bucket running-sum sweep across all
  // 64 windows, which measured (bench_table3_primitives, BM_Msm at n = 4/8)
  // only breaks even against n independent windowed Muls around n ≈ 8.
  if (n < 8) {
    Point acc = Point::Infinity();
    for (size_t i = 0; i < n; i++) {
      acc = acc + points[i].Mul(scalars[i]);
    }
    return acc;
  }

  // Pippenger bucket method. Window width c trades bucket-count (2^c - 1
  // adds per window in the running-sum sweep) against window-count
  // (256/c iterations over all n points): the optimum grows with
  // log2(n). The schedule below follows the measured crossovers on this
  // implementation (c = 7 overtakes c = 4 near n ≈ 32, c = 9 near
  // n ≈ 256, c = 11 near n ≈ 2048 — each within ~10% of its neighbor at
  // the boundary, so exact cut points are not critical).
  int c = 4;
  if (n >= 32) {
    c = 7;
  }
  if (n >= 256) {
    c = 9;
  }
  if (n >= 2048) {
    c = 11;
  }
  const int num_windows = (256 + c - 1) / c;
  const size_t num_buckets = (1u << c) - 1;

  std::vector<U256> plain(n);
  for (size_t i = 0; i < n; i++) {
    plain[i] = scalars[i].PlainValue();
  }

  auto digit_of = [&](const U256& e, int window) -> uint64_t {
    int bit = window * c;
    uint64_t d = 0;
    // Collect c bits starting at `bit` (may straddle a limb boundary).
    int limb = bit / 64, off = bit % 64;
    d = e.v[limb] >> off;
    if (off + c > 64 && limb + 1 < 4) {
      d |= e.v[limb + 1] << (64 - off);
    }
    return d & ((1ull << c) - 1);
  };

  Point result = Point::Infinity();
  std::vector<Point> buckets(num_buckets);
  for (int window = num_windows - 1; window >= 0; window--) {
    for (int i = 0; i < c; i++) {
      result = result.Double();
    }
    for (auto& b : buckets) {
      b = Point::Infinity();
    }
    for (size_t i = 0; i < n; i++) {
      uint64_t d = digit_of(plain[i], window);
      if (d != 0) {
        buckets[d - 1] = buckets[d - 1] + points[i];
      }
    }
    // Running-sum trick: sum_{d} d * bucket[d].
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t d = num_buckets; d > 0; d--) {
      running = running + buckets[d - 1];
      window_sum = window_sum + running;
    }
    result = result + window_sum;
  }
  return result;
}

// ---------------------------------------------------- derived generators --

Point HashToPoint(BytesView label) {
  for (uint32_t counter = 0;; counter++) {
    ByteWriter w;
    w.Raw(ToBytes("atom/hash-to-point/v1"));
    w.Var(label);
    w.U32(counter);
    auto digest = Sha256::Hash(BytesView(w.bytes()));
    U256 x = U256::FromBytesBe(BytesView(digest));
    if (!U256Less(x, P256Prime())) {
      continue;
    }
    const Mont& fp = FieldP();
    U256 mx = fp.ToMont(x);
    auto my = MontSqrt(CurveRhs(mx));
    if (!my.has_value()) {
      continue;
    }
    // Pick the even-parity root deterministically.
    U256 y = *my;
    if (MontParity(y) != 0) {
      y = fp.Neg(y);
    }
    Point p;
    U256 ax = x;
    U256 ay = fp.FromMont(y);
    auto q = Point::FromAffine(ax, ay);
    ATOM_CHECK(q.has_value());
    p = *q;
    return p;
  }
}

// -------------------------------------------------------- message embed --

std::optional<Point> EmbedMessage(BytesView data) {
  if (data.size() > kEmbedCapacity) {
    return std::nullopt;
  }
  // x = [len | data | zero padding | counter], big-endian bytes. The top
  // byte is <= 30, so x < p always holds.
  std::array<uint8_t, 32> xbuf{};
  xbuf[0] = static_cast<uint8_t>(data.size());
  std::copy(data.begin(), data.end(), xbuf.begin() + 1);
  for (int counter = 0; counter < 256; counter++) {
    xbuf[31] = static_cast<uint8_t>(counter);
    U256 x = U256::FromBytesBe(BytesView(xbuf));
    const Mont& fp = FieldP();
    U256 mx = fp.ToMont(x);
    auto my = MontSqrt(CurveRhs(mx));
    if (!my.has_value()) {
      continue;
    }
    U256 y = fp.FromMont(*my);
    auto p = Point::FromAffine(x, y);
    ATOM_CHECK(p.has_value());
    return p;
  }
  // Each try succeeds with probability ~1/2; 256 misses is astronomically
  // unlikely for any input.
  return std::nullopt;
}

std::optional<Bytes> ExtractMessage(const Point& p) {
  if (p.IsInfinity()) {
    return std::nullopt;
  }
  U256 ax, ay;
  p.ToAffine(&ax, &ay);
  auto xb = ax.ToBytesBe();
  size_t len = xb[0];
  if (len > kEmbedCapacity) {
    return std::nullopt;
  }
  return Bytes(xb.begin() + 1, xb.begin() + 1 + static_cast<ptrdiff_t>(len));
}

}  // namespace atom
