// NIST P-256 group operations: scalars mod the group order, Jacobian points,
// windowed scalar multiplication, Pippenger multi-scalar multiplication,
// hash-to-point, and reversible message-to-point embedding.
//
// This is the DDH group G from the paper (§5 uses NIST P-256 [6]); every
// cryptosystem in src/crypto builds on these two types.
//
// Hot-path tooling (see docs/architecture.md, "Crypto hot path"):
//   - FixedBaseTable: precomputed 4-bit windowed table for ANY fixed base
//     (group pk, entry pk, trustee pk, the generator itself). Entries are
//     normalized to affine once at build time so every lookup uses the
//     mixed Jacobian+affine addition (~8 field muls vs ~16 for the full
//     Jacobian add), and Mul needs no doublings at all. Point::Mul rebuilds
//     a 15-entry table per call — build a FixedBaseTable whenever the same
//     base is multiplied more than ~10 times.
//   - Point::BatchToAffine / EncodePoints: batch affine normalization and
//     SEC1 encoding with ONE field inversion per batch (Montgomery's
//     trick) instead of one ~256-bit exponentiation per point.
#ifndef SRC_CRYPTO_P256_H_
#define SRC_CRYPTO_P256_H_

#include <optional>
#include <span>
#include <vector>

#include "src/crypto/mont.h"
#include "src/crypto/u256.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace atom {

// Scalar mod the P-256 group order n. Stored in Montgomery form; use the
// named constructors, never the raw field.
class Scalar {
 public:
  Scalar() = default;  // zero

  static Scalar Zero() { return Scalar(); }
  static Scalar One();
  static Scalar FromU64(uint64_t v);
  // Uniform scalar via rejection sampling (no modulo bias).
  static Scalar Random(Rng& rng);
  // Interprets 32 big-endian bytes, reduced mod n. Used for Fiat-Shamir
  // challenges (reduction bias is ~2^-224, negligible).
  static Scalar FromBytesReduced(BytesView bytes32);
  // Strict parse: rejects values >= n. Inverse of ToBytes.
  static std::optional<Scalar> FromBytes(BytesView bytes32);

  // 32-byte big-endian canonical encoding.
  std::array<uint8_t, 32> ToBytes() const;

  bool IsZero() const { return m_.IsZero(); }
  bool operator==(const Scalar& o) const { return m_ == o.m_; }

  Scalar operator+(const Scalar& o) const;
  Scalar operator-(const Scalar& o) const;
  Scalar operator*(const Scalar& o) const;
  Scalar Neg() const;
  // Multiplicative inverse; must be nonzero.
  Scalar Inv() const;

  // Plain (non-Montgomery) integer value, for bit extraction in scalar mult.
  U256 PlainValue() const;

 private:
  U256 m_;  // Montgomery form mod n
};

class FixedBaseTable;

// P-256 point in Jacobian coordinates (coordinates in Montgomery form).
// z == 0 encodes the identity.
class Point {
 public:
  Point() : x_(FieldP().one()), y_(FieldP().one()), z_() {}  // identity

  static Point Infinity() { return Point(); }
  static const Point& Generator();

  bool IsInfinity() const { return z_.IsZero(); }

  // Group operations.
  friend Point operator+(const Point& a, const Point& b);
  Point Double() const;
  Point Neg() const;
  friend Point operator-(const Point& a, const Point& b) { return a + b.Neg(); }

  // Variable-base scalar multiplication (4-bit window, rebuilds its window
  // table on every call). If the base repeats, use a FixedBaseTable.
  Point Mul(const Scalar& k) const;
  // Fixed-base multiplication by the generator (precomputed affine table).
  static Point BaseMul(const Scalar& k);
  // The precomputed table backing BaseMul, for APIs that take a table.
  static const FixedBaseTable& GeneratorTable();

  bool operator==(const Point& o) const;

  // Affine coordinates in plain form; must not be the identity.
  void ToAffine(U256* out_x, U256* out_y) const;

  // Batch affine normalization via Montgomery's trick: one field inversion
  // for the whole batch, bitwise identical results to per-point ToAffine.
  // Identity points come back flagged instead of with coordinates.
  struct AffineCoords {
    U256 x, y;
    bool infinity = false;
  };
  static std::vector<AffineCoords> BatchToAffine(
      std::span<const Point> points);

  // 33-byte encoding: SEC1 compressed (0x02/0x03 || x), or 33 zero bytes for
  // the identity.
  static constexpr size_t kEncodedSize = 33;
  Bytes Encode() const;
  // Validates the point is on the curve.
  static std::optional<Point> Decode(BytesView bytes33);

  bool IsOnCurve() const;

  // Constructs from affine coordinates in plain form (checked on-curve).
  static std::optional<Point> FromAffine(const U256& x, const U256& y);

 private:
  friend class FixedBaseTable;

  // Mixed-coordinate addition: `affine` must be the identity or have z == 1
  // (Montgomery one), which saves ~8 field multiplications over the general
  // Jacobian add. FixedBaseTable entries satisfy this by construction.
  static Point AddMixed(const Point& jacobian, const Point& affine);

  U256 x_, y_, z_;
};

// Precomputed 4-bit windowed table for one fixed base: table[w][d-1] holds
// (d << 4w) * base, normalized to affine with a single batched inversion at
// build time. Mul then needs only ~64 mixed additions and zero doublings —
// the same shape the generator tables always used, available for any base
// that repeats (group/entry/trustee public keys, rerandomization bases).
//
// Build cost is ~960 point adds plus one inversion, which amortizes after
// roughly ten generic Point::Mul calls. The table is ~92KB; hot callers
// cache one per round/epoch key rather than building per batch.
class FixedBaseTable {
 public:
  explicit FixedBaseTable(const Point& base);

  const Point& base() const { return base_; }

  // base * k. Identity base or zero scalar yields the identity, matching
  // Point::Mul exactly on every input.
  Point Mul(const Scalar& k) const;

 private:
  Point base_;
  Point table_[64][15];
};

// Concatenated 33-byte encodings of `points` — byte-identical to calling
// Encode() per point, but pays one field inversion for the whole batch
// instead of one per point.
Bytes EncodePoints(std::span<const Point> points);

// Sum of scalars[i] * points[i] (Pippenger bucket method).
Point MultiScalarMul(std::span<const Point> points,
                     std::span<const Scalar> scalars);

// Deterministic nothing-up-my-sleeve point: try-and-increment over
// SHA-256(label || counter). Nobody knows its discrete log w.r.t. any other
// generator produced with a different label.
Point HashToPoint(BytesView label);

// Reversible message embedding. Up to kEmbedCapacity bytes per point; the
// x-coordinate layout is [length | data | padding | try-counter].
inline constexpr size_t kEmbedCapacity = 30;
std::optional<Point> EmbedMessage(BytesView data);
std::optional<Bytes> ExtractMessage(const Point& p);

}  // namespace atom

#endif  // SRC_CRYPTO_P256_H_
