#include "src/crypto/poly1305.h"

#include <cstring>

namespace atom {
namespace {

// 26-bit limb implementation (after Floodyberry's poly1305-donna-32).
constexpr uint32_t kMask26 = 0x3ffffff;

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<uint8_t, 16> Poly1305Tag(const uint8_t key[32], BytesView msg) {
  // r with the required clamping.
  uint32_t r0 = LoadLe32(key + 0) & 0x3ffffff;
  uint32_t r1 = (LoadLe32(key + 3) >> 2) & 0x3ffff03;
  uint32_t r2 = (LoadLe32(key + 6) >> 4) & 0x3ffc0ff;
  uint32_t r3 = (LoadLe32(key + 9) >> 6) & 0x3f03fff;
  uint32_t r4 = (LoadLe32(key + 12) >> 8) & 0x00fffff;

  const uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  size_t off = 0;
  size_t remaining = msg.size();
  while (remaining > 0) {
    uint8_t block[16];
    uint32_t hibit;
    if (remaining >= 16) {
      std::memcpy(block, msg.data() + off, 16);
      hibit = 1u << 24;
      off += 16;
      remaining -= 16;
    } else {
      std::memset(block, 0, 16);
      std::memcpy(block, msg.data() + off, remaining);
      block[remaining] = 1;
      hibit = 0;
      off += remaining;
      remaining = 0;
    }

    h0 += LoadLe32(block + 0) & kMask26;
    h1 += (LoadLe32(block + 3) >> 2) & kMask26;
    h2 += (LoadLe32(block + 6) >> 4) & kMask26;
    h3 += (LoadLe32(block + 9) >> 6) & kMask26;
    h4 += (LoadLe32(block + 12) >> 8) | hibit;

    uint64_t d0 = static_cast<uint64_t>(h0) * r0 +
                  static_cast<uint64_t>(h1) * s4 +
                  static_cast<uint64_t>(h2) * s3 +
                  static_cast<uint64_t>(h3) * s2 +
                  static_cast<uint64_t>(h4) * s1;
    uint64_t d1 = static_cast<uint64_t>(h0) * r1 +
                  static_cast<uint64_t>(h1) * r0 +
                  static_cast<uint64_t>(h2) * s4 +
                  static_cast<uint64_t>(h3) * s3 +
                  static_cast<uint64_t>(h4) * s2;
    uint64_t d2 = static_cast<uint64_t>(h0) * r2 +
                  static_cast<uint64_t>(h1) * r1 +
                  static_cast<uint64_t>(h2) * r0 +
                  static_cast<uint64_t>(h3) * s4 +
                  static_cast<uint64_t>(h4) * s3;
    uint64_t d3 = static_cast<uint64_t>(h0) * r3 +
                  static_cast<uint64_t>(h1) * r2 +
                  static_cast<uint64_t>(h2) * r1 +
                  static_cast<uint64_t>(h3) * r0 +
                  static_cast<uint64_t>(h4) * s4;
    uint64_t d4 = static_cast<uint64_t>(h0) * r4 +
                  static_cast<uint64_t>(h1) * r3 +
                  static_cast<uint64_t>(h2) * r2 +
                  static_cast<uint64_t>(h3) * r1 +
                  static_cast<uint64_t>(h4) * r0;

    uint64_t c;
    c = d0 >> 26;
    h0 = static_cast<uint32_t>(d0) & kMask26;
    d1 += c;
    c = d1 >> 26;
    h1 = static_cast<uint32_t>(d1) & kMask26;
    d2 += c;
    c = d2 >> 26;
    h2 = static_cast<uint32_t>(d2) & kMask26;
    d3 += c;
    c = d3 >> 26;
    h3 = static_cast<uint32_t>(d3) & kMask26;
    d4 += c;
    c = d4 >> 26;
    h4 = static_cast<uint32_t>(d4) & kMask26;
    h0 += static_cast<uint32_t>(c) * 5;
    c = h0 >> 26;
    h0 &= kMask26;
    h1 += static_cast<uint32_t>(c);
  }

  // Full carry.
  uint32_t c;
  c = h1 >> 26;
  h1 &= kMask26;
  h2 += c;
  c = h2 >> 26;
  h2 &= kMask26;
  h3 += c;
  c = h3 >> 26;
  h3 &= kMask26;
  h4 += c;
  c = h4 >> 26;
  h4 &= kMask26;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= kMask26;
  h1 += c;

  // Compute h + -p and select.
  uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= kMask26;
  uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= kMask26;
  uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= kMask26;
  uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= kMask26;
  uint32_t g4 = h4 + c - (1u << 26);

  uint32_t mask = (g4 >> 31) - 1;  // all-ones when h >= p
  h0 = (h0 & ~mask) | (g0 & mask);
  h1 = (h1 & ~mask) | (g1 & mask);
  h2 = (h2 & ~mask) | (g2 & mask);
  h3 = (h3 & ~mask) | (g3 & mask);
  h4 = (h4 & ~mask) | (g4 & mask);

  // Recombine into 32-bit words.
  uint32_t w0 = h0 | (h1 << 26);
  uint32_t w1 = (h1 >> 6) | (h2 << 20);
  uint32_t w2 = (h2 >> 12) | (h3 << 14);
  uint32_t w3 = (h3 >> 18) | (h4 << 8);

  // Add s = key[16..32) mod 2^128.
  uint64_t f;
  f = static_cast<uint64_t>(w0) + LoadLe32(key + 16);
  w0 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(w1) + LoadLe32(key + 20) + (f >> 32);
  w1 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(w2) + LoadLe32(key + 24) + (f >> 32);
  w2 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(w3) + LoadLe32(key + 28) + (f >> 32);
  w3 = static_cast<uint32_t>(f);

  std::array<uint8_t, 16> tag;
  uint32_t words[4] = {w0, w1, w2, w3};
  for (int i = 0; i < 4; i++) {
    for (int b = 0; b < 4; b++) {
      tag[static_cast<size_t>(4 * i + b)] =
          static_cast<uint8_t>(words[i] >> (8 * b));
    }
  }
  return tag;
}

}  // namespace atom
