// Poly1305 one-time authenticator (RFC 8439).
#ifndef SRC_CRYPTO_POLY1305_H_
#define SRC_CRYPTO_POLY1305_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace atom {

// Computes the Poly1305 tag of `msg` under the 32-byte one-time `key`.
std::array<uint8_t, 16> Poly1305Tag(const uint8_t key[32], BytesView msg);

}  // namespace atom

#endif  // SRC_CRYPTO_POLY1305_H_
