#include "src/crypto/schnorr.h"

#include "src/crypto/transcript.h"

namespace atom {
namespace {

Scalar Challenge(const Point& commit, const Point& pk, BytesView message) {
  Transcript t("atom/schnorr/v1");
  t.AppendPoint("commit", commit);
  t.AppendPoint("pk", pk);
  t.AppendBytes("msg", message);
  return t.ChallengeScalar("e");
}

}  // namespace

SchnorrKeypair SchnorrKeyGen(Rng& rng) {
  SchnorrKeypair kp;
  kp.sk = Scalar::Random(rng);
  kp.pk = Point::BaseMul(kp.sk);
  return kp;
}

Bytes SchnorrSignature::Encode() const {
  Bytes out = commit.Encode();
  auto rb = response.ToBytes();
  out.insert(out.end(), rb.begin(), rb.end());
  return out;
}

std::optional<SchnorrSignature> SchnorrSignature::Decode(BytesView bytes) {
  if (bytes.size() != kEncodedSize) {
    return std::nullopt;
  }
  auto commit = Point::Decode(bytes.subspan(0, Point::kEncodedSize));
  auto response = Scalar::FromBytes(bytes.subspan(Point::kEncodedSize));
  if (!commit.has_value() || !response.has_value()) {
    return std::nullopt;
  }
  return SchnorrSignature{*commit, *response};
}

SchnorrSignature SchnorrSign(const Scalar& sk, const Point& pk,
                             BytesView message, Rng& rng) {
  Scalar k = Scalar::Random(rng);
  SchnorrSignature sig;
  sig.commit = Point::BaseMul(k);
  Scalar e = Challenge(sig.commit, pk, message);
  sig.response = k + e * sk;
  return sig;
}

bool SchnorrVerify(const Point& pk, BytesView message,
                   const SchnorrSignature& sig) {
  Scalar e = Challenge(sig.commit, pk, message);
  return Point::BaseMul(sig.response) == sig.commit + pk.Mul(e);
}

bool SchnorrVerifyBatch(std::span<const Point> pks,
                        std::span<const BytesView> messages,
                        std::span<const SchnorrSignature> sigs) {
  if (pks.size() != messages.size() || pks.size() != sigs.size()) {
    return false;
  }
  const size_t n = pks.size();
  if (n == 0) {
    return true;
  }
  if (n == 1) {
    return SchnorrVerify(pks[0], messages[0], sigs[0]);
  }

  // Derandomized batch coefficients γ_i from a hash of the whole statement
  // (every key, message, and signature), mirroring VerifyEncProofBatch.
  Transcript t("atom/schnorr-batch/v1");
  t.AppendU64("n", n);
  for (size_t i = 0; i < n; i++) {
    t.AppendPoint("pk", pks[i]);
    t.AppendBytes("msg", messages[i]);
    t.AppendPoint("commit", sigs[i].commit);
    t.AppendScalar("s", sigs[i].response);
  }
  auto seed = t.ChallengeBytes("gamma-seed");
  Rng stream{BytesView(seed.data(), seed.size())};

  // Per-signature equation: s_i·G == R_i + e_i·pk_i. Random-combined:
  //   (Σ γ_i·s_i)·G == Σ γ_i·R_i + Σ (γ_i·e_i)·pk_i.
  Scalar lhs_scalar = Scalar::Zero();
  std::vector<Point> points;
  std::vector<Scalar> scalars;
  points.reserve(2 * n);
  scalars.reserve(2 * n);
  for (size_t i = 0; i < n; i++) {
    Scalar gamma = Scalar::Random(stream);
    Scalar e = Challenge(sigs[i].commit, pks[i], messages[i]);
    lhs_scalar = lhs_scalar + gamma * sigs[i].response;
    points.push_back(sigs[i].commit);
    scalars.push_back(gamma);
    points.push_back(pks[i]);
    scalars.push_back(gamma * e);
  }
  Point rhs = MultiScalarMul(points, scalars);
  return Point::BaseMul(lhs_scalar) == rhs;
}

}  // namespace atom
