#include "src/crypto/schnorr.h"

#include "src/crypto/transcript.h"

namespace atom {
namespace {

Scalar Challenge(const Point& commit, const Point& pk, BytesView message) {
  Transcript t("atom/schnorr/v1");
  t.AppendPoint("commit", commit);
  t.AppendPoint("pk", pk);
  t.AppendBytes("msg", message);
  return t.ChallengeScalar("e");
}

}  // namespace

SchnorrKeypair SchnorrKeyGen(Rng& rng) {
  SchnorrKeypair kp;
  kp.sk = Scalar::Random(rng);
  kp.pk = Point::BaseMul(kp.sk);
  return kp;
}

Bytes SchnorrSignature::Encode() const {
  Bytes out = commit.Encode();
  auto rb = response.ToBytes();
  out.insert(out.end(), rb.begin(), rb.end());
  return out;
}

std::optional<SchnorrSignature> SchnorrSignature::Decode(BytesView bytes) {
  if (bytes.size() != kEncodedSize) {
    return std::nullopt;
  }
  auto commit = Point::Decode(bytes.subspan(0, Point::kEncodedSize));
  auto response = Scalar::FromBytes(bytes.subspan(Point::kEncodedSize));
  if (!commit.has_value() || !response.has_value()) {
    return std::nullopt;
  }
  return SchnorrSignature{*commit, *response};
}

SchnorrSignature SchnorrSign(const Scalar& sk, const Point& pk,
                             BytesView message, Rng& rng) {
  Scalar k = Scalar::Random(rng);
  SchnorrSignature sig;
  sig.commit = Point::BaseMul(k);
  Scalar e = Challenge(sig.commit, pk, message);
  sig.response = k + e * sk;
  return sig;
}

bool SchnorrVerify(const Point& pk, BytesView message,
                   const SchnorrSignature& sig) {
  Scalar e = Challenge(sig.commit, pk, message);
  return Point::BaseMul(sig.response) == sig.commit + pk.Mul(e);
}

}  // namespace atom
