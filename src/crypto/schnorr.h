// Schnorr signatures over P-256. Server identities in Atom are public keys
// (§2.1: "a cryptographic public key defines the identity of each server");
// the directory authority verifies signed registrations, protocol messages
// between servers can be authenticated with these keys, and clients sign
// their streamed submissions to the gateway.
//
// Verification comes in two shapes: SchnorrVerify checks one signature with
// a fixed-base mult plus one generic mult, and SchnorrVerifyBatch folds any
// number of (pk, message, signature) triples into a single Pippenger
// multi-scalar multiplication via a derandomized random linear combination
// (the same construction as sigma.cpp's VerifyEncProofBatch) — the gateway's
// per-shard pump uses it so signature checking amortizes across a whole
// drained intake span.
#ifndef SRC_CRYPTO_SCHNORR_H_
#define SRC_CRYPTO_SCHNORR_H_

#include <optional>
#include <span>

#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

struct SchnorrKeypair {
  Scalar sk;
  Point pk;
};

SchnorrKeypair SchnorrKeyGen(Rng& rng);

struct SchnorrSignature {
  Point commit;     // R = k·G
  Scalar response;  // s = k + e·x, e = H(R ‖ pk ‖ msg)

  static constexpr size_t kEncodedSize = Point::kEncodedSize + 32;
  Bytes Encode() const;
  static std::optional<SchnorrSignature> Decode(BytesView bytes);
};

SchnorrSignature SchnorrSign(const Scalar& sk, const Point& pk,
                             BytesView message, Rng& rng);

bool SchnorrVerify(const Point& pk, BytesView message,
                   const SchnorrSignature& sig);

// Batch verification: true iff EVERY signature verifies. Spans must be the
// same length. The per-signature equations s_i·G == R_i + e_i·pk_i are
// random-linear-combined with coefficients γ_i derived from a hash of the
// whole statement (derandomized, so a forger cannot pick signatures after
// seeing the coefficients) and checked with one MSM over 2n points — ~6x
// cheaper than n independent verifications at n = 64. An empty batch is
// vacuously true; n == 1 falls through to SchnorrVerify. On failure the
// batch only says "some signature is bad": callers that need the culprit
// re-verify individually.
bool SchnorrVerifyBatch(std::span<const Point> pks,
                        std::span<const BytesView> messages,
                        std::span<const SchnorrSignature> sigs);

}  // namespace atom

#endif  // SRC_CRYPTO_SCHNORR_H_
