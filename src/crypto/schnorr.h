// Schnorr signatures over P-256. Server identities in Atom are public keys
// (§2.1: "a cryptographic public key defines the identity of each server");
// the directory authority verifies signed registrations, and protocol
// messages between servers can be authenticated with these keys.
#ifndef SRC_CRYPTO_SCHNORR_H_
#define SRC_CRYPTO_SCHNORR_H_

#include <optional>

#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

struct SchnorrKeypair {
  Scalar sk;
  Point pk;
};

SchnorrKeypair SchnorrKeyGen(Rng& rng);

struct SchnorrSignature {
  Point commit;     // R = k·G
  Scalar response;  // s = k + e·x, e = H(R ‖ pk ‖ msg)

  static constexpr size_t kEncodedSize = Point::kEncodedSize + 32;
  Bytes Encode() const;
  static std::optional<SchnorrSignature> Decode(BytesView bytes);
};

SchnorrSignature SchnorrSign(const Scalar& sk, const Point& pk,
                             BytesView message, Rng& rng);

bool SchnorrVerify(const Point& pk, BytesView message,
                   const SchnorrSignature& sig);

}  // namespace atom

#endif  // SRC_CRYPTO_SCHNORR_H_
