// SHA-256 (FIPS 180-4). Used for Fiat-Shamir challenges, key derivation, and
// hash-to-curve try-and-increment inputs.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace atom {

// Incremental SHA-256 context.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  // Absorbs more input.
  Sha256& Update(BytesView data);

  // Finalizes and returns the 32-byte digest. The context must not be used
  // after Finish().
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(BytesView data);

 private:
  void Compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  std::array<uint8_t, 64> buf_;
  size_t buf_len_ = 0;
};

}  // namespace atom

#endif  // SRC_CRYPTO_SHA256_H_
