#include "src/crypto/shamir.h"

#include <set>

namespace atom {
namespace {

// Evaluates the polynomial with the given coefficients (low to high) at x.
Scalar PolyEval(std::span<const Scalar> coeffs, const Scalar& x) {
  Scalar acc = Scalar::Zero();
  for (size_t j = coeffs.size(); j > 0; j--) {
    acc = acc * x + coeffs[j - 1];
  }
  return acc;
}

}  // namespace

std::vector<Share> ShamirShare(const Scalar& secret, size_t threshold,
                               size_t n, Rng& rng) {
  ATOM_CHECK(threshold >= 1 && threshold <= n);
  std::vector<Scalar> coeffs;
  coeffs.reserve(threshold);
  coeffs.push_back(secret);
  for (size_t j = 1; j < threshold; j++) {
    coeffs.push_back(Scalar::Random(rng));
  }
  std::vector<Share> shares;
  shares.reserve(n);
  for (uint32_t i = 1; i <= n; i++) {
    shares.push_back(Share{i, PolyEval(coeffs, Scalar::FromU64(i))});
  }
  return shares;
}

Scalar LagrangeCoefficient(std::span<const uint32_t> subset, uint32_t i) {
  // λ_i = Π_{j != i} j / (j - i), evaluated in the scalar field.
  Scalar num = Scalar::One();
  Scalar den = Scalar::One();
  Scalar xi = Scalar::FromU64(i);
  for (uint32_t j : subset) {
    if (j == i) {
      continue;
    }
    Scalar xj = Scalar::FromU64(j);
    num = num * xj;
    den = den * (xj - xi);
  }
  ATOM_CHECK(!den.IsZero());
  return num * den.Inv();
}

std::optional<Scalar> ShamirReconstruct(std::span<const Share> shares,
                                        size_t threshold) {
  if (shares.size() < threshold || threshold == 0) {
    return std::nullopt;
  }
  std::vector<uint32_t> subset;
  std::set<uint32_t> seen;
  for (size_t i = 0; i < threshold; i++) {
    if (shares[i].index == 0 || !seen.insert(shares[i].index).second) {
      return std::nullopt;
    }
    subset.push_back(shares[i].index);
  }
  Scalar secret = Scalar::Zero();
  for (size_t i = 0; i < threshold; i++) {
    secret = secret +
             LagrangeCoefficient(subset, shares[i].index) * shares[i].value;
  }
  return secret;
}

FeldmanDealing FeldmanDeal(const Scalar& secret, size_t threshold, size_t n,
                           Rng& rng) {
  ATOM_CHECK(threshold >= 1 && threshold <= n);
  std::vector<Scalar> coeffs;
  coeffs.reserve(threshold);
  coeffs.push_back(secret);
  for (size_t j = 1; j < threshold; j++) {
    coeffs.push_back(Scalar::Random(rng));
  }
  FeldmanDealing out;
  out.commitments.reserve(threshold);
  for (const Scalar& a : coeffs) {
    out.commitments.push_back(Point::BaseMul(a));
  }
  out.shares.reserve(n);
  for (uint32_t i = 1; i <= n; i++) {
    out.shares.push_back(Share{i, PolyEval(coeffs, Scalar::FromU64(i))});
  }
  return out;
}

Point FeldmanSharePublic(std::span<const Point> commitments, uint32_t index) {
  // Horner in the exponent: Σ_j index^j · A_j.
  Scalar x = Scalar::FromU64(index);
  Point acc = Point::Infinity();
  for (size_t j = commitments.size(); j > 0; j--) {
    acc = acc.Mul(x) + commitments[j - 1];
  }
  return acc;
}

bool FeldmanVerifyShare(std::span<const Point> commitments,
                        const Share& share) {
  if (share.index == 0 || commitments.empty()) {
    return false;
  }
  return Point::BaseMul(share.value) ==
         FeldmanSharePublic(commitments, share.index);
}

Point FeldmanPublicKey(std::span<const Point> commitments) {
  ATOM_CHECK(!commitments.empty());
  return commitments[0];
}

}  // namespace atom
