// Shamir secret sharing and Feldman verifiable secret sharing over the
// P-256 scalar field. Building blocks for the dealer-less DKG (src/crypto/
// dkg.h) and for Atom's buddy-group share escrow (§4.5).
#ifndef SRC_CRYPTO_SHAMIR_H_
#define SRC_CRYPTO_SHAMIR_H_

#include <optional>
#include <vector>

#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

// One share of a secret. Indices are the nonzero x-coordinates at which the
// sharing polynomial is evaluated (1-based; index 0 is the secret itself).
struct Share {
  uint32_t index = 0;
  Scalar value;
};

// Splits `secret` into n shares such that any `threshold` of them
// reconstruct it and fewer reveal nothing. Requires 1 <= threshold <= n.
std::vector<Share> ShamirShare(const Scalar& secret, size_t threshold,
                               size_t n, Rng& rng);

// Reconstructs the secret from exactly `threshold` shares with distinct
// indices. Returns nullopt on duplicate indices or too few shares.
std::optional<Scalar> ShamirReconstruct(std::span<const Share> shares,
                                        size_t threshold);

// Lagrange coefficient λ_i evaluated at x = 0 for the subset of share
// indices `subset`: Σ_{i∈subset} λ_i · f(i) = f(0).
Scalar LagrangeCoefficient(std::span<const uint32_t> subset, uint32_t i);

// Feldman VSS: a Shamir dealing plus commitments A_j = a_j·G to the
// polynomial coefficients, letting every shareholder verify its share
// against public data.
struct FeldmanDealing {
  std::vector<Point> commitments;  // A_0 .. A_{threshold-1}; A_0 = secret·G
  std::vector<Share> shares;       // shares[i] has index i+1
};

FeldmanDealing FeldmanDeal(const Scalar& secret, size_t threshold, size_t n,
                           Rng& rng);

// Checks share.value·G == Σ_j share.index^j · A_j.
bool FeldmanVerifyShare(std::span<const Point> commitments,
                        const Share& share);

// Public key of the shared secret (A_0).
Point FeldmanPublicKey(std::span<const Point> commitments);

// The public verification point for a specific index: Σ_j index^j · A_j.
// Equals share.value·G for an honest dealing.
Point FeldmanSharePublic(std::span<const Point> commitments, uint32_t index);

}  // namespace atom

#endif  // SRC_CRYPTO_SHAMIR_H_
