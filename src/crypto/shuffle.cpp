#include "src/crypto/shuffle.h"

#include <atomic>
#include <mutex>

#include "src/crypto/transcript.h"
#include "src/util/parallel.h"
#include "src/util/serde.h"

namespace atom {
namespace {

// ------------------------------------------------------------- generators

// Pedersen generator cache: H (chain base) plus H[0..n). All derived via
// hash-to-point, so no discrete-log relation between any of them (or G) is
// known to anyone.
class ShuffleGens {
 public:
  static ShuffleGens& Instance() {
    static ShuffleGens gens;
    return gens;
  }

  Point ChainBase() {
    std::lock_guard<std::mutex> lock(mu_);
    return chain_base_;
  }

  std::vector<Point> FirstN(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    while (hs_.size() < n) {
      ByteWriter label;
      label.Raw(ToBytes("atom/shuffle-gen"));
      label.U32(static_cast<uint32_t>(hs_.size()));
      hs_.push_back(HashToPoint(BytesView(label.bytes())));
    }
    return std::vector<Point>(hs_.begin(),
                              hs_.begin() + static_cast<ptrdiff_t>(n));
  }

 private:
  ShuffleGens() : chain_base_(HashToPoint(BytesView(ToBytes(
                      "atom/shuffle-chain-base")))) {}

  std::mutex mu_;
  Point chain_base_;
  std::vector<Point> hs_;
};

Bytes EncodeBatch(const CiphertextBatch& batch) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(batch.size()));
  for (const auto& vec : batch) {
    w.Raw(BytesView(EncodeCiphertextVec(vec)));
  }
  return w.Take();
}

// Derives the per-element challenges u[j] (Fiat-Shamir round 1): everything
// up to and including the permutation commitments is hashed, and the digest
// seeds a deterministic scalar stream.
std::vector<Scalar> DeriveU(Transcript& t, size_t n) {
  auto seed = t.ChallengeBytes("u-seed");
  Rng stream{BytesView(seed.data(), seed.size())};
  std::vector<Scalar> u;
  u.reserve(n);
  for (size_t j = 0; j < n; j++) {
    u.push_back(Scalar::Random(stream));
  }
  return u;
}

// MSM split across workers.
Point ParallelMsm(std::span<const Point> points, std::span<const Scalar> scalars,
                  size_t workers) {
  if (workers <= 1 || points.size() < 64) {
    return MultiScalarMul(points, scalars);
  }
  size_t chunks = workers;
  size_t chunk_size = (points.size() + chunks - 1) / chunks;
  std::vector<Point> partial(chunks, Point::Infinity());
  ParallelFor(workers, chunks, [&](size_t w) {
    size_t lo = w * chunk_size;
    size_t hi = std::min(points.size(), lo + chunk_size);
    if (lo < hi) {
      partial[w] = MultiScalarMul(points.subspan(lo, hi - lo),
                                  scalars.subspan(lo, hi - lo));
    }
  });
  Point acc = Point::Infinity();
  for (const Point& p : partial) {
    acc = acc + p;
  }
  return acc;
}

struct BatchShape {
  size_t n = 0;  // messages
  size_t l = 0;  // components per message
};

// Validates the batch is rectangular with Y = ⊥ everywhere.
std::optional<BatchShape> ShapeOf(const CiphertextBatch& batch) {
  if (batch.empty() || batch[0].empty()) {
    return std::nullopt;
  }
  BatchShape shape{batch.size(), batch[0].size()};
  for (const auto& vec : batch) {
    if (vec.size() != shape.l) {
      return std::nullopt;
    }
    for (const auto& ct : vec) {
      if (!ct.YIsNull()) {
        return std::nullopt;
      }
    }
  }
  return shape;
}

}  // namespace

// ---------------------------------------------------------- plain shuffle

std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; i++) {
    perm[i] = static_cast<uint32_t>(i);
  }
  for (size_t i = n; i > 1; i--) {
    size_t j = rng.NextBelow(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

namespace {

// Past ~10 multiplications by the same base, building a FixedBaseTable is
// cheaper than the generic Muls it replaces (build ≈ 960 mixed adds + one
// inversion ≈ 10 windowed Muls). 16 adds slack for the estimate's noise.
constexpr size_t kTableBuildThreshold = 16;

// Shared body: `pk_table` may be null (generic multiplication).
CiphertextBatch ShuffleBatchImpl(const Point& pk,
                                 const FixedBaseTable* pk_table,
                                 const CiphertextBatch& input, Rng& rng,
                                 std::vector<uint32_t>* perm_out,
                                 std::vector<std::vector<Scalar>>* rands_out,
                                 size_t workers) {
  auto shape = ShapeOf(input);
  ATOM_CHECK_MSG(shape.has_value(), "malformed batch passed to ShuffleBatch");
  const size_t n = shape->n, l = shape->l;

  std::vector<uint32_t> perm = RandomPermutation(n, rng);
  // Pre-draw all randomness serially (Rng is not thread-safe), then do the
  // point arithmetic in parallel.
  std::vector<std::vector<Scalar>> rands(n, std::vector<Scalar>(l));
  for (size_t i = 0; i < n; i++) {
    for (size_t c = 0; c < l; c++) {
      rands[i][c] = Scalar::Random(rng);
    }
  }

  CiphertextBatch output(n, ElGamalCiphertextVec(l));
  ParallelFor(workers, n, [&](size_t i) {
    for (size_t c = 0; c < l; c++) {
      const ElGamalCiphertext& in = input[perm[i]][c];
      const Scalar& r = rands[i][c];
      ElGamalCiphertext& out = output[i][c];
      out.r = in.r + Point::BaseMul(r);
      out.c = in.c + (pk_table != nullptr ? pk_table->Mul(r) : pk.Mul(r));
      out.y = Point::Infinity();
    }
  });

  if (perm_out != nullptr) {
    *perm_out = std::move(perm);
  }
  if (rands_out != nullptr) {
    *rands_out = std::move(rands);
  }
  return output;
}

}  // namespace

CiphertextBatch ShuffleBatch(const Point& pk, const CiphertextBatch& input,
                             Rng& rng, std::vector<uint32_t>* perm_out,
                             std::vector<std::vector<Scalar>>* rands_out,
                             size_t workers) {
  auto shape = ShapeOf(input);
  ATOM_CHECK_MSG(shape.has_value(), "malformed batch passed to ShuffleBatch");
  if (shape->n * shape->l >= kTableBuildThreshold) {
    FixedBaseTable table(pk);
    return ShuffleBatchImpl(pk, &table, input, rng, perm_out, rands_out,
                            workers);
  }
  return ShuffleBatchImpl(pk, nullptr, input, rng, perm_out, rands_out,
                          workers);
}

CiphertextBatch ShuffleBatch(const FixedBaseTable& pk,
                             const CiphertextBatch& input, Rng& rng,
                             std::vector<uint32_t>* perm_out,
                             std::vector<std::vector<Scalar>>* rands_out,
                             size_t workers) {
  return ShuffleBatchImpl(pk.base(), &pk, input, rng, perm_out, rands_out,
                          workers);
}

// -------------------------------------------------------- proof encoding

Bytes ShuffleProof::Encode() const {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(perm_commit.size()));
  w.U32(static_cast<uint32_t>(t4a.size()));
  auto put_points = [&w](const std::vector<Point>& ps) {
    w.Raw(BytesView(EncodePoints(ps)));  // one inversion per vector
  };
  auto put_scalars = [&w](const std::vector<Scalar>& ss) {
    for (const Scalar& s : ss) {
      auto b = s.ToBytes();
      w.Raw(BytesView(b.data(), b.size()));
    }
  };
  put_points(perm_commit);
  put_points(chain_commit);
  put_points({t1, t2, t3});
  put_points(t4a);
  put_points(t4b);
  put_points(t_hat);
  put_scalars({s1, s2, s3});
  put_scalars(s4);
  put_scalars(s_hat);
  put_scalars(s_prime);
  return w.Take();
}

std::optional<ShuffleProof> ShuffleProof::Decode(BytesView bytes) {
  ByteReader r(bytes);
  auto n = r.U32();
  auto l = r.U32();
  if (!n || !l || *n == 0 || *l == 0 || *n > (1u << 24) || *l > (1u << 16)) {
    return std::nullopt;
  }
  // The proof stores > 2n points and > 2n scalars; a count beyond what the
  // buffer could possibly hold is malformed (and must not drive reserve()).
  if (*n > r.remaining() / (2 * Point::kEncodedSize + 64)) {
    return std::nullopt;
  }
  auto get_points = [&r](size_t count,
                         std::vector<Point>* out) -> bool {
    out->reserve(count);
    for (size_t i = 0; i < count; i++) {
      auto raw = r.Raw(Point::kEncodedSize);
      if (!raw) {
        return false;
      }
      auto p = Point::Decode(BytesView(*raw));
      if (!p) {
        return false;
      }
      out->push_back(*p);
    }
    return true;
  };
  auto get_scalars = [&r](size_t count,
                          std::vector<Scalar>* out) -> bool {
    out->reserve(count);
    for (size_t i = 0; i < count; i++) {
      auto raw = r.Raw(32);
      if (!raw) {
        return false;
      }
      auto s = Scalar::FromBytes(BytesView(*raw));
      if (!s) {
        return false;
      }
      out->push_back(*s);
    }
    return true;
  };

  ShuffleProof proof;
  std::vector<Point> t123;
  std::vector<Scalar> s123;
  if (!get_points(*n, &proof.perm_commit) ||
      !get_points(*n, &proof.chain_commit) || !get_points(3, &t123) ||
      !get_points(*l, &proof.t4a) || !get_points(*l, &proof.t4b) ||
      !get_points(*n, &proof.t_hat) || !get_scalars(3, &s123) ||
      !get_scalars(*l, &proof.s4) || !get_scalars(*n, &proof.s_hat) ||
      !get_scalars(*n, &proof.s_prime) || !r.Done()) {
    return std::nullopt;
  }
  proof.t1 = t123[0];
  proof.t2 = t123[1];
  proof.t3 = t123[2];
  proof.s1 = s123[0];
  proof.s2 = s123[1];
  proof.s3 = s123[2];
  return proof;
}

// ------------------------------------------------------------------ prove

namespace {

ShuffleResult ShuffleAndProveImpl(const Point& pk,
                                  const FixedBaseTable* pk_table,
                                  const CiphertextBatch& input, Rng& rng,
                                  size_t workers) {
  auto shape = ShapeOf(input);
  ATOM_CHECK_MSG(shape.has_value(), "malformed batch passed to ShuffleAndProve");
  const size_t n = shape->n, l = shape->l;

  std::vector<uint32_t> perm;
  std::vector<std::vector<Scalar>> rands;
  ShuffleResult result;
  result.output =
      ShuffleBatchImpl(pk, pk_table, input, rng, &perm, &rands, workers);

  Point chain_base = ShuffleGens::Instance().ChainBase();
  std::vector<Point> hs = ShuffleGens::Instance().FirstN(n);

  // Inverse permutation: inv[j] = i with perm[i] = j.
  std::vector<uint32_t> inv(n);
  for (size_t i = 0; i < n; i++) {
    inv[perm[i]] = static_cast<uint32_t>(i);
  }

  // Permutation commitments c[j] = r[j]·G + H[inv[j]].
  std::vector<Scalar> cr(n);
  for (size_t j = 0; j < n; j++) {
    cr[j] = Scalar::Random(rng);
  }
  ShuffleProof& proof = result.proof;
  proof.perm_commit.resize(n);
  ParallelFor(workers, n, [&](size_t j) {
    proof.perm_commit[j] = Point::BaseMul(cr[j]) + hs[inv[j]];
  });

  // Fiat-Shamir round 1: derive u[j].
  Transcript transcript("atom/shuffle-proof/v1");
  transcript.AppendPoint("pk", pk);
  transcript.AppendU64("n", n);
  transcript.AppendU64("l", l);
  transcript.AppendBytes("input", BytesView(EncodeBatch(input)));
  transcript.AppendBytes("output", BytesView(EncodeBatch(result.output)));
  transcript.AppendBytes("perm-commit",
                         BytesView(EncodePoints(proof.perm_commit)));
  std::vector<Scalar> u = DeriveU(transcript, n);
  std::vector<Scalar> u_perm(n);  // u'[i] = u[perm[i]]
  for (size_t i = 0; i < n; i++) {
    u_perm[i] = u[perm[i]];
  }

  // Commitment chain ĉ[i] = r̂[i]·G + u'[i]·ĉ[i-1] (sequential by design).
  std::vector<Scalar> rhat(n);
  for (size_t i = 0; i < n; i++) {
    rhat[i] = Scalar::Random(rng);
  }
  proof.chain_commit.resize(n);
  Point prev = chain_base;
  for (size_t i = 0; i < n; i++) {
    proof.chain_commit[i] = Point::BaseMul(rhat[i]) + prev.Mul(u_perm[i]);
    prev = proof.chain_commit[i];
  }

  // Aggregate witnesses.
  Scalar r_bar = Scalar::Zero();   // Σ r[j]
  Scalar r_tilde = Scalar::Zero(); // Σ u[j]·r[j]
  for (size_t j = 0; j < n; j++) {
    r_bar = r_bar + cr[j];
    r_tilde = r_tilde + u[j] * cr[j];
  }
  std::vector<Scalar> r_prime(l, Scalar::Zero());  // Σ u'[i]·r̃[i][c]
  for (size_t i = 0; i < n; i++) {
    for (size_t c = 0; c < l; c++) {
      r_prime[c] = r_prime[c] + u_perm[i] * rands[i][c];
    }
  }
  // Chain aggregate: R[i] = r̂[i] + u'[i]·R[i-1]; r̂ = R[n-1].
  Scalar chain_r = Scalar::Zero();
  for (size_t i = 0; i < n; i++) {
    chain_r = rhat[i] + u_perm[i] * chain_r;
  }

  // Sigma commitments.
  Scalar w1 = Scalar::Random(rng);
  Scalar w2 = Scalar::Random(rng);
  Scalar w3 = Scalar::Random(rng);
  std::vector<Scalar> w4(l);
  for (size_t c = 0; c < l; c++) {
    w4[c] = Scalar::Random(rng);
  }
  std::vector<Scalar> w_hat(n), w_prime(n);
  for (size_t i = 0; i < n; i++) {
    w_hat[i] = Scalar::Random(rng);
    w_prime[i] = Scalar::Random(rng);
  }

  proof.t1 = Point::BaseMul(w1);
  proof.t2 = Point::BaseMul(w2);
  proof.t3 = Point::BaseMul(w3) + ParallelMsm(hs, w_prime, workers);
  proof.t4a.resize(l);
  proof.t4b.resize(l);
  {
    // Per component: t4a = Σ ω'[i]·ẽ[i].r - ω4·G, t4b likewise with .c / pk.
    std::vector<Point> col(n);
    for (size_t c = 0; c < l; c++) {
      for (size_t i = 0; i < n; i++) {
        col[i] = result.output[i][c].r;
      }
      proof.t4a[c] =
          ParallelMsm(col, w_prime, workers) - Point::BaseMul(w4[c]);
      for (size_t i = 0; i < n; i++) {
        col[i] = result.output[i][c].c;
      }
      proof.t4b[c] = ParallelMsm(col, w_prime, workers) -
                     (pk_table != nullptr ? pk_table->Mul(w4[c])
                                          : pk.Mul(w4[c]));
    }
  }
  proof.t_hat.resize(n);
  ParallelFor(workers, n, [&](size_t i) {
    const Point& link = (i == 0) ? chain_base : proof.chain_commit[i - 1];
    proof.t_hat[i] = Point::BaseMul(w_hat[i]) + link.Mul(w_prime[i]);
  });

  // Fiat-Shamir round 2: the main challenge.
  {
    // Flatten every sigma commitment into one EncodePoints batch; the byte
    // order matches the per-point encoding this replaced.
    std::vector<Point> flat;
    flat.reserve(2 * n + 2 * l + 3);
    flat.insert(flat.end(), proof.chain_commit.begin(),
                proof.chain_commit.end());
    flat.insert(flat.end(), proof.t_hat.begin(), proof.t_hat.end());
    for (size_t c = 0; c < l; c++) {
      flat.push_back(proof.t4a[c]);
      flat.push_back(proof.t4b[c]);
    }
    flat.push_back(proof.t1);
    flat.push_back(proof.t2);
    flat.push_back(proof.t3);
    transcript.AppendBytes("commitments", BytesView(EncodePoints(flat)));
  }
  Scalar challenge = transcript.ChallengeScalar("c");

  // Responses.
  proof.s1 = w1 + challenge * r_bar;
  proof.s2 = w2 + challenge * chain_r;
  proof.s3 = w3 + challenge * r_tilde;
  proof.s4.resize(l);
  for (size_t c = 0; c < l; c++) {
    proof.s4[c] = w4[c] + challenge * r_prime[c];
  }
  proof.s_hat.resize(n);
  proof.s_prime.resize(n);
  for (size_t i = 0; i < n; i++) {
    proof.s_hat[i] = w_hat[i] + challenge * rhat[i];
    proof.s_prime[i] = w_prime[i] + challenge * u_perm[i];
  }
  return result;
}

}  // namespace

ShuffleResult ShuffleAndProve(const Point& pk, const CiphertextBatch& input,
                              Rng& rng, size_t workers) {
  auto shape = ShapeOf(input);
  ATOM_CHECK_MSG(shape.has_value(), "malformed batch passed to ShuffleAndProve");
  if (shape->n * shape->l >= kTableBuildThreshold) {
    FixedBaseTable table(pk);
    return ShuffleAndProveImpl(pk, &table, input, rng, workers);
  }
  return ShuffleAndProveImpl(pk, nullptr, input, rng, workers);
}

ShuffleResult ShuffleAndProve(const FixedBaseTable& pk,
                              const CiphertextBatch& input, Rng& rng,
                              size_t workers) {
  return ShuffleAndProveImpl(pk.base(), &pk, input, rng, workers);
}

// ----------------------------------------------------------------- verify

bool VerifyShuffle(const Point& pk, const CiphertextBatch& input,
                   const CiphertextBatch& output, const ShuffleProof& proof,
                   size_t workers) {
  auto in_shape = ShapeOf(input);
  auto out_shape = ShapeOf(output);
  if (!in_shape || !out_shape || in_shape->n != out_shape->n ||
      in_shape->l != out_shape->l) {
    return false;
  }
  const size_t n = in_shape->n, l = in_shape->l;
  if (proof.perm_commit.size() != n || proof.chain_commit.size() != n ||
      proof.t_hat.size() != n || proof.s_hat.size() != n ||
      proof.s_prime.size() != n || proof.t4a.size() != l ||
      proof.t4b.size() != l || proof.s4.size() != l) {
    return false;
  }

  Point chain_base = ShuffleGens::Instance().ChainBase();
  std::vector<Point> hs = ShuffleGens::Instance().FirstN(n);

  // Recompute both Fiat-Shamir challenges.
  Transcript transcript("atom/shuffle-proof/v1");
  transcript.AppendPoint("pk", pk);
  transcript.AppendU64("n", n);
  transcript.AppendU64("l", l);
  transcript.AppendBytes("input", BytesView(EncodeBatch(input)));
  transcript.AppendBytes("output", BytesView(EncodeBatch(output)));
  transcript.AppendBytes("perm-commit",
                         BytesView(EncodePoints(proof.perm_commit)));
  std::vector<Scalar> u = DeriveU(transcript, n);
  {
    // Flatten every sigma commitment into one EncodePoints batch; the byte
    // order matches the per-point encoding this replaced.
    std::vector<Point> flat;
    flat.reserve(2 * n + 2 * l + 3);
    flat.insert(flat.end(), proof.chain_commit.begin(),
                proof.chain_commit.end());
    flat.insert(flat.end(), proof.t_hat.begin(), proof.t_hat.end());
    for (size_t c = 0; c < l; c++) {
      flat.push_back(proof.t4a[c]);
      flat.push_back(proof.t4b[c]);
    }
    flat.push_back(proof.t1);
    flat.push_back(proof.t2);
    flat.push_back(proof.t3);
    transcript.AppendBytes("commitments", BytesView(EncodePoints(flat)));
  }
  Scalar challenge = transcript.ChallengeScalar("c");

  // REL1: Σc[j] - ΣH[i] = r̄·G.
  Point c_bar = Point::Infinity();
  for (size_t j = 0; j < n; j++) {
    c_bar = c_bar + proof.perm_commit[j];
  }
  for (size_t i = 0; i < n; i++) {
    c_bar = c_bar - hs[i];
  }
  if (!(Point::BaseMul(proof.s1) == proof.t1 + c_bar.Mul(challenge))) {
    return false;
  }

  // REL2: ĉ[n-1] - (Πu[j])·H = r̂·G.
  Scalar u_product = Scalar::One();
  for (size_t j = 0; j < n; j++) {
    u_product = u_product * u[j];
  }
  Point c_hat = proof.chain_commit[n - 1] - chain_base.Mul(u_product);
  if (!(Point::BaseMul(proof.s2) == proof.t2 + c_hat.Mul(challenge))) {
    return false;
  }

  // REL3: Σu[j]·c[j] = r~·G + Σu'[i]·H[i], checked as
  //   s3·G + Σ s'[i]·H[i] == t3 + c·c~.
  Point c_tilde = ParallelMsm(proof.perm_commit, u, workers);
  Point lhs3 = Point::BaseMul(proof.s3) + ParallelMsm(hs, proof.s_prime,
                                                      workers);
  if (!(lhs3 == proof.t3 + c_tilde.Mul(challenge))) {
    return false;
  }

  // REL4 per component: Σ s'[i]·ẽ[i] - s4·(G|pk) == t4 + c·(Σ u[j]·e[j]).
  {
    std::vector<Point> col(n);
    for (size_t c = 0; c < l; c++) {
      for (size_t i = 0; i < n; i++) {
        col[i] = input[i][c].r;
      }
      Point e_bar_a = ParallelMsm(col, u, workers);
      for (size_t i = 0; i < n; i++) {
        col[i] = output[i][c].r;
      }
      Point lhs_a =
          ParallelMsm(col, proof.s_prime, workers) - Point::BaseMul(proof.s4[c]);
      if (!(lhs_a == proof.t4a[c] + e_bar_a.Mul(challenge))) {
        return false;
      }
      for (size_t i = 0; i < n; i++) {
        col[i] = input[i][c].c;
      }
      Point e_bar_b = ParallelMsm(col, u, workers);
      for (size_t i = 0; i < n; i++) {
        col[i] = output[i][c].c;
      }
      Point lhs_b =
          ParallelMsm(col, proof.s_prime, workers) - pk.Mul(proof.s4[c]);
      if (!(lhs_b == proof.t4b[c] + e_bar_b.Mul(challenge))) {
        return false;
      }
    }
  }

  // Chain steps: ŝ[i]·G + s'[i]·ĉ[i-1] == t̂[i] + c·ĉ[i].
  std::atomic<bool> chain_ok{true};
  ParallelFor(workers, n, [&](size_t i) {
    if (!chain_ok.load(std::memory_order_relaxed)) {
      return;
    }
    const Point& link = (i == 0) ? chain_base : proof.chain_commit[i - 1];
    Point lhs = Point::BaseMul(proof.s_hat[i]) + link.Mul(proof.s_prime[i]);
    Point rhs = proof.t_hat[i] + proof.chain_commit[i].Mul(challenge);
    if (!(lhs == rhs)) {
      chain_ok.store(false, std::memory_order_relaxed);
    }
  });
  return chain_ok.load();
}

}  // namespace atom
