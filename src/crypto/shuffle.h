// Verifiable shuffle of ElGamal ciphertext batches.
//
// This implements ShufProof from the paper's interface (§2.3): rerandomize a
// batch of ciphertexts under the group key, permute it, and produce a NIZK
// that the output is a permuted rerandomization of the input. The paper's
// prototype uses Neff's scheme [59]; we implement the Terelius–Wikström
// shuffle argument (the scheme behind Verificatum/CHVote), which has the
// same interface, the same security properties (sound + honest-verifier
// zero-knowledge under DDH/Pedersen binding), and the same Θ(1)
// exponentiations-per-ciphertext cost for both prover and verifier. See
// DESIGN.md "Substitutions".
//
// Statement proved, for inputs e and outputs ẽ with secret permutation π and
// rerandomizers r̃: ẽ[i] = e[π(i)] + Enc_pk(0; r̃[i]). The argument:
//  1. Pedersen-commits to π (c[j] = r[j]·G + H[π⁻¹(j)]).
//  2. Derives per-element challenges u[j] (Fiat-Shamir round 1).
//  3. A commitment chain ĉ and four sigma relations prove that the
//     committed matrix is a permutation matrix (sum + product checks, the
//     Terelius–Wikström lemma) and that Σ u'[i]·ẽ[i] - Σ u[j]·e[j] lies in
//     the rerandomization subspace (witness r').
//
// Messages in Atom are vectors of L component ciphertexts ("wide"
// ciphertexts); one proof binds all components under a single permutation by
// repeating only the ciphertext-relation (REL4) per component.
#ifndef SRC_CRYPTO_SHUFFLE_H_
#define SRC_CRYPTO_SHUFFLE_H_

#include <optional>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

// batch[i] is message i's vector of component ciphertexts; all vectors must
// have equal length L >= 1 and Y = ⊥ on every component.
using CiphertextBatch = std::vector<ElGamalCiphertextVec>;

// Uniformly random permutation of {0..n-1} (Fisher-Yates).
std::vector<uint32_t> RandomPermutation(size_t n, Rng& rng);

// Plain (unproven) shuffle: rerandomizes every component under pk and
// applies a fresh random permutation. Used by the trap variant, where
// correctness is enforced by traps instead of NIZKs. If `perm_out` /
// `rands_out` are non-null they receive the witnesses (for ShuffleProve or
// the blame protocol). `workers` parallelizes the rerandomizations.
// The Point overload transparently builds a FixedBaseTable for pk when the
// batch is large enough to amortize the build (n·l >= 16 rerandomizations);
// callers that already hold a cached table use the table overload and skip
// even that. Outputs are identical for identical rng state either way.
CiphertextBatch ShuffleBatch(const Point& pk, const CiphertextBatch& input,
                             Rng& rng,
                             std::vector<uint32_t>* perm_out = nullptr,
                             std::vector<std::vector<Scalar>>* rands_out =
                                 nullptr,
                             size_t workers = 1);
CiphertextBatch ShuffleBatch(const FixedBaseTable& pk,
                             const CiphertextBatch& input, Rng& rng,
                             std::vector<uint32_t>* perm_out = nullptr,
                             std::vector<std::vector<Scalar>>* rands_out =
                                 nullptr,
                             size_t workers = 1);

struct ShuffleProof {
  std::vector<Point> perm_commit;   // c[j], one per message
  std::vector<Point> chain_commit;  // ĉ[i]
  Point t1, t2, t3;                 // sigma commitments for REL1..REL3
  std::vector<Point> t4a, t4b;      // REL4 commitments, one pair per component
  std::vector<Point> t_hat;         // chain-step commitments
  Scalar s1, s2, s3;                // sigma responses
  std::vector<Scalar> s4;           // REL4 responses, one per component
  std::vector<Scalar> s_hat;        // chain-step responses
  std::vector<Scalar> s_prime;      // permuted-challenge responses

  Bytes Encode() const;
  static std::optional<ShuffleProof> Decode(BytesView bytes);
};

struct ShuffleResult {
  CiphertextBatch output;
  ShuffleProof proof;
};

// Shuffles `input` under `pk` and proves it. `workers` parallelizes the
// data-parallel parts (rerandomization, per-element commitments); the
// commitment chain itself is inherently sequential, which is why the NIZK
// variant's multi-core speed-up is sub-linear (paper Fig. 7).
ShuffleResult ShuffleAndProve(const Point& pk, const CiphertextBatch& input,
                              Rng& rng, size_t workers = 1);
ShuffleResult ShuffleAndProve(const FixedBaseTable& pk,
                              const CiphertextBatch& input, Rng& rng,
                              size_t workers = 1);

// Verifies that `output` is a permuted rerandomization of `input` under pk.
bool VerifyShuffle(const Point& pk, const CiphertextBatch& input,
                   const CiphertextBatch& output, const ShuffleProof& proof,
                   size_t workers = 1);

}  // namespace atom

#endif  // SRC_CRYPTO_SHUFFLE_H_
