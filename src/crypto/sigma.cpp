#include "src/crypto/sigma.h"

#include "src/crypto/transcript.h"
#include "src/util/serde.h"

namespace atom {
namespace {

Scalar EncChallenge(const Point& pk, uint32_t gid, const ElGamalCiphertext& ct,
                    const Point& commit) {
  Transcript t("atom/enc-proof/v1");
  t.AppendPoint("pk", pk);
  t.AppendU64("gid", gid);
  t.AppendPoint("ct.r", ct.r);
  t.AppendPoint("ct.c", ct.c);
  t.AppendPoint("ct.y", ct.y);
  t.AppendPoint("commit", commit);
  return t.ChallengeScalar("t");
}

// Applies the ReEnc Y-normalization so prover and verifier agree on the
// effective input.
ElGamalCiphertext NormalizeInput(const ElGamalCiphertext& input) {
  ElGamalCiphertext in = input;
  if (in.YIsNull()) {
    in.y = in.r;
    in.r = Point::Infinity();
  }
  return in;
}

Scalar ReEncChallenge(const Point& server_pk, const Point* next_pk,
                      const ElGamalCiphertext& in,
                      const ElGamalCiphertext& out, const Point& a1,
                      const Point& a2, const Point& a3) {
  Transcript t("atom/reenc-proof/v1");
  t.AppendPoint("server_pk", server_pk);
  t.AppendPoint("next_pk", next_pk != nullptr ? *next_pk : Point::Infinity());
  t.AppendU64("has_next", next_pk != nullptr ? 1 : 0);
  t.AppendPoint("in.r", in.r);
  t.AppendPoint("in.c", in.c);
  t.AppendPoint("in.y", in.y);
  t.AppendPoint("out.r", out.r);
  t.AppendPoint("out.c", out.c);
  t.AppendPoint("out.y", out.y);
  t.AppendPoint("a1", a1);
  t.AppendPoint("a2", a2);
  t.AppendPoint("a3", a3);
  return t.ChallengeScalar("e");
}

}  // namespace

// ---------------------------------------------------------------- EncProof

Bytes EncProof::Encode() const {
  Bytes out = commit.Encode();
  auto ub = u.ToBytes();
  out.insert(out.end(), ub.begin(), ub.end());
  return out;
}

std::optional<EncProof> EncProof::Decode(BytesView bytes) {
  if (bytes.size() != kEncodedSize) {
    return std::nullopt;
  }
  auto commit = Point::Decode(bytes.subspan(0, Point::kEncodedSize));
  auto u = Scalar::FromBytes(bytes.subspan(Point::kEncodedSize));
  if (!commit.has_value() || !u.has_value()) {
    return std::nullopt;
  }
  return EncProof{*commit, *u};
}

EncProof MakeEncProof(const Point& pk, uint32_t gid,
                      const ElGamalCiphertext& ct, const Scalar& randomness,
                      Rng& rng) {
  Scalar s = Scalar::Random(rng);
  EncProof proof;
  proof.commit = Point::BaseMul(s);
  Scalar t = EncChallenge(pk, gid, ct, proof.commit);
  proof.u = s + t * randomness;
  return proof;
}

bool VerifyEncProof(const Point& pk, uint32_t gid,
                    const ElGamalCiphertext& ct, const EncProof& proof) {
  Scalar t = EncChallenge(pk, gid, ct, proof.commit);
  // g^u == commit * R^t.
  return Point::BaseMul(proof.u) == proof.commit + ct.r.Mul(t);
}

std::vector<EncProof> MakeEncProofVec(const Point& pk, uint32_t gid,
                                      const ElGamalCiphertextVec& cts,
                                      std::span<const Scalar> randomness,
                                      Rng& rng) {
  ATOM_CHECK(cts.size() == randomness.size());
  std::vector<EncProof> out;
  out.reserve(cts.size());
  for (size_t i = 0; i < cts.size(); i++) {
    out.push_back(MakeEncProof(pk, gid, cts[i], randomness[i], rng));
  }
  return out;
}

bool VerifyEncProofVec(const Point& pk, uint32_t gid,
                       const ElGamalCiphertextVec& cts,
                       std::span<const EncProof> proofs) {
  if (cts.size() != proofs.size()) {
    return false;
  }
  if (cts.size() >= 8) {
    return VerifyEncProofBatch(pk, gid, cts, proofs);
  }
  for (size_t i = 0; i < cts.size(); i++) {
    if (!VerifyEncProof(pk, gid, cts[i], proofs[i])) {
      return false;
    }
  }
  return true;
}

bool VerifyEncProofBatch(const Point& pk, uint32_t gid,
                         const ElGamalCiphertextVec& cts,
                         std::span<const EncProof> proofs) {
  if (cts.size() != proofs.size() || cts.empty()) {
    return false;
  }
  const size_t n = cts.size();

  // Derandomized batch coefficients: γ_i from a hash of the whole
  // statement, so no coefficient can be predicted before the proofs are
  // fixed.
  Transcript t("atom/enc-proof-batch/v1");
  t.AppendPoint("pk", pk);
  t.AppendU64("gid", gid);
  for (size_t i = 0; i < n; i++) {
    t.AppendPoint("ct.r", cts[i].r);
    t.AppendPoint("ct.c", cts[i].c);
    t.AppendPoint("ct.y", cts[i].y);
    t.AppendPoint("commit", proofs[i].commit);
    t.AppendScalar("u", proofs[i].u);
  }
  auto seed = t.ChallengeBytes("gamma-seed");
  Rng stream{BytesView(seed.data(), seed.size())};

  // Per-proof equation: u_i·G == commit_i + t_i·R_i. Random-combined:
  //   (Σ γ_i·u_i)·G - Σ γ_i·commit_i - Σ (γ_i·t_i)·R_i == identity.
  Scalar lhs_scalar = Scalar::Zero();
  std::vector<Point> points;
  std::vector<Scalar> scalars;
  points.reserve(2 * n);
  scalars.reserve(2 * n);
  for (size_t i = 0; i < n; i++) {
    Scalar gamma = Scalar::Random(stream);
    Scalar challenge = EncChallenge(pk, gid, cts[i], proofs[i].commit);
    lhs_scalar = lhs_scalar + gamma * proofs[i].u;
    points.push_back(proofs[i].commit);
    scalars.push_back(gamma);
    points.push_back(cts[i].r);
    scalars.push_back(gamma * challenge);
  }
  Point rhs = MultiScalarMul(points, scalars);
  return Point::BaseMul(lhs_scalar) == rhs;
}

// -------------------------------------------------------------- ReEncProof

Bytes ReEncProof::Encode() const {
  Bytes out;
  out.reserve(kEncodedSize);
  for (const Point* p : {&a1, &a2, &a3}) {
    Bytes enc = p->Encode();
    out.insert(out.end(), enc.begin(), enc.end());
  }
  for (const Scalar* s : {&zx, &zr}) {
    auto sb = s->ToBytes();
    out.insert(out.end(), sb.begin(), sb.end());
  }
  return out;
}

std::optional<ReEncProof> ReEncProof::Decode(BytesView bytes) {
  if (bytes.size() != kEncodedSize) {
    return std::nullopt;
  }
  ReEncProof proof;
  Point* points[3] = {&proof.a1, &proof.a2, &proof.a3};
  size_t off = 0;
  for (auto* p : points) {
    auto dec = Point::Decode(bytes.subspan(off, Point::kEncodedSize));
    if (!dec.has_value()) {
      return std::nullopt;
    }
    *p = *dec;
    off += Point::kEncodedSize;
  }
  Scalar* scalars[2] = {&proof.zx, &proof.zr};
  for (auto* s : scalars) {
    auto dec = Scalar::FromBytes(bytes.subspan(off, 32));
    if (!dec.has_value()) {
      return std::nullopt;
    }
    *s = *dec;
    off += 32;
  }
  return proof;
}

ReEncProof MakeReEncProof(const Scalar& server_sk, const Point& server_pk,
                          const Point* next_pk, const ElGamalCiphertext& input,
                          const ElGamalCiphertext& output,
                          const Scalar& rewrap_randomness, Rng& rng) {
  ElGamalCiphertext in = NormalizeInput(input);

  Scalar kx = Scalar::Random(rng);
  Scalar kr = Scalar::Random(rng);

  ReEncProof proof;
  proof.a1 = Point::BaseMul(kx);
  proof.a2 = Point::BaseMul(kr);
  // a3 commits to the c-relation: -kx*Y (+ kr*next_pk).
  proof.a3 = in.y.Mul(kx).Neg();
  if (next_pk != nullptr) {
    proof.a3 = proof.a3 + next_pk->Mul(kr);
  }

  Scalar e = ReEncChallenge(server_pk, next_pk, in, output, proof.a1,
                            proof.a2, proof.a3);
  proof.zx = kx + e * server_sk;
  proof.zr = kr + e * rewrap_randomness;
  return proof;
}

bool VerifyReEncProof(const Point& server_pk, const Point* next_pk,
                      const ElGamalCiphertext& input,
                      const ElGamalCiphertext& output,
                      const ReEncProof& proof) {
  ElGamalCiphertext in = NormalizeInput(input);
  // The hop's Y must carry through unchanged.
  if (!(output.y == in.y)) {
    return false;
  }

  Scalar e = ReEncChallenge(server_pk, next_pk, in, output, proof.a1,
                            proof.a2, proof.a3);

  // Relation 1: zx*G == a1 + e*server_pk.
  if (!(Point::BaseMul(proof.zx) == proof.a1 + server_pk.Mul(e))) {
    return false;
  }
  // Relation 2: zr*G == a2 + e*(out.r - in.r).
  Point dr = output.r - in.r;
  if (!(Point::BaseMul(proof.zr) == proof.a2 + dr.Mul(e))) {
    return false;
  }
  // Relation 3: -zx*Y (+ zr*next_pk) == a3 + e*(out.c - in.c).
  Point lhs = in.y.Mul(proof.zx).Neg();
  if (next_pk != nullptr) {
    lhs = lhs + next_pk->Mul(proof.zr);
  }
  Point dc = output.c - in.c;
  return lhs == proof.a3 + dc.Mul(e);
}

}  // namespace atom
