// Sigma-protocol NIZKs (Fiat-Shamir in the random-oracle model):
//
//  * EncProof  — proof of knowledge of the encryption randomness of an
//    ElGamal ciphertext, bound to the entry group id (paper Appendix A).
//    Stops a malicious user from submitting a rerandomized copy of an honest
//    user's ciphertext (duplicate plaintexts at the exit would deanonymize
//    the honest sender, §3), and the gid binding stops replaying the same
//    (ciphertext, proof) pair at a different group.
//
//  * ReEncProof — proof that a server's decrypt-and-reencrypt step (Appendix
//    A ReEnc) was performed correctly w.r.t. its public key, extending the
//    Chaum-Pedersen proof of discrete-log equality with the rewrap witness.
//
// Proofs are non-malleable in the usual Fiat-Shamir sense: the full
// statement (keys, ciphertexts, context) is hashed into the challenge.
#ifndef SRC_CRYPTO_SIGMA_H_
#define SRC_CRYPTO_SIGMA_H_

#include <optional>

#include "src/crypto/elgamal.h"
#include "src/crypto/p256.h"
#include "src/util/rng.h"

namespace atom {

// ---------------------------------------------------------------- EncProof

struct EncProof {
  Point commit;  // g^s
  Scalar u;      // s + t*r

  static constexpr size_t kEncodedSize = Point::kEncodedSize + 32;
  Bytes Encode() const;
  static std::optional<EncProof> Decode(BytesView bytes);
};

// Proves knowledge of r with ct.r = r*G, binding (pk, gid, ct).
EncProof MakeEncProof(const Point& pk, uint32_t gid,
                      const ElGamalCiphertext& ct, const Scalar& randomness,
                      Rng& rng);

bool VerifyEncProof(const Point& pk, uint32_t gid,
                    const ElGamalCiphertext& ct, const EncProof& proof);

// Per-component proofs for a vector ciphertext.
std::vector<EncProof> MakeEncProofVec(const Point& pk, uint32_t gid,
                                      const ElGamalCiphertextVec& cts,
                                      std::span<const Scalar> randomness,
                                      Rng& rng);
bool VerifyEncProofVec(const Point& pk, uint32_t gid,
                       const ElGamalCiphertextVec& cts,
                       std::span<const EncProof> proofs);

// Batch verification with the small-exponent random-linear-combination
// test: one Pippenger MSM instead of 2N scalar multiplications, several
// times faster for the entry groups, which verify every user's proofs.
// Coefficients are derived by hashing the full statement (derandomized
// batch test), so a batch containing any invalid proof is rejected except
// with negligible probability. VerifyEncProofVec switches to this path
// automatically for large batches.
bool VerifyEncProofBatch(const Point& pk, uint32_t gid,
                         const ElGamalCiphertextVec& cts,
                         std::span<const EncProof> proofs);

// -------------------------------------------------------------- ReEncProof

// Proof for the relation (witnesses x = server secret, r' = rewrap
// randomness; all other values public):
//   server_pk = x*G
//   out.r     = in.r + r'*G          (after the Y normalization)
//   out.c     = in.c - x*Y + r'*next_pk
// With next_pk = nullptr the rewrap terms vanish and this reduces to a
// Chaum-Pedersen equality proof for the staged decryption.
struct ReEncProof {
  Point a1, a2, a3;  // commitments for the three relations
  Scalar zx, zr;     // responses for the two witnesses

  static constexpr size_t kEncodedSize = 3 * Point::kEncodedSize + 2 * 32;
  Bytes Encode() const;
  static std::optional<ReEncProof> Decode(BytesView bytes);
};

// `input` is the ciphertext as received (Y possibly ⊥); the Y normalization
// (Y ← R, R ← identity) is recomputed by both prover and verifier.
ReEncProof MakeReEncProof(const Scalar& server_sk, const Point& server_pk,
                          const Point* next_pk, const ElGamalCiphertext& input,
                          const ElGamalCiphertext& output,
                          const Scalar& rewrap_randomness, Rng& rng);

bool VerifyReEncProof(const Point& server_pk, const Point* next_pk,
                      const ElGamalCiphertext& input,
                      const ElGamalCiphertext& output,
                      const ReEncProof& proof);

}  // namespace atom

#endif  // SRC_CRYPTO_SIGMA_H_
