#include "src/crypto/threshold.h"

#include <algorithm>

namespace atom {

Scalar WeightedShare(const DkgServerKey& key,
                     std::span<const uint32_t> subset) {
  ATOM_CHECK(std::find(subset.begin(), subset.end(), key.index) !=
             subset.end());
  return LagrangeCoefficient(subset, key.index) * key.share;
}

Point WeightedSharePublic(const DkgPublic& pub, uint32_t index,
                          std::span<const uint32_t> subset) {
  ATOM_CHECK(index >= 1 && index <= pub.share_pks.size());
  return pub.share_pks[index - 1].Mul(LagrangeCoefficient(subset, index));
}

std::optional<Point> ThresholdDecrypt(const DkgPublic& pub,
                                      std::span<const DkgServerKey> keys,
                                      std::span<const uint32_t> subset,
                                      const ElGamalCiphertext& ct) {
  if (subset.size() != pub.params.threshold || !ct.YIsNull()) {
    return std::nullopt;
  }
  // Strip with each participant's weighted share, order-independent; the
  // driver Rng is unused on the pure-decrypt path.
  Rng unused(uint64_t{0});
  ElGamalCiphertext cur = ct;
  for (uint32_t idx : subset) {
    ATOM_CHECK(idx >= 1 && idx <= keys.size());
    Scalar w = WeightedShare(keys[idx - 1], subset);
    cur = ElGamalReEnc(w, nullptr, cur, unused);
  }
  cur = ElGamalFinalizeHop(cur);
  return ElGamalDecrypt(Scalar::Zero(), cur);
}

BuddyEscrow EscrowShare(const DkgServerKey& key, size_t buddy_group_size,
                        size_t threshold, Rng& rng) {
  BuddyEscrow escrow;
  escrow.owner_index = key.index;
  escrow.threshold = threshold;
  escrow.sub_shares = ShamirShare(key.share, threshold, buddy_group_size, rng);
  return escrow;
}

std::optional<DkgServerKey> RecoverShare(const DkgPublic& pub,
                                         uint32_t owner_index,
                                         std::span<const Share> sub_shares,
                                         size_t threshold) {
  auto share = ShamirReconstruct(sub_shares, threshold);
  if (!share.has_value()) {
    return std::nullopt;
  }
  // Check against the public verification key X_i from the DKG transcript.
  if (owner_index == 0 || owner_index > pub.share_pks.size() ||
      !(Point::BaseMul(*share) == pub.share_pks[owner_index - 1])) {
    return std::nullopt;
  }
  return DkgServerKey{owner_index, *share};
}

}  // namespace atom
