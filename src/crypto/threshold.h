// Threshold ElGamal on top of the DKG: any `threshold` of a group's k
// servers can jointly perform the out-of-order decrypt-and-reencrypt step
// (or final decryption) under the group key, by using Lagrange-weighted
// shares in the ordinary ReEnc operation. This is Atom's "many-trust"
// mechanism (§4.5): with at least h honest servers per group and threshold
// k-(h-1), any participating subset contains an honest server, and up to
// h-1 servers may fail without stalling the group.
//
// Buddy-group escrow (§4.5): each server Shamir-shares its own key share
// with a buddy group so that a replacement group can reconstruct it after a
// catastrophic failure.
#ifndef SRC_CRYPTO_THRESHOLD_H_
#define SRC_CRYPTO_THRESHOLD_H_

#include <vector>

#include "src/crypto/dkg.h"
#include "src/crypto/elgamal.h"

namespace atom {

// The Lagrange-weighted share w_i = λ_i^S · x_i for server i participating
// in subset S. Passing w_i as the "secret key" to ElGamalReEnc makes the
// subset's combined strips equal one strip under the group secret.
Scalar WeightedShare(const DkgServerKey& key,
                     std::span<const uint32_t> subset);

// The matching public key W_i = λ_i^S · X_i against which this server's
// ReEncProof verifies. Computable by anyone from the DKG public output.
Point WeightedSharePublic(const DkgPublic& pub, uint32_t index,
                          std::span<const uint32_t> subset);

// Full threshold decryption of a ciphertext (Y = ⊥) by subset S: every
// participant strips with its weighted share, in any order.
std::optional<Point> ThresholdDecrypt(const DkgPublic& pub,
                                      std::span<const DkgServerKey> keys,
                                      std::span<const uint32_t> subset,
                                      const ElGamalCiphertext& ct);

// --------------------------------------------------------- buddy escrow --

// One server's escrow of its DKG share with a buddy group of size n and
// reconstruction threshold t (paper: an anytrust buddy group, t chosen so
// an honest quorum can reconstruct).
struct BuddyEscrow {
  uint32_t owner_index = 0;          // whose share is escrowed
  std::vector<Share> sub_shares;     // sub_shares[j] held by buddy j+1
  size_t threshold = 0;
};

BuddyEscrow EscrowShare(const DkgServerKey& key, size_t buddy_group_size,
                        size_t threshold, Rng& rng);

// Reconstructs the lost server's share from any `threshold` sub-shares and
// verifies it against the DKG public output. Returns nullopt if the
// sub-shares are inconsistent or fail verification.
std::optional<DkgServerKey> RecoverShare(const DkgPublic& pub,
                                         uint32_t owner_index,
                                         std::span<const Share> sub_shares,
                                         size_t threshold);

}  // namespace atom

#endif  // SRC_CRYPTO_THRESHOLD_H_
