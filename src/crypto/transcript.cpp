#include "src/crypto/transcript.h"

#include "src/crypto/sha256.h"

namespace atom {

Transcript::Transcript(std::string_view label) {
  buf_.Var(BytesView(reinterpret_cast<const uint8_t*>(label.data()),
                     label.size()));
}

void Transcript::AppendBytes(std::string_view label, BytesView data) {
  buf_.Var(BytesView(reinterpret_cast<const uint8_t*>(label.data()),
                     label.size()));
  buf_.Var(data);
}

void Transcript::AppendU64(std::string_view label, uint64_t v) {
  ByteWriter w;
  w.U64(v);
  AppendBytes(label, BytesView(w.bytes()));
}

void Transcript::AppendPoint(std::string_view label, const Point& p) {
  AppendBytes(label, BytesView(p.Encode()));
}

void Transcript::AppendScalar(std::string_view label, const Scalar& s) {
  auto bytes = s.ToBytes();
  AppendBytes(label, BytesView(bytes.data(), bytes.size()));
}

Scalar Transcript::ChallengeScalar(std::string_view label) {
  auto digest = ChallengeBytes(label);
  return Scalar::FromBytesReduced(BytesView(digest.data(), digest.size()));
}

std::array<uint8_t, 32> Transcript::ChallengeBytes(std::string_view label) {
  ByteWriter domain;
  domain.Var(BytesView(reinterpret_cast<const uint8_t*>(label.data()),
                       label.size()));
  auto digest = Sha256()
                    .Update(BytesView(buf_.bytes()))
                    .Update(BytesView(domain.bytes()))
                    .Finish();
  // Fold the challenge back in so later challenges depend on earlier ones.
  AppendBytes("challenge", BytesView(digest.data(), digest.size()));
  return digest;
}

}  // namespace atom
