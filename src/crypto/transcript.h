// Fiat-Shamir transcript: a canonical, label-separated accumulator of
// protocol messages from which non-interactive challenges are derived.
// All NIZKs in src/crypto derive their challenges through this class, which
// makes domain separation and statement binding uniform and auditable.
#ifndef SRC_CRYPTO_TRANSCRIPT_H_
#define SRC_CRYPTO_TRANSCRIPT_H_

#include <string_view>

#include "src/crypto/p256.h"
#include "src/util/serde.h"

namespace atom {

class Transcript {
 public:
  // `label` domain-separates protocols (e.g. "atom/enc-proof/v1").
  explicit Transcript(std::string_view label);

  void AppendBytes(std::string_view label, BytesView data);
  void AppendU64(std::string_view label, uint64_t v);
  void AppendPoint(std::string_view label, const Point& p);
  void AppendScalar(std::string_view label, const Scalar& s);

  // Derives a challenge scalar and folds it back into the transcript, so
  // successive challenges are independent.
  Scalar ChallengeScalar(std::string_view label);

  // Derives 32 challenge bytes (for seeding per-element challenge vectors).
  std::array<uint8_t, 32> ChallengeBytes(std::string_view label);

 private:
  ByteWriter buf_;
};

}  // namespace atom

#endif  // SRC_CRYPTO_TRANSCRIPT_H_
