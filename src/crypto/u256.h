// Fixed-width 256-bit unsigned integers: 4 little-endian 64-bit limbs.
// This is the raw-integer layer under the Montgomery fields (src/crypto/mont.h)
// and the P-256 implementation. Header-only; all operations are branch-light
// and allocation-free.
#ifndef SRC_CRYPTO_U256_H_
#define SRC_CRYPTO_U256_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"
#include "src/util/check.h"

namespace atom {

struct U256 {
  // v[0] is the least significant limb.
  uint64_t v[4] = {0, 0, 0, 0};

  static constexpr U256 Zero() { return U256{}; }

  static constexpr U256 FromU64(uint64_t x) { return U256{{x, 0, 0, 0}}; }

  static constexpr U256 FromLimbs(uint64_t l0, uint64_t l1, uint64_t l2,
                                  uint64_t l3) {
    return U256{{l0, l1, l2, l3}};
  }

  constexpr bool IsZero() const {
    return (v[0] | v[1] | v[2] | v[3]) == 0;
  }

  constexpr bool operator==(const U256& o) const {
    return v[0] == o.v[0] && v[1] == o.v[1] && v[2] == o.v[2] && v[3] == o.v[3];
  }

  // Returns bit i (0 = least significant).
  constexpr int Bit(int i) const {
    return static_cast<int>((v[i / 64] >> (i % 64)) & 1);
  }

  // Big-endian 32-byte encoding (standard for EC coordinates and scalars).
  std::array<uint8_t, 32> ToBytesBe() const {
    std::array<uint8_t, 32> out;
    for (int limb = 0; limb < 4; limb++) {
      for (int b = 0; b < 8; b++) {
        out[static_cast<size_t>(31 - 8 * limb - b)] =
            static_cast<uint8_t>(v[limb] >> (8 * b));
      }
    }
    return out;
  }

  static U256 FromBytesBe(BytesView bytes) {
    ATOM_CHECK(bytes.size() == 32);
    U256 out;
    for (int limb = 0; limb < 4; limb++) {
      uint64_t acc = 0;
      for (int b = 7; b >= 0; b--) {
        acc = (acc << 8) |
              bytes[static_cast<size_t>(31 - 8 * limb - b)];
      }
      out.v[limb] = acc;
    }
    return out;
  }
};

// a < b as 256-bit unsigned integers.
inline bool U256Less(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; i--) {
    if (a.v[i] != b.v[i]) {
      return a.v[i] < b.v[i];
    }
  }
  return false;
}

// out = a + b; returns the carry bit.
inline uint64_t U256Add(U256* out, const U256& a, const U256& b) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; i++) {
    carry += static_cast<unsigned __int128>(a.v[i]) + b.v[i];
    out->v[i] = static_cast<uint64_t>(carry);
    carry >>= 64;
  }
  return static_cast<uint64_t>(carry);
}

// out = a - b; returns the borrow bit.
inline uint64_t U256Sub(U256* out, const U256& a, const U256& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; i++) {
    unsigned __int128 d = static_cast<unsigned __int128>(a.v[i]) -
                          b.v[i] - static_cast<uint64_t>(borrow);
    out->v[i] = static_cast<uint64_t>(d);
    borrow = (d >> 64) & 1;  // 1 when the subtraction wrapped
  }
  return static_cast<uint64_t>(borrow);
}

// 512-bit product of two 256-bit values, little-endian 8 limbs.
inline void U256MulWide(uint64_t out[8], const U256& a, const U256& b) {
  for (int i = 0; i < 8; i++) {
    out[i] = 0;
  }
  for (int i = 0; i < 4; i++) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; j++) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.v[i]) * b.v[j] +
                              out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
}

}  // namespace atom

#endif  // SRC_CRYPTO_U256_H_
