#include "src/net/client_session.h"

#include <utility>

#include "src/core/wire.h"

namespace atom {

std::unique_ptr<ClientSession> ClientSession::Connect(
    const std::string& host, uint16_t port, uint64_t client_id,
    const KemKeypair& identity, const Point& gateway_pk) {
  auto socket = TcpSocket::Dial(host, port);
  if (!socket) {
    return nullptr;
  }
  Rng rng = Rng::FromOsEntropy();
  auto link = SecureLink::Dial(std::move(*socket), client_id, identity,
                               kGatewayLinkId, gateway_pk, rng);
  if (link == nullptr) {
    return nullptr;
  }
  // The welcome is the gateway's first record; anything else is a
  // protocol violation.
  auto payload = link->Recv();
  if (!payload) {
    return nullptr;
  }
  auto frame = UnpackClientFrame(BytesView(*payload));
  if (!frame || frame->type != ClientMsg::kWelcome) {
    return nullptr;
  }
  auto welcome = DecodeWelcome(BytesView(frame->body));
  if (!welcome || welcome->credit == 0) {
    return nullptr;
  }
  return std::unique_ptr<ClientSession>(new ClientSession(
      client_id, identity, std::move(link), std::move(*welcome)));
}

ClientSession::ClientSession(uint64_t client_id, KemKeypair identity,
                             std::unique_ptr<SecureLink> link,
                             GatewayWelcome welcome)
    : client_id_(client_id),
      identity_(std::move(identity)),
      link_(std::move(link)),
      welcome_(std::move(welcome)),
      sign_rng_(Rng::FromOsEntropy()) {
  credit_ = welcome_.credit;
  open_round_ = welcome_.open_round;
  reader_ = std::thread([this] { ReaderLoop(); });
}

ClientSession::~ClientSession() { Close(); }

void ClientSession::Close() {
  link_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu_);
    dead_ = true;
    cv_.notify_all();
  }
  if (reader_.joinable()) {
    reader_.join();
  }
}

bool ClientSession::alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !dead_;
}

void ClientSession::ReaderLoop() {
  for (;;) {
    auto payload = link_->Recv();
    if (!payload) {
      break;
    }
    auto frame = UnpackClientFrame(BytesView(*payload));
    if (!frame) {
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    switch (frame->type) {
      case ClientMsg::kSubmitResult: {
        auto result = DecodeSubmitResult(BytesView(frame->body));
        if (result) {
          results_[result->seq] = result->status;
          credit_++;  // the verdict returns its submission's credit
          cv_.notify_all();
        }
        break;
      }
      case ClientMsg::kRoundOpen: {
        auto round_id = DecodeRoundNotice(BytesView(frame->body));
        if (round_id) {
          open_round_ = *round_id;
          cv_.notify_all();
        }
        break;
      }
      case ClientMsg::kRoundCutoff:
        open_round_ = 0;
        break;
      default:
        break;  // a second welcome is harmless noise
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
  cv_.notify_all();
}

uint64_t ClientSession::WaitRoundOpen(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return dead_ || open_round_ != 0; });
  return dead_ ? 0 : open_round_;
}

uint64_t ClientSession::SubmitEncoded(Bytes submission) {
  uint64_t seq;
  SchnorrSignature sig;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Window-advertised credit: block while the window is exhausted so a
    // fast client cannot outrun the gateway's bounded queues.
    cv_.wait(lock, [&] { return dead_ || credit_ > 0; });
    if (dead_) {
      return 0;
    }
    credit_--;
    seq = next_seq_++;
    // Sign the submission bytes under the registered identity (the
    // nonce draw shares mu_ with the credit state; the signature itself
    // is one fixed-base mult through the generator table).
    sig = SchnorrSign(identity_.sk, identity_.pk,
                      BytesView(SubmissionSigMessage(BytesView(submission))),
                      sign_rng_);
  }
  if (!link_->Send(BytesView(PackClientFrame(
          ClientMsg::kSubmit,
          BytesView(EncodeSubmitSigned(seq, BytesView(submission), sig)))))) {
    std::lock_guard<std::mutex> lock(mu_);
    dead_ = true;
    cv_.notify_all();
    return 0;
  }
  return seq;
}

uint64_t ClientSession::Submit(const TrapSubmission& submission) {
  return SubmitEncoded(EncodeTrapSubmission(submission));
}

uint64_t ClientSession::Submit(const NizkSubmission& submission) {
  return SubmitEncoded(EncodeNizkSubmission(submission));
}

std::optional<SubmitStatus> ClientSession::WaitResult(
    uint64_t seq, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  bool got = cv_.wait_for(lock, timeout,
                          [&] { return dead_ || results_.contains(seq); });
  if (!got) {
    return std::nullopt;
  }
  auto it = results_.find(seq);
  if (it == results_.end()) {
    return std::nullopt;  // session died first
  }
  SubmitStatus status = it->second;
  results_.erase(it);
  return status;
}

bool ClientSession::SubmitAndWait(const TrapSubmission& submission) {
  uint64_t seq = Submit(submission);
  if (seq == 0) {
    return false;
  }
  auto status = WaitResult(seq);
  return status.has_value() && *status == SubmitStatus::kAccepted;
}

bool ClientSession::SubmitAndWait(const NizkSubmission& submission) {
  uint64_t seq = Submit(submission);
  if (seq == 0) {
    return false;
  }
  auto status = WaitResult(seq);
  return status.has_value() && *status == SubmitStatus::kAccepted;
}

const FixedBaseTable& ClientSession::EntryTable(uint32_t gid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entry_tables_.find(gid);
  if (it == entry_tables_.end()) {
    it = entry_tables_
             .emplace(gid, std::make_unique<FixedBaseTable>(
                               welcome_.entry_pks[gid]))
             .first;
  }
  return *it->second;
}

const FixedBaseTable& ClientSession::TrusteeTable() {
  std::lock_guard<std::mutex> lock(mu_);
  if (trustee_table_ == nullptr) {
    trustee_table_ = std::make_unique<FixedBaseTable>(*welcome_.trustee_pk);
  }
  return *trustee_table_;
}

bool ClientSession::SendMessage(BytesView message, uint32_t gid, Rng& rng) {
  if (gid >= welcome_.entry_pks.size()) {
    return false;
  }
  MessageLayout layout;
  layout.plaintext_len = welcome_.plaintext_len;
  layout.padded_len = welcome_.padded_len;
  layout.num_points = welcome_.num_points;
  if (static_cast<Variant>(welcome_.variant) == Variant::kTrap) {
    if (!welcome_.trustee_pk.has_value()) {
      return false;
    }
    TrapSubmission sub = MakeTrapSubmission(EntryTable(gid), gid,
                                            TrusteeTable(), message, layout,
                                            rng);
    sub.client_id = client_id_;
    return SubmitAndWait(sub);
  }
  NizkSubmission sub =
      MakeNizkSubmission(EntryTable(gid), gid, message, layout, rng);
  sub.client_id = client_id_;
  return SubmitAndWait(sub);
}

FleetClient::FleetClient(std::string host,
                         std::vector<GatewayEndpoint> roster,
                         uint64_t client_id, const KemKeypair& identity)
    : host_(std::move(host)),
      roster_(std::move(roster)),
      client_id_(client_id),
      identity_(identity) {}

FleetClient::~FleetClient() { Close(); }

ClientSession* FleetClient::Session(uint32_t gid) {
  const GatewayEndpoint* endpoint = nullptr;
  for (const auto& e : roster_) {
    if (e.gid == gid) {
      endpoint = &e;
      break;
    }
  }
  if (endpoint == nullptr) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(gid);
  if (it != sessions_.end() && it->second->alive()) {
    return it->second.get();
  }
  auto session = ClientSession::Connect(host_, endpoint->port, client_id_,
                                        identity_, endpoint->pk);
  if (session == nullptr) {
    sessions_.erase(gid);
    return nullptr;
  }
  return (sessions_[gid] = std::move(session)).get();
}

bool FleetClient::SendMessage(BytesView message, uint32_t gid, Rng& rng) {
  ClientSession* session = Session(gid);
  return session != nullptr && session->SendMessage(message, gid, rng);
}

uint64_t FleetClient::WaitRoundOpen(uint32_t gid,
                                    std::chrono::milliseconds timeout) {
  ClientSession* session = Session(gid);
  return session != nullptr ? session->WaitRoundOpen(timeout) : 0;
}

void FleetClient::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [gid, session] : sessions_) {
    session->Close();
  }
  sessions_.clear();
}

}  // namespace atom
