// ClientSession: a registered user's authenticated channel to a
// SubmissionGateway (src/net/gateway.h).
//
// Connect dials the gateway and runs the SecureLink handshake under the
// client's REGISTERED long-term key — the gateway's registry lookup plus
// the handshake's key-possession proof make the connection itself the
// authentication the id-squatting comment in src/core/client.h always
// asked for. The first inbound frame is the gateway's kWelcome (credit
// window, round variant, message layout, entry-group and trustee keys),
// which is everything a client needs to build submissions locally.
//
// Submission flow is windowed and pipelined: Submit sends a kSubmit frame
// when a credit is available (blocking while the window is exhausted) and
// returns a sequence number; WaitResult blocks for that submission's
// verdict. A reader thread demultiplexes verdicts (returning their
// credits) and round open/cutoff announcements.
//
// Every kSubmit frame is Schnorr-signed under the registered identity
// (EncodeSubmitSigned), binding the submission bytes — not just the
// transport — to the registered key; the gateway's shard pumps verify
// whole spans of these with one batched MSM. SendMessage also caches a
// precomputed table per entry-group key (and the trustee key) from the
// welcome, so a session submitting across rounds pays the table build
// once and every later encryption uses the fast fixed-base path.
#ifndef SRC_NET_CLIENT_SESSION_H_
#define SRC_NET_CLIENT_SESSION_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/net/gateway.h"
#include "src/net/reactor.h"

namespace atom {

class ClientSession {
 public:
  // Dials host:port and authenticates as `client_id` holding `identity`
  // (its public half must be the registered key). nullptr when the TCP
  // connect, the handshake (unregistered id, wrong key, wrong gateway),
  // or the welcome fails.
  static std::unique_ptr<ClientSession> Connect(const std::string& host,
                                                uint16_t port,
                                                uint64_t client_id,
                                                const KemKeypair& identity,
                                                const Point& gateway_pk);
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  uint64_t client_id() const { return client_id_; }
  const GatewayWelcome& welcome() const { return welcome_; }
  bool alive() const;

  // Blocks until a round is open for intake (an open id from the welcome
  // counts) and returns its id; 0 on timeout or session death.
  uint64_t WaitRoundOpen(
      std::chrono::milliseconds timeout = std::chrono::seconds(30));

  // Sends one submission (blocking while the credit window is exhausted);
  // returns its sequence number, or 0 when the session is dead. The
  // submission's client_id must be this session's id or the gateway will
  // verdict kForeignId.
  uint64_t Submit(const TrapSubmission& submission);
  uint64_t Submit(const NizkSubmission& submission);

  // Blocks for one submission's verdict; nullopt on timeout or death.
  std::optional<SubmitStatus> WaitResult(
      uint64_t seq,
      std::chrono::milliseconds timeout = std::chrono::seconds(30));

  // Convenience: submit and wait. True iff the gateway accepted.
  bool SubmitAndWait(const TrapSubmission& submission);
  bool SubmitAndWait(const NizkSubmission& submission);

  // Builds a submission for `message` to entry group `gid` from the
  // welcome's keys and layout (trap or NIZK per the gateway's variant,
  // client id stamped), submits, and waits for the verdict.
  bool SendMessage(BytesView message, uint32_t gid, Rng& rng);

  void Close();

 private:
  ClientSession(uint64_t client_id, KemKeypair identity,
                std::unique_ptr<SecureLink> link, GatewayWelcome welcome);

  uint64_t SubmitEncoded(Bytes submission);
  void ReaderLoop();
  // Lazily built fixed-base tables for the welcome's keys (guarded by
  // mu_; the returned reference is stable — tables are never dropped
  // while the session lives).
  const FixedBaseTable& EntryTable(uint32_t gid);
  const FixedBaseTable& TrusteeTable();

  const uint64_t client_id_;
  const KemKeypair identity_;  // signs every kSubmit frame
  std::shared_ptr<SecureLink> link_;
  GatewayWelcome welcome_;

  mutable std::mutex mu_;
  Rng sign_rng_;  // guarded by mu_
  std::map<uint32_t, std::unique_ptr<FixedBaseTable>> entry_tables_;
  std::unique_ptr<FixedBaseTable> trustee_table_;
  std::condition_variable cv_;
  uint32_t credit_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t open_round_ = 0;
  bool dead_ = false;
  std::map<uint64_t, SubmitStatus> results_;
  std::thread reader_;
};

// A registered user's view of a sharded ingress fleet (GatewayFleet,
// src/net/reactor.h): one ClientSession per entry-group gateway, dialed
// lazily on first use and reused for later messages to the same group.
// Routing is by the message's entry group — the shard that admits it is
// the shard that serves it — so a client talking to k groups holds k
// sessions, each authenticated under the same registered identity.
class FleetClient {
 public:
  // `roster` is GatewayFleet::Roster() (each shard's port and gateway
  // key); every shard is dialed at `host`.
  FleetClient(std::string host, std::vector<GatewayEndpoint> roster,
              uint64_t client_id, const KemKeypair& identity);
  ~FleetClient();

  FleetClient(const FleetClient&) = delete;
  FleetClient& operator=(const FleetClient&) = delete;

  uint64_t client_id() const { return client_id_; }

  // The session for `gid`'s shard, dialing it if this is the first use;
  // nullptr when no shard serves the group or the dial/handshake fails.
  // A session that has died is redialed on the next call.
  ClientSession* Session(uint32_t gid);

  // Routes to `gid`'s shard and delegates to ClientSession::SendMessage.
  bool SendMessage(BytesView message, uint32_t gid, Rng& rng);

  // Blocks until `gid`'s shard announces an open round.
  uint64_t WaitRoundOpen(
      uint32_t gid,
      std::chrono::milliseconds timeout = std::chrono::seconds(30));

  void Close();

 private:
  const std::string host_;
  const std::vector<GatewayEndpoint> roster_;
  const uint64_t client_id_;
  const KemKeypair identity_;

  std::mutex mu_;
  std::map<uint32_t, std::unique_ptr<ClientSession>> sessions_;
};

}  // namespace atom

#endif  // SRC_NET_CLIENT_SESSION_H_
