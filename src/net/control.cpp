#include "src/net/control.h"

#include "src/util/serde.h"

namespace atom {
namespace {

// A roster or group never approaches these sizes in any deployment this
// repo models; the caps bound allocation from a hostile peer.
constexpr uint32_t kMaxPeers = 4096;
constexpr uint32_t kMaxGroupMembers = 4096;
constexpr uint32_t kMaxHostLen = 256;
constexpr uint32_t kMaxLayers = 4096;
constexpr uint32_t kMaxGroups = 4096;

void PutPoint(ByteWriter& w, const Point& p) { w.Raw(BytesView(p.Encode())); }

std::optional<Point> GetPoint(ByteReader& r) {
  auto raw = r.Raw(Point::kEncodedSize);
  if (!raw) {
    return std::nullopt;
  }
  return Point::Decode(BytesView(*raw));
}

void PutU32Vec(ByteWriter& w, const std::vector<uint32_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) {
    w.U32(x);
  }
}

bool GetU32Vec(ByteReader& r, std::vector<uint32_t>* out) {
  auto n = r.U32();
  if (!n || *n > kMaxGroupMembers) {
    return false;
  }
  out->reserve(*n);
  for (uint32_t i = 0; i < *n; i++) {
    auto x = r.U32();
    if (!x) {
      return false;
    }
    out->push_back(*x);
  }
  return true;
}

// 64-bit LEB128: deltas zigzag through the full int64 range, so even a
// buggy caller's out-of-range neighbour value round-trips EXACTLY and is
// then rejected by the decoder's width check — never silently truncated
// into a different (possibly in-range) value.
void PutVarint(ByteWriter& w, uint64_t v) {
  while (v >= 0x80) {
    w.U8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w.U8(static_cast<uint8_t>(v));
}

std::optional<uint64_t> GetVarint(ByteReader& r) {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    auto byte = r.U8();
    if (!byte) {
      return std::nullopt;
    }
    if (shift == 63 && (*byte & 0xfe) != 0) {
      return std::nullopt;  // would overflow 64 bits
    }
    v |= static_cast<uint64_t>(*byte & 0x7f) << shift;
    if ((*byte & 0x80) == 0) {
      return v;
    }
  }
  return std::nullopt;
}

uint64_t ZigZag(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^
         static_cast<uint64_t>(d >> 63);
}

int64_t UnZigZag(uint64_t z) {
  return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    n++;
  }
  return n;
}

// One neighbour list: u8 mode || payload. See EncodeAdjacency in control.h.
void PutNeighborList(ByteWriter& w, const std::vector<uint32_t>& neighbors,
                     uint32_t width) {
  // The bitmap mode indexes by neighbor id, so an out-of-range id (a
  // buggy caller whose width undercounts its adjacency values) must fall
  // through to the delta mode, whose 64-bit zigzag round-trips any value
  // exactly so the receiver's range check rejects it — never an
  // out-of-bounds write here, never silent truncation into a different
  // in-range value.
  bool bitmap_ok = true;
  size_t delta_size = VarintSize(static_cast<uint32_t>(neighbors.size()));
  for (size_t i = 0; i < neighbors.size(); i++) {
    bitmap_ok &= neighbors[i] < width;
    if (i == 0) {
      delta_size += VarintSize(neighbors[0]);
    } else {
      bitmap_ok &= neighbors[i] > neighbors[i - 1];
      delta_size += VarintSize(ZigZag(static_cast<int64_t>(neighbors[i]) -
                                      static_cast<int64_t>(neighbors[i - 1])));
    }
  }
  const size_t bitmap_size = (width + 7) / 8;
  if (bitmap_ok && bitmap_size < delta_size) {
    w.U8(1);
    std::vector<uint8_t> bits(bitmap_size, 0);
    for (uint32_t n : neighbors) {
      bits[n / 8] |= static_cast<uint8_t>(1u << (n % 8));
    }
    w.Raw(BytesView(bits.data(), bits.size()));
    return;
  }
  w.U8(0);
  PutVarint(w, static_cast<uint32_t>(neighbors.size()));
  for (size_t i = 0; i < neighbors.size(); i++) {
    if (i == 0) {
      PutVarint(w, neighbors[0]);
    } else {
      PutVarint(w, ZigZag(static_cast<int64_t>(neighbors[i]) -
                          static_cast<int64_t>(neighbors[i - 1])));
    }
  }
}

bool GetNeighborList(ByteReader& r, uint32_t width,
                     std::vector<uint32_t>* out) {
  auto mode = r.U8();
  if (!mode || *mode > 1) {
    return false;
  }
  if (*mode == 1) {
    auto bits = r.Raw((width + 7) / 8);
    if (!bits) {
      return false;
    }
    // Padding bits past `width` in the final byte must be zero: otherwise
    // two distinct frames alias one adjacency and decode->re-encode loses
    // byte-identity for attacker-supplied input.
    if (width % 8 != 0 &&
        (bits->back() & static_cast<uint8_t>(0xff << (width % 8))) != 0) {
      return false;
    }
    for (uint32_t n = 0; n < width; n++) {
      if (((*bits)[n / 8] >> (n % 8)) & 1) {
        out->push_back(n);
      }
    }
    return true;
  }
  auto count = GetVarint(r);
  if (!count || *count > width) {
    return false;  // a vertex has at most `width` next-layer neighbours
  }
  out->reserve(static_cast<size_t>(*count));
  int64_t prev = 0;
  for (uint64_t i = 0; i < *count; i++) {
    auto v = GetVarint(r);
    if (!v) {
      return false;
    }
    int64_t value;
    if (i == 0) {
      if (*v >= width) {
        return false;
      }
      value = static_cast<int64_t>(*v);
    } else {
      // Valid deltas between in-range neighbours are bounded by width;
      // rejecting bigger ones first keeps the add overflow-free against
      // adversarial varints.
      int64_t delta = UnZigZag(*v);
      if (delta > static_cast<int64_t>(width) ||
          delta < -static_cast<int64_t>(width)) {
        return false;
      }
      value = prev + delta;
    }
    if (value < 0 || value >= static_cast<int64_t>(width)) {
      return false;
    }
    out->push_back(static_cast<uint32_t>(value));
    prev = value;
  }
  return true;
}

// Shared by DecodeAdjacency and DecodeBeginRound (one decode loop to keep
// in sync). Reject-before-allocation: every list costs at least its mode
// byte.
bool GetAdjacency(ByteReader& r, uint32_t boundaries, uint32_t width,
                  AdjacencyTable* out) {
  if (static_cast<uint64_t>(boundaries) * width > r.remaining()) {
    return false;
  }
  out->resize(boundaries);
  for (auto& layer : *out) {
    layer.resize(width);
    for (auto& neighbors : layer) {
      if (!GetNeighborList(r, width, &neighbors)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Bytes EncodeAdjacency(const AdjacencyTable& adjacency, uint32_t width) {
  ByteWriter w;
  for (const auto& layer : adjacency) {
    for (const auto& neighbors : layer) {
      PutNeighborList(w, neighbors, width);
    }
  }
  return w.Take();
}

std::optional<AdjacencyTable> DecodeAdjacency(BytesView bytes,
                                              uint32_t boundaries,
                                              uint32_t width) {
  if (boundaries > kMaxLayers || width == 0 || width > kMaxGroups) {
    return std::nullopt;
  }
  ByteReader r(bytes);
  AdjacencyTable adjacency;
  if (!GetAdjacency(r, boundaries, width, &adjacency) || !r.Done()) {
    return std::nullopt;
  }
  return adjacency;
}

Bytes PackLinkFrame(LinkMsg type, BytesView body) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.Raw(body);
  return w.Take();
}

std::optional<LinkFrame> UnpackLinkFrame(BytesView payload) {
  if (payload.empty()) {
    return std::nullopt;
  }
  uint8_t type = payload[0];
  if (type < static_cast<uint8_t>(LinkMsg::kEnvelope) ||
      type > static_cast<uint8_t>(LinkMsg::kMetricsSnapshot)) {
    return std::nullopt;
  }
  LinkFrame frame;
  frame.type = static_cast<LinkMsg>(type);
  frame.body.assign(payload.begin() + 1, payload.end());
  return frame;
}

Bytes EncodeRoster(uint64_t seq, std::span<const MeshPeer> peers) {
  ByteWriter w;
  w.U64(seq);
  w.U32(static_cast<uint32_t>(peers.size()));
  for (const MeshPeer& peer : peers) {
    w.U32(peer.server_id);
    w.Var(BytesView(ToBytes(peer.host)));
    w.U16(peer.port);
    PutPoint(w, peer.pk);
  }
  return w.Take();
}

std::optional<RosterMsg> DecodeRoster(BytesView bytes) {
  ByteReader r(bytes);
  RosterMsg msg;
  auto seq = r.U64();
  auto n = r.U32();
  if (!seq || !n || *n > kMaxPeers) {
    return std::nullopt;
  }
  msg.seq = *seq;
  for (uint32_t i = 0; i < *n; i++) {
    MeshPeer peer;
    auto id = r.U32();
    auto host = r.Var();
    auto port = r.U16();
    auto pk = GetPoint(r);
    if (!id || !host || host->size() > kMaxHostLen || !port || !pk) {
      return std::nullopt;
    }
    peer.server_id = *id;
    peer.host.assign(host->begin(), host->end());
    peer.port = *port;
    peer.pk = *pk;
    msg.peers.push_back(std::move(peer));
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return msg;
}

Bytes EncodeJoinGroup(uint64_t seq, uint32_t gid, const NodeGroupKeys& keys) {
  ByteWriter w;
  w.U64(seq);
  w.U32(gid);
  w.U32(static_cast<uint32_t>(keys.pub.params.k));
  w.U32(static_cast<uint32_t>(keys.pub.params.threshold));
  PutPoint(w, keys.pub.group_pk);
  w.U32(static_cast<uint32_t>(keys.pub.share_pks.size()));
  for (const Point& p : keys.pub.share_pks) {
    PutPoint(w, p);
  }
  PutU32Vec(w, keys.pub.disqualified);
  w.U32(keys.key.index);
  auto share = keys.key.share.ToBytes();
  w.Raw(BytesView(share.data(), share.size()));
  PutU32Vec(w, keys.subset);
  PutU32Vec(w, keys.chain_servers);
  return w.Take();
}

std::optional<JoinGroupMsg> DecodeJoinGroup(BytesView bytes) {
  ByteReader r(bytes);
  JoinGroupMsg msg;
  auto seq = r.U64();
  auto gid = r.U32();
  auto k = r.U32();
  auto threshold = r.U32();
  auto group_pk = GetPoint(r);
  auto num_share_pks = r.U32();
  if (!seq || !gid || !k || !threshold || !group_pk || !num_share_pks ||
      *num_share_pks > kMaxGroupMembers) {
    return std::nullopt;
  }
  msg.seq = *seq;
  msg.gid = *gid;
  msg.keys.pub.params.k = *k;
  msg.keys.pub.params.threshold = *threshold;
  msg.keys.pub.group_pk = *group_pk;
  for (uint32_t i = 0; i < *num_share_pks; i++) {
    auto p = GetPoint(r);
    if (!p) {
      return std::nullopt;
    }
    msg.keys.pub.share_pks.push_back(*p);
  }
  if (!GetU32Vec(r, &msg.keys.pub.disqualified)) {
    return std::nullopt;
  }
  auto index = r.U32();
  auto share_raw = r.Raw(32);
  if (!index || !share_raw) {
    return std::nullopt;
  }
  auto share = Scalar::FromBytes(BytesView(*share_raw));
  if (!share) {
    return std::nullopt;
  }
  msg.keys.key.index = *index;
  msg.keys.key.share = *share;
  if (!GetU32Vec(r, &msg.keys.subset) ||
      !GetU32Vec(r, &msg.keys.chain_servers) || !r.Done()) {
    return std::nullopt;
  }
  if (msg.keys.subset.size() != msg.keys.chain_servers.size()) {
    return std::nullopt;  // AtomNode::JoinGroup would abort on this
  }
  return msg;
}

Bytes EncodeBeginRound(uint64_t seq, uint64_t round_id,
                       const std::array<uint8_t, 32>& root_key,
                       const WireRoundSpec* spec) {
  ByteWriter w;
  w.U64(seq);
  w.U64(round_id);
  w.Raw(BytesView(root_key.data(), root_key.size()));
  if (spec == nullptr) {
    w.U8(0);
    return w.Take();
  }
  w.U8(1);
  w.U8(spec->variant);
  w.U32(spec->layers);
  w.U32(spec->width);
  w.U32(spec->hop_workers);
  // Delta/bitmap-compressed: the square network's complete-bipartite rows
  // would otherwise cost 4 bytes per edge, O(G²) per layer boundary.
  w.Raw(BytesView(EncodeAdjacency(spec->adjacency, spec->width)));
  PutU32Vec(w, spec->hosts);
  for (const Point& pk : spec->group_pks) {
    PutPoint(w, pk);
  }
  w.U8(spec->native_exit ? 1 : 0);
  w.U32(spec->plaintext_len);
  w.U32(spec->padded_len);
  w.U32(spec->num_points);
  w.U32(static_cast<uint32_t>(spec->commitments.size()));
  for (const auto& group : spec->commitments) {
    w.U32(static_cast<uint32_t>(group.size()));
    for (const auto& c : group) {
      w.Raw(BytesView(c.data(), c.size()));
    }
  }
  return w.Take();
}

std::optional<BeginRoundMsg> DecodeBeginRound(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  auto round_id = r.U64();
  auto key = r.Raw(32);
  auto has_spec = r.U8();
  if (!seq || !round_id || !key || !has_spec || *has_spec > 1) {
    return std::nullopt;
  }
  BeginRoundMsg msg;
  msg.seq = *seq;
  msg.round_id = *round_id;
  std::copy(key->begin(), key->end(), msg.root_key.begin());
  if (*has_spec == 0) {
    if (!r.Done()) {
      return std::nullopt;
    }
    return msg;
  }
  WireRoundSpec spec;
  auto variant = r.U8();
  auto layers = r.U32();
  auto width = r.U32();
  auto hop_workers = r.U32();
  if (!variant || *variant > 1 || !layers || !width || !hop_workers ||
      *layers == 0 || *layers > kMaxLayers || *width == 0 ||
      *width > kMaxGroups || *hop_workers == 0) {
    return std::nullopt;
  }
  spec.variant = *variant;
  spec.layers = *layers;
  spec.width = *width;
  spec.hop_workers = *hop_workers;
  // Compressed adjacency (shared decode loop with DecodeAdjacency):
  // reject-before-allocation against tiny hostile frames, neighbour
  // bounds validated per list.
  if (!GetAdjacency(r, spec.layers - 1, spec.width, &spec.adjacency)) {
    return std::nullopt;
  }
  if (!GetU32Vec(r, &spec.hosts) || spec.hosts.size() != spec.width) {
    return std::nullopt;
  }
  for (uint32_t g = 0; g < spec.width; g++) {
    auto pk = GetPoint(r);
    if (!pk) {
      return std::nullopt;
    }
    spec.group_pks.push_back(*pk);
  }
  auto native = r.U8();
  auto plaintext_len = r.U32();
  auto padded_len = r.U32();
  auto num_points = r.U32();
  auto num_commit_groups = r.U32();
  if (!native || *native > 1 || !plaintext_len || !padded_len ||
      !num_points || !num_commit_groups ||
      *num_commit_groups > kMaxGroups) {
    return std::nullopt;
  }
  spec.native_exit = *native == 1;
  spec.plaintext_len = *plaintext_len;
  spec.padded_len = *padded_len;
  spec.num_points = *num_points;
  spec.commitments.resize(*num_commit_groups);
  for (auto& group : spec.commitments) {
    auto n = r.U32();
    // Each commitment is 32 bytes; a count the remaining bytes cannot
    // hold is rejected before the resize can allocate it.
    if (!n || *n > r.remaining() / 32) {
      return std::nullopt;
    }
    group.resize(*n);
    for (auto& c : group) {
      auto raw = r.Raw(32);
      if (!raw) {
        return std::nullopt;
      }
      std::copy(raw->begin(), raw->end(), c.begin());
    }
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  msg.spec = std::move(spec);
  return msg;
}

Bytes EncodeRoundDone(uint64_t round_id) {
  ByteWriter w;
  w.U64(round_id);
  return w.Take();
}

std::optional<uint64_t> DecodeRoundDone(BytesView bytes) {
  ByteReader r(bytes);
  auto round_id = r.U64();
  if (!round_id || !r.Done()) {
    return std::nullopt;
  }
  return round_id;
}

Bytes EncodeHostGroup(uint64_t seq, uint32_t gid, const DkgResult& dkg) {
  ByteWriter w;
  w.U64(seq);
  w.U32(gid);
  w.U32(static_cast<uint32_t>(dkg.pub.params.k));
  w.U32(static_cast<uint32_t>(dkg.pub.params.threshold));
  PutPoint(w, dkg.pub.group_pk);
  w.U32(static_cast<uint32_t>(dkg.pub.share_pks.size()));
  for (const Point& p : dkg.pub.share_pks) {
    PutPoint(w, p);
  }
  PutU32Vec(w, dkg.pub.disqualified);
  w.U32(static_cast<uint32_t>(dkg.keys.size()));
  for (const DkgServerKey& key : dkg.keys) {
    w.U32(key.index);
    auto share = key.share.ToBytes();
    w.Raw(BytesView(share.data(), share.size()));
  }
  return w.Take();
}

std::optional<HostGroupMsg> DecodeHostGroup(BytesView bytes) {
  ByteReader r(bytes);
  HostGroupMsg msg;
  auto seq = r.U64();
  auto gid = r.U32();
  auto k = r.U32();
  auto threshold = r.U32();
  auto group_pk = GetPoint(r);
  auto num_share_pks = r.U32();
  if (!seq || !gid || !k || !threshold || !group_pk || !num_share_pks ||
      *num_share_pks > kMaxGroupMembers) {
    return std::nullopt;
  }
  msg.seq = *seq;
  msg.gid = *gid;
  msg.dkg.pub.params.k = *k;
  msg.dkg.pub.params.threshold = *threshold;
  msg.dkg.pub.group_pk = *group_pk;
  for (uint32_t i = 0; i < *num_share_pks; i++) {
    auto p = GetPoint(r);
    if (!p) {
      return std::nullopt;
    }
    msg.dkg.pub.share_pks.push_back(*p);
  }
  if (!GetU32Vec(r, &msg.dkg.pub.disqualified)) {
    return std::nullopt;
  }
  auto num_keys = r.U32();
  if (!num_keys || *num_keys > kMaxGroupMembers) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < *num_keys; i++) {
    auto index = r.U32();
    auto raw = r.Raw(32);
    if (!index || !raw) {
      return std::nullopt;
    }
    auto share = Scalar::FromBytes(BytesView(*raw));
    if (!share) {
      return std::nullopt;
    }
    msg.dkg.keys.push_back(DkgServerKey{*index, *share});
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return msg;
}

Bytes EncodeAck(uint64_t seq) {
  ByteWriter w;
  w.U64(seq);
  return w.Take();
}

std::optional<uint64_t> DecodeAck(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  if (!seq || !r.Done()) {
    return std::nullopt;
  }
  return seq;
}

Bytes EncodeMetricsRequest(uint64_t seq) {
  ByteWriter w;
  w.U64(seq);
  return w.Take();
}

std::optional<uint64_t> DecodeMetricsRequest(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  if (!seq || !r.Done()) {
    return std::nullopt;
  }
  return seq;
}

Bytes EncodeMetricsReply(uint64_t seq,
                         const obs::MetricsSnapshot& snapshot) {
  ByteWriter w;
  w.U64(seq);
  w.Raw(BytesView(obs::EncodeMetricsSnapshot(snapshot)));
  return w.Take();
}

std::optional<MetricsReplyMsg> DecodeMetricsReply(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  if (!seq) {
    return std::nullopt;
  }
  auto body = r.Raw(r.remaining());
  if (!body) {
    return std::nullopt;
  }
  auto snapshot = obs::DecodeMetricsSnapshot(BytesView(*body));
  if (!snapshot) {
    return std::nullopt;
  }
  MetricsReplyMsg out;
  out.seq = *seq;
  out.snapshot = std::move(*snapshot);
  return out;
}

}  // namespace atom
