#include "src/net/control.h"

#include "src/util/serde.h"

namespace atom {
namespace {

// A roster or group never approaches these sizes in any deployment this
// repo models; the caps bound allocation from a hostile peer.
constexpr uint32_t kMaxPeers = 4096;
constexpr uint32_t kMaxGroupMembers = 4096;
constexpr uint32_t kMaxHostLen = 256;

void PutPoint(ByteWriter& w, const Point& p) { w.Raw(BytesView(p.Encode())); }

std::optional<Point> GetPoint(ByteReader& r) {
  auto raw = r.Raw(Point::kEncodedSize);
  if (!raw) {
    return std::nullopt;
  }
  return Point::Decode(BytesView(*raw));
}

void PutU32Vec(ByteWriter& w, const std::vector<uint32_t>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) {
    w.U32(x);
  }
}

bool GetU32Vec(ByteReader& r, std::vector<uint32_t>* out) {
  auto n = r.U32();
  if (!n || *n > kMaxGroupMembers) {
    return false;
  }
  out->reserve(*n);
  for (uint32_t i = 0; i < *n; i++) {
    auto x = r.U32();
    if (!x) {
      return false;
    }
    out->push_back(*x);
  }
  return true;
}

}  // namespace

Bytes PackLinkFrame(LinkMsg type, BytesView body) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.Raw(body);
  return w.Take();
}

std::optional<LinkFrame> UnpackLinkFrame(BytesView payload) {
  if (payload.empty()) {
    return std::nullopt;
  }
  uint8_t type = payload[0];
  if (type < static_cast<uint8_t>(LinkMsg::kEnvelope) ||
      type > static_cast<uint8_t>(LinkMsg::kAck)) {
    return std::nullopt;
  }
  LinkFrame frame;
  frame.type = static_cast<LinkMsg>(type);
  frame.body.assign(payload.begin() + 1, payload.end());
  return frame;
}

Bytes EncodeRoster(uint64_t seq, std::span<const MeshPeer> peers) {
  ByteWriter w;
  w.U64(seq);
  w.U32(static_cast<uint32_t>(peers.size()));
  for (const MeshPeer& peer : peers) {
    w.U32(peer.server_id);
    w.Var(BytesView(ToBytes(peer.host)));
    w.U16(peer.port);
    PutPoint(w, peer.pk);
  }
  return w.Take();
}

std::optional<RosterMsg> DecodeRoster(BytesView bytes) {
  ByteReader r(bytes);
  RosterMsg msg;
  auto seq = r.U64();
  auto n = r.U32();
  if (!seq || !n || *n > kMaxPeers) {
    return std::nullopt;
  }
  msg.seq = *seq;
  for (uint32_t i = 0; i < *n; i++) {
    MeshPeer peer;
    auto id = r.U32();
    auto host = r.Var();
    auto port = r.U16();
    auto pk = GetPoint(r);
    if (!id || !host || host->size() > kMaxHostLen || !port || !pk) {
      return std::nullopt;
    }
    peer.server_id = *id;
    peer.host.assign(host->begin(), host->end());
    peer.port = *port;
    peer.pk = *pk;
    msg.peers.push_back(std::move(peer));
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return msg;
}

Bytes EncodeJoinGroup(uint64_t seq, uint32_t gid, const NodeGroupKeys& keys) {
  ByteWriter w;
  w.U64(seq);
  w.U32(gid);
  w.U32(static_cast<uint32_t>(keys.pub.params.k));
  w.U32(static_cast<uint32_t>(keys.pub.params.threshold));
  PutPoint(w, keys.pub.group_pk);
  w.U32(static_cast<uint32_t>(keys.pub.share_pks.size()));
  for (const Point& p : keys.pub.share_pks) {
    PutPoint(w, p);
  }
  PutU32Vec(w, keys.pub.disqualified);
  w.U32(keys.key.index);
  auto share = keys.key.share.ToBytes();
  w.Raw(BytesView(share.data(), share.size()));
  PutU32Vec(w, keys.subset);
  PutU32Vec(w, keys.chain_servers);
  return w.Take();
}

std::optional<JoinGroupMsg> DecodeJoinGroup(BytesView bytes) {
  ByteReader r(bytes);
  JoinGroupMsg msg;
  auto seq = r.U64();
  auto gid = r.U32();
  auto k = r.U32();
  auto threshold = r.U32();
  auto group_pk = GetPoint(r);
  auto num_share_pks = r.U32();
  if (!seq || !gid || !k || !threshold || !group_pk || !num_share_pks ||
      *num_share_pks > kMaxGroupMembers) {
    return std::nullopt;
  }
  msg.seq = *seq;
  msg.gid = *gid;
  msg.keys.pub.params.k = *k;
  msg.keys.pub.params.threshold = *threshold;
  msg.keys.pub.group_pk = *group_pk;
  for (uint32_t i = 0; i < *num_share_pks; i++) {
    auto p = GetPoint(r);
    if (!p) {
      return std::nullopt;
    }
    msg.keys.pub.share_pks.push_back(*p);
  }
  if (!GetU32Vec(r, &msg.keys.pub.disqualified)) {
    return std::nullopt;
  }
  auto index = r.U32();
  auto share_raw = r.Raw(32);
  if (!index || !share_raw) {
    return std::nullopt;
  }
  auto share = Scalar::FromBytes(BytesView(*share_raw));
  if (!share) {
    return std::nullopt;
  }
  msg.keys.key.index = *index;
  msg.keys.key.share = *share;
  if (!GetU32Vec(r, &msg.keys.subset) ||
      !GetU32Vec(r, &msg.keys.chain_servers) || !r.Done()) {
    return std::nullopt;
  }
  if (msg.keys.subset.size() != msg.keys.chain_servers.size()) {
    return std::nullopt;  // AtomNode::JoinGroup would abort on this
  }
  return msg;
}

Bytes EncodeBeginRun(uint64_t seq, const std::array<uint8_t, 32>& run_key) {
  ByteWriter w;
  w.U64(seq);
  w.Raw(BytesView(run_key.data(), run_key.size()));
  return w.Take();
}

std::optional<BeginRunMsg> DecodeBeginRun(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  auto key = r.Raw(32);
  if (!seq || !key || !r.Done()) {
    return std::nullopt;
  }
  BeginRunMsg msg;
  msg.seq = *seq;
  std::copy(key->begin(), key->end(), msg.run_key.begin());
  return msg;
}

Bytes EncodeAck(uint64_t seq) {
  ByteWriter w;
  w.U64(seq);
  return w.Take();
}

std::optional<uint64_t> DecodeAck(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  if (!seq || !r.Done()) {
    return std::nullopt;
  }
  return seq;
}

}  // namespace atom
