// Control-plane frames for the TCP peer mesh. Every decrypted link record
// is one LinkMsg: either a routed protocol Envelope (the data plane,
// serialized by EncodeEnvelope in src/core/wire.h) or one of the driver's
// setup/synchronization messages. Control messages carry a sequence
// number the receiver echoes back in a kAck, which is how the driver
// guarantees cross-link ordering: a server has applied the roster, group
// keys, and run key before any protocol traffic that depends on them can
// reach it (chain traffic arrives on *different* links, so per-link FIFO
// alone is not enough).
#ifndef SRC_NET_CONTROL_H_
#define SRC_NET_CONTROL_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/node.h"
#include "src/util/bytes.h"

namespace atom {

// The driver's reserved id on the mesh: kGroupOutput/kAbort envelopes are
// routed to it. Server ids must be nonzero.
inline constexpr uint32_t kMeshDriverId = 0;

enum class LinkMsg : uint8_t {
  kEnvelope = 1,  // EncodeEnvelope payload (protocol data plane)
  kRoster = 2,    // peer directory: who serves which id, where, which key
  kJoinGroup = 3, // per-group key material for the receiving server
  kBeginRun = 4,  // 256-bit run root key; resets per-run delivery counters
  kAck = 5,       // acknowledges one control message by sequence number
};

// One mesh participant as named by the roster.
struct MeshPeer {
  uint32_t server_id = 0;
  std::string host;
  uint16_t port = 0;
  Point pk;  // long-term identity key (handshake authentication)
};

// Frame envelope: u8 type || body.
Bytes PackLinkFrame(LinkMsg type, BytesView body);
struct LinkFrame {
  LinkMsg type;
  Bytes body;
};
std::optional<LinkFrame> UnpackLinkFrame(BytesView payload);

Bytes EncodeRoster(uint64_t seq, std::span<const MeshPeer> peers);
struct RosterMsg {
  uint64_t seq = 0;
  std::vector<MeshPeer> peers;
};
std::optional<RosterMsg> DecodeRoster(BytesView bytes);

Bytes EncodeJoinGroup(uint64_t seq, uint32_t gid, const NodeGroupKeys& keys);
struct JoinGroupMsg {
  uint64_t seq = 0;
  uint32_t gid = 0;
  NodeGroupKeys keys;
};
std::optional<JoinGroupMsg> DecodeJoinGroup(BytesView bytes);

Bytes EncodeBeginRun(uint64_t seq, const std::array<uint8_t, 32>& run_key);
struct BeginRunMsg {
  uint64_t seq = 0;
  std::array<uint8_t, 32> run_key{};
};
std::optional<BeginRunMsg> DecodeBeginRun(BytesView bytes);

Bytes EncodeAck(uint64_t seq);
std::optional<uint64_t> DecodeAck(BytesView bytes);

}  // namespace atom

#endif  // SRC_NET_CONTROL_H_
