// Control-plane frames for the TCP peer mesh. Every decrypted link record
// is one LinkMsg: either a routed protocol Envelope (the data plane,
// serialized by EncodeEnvelope in src/core/wire.h) or one of the driver's
// setup/synchronization messages. Control messages carry a sequence
// number the receiver echoes back in a kAck, which is how the driver
// guarantees cross-link ordering: a server has applied the roster, group
// keys, and run key before any protocol traffic that depends on them can
// reach it (chain traffic arrives on *different* links, so per-link FIFO
// alone is not enough).
#ifndef SRC_NET_CONTROL_H_
#define SRC_NET_CONTROL_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/node.h"
#include "src/obs/metrics.h"
#include "src/util/bytes.h"

namespace atom {

// The driver's reserved id on the mesh: kGroupOutput/kAbort envelopes are
// routed to it. Server ids must be nonzero.
inline constexpr uint32_t kMeshDriverId = 0;

enum class LinkMsg : uint8_t {
  kEnvelope = 1,   // EncodeEnvelope payload (protocol data plane)
  kRoster = 2,     // peer directory: who serves which id, where, which key
  kJoinGroup = 3,  // per-group key material for the receiving server
  kBeginRound = 4, // opens round round_id: 256-bit root key, and for
                   // pipelined engine rounds the full round spec (topology,
                   // hosts, group keys, layout, trap commitments)
  kAck = 5,        // acknowledges one control message by sequence number
  kHostGroup = 6,  // full DKG material: the receiver hosts this group's
                   // engine hops (distributed pipelined rounds)
  kRoundDone = 7,  // round retired (completed or aborted): evict its state
  kEnvelopeBundle = 8,  // EncodeEnvelopeBundle payload: every envelope a
                        // sender owes one peer for one hop, in one frame
  kMetricsSnapshot = 9, // telemetry export: driver->server it is a request
                        // (u64 seq), server->driver the reply (u64 seq ||
                        // EncodeMetricsSnapshot of the process registry)
};

// One mesh participant as named by the roster.
struct MeshPeer {
  uint32_t server_id = 0;
  std::string host;
  uint16_t port = 0;
  Point pk;  // long-term identity key (handshake authentication)
};

// Frame envelope: u8 type || body.
Bytes PackLinkFrame(LinkMsg type, BytesView body);
struct LinkFrame {
  LinkMsg type;
  Bytes body;
};
std::optional<LinkFrame> UnpackLinkFrame(BytesView payload);

Bytes EncodeRoster(uint64_t seq, std::span<const MeshPeer> peers);
struct RosterMsg {
  uint64_t seq = 0;
  std::vector<MeshPeer> peers;
};
std::optional<RosterMsg> DecodeRoster(BytesView bytes);

Bytes EncodeJoinGroup(uint64_t seq, uint32_t gid, const NodeGroupKeys& keys);
struct JoinGroupMsg {
  uint64_t seq = 0;
  uint32_t gid = 0;
  NodeGroupKeys keys;
};
std::optional<JoinGroupMsg> DecodeJoinGroup(BytesView bytes);

// adjacency[layer][gid] -> that group's neighbour list in layer+1.
using AdjacencyTable = std::vector<std::vector<std::vector<uint32_t>>>;

// Compressed adjacency codec for kBeginRound. The naive encoding is a
// 4-byte word per edge — O(G²) per layer boundary for the square network
// (complete bipartite layers), which dominates the spec for wide
// deployments. Each neighbour list is encoded as the smaller of:
//
//   * mode 1, bitmap: one bit per possible neighbour (⌈width/8⌉ bytes) —
//     the square network's full row costs G/8 bytes instead of 4G, a 32x
//     cut. Only usable when the list is strictly ascending (the bitmap
//     cannot represent order, and hop fan-out order is load-bearing).
//   * mode 0, zigzag-delta varints: count, first value, then successive
//     differences, all LEB128 — near-one-byte-per-edge for the local,
//     possibly non-monotone lists of the butterfly network.
//
// Decoding validates every neighbour < width and caps counts before any
// allocation, like the rest of the control plane.
Bytes EncodeAdjacency(const AdjacencyTable& adjacency, uint32_t width);
std::optional<AdjacencyTable> DecodeAdjacency(BytesView bytes,
                                              uint32_t boundaries,
                                              uint32_t width);

// The wire form of one pipelined engine round's execution plan: everything
// a hosting server needs to run its groups' hops and exit checks without
// any global barrier. Shipped inside kBeginRound; absent for legacy
// chain-protocol rounds (AtomNode message traffic), which only need the
// root key.
struct WireRoundSpec {
  uint8_t variant = 0;       // static_cast<uint8_t>(Variant)
  uint32_t layers = 0;       // mixing iterations T
  uint32_t width = 0;        // groups per layer
  uint32_t hop_workers = 1;  // intra-hop ParallelFor width (determinism:
                             // must match the reference engine's)
  // adjacency[layer][gid] -> neighbour gids in layer+1 (layers-1 entries;
  // the last layer is the exit). Travels delta/bitmap-compressed (see
  // EncodeAdjacency above).
  AdjacencyTable adjacency;
  std::vector<uint32_t> hosts;   // width: server id executing each group
  std::vector<Point> group_pks;  // width: each group's threshold key
  // Exit plan (engine-native exit). When false the exit batches route
  // back to the driver raw.
  bool native_exit = false;
  uint32_t plaintext_len = 0;  // MessageLayout, flattened
  uint32_t padded_len = 0;
  uint32_t num_points = 0;
  // Trap variant: THIS round's per-entry-group trap commitments, so the
  // §4.4 checks run on the destination groups' hosts (width entries; the
  // driver fills only the sets for groups the receiver hosts — they are
  // the bulk of the spec, and no host reads another host's sets).
  std::vector<std::vector<std::array<uint8_t, 32>>> commitments;
};

Bytes EncodeBeginRound(uint64_t seq, uint64_t round_id,
                       const std::array<uint8_t, 32>& root_key,
                       const WireRoundSpec* spec);
struct BeginRoundMsg {
  uint64_t seq = 0;
  uint64_t round_id = 0;
  std::array<uint8_t, 32> root_key{};
  std::optional<WireRoundSpec> spec;  // engine-mode rounds only
};
std::optional<BeginRoundMsg> DecodeBeginRound(BytesView bytes);

Bytes EncodeRoundDone(uint64_t round_id);
std::optional<uint64_t> DecodeRoundDone(BytesView bytes);

Bytes EncodeHostGroup(uint64_t seq, uint32_t gid, const DkgResult& dkg);
struct HostGroupMsg {
  uint64_t seq = 0;
  uint32_t gid = 0;
  DkgResult dkg;
};
std::optional<HostGroupMsg> DecodeHostGroup(BytesView bytes);

Bytes EncodeAck(uint64_t seq);
std::optional<uint64_t> DecodeAck(BytesView bytes);

// kMetricsSnapshot request (driver -> server): just the sequence number
// the reply must echo. Same wire shape as an ack, separate codec so the
// two cannot be confused at call sites.
Bytes EncodeMetricsRequest(uint64_t seq);
std::optional<uint64_t> DecodeMetricsRequest(BytesView bytes);

// kMetricsSnapshot reply (server -> driver): echoed seq, then the
// process registry frozen by EncodeMetricsSnapshot (src/obs/metrics.h).
Bytes EncodeMetricsReply(uint64_t seq, const obs::MetricsSnapshot& snapshot);
struct MetricsReplyMsg {
  uint64_t seq = 0;
  obs::MetricsSnapshot snapshot;
};
std::optional<MetricsReplyMsg> DecodeMetricsReply(BytesView bytes);

}  // namespace atom

#endif  // SRC_NET_CONTROL_H_
