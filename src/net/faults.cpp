#include "src/net/faults.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/util/rng.h"

namespace atom {
namespace {

// Maps a probability to a 64-bit threshold: a uniform draw fires when it
// is below the threshold. p >= 1 must fire on every draw, so it saturates.
uint64_t Threshold(double p) {
  if (p <= 0) {
    return 0;
  }
  if (p >= 1) {
    return UINT64_MAX;
  }
  return static_cast<uint64_t>(p * 18446744073709551616.0 /* 2^64 */);
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseProb(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || !(v >= 0) || !(v <= 1)) {
    return false;
  }
  *out = v;
  return true;
}

std::string FormatProb(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

}  // namespace

void FaultPlan::set_seed(uint64_t seed) {
  seed_ = seed;
  root_.fill(0);
  for (int i = 0; i < 8; i++) {
    root_[i] = static_cast<uint8_t>(seed >> (8 * i));
  }
  // Key-separate the fault-plan PRF from every protocol use of the seed
  // (engine roots are drawn from an Rng over the raw seed bytes).
  root_ = DeriveSubKey(root_, 0x6661756c74ULL /* "fault" */, 0);
}

void FaultPlan::SeverLink(uint32_t a, uint32_t b, uint64_t first_round,
                          uint64_t last_round) {
  severs_.push_back({a, b, first_round, last_round});
}

bool FaultPlan::LinkSevered(uint64_t round_id, uint64_t a, uint64_t b) const {
  for (const SeverRule& rule : severs_) {
    const bool pair_match = (rule.a == a && rule.b == b) ||
                            (rule.a == b && rule.b == a);
    if (pair_match && round_id >= rule.first_round &&
        round_id <= rule.last_round) {
      return true;
    }
  }
  return false;
}

void FaultPlan::TamperRounds(uint64_t first_round, uint64_t last_round) {
  tampers_.push_back({first_round, last_round});
}

bool FaultPlan::TamperRound(uint64_t round_id) const {
  for (const TamperRule& rule : tampers_) {
    if (round_id >= rule.first_round && round_id <= rule.last_round) {
      return true;
    }
  }
  return false;
}

uint64_t FaultPlan::Draw(uint64_t stream_key, uint64_t index,
                         uint64_t* salt) const {
  const std::array<uint8_t, 32> sub = DeriveSubKey(root_, stream_key, index);
  uint64_t r = 0;
  uint64_t s = 0;
  for (int i = 0; i < 8; i++) {
    r |= static_cast<uint64_t>(sub[i]) << (8 * i);
    s |= static_cast<uint64_t>(sub[8 + i]) << (8 * i);
  }
  if (salt != nullptr) {
    *salt = s;
  }
  return r;
}

FaultDecision FaultPlan::NextDecision(uint64_t stream_key) {
  uint64_t index;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    index = stream_counters_[stream_key]++;
  }
  FaultDecision decision;
  const uint64_t r = Draw(stream_key, index, &decision.mutate_salt);
  uint64_t cut = Threshold(drop_rate_);
  if (r < cut) {
    decision.action = FaultAction::kDrop;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  cut += Threshold(duplicate_rate_);
  if (r < cut) {
    decision.action = FaultAction::kDuplicate;
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  cut += Threshold(truncate_rate_);
  if (r < cut) {
    decision.action = FaultAction::kTruncate;
    truncated_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  cut += Threshold(corrupt_rate_);
  if (r < cut) {
    decision.action = FaultAction::kCorrupt;
    corrupted_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  cut += Threshold(delay_rate_);
  if (r < cut) {
    decision.action = FaultAction::kDelay;
    decision.delay = delay_;
    delayed_.fetch_add(1, std::memory_order_relaxed);
    return decision;
  }
  return decision;
}

bool FaultPlan::DisconnectClient(uint64_t client_id) {
  if (client_disconnect_rate_ <= 0) {
    return false;
  }
  // Clients get their own stream namespace so a scenario that adds client
  // churn does not perturb the server-frame decision streams.
  const uint64_t key = 0x636c69656e740000ULL ^ client_id;  // "client"
  uint64_t index;
  {
    std::lock_guard<std::mutex> lock(streams_mu_);
    index = stream_counters_[key]++;
  }
  const bool hit = Draw(key, index, nullptr) < Threshold(
      client_disconnect_rate_);
  if (hit) {
    disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

void FaultPlan::Mutate(const FaultDecision& decision, Bytes& frame) {
  if (frame.empty()) {
    return;
  }
  if (decision.action == FaultAction::kTruncate) {
    frame.resize(decision.mutate_salt % frame.size());
  } else if (decision.action == FaultAction::kCorrupt) {
    const uint64_t bit = decision.mutate_salt % (frame.size() * 8);
    frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

void FaultPlan::FlipByte(uint64_t salt, Bytes& bytes) {
  if (bytes.empty()) {
    return;
  }
  bytes[salt % bytes.size()] ^= 0xff;
}

FaultPlan::Counts FaultPlan::counts() const {
  Counts counts;
  counts.dropped = dropped_.load(std::memory_order_relaxed);
  counts.delayed = delayed_.load(std::memory_order_relaxed);
  counts.duplicated = duplicated_.load(std::memory_order_relaxed);
  counts.truncated = truncated_.load(std::memory_order_relaxed);
  counts.corrupted = corrupted_.load(std::memory_order_relaxed);
  counts.severed = severed_.load(std::memory_order_relaxed);
  counts.stalled = stalled_.load(std::memory_order_relaxed);
  counts.disconnects = disconnects_.load(std::memory_order_relaxed);
  return counts;
}

std::shared_ptr<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  auto plan = std::make_shared<FaultPlan>();
  std::stringstream stream(spec);
  std::string field;
  while (std::getline(stream, field, ';')) {
    if (field.empty()) {
      continue;
    }
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return nullptr;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    uint64_t n = 0;
    double p = 0;
    if (key == "seed") {
      if (!ParseU64(value, &n)) {
        return nullptr;
      }
      plan->set_seed(n);
    } else if (key == "drop") {
      if (!ParseProb(value, &p)) {
        return nullptr;
      }
      plan->set_drop_rate(p);
    } else if (key == "dup") {
      if (!ParseProb(value, &p)) {
        return nullptr;
      }
      plan->set_duplicate_rate(p);
    } else if (key == "trunc") {
      if (!ParseProb(value, &p)) {
        return nullptr;
      }
      plan->set_truncate_rate(p);
    } else if (key == "corrupt") {
      if (!ParseProb(value, &p)) {
        return nullptr;
      }
      plan->set_corrupt_rate(p);
    } else if (key == "disconnect") {
      if (!ParseProb(value, &p)) {
        return nullptr;
      }
      plan->set_client_disconnect_rate(p);
    } else if (key == "delay") {
      // MS@P, or bare MS (probability 1).
      const size_t at = value.find('@');
      const std::string ms = value.substr(0, at);
      p = 1.0;
      if (at != std::string::npos &&
          !ParseProb(value.substr(at + 1), &p)) {
        return nullptr;
      }
      if (!ParseU64(ms, &n)) {
        return nullptr;
      }
      plan->set_delay(p, std::chrono::milliseconds(n));
    } else if (key == "stall") {
      if (!ParseU64(value, &n)) {
        return nullptr;
      }
      plan->set_stall(std::chrono::milliseconds(n));
    } else if (key == "sever") {
      // A-B[@R1-R2]
      const size_t at = value.find('@');
      const std::string pair = value.substr(0, at);
      const size_t dash = pair.find('-');
      uint64_t a = 0;
      uint64_t b = 0;
      if (dash == std::string::npos ||
          !ParseU64(pair.substr(0, dash), &a) ||
          !ParseU64(pair.substr(dash + 1), &b)) {
        return nullptr;
      }
      uint64_t first = 0;
      uint64_t last = UINT64_MAX;
      if (at != std::string::npos) {
        const std::string range = value.substr(at + 1);
        const size_t rdash = range.find('-');
        if (rdash == std::string::npos ||
            !ParseU64(range.substr(0, rdash), &first) ||
            !ParseU64(range.substr(rdash + 1), &last)) {
          return nullptr;
        }
      }
      plan->SeverLink(static_cast<uint32_t>(a), static_cast<uint32_t>(b),
                      first, last);
    } else if (key == "tamper") {
      const size_t dash = value.find('-');
      uint64_t first = 0;
      uint64_t last = 0;
      if (dash == std::string::npos ||
          !ParseU64(value.substr(0, dash), &first) ||
          !ParseU64(value.substr(dash + 1), &last)) {
        return nullptr;
      }
      plan->TamperRounds(first, last);
    } else {
      return nullptr;
    }
  }
  return plan;
}

std::string FaultPlan::ToSpec() const {
  std::string spec = "seed=" + std::to_string(seed_);
  if (drop_rate_ > 0) {
    spec += ";drop=" + FormatProb(drop_rate_);
  }
  if (duplicate_rate_ > 0) {
    spec += ";dup=" + FormatProb(duplicate_rate_);
  }
  if (truncate_rate_ > 0) {
    spec += ";trunc=" + FormatProb(truncate_rate_);
  }
  if (corrupt_rate_ > 0) {
    spec += ";corrupt=" + FormatProb(corrupt_rate_);
  }
  if (delay_rate_ > 0) {
    spec += ";delay=" + std::to_string(delay_.count()) + "@" +
            FormatProb(delay_rate_);
  }
  if (stall_.count() > 0) {
    spec += ";stall=" + std::to_string(stall_.count());
  }
  if (client_disconnect_rate_ > 0) {
    spec += ";disconnect=" + FormatProb(client_disconnect_rate_);
  }
  for (const SeverRule& rule : severs_) {
    spec += ";sever=" + std::to_string(rule.a) + "-" + std::to_string(rule.b);
    if (rule.first_round != 0 || rule.last_round != UINT64_MAX) {
      spec += "@" + std::to_string(rule.first_round) + "-" +
              std::to_string(rule.last_round);
    }
  }
  for (const TamperRule& rule : tampers_) {
    spec += ";tamper=" + std::to_string(rule.first_round) + "-" +
            std::to_string(rule.last_round);
  }
  return spec;
}

}  // namespace atom
