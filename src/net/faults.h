// Deterministic fault injection for the net stack (adversarial scenario
// harness). A FaultPlan is a seeded description of everything that goes
// wrong in a deployment: per-frame faults (drop / delay / duplicate /
// truncate / corrupt) drawn from a ChaCha20 PRF so every decision replays
// from the seed, a per-process stall (straggler), severed links scoped to
// round-id ranges (partition), tamper rounds (byzantine mixer, applied by
// NodeProcess to outbound hop batches), and forced client disconnects
// (gateway-side churn).
//
// Determinism contract: each (sender, receiver) stream keeps its own frame
// counter, and decision n on stream s is PRF(seed, s, n) — so a replayed
// run makes identical per-stream decisions regardless of how OS scheduling
// interleaves streams against each other. The scenario invariants
// (abort-or-complete, bounded blame, byte-identical non-faulted rounds)
// hold for every interleaving; the seed pins which frames are hit.
//
// Plans cross process boundaries as a textual spec (Parse/ToSpec), which
// is how examples/atom_server.cpp --fault-spec configures a fleet member
// from the scenario driver.
#ifndef SRC_NET_FAULTS_H_
#define SRC_NET_FAULTS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/util/bytes.h"

namespace atom {

enum class FaultAction : uint8_t {
  kNone = 0,
  kDrop = 1,       // frame silently discarded; the sender believes it left
  kDelay = 2,      // frame held for the plan's delay before the socket
  kDuplicate = 3,  // frame sent twice (both genuinely sealed)
  kTruncate = 4,   // sealed record truncated -> receiver AEAD reject
  kCorrupt = 5,    // one bit of the sealed record flipped -> same
};

// One frame's verdict. mutate_salt drives Mutate deterministically, so a
// replay corrupts the same bit of the same frame.
struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::chrono::milliseconds delay{0};
  uint64_t mutate_salt = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(uint64_t seed) { set_seed(seed); }

  // ---- Configuration (set before the deployment starts; not locked
  // against concurrent NextDecision).

  void set_seed(uint64_t seed);
  uint64_t seed() const { return seed_; }

  // Per-frame fault probabilities in [0, 1]. Drawn cumulatively from one
  // PRF sample per frame, in this order; at most one action fires.
  void set_drop_rate(double p) { drop_rate_ = p; }
  void set_duplicate_rate(double p) { duplicate_rate_ = p; }
  void set_truncate_rate(double p) { truncate_rate_ = p; }
  void set_corrupt_rate(double p) { corrupt_rate_ = p; }
  void set_delay(double p, std::chrono::milliseconds d) {
    delay_rate_ = p;
    delay_ = d;
  }
  double drop_rate() const { return drop_rate_; }

  // Straggler: every outbound frame from this participant sleeps this
  // long before hitting the socket (on top of any per-frame kDelay).
  void set_stall(std::chrono::milliseconds stall) { stall_ = stall; }
  std::chrono::milliseconds stall() const { return stall_; }

  // Partition: severs the undirected server pair (a, b) for round ids in
  // [first_round, last_round] (inclusive; defaults cover every round).
  // A severed envelope send fails exactly like an unreachable peer, so
  // the existing failure conversion produces the round-scoped abort.
  void SeverLink(uint32_t a, uint32_t b, uint64_t first_round = 0,
                 uint64_t last_round = UINT64_MAX);
  bool LinkSevered(uint64_t round_id, uint64_t a, uint64_t b) const;

  // Byzantine mixer: rounds in [first_round, last_round] get their
  // outbound hop batches tampered by the hosting NodeProcess.
  void TamperRounds(uint64_t first_round, uint64_t last_round);
  bool TamperRound(uint64_t round_id) const;

  // Gateway churn: probability that a client connection is killed right
  // after a kSubmit frame is read (mid-stream disconnect).
  void set_client_disconnect_rate(double p) { client_disconnect_rate_ = p; }
  // Draws from the client's own PRF stream; true = kill the link now.
  bool DisconnectClient(uint64_t client_id);

  // ---- Per-frame decisions (thread-safe).

  // The (sender, receiver) stream identifier used by the mesh.
  static uint64_t StreamKey(uint64_t self_id, uint64_t peer_id) {
    return (self_id << 32) ^ peer_id;
  }

  // Draws the next decision for a stream and advances its counter.
  FaultDecision NextDecision(uint64_t stream_key);

  // Applies a kTruncate/kCorrupt decision to a sealed record in place.
  static void Mutate(const FaultDecision& decision, Bytes& frame);

  // Deterministically flips one byte of an encoded payload (the byzantine
  // tamper applied to outbound hop batches); salt picks the byte.
  static void FlipByte(uint64_t salt, Bytes& bytes);

  // ---- Observability (what actually fired; for scenario reports).

  struct Counts {
    uint64_t dropped = 0;
    uint64_t delayed = 0;
    uint64_t duplicated = 0;
    uint64_t truncated = 0;
    uint64_t corrupted = 0;
    uint64_t severed = 0;
    uint64_t stalled = 0;
    uint64_t disconnects = 0;
  };
  Counts counts() const;
  void CountSevered() { severed_.fetch_add(1, std::memory_order_relaxed); }
  void CountStalled() { stalled_.fetch_add(1, std::memory_order_relaxed); }

  // ---- Textual spec (crosses the fork/exec boundary to atom_server).
  //
  //   seed=N            PRF seed (decimal)
  //   drop=P dup=P trunc=P corrupt=P      probabilities (decimal floats)
  //   delay=MS@P        per-frame delay MS milliseconds with probability P
  //   stall=MS          straggler stall per outbound frame
  //   sever=A-B@R1-R2   sever servers A,B for rounds R1..R2 (@.. optional)
  //   tamper=R1-R2      tamper outbound hop batches for rounds R1..R2
  //   disconnect=P      client disconnect probability (gateway side)
  //
  // Fields are ';'-separated; sever/tamper may repeat. Unknown fields
  // reject the whole spec (a typo must not silently weaken a scenario).
  // Returns nullptr on a malformed spec (the plan holds atomics, so it
  // travels by shared_ptr — the same handle every hook takes).
  static std::shared_ptr<FaultPlan> Parse(const std::string& spec);
  std::string ToSpec() const;

 private:
  uint64_t Draw(uint64_t stream_key, uint64_t index, uint64_t* salt) const;

  struct SeverRule {
    uint32_t a = 0;
    uint32_t b = 0;
    uint64_t first_round = 0;
    uint64_t last_round = UINT64_MAX;
  };
  struct TamperRule {
    uint64_t first_round = 0;
    uint64_t last_round = 0;
  };

  uint64_t seed_ = 0;
  std::array<uint8_t, 32> root_{};
  double drop_rate_ = 0;
  double duplicate_rate_ = 0;
  double truncate_rate_ = 0;
  double corrupt_rate_ = 0;
  double delay_rate_ = 0;
  std::chrono::milliseconds delay_{0};
  std::chrono::milliseconds stall_{0};
  double client_disconnect_rate_ = 0;
  std::vector<SeverRule> severs_;
  std::vector<TamperRule> tampers_;

  mutable std::mutex streams_mu_;
  std::map<uint64_t, uint64_t> stream_counters_;

  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> delayed_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> truncated_{0};
  std::atomic<uint64_t> corrupted_{0};
  std::atomic<uint64_t> severed_{0};
  std::atomic<uint64_t> stalled_{0};
  std::atomic<uint64_t> disconnects_{0};
};

}  // namespace atom

#endif  // SRC_NET_FAULTS_H_
