#include "src/net/gateway.h"

#include <array>
#include <utility>

#include "src/core/wire.h"
#include "src/obs/metrics.h"
#include "src/util/serde.h"

namespace atom {
namespace {

// Verdict counters shared with the reactor backend (same series names, so
// a process running both sees one combined ingress-outcome view).
obs::Counter* VerdictCounter(SubmitStatus status) {
  static std::array<obs::Counter*, 5> verdicts = [] {
    obs::Registry& reg = obs::Registry::Global();
    std::array<obs::Counter*, 5> out{};
    const char* statuses[5] = {"accepted", "rejected", "closed",
                               "backpressure", "foreign_id"};
    for (size_t s = 0; s < 5; s++) {
      out[s] =
          reg.GetCounter(std::string("atom_gateway_verdicts_total{status=\"") +
                         statuses[s] + "\"}");
    }
    return out;
  }();
  return verdicts[static_cast<size_t>(status)];
}

// No round this repo models has more entry groups; bounds the welcome
// decode like the rest of the control plane.
constexpr uint32_t kMaxWelcomeGroups = 4096;
// A submission is a handful of ciphertexts and proofs; anything near this
// is malformed or hostile (well under the SecureLink frame cap, so the
// gateway rejects before the decoder walks a giant buffer).
constexpr uint32_t kMaxSubmissionBytes = 1u << 22;
// Bound on every gateway->client socket write: a client that stops
// reading fails its sends and loses the link after this long, instead of
// wedging verdict/broadcast paths on a full kernel buffer forever.
constexpr int kClientSendTimeoutMillis = 10'000;

void PutPoint(ByteWriter& w, const Point& p) {
  w.Raw(BytesView(p.Encode()));
}

std::optional<Point> GetPoint(ByteReader& r) {
  auto raw = r.Raw(Point::kEncodedSize);
  if (!raw) {
    return std::nullopt;
  }
  return Point::Decode(BytesView(*raw));
}

}  // namespace

Bytes PackClientFrame(ClientMsg type, BytesView body) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.Raw(body);
  return w.Take();
}

std::optional<ClientFrame> UnpackClientFrame(BytesView payload) {
  if (payload.empty()) {
    return std::nullopt;
  }
  uint8_t type = payload[0];
  if (type < static_cast<uint8_t>(ClientMsg::kWelcome) ||
      type > static_cast<uint8_t>(ClientMsg::kRoundCutoff)) {
    return std::nullopt;
  }
  ClientFrame frame;
  frame.type = static_cast<ClientMsg>(type);
  frame.body.assign(payload.begin() + 1, payload.end());
  return frame;
}

Bytes EncodeWelcome(const GatewayWelcome& welcome) {
  ByteWriter w;
  w.U32(welcome.credit);
  w.U8(welcome.variant);
  w.U32(welcome.plaintext_len);
  w.U32(welcome.padded_len);
  w.U32(welcome.num_points);
  w.U32(static_cast<uint32_t>(welcome.entry_pks.size()));
  for (const Point& pk : welcome.entry_pks) {
    PutPoint(w, pk);
  }
  w.U8(welcome.trustee_pk.has_value() ? 1 : 0);
  if (welcome.trustee_pk.has_value()) {
    PutPoint(w, *welcome.trustee_pk);
  }
  w.U64(welcome.open_round);
  return w.Take();
}

std::optional<GatewayWelcome> DecodeWelcome(BytesView bytes) {
  ByteReader r(bytes);
  GatewayWelcome welcome;
  auto credit = r.U32();
  auto variant = r.U8();
  auto plaintext_len = r.U32();
  auto padded_len = r.U32();
  auto num_points = r.U32();
  auto num_groups = r.U32();
  if (!credit || !variant || *variant > 1 || !plaintext_len || !padded_len ||
      !num_points || !num_groups || *num_groups == 0 ||
      *num_groups > kMaxWelcomeGroups ||
      *num_groups > r.remaining() / Point::kEncodedSize) {
    return std::nullopt;
  }
  welcome.credit = *credit;
  welcome.variant = *variant;
  welcome.plaintext_len = *plaintext_len;
  welcome.padded_len = *padded_len;
  welcome.num_points = *num_points;
  welcome.entry_pks.reserve(*num_groups);
  for (uint32_t g = 0; g < *num_groups; g++) {
    auto pk = GetPoint(r);
    if (!pk) {
      return std::nullopt;
    }
    welcome.entry_pks.push_back(*pk);
  }
  auto has_trustee = r.U8();
  if (!has_trustee || *has_trustee > 1) {
    return std::nullopt;
  }
  if (*has_trustee == 1) {
    auto pk = GetPoint(r);
    if (!pk) {
      return std::nullopt;
    }
    welcome.trustee_pk = *pk;
  }
  auto open_round = r.U64();
  if (!open_round || !r.Done()) {
    return std::nullopt;
  }
  welcome.open_round = *open_round;
  return welcome;
}

Bytes SubmissionSigMessage(BytesView submission) {
  static constexpr char kDomain[] = "atom/submit/v1";
  Bytes msg(kDomain, kDomain + sizeof(kDomain) - 1);
  msg.insert(msg.end(), submission.begin(), submission.end());
  return msg;
}

Bytes EncodeSubmit(uint64_t seq, BytesView submission) {
  ByteWriter w;
  w.U64(seq);
  w.Var(submission);
  w.U8(0);  // unsigned
  return w.Take();
}

Bytes EncodeSubmitSigned(uint64_t seq, BytesView submission,
                         const SchnorrSignature& sig) {
  ByteWriter w;
  w.U64(seq);
  w.Var(submission);
  w.U8(1);
  w.Raw(BytesView(sig.Encode()));
  return w.Take();
}

std::optional<SubmitMsg> DecodeSubmit(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  if (!seq) {
    return std::nullopt;
  }
  auto len = r.U32();
  // Reject a declared length past the cap or the frame's actual size
  // before allocating anything.
  if (!len || *len > kMaxSubmissionBytes || *len > r.remaining()) {
    return std::nullopt;
  }
  auto submission = r.Raw(*len);
  if (!submission) {
    return std::nullopt;
  }
  auto has_sig = r.U8();
  if (!has_sig || *has_sig > 1) {
    return std::nullopt;
  }
  SubmitMsg msg;
  msg.seq = *seq;
  msg.submission = std::move(*submission);
  if (*has_sig == 1) {
    auto raw = r.Raw(SchnorrSignature::kEncodedSize);
    if (!raw) {
      return std::nullopt;
    }
    auto sig = SchnorrSignature::Decode(BytesView(*raw));
    if (!sig) {
      return std::nullopt;
    }
    msg.has_sig = true;
    msg.sig = *sig;
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return msg;
}

Bytes EncodeSubmitResult(uint64_t seq, SubmitStatus status) {
  ByteWriter w;
  w.U64(seq);
  w.U8(static_cast<uint8_t>(status));
  return w.Take();
}

std::optional<SubmitResultMsg> DecodeSubmitResult(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  auto status = r.U8();
  if (!seq || !status ||
      *status > static_cast<uint8_t>(SubmitStatus::kForeignId) ||
      !r.Done()) {
    return std::nullopt;
  }
  return SubmitResultMsg{*seq, static_cast<SubmitStatus>(*status)};
}

Bytes EncodeRoundNotice(uint64_t round_id) {
  ByteWriter w;
  w.U64(round_id);
  return w.Take();
}

std::optional<uint64_t> DecodeRoundNotice(BytesView bytes) {
  ByteReader r(bytes);
  auto round_id = r.U64();
  if (!round_id || !r.Done()) {
    return std::nullopt;
  }
  return round_id;
}

SubmissionGateway::SubmissionGateway(Round* round, ClientRegistry* registry,
                                     KemKeypair identity,
                                     GatewayConfig config, ThreadPool* pool)
    : round_(round),
      registry_(registry),
      identity_(std::move(identity)),
      config_(config) {
  ATOM_CHECK(round_ != nullptr && registry_ != nullptr);
  pumps_.reserve(round_->NumGroups());
  for (size_t g = 0; g < round_->NumGroups(); g++) {
    pumps_.push_back(std::make_unique<ShardPump>(pool));
  }
  // Every id the gateway authenticates is also admissible at intake, and
  // nothing else: the round's registry hook closes the in-process path a
  // misbehaving driver could otherwise use to bypass the channel check.
  round_->SetClientAuth([registry](uint64_t client_id) {
    return registry->Lookup(client_id).has_value();
  });
}

SubmissionGateway::~SubmissionGateway() {
  Stop();
  // The hook installed at construction captures the registry pointer;
  // clear it so a Round outliving this gateway (and its registry) cannot
  // call through freed memory. Safe here: Stop() has quiesced every
  // reader and pump, so nothing reads the hook concurrently.
  round_->SetClientAuth(nullptr);
}

bool SubmissionGateway::Listen(uint16_t port) {
  auto listener = TcpListener::Bind(port);
  if (!listener) {
    return false;
  }
  listener_ = std::move(*listener);
  return true;
}

void SubmissionGateway::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!listener_.valid() || accepting_ || stopping_) {
    return;
  }
  accepting_ = true;
  threads_.emplace_back([this] { AcceptLoop(); });
}

void SubmissionGateway::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  listener_.Shutdown();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = conns_;
  }
  for (auto& conn : conns) {
    conn->link->Shutdown();
  }
  std::vector<std::thread> threads;
  std::map<uint64_t, std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
    readers.swap(readers_);
    finished_readers_.clear();
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (auto& [id, t] : readers) {
    t.join();
  }
  // Readers are gone; let in-flight pump tasks finish (their result sends
  // fail harmlessly against the closed links).
  for (auto& pump : pumps_) {
    pump->serial.Drain();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns_.clear();
    pending_.clear();
  }
  listener_.Close();
}

void SubmissionGateway::OpenRound(uint64_t round_id) {
  ATOM_CHECK_MSG(round_id != 0, "round id 0 marks a closed intake");
  open_round_.store(round_id, std::memory_order_release);
  Broadcast(ClientMsg::kRoundOpen, BytesView(EncodeRoundNotice(round_id)));
}

void SubmissionGateway::Cutoff() {
  uint64_t closed = open_round_.exchange(0, std::memory_order_acq_rel);
  if (closed != 0) {
    Broadcast(ClientMsg::kRoundCutoff, BytesView(EncodeRoundNotice(closed)));
  }
  // Drain every shard: one final pump behind anything already scheduled
  // (the serial lane preserves the single-consumer contract). All final
  // pumps are submitted BEFORE any drain so the shards verify their
  // tails concurrently on the pool — the cutoff-to-ship latency is the
  // slowest shard, not the sum. After the drains, every submission the
  // readers queued before the cutoff flipped has a verdict.
  // A sharded gateway (entry_group >= 0) only ever pumps its own group:
  // PumpStream is single-consumer per shard, and in a fleet each shard's
  // consumer is its own gateway.
  for (uint32_t g = 0; g < pumps_.size(); g++) {
    if (config_.entry_group >= 0 &&
        g != static_cast<uint32_t>(config_.entry_group)) {
      continue;
    }
    pumps_[g]->serial.Submit([this, g] { PumpShard(g); });
  }
  for (auto& pump : pumps_) {
    pump->serial.Drain();
  }
}

size_t SubmissionGateway::ApplyRegistrySync(const RegistrySyncMsg& sync) {
  return registry_->ApplySync(sync);
}

size_t SubmissionGateway::accepted_count() const {
  return accepted_.load(std::memory_order_relaxed);
}

size_t SubmissionGateway::resolved_count() const {
  return resolved_.load(std::memory_order_relaxed);
}

size_t SubmissionGateway::connection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

void SubmissionGateway::ReapFinishedReaders() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : finished_readers_) {
      auto it = readers_.find(id);
      if (it != readers_.end()) {
        done.push_back(std::move(it->second));
        readers_.erase(it);
      }
    }
    finished_readers_.clear();
  }
  for (std::thread& t : done) {
    t.join();  // the reader already ran its last statement; near-instant
  }
}

void SubmissionGateway::AcceptLoop() {
  for (;;) {
    auto socket = listener_.Accept();
    if (!socket) {
      return;  // listener shut down
    }
    ReapFinishedReaders();  // client churn must not accumulate threads
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    // Handshake and everything after run OFF this thread: the gateway is
    // the untrusted-internet surface, and a dialer that connects then
    // stalls its handshake (bounded by the link's handshake timeout)
    // must not deny acceptance to the honest clients behind it.
    uint64_t reader_id = next_reader_id_++;
    readers_.emplace(reader_id,
                     std::thread([this, reader_id,
                                  sock = std::move(*socket)]() mutable {
                       ServeConnection(std::move(sock), reader_id);
                     }));
  }
}

void SubmissionGateway::ServeConnection(TcpSocket socket,
                                        uint64_t reader_id) {
  // Early exits hand the thread to the reaper themselves; the success
  // path delegates to ReaderLoop, whose tail does the same.
  auto finish = [this, reader_id] {
    std::lock_guard<std::mutex> lock(mu_);
    finished_readers_.push_back(reader_id);
  };
  Rng rng = Rng::FromOsEntropy();
  // The registry IS the authentication: an id without a registered key
  // cannot complete the handshake, and a registered id can only be
  // claimed by the holder of its registered key.
  auto accepted = SecureLink::Accept(
      std::move(socket), kGatewayLinkId, identity_,
      [this](uint64_t id) { return registry_->Lookup(id); }, rng);
  if (accepted == nullptr) {
    finish();
    return;
  }
  auto conn = std::make_shared<Connection>();
  conn->client_id = accepted->peer_id();
  // Cache the registered key: the handshake only completes against it, so
  // the lookup cannot fail here. It becomes sig_pk for every signed frame
  // this connection streams — the pump never touches the registry.
  auto registered = registry_->Lookup(conn->client_id);
  ATOM_CHECK(registered.has_value());
  conn->pk = *registered;
  conn->link = std::shared_ptr<SecureLink>(std::move(accepted));
  // A client that stops reading (zero TCP window) must fail its sends,
  // not wedge verdict and broadcast paths on a full kernel buffer.
  conn->link->SetSendTimeout(kClientSendTimeoutMillis);

  GatewayWelcome welcome;
  welcome.credit = config_.credit_window;
  welcome.variant = static_cast<uint8_t>(round_->variant());
  welcome.plaintext_len =
      static_cast<uint32_t>(round_->layout().plaintext_len);
  welcome.padded_len = static_cast<uint32_t>(round_->layout().padded_len);
  welcome.num_points = static_cast<uint32_t>(round_->layout().num_points);
  for (uint32_t g = 0; g < round_->NumGroups(); g++) {
    welcome.entry_pks.push_back(round_->EntryPk(g));
  }
  if (round_->variant() == Variant::kTrap) {
    welcome.trustee_pk = round_->TrusteePk();
  }
  welcome.open_round = open_round_.load(std::memory_order_acquire);
  if (!conn->link->Send(BytesView(PackClientFrame(
          ClientMsg::kWelcome, BytesView(EncodeWelcome(welcome)))))) {
    finish();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      conn->link->Shutdown();
    } else {
      conns_.push_back(conn);
    }
  }
  // An OpenRound/Cutoff between the welcome snapshot and the conns_
  // insertion broadcast to a list this connection was not yet on; send
  // the corrective notice directly (a duplicate notice is harmless —
  // the client just overwrites its open-round state).
  uint64_t now_open = open_round_.load(std::memory_order_acquire);
  if (now_open != welcome.open_round) {
    if (now_open != 0) {
      conn->link->Send(BytesView(PackClientFrame(
          ClientMsg::kRoundOpen, BytesView(EncodeRoundNotice(now_open)))));
    } else {
      conn->link->Send(BytesView(
          PackClientFrame(ClientMsg::kRoundCutoff,
                          BytesView(EncodeRoundNotice(welcome.open_round)))));
    }
  }
  ReaderLoop(conn, reader_id);
}

void SubmissionGateway::ReaderLoop(std::shared_ptr<Connection> conn,
                                   uint64_t reader_id) {
  for (;;) {
    auto payload = conn->link->Recv();
    if (!payload) {
      break;  // EOF, oversize, or authentication failure: drop the client
    }
    auto frame = UnpackClientFrame(BytesView(*payload));
    if (!frame) {
      conn->link->Shutdown();  // junk after an authenticated handshake
      break;
    }
    if (frame->type != ClientMsg::kSubmit) {
      continue;  // clients only ever send kSubmit; ignore the rest
    }
    auto msg = DecodeSubmit(BytesView(frame->body));
    if (!msg) {
      conn->link->Shutdown();  // malformed submit envelope: hostile
      break;
    }
    if (fault_plan_ != nullptr &&
        fault_plan_->DisconnectClient(conn->client_id)) {
      // Scenario-harness churn: kill the connection mid-stream, with the
      // just-read submission discarded before it reaches the intake — so
      // the client's missing verdict means "not accepted", never
      // "accepted but unacknowledged", and a scenario's accepted set
      // stays exactly knowable. Earlier submissions verify normally; the
      // disconnect tail below keeps the round from stalling.
      conn->link->Shutdown();
      break;
    }
    HandleSubmit(conn, std::move(*msg));
  }
  // A disconnect mid-stream must never stall the round: submissions this
  // client already queued verify normally; we only stop broadcasting to
  // it. Pending verdicts resolve against the dead link harmlessly. The
  // thread hands itself to the accept loop's reaper for joining.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = conns_.begin(); it != conns_.end(); ++it) {
    if (it->get() == conn.get()) {
      conns_.erase(it);
      break;
    }
  }
  finished_readers_.push_back(reader_id);
}

void SubmissionGateway::HandleSubmit(
    const std::shared_ptr<Connection>& conn, SubmitMsg msg) {
  if (open_round_.load(std::memory_order_acquire) == 0) {
    SendResult(conn, msg.seq, SubmitStatus::kClosed);
    return;
  }
  if (config_.require_sigs && !msg.has_sig) {
    SendResult(conn, msg.seq, SubmitStatus::kRejected);
    return;
  }
  // Decode on the reader thread (cheap next to proof verification, and it
  // keeps the ring free of undecodable junk).
  StreamedSubmission item;
  if (msg.has_sig) {
    // Verification is deferred to the pump, which folds all signed items
    // of a drained span into one batch check; sign over the wire bytes so
    // the pump needs no re-encoding.
    item.has_sig = true;
    item.sig_pk = conn->pk;
    item.sig = msg.sig;
    item.sig_msg = SubmissionSigMessage(BytesView(msg.submission));
  }
  uint32_t gid = 0;
  uint64_t submission_client = 0;
  if (round_->variant() == Variant::kTrap) {
    auto sub = DecodeTrapSubmission(BytesView(msg.submission));
    if (!sub) {
      SendResult(conn, msg.seq, SubmitStatus::kRejected);
      return;
    }
    gid = sub->entry_gid;
    submission_client = sub->client_id;
    item.trap = std::move(*sub);
  } else {
    auto sub = DecodeNizkSubmission(BytesView(msg.submission));
    if (!sub) {
      SendResult(conn, msg.seq, SubmitStatus::kRejected);
      return;
    }
    gid = sub->entry_gid;
    submission_client = sub->client_id;
    item.nizk = std::move(*sub);
  }
  // The authenticated channel pins the id: a submission claiming any
  // other id (including anonymous) is the squatting attack registration
  // exists to stop.
  if (submission_client != conn->client_id) {
    SendResult(conn, msg.seq, SubmitStatus::kForeignId);
    return;
  }
  if (gid >= round_->NumGroups()) {
    SendResult(conn, msg.seq, SubmitStatus::kRejected);
    return;
  }
  // Sharded admission (fleet deployments): this gateway serves exactly
  // one entry group; a submission addressed elsewhere is a routing bug
  // the client must see, not silently forward.
  if (config_.entry_group >= 0 &&
      gid != static_cast<uint32_t>(config_.entry_group)) {
    SendResult(conn, msg.seq, SubmitStatus::kRejected);
    return;
  }

  uint64_t cookie;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->in_flight >= config_.credit_window) {
      // A conforming client never reaches this (it spends credit); an
      // overdrawn one gets backpressure instead of unbounded queueing.
      cookie = 0;
    } else {
      cookie = next_cookie_++;
      pending_[cookie] = PendingSubmit{conn, msg.seq};
      conn->in_flight++;
    }
  }
  if (cookie == 0) {
    SendResult(conn, msg.seq, SubmitStatus::kBackpressure);
    return;
  }
  item.cookie = cookie;
  if (!round_->StreamSubmit(std::move(item))) {
    // Shard ring full: the bound is the backpressure, not a stall.
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(cookie);
      conn->in_flight--;
    }
    SendResult(conn, msg.seq, SubmitStatus::kBackpressure);
    return;
  }
  SchedulePump(gid);
}

void SubmissionGateway::SchedulePump(uint32_t gid) {
  // One pump per push: the SerialExecutor's lock orders the preceding
  // ring push before the pump task (no flag protocol, no lost-wakeup
  // window on weakly-ordered CPUs); a pump whose span was already
  // drained by its predecessor pops nothing and returns.
  pumps_[gid]->serial.Submit([this, gid] { PumpShard(gid); });
}

void SubmissionGateway::PumpShard(uint32_t gid) {
  round_->PumpStream(
      gid, config_.verify_workers,
      [this](uint64_t cookie, bool accepted) {
        std::shared_ptr<Connection> conn;
        uint64_t seq = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pending_.find(cookie);
          if (it == pending_.end()) {
            return;
          }
          conn = it->second.conn;
          seq = it->second.seq;
          conn->in_flight--;
          pending_.erase(it);
        }
        resolved_.fetch_add(1, std::memory_order_relaxed);
        if (accepted) {
          accepted_.fetch_add(1, std::memory_order_relaxed);
        }
        SendResult(conn, seq,
                   accepted ? SubmitStatus::kAccepted
                            : SubmitStatus::kRejected);
      });
}

void SubmissionGateway::SendResult(const std::shared_ptr<Connection>& conn,
                                   uint64_t seq, SubmitStatus status) {
  VerdictCounter(status)->Add(1);
  conn->link->Send(BytesView(
      PackClientFrame(ClientMsg::kSubmitResult,
                      BytesView(EncodeSubmitResult(seq, status)))));
}

void SubmissionGateway::Broadcast(ClientMsg type, BytesView body) {
  Bytes frame = PackClientFrame(type, body);
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = conns_;
  }
  for (auto& conn : conns) {
    conn->link->Send(BytesView(frame));
  }
}

}  // namespace atom
