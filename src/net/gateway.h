// Client ingress tier: the authenticated submission gateway.
//
// A SubmissionGateway fronts one Round's sharded intake with real sockets,
// turning "users exist only in process" into the deployment shape the
// paper assumes: clients hold registered long-term keys, dial the gateway
// over a SecureLink (the same KEM+AEAD station-to-station handshake the
// server mesh uses — the dialer must use the REGISTERED key to complete
// it, so a connection IS proof of identity), and stream submission frames
// that are verified while later frames are still in flight.
//
// Data path, per inbound kSubmit frame:
//
//   reader thread: decode -> channel checks (round open? id matches the
//     authenticated link? credit left?) -> lock-free push onto the entry
//     group's bounded MPSC ring (Round::StreamSubmit) -> schedule pump
//   pump task (serial per shard, on the shared pool): drain the ring ->
//     pool-verified batch acceptance (Round::PumpStream) -> one
//     kSubmitResult per submission, which also returns its credit
//
// so proof verification of span k overlaps the socket reads producing
// span k+1 — the streaming intake the ROADMAP calls out for sustained
// millions-of-users ingest. Backpressure is explicit at both levels: each
// connection gets a credit window (advertised in kWelcome, one credit per
// in-flight submission, returned by its result), and a full shard ring
// fails the push with a kBackpressure verdict instead of blocking the
// reader or growing without bound.
//
// Round lifecycle: OpenRound announces intake for round r (kRoundOpen to
// every connection); Cutoff closes it, drains every shard through
// verification, and returns — after which Round::TakeEngineRound holds
// the complete batch and the driver ships it (DistributedRoundDriver::
// Submit), immediately reopening the gateway for round r+1 while round r
// mixes. A client that dies mid-stream simply stops producing frames; its
// already-queued submissions verify normally and the round never stalls.
#ifndef SRC_NET_GATEWAY_H_
#define SRC_NET_GATEWAY_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/round.h"
#include "src/net/faults.h"
#include "src/net/link.h"
#include "src/net/registry.h"
#include "src/util/parallel.h"

namespace atom {

// The gateway's link id: above the 32-bit server-id range, so the client,
// server, and driver namespaces can never collide on a SecureLink.
inline constexpr uint64_t kGatewayLinkId = uint64_t{1} << 32;

// Client-facing frames (payload of every post-handshake SecureLink
// record): u8 type || body.
enum class ClientMsg : uint8_t {
  kWelcome = 1,       // gateway -> client, once per connection
  kSubmit = 2,        // client -> gateway: seq + encoded submission
  kSubmitResult = 3,  // gateway -> client: per-submission verdict
  kRoundOpen = 4,     // gateway -> client: round round_id accepts intake
  kRoundCutoff = 5,   // gateway -> client: round round_id closed
};

Bytes PackClientFrame(ClientMsg type, BytesView body);
struct ClientFrame {
  ClientMsg type;
  Bytes body;
};
std::optional<ClientFrame> UnpackClientFrame(BytesView payload);

// Everything a fresh connection needs to build submissions: the credit
// window, the round variant and message layout, each entry group's key,
// the trustee key (trap variant), and whichever round is currently open.
struct GatewayWelcome {
  uint32_t credit = 0;
  uint8_t variant = 0;
  uint32_t plaintext_len = 0;
  uint32_t padded_len = 0;
  uint32_t num_points = 0;
  std::vector<Point> entry_pks;
  std::optional<Point> trustee_pk;
  uint64_t open_round = 0;  // 0 = intake currently closed
};

Bytes EncodeWelcome(const GatewayWelcome& welcome);
std::optional<GatewayWelcome> DecodeWelcome(BytesView bytes);

struct SubmitMsg {
  uint64_t seq = 0;   // client-chosen, echoed by the result
  Bytes submission;   // EncodeNizkSubmission / EncodeTrapSubmission
  // Optional Schnorr signature under the client's REGISTERED key over
  // SubmissionSigMessage(submission). The channel already authenticates
  // the sender; the signature additionally binds the submission BYTES to
  // the registered identity, so a gateway operator cannot substitute a
  // different payload on an honest client's behalf, and shards
  // batch-verify whole drained spans with one MSM (SchnorrVerifyBatch).
  bool has_sig = false;
  SchnorrSignature sig;
};

// Domain-separated bytes a client signs: "atom/submit/v1" || submission.
Bytes SubmissionSigMessage(BytesView submission);

Bytes EncodeSubmit(uint64_t seq, BytesView submission);
Bytes EncodeSubmitSigned(uint64_t seq, BytesView submission,
                         const SchnorrSignature& sig);
std::optional<SubmitMsg> DecodeSubmit(BytesView bytes);

enum class SubmitStatus : uint8_t {
  kAccepted = 0,
  kRejected = 1,      // proof failure, duplicate id, or malformed payload
  kClosed = 2,        // no round open (cutoff-to-open window)
  kBackpressure = 3,  // shard ring full or credit window exceeded
  kForeignId = 4,     // submission id != the authenticated channel's id
};

struct SubmitResultMsg {
  uint64_t seq = 0;
  SubmitStatus status = SubmitStatus::kRejected;
};

Bytes EncodeSubmitResult(uint64_t seq, SubmitStatus status);
std::optional<SubmitResultMsg> DecodeSubmitResult(BytesView bytes);

// kRoundOpen / kRoundCutoff body: just the round id.
Bytes EncodeRoundNotice(uint64_t round_id);
std::optional<uint64_t> DecodeRoundNotice(BytesView bytes);

struct GatewayConfig {
  uint32_t credit_window = 32;  // in-flight submissions per connection
  size_t verify_workers = 1;    // ParallelFor width per pump span
  // Reject kSubmit frames that carry no signature. Off by default so the
  // channel-authenticated deployments keep working; a deployment that
  // wants submissions bound to registered keys (not just the transport)
  // turns it on and clients sign via EncodeSubmitSigned.
  bool require_sigs = false;
  // Sharded admission (GatewayFleet, src/net/reactor.h): when >= 0, only
  // submissions addressed to this entry group are admitted — a client
  // that dials the wrong shard's gateway gets kRejected, so fleet routing
  // mistakes surface instead of silently crossing shards. Both backends
  // honor it; -1 admits every group (the single-gateway deployment).
  int64_t entry_group = -1;
  // ---- Reactor-backend knobs (ignored by thread-per-connection):
  // Event-loop threads. Each owns an epoll set and a share of the
  // connections; loop 0 also owns the listener. A small fixed number
  // serves very many sockets — parallelism for crypto comes from the
  // pool, not from loops.
  size_t reactor_loops = 2;
  // A connection must complete its handshake within this window or it is
  // reaped (slowloris: a dialer holding sockets open with a stalled
  // handshake never pins buffers or a thread).
  int handshake_deadline_ms = 10'000;
  // Reap established connections silent for this long (0 = never): the
  // per-deployment policy knob for idle-session GC.
  int idle_timeout_ms = 0;
  // Hard cap on concurrent connections (0 = bounded only by the fd
  // limit); excess accepts are closed immediately.
  size_t max_connections = 0;
};

// Which ingress implementation fronts the round.
enum class GatewayBackend : uint8_t {
  // One reader thread per client connection (SubmissionGateway below).
  // Simple and fine into the low thousands of sessions; kept as the
  // apples-to-apples baseline behind this flag.
  kThreadPerConnection = 0,
  // Epoll edge-triggered reactor (ReactorGateway, src/net/reactor.h): a
  // small fixed pool of event-loop threads owning non-blocking sockets;
  // scales to hundreds of thousands of sessions per host.
  kReactor = 1,
};

// The gateway surface the rest of the stack programs against: the round
// driver opens/cuts rounds, the directory pushes registry syncs, the
// scenario harness injects faults — none of them care which backend
// serves the sockets.
class ClientGateway {
 public:
  virtual ~ClientGateway() = default;

  virtual bool Listen(uint16_t port = 0) = 0;
  virtual uint16_t port() const = 0;
  virtual void Start() = 0;
  virtual void Stop() = 0;
  virtual const Point& pk() const = 0;
  virtual void OpenRound(uint64_t round_id) = 0;
  virtual void Cutoff() = 0;
  virtual size_t ApplyRegistrySync(const RegistrySyncMsg& sync) = 0;
  virtual void SetFaultPlan(std::shared_ptr<FaultPlan> plan) = 0;
  virtual size_t accepted_count() const = 0;
  virtual size_t resolved_count() const = 0;
  virtual size_t connection_count() const = 0;
};

// Constructs the chosen backend (defined in src/net/reactor.cpp, next to
// the reactor it dispatches to).
std::unique_ptr<ClientGateway> MakeClientGateway(
    GatewayBackend backend, Round* round, ClientRegistry* registry,
    KemKeypair identity, GatewayConfig config = {},
    ThreadPool* pool = nullptr);

class SubmissionGateway : public ClientGateway {
 public:
  // `round` and `registry` must outlive the gateway; `identity` is the
  // gateway's long-term key (clients authenticate it like servers
  // authenticate the driver). The registry is shared, not copied —
  // ApplyRegistrySync and concurrent connection lookups go through its
  // own lock. `pool` backs the per-shard pump lanes (null = the
  // process-wide shared pool).
  SubmissionGateway(Round* round, ClientRegistry* registry,
                    KemKeypair identity, GatewayConfig config = {},
                    ThreadPool* pool = nullptr);
  ~SubmissionGateway() override;

  SubmissionGateway(const SubmissionGateway&) = delete;
  SubmissionGateway& operator=(const SubmissionGateway&) = delete;

  bool Listen(uint16_t port = 0) override;
  uint16_t port() const override { return listener_.port(); }
  void Start() override;
  void Stop() override;

  const Point& pk() const override { return identity_.pk; }

  // Opens intake for `round_id` (nonzero) and announces it to every
  // connection. Called by the driver right after it ships the previous
  // round — r+1's intake fills while r mixes.
  void OpenRound(uint64_t round_id) override;

  // Closes intake, announces the cutoff, and drains every shard's ring
  // through verification. When it returns, everything accepted for the
  // round is in the Round's intake epoch (TakeEngineRound-ready).
  // Submissions racing the cutoff instant may land in the next round's
  // intake instead — the pipelined-intake boundary, not a loss.
  void Cutoff() override;

  // Merges a registry snapshot (see src/net/registry.h) into the live
  // lookup table; newly synced clients can connect immediately.
  size_t ApplyRegistrySync(const RegistrySyncMsg& sync) override;

  // Scenario-harness fault injection (src/net/faults.h): the plan's
  // client-disconnect rate kills connections mid-stream right after a
  // kSubmit frame is read — deterministic gateway-side churn. Set before
  // Start().
  void SetFaultPlan(std::shared_ptr<FaultPlan> plan) override {
    fault_plan_ = std::move(plan);
  }

  // Monitoring: verified-and-accepted / total-resolved counts since
  // construction, and live connections.
  size_t accepted_count() const override;
  size_t resolved_count() const override;
  size_t connection_count() const override;

 private:
  struct Connection {
    std::shared_ptr<SecureLink> link;
    uint64_t client_id = 0;
    Point pk;                // the registered key (cached at handshake)
    uint32_t in_flight = 0;  // guarded by the gateway's mu_
  };
  // One entry-group shard's pump lane: pumps are serialized (the ring's
  // single-consumer contract). Every push schedules a pump — the
  // executor's lock makes the push visible to it, so no submission can
  // be stranded; a pump that finds its span already drained by a
  // predecessor returns immediately (trivial next to verification).
  struct ShardPump {
    explicit ShardPump(ThreadPool* pool) : serial(pool) {}
    SerialExecutor serial;
  };

  void AcceptLoop();
  // Handshake + welcome + read loop for one inbound socket, on its own
  // thread: an untrusted dialer that stalls its handshake must not block
  // acceptance of the clients behind it.
  void ServeConnection(TcpSocket socket, uint64_t reader_id);
  void ReaderLoop(std::shared_ptr<Connection> conn, uint64_t reader_id);
  // Joins reader threads whose connections have ended (called from the
  // accept loop), so client churn never accumulates zombie threads.
  void ReapFinishedReaders();
  void HandleSubmit(const std::shared_ptr<Connection>& conn,
                    SubmitMsg msg);
  void SchedulePump(uint32_t gid);
  void PumpShard(uint32_t gid);
  void SendResult(const std::shared_ptr<Connection>& conn, uint64_t seq,
                  SubmitStatus status);
  void Broadcast(ClientMsg type, BytesView body);

  Round* const round_;
  ClientRegistry* const registry_;
  const KemKeypair identity_;
  const GatewayConfig config_;
  std::shared_ptr<FaultPlan> fault_plan_;  // set before Start()

  std::vector<std::unique_ptr<ShardPump>> pumps_;  // one per entry group

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> threads_;  // the accept loop
  // Connection readers, keyed so a finished reader can be joined and
  // reclaimed while the gateway keeps serving.
  std::map<uint64_t, std::thread> readers_;
  std::vector<uint64_t> finished_readers_;
  uint64_t next_reader_id_ = 1;
  // Queued-but-unresolved submissions: cookie -> (connection, client seq).
  struct PendingSubmit {
    std::shared_ptr<Connection> conn;
    uint64_t seq = 0;
  };
  std::map<uint64_t, PendingSubmit> pending_;
  uint64_t next_cookie_ = 1;
  std::atomic<uint64_t> open_round_{0};
  std::atomic<size_t> accepted_{0};
  std::atomic<size_t> resolved_{0};
  bool stopping_ = false;
  bool accepting_ = false;

  TcpListener listener_;
};

}  // namespace atom

#endif  // SRC_NET_GATEWAY_H_
