#include "src/net/handshake.h"

#include <cstring>
#include <utility>

#include "src/crypto/aead.h"
#include "src/crypto/sha256.h"
#include "src/util/serde.h"

namespace atom {
namespace {

constexpr char kMagic[8] = {'A', 'T', 'O', 'M', 'L', 'N', 'K', '1'};
constexpr std::string_view kConfirmPlaintext = "atom-link-ok";
constexpr size_t kSecretSize = 32;
// KemEncrypt(32-byte secret) = 33-byte encapsulation + 32 + 16-byte tag.
constexpr size_t kEncapSize = kSecretSize + kKemOverhead;

std::array<uint8_t, kAeadNonceSize> CounterNonce(uint64_t counter) {
  std::array<uint8_t, kAeadNonceSize> nonce{};
  for (size_t i = 0; i < 8; i++) {
    nonce[i] = static_cast<uint8_t>(counter >> (8 * i));
  }
  return nonce;
}

Bytes SealRecord(const std::array<uint8_t, 32>& key, uint64_t counter,
                 const std::array<uint8_t, 32>& th, BytesView payload) {
  auto nonce = CounterNonce(counter);
  return AeadSeal(key.data(), nonce.data(), BytesView(th.data(), th.size()),
                  payload);
}

std::optional<Bytes> OpenRecord(const std::array<uint8_t, 32>& key,
                                uint64_t counter,
                                const std::array<uint8_t, 32>& th,
                                BytesView record) {
  auto nonce = CounterNonce(counter);
  return AeadOpen(key.data(), nonce.data(), BytesView(th.data(), th.size()),
                  record);
}

struct SessionKeys {
  std::array<uint8_t, 32> dialer_to_listener;
  std::array<uint8_t, 32> listener_to_dialer;
  std::array<uint8_t, 32> transcript_hash;
};

SessionKeys DeriveSession(BytesView hello, uint64_t listener_id,
                          BytesView c_l, BytesView s_d, BytesView s_l) {
  Sha256 th_hash;
  th_hash.Update(ToBytes("atom/link/v2/th"));
  th_hash.Update(hello);
  std::array<uint8_t, 8> lid{};
  for (size_t i = 0; i < 8; i++) {
    lid[i] = static_cast<uint8_t>(listener_id >> (8 * i));
  }
  th_hash.Update(BytesView(lid.data(), lid.size()));
  th_hash.Update(c_l);
  SessionKeys keys;
  keys.transcript_hash = th_hash.Finish();

  Sha256 secret_hash;
  secret_hash.Update(ToBytes("atom/link/v2/key"));
  secret_hash.Update(BytesView(keys.transcript_hash.data(),
                               keys.transcript_hash.size()));
  secret_hash.Update(s_d);
  secret_hash.Update(s_l);
  std::array<uint8_t, 32> secret = secret_hash.Finish();
  keys.dialer_to_listener = DeriveSubKey(secret, 1);
  keys.listener_to_dialer = DeriveSubKey(secret, 2);
  return keys;
}

bool ConfirmMatches(const std::optional<Bytes>& confirm) {
  return confirm.has_value() &&
         confirm->size() == kConfirmPlaintext.size() &&
         std::memcmp(confirm->data(), kConfirmPlaintext.data(),
                     kConfirmPlaintext.size()) == 0;
}

}  // namespace

Bytes EncodeFrame(BytesView payload) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Raw(payload);
  return w.Take();
}

void FrameAssembler::Feed(BytesView data) {
  if (poisoned_ || data.empty()) {
    return;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<Bytes> FrameAssembler::Next() {
  if (poisoned_ || buf_.size() - pos_ < 4) {
    return std::nullopt;
  }
  const uint8_t* p = buf_.data() + pos_;
  uint32_t len = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16) |
                 (static_cast<uint32_t>(p[3]) << 24);
  if (len > max_payload_) {
    poisoned_ = true;  // hostile length: reject before buffering it
    return std::nullopt;
  }
  if (buf_.size() - pos_ - 4 < len) {
    return std::nullopt;  // frame still in flight
  }
  Bytes payload(buf_.begin() + pos_ + 4, buf_.begin() + pos_ + 4 + len);
  pos_ += 4 + len;
  // Compact once the dead prefix dominates, so a long-lived connection
  // does not grow its buffer by its lifetime traffic.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + pos_);
    pos_ = 0;
  }
  return payload;
}

Bytes RecordChannel::Seal(BytesView payload) {
  return SealRecord(send_key_, send_counter_++, transcript_hash_, payload);
}

std::optional<Bytes> RecordChannel::Open(BytesView record) {
  auto payload =
      OpenRecord(recv_key_, recv_counter_, transcript_hash_, record);
  if (payload) {
    recv_counter_++;
  }
  return payload;
}

Bytes LinkDialerHandshake::Start(uint64_t self_id, const KemKeypair& self_key,
                                 uint64_t peer_id, const Point& peer_pk,
                                 Rng& rng, const FixedBaseTable* peer_table) {
  s_d_ = rng.NextBytes(kSecretSize);
  self_sk_ = self_key.sk;
  peer_id_ = peer_id;
  ByteWriter hello;
  hello.Raw(BytesView(reinterpret_cast<const uint8_t*>(kMagic),
                      sizeof(kMagic)));
  hello.U64(self_id);
  hello.U64(peer_id);
  hello.Raw(BytesView(peer_table != nullptr
                          ? KemEncrypt(*peer_table, BytesView(s_d_), rng)
                          : KemEncrypt(peer_pk, BytesView(s_d_), rng)));
  hello_ = hello.Take();
  started_ = true;
  return hello_;
}

std::optional<Bytes> LinkDialerHandshake::OnResponse(BytesView response) {
  if (!started_ || done_) {
    return std::nullopt;
  }
  ByteReader r{response};
  auto listener_id = r.U64();
  auto c_l = r.Raw(kEncapSize);
  auto confirm_l = r.Raw(kConfirmPlaintext.size() + kAeadTagSize);
  if (!listener_id || *listener_id != peer_id_ || !c_l || !confirm_l ||
      !r.Done()) {
    return std::nullopt;
  }
  // Recovering the listener's contribution takes OUR long-term secret;
  // computing the session keys at all takes theirs.
  auto s_l = KemDecrypt(self_sk_, BytesView(*c_l));
  if (!s_l || s_l->size() != kSecretSize) {
    return std::nullopt;
  }
  SessionKeys keys = DeriveSession(BytesView(hello_), *listener_id,
                                   BytesView(*c_l), BytesView(s_d_),
                                   BytesView(*s_l));
  auto confirm = OpenRecord(keys.listener_to_dialer, 0, keys.transcript_hash,
                            BytesView(*confirm_l));
  if (!ConfirmMatches(confirm)) {
    return std::nullopt;  // listener failed to prove possession of its key
  }
  channel_ = RecordChannel(keys.dialer_to_listener, keys.listener_to_dialer,
                           keys.transcript_hash);
  done_ = true;
  return SealRecord(keys.dialer_to_listener, 0, keys.transcript_hash,
                    BytesView(ToBytes(kConfirmPlaintext)));
}

RecordChannel LinkDialerHandshake::TakeChannel() {
  return std::exchange(channel_, RecordChannel());
}

std::optional<Bytes> LinkListenerHandshake::OnHello(
    BytesView hello, uint64_t self_id, const KemKeypair& self_key,
    const PkLookup& peer_pk_lookup, Rng& rng) {
  if (responded_) {
    return std::nullopt;
  }
  ByteReader r{hello};
  auto magic = r.Raw(sizeof(kMagic));
  auto dialer_id = r.U64();
  auto target_id = r.U64();
  auto c_d = r.Raw(kEncapSize);
  if (!magic || std::memcmp(magic->data(), kMagic, sizeof(kMagic)) != 0 ||
      !dialer_id || !target_id || *target_id != self_id || !c_d ||
      !r.Done()) {
    return std::nullopt;
  }
  auto dialer_pk = peer_pk_lookup(*dialer_id);
  if (!dialer_pk) {
    return std::nullopt;  // peer not in the roster
  }
  auto s_d = KemDecrypt(self_key.sk, BytesView(*c_d));
  if (!s_d || s_d->size() != kSecretSize) {
    return std::nullopt;
  }
  Bytes s_l = rng.NextBytes(kSecretSize);
  Bytes c_l = KemEncrypt(*dialer_pk, BytesView(s_l), rng);
  SessionKeys keys = DeriveSession(hello, self_id, BytesView(c_l),
                                   BytesView(*s_d), BytesView(s_l));
  dialer_to_listener_ = keys.dialer_to_listener;
  listener_to_dialer_ = keys.listener_to_dialer;
  transcript_hash_ = keys.transcript_hash;
  peer_id_ = *dialer_id;
  responded_ = true;
  ByteWriter resp;
  resp.U64(self_id);
  resp.Raw(BytesView(c_l));
  resp.Raw(BytesView(SealRecord(listener_to_dialer_, 0, transcript_hash_,
                                BytesView(ToBytes(kConfirmPlaintext)))));
  return resp.Take();
}

bool LinkListenerHandshake::OnConfirm(BytesView confirm) {
  if (!responded_ || done_) {
    return false;
  }
  auto opened =
      OpenRecord(dialer_to_listener_, 0, transcript_hash_, confirm);
  if (!ConfirmMatches(opened)) {
    return false;  // dialer failed to prove possession of its key
  }
  done_ = true;
  return true;
}

RecordChannel LinkListenerHandshake::TakeChannel() {
  RecordChannel channel(listener_to_dialer_, dialer_to_listener_,
                        transcript_hash_);
  listener_to_dialer_ = {};
  dialer_to_listener_ = {};
  return channel;
}

}  // namespace atom
