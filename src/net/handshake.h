// Resumable building blocks of the SecureLink wire protocol
// (src/net/link.h), factored out so the same handshake and record layer
// drive both transports:
//
//   - the blocking SecureLink used by the server mesh (Dial/Accept wrap
//     these steps around blocking socket reads), and
//   - the non-blocking reactor gateway (src/net/reactor.h), where every
//     step consumes bytes already buffered for a connection and produces
//     bytes to queue for write — an event loop never blocks in a
//     handshake, and the expensive KEM steps can run as pool tasks
//     against these objects while the loop keeps serving other sockets.
//
// The pieces compose in wire order:
//
//   FrameAssembler        incremental "u32 LE length || payload" framing
//   LinkDialerHandshake   hello -> (response) -> confirm     (client side)
//   LinkListenerHandshake (hello) -> response -> (confirm)   (server side)
//   RecordChannel         post-handshake AEAD records (counter nonces,
//                         transcript hash as associated data)
//
// Byte-for-byte identical to the protocol documented in link.h — the
// blocking SecureLink is implemented on top of exactly these objects, so
// there is one handshake implementation, not two.
#ifndef SRC_NET_HANDSHAKE_H_
#define SRC_NET_HANDSHAKE_H_

#include <array>
#include <functional>
#include <optional>

#include "src/crypto/kem.h"
#include "src/util/rng.h"

namespace atom {

// Prepends the u32 LE length prefix (the caller bounds payload size; this
// is the encode half of WriteFrame for transports that queue bytes
// instead of writing a socket directly).
Bytes EncodeFrame(BytesView payload);

// Incremental frame extraction over an arbitrary byte stream: Feed
// whatever recv produced, then pop complete payloads with Next until it
// returns nullopt (more bytes needed). A declared length above the cap
// poisons the assembler — the caller must kill the connection; nothing
// was allocated for the oversize frame.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload) : max_payload_(max_payload) {}

  // Tightens/loosens the cap between protocol phases (handshake frames
  // are small; records are not). Applies to frames not yet popped.
  void set_max_payload(size_t max_payload) { max_payload_ = max_payload; }

  void Feed(BytesView data);
  std::optional<Bytes> Next();

  bool poisoned() const { return poisoned_; }
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  bool poisoned_ = false;
  Bytes buf_;
  size_t pos_ = 0;  // consumed prefix; compacted once it dominates
};

// Post-handshake record layer: seal/open with per-direction counter
// nonces (counter 0 was the handshake confirm) and the transcript hash as
// associated data. Not internally locked — a transport serializes its own
// use (SecureLink under its send mutex / single reader; the reactor on
// the connection's owning event loop).
class RecordChannel {
 public:
  RecordChannel() = default;
  RecordChannel(const std::array<uint8_t, 32>& send_key,
                const std::array<uint8_t, 32>& recv_key,
                const std::array<uint8_t, 32>& transcript_hash)
      : send_key_(send_key),
        recv_key_(recv_key),
        transcript_hash_(transcript_hash) {}

  // Seals one record and advances the send counter.
  Bytes Seal(BytesView payload);

  // Opens the next record; nullopt = forged, replayed, reordered, or
  // corrupted (the transport must kill the connection — resynchronizing
  // silently would hide an attack). Advances the recv counter on success.
  std::optional<Bytes> Open(BytesView record);

  const std::array<uint8_t, 32>& transcript_hash() const {
    return transcript_hash_;
  }

 private:
  std::array<uint8_t, 32> send_key_{};
  std::array<uint8_t, 32> recv_key_{};
  std::array<uint8_t, 32> transcript_hash_{};
  uint64_t send_counter_ = 1;
  uint64_t recv_counter_ = 1;
};

// Dialer (client) half of the station-to-station handshake. Step order:
// Start -> write the hello frame; feed the listener's response frame to
// OnResponse -> write the returned confirm frame; TakeChannel.
class LinkDialerHandshake {
 public:
  // Builds the hello frame payload. `peer_table` optionally accelerates
  // the encapsulation to the listener's key — worth it for callers that
  // dial the same gateway key many times (client fleets, load
  // generators); pass nullptr for the one-shot generic path.
  Bytes Start(uint64_t self_id, const KemKeypair& self_key, uint64_t peer_id,
              const Point& peer_pk, Rng& rng,
              const FixedBaseTable* peer_table = nullptr);

  // Consumes the listener's response frame payload. Returns the confirm
  // frame payload to send, or nullopt when the listener failed to prove
  // possession of its registered key (kill the connection).
  std::optional<Bytes> OnResponse(BytesView response);

  bool done() const { return done_; }

  // Valid exactly once, after OnResponse succeeded.
  RecordChannel TakeChannel();

 private:
  Bytes hello_;
  Bytes s_d_;
  Scalar self_sk_;
  uint64_t peer_id_ = 0;
  bool started_ = false;
  bool done_ = false;
  RecordChannel channel_;
};

// Listener (server) half. Step order: feed the dialer's hello to OnHello
// -> write the returned response frame; feed the dialer's confirm to
// OnConfirm; TakeChannel.
class LinkListenerHandshake {
 public:
  using PkLookup = std::function<std::optional<Point>(uint64_t)>;

  // Consumes the hello frame payload. Returns the response frame payload,
  // or nullopt on a malformed hello, a wrong target id, or a dialer id
  // the lookup does not know (kill the connection). This is the expensive
  // step (one KEM decrypt + one KEM encrypt) — the reactor runs it as a
  // pool task so it never blocks an event loop.
  std::optional<Bytes> OnHello(BytesView hello, uint64_t self_id,
                               const KemKeypair& self_key,
                               const PkLookup& peer_pk_lookup, Rng& rng);

  // Consumes the confirm frame payload; true completes the handshake
  // (cheap: one small AEAD open — fine on an event loop).
  bool OnConfirm(BytesView confirm);

  uint64_t peer_id() const { return peer_id_; }
  bool done() const { return done_; }

  // Valid exactly once, after OnConfirm returned true.
  RecordChannel TakeChannel();

 private:
  uint64_t peer_id_ = 0;
  bool responded_ = false;
  bool done_ = false;
  std::array<uint8_t, 32> dialer_to_listener_{};
  std::array<uint8_t, 32> listener_to_dialer_{};
  std::array<uint8_t, 32> transcript_hash_{};
};

}  // namespace atom

#endif  // SRC_NET_HANDSHAKE_H_
