#include "src/net/link.h"

#include <utility>

#include "src/crypto/aead.h"

namespace atom {
namespace {

// A peer must complete its half of the handshake within this window, so a
// connected-but-silent socket cannot stall an accept loop. Cleared once
// the link is established (records may legitimately be minutes apart).
constexpr int kHandshakeRecvTimeoutMillis = 10'000;

}  // namespace

bool WriteFrame(TcpSocket& socket, BytesView payload) {
  if (payload.size() > kMaxFramePayload + kAeadTagSize) {
    return false;
  }
  return socket.SendAll(BytesView(EncodeFrame(payload)));
}

std::optional<Bytes> ReadFrame(TcpSocket& socket, size_t max_payload) {
  uint8_t len_bytes[4];
  if (!socket.RecvAll(len_bytes, sizeof(len_bytes))) {
    return std::nullopt;
  }
  uint32_t len = static_cast<uint32_t>(len_bytes[0]) |
                 (static_cast<uint32_t>(len_bytes[1]) << 8) |
                 (static_cast<uint32_t>(len_bytes[2]) << 16) |
                 (static_cast<uint32_t>(len_bytes[3]) << 24);
  if (len > max_payload) {
    return std::nullopt;  // oversize frame: reject before allocating
  }
  Bytes payload(len);
  if (len > 0 && !socket.RecvAll(payload.data(), len)) {
    return std::nullopt;
  }
  return payload;
}

SecureLink::SecureLink(TcpSocket socket, uint64_t peer_id,
                       RecordChannel channel)
    : socket_(std::move(socket)),
      peer_id_(peer_id),
      channel_(std::move(channel)) {}

std::unique_ptr<SecureLink> SecureLink::Dial(TcpSocket socket,
                                             uint64_t self_id,
                                             const KemKeypair& self_key,
                                             uint64_t peer_id,
                                             const Point& peer_pk, Rng& rng) {
  if (!socket.valid()) {
    return nullptr;
  }
  socket.SetRecvTimeout(kHandshakeRecvTimeoutMillis);
  LinkDialerHandshake handshake;
  Bytes hello = handshake.Start(self_id, self_key, peer_id, peer_pk, rng);
  if (!WriteFrame(socket, BytesView(hello))) {
    return nullptr;
  }
  auto resp = ReadFrame(socket, kMaxHandshakeFrame);
  if (!resp) {
    return nullptr;
  }
  auto confirm = handshake.OnResponse(BytesView(*resp));
  if (!confirm || !WriteFrame(socket, BytesView(*confirm))) {
    return nullptr;
  }
  socket.SetRecvTimeout(0);
  return std::unique_ptr<SecureLink>(new SecureLink(
      std::move(socket), peer_id, handshake.TakeChannel()));
}

std::unique_ptr<SecureLink> SecureLink::Accept(
    TcpSocket socket, uint64_t self_id, const KemKeypair& self_key,
    const std::function<std::optional<Point>(uint64_t)>& peer_pk_lookup,
    Rng& rng) {
  if (!socket.valid()) {
    return nullptr;
  }
  socket.SetRecvTimeout(kHandshakeRecvTimeoutMillis);
  auto hello = ReadFrame(socket, kMaxHandshakeFrame);
  if (!hello) {
    return nullptr;
  }
  LinkListenerHandshake handshake;
  auto resp =
      handshake.OnHello(BytesView(*hello), self_id, self_key, peer_pk_lookup,
                        rng);
  if (!resp || !WriteFrame(socket, BytesView(*resp))) {
    return nullptr;
  }
  auto confirm_frame = ReadFrame(socket, kMaxHandshakeFrame);
  if (!confirm_frame || !handshake.OnConfirm(BytesView(*confirm_frame))) {
    return nullptr;
  }
  socket.SetRecvTimeout(0);
  return std::unique_ptr<SecureLink>(new SecureLink(
      std::move(socket), handshake.peer_id(), handshake.TakeChannel()));
}

bool SecureLink::Send(BytesView payload) {
  return SendMutated(payload, nullptr);
}

std::optional<Bytes> SecureLink::Recv() {
  auto record = ReadFrame(socket_, kMaxFramePayload + kAeadTagSize);
  if (!record) {
    MarkDead();
    return std::nullopt;
  }
  auto payload = channel_.Open(BytesView(*record));
  if (!payload) {
    // Forged, replayed, reordered, or corrupted record: kill the link so
    // the failure is visible instead of silently resynchronizing.
    MarkDead();
    Shutdown();
    return std::nullopt;
  }
  return payload;
}

bool SecureLink::alive() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return !dead_;
}

void SecureLink::MarkDead() {
  std::lock_guard<std::mutex> lock(state_mu_);
  dead_ = true;
}

void SecureLink::Shutdown() {
  MarkDead();
  socket_.ShutdownBoth();
}

void SecureLink::SetSendTimeout(int millis) {
  std::lock_guard<std::mutex> lock(send_mu_);
  socket_.SetSendTimeout(millis);
}

bool SecureLink::SendRawFrameForTest(BytesView frame) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return WriteFrame(socket_, frame);
}

bool SecureLink::SendMutated(BytesView payload,
                             const std::function<void(Bytes&)>& mutate) {
  if (payload.size() > kMaxFramePayload) {
    return false;
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!alive()) {
    return false;
  }
  Bytes record = channel_.Seal(payload);  // the counter advances either way
  if (mutate) {
    mutate(record);
  }
  // Scatter-gather the u32 length header and the sealed record straight
  // from the seal buffer — no EncodeFrame pack-copy on the record path.
  uint8_t len_bytes[4] = {
      static_cast<uint8_t>(record.size()),
      static_cast<uint8_t>(record.size() >> 8),
      static_cast<uint8_t>(record.size() >> 16),
      static_cast<uint8_t>(record.size() >> 24),
  };
  BytesView parts[2] = {BytesView(len_bytes, sizeof(len_bytes)),
                        BytesView(record)};
  if (record.size() > kMaxFramePayload + kAeadTagSize ||
      !socket_.SendAllVec(parts, 2)) {
    // Shut the socket too (not just the flag): a reader blocked in Recv
    // on a half-open connection must unblock, or joining it would hang.
    MarkDead();
    socket_.ShutdownBoth();
    return false;
  }
  return true;
}

}  // namespace atom
