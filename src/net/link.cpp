#include "src/net/link.h"

#include <cstring>

#include "src/crypto/aead.h"
#include "src/crypto/sha256.h"
#include "src/util/serde.h"

namespace atom {
namespace {

constexpr char kMagic[8] = {'A', 'T', 'O', 'M', 'L', 'N', 'K', '1'};
// A peer must complete its half of the handshake within this window, so a
// connected-but-silent socket cannot stall an accept loop. Cleared once
// the link is established (records may legitimately be minutes apart).
constexpr int kHandshakeRecvTimeoutMillis = 10'000;
constexpr std::string_view kConfirmPlaintext = "atom-link-ok";
constexpr size_t kSecretSize = 32;
// KemEncrypt(32-byte secret) = 33-byte encapsulation + 32 + 16-byte tag.
constexpr size_t kEncapSize = kSecretSize + kKemOverhead;

std::array<uint8_t, kAeadNonceSize> CounterNonce(uint64_t counter) {
  std::array<uint8_t, kAeadNonceSize> nonce{};
  for (size_t i = 0; i < 8; i++) {
    nonce[i] = static_cast<uint8_t>(counter >> (8 * i));
  }
  return nonce;
}

Bytes SealRecord(const std::array<uint8_t, 32>& key, uint64_t counter,
                 const std::array<uint8_t, 32>& th, BytesView payload) {
  auto nonce = CounterNonce(counter);
  return AeadSeal(key.data(), nonce.data(), BytesView(th.data(), th.size()),
                  payload);
}

std::optional<Bytes> OpenRecord(const std::array<uint8_t, 32>& key,
                                uint64_t counter,
                                const std::array<uint8_t, 32>& th,
                                BytesView record) {
  auto nonce = CounterNonce(counter);
  return AeadOpen(key.data(), nonce.data(), BytesView(th.data(), th.size()),
                  record);
}

struct SessionKeys {
  std::array<uint8_t, 32> dialer_to_listener;
  std::array<uint8_t, 32> listener_to_dialer;
  std::array<uint8_t, 32> transcript_hash;
};

SessionKeys DeriveSession(BytesView hello, uint64_t listener_id,
                          BytesView c_l, BytesView s_d, BytesView s_l) {
  Sha256 th_hash;
  th_hash.Update(ToBytes("atom/link/v2/th"));
  th_hash.Update(hello);
  std::array<uint8_t, 8> lid{};
  for (size_t i = 0; i < 8; i++) {
    lid[i] = static_cast<uint8_t>(listener_id >> (8 * i));
  }
  th_hash.Update(BytesView(lid.data(), lid.size()));
  th_hash.Update(c_l);
  SessionKeys keys;
  keys.transcript_hash = th_hash.Finish();

  Sha256 secret_hash;
  secret_hash.Update(ToBytes("atom/link/v2/key"));
  secret_hash.Update(BytesView(keys.transcript_hash.data(),
                               keys.transcript_hash.size()));
  secret_hash.Update(s_d);
  secret_hash.Update(s_l);
  std::array<uint8_t, 32> secret = secret_hash.Finish();
  keys.dialer_to_listener = DeriveSubKey(secret, 1);
  keys.listener_to_dialer = DeriveSubKey(secret, 2);
  return keys;
}

}  // namespace

bool WriteFrame(TcpSocket& socket, BytesView payload) {
  if (payload.size() > kMaxFramePayload + kAeadTagSize) {
    return false;
  }
  ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Raw(payload);
  return socket.SendAll(BytesView(w.bytes()));
}

std::optional<Bytes> ReadFrame(TcpSocket& socket, size_t max_payload) {
  uint8_t len_bytes[4];
  if (!socket.RecvAll(len_bytes, sizeof(len_bytes))) {
    return std::nullopt;
  }
  uint32_t len = static_cast<uint32_t>(len_bytes[0]) |
                 (static_cast<uint32_t>(len_bytes[1]) << 8) |
                 (static_cast<uint32_t>(len_bytes[2]) << 16) |
                 (static_cast<uint32_t>(len_bytes[3]) << 24);
  if (len > max_payload) {
    return std::nullopt;  // oversize frame: reject before allocating
  }
  Bytes payload(len);
  if (len > 0 && !socket.RecvAll(payload.data(), len)) {
    return std::nullopt;
  }
  return payload;
}

SecureLink::SecureLink(TcpSocket socket, uint64_t peer_id,
                       const std::array<uint8_t, 32>& send_key,
                       const std::array<uint8_t, 32>& recv_key,
                       const std::array<uint8_t, 32>& transcript_hash)
    : socket_(std::move(socket)),
      peer_id_(peer_id),
      send_key_(send_key),
      recv_key_(recv_key),
      transcript_hash_(transcript_hash) {}

std::unique_ptr<SecureLink> SecureLink::Dial(TcpSocket socket,
                                             uint64_t self_id,
                                             const KemKeypair& self_key,
                                             uint64_t peer_id,
                                             const Point& peer_pk, Rng& rng) {
  if (!socket.valid()) {
    return nullptr;
  }
  socket.SetRecvTimeout(kHandshakeRecvTimeoutMillis);
  Bytes s_d = rng.NextBytes(kSecretSize);
  ByteWriter hello;
  hello.Raw(BytesView(reinterpret_cast<const uint8_t*>(kMagic),
                      sizeof(kMagic)));
  hello.U64(self_id);
  hello.U64(peer_id);
  hello.Raw(BytesView(KemEncrypt(peer_pk, BytesView(s_d), rng)));
  if (!WriteFrame(socket, BytesView(hello.bytes()))) {
    return nullptr;
  }

  auto resp = ReadFrame(socket, kMaxHandshakeFrame);
  if (!resp) {
    return nullptr;
  }
  ByteReader r{BytesView(*resp)};
  auto listener_id = r.U64();
  auto c_l = r.Raw(kEncapSize);
  auto confirm_l = r.Raw(kConfirmPlaintext.size() + kAeadTagSize);
  if (!listener_id || *listener_id != peer_id || !c_l || !confirm_l ||
      !r.Done()) {
    return nullptr;
  }
  // Recovering the listener's contribution takes OUR long-term secret;
  // computing the session keys at all takes theirs.
  auto s_l = KemDecrypt(self_key.sk, BytesView(*c_l));
  if (!s_l || s_l->size() != kSecretSize) {
    return nullptr;
  }
  SessionKeys keys = DeriveSession(BytesView(hello.bytes()), *listener_id,
                                   BytesView(*c_l), BytesView(s_d),
                                   BytesView(*s_l));
  auto confirm = OpenRecord(keys.listener_to_dialer, 0, keys.transcript_hash,
                            BytesView(*confirm_l));
  if (!confirm || BytesView(*confirm).size() != kConfirmPlaintext.size() ||
      std::memcmp(confirm->data(), kConfirmPlaintext.data(),
                  kConfirmPlaintext.size()) != 0) {
    return nullptr;  // listener failed to prove possession of its key
  }
  Bytes confirm_d =
      SealRecord(keys.dialer_to_listener, 0, keys.transcript_hash,
                 BytesView(ToBytes(kConfirmPlaintext)));
  if (!WriteFrame(socket, BytesView(confirm_d))) {
    return nullptr;
  }
  socket.SetRecvTimeout(0);
  return std::unique_ptr<SecureLink>(
      new SecureLink(std::move(socket), peer_id, keys.dialer_to_listener,
                     keys.listener_to_dialer, keys.transcript_hash));
}

std::unique_ptr<SecureLink> SecureLink::Accept(
    TcpSocket socket, uint64_t self_id, const KemKeypair& self_key,
    const std::function<std::optional<Point>(uint64_t)>& peer_pk_lookup,
    Rng& rng) {
  if (!socket.valid()) {
    return nullptr;
  }
  socket.SetRecvTimeout(kHandshakeRecvTimeoutMillis);
  auto hello = ReadFrame(socket, kMaxHandshakeFrame);
  if (!hello) {
    return nullptr;
  }
  ByteReader r{BytesView(*hello)};
  auto magic = r.Raw(sizeof(kMagic));
  auto dialer_id = r.U64();
  auto target_id = r.U64();
  auto c_d = r.Raw(kEncapSize);
  if (!magic || std::memcmp(magic->data(), kMagic, sizeof(kMagic)) != 0 ||
      !dialer_id || !target_id || *target_id != self_id || !c_d ||
      !r.Done()) {
    return nullptr;
  }
  auto dialer_pk = peer_pk_lookup(*dialer_id);
  if (!dialer_pk) {
    return nullptr;  // peer not in the roster
  }
  auto s_d = KemDecrypt(self_key.sk, BytesView(*c_d));
  if (!s_d || s_d->size() != kSecretSize) {
    return nullptr;
  }
  Bytes s_l = rng.NextBytes(kSecretSize);
  Bytes c_l = KemEncrypt(*dialer_pk, BytesView(s_l), rng);
  SessionKeys keys = DeriveSession(BytesView(*hello), self_id, BytesView(c_l),
                                   BytesView(*s_d), BytesView(s_l));
  ByteWriter resp;
  resp.U64(self_id);
  resp.Raw(BytesView(c_l));
  resp.Raw(BytesView(SealRecord(keys.listener_to_dialer, 0,
                                keys.transcript_hash,
                                BytesView(ToBytes(kConfirmPlaintext)))));
  if (!WriteFrame(socket, BytesView(resp.bytes()))) {
    return nullptr;
  }
  auto confirm_frame = ReadFrame(socket, kMaxHandshakeFrame);
  if (!confirm_frame) {
    return nullptr;
  }
  auto confirm = OpenRecord(keys.dialer_to_listener, 0, keys.transcript_hash,
                            BytesView(*confirm_frame));
  if (!confirm || BytesView(*confirm).size() != kConfirmPlaintext.size() ||
      std::memcmp(confirm->data(), kConfirmPlaintext.data(),
                  kConfirmPlaintext.size()) != 0) {
    return nullptr;  // dialer failed to prove possession of its key
  }
  socket.SetRecvTimeout(0);
  return std::unique_ptr<SecureLink>(
      new SecureLink(std::move(socket), *dialer_id, keys.listener_to_dialer,
                     keys.dialer_to_listener, keys.transcript_hash));
}

bool SecureLink::Send(BytesView payload) {
  if (payload.size() > kMaxFramePayload) {
    return false;
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!alive()) {
    return false;
  }
  Bytes record =
      SealRecord(send_key_, send_counter_, transcript_hash_, payload);
  send_counter_++;
  if (!WriteFrame(socket_, BytesView(record))) {
    // Shut the socket too (not just the flag): a reader blocked in Recv
    // on a half-open connection must unblock, or joining it would hang.
    MarkDead();
    socket_.ShutdownBoth();
    return false;
  }
  return true;
}

std::optional<Bytes> SecureLink::Recv() {
  auto record = ReadFrame(socket_, kMaxFramePayload + kAeadTagSize);
  if (!record) {
    MarkDead();
    return std::nullopt;
  }
  auto payload = OpenRecord(recv_key_, recv_counter_, transcript_hash_,
                            BytesView(*record));
  if (!payload) {
    // Forged, replayed, reordered, or corrupted record: kill the link so
    // the failure is visible instead of silently resynchronizing.
    MarkDead();
    Shutdown();
    return std::nullopt;
  }
  recv_counter_++;
  return payload;
}

bool SecureLink::alive() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return !dead_;
}

void SecureLink::MarkDead() {
  std::lock_guard<std::mutex> lock(state_mu_);
  dead_ = true;
}

void SecureLink::Shutdown() {
  MarkDead();
  socket_.ShutdownBoth();
}

void SecureLink::SetSendTimeout(int millis) {
  std::lock_guard<std::mutex> lock(send_mu_);
  socket_.SetSendTimeout(millis);
}

bool SecureLink::SendRawFrameForTest(BytesView frame) {
  std::lock_guard<std::mutex> lock(send_mu_);
  return WriteFrame(socket_, frame);
}

bool SecureLink::SendMutated(BytesView payload,
                             const std::function<void(Bytes&)>& mutate) {
  if (payload.size() > kMaxFramePayload) {
    return false;
  }
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!alive()) {
    return false;
  }
  Bytes record =
      SealRecord(send_key_, send_counter_, transcript_hash_, payload);
  send_counter_++;
  if (mutate) {
    mutate(record);
  }
  if (!WriteFrame(socket_, BytesView(record))) {
    MarkDead();
    socket_.ShutdownBoth();
    return false;
  }
  return true;
}

}  // namespace atom
