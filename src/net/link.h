// Authenticated encrypted point-to-point links between Atom servers, with
// no external TLS dependency: everything is built from the in-repo KEM
// (ElGamal encapsulation + ChaCha20-Poly1305, src/crypto/kem.h) and AEAD
// (src/crypto/aead.h).
//
// Wire layout. Every message is a length-prefixed frame:
//
//    u32 LE payload length || payload          (length <= frame cap)
//
// The two handshake frames are plaintext; every frame after the handshake
// is an AEAD record sealed under a per-direction session key with a
// counter nonce, with the transcript hash as associated data.
//
// Handshake (station-to-station style, keyed by each server's long-term
// key; SKEME/Noise-KK family — mutual authentication comes from each side
// having to use its long-term secret to recover the other's key
// contribution, plus explicit key confirmation both ways):
//
//   dialer   -> listener : magic || dialer id || listener id ||
//                          c_d = KemEncrypt(pk_listener, s_d)
//   listener -> dialer   : listener id || c_l = KemEncrypt(pk_dialer, s_l)
//                          || confirm_l
//   dialer   -> listener : confirm_d
//
// with s_d, s_l fresh 32-byte secrets, th = H(transcript), session secret
// = H(th || s_d || s_l), directional keys key-separated from it, and
// confirm_x = AEAD(key_x, nonce 0, aad=th, "atom-link-ok"). The handshake
// steps and the record layer live in src/net/handshake.h as resumable
// objects (this blocking SecureLink and the non-blocking reactor gateway
// share one implementation of both). An attacker
// without a long-term secret key cannot compute either direction's key, so
// a completed handshake authenticates both endpoints against the roster's
// registered public keys. (No forward secrecy: compromise of a long-term
// key retroactively opens recorded sessions — see the threat notes in
// docs/architecture.md.)
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>

#include "src/crypto/kem.h"
#include "src/net/handshake.h"
#include "src/net/socket.h"
#include "src/util/rng.h"

namespace atom {

// Cap on one frame's payload (64 MiB) — a NodeMsg carrying a large group
// batch fits comfortably; anything bigger is a malformed or hostile peer.
inline constexpr size_t kMaxFramePayload = size_t{1} << 26;
// Handshake frames are small; a stricter cap rejects junk early.
inline constexpr size_t kMaxHandshakeFrame = 4096;

// Plaintext framing helpers (used by the handshake and, via SecureLink,
// by every record). ReadFrame rejects declared lengths above `max_payload`
// without allocating; a short read (peer died mid-frame) is nullopt.
bool WriteFrame(TcpSocket& socket, BytesView payload);
std::optional<Bytes> ReadFrame(TcpSocket& socket, size_t max_payload);

// One authenticated encrypted connection. Send is thread-safe; Recv must
// be called from a single reader thread. Not movable (owned via
// unique_ptr by the mesh's link table).
//
// Endpoint ids are 64-bit: server ids (and the driver's id 0) live in the
// low 32 bits, while the client ingress tier (src/net/gateway.h) hands
// out the full space — client ids are u64, and the gateway's own link id
// sits above the server range so the namespaces cannot collide.
class SecureLink {
 public:
  // Client side of the handshake: we know exactly who we are dialing and
  // which long-term key they must hold. nullptr on any failure.
  static std::unique_ptr<SecureLink> Dial(TcpSocket socket, uint64_t self_id,
                                          const KemKeypair& self_key,
                                          uint64_t peer_id,
                                          const Point& peer_pk, Rng& rng);

  // Server side: the hello names the dialer; `peer_pk_lookup` maps its id
  // to the registered long-term key (nullopt = unknown peer, reject).
  static std::unique_ptr<SecureLink> Accept(
      TcpSocket socket, uint64_t self_id, const KemKeypair& self_key,
      const std::function<std::optional<Point>(uint64_t)>& peer_pk_lookup,
      Rng& rng);

  uint64_t peer_id() const { return peer_id_; }

  // Seals and sends one record. False once the link is dead.
  bool Send(BytesView payload);

  // Blocks for the next record; nullopt on EOF, a malformed/oversize
  // frame, or authentication failure — all of which kill the link.
  std::optional<Bytes> Recv();

  bool alive() const;

  // Unblocks a concurrent Recv/Send; the link is dead afterwards.
  void Shutdown();

  // Bounds every subsequent Send (0 = no bound): a peer that stops
  // reading fails the write after `millis` and kills the link, instead of
  // blocking the sender on a full kernel buffer forever. Client-facing
  // gateways set this; the server mesh trusts its rostered peers.
  void SetSendTimeout(int millis);

  // Test hook: emits a raw frame that bypasses sealing, so the peer's
  // record authentication must reject it.
  bool SendRawFrameForTest(BytesView frame);

  // Fault injection (src/net/faults.h): seals the payload normally, then
  // lets `mutate` damage the sealed record before it hits the wire — the
  // peer's AEAD must reject it and kill the link, which is exactly the
  // on-the-wire corruption failure mode the scenario harness exercises.
  // The send counter advances as usual (the record WAS produced).
  bool SendMutated(BytesView payload,
                   const std::function<void(Bytes&)>& mutate);

 private:
  SecureLink(TcpSocket socket, uint64_t peer_id, RecordChannel channel);

  void MarkDead();

  TcpSocket socket_;
  uint64_t peer_id_;
  // The record layer (src/net/handshake.h). Seal runs under send_mu_,
  // Open on the single reader thread; the two touch disjoint counters.
  RecordChannel channel_;
  std::mutex send_mu_;
  mutable std::mutex state_mu_;
  bool dead_ = false;
};

}  // namespace atom

#endif  // SRC_NET_LINK_H_
