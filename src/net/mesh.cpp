#include "src/net/mesh.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "src/core/wire.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace atom {
namespace {

NodeMsg TransportAbort(uint32_t gid, std::string reason) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kAbort;
  msg.gid = gid;
  msg.abort_reason = std::move(reason);
  return msg;
}

// Sender-lane drains run above every engine weight: a sealed frame that
// waits behind queued mixing work delays the whole downstream group,
// while the mixing work only delays this server.
constexpr int64_t kTransportDrainWeight = int64_t{1} << 40;

}  // namespace

uint64_t MeshTransportStats::TotalBytes() const {
  uint64_t n = 0;
  for (const auto& [id, s] : per_peer) {
    n += s.bytes_sent;
  }
  return n;
}

uint64_t MeshTransportStats::TotalFrames() const {
  uint64_t n = 0;
  for (const auto& [id, s] : per_peer) {
    n += s.frames_sent;
  }
  return n;
}

uint64_t MeshTransportStats::TotalBundles() const {
  uint64_t n = 0;
  for (const auto& [id, s] : per_peer) {
    n += s.bundles_sent;
  }
  return n;
}

uint64_t MeshTransportStats::TotalEnvelopesBundled() const {
  uint64_t n = 0;
  for (const auto& [id, s] : per_peer) {
    n += s.envelopes_bundled;
  }
  return n;
}

size_t MeshTransportStats::QueueDepthPeak() const {
  size_t n = 0;
  for (const auto& [id, s] : per_peer) {
    n = std::max(n, s.queue_depth_peak);
  }
  return n;
}

double MeshTransportStats::BundleFill() const {
  uint64_t bundles = TotalBundles();
  if (bundles == 0) {
    return 0.0;
  }
  return static_cast<double>(TotalEnvelopesBundled()) /
         static_cast<double>(bundles);
}

TcpPeerMesh::TcpPeerMesh(Role role, uint32_t self_id, KemKeypair identity)
    : role_(role), self_id_(self_id), identity_(std::move(identity)) {
  // Per-instance series label: benches host many meshes per process (and
  // twin fleets reuse self ids), so self_id alone would fold distinct
  // meshes into one series. A process-wide ordinal keeps them apart.
  static std::atomic<uint64_t> next_instance{0};
  obs_label_ = std::to_string(self_id_) + "#" +
               std::to_string(next_instance.fetch_add(
                   1, std::memory_order_relaxed));
  drops_ = obs::Registry::Global().GetCounter(
      "atom_mesh_send_queue_drops_total{mesh=\"" + obs_label_ + "\"}");
  if (role_ == Role::kDriver) {
    // Round ids must not collide with a previous driver incarnation's
    // rounds still resident on long-lived servers (stale lanes and
    // tombstones would silently swallow a restarted driver's kBeginRound
    // as a duplicate). A random 64-bit base makes cross-incarnation
    // collisions negligible; ids stay unique within one mesh by the
    // counter. Zero is skipped: it marks untagged legacy envelopes.
    Rng rng = Rng::FromOsEntropy();
    next_round_id_ = rng.NextU64() | 1;
  }
}

TcpPeerMesh::~TcpPeerMesh() { Stop(); }

void TcpPeerMesh::SetRoster(std::vector<MeshPeer> peers) {
  // Links whose roster entry changed (or vanished) are shut down so the
  // next send redials the NEW entry — keeping them would pin traffic to a
  // stale address/key after a repair. Shutdown happens outside mu_ (the
  // dying link's reader thread takes mu_ to deregister itself).
  std::vector<std::shared_ptr<SecureLink>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<uint32_t, MeshPeer> old_roster = std::move(peers_.roster);
    peers_.roster.clear();
    for (MeshPeer& peer : peers) {
      uint32_t id = peer.server_id;
      peers_.roster[id] = std::move(peer);
    }
    for (const auto& [id, link] : links_) {
      auto old_it = old_roster.find(id);
      if (old_it == old_roster.end()) {
        continue;  // never rostered (e.g. the driver): keep
      }
      auto new_it = peers_.roster.find(id);
      if (new_it == peers_.roster.end() ||
          new_it->second.host != old_it->second.host ||
          new_it->second.port != old_it->second.port ||
          new_it->second.pk.Encode() != old_it->second.pk.Encode()) {
        dropped.push_back(link);
      }
    }
  }
  for (auto& link : dropped) {
    link->Shutdown();
  }
}

void TcpPeerMesh::AddPeerKey(uint32_t peer_id, const Point& pk) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.extra_keys[peer_id] = pk;
}

std::optional<Point> TcpPeerMesh::LookupPeerKey(uint32_t peer_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.roster.find(peer_id);
  if (it != peers_.roster.end()) {
    return it->second.pk;
  }
  auto extra = peers_.extra_keys.find(peer_id);
  if (extra != peers_.extra_keys.end()) {
    return extra->second;
  }
  return std::nullopt;
}

std::optional<MeshPeer> TcpPeerMesh::LookupPeerAddress(
    uint32_t peer_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = peers_.roster.find(peer_id);
  if (it == peers_.roster.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool TcpPeerMesh::Listen(uint16_t port) {
  auto listener = TcpListener::Bind(port);
  if (!listener) {
    return false;
  }
  listener_ = std::move(*listener);
  return true;
}

uint16_t TcpPeerMesh::listen_port() const { return listener_.port(); }

void TcpPeerMesh::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!listener_.valid() || accepting_ || stopping_) {
    return;
  }
  accepting_ = true;
  threads_.emplace_back([this] { AcceptLoop(); });
}

void TcpPeerMesh::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  listener_.Shutdown();
  std::vector<std::shared_ptr<SecureLink>> links;
  {
    std::lock_guard<std::mutex> lock(mu_);
    links = adopted_;
  }
  for (auto& link : links) {
    link->Shutdown();
  }
  {
    // Wait for every sender-lane drain to retire before tearing links
    // down: a drain still running past this point would touch freed mesh
    // state. The links are already shut, so in-flight writes fail fast,
    // and a drain observing stopping_ abandons its queue immediately.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      for (const auto& [id, lane] : lanes_) {
        if (lane.draining) {
          return false;
        }
      }
      return true;
    });
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    links_.clear();
    adopted_.clear();
  }
  listener_.Close();
}

void TcpPeerMesh::OnEnvelope(std::function<void(Envelope)> fn) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  on_envelope_ = std::move(fn);
}

void TcpPeerMesh::OnControl(
    std::function<void(uint32_t, LinkFrame)> fn) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  on_control_ = std::move(fn);
}

void TcpPeerMesh::OnDriverEnvelope(std::function<void(Envelope)> fn) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  on_driver_envelope_ = std::move(fn);
}

void TcpPeerMesh::OnPeerDown(std::function<void(uint32_t)> fn) {
  std::lock_guard<std::mutex> lock(cb_mu_);
  on_peer_down_ = std::move(fn);
}

std::shared_ptr<SecureLink> TcpPeerMesh::AdoptLink(
    std::shared_ptr<SecureLink> link) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    link->Shutdown();
    return nullptr;
  }
  // Links adopted by a mesh always carry server-range ids: dialed links
  // get ours, accepted links passed the roster lookup (which rejects ids
  // past the u32 server range).
  uint32_t peer = static_cast<uint32_t>(link->peer_id());
  auto it = links_.find(peer);
  std::shared_ptr<SecureLink> chosen = link;
  if (it != links_.end() && it->second->alive()) {
    // Keep the established link for outbound traffic; the newcomer is
    // still read (its dialer may send on it).
    chosen = it->second;
  } else {
    links_[peer] = link;
  }
  adopted_.push_back(link);
  threads_.emplace_back([this, link] { ReaderLoop(link); });
  return chosen;
}

std::shared_ptr<SecureLink> TcpPeerMesh::EnsureLink(uint32_t peer_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = links_.find(peer_id);
    if (it != links_.end() && it->second->alive()) {
      return it->second;
    }
    if (stopping_) {
      return nullptr;
    }
  }
  // One dialer at a time: concurrent senders to a dead peer would race
  // duplicate connections and duplicate failure aborts.
  std::lock_guard<std::mutex> dial_lock(dial_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = links_.find(peer_id);
    if (it != links_.end() && it->second->alive()) {
      return it->second;
    }
  }
  auto peer = LookupPeerAddress(peer_id);
  if (!peer) {
    return nullptr;
  }
  int attempts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempts = dial_attempts_;
  }
  for (int attempt = 0; attempt < attempts; attempt++) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(40 * attempt));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return nullptr;
      }
    }
    auto socket = TcpSocket::Dial(peer->host, peer->port);
    if (!socket) {
      continue;
    }
    Rng rng = Rng::FromOsEntropy();
    auto link = SecureLink::Dial(std::move(*socket), self_id_, identity_,
                                 peer_id, peer->pk, rng);
    if (link == nullptr) {
      continue;
    }
    return AdoptLink(std::shared_ptr<SecureLink>(std::move(link)));
  }
  return nullptr;
}

bool TcpPeerMesh::SendFrame(uint32_t peer_id, LinkMsg type, BytesView body) {
  const size_t cost = body.size() + 1;  // + the LinkMsg tag byte
  std::chrono::milliseconds delay;
  std::shared_ptr<FaultPlan> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay = send_delay_;
    // The per-peer WAN matrix overrides the global delay and adds a
    // serialization term: frame_bytes / bandwidth.
    auto wan = wan_.find(peer_id);
    if (wan != wan_.end()) {
      delay = wan->second.delay;
      if (wan->second.bytes_per_ms > 0) {
        delay += std::chrono::milliseconds(cost / wan->second.bytes_per_ms);
      }
    }
    plan = fault_plan_;
    size_t& pending = send_pending_[peer_id];
    // Per-peer backpressure: senders serialize on the link's write lock,
    // so `pending` is exactly the bytes queued behind the in-flight frame
    // (plus that frame). One frame is always admitted when the queue is
    // empty; past the bound the frame is DROPPED — the caller's failure
    // conversion turns that into a round-scoped abort instead of an
    // unbounded pile of blocked threads on a stalled WAN peer.
    if (pending > 0 && pending + cost > send_queue_bound_) {
      drops_->Add(1);
      return false;
    }
    pending += cost;
  }
  bool sent = false;
  FaultDecision fault;
  if (plan != nullptr) {
    if (plan->stall().count() > 0) {
      plan->CountStalled();
      std::this_thread::sleep_for(plan->stall());  // straggler emulation
    }
    fault = plan->NextDecision(FaultPlan::StreamKey(self_id_, peer_id));
    if (fault.action == FaultAction::kDelay) {
      std::this_thread::sleep_for(fault.delay);
    }
  }
  if (delay.count() > 0) {
    std::this_thread::sleep_for(delay);  // WAN emulation (benches only)
  }
  if (fault.action == FaultAction::kDrop) {
    // Silent loss: the caller believes the frame left, exactly like a
    // frame lost past the NIC. The failure surfaces downstream (missed
    // ack -> control timeout, missing sub-batch -> round timeout), which
    // is the abort-or-complete path the scenarios assert.
    std::lock_guard<std::mutex> lock(mu_);
    send_pending_[peer_id] -= cost;
    return true;
  }
  auto link = EnsureLink(peer_id);
  if (link != nullptr) {
    const Bytes packed = PackLinkFrame(type, body);
    if (fault.action == FaultAction::kTruncate ||
        fault.action == FaultAction::kCorrupt) {
      // Seal, then damage the record: the receiver's AEAD rejects it and
      // kills the link — on-the-wire corruption, not a protocol message.
      sent = link->SendMutated(
          BytesView(packed), [&fault](Bytes& record) {
            FaultPlan::Mutate(fault, record);
          });
    } else if (link->Send(BytesView(packed))) {
      sent = true;
      if (fault.action == FaultAction::kDuplicate) {
        link->Send(BytesView(packed));  // both genuinely sealed
      }
    } else {
      // The persistent link died under us (peer restarted / unplugged):
      // reconnect-on-failure means one redial before giving up.
      link = EnsureLink(peer_id);
      sent = link != nullptr && link->Send(BytesView(packed));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    send_pending_[peer_id] -= cost;
    if (sent) {
      LaneCounters& obs = LaneFor(peer_id).obs;
      obs.bytes_sent->Add(cost);
      obs.frames_sent->Add(1);
    }
  }
  return sent;
}

bool TcpPeerMesh::SendFrameAsync(uint32_t peer_id, LinkMsg type, Bytes body,
                                 uint64_t round_id, uint32_t gid,
                                 uint32_t envelope_count) {
  const size_t cost = body.size() + 1;  // + the LinkMsg tag byte
  ThreadPool* pool;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return false;
    }
    SenderLane& lane = LaneFor(peer_id);
    // Byte-accounted admission, shared with the synchronous path's
    // in-flight bytes: a giant bundle consumes exactly its size of the
    // budget. One frame is always admitted when nothing is pending —
    // drop-to-abort past the bound, never block.
    const size_t pending = lane.queued_bytes + send_pending_[peer_id];
    if (pending > 0 && pending + cost > send_queue_bound_) {
      drops_->Add(1);
      return false;
    }
    lane.queue.push_back(QueuedFrame{type, std::move(body), round_id, gid,
                                     envelope_count});
    lane.queued_bytes += cost;
    lane.obs.queue_depth_peak->UpdateMax(
        static_cast<int64_t>(lane.queued_bytes));
    if (lane.draining) {
      return true;  // the running drain will pick this frame up
    }
    lane.draining = true;
    pool = sender_pool_ != nullptr ? sender_pool_ : &ThreadPool::Shared();
  }
  pool->Submit([this, peer_id] { DrainSenderLane(peer_id); },
               kTransportDrainWeight);
  return true;
}

void TcpPeerMesh::DrainSenderLane(uint32_t peer_id) {
  QueuedFrame frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SenderLane& lane = lanes_[peer_id];
    if (lane.queue.empty() || stopping_) {
      // Queued frames are abandoned on Stop: the links are dying anyway
      // and Stop() waits on this flag before tearing them down.
      lane.draining = false;
      cv_.notify_all();
      return;
    }
    frame = std::move(lane.queue.front());
    lane.queue.pop_front();
    lane.queued_bytes -= frame.body.size() + 1;
  }
  // The socket write (and any emulated WAN sleep) happens here, on the
  // drain task — the producer is already sealing the next frame.
  bool sent;
  {
    obs::TraceSpan span("transport_lane", "net", frame.round_id, "peer",
                        peer_id, "bytes", frame.body.size() + 1);
    sent = SendFrame(peer_id, frame.type, BytesView(frame.body));
  }
  if (!sent) {
    // Converted before the lane is marked idle: once draining clears,
    // Stop() may tear the mesh down, so no mesh state may be touched
    // after the idle transition below.
    ConvertAsyncSendFailure(peer_id, frame.round_id, frame.gid);
  }
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SenderLane& lane = LaneFor(peer_id);
    if (sent && frame.type == LinkMsg::kEnvelopeBundle) {
      lane.obs.bundles_sent->Add(1);
      lane.obs.envelopes_bundled->Add(frame.envelopes);
    }
    if (lane.queue.empty() || stopping_) {
      lane.draining = false;
      cv_.notify_all();
    } else {
      // Yield between frames: re-queue instead of looping, so a deep lane
      // cannot monopolize a pool thread through emulated-WAN sleeps.
      pool = sender_pool_ != nullptr ? sender_pool_ : &ThreadPool::Shared();
    }
  }
  if (pool != nullptr) {
    pool->Submit([this, peer_id] { DrainSenderLane(peer_id); },
                 kTransportDrainWeight);
  }
}

TcpPeerMesh::SenderLane& TcpPeerMesh::LaneFor(uint32_t peer_id) {
  SenderLane& lane = lanes_[peer_id];
  if (lane.obs.bytes_sent == nullptr) {
    obs::Registry& reg = obs::Registry::Global();
    const std::string labels = "{mesh=\"" + obs_label_ + "\",peer=\"" +
                               std::to_string(peer_id) + "\"}";
    lane.obs.bytes_sent = reg.GetCounter("atom_mesh_bytes_sent_total" +
                                         labels);
    lane.obs.frames_sent = reg.GetCounter("atom_mesh_frames_sent_total" +
                                          labels);
    lane.obs.bundles_sent = reg.GetCounter("atom_mesh_bundles_sent_total" +
                                           labels);
    lane.obs.envelopes_bundled =
        reg.GetCounter("atom_mesh_envelopes_bundled_total" + labels);
    lane.obs.queue_depth_peak =
        reg.GetGauge("atom_mesh_send_queue_depth_peak_bytes" + labels);
  }
  return lane;
}

void TcpPeerMesh::ConvertAsyncSendFailure(uint32_t peer_id,
                                          uint64_t round_id, uint32_t gid) {
  std::string reason = "transport: server " + std::to_string(self_id_) +
                       " could not reach server " + std::to_string(peer_id);
  if (role_ == Role::kServer) {
    if (peer_id != kMeshDriverId) {
      SendAbortToDriver(round_id, gid, std::move(reason));
    }
    return;
  }
  // Driver role: the failed frame was this driver's own outbound traffic.
  // Deliver a synthesized round-tagged abort to the local sink, exactly
  // as if the unreachable server had reported the failure itself.
  DispatchEnvelope(Envelope{kMeshDriverId,
                            TransportAbort(gid, std::move(reason)),
                            round_id});
}

void TcpPeerMesh::SendEnvelopes(std::vector<Envelope> envelopes) {
  ATOM_CHECK_MSG(role_ == Role::kServer,
                 "SendEnvelopes is the server-role fan-out path");
  if (envelopes.empty()) {
    return;
  }
  const uint32_t dest = envelopes[0].to_server;
  const uint64_t round_id = envelopes[0].round_id;
  const uint32_t gid = envelopes[0].msg.gid;
  for (const Envelope& envelope : envelopes) {
    ATOM_CHECK_MSG(envelope.to_server == dest &&
                       envelope.round_id == round_id,
                   "a bundle holds one destination and one round");
  }
  std::shared_ptr<FaultPlan> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = fault_plan_;
  }
  if (plan != nullptr && plan->LinkSevered(round_id, self_id_, dest)) {
    plan->CountSevered();
  } else {
    Bytes body = envelopes.size() == 1
                     ? EncodeEnvelope(envelopes[0])
                     : EncodeEnvelopeBundle(envelopes);
    LinkMsg type = envelopes.size() == 1 ? LinkMsg::kEnvelope
                                         : LinkMsg::kEnvelopeBundle;
    if (SendFrameAsync(dest, type, std::move(body), round_id, gid,
                       static_cast<uint32_t>(envelopes.size()))) {
      return;
    }
  }
  SendAbortToDriver(round_id, gid,
                    "transport: server " + std::to_string(self_id_) +
                        " could not reach server " + std::to_string(dest));
}

void TcpPeerMesh::AcceptLoop() {
  for (;;) {
    auto socket = listener_.Accept();
    if (!socket) {
      return;  // listener shut down
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        return;
      }
    }
    Rng rng = Rng::FromOsEntropy();
    auto link = SecureLink::Accept(
        std::move(*socket), self_id_, identity_,
        [this](uint64_t id) -> std::optional<Point> {
          if (id > 0xffffffffULL) {
            return std::nullopt;  // client-range ids never dial a mesh
          }
          return LookupPeerKey(static_cast<uint32_t>(id));
        },
        rng);
    if (link != nullptr) {
      AdoptLink(std::shared_ptr<SecureLink>(std::move(link)));
    }
  }
}

void TcpPeerMesh::ReaderLoop(std::shared_ptr<SecureLink> link) {
  for (;;) {
    auto payload = link->Recv();
    if (!payload) {
      break;
    }
    auto frame = UnpackLinkFrame(BytesView(*payload));
    if (!frame) {
      link->Shutdown();
      break;
    }
    HandleFrame(static_cast<uint32_t>(link->peer_id()), std::move(*frame));
  }
  OnPeerGone(static_cast<uint32_t>(link->peer_id()));
  // Drop the registered entry if it is this dead link, so the next send
  // redials instead of hitting a corpse.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = links_.find(static_cast<uint32_t>(link->peer_id()));
  if (it != links_.end() && it->second.get() == link.get()) {
    links_.erase(it);
  }
}

void TcpPeerMesh::HandleFrame(uint32_t peer_id, LinkFrame frame) {
  if (frame.type == LinkMsg::kAck) {
    if (role_ != Role::kDriver) {
      return;
    }
    auto seq = DecodeAck(BytesView(frame.body));
    if (seq) {
      std::lock_guard<std::mutex> lock(mu_);
      acked_.insert(*seq);
      cv_.notify_all();
    }
    return;
  }
  if (frame.type == LinkMsg::kMetricsSnapshot && role_ == Role::kDriver) {
    // A server's telemetry reply; requests only ever travel driver ->
    // server, so on this side the frame is unambiguous.
    auto reply = DecodeMetricsReply(BytesView(frame.body));
    if (reply) {
      std::lock_guard<std::mutex> lock(mu_);
      metrics_replies_[reply->seq] = std::move(reply->snapshot);
      cv_.notify_all();
    }
    return;
  }
  if (frame.type == LinkMsg::kEnvelope ||
      frame.type == LinkMsg::kEnvelopeBundle) {
    auto malformed = [&] {
      if (role_ == Role::kDriver) {
        SynthesizeAbort(0, "transport: malformed envelope from server " +
                               std::to_string(peer_id));
      } else {
        SendAbortToDriver(0, 0,
                          "transport: malformed envelope received by "
                          "server " +
                              std::to_string(self_id_));
      }
    };
    if (frame.type == LinkMsg::kEnvelope) {
      auto envelope = DecodeEnvelope(BytesView(frame.body));
      if (!envelope) {
        malformed();
        return;
      }
      DispatchEnvelope(std::move(*envelope));
      return;
    }
    // A bundle demultiplexes back into the exact per-envelope delivery a
    // legacy sender would have produced, in the sender's fan-out order.
    auto envelopes = DecodeEnvelopeBundle(BytesView(frame.body));
    if (!envelopes) {
      malformed();
      return;
    }
    for (Envelope& envelope : *envelopes) {
      DispatchEnvelope(std::move(envelope));
    }
    return;
  }
  // Control plane (roster / join-group / host-group / begin-round):
  // driver-originated; servers apply via their NodeProcess.
  if (role_ == Role::kServer) {
    std::lock_guard<std::mutex> lock(cb_mu_);
    if (on_control_) {
      on_control_(peer_id, std::move(frame));
    }
  }
}

void TcpPeerMesh::DispatchEnvelope(Envelope envelope) {
  if (role_ == Role::kDriver) {
    {
      // Invoked under cb_mu_ so unregistering (driver teardown) cannot
      // race an in-flight call into a dying object.
      std::lock_guard<std::mutex> lock(cb_mu_);
      if (on_driver_envelope_) {
        // A pipelined driver demultiplexes per round; the legacy Run
        // collectors are bypassed entirely.
        on_driver_envelope_(std::move(envelope));
        return;
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (envelope.msg.type == NodeMsg::Type::kGroupOutput) {
      outputs_.push_back(std::move(envelope.msg));
    } else if (envelope.msg.type == NodeMsg::Type::kAbort) {
      aborts_.push_back(std::move(envelope.msg));
    }
    cv_.notify_all();
    return;
  }
  std::lock_guard<std::mutex> lock(cb_mu_);
  if (on_envelope_) {
    on_envelope_(std::move(envelope));
  }
}

void TcpPeerMesh::OnPeerGone(uint32_t peer_id) {
  bool abort_run = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return;
    }
    abort_run = role_ == Role::kDriver && running_;
  }
  if (abort_run) {
    SynthesizeAbort(0, "transport: server " + std::to_string(peer_id) +
                           " disconnected mid-run");
  }
  std::lock_guard<std::mutex> lock(cb_mu_);
  if (on_peer_down_) {
    on_peer_down_(peer_id);
  }
}

void TcpPeerMesh::SynthesizeAbort(uint32_t gid, std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  aborts_.push_back(TransportAbort(gid, std::move(reason)));
  cv_.notify_all();
}

void TcpPeerMesh::SendAbortToDriver(uint64_t round_id, uint32_t gid,
                                    std::string reason) {
  Envelope envelope{self_id_, TransportAbort(gid, std::move(reason)),
                    round_id};
  SendFrame(kMeshDriverId, LinkMsg::kEnvelope,
            BytesView(EncodeEnvelope(envelope)));
}

uint64_t TcpPeerMesh::NextSeq() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_++;
}

bool TcpPeerMesh::SendControlAwaitAck(uint32_t peer_id, LinkMsg type,
                                      uint64_t seq, BytesView body) {
  if (!SendFrame(peer_id, type, body)) {
    return false;
  }
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, control_timeout_,
                      [&] { return acked_.contains(seq); });
}

bool TcpPeerMesh::ConnectAndPushRoster() {
  ATOM_CHECK_MSG(role_ == Role::kDriver,
                 "only the driver distributes the roster");
  std::vector<MeshPeer> roster;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, peer] : peers_.roster) {
      roster.push_back(peer);
    }
  }
  for (const MeshPeer& peer : roster) {
    uint64_t seq = NextSeq();
    Bytes body = EncodeRoster(seq, roster);
    if (!SendControlAwaitAck(peer.server_id, LinkMsg::kRoster, seq,
                             BytesView(body))) {
      return false;
    }
  }
  return true;
}

bool TcpPeerMesh::SendJoinGroup(uint32_t peer_id, uint32_t gid,
                                const NodeGroupKeys& keys) {
  uint64_t seq = NextSeq();
  Bytes body = EncodeJoinGroup(seq, gid, keys);
  return SendControlAwaitAck(peer_id, LinkMsg::kJoinGroup, seq,
                             BytesView(body));
}

bool TcpPeerMesh::SendHostGroup(uint32_t peer_id, uint32_t gid,
                                const DkgResult& dkg) {
  uint64_t seq = NextSeq();
  Bytes body = EncodeHostGroup(seq, gid, dkg);
  return SendControlAwaitAck(peer_id, LinkMsg::kHostGroup, seq,
                             BytesView(body));
}

std::optional<obs::MetricsSnapshot> TcpPeerMesh::FetchMetricsSnapshot(
    uint32_t peer_id) {
  ATOM_CHECK_MSG(role_ == Role::kDriver,
                 "metrics snapshots are pulled by the driver");
  uint64_t seq = NextSeq();
  Bytes body = EncodeMetricsRequest(seq);
  if (!SendFrame(peer_id, LinkMsg::kMetricsSnapshot, BytesView(body))) {
    return std::nullopt;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!cv_.wait_for(lock, control_timeout_,
                    [&] { return metrics_replies_.contains(seq); })) {
    return std::nullopt;
  }
  auto node = metrics_replies_.extract(seq);
  return std::move(node.mapped());
}

uint64_t TcpPeerMesh::AllocateRoundId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_round_id_++;
}

void TcpPeerMesh::set_next_round_id(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  next_round_id_ = id;
}

bool TcpPeerMesh::SendBeginRound(uint32_t peer_id, uint64_t round_id,
                                 const std::array<uint8_t, 32>& root_key,
                                 const WireRoundSpec* spec) {
  uint64_t seq = NextSeq();
  Bytes body = EncodeBeginRound(seq, round_id, root_key, spec);
  return SendControlAwaitAck(peer_id, LinkMsg::kBeginRound, seq,
                             BytesView(body));
}

void TcpPeerMesh::BroadcastRoundDone(uint64_t round_id,
                                     std::span<const uint32_t> peers) {
  std::vector<uint32_t> targets(peers.begin(), peers.end());
  if (targets.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, peer] : peers_.roster) {
      targets.push_back(id);
    }
  }
  Bytes body = EncodeRoundDone(round_id);
  for (uint32_t id : targets) {
    // Best-effort: an unreachable peer's round state dies with the peer.
    SendFrame(id, LinkMsg::kRoundDone, BytesView(body));
  }
}

void TcpPeerMesh::Send(Envelope envelope) {
  if (role_ == Role::kDriver) {
    // Buffered until Run: the run root key must precede the traffic it
    // keys, exactly as LocalBus defers delivery until Run.
    std::lock_guard<std::mutex> lock(mu_);
    buffered_.push_back(std::move(envelope));
    return;
  }
  uint32_t dest = (envelope.msg.type == NodeMsg::Type::kGroupOutput ||
                   envelope.msg.type == NodeMsg::Type::kAbort)
                      ? kMeshDriverId
                      : envelope.to_server;
  std::shared_ptr<FaultPlan> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = fault_plan_;
  }
  if (plan != nullptr &&
      plan->LinkSevered(envelope.round_id, self_id_, dest)) {
    // Partition emulation: the link is down for this round, so the send
    // fails exactly like an unreachable peer and the failure conversion
    // below produces the round-scoped abort naming both endpoints.
    plan->CountSevered();
  } else {
    Bytes body = EncodeEnvelope(envelope);
    if (SendFrame(dest, LinkMsg::kEnvelope, BytesView(body))) {
      return;
    }
  }
  if (dest != kMeshDriverId) {
    // The chain cannot make progress; tell the driver instead of letting
    // the run hang until its timeout. Round-tagged, so a pipelined driver
    // aborts only the round whose traffic failed.
    SendAbortToDriver(envelope.round_id, envelope.msg.gid,
                      "transport: server " + std::to_string(self_id_) +
                          " could not reach server " +
                          std::to_string(dest));
  }
}

bool TcpPeerMesh::Run(Rng& rng) {
  ATOM_CHECK_MSG(role_ == Role::kDriver, "Run is driver-only");
  // Drawn before anything else so a seeded driver consumes exactly the
  // same generator stream as LocalBus::Run.
  std::array<uint8_t, 32> run_key;
  rng.Fill(run_key.data(), run_key.size());
  const uint64_t round_id = AllocateRoundId();

  std::vector<Envelope> to_send;
  std::vector<uint32_t> server_ids;
  size_t aborts_before = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ATOM_CHECK_MSG(!running_, "Run re-entered");
    running_ = true;
    run_outputs_baseline_ = outputs_.size();
    run_aborts_baseline_ = aborts_.size();
    aborts_before = aborts_.size();
    to_send.swap(buffered_);
    for (const auto& [id, peer] : peers_.roster) {
      server_ids.push_back(id);
    }
  }

  // Phase 1: every server opens a round-scoped lane for this run's root
  // key before any envelope can reach it (ack-synchronized because chain
  // traffic arrives on different links than ours). Legacy runs carry no
  // engine spec: the lane's per-round delivery counter starts at zero,
  // exactly like LocalBus's per-Run counters.
  bool ready = true;
  for (uint32_t id : server_ids) {
    if (!SendBeginRound(id, round_id, run_key, nullptr)) {
      SynthesizeAbort(0, "transport: server " + std::to_string(id) +
                             " unreachable at run start");
      ready = false;
      break;
    }
  }

  // Phase 2: inject the buffered entry envelopes, stamped with this run's
  // round id. Each one seeds exactly one chain, which ends in one
  // kGroupOutput or one kAbort.
  size_t seeds = 0;
  if (ready) {
    for (Envelope& envelope : to_send) {
      seeds++;
      envelope.round_id = round_id;
      Bytes body = EncodeEnvelope(envelope);
      if (!SendFrame(envelope.to_server, LinkMsg::kEnvelope,
                     BytesView(body))) {
        SynthesizeAbort(envelope.msg.gid,
                        "transport: send to server " +
                            std::to_string(envelope.to_server) + " failed");
      }
    }
  }

  // Phase 3: wait for every chain to resolve. A synthesized abort (send
  // failure, peer EOF) counts as that chain's resolution; a stuck run
  // surfaces as a timeout abort, never a hang.
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool done = cv_.wait_for(lock, run_timeout_, [&] {
      return (outputs_.size() - run_outputs_baseline_) +
                 (aborts_.size() - run_aborts_baseline_) >=
             seeds;
    });
    if (!done) {
      aborts_.push_back(TransportAbort(
          0, "transport: timed out waiting for group outputs"));
    }
    running_ = false;
  }
  // Retire the round so the servers' bounded lane pool frees up.
  BroadcastRoundDone(round_id);
  std::lock_guard<std::mutex> lock(mu_);
  return aborts_.size() == aborts_before;
}

const std::vector<NodeMsg>& TcpPeerMesh::outputs() const {
  AssertNotRunning();
  return outputs_;
}

const std::vector<NodeMsg>& TcpPeerMesh::aborts() const {
  AssertNotRunning();
  return aborts_;
}

size_t TcpPeerMesh::output_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outputs_.size();
}

size_t TcpPeerMesh::abort_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aborts_.size();
}

void TcpPeerMesh::ClearOutputs() {
  std::lock_guard<std::mutex> lock(mu_);
  outputs_.clear();
}

void TcpPeerMesh::AssertNotRunning() const {
#ifndef NDEBUG
  std::lock_guard<std::mutex> lock(mu_);
  ATOM_CHECK_MSG(!running_,
                 "mesh outputs()/aborts() read while Run is executing");
#endif
}

void TcpPeerMesh::set_run_timeout(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(mu_);
  run_timeout_ = timeout;
}

void TcpPeerMesh::set_control_timeout(std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(mu_);
  control_timeout_ = timeout;
}

void TcpPeerMesh::set_dial_attempts(int attempts) {
  std::lock_guard<std::mutex> lock(mu_);
  dial_attempts_ = attempts < 1 ? 1 : attempts;
}

void TcpPeerMesh::set_send_delay(std::chrono::milliseconds delay) {
  std::lock_guard<std::mutex> lock(mu_);
  send_delay_ = delay;
}

void TcpPeerMesh::set_peer_profile(uint32_t peer_id, WanProfile profile) {
  std::lock_guard<std::mutex> lock(mu_);
  wan_[peer_id] = profile;
}

void TcpPeerMesh::set_sender_pool(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  sender_pool_ = pool;
}

MeshTransportStats TcpPeerMesh::Stats() const {
  // Reconstructed from the registry-backed counters, which are the single
  // source of truth since the observability plane landed; the public
  // snapshot shape (and the scenario report JSON built from it) is
  // unchanged.
  std::lock_guard<std::mutex> lock(mu_);
  MeshTransportStats out;
  for (const auto& [id, lane] : lanes_) {
    PeerTransportStats stats;
    if (lane.obs.bytes_sent != nullptr) {
      stats.bytes_sent = lane.obs.bytes_sent->Value();
      stats.frames_sent = lane.obs.frames_sent->Value();
      stats.bundles_sent = lane.obs.bundles_sent->Value();
      stats.envelopes_bundled = lane.obs.envelopes_bundled->Value();
      stats.queue_depth_peak =
          static_cast<size_t>(lane.obs.queue_depth_peak->Value());
    }
    out.per_peer[id] = stats;
  }
  out.send_queue_drops = static_cast<size_t>(drops_->Value());
  return out;
}

void TcpPeerMesh::SetFaultPlan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_plan_ = std::move(plan);
}

void TcpPeerMesh::set_send_queue_bound(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  send_queue_bound_ = bytes;
}

size_t TcpPeerMesh::send_queue_drops() const {
  return static_cast<size_t>(drops_->Value());
}

}  // namespace atom
