// TcpPeerMesh: the Bus implementation that replaces LocalBus with real
// sockets — one persistent authenticated encrypted connection per peer
// (src/net/link.h), redialed on failure, with every frame either a routed
// protocol Envelope or a driver control message (src/net/control.h).
//
// The same class serves both sides of a deployment:
//
//  * Role::kDriver — the round driver. Send() buffers entry envelopes;
//    Run() draws a 256-bit run root key from the caller's generator
//    (exactly like LocalBus::Run, so a seeded driver replays identically
//    on either bus), broadcasts it to every server with ack
//    synchronization, flushes the buffered envelopes, and waits until
//    each injected chain has produced a kGroupOutput or kAbort. A peer
//    that dies mid-run, refuses reconnection, or goes silent past the
//    run timeout surfaces as a synthesized kAbort — never a hang.
//
//  * Role::kServer — owned by a NodeProcess (src/net/node_process.h),
//    which registers inbound callbacks. Send() routes immediately:
//    kGroupOutput/kAbort to the driver, everything else to the peer that
//    serves the destination id; a failed send is converted into an abort
//    notice to the driver.
//
// Reader threads (one per link, plus the accept loop) only move bytes and
// fire callbacks; all protocol work happens on the shared ThreadPool via
// the receiver's SerialExecutor, mirroring LocalBus's per-server serial
// queue discipline.
#ifndef SRC_NET_MESH_H_
#define SRC_NET_MESH_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/net/control.h"
#include "src/net/link.h"

namespace atom {

class TcpPeerMesh : public Bus {
 public:
  enum class Role { kDriver, kServer };

  // `identity` is this participant's long-term key; its public half must
  // match what the roster distributes. self_id is kMeshDriverId for the
  // driver and the hosted server's id otherwise.
  TcpPeerMesh(Role role, uint32_t self_id, KemKeypair identity);
  ~TcpPeerMesh() override;

  // ---- Plumbing shared by both roles.

  // Replaces the peer directory (addresses + long-term keys). Thread-safe;
  // servers receive it from the driver as a kRoster control message.
  void SetRoster(std::vector<MeshPeer> peers);
  // Registers a key for a peer with no roster entry yet (servers learn
  // the driver's key at construction, before the roster arrives).
  void AddPeerKey(uint32_t peer_id, const Point& pk);

  // Binds a listener (port 0 picks an ephemeral port) — servers must
  // listen; the driver dials everyone and needs none.
  bool Listen(uint16_t port);
  uint16_t listen_port() const;

  // Starts the accept loop (no-op without a listener).
  void Start();
  // Shuts every link and thread down. Idempotent; called by the dtor.
  void Stop();

  // Inbound callbacks, fired on reader threads (receiver must hand work
  // to its SerialExecutor, not block). Server role only.
  void OnEnvelope(std::function<void(Envelope)> fn);
  void OnControl(std::function<void(uint32_t peer_id, LinkFrame frame)> fn);

  // Sends one frame to a peer, reusing the persistent link or (re)dialing
  // from the roster on failure. False when the peer is unreachable.
  bool SendFrame(uint32_t peer_id, LinkMsg type, BytesView body);

  // ---- Driver-side setup.

  // Dials every rostered peer and pushes the roster, waiting for acks.
  bool ConnectAndPushRoster();
  // Ships one group's key material to a server (ack-synchronized).
  bool SendJoinGroup(uint32_t peer_id, uint32_t gid,
                     const NodeGroupKeys& keys);

  // ---- Bus interface (Run/outputs/aborts are driver-role only).

  void Send(Envelope envelope) override;
  bool Run(Rng& rng) override;
  const std::vector<NodeMsg>& outputs() const override;
  const std::vector<NodeMsg>& aborts() const override;
  void ClearOutputs() override;

  // Unlike LocalBus, collectors can grow outside Run (a server may push
  // an abort spontaneously, e.g. on a malformed frame); these counts are
  // safe to poll at any time, where the vector accessors above are not.
  size_t output_count() const;
  size_t abort_count() const;

  void set_run_timeout(std::chrono::milliseconds timeout);
  void set_control_timeout(std::chrono::milliseconds timeout);
  void set_dial_attempts(int attempts);

 private:
  struct PeerDirectory {
    std::map<uint32_t, MeshPeer> roster;
    std::map<uint32_t, Point> extra_keys;
  };

  std::optional<Point> LookupPeerKey(uint32_t peer_id) const;
  std::optional<MeshPeer> LookupPeerAddress(uint32_t peer_id) const;

  // Returns a live link to the peer, dialing if needed (serialized by
  // dial_mu_ so concurrent senders don't race duplicate connections).
  std::shared_ptr<SecureLink> EnsureLink(uint32_t peer_id);
  // Registers a link and spawns its reader thread. Keeps an existing live
  // link (the newcomer still gets served by its own reader).
  std::shared_ptr<SecureLink> AdoptLink(std::shared_ptr<SecureLink> link);

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<SecureLink> link);
  void HandleFrame(uint32_t peer_id, LinkFrame frame);
  void OnPeerGone(uint32_t peer_id);

  // Appends a synthesized abort (driver role) and wakes Run. gid 0 when
  // the failing chain is unknown.
  void SynthesizeAbort(uint32_t gid, std::string reason);

  // Sends a control frame and blocks until its ack arrives.
  bool SendControlAwaitAck(uint32_t peer_id, LinkMsg type, uint64_t seq,
                           BytesView body);
  uint64_t NextSeq();

  // Server role: reports a local delivery failure upstream so the driver
  // sees an abort instead of a silently dropped chain.
  void SendAbortToDriver(uint32_t gid, std::string reason);

  void AssertNotRunning() const;

  const Role role_;
  const uint32_t self_id_;
  const KemKeypair identity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  PeerDirectory peers_;
  std::map<uint32_t, std::shared_ptr<SecureLink>> links_;
  // Every link a reader thread was ever spawned for — including ones
  // demoted by AdoptLink or replaced after a redial, which are no longer
  // in links_. Stop() must Shutdown() all of them or joining their
  // readers (blocked in Recv on a half-open socket) would hang forever.
  std::vector<std::shared_ptr<SecureLink>> adopted_;
  std::vector<std::thread> threads_;  // accept loop + link readers
  std::vector<Envelope> buffered_;    // driver: entry envelopes until Run
  std::vector<NodeMsg> outputs_;
  std::vector<NodeMsg> aborts_;
  std::set<uint64_t> acked_;
  uint64_t next_seq_ = 1;
  bool running_ = false;   // a driver Run is executing
  bool stopping_ = false;
  size_t run_outputs_baseline_ = 0;
  size_t run_aborts_baseline_ = 0;

  std::function<void(Envelope)> on_envelope_;
  std::function<void(uint32_t, LinkFrame)> on_control_;

  std::mutex dial_mu_;
  TcpListener listener_;
  bool accepting_ = false;

  std::chrono::milliseconds run_timeout_{std::chrono::seconds(120)};
  std::chrono::milliseconds control_timeout_{std::chrono::seconds(20)};
  int dial_attempts_ = 5;
};

}  // namespace atom

#endif  // SRC_NET_MESH_H_
