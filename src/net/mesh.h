// TcpPeerMesh: the Bus implementation that replaces LocalBus with real
// sockets — one persistent authenticated encrypted connection per peer
// (src/net/link.h), redialed on failure, with every frame either a routed
// protocol Envelope or a driver control message (src/net/control.h).
//
// The same class serves both sides of a deployment:
//
//  * Role::kDriver — the round driver. Send() buffers entry envelopes;
//    Run() draws a 256-bit run root key from the caller's generator
//    (exactly like LocalBus::Run, so a seeded driver replays identically
//    on either bus), broadcasts it to every server with ack
//    synchronization, flushes the buffered envelopes, and waits until
//    each injected chain has produced a kGroupOutput or kAbort. A peer
//    that dies mid-run, refuses reconnection, or goes silent past the
//    run timeout surfaces as a synthesized kAbort — never a hang.
//
//  * Role::kServer — owned by a NodeProcess (src/net/node_process.h),
//    which registers inbound callbacks. Send() routes immediately:
//    kGroupOutput/kAbort to the driver, everything else to the peer that
//    serves the destination id; a failed send is converted into an abort
//    notice to the driver.
//
// Reader threads (one per link, plus the accept loop) only move bytes and
// fire callbacks; all protocol work happens on the shared ThreadPool via
// the receiver's SerialExecutor, mirroring LocalBus's per-server serial
// queue discipline.
#ifndef SRC_NET_MESH_H_
#define SRC_NET_MESH_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/net/control.h"
#include "src/net/faults.h"
#include "src/net/link.h"
#include "src/obs/metrics.h"

namespace atom {

class ThreadPool;

// Emulated WAN shape for one peer link (netem-style). `delay` models the
// one-way propagation latency paid per frame; `bytes_per_ms` models link
// bandwidth as serialization time (frame_bytes / bytes_per_ms added on
// top of the delay; 0 = unlimited). A per-peer matrix of these lets
// bench_distributed_pipeline reproduce Figure 10/11-shaped multi-region
// runs on loopback: intra-region links get a small delay, cross-region
// links a large one.
struct WanProfile {
  std::chrono::milliseconds delay{0};
  size_t bytes_per_ms = 0;
};

// Point-in-time transport counters for one peer link. bytes/frames count
// everything that reached the socket (control and data plane, both the
// synchronous path and the sender lane); bundles/envelopes_bundled count
// only kEnvelopeBundle frames, so bundle fill = envelopes_bundled /
// bundles_sent.
struct PeerTransportStats {
  uint64_t bytes_sent = 0;
  uint64_t frames_sent = 0;
  uint64_t bundles_sent = 0;
  uint64_t envelopes_bundled = 0;
  size_t queue_depth_peak = 0;  // max bytes ever queued on the sender lane
};

// Snapshot of every peer's transport counters (TcpPeerMesh::Stats()).
struct MeshTransportStats {
  std::map<uint32_t, PeerTransportStats> per_peer;
  size_t send_queue_drops = 0;

  uint64_t TotalBytes() const;
  uint64_t TotalFrames() const;
  uint64_t TotalBundles() const;
  uint64_t TotalEnvelopesBundled() const;
  size_t QueueDepthPeak() const;  // max across peers
  // Mean envelopes per kEnvelopeBundle frame (0 when none were sent).
  double BundleFill() const;
};

class TcpPeerMesh : public Bus {
 public:
  enum class Role { kDriver, kServer };

  // `identity` is this participant's long-term key; its public half must
  // match what the roster distributes. self_id is kMeshDriverId for the
  // driver and the hosted server's id otherwise.
  TcpPeerMesh(Role role, uint32_t self_id, KemKeypair identity);
  ~TcpPeerMesh() override;

  // ---- Plumbing shared by both roles.

  // Replaces the peer directory (addresses + long-term keys). Thread-safe;
  // servers receive it from the driver as a kRoster control message.
  // Live links to peers whose roster entry changed (address or key) or
  // disappeared are shut down so the next send redials against the new
  // entry instead of talking to a stale endpoint; links to peers the
  // roster never named (e.g. the driver, known via AddPeerKey) are kept.
  void SetRoster(std::vector<MeshPeer> peers);
  // Registers a key for a peer with no roster entry yet (servers learn
  // the driver's key at construction, before the roster arrives).
  void AddPeerKey(uint32_t peer_id, const Point& pk);

  // Binds a listener (port 0 picks an ephemeral port) — servers must
  // listen; the driver dials everyone and needs none.
  bool Listen(uint16_t port);
  uint16_t listen_port() const;

  // Starts the accept loop (no-op without a listener).
  void Start();
  // Shuts every link and thread down. Idempotent; called by the dtor.
  void Stop();

  // Inbound callbacks, fired on reader threads (receiver must hand work
  // to its SerialExecutor, not block). Server role only.
  void OnEnvelope(std::function<void(Envelope)> fn);
  void OnControl(std::function<void(uint32_t peer_id, LinkFrame frame)> fn);

  // Driver-role sink for inbound envelopes. When set, every kEnvelope
  // frame is handed to it (round-tagged, so overlapping rounds
  // demultiplex) instead of the legacy Run collectors — this is how
  // DistributedRoundDriver (src/net/round_driver.h) takes over delivery.
  // Fired on reader threads; must not block.
  void OnDriverEnvelope(std::function<void(Envelope)> fn);
  // Fired (any role) when a peer's link dies outside Stop(); the
  // pipelined driver uses it to synthesize per-round aborts.
  void OnPeerDown(std::function<void(uint32_t peer_id)> fn);

  // Sends one frame to a peer, reusing the persistent link or (re)dialing
  // from the roster on failure. False when the peer is unreachable or the
  // peer's send queue is over its bound (see set_send_queue_bound) — the
  // caller's existing failure conversion turns either into an abort.
  bool SendFrame(uint32_t peer_id, LinkMsg type, BytesView body);

  // Asynchronous data-plane send: enqueues the frame on the peer's sender
  // lane and returns immediately, so the caller's next EncodeEnvelope +
  // AEAD seal overlaps this frame's socket write (the lane drains one
  // frame at a time on the shared ThreadPool, preserving per-peer order).
  // False when the lane's byte-accounted bound rejects the frame — the
  // caller converts that to an abort, exactly like a false SendFrame. A
  // failure discovered later, on the drain side, is converted internally:
  // server role reports a round-scoped abort to the driver, driver role
  // delivers a synthesized round-tagged abort to its own envelope sink.
  // round_id/gid scope that conversion; envelope_count feeds the bundle
  // fill counters (1 for a plain kEnvelope).
  bool SendFrameAsync(uint32_t peer_id, LinkMsg type, Bytes body,
                      uint64_t round_id, uint32_t gid,
                      uint32_t envelope_count = 1);

  // Server role, coalesced fan-out: ships every envelope a hop owes one
  // destination server as a single kEnvelopeBundle frame (plain kEnvelope
  // when there is just one) through the sender lane. All envelopes must
  // share to_server and round_id. Same failure conversion as Send():
  // severed links, bound drops and dead peers become round-scoped aborts
  // to the driver instead of hangs.
  void SendEnvelopes(std::vector<Envelope> envelopes);

  // ---- Driver-side setup.

  // Dials every rostered peer and pushes the roster, waiting for acks.
  bool ConnectAndPushRoster();
  // Ships one group's key material to a server (ack-synchronized).
  bool SendJoinGroup(uint32_t peer_id, uint32_t gid,
                     const NodeGroupKeys& keys);
  // Ships a whole group's DKG output so the receiver hosts that group's
  // engine hops for pipelined rounds (ack-synchronized).
  bool SendHostGroup(uint32_t peer_id, uint32_t gid, const DkgResult& dkg);

  // Driver side: pulls the peer process's frozen metrics registry over
  // the control plane (kMetricsSnapshot request/reply, bounded by the
  // control timeout). nullopt when the peer is unreachable, dead, or a
  // pre-observability build. Merge the replies with the local registry's
  // Snapshot() for the fleet-wide view.
  std::optional<obs::MetricsSnapshot> FetchMetricsSnapshot(uint32_t peer_id);

  // ---- Round-scoped control plane (driver side).

  // Round ids are unique per driver mesh; both the legacy Run and the
  // pipelined DistributedRoundDriver draw from this counter so their
  // rounds never collide on the servers' per-round state.
  uint64_t AllocateRoundId();
  // Pins the next allocated id (and the counter continues from it).
  // Scenario harness use: seeded FaultPlans name rounds by id
  // (sever=A-B@2-2), so a deterministic run needs ids 1,2,3… — safe
  // there because every scenario spawns a fresh fleet, which is exactly
  // the stale-lane hazard the random base exists to avoid.
  void set_next_round_id(uint64_t id);
  // Opens a round on one server: root key (+ optional engine spec),
  // ack-synchronized so key material lands before dependent traffic.
  bool SendBeginRound(uint32_t peer_id, uint64_t round_id,
                      const std::array<uint8_t, 32>& root_key,
                      const WireRoundSpec* spec);
  // Retires a round on the named peers (or every rostered peer when the
  // span is empty). Best-effort: a dead peer's state dies with it.
  void BroadcastRoundDone(uint64_t round_id,
                          std::span<const uint32_t> peers = {});

  // Server role: reports a local delivery failure upstream so the driver
  // sees an abort instead of a silently dropped chain; round-tagged so a
  // pipelined driver aborts only the affected round.
  void SendAbortToDriver(uint64_t round_id, uint32_t gid,
                         std::string reason);

  // ---- Bus interface (Run/outputs/aborts are driver-role only).

  void Send(Envelope envelope) override;
  bool Run(Rng& rng) override;
  const std::vector<NodeMsg>& outputs() const override;
  const std::vector<NodeMsg>& aborts() const override;
  void ClearOutputs() override;

  // Unlike LocalBus, collectors can grow outside Run (a server may push
  // an abort spontaneously, e.g. on a malformed frame); these counts are
  // safe to poll at any time, where the vector accessors above are not.
  size_t output_count() const;
  size_t abort_count() const;

  void set_run_timeout(std::chrono::milliseconds timeout);
  void set_control_timeout(std::chrono::milliseconds timeout);
  void set_dial_attempts(int attempts);
  // Backpressure bound for WAN deployments: caps the bytes queued behind
  // one peer's in-flight frame (senders serialize on the link's write
  // lock, so a slow or stalled peer otherwise accumulates blocked sender
  // threads without limit). One frame is always admitted when the queue
  // is empty; past the bound SendFrame fails immediately — drop-to-abort,
  // never block-to-OOM — and the failure surfaces through the existing
  // abort paths, scoped to the affected round. Default 64 MiB per peer.
  void set_send_queue_bound(size_t bytes);
  // Frames dropped by the bound since construction (observability).
  size_t send_queue_drops() const;
  // WAN emulation for benches (netem-style): every outbound frame sleeps
  // this long before hitting the socket, modelling one-way link latency.
  // The sender's thread blocks, exactly like a saturated WAN send buffer
  // would; concurrent rounds overlap these stalls, sequential rounds pay
  // them serially. Zero (the default) disables it. On the sender-lane
  // path the sleep happens on the drain task, so the producer keeps
  // sealing while the emulated wire is busy.
  void set_send_delay(std::chrono::milliseconds delay);
  // Per-peer WAN matrix entry; overrides set_send_delay for this peer and
  // adds a bandwidth term (see WanProfile). Benches build a full
  // latency/bandwidth matrix by calling this once per peer.
  void set_peer_profile(uint32_t peer_id, WanProfile profile);
  // Pool that runs the sender-lane drains (default ThreadPool::Shared());
  // a NodeProcess points this at its own pool so transport and protocol
  // work share one set of threads. Set before traffic flows.
  void set_sender_pool(ThreadPool* pool);
  // Snapshot of the per-peer transport counters.
  MeshTransportStats Stats() const;
  // Deterministic fault injection (scenario harness): every outbound
  // frame consults the plan — drop/delay/duplicate pass through the
  // normal send path, truncate/corrupt mutate the sealed record so the
  // receiver's AEAD kills the link, a stall sleeps before every frame,
  // and severed links fail round-scoped envelope sends exactly like an
  // unreachable peer. nullptr (the default) disables injection.
  void SetFaultPlan(std::shared_ptr<FaultPlan> plan);

 private:
  struct PeerDirectory {
    std::map<uint32_t, MeshPeer> roster;
    std::map<uint32_t, Point> extra_keys;
  };

  std::optional<Point> LookupPeerKey(uint32_t peer_id) const;
  std::optional<MeshPeer> LookupPeerAddress(uint32_t peer_id) const;

  // Returns a live link to the peer, dialing if needed (serialized by
  // dial_mu_ so concurrent senders don't race duplicate connections).
  std::shared_ptr<SecureLink> EnsureLink(uint32_t peer_id);
  // Registers a link and spawns its reader thread. Keeps an existing live
  // link (the newcomer still gets served by its own reader).
  std::shared_ptr<SecureLink> AdoptLink(std::shared_ptr<SecureLink> link);

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<SecureLink> link);
  void HandleFrame(uint32_t peer_id, LinkFrame frame);
  // Routes one decoded inbound envelope (single frame or bundle member)
  // to the role's sink: driver sink / legacy collectors / server callback.
  void DispatchEnvelope(Envelope envelope);
  void OnPeerGone(uint32_t peer_id);

  // Sends the head of a peer's sender lane, then reschedules itself while
  // frames remain. One drain task per lane at a time (per-peer order);
  // yielding between frames keeps a long queue from monopolizing a pool
  // thread during emulated-WAN sleeps.
  void DrainSenderLane(uint32_t peer_id);
  // Converts a drain-side send failure into the role's abort path.
  void ConvertAsyncSendFailure(uint32_t peer_id, uint64_t round_id,
                               uint32_t gid);

  // Appends a synthesized abort (driver role) and wakes Run. gid 0 when
  // the failing chain is unknown.
  void SynthesizeAbort(uint32_t gid, std::string reason);

  // Sends a control frame and blocks until its ack arrives.
  bool SendControlAwaitAck(uint32_t peer_id, LinkMsg type, uint64_t seq,
                           BytesView body);
  uint64_t NextSeq();

  void AssertNotRunning() const;

  const Role role_;
  const uint32_t self_id_;
  const KemKeypair identity_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  PeerDirectory peers_;
  std::map<uint32_t, std::shared_ptr<SecureLink>> links_;
  // Every link a reader thread was ever spawned for — including ones
  // demoted by AdoptLink or replaced after a redial, which are no longer
  // in links_. Stop() must Shutdown() all of them or joining their
  // readers (blocked in Recv on a half-open socket) would hang forever.
  std::vector<std::shared_ptr<SecureLink>> adopted_;
  std::vector<std::thread> threads_;  // accept loop + link readers
  std::vector<Envelope> buffered_;    // driver: entry envelopes until Run
  std::vector<NodeMsg> outputs_;
  std::vector<NodeMsg> aborts_;
  std::set<uint64_t> acked_;
  uint64_t next_seq_ = 1;
  uint64_t next_round_id_ = 1;
  bool running_ = false;   // a driver Run is executing
  bool stopping_ = false;
  size_t run_outputs_baseline_ = 0;
  size_t run_aborts_baseline_ = 0;

  // Callbacks are set and INVOKED under cb_mu_ (never nested with mu_):
  // clearing a callback therefore blocks until any in-flight invocation
  // returns, so an owner may unregister in its destructor without racing
  // a reader thread mid-call.
  mutable std::mutex cb_mu_;
  std::function<void(Envelope)> on_envelope_;
  std::function<void(uint32_t, LinkFrame)> on_control_;
  std::function<void(Envelope)> on_driver_envelope_;
  std::function<void(uint32_t)> on_peer_down_;

  std::mutex dial_mu_;
  TcpListener listener_;
  bool accepting_ = false;

  std::chrono::milliseconds run_timeout_{std::chrono::seconds(120)};
  std::chrono::milliseconds control_timeout_{std::chrono::seconds(20)};
  std::chrono::milliseconds send_delay_{0};
  std::shared_ptr<FaultPlan> fault_plan_;  // guarded by mu_
  int dial_attempts_ = 5;
  size_t send_queue_bound_ = size_t{1} << 26;  // 64 MiB per peer
  std::map<uint32_t, size_t> send_pending_;    // queued + in-flight bytes

  // One outbound frame parked on a sender lane. round_id/gid scope the
  // abort synthesized if the send fails once it is this frame's turn.
  struct QueuedFrame {
    LinkMsg type = LinkMsg::kEnvelope;
    Bytes body;
    uint64_t round_id = 0;
    uint32_t gid = 0;
    uint32_t envelopes = 1;
  };
  // Cached registry handles for one peer link's transport counters — the
  // single source of truth behind Stats(), shared with the fleet-wide
  // metrics export. Series carry {mesh="<self>#<instance>",peer="<id>"}
  // labels so the many meshes a bench process hosts stay separable.
  struct LaneCounters {
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* frames_sent = nullptr;
    obs::Counter* bundles_sent = nullptr;
    obs::Counter* envelopes_bundled = nullptr;
    obs::Gauge* queue_depth_peak = nullptr;  // max bytes queued on the lane
  };

  // Per-peer sender lane (guarded by mu_). queued_bytes shares the
  // byte-accounted budget with send_pending_, so a giant bundle consumes
  // exactly its size of the bound — it cannot hide behind a frame count.
  struct SenderLane {
    std::deque<QueuedFrame> queue;
    size_t queued_bytes = 0;
    bool draining = false;  // a drain task is scheduled or running
    LaneCounters obs;
  };
  // The peer's lane, its registry handles resolved on first use.
  // Requires mu_ held.
  SenderLane& LaneFor(uint32_t peer_id);

  std::map<uint32_t, SenderLane> lanes_;     // guarded by mu_
  std::map<uint32_t, WanProfile> wan_;       // guarded by mu_
  ThreadPool* sender_pool_ = nullptr;        // guarded by mu_
  // Fulfilled kMetricsSnapshot replies by request seq (driver role,
  // guarded by mu_; FetchMetricsSnapshot extracts its own entry).
  std::map<uint64_t, obs::MetricsSnapshot> metrics_replies_;
  std::string obs_label_;                    // mesh="<self>#<instance>"
  obs::Counter* drops_ = nullptr;            // send-queue bound drops
};

}  // namespace atom

#endif  // SRC_NET_MESH_H_
