#include "src/net/node_process.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "src/core/exit.h"
#include "src/core/wire.h"

namespace atom {
namespace {

// Tombstones kept per server: late frames for a retired round are dropped
// silently instead of re-opening state or spamming the driver.
constexpr size_t kMaxTombstones = 256;

MessageLayout SpecLayout(const WireRoundSpec& spec) {
  MessageLayout layout;
  layout.plaintext_len = spec.plaintext_len;
  layout.padded_len = spec.padded_len;
  layout.num_points = spec.num_points;
  return layout;
}

}  // namespace

NodeProcess::NodeProcess(uint32_t server_id, Variant variant,
                         KemKeypair identity, const Point& driver_pk,
                         size_t max_rounds, ThreadPool* pool)
    : server_id_(server_id),
      max_rounds_(max_rounds < 1 ? 1 : max_rounds),
      pool_(pool),
      node_(server_id, variant),
      mesh_(TcpPeerMesh::Role::kServer, server_id, std::move(identity)),
      node_serial_(pool) {
  mesh_.AddPeerKey(kMeshDriverId, driver_pk);
  // Sender-lane drains share this server's pool, so sealing the next
  // bundle and writing the current one interleave on one set of threads.
  mesh_.set_sender_pool(pool);
  mesh_.OnControl(
      [this](uint32_t peer, LinkFrame frame) {
        HandleControl(peer, std::move(frame));
      });
  mesh_.OnEnvelope(
      [this](Envelope envelope) { HandleEnvelope(std::move(envelope)); });
}

NodeProcess::~NodeProcess() { Stop(); }

bool NodeProcess::Listen(uint16_t port) { return mesh_.Listen(port); }

void NodeProcess::Start() { mesh_.Start(); }

void NodeProcess::Stop() {
  // Mesh first (readers stop submitting), then let queued handlers drain;
  // their outbound sends fail harmlessly against the closed links.
  mesh_.Stop();
  node_serial_.Drain();
  std::vector<Lane*> lanes;
  {
    std::lock_guard<std::mutex> lock(rounds_mu_);
    for (auto& lane : lanes_) {
      lanes.push_back(lane.get());
    }
  }
  for (Lane* lane : lanes) {
    lane->serial.Drain();
  }
}

void NodeProcess::HostGroup(uint32_t gid, DkgResult dkg) {
  auto runtime = std::make_unique<GroupRuntime>(gid, std::move(dkg));
  std::lock_guard<std::mutex> lock(groups_mu_);
  hosted_[gid] = std::move(runtime);
}

GroupRuntime* NodeProcess::FindHostedGroup(uint32_t gid) {
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto it = hosted_.find(gid);
  return it == hosted_.end() ? nullptr : it->second.get();
}

void NodeProcess::SetOutboundTamper(std::function<void(Envelope&)> fn) {
  tamper_ = std::move(fn);
}

void NodeProcess::SetFaultPlan(std::shared_ptr<FaultPlan> plan) {
  fault_plan_ = plan;
  mesh_.SetFaultPlan(std::move(plan));
}

void NodeProcess::set_wire_delay(std::chrono::milliseconds delay) {
  mesh_.set_send_delay(delay);
}

void NodeProcess::set_peer_profile(uint32_t peer_id, WanProfile profile) {
  mesh_.set_peer_profile(peer_id, profile);
}

void NodeProcess::Ack(uint32_t peer_id, uint64_t seq) {
  mesh_.SendFrame(peer_id, LinkMsg::kAck, BytesView(EncodeAck(seq)));
}

void NodeProcess::HandleControl(uint32_t peer_id, LinkFrame frame) {
  if (peer_id != kMeshDriverId) {
    return;  // only the driver steers a server
  }
  switch (frame.type) {
    case LinkMsg::kRoster: {
      auto msg = DecodeRoster(BytesView(frame.body));
      if (!msg) {
        return;
      }
      // Applied through the control serial queue so the ack also fences
      // all earlier setup messages (the driver's ordering guarantee).
      node_serial_.Submit([this, msg = std::move(*msg),
                              peer_id]() mutable {
        mesh_.SetRoster(std::move(msg.peers));
        Ack(peer_id, msg.seq);
      });
      break;
    }
    case LinkMsg::kJoinGroup: {
      auto msg = DecodeJoinGroup(BytesView(frame.body));
      if (!msg) {
        return;
      }
      node_serial_.Submit([this, msg = std::move(*msg),
                              peer_id]() mutable {
        node_.JoinGroup(msg.gid, std::move(msg.keys));
        Ack(peer_id, msg.seq);
      });
      break;
    }
    case LinkMsg::kHostGroup: {
      auto msg = DecodeHostGroup(BytesView(frame.body));
      if (!msg) {
        return;
      }
      node_serial_.Submit([this, msg = std::move(*msg),
                              peer_id]() mutable {
        HostGroup(msg.gid, std::move(msg.dkg));
        Ack(peer_id, msg.seq);
      });
      break;
    }
    case LinkMsg::kBeginRound: {
      auto msg = DecodeBeginRound(BytesView(frame.body));
      if (!msg) {
        return;
      }
      BeginRound(peer_id, std::move(*msg));
      break;
    }
    case LinkMsg::kRoundDone: {
      auto round_id = DecodeRoundDone(BytesView(frame.body));
      if (round_id) {
        FinishRound(*round_id);
      }
      break;
    }
    case LinkMsg::kMetricsSnapshot: {
      // Telemetry pull: freeze the process registry and ship it back.
      // Runs on the control serial queue like every other reply, so it
      // cannot block the reader thread on a slow link.
      auto seq = DecodeMetricsRequest(BytesView(frame.body));
      if (!seq) {
        return;
      }
      node_serial_.Submit([this, seq = *seq, peer_id] {
        Bytes body = EncodeMetricsReply(
            seq, obs::Registry::Global().Snapshot());
        mesh_.SendFrame(peer_id, LinkMsg::kMetricsSnapshot,
                        BytesView(body));
      });
      break;
    }
    default:
      break;
  }
}

void NodeProcess::BeginRound(uint32_t peer_id, BeginRoundMsg msg) {
  bool overloaded = false;
  {
    std::lock_guard<std::mutex> lock(rounds_mu_);
    if (active_.contains(msg.round_id) ||
        finished_.contains(msg.round_id)) {
      // Duplicate open (driver retry): the lane exists or the round
      // already retired; re-ack so the driver is not stuck.
      Ack(peer_id, msg.seq);
      return;
    }
    Lane* lane = nullptr;
    if (!free_lanes_.empty()) {
      lane = free_lanes_.back();
      free_lanes_.pop_back();
    } else if (lanes_.size() < max_rounds_) {
      lanes_.push_back(std::make_unique<Lane>(pool_));
      lane = lanes_.back().get();
    }
    if (lane == nullptr) {
      overloaded = true;
    } else {
      auto ctx = std::make_shared<RoundCtx>();
      ctx->round_id = msg.round_id;
      ctx->root = msg.root_key;
      ctx->spec = std::move(msg.spec);
      lane->ctx = std::move(ctx);
      active_[msg.round_id] = lane;
    }
  }
  // Ack in every case — the round's fate travels as a round-tagged abort,
  // not as a control-plane stall.
  Ack(peer_id, msg.seq);
  if (overloaded) {
    mesh_.SendAbortToDriver(
        msg.round_id, 0,
        "server " + std::to_string(server_id_) +
            ": too many concurrent rounds (bound " +
            std::to_string(max_rounds_) + ")");
  }
}

void NodeProcess::FinishRound(uint64_t round_id) {
  std::lock_guard<std::mutex> lock(rounds_mu_);
  auto it = active_.find(round_id);
  if (it != active_.end()) {
    Lane* lane = it->second;
    if (lane->ctx != nullptr) {
      // Stale tasks still queued on the lane check this flag and bail.
      lane->ctx->aborted.store(true, std::memory_order_release);
      lane->ctx.reset();
    }
    free_lanes_.push_back(lane);
    active_.erase(it);
  }
  if (finished_.insert(round_id).second) {
    finished_fifo_.push_back(round_id);
    while (finished_fifo_.size() > kMaxTombstones) {
      finished_.erase(finished_fifo_.front());
      finished_fifo_.pop_front();
    }
  }
}

void NodeProcess::HandleEnvelope(Envelope envelope) {
  std::shared_ptr<RoundCtx> ctx;
  Lane* lane = nullptr;
  {
    std::lock_guard<std::mutex> lock(rounds_mu_);
    auto it = active_.find(envelope.round_id);
    if (it != active_.end()) {
      lane = it->second;
      ctx = lane->ctx;
    } else if (finished_.contains(envelope.round_id)) {
      return;  // late frame for a retired round: drop
    }
  }
  if (ctx == nullptr) {
    // Traffic for a round this server never opened: a driver bug or a
    // hostile peer. Round-tagged so only that round is charged.
    mesh_.SendAbortToDriver(
        envelope.round_id, envelope.msg.gid,
        "server " + std::to_string(server_id_) +
            ": traffic for unknown round " +
            std::to_string(envelope.round_id));
    return;
  }
  // Engine traffic runs on the round's own lane; chain-protocol traffic
  // runs on node_serial_ — the ONE queue that ever touches the shared
  // AtomNode (with JoinGroup), preserving PR 3's single-serial contract
  // even if a timed-out legacy round's handler is still executing when
  // the next round's traffic arrives.
  if (envelope.msg.type == NodeMsg::Type::kHopBatch ||
      envelope.msg.type == NodeMsg::Type::kExitBuckets) {
    lane->serial.Submit([this, ctx, msg = std::move(envelope.msg)]() mutable {
      Process(ctx, std::move(msg));
    });
  } else {
    node_serial_.Submit([this, ctx, msg = std::move(envelope.msg)]() mutable {
      Process(ctx, std::move(msg));
    });
  }
}

void NodeProcess::Process(const std::shared_ptr<RoundCtx>& ctx, NodeMsg msg) {
  try {
    switch (msg.type) {
      case NodeMsg::Type::kHopBatch:
      case NodeMsg::Type::kExitBuckets:
        // Engine rounds are all-or-nothing (one DAG): once aborted or
        // evicted, remaining engine traffic for the round is dead work.
        if (ctx->aborted.load(std::memory_order_acquire)) {
          return;
        }
        if (msg.type == NodeMsg::Type::kHopBatch) {
          ProcessHop(ctx, std::move(msg));
        } else {
          ProcessExitBuckets(ctx, std::move(msg));
        }
        break;
      default:
        // Chain-protocol messages stay per-chain: a fault in one chain
        // must not swallow the others — each still resolves in its own
        // kGroupOutput or kAbort, which the legacy Run counts on (the
        // pre-lane NodeProcess behaved exactly this way).
        ProcessChain(ctx, std::move(msg));
        break;
    }
  } catch (const std::exception& e) {
    AbortRound(ctx, msg.gid, std::string("handler threw: ") + e.what());
  } catch (...) {
    AbortRound(ctx, msg.gid, "handler threw a non-standard exception");
  }
}

void NodeProcess::ProcessChain(const std::shared_ptr<RoundCtx>& ctx,
                               NodeMsg msg) {
  if (!node_.Accepts(msg)) {
    // Misrouted, premature (keys not yet joined), or hostile: a protocol
    // fault the driver must see, not a crash.
    AbortRound(ctx, msg.gid,
               "server " + std::to_string(server_id_) +
                   ": unroutable message for group " +
                   std::to_string(msg.gid) + " at pos " +
                   std::to_string(msg.chain_pos));
    return;
  }
  // Private generator for this delivery, key-separated exactly as
  // LocalBus::DrainServer does — with the counter scoped to this round's
  // lane — so (seed, traffic) replays identically across the transports.
  std::array<uint8_t, 32> key =
      DeriveSubKey(ctx->root, server_id_, ctx->delivered++);
  Rng step_rng(BytesView(key.data(), key.size()));
  std::vector<Envelope> emitted = node_.Handle(msg, step_rng);
  for (Envelope& next : emitted) {
    Deliver(ctx, std::move(next));
  }
}

void NodeProcess::ProcessHop(const std::shared_ptr<RoundCtx>& ctx,
                             NodeMsg msg) {
  if (!ctx->spec.has_value()) {
    AbortRound(ctx, msg.gid,
               "server " + std::to_string(server_id_) +
                   ": hop batch for a round with no engine spec");
    return;
  }
  const WireRoundSpec& spec = *ctx->spec;
  const size_t layer = msg.chain_pos;
  const uint32_t gid = msg.gid;
  const uint32_t src = msg.prev_pos;
  if (layer >= spec.layers || gid >= spec.width ||
      spec.hosts[gid] != server_id_) {
    AbortRound(ctx, gid,
               "server " + std::to_string(server_id_) +
                   ": misrouted hop batch (layer " + std::to_string(layer) +
                   ", group " + std::to_string(gid) + ")");
    return;
  }
  GroupRuntime* runtime = FindHostedGroup(gid);
  if (runtime == nullptr) {
    AbortRound(ctx, gid,
               "server " + std::to_string(server_id_) +
                   " does not host group " + std::to_string(gid));
    return;
  }

  const uint64_t hop_key = layer * spec.width + gid;
  auto [it, fresh] = ctx->hops.try_emplace(hop_key);
  HopAssembly& hop = it->second;
  if (fresh) {
    if (layer == 0) {
      hop.preds = {kMeshDriverId};  // the driver injects the entry batch
    } else {
      for (uint32_t p = 0; p < spec.width; p++) {
        const auto& neighbors = spec.adjacency[layer - 1][p];
        if (std::find(neighbors.begin(), neighbors.end(), gid) !=
            neighbors.end()) {
          hop.preds.push_back(p);  // ascending by construction
        }
      }
    }
    hop.inbound.resize(hop.preds.size());
    hop.got.assign(hop.preds.size(), false);
  }
  size_t slot = 0;
  if (layer > 0) {
    auto pos = std::lower_bound(hop.preds.begin(), hop.preds.end(), src);
    if (pos == hop.preds.end() || *pos != src) {
      AbortRound(ctx, gid,
                 "hop batch from non-predecessor group " +
                     std::to_string(src));
      return;
    }
    slot = static_cast<size_t>(pos - hop.preds.begin());
  }
  if (hop.got[slot]) {
    AbortRound(ctx, gid,
               "duplicate hop batch from group " + std::to_string(src));
    return;
  }
  hop.got[slot] = true;
  hop.inbound[slot] = std::move(msg.batch);
  if (++hop.arrived < hop.preds.size()) {
    return;
  }

  // All predecessors delivered: run the hop exactly like the engine —
  // inbound concatenated in ascending predecessor order, randomness from
  // the round root key-separated by hop index.
  CiphertextBatch input;
  size_t total = 0;
  for (const CiphertextBatch& b : hop.inbound) {
    total += b.size();
  }
  input.reserve(total);
  for (CiphertextBatch& b : hop.inbound) {
    for (auto& vec : b) {
      input.push_back(std::move(vec));
    }
  }
  ctx->hops.erase(hop_key);

  const bool last = (layer + 1 == spec.layers);
  std::vector<uint32_t> neighbors;
  if (!last) {
    neighbors = spec.adjacency[layer][gid];
  }
  std::vector<CiphertextBatch> out(last ? 1 : neighbors.size());
  if (!input.empty()) {
    std::vector<Point> next_pks;
    next_pks.reserve(neighbors.size());
    for (uint32_t n : neighbors) {
      next_pks.push_back(spec.group_pks[n]);
    }
    std::array<uint8_t, 32> key = DeriveSubKey(ctx->root, hop_key);
    Rng rng(BytesView(key.data(), key.size()));
    HopResult hop_result = runtime->RunHop(
        input, next_pks, static_cast<Variant>(spec.variant), rng,
        spec.hop_workers);
    if (hop_result.aborted) {
      AbortRound(ctx, gid,
                 "group " + std::to_string(gid) + " layer " +
                     std::to_string(layer) + ": " +
                     hop_result.abort_reason);
      return;
    }
    ATOM_CHECK(hop_result.batches.size() == out.size());
    out = std::move(hop_result.batches);
  }

  if (last) {
    ProcessExitLayer(ctx, gid, std::move(out[0]));
    return;
  }
  std::vector<std::pair<uint32_t, NodeMsg>> sends;
  sends.reserve(neighbors.size());
  for (size_t b = 0; b < neighbors.size(); b++) {
    NodeMsg next;
    next.type = NodeMsg::Type::kHopBatch;
    next.gid = neighbors[b];
    next.chain_pos = static_cast<uint32_t>(layer + 1);
    next.prev_pos = gid;
    next.batch = std::move(out[b]);
    sends.emplace_back(spec.hosts[neighbors[b]], std::move(next));
  }
  FanOut(ctx, std::move(sends));
}

void NodeProcess::ProcessExitLayer(const std::shared_ptr<RoundCtx>& ctx,
                                   uint32_t gid,
                                   CiphertextBatch exit_batch) {
  const WireRoundSpec& spec = *ctx->spec;
  if (!spec.native_exit) {
    // No exit plan: the fully stripped batch routes back to the driver
    // raw (layer == spec.layers marks it as an exit batch).
    NodeMsg msg;
    msg.type = NodeMsg::Type::kHopBatch;
    msg.gid = gid;
    msg.chain_pos = spec.layers;
    msg.prev_pos = gid;
    msg.batch = std::move(exit_batch);
    Deliver(ctx, Envelope{kMeshDriverId, std::move(msg), ctx->round_id});
    return;
  }
  MessageLayout layout = SpecLayout(spec);
  if (static_cast<Variant>(spec.variant) == Variant::kTrap) {
    ExitSort sort = SortTrapExits(gid, exit_batch, layout, spec.width);
    if (!sort.ok) {
      AbortRound(ctx, gid, "exit batch not fully decrypted");
      return;
    }
    // §4.4 stage 2 is per destination group: ship each destination its
    // buckets so its host checks them against this round's commitments.
    std::vector<std::pair<uint32_t, NodeMsg>> sends;
    sends.reserve(spec.width);
    for (uint32_t d = 0; d < spec.width; d++) {
      NodeMsg msg;
      msg.type = NodeMsg::Type::kExitBuckets;
      msg.gid = d;
      msg.prev_pos = gid;
      msg.exit_traps = std::move(sort.traps_for[d]);
      msg.exit_inner = std::move(sort.inner_for[d]);
      sends.emplace_back(spec.hosts[d], std::move(msg));
    }
    FanOut(ctx, std::move(sends));
    return;
  }
  NizkExitDecode decode = DecodeNizkExits(exit_batch, layout);
  if (!decode.ok) {
    AbortRound(ctx, gid, std::move(decode.error));
    return;
  }
  NodeMsg msg;
  msg.type = NodeMsg::Type::kExitPlain;
  msg.gid = gid;
  msg.exit_inner = std::move(decode.plaintexts);
  Deliver(ctx, Envelope{kMeshDriverId, std::move(msg), ctx->round_id});
}

void NodeProcess::ProcessExitBuckets(const std::shared_ptr<RoundCtx>& ctx,
                                     NodeMsg msg) {
  if (!ctx->spec.has_value()) {
    AbortRound(ctx, msg.gid, "exit buckets for a round with no engine spec");
    return;
  }
  const WireRoundSpec& spec = *ctx->spec;
  const uint32_t dst = msg.gid;
  const uint32_t src = msg.prev_pos;
  if (dst >= spec.width || src >= spec.width ||
      spec.hosts[dst] != server_id_ || !spec.native_exit ||
      spec.commitments.size() != spec.width) {
    AbortRound(ctx, dst, "misrouted exit buckets");
    return;
  }
  auto [it, fresh] = ctx->exits.try_emplace(dst);
  ExitAssembly& exit = it->second;
  if (fresh) {
    exit.traps.resize(spec.width);
    exit.inner.resize(spec.width);
    exit.got.assign(spec.width, false);
  }
  if (exit.got[src]) {
    AbortRound(ctx, dst,
               "duplicate exit buckets from group " + std::to_string(src));
    return;
  }
  exit.got[src] = true;
  exit.traps[src] = std::move(msg.exit_traps);
  exit.inner[src] = std::move(msg.exit_inner);
  if (++exit.arrived < spec.width) {
    return;
  }

  // Every source delivered: flatten in ascending source order (the
  // GatherExitBuckets order the byte-identical plaintext sequence depends
  // on) and run this destination's checks.
  std::vector<Bytes> traps, inner;
  for (uint32_t s = 0; s < spec.width; s++) {
    for (Bytes& t : exit.traps[s]) {
      traps.push_back(std::move(t));
    }
    for (Bytes& i : exit.inner[s]) {
      inner.push_back(std::move(i));
    }
  }
  ctx->exits.erase(dst);
  GroupReport report =
      CheckExitGroup(dst, traps, inner, spec.commitments[dst]);
  NodeMsg out;
  out.type = NodeMsg::Type::kExitReport;
  out.gid = dst;
  out.report = report;
  out.exit_inner = std::move(inner);
  Deliver(ctx, Envelope{kMeshDriverId, std::move(out), ctx->round_id});
}

void NodeProcess::SendToServer(const std::shared_ptr<RoundCtx>& ctx,
                               uint32_t dest_server, NodeMsg msg) {
  Envelope envelope{dest_server, std::move(msg), ctx->round_id};
  if (dest_server == server_id_) {
    // Self-hosted destination: back into our own lane without touching
    // the network (there is no link to ourselves).
    if (tamper_) {
      tamper_(envelope);
    }
    ApplyPlanTamper(ctx, envelope);
    HandleEnvelope(std::move(envelope));
    return;
  }
  Deliver(ctx, std::move(envelope));
}

void NodeProcess::ApplyPlanTamper(const std::shared_ptr<RoundCtx>& ctx,
                                  Envelope& envelope) {
  if (fault_plan_ == nullptr || !fault_plan_->TamperRound(ctx->round_id)) {
    return;
  }
  // Byzantine mixer: re-point every ciphertext of the outbound hop batch.
  // The encodings stay valid (real curve points), so the fault is
  // protocol-level cheating — caught by the §4.4 trap check at the exit,
  // not by transport authentication. Tampering the whole batch (rather
  // than one ciphertext) guarantees at least one trap is destroyed, so a
  // tampered round deterministically aborts instead of depending on the
  // trap/inner coin of a single slot.
  NodeMsg& msg = envelope.msg;
  if (msg.type == NodeMsg::Type::kHopBatch) {
    for (ElGamalCiphertextVec& vec : msg.batch) {
      for (ElGamalCiphertext& ct : vec) {
        ct.c = ct.c + Point::Generator();
      }
    }
  }
}

void NodeProcess::AbortRound(const std::shared_ptr<RoundCtx>& ctx,
                             uint32_t gid, std::string reason) {
  ctx->aborted.store(true, std::memory_order_release);
  mesh_.SendAbortToDriver(ctx->round_id, gid, std::move(reason));
}

void NodeProcess::Deliver(const std::shared_ptr<RoundCtx>& ctx,
                          Envelope envelope) {
  envelope.round_id = ctx->round_id;
  if (tamper_) {
    tamper_(envelope);
  }
  ApplyPlanTamper(ctx, envelope);
  mesh_.Send(std::move(envelope));
}

void NodeProcess::FanOut(const std::shared_ptr<RoundCtx>& ctx,
                         std::vector<std::pair<uint32_t, NodeMsg>> sends) {
  if (!coalesce_) {
    // Legacy path (before/after bench rows): one frame per sub-batch,
    // serialized and sent inline on this lane's thread.
    for (auto& [dest, msg] : sends) {
      SendToServer(ctx, dest, std::move(msg));
    }
    return;
  }
  // Coalesced path: group by destination host so each peer receives one
  // kEnvelopeBundle for this hop. The mesh's sender lane picks the frame
  // up asynchronously — by the time it hits the socket, this thread is
  // already sealing the next destination's bundle.
  std::map<uint32_t, std::vector<Envelope>> by_host;
  for (auto& [dest, msg] : sends) {
    if (dest == server_id_) {
      SendToServer(ctx, dest, std::move(msg));  // self short-circuit
      continue;
    }
    Envelope envelope{dest, std::move(msg), ctx->round_id};
    if (tamper_) {
      tamper_(envelope);
    }
    ApplyPlanTamper(ctx, envelope);
    by_host[dest].push_back(std::move(envelope));
  }
  for (auto& [dest, envelopes] : by_host) {
    mesh_.SendEnvelopes(std::move(envelopes));
  }
}

}  // namespace atom
