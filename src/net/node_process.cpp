#include "src/net/node_process.h"

#include <exception>
#include <string>

namespace atom {

NodeProcess::NodeProcess(uint32_t server_id, Variant variant,
                         KemKeypair identity, const Point& driver_pk)
    : server_id_(server_id),
      node_(server_id, variant),
      mesh_(TcpPeerMesh::Role::kServer, server_id, std::move(identity)) {
  mesh_.AddPeerKey(kMeshDriverId, driver_pk);
  mesh_.OnControl(
      [this](uint32_t peer, LinkFrame frame) {
        HandleControl(peer, std::move(frame));
      });
  mesh_.OnEnvelope(
      [this](Envelope envelope) { HandleEnvelope(std::move(envelope)); });
}

NodeProcess::~NodeProcess() { Stop(); }

bool NodeProcess::Listen(uint16_t port) { return mesh_.Listen(port); }

void NodeProcess::Start() { mesh_.Start(); }

void NodeProcess::Stop() {
  // Mesh first (readers stop submitting), then let queued handlers drain;
  // their outbound sends fail harmlessly against the closed links.
  mesh_.Stop();
  serial_.Drain();
}

void NodeProcess::SetOutboundTamper(std::function<void(Envelope&)> fn) {
  tamper_ = std::move(fn);
}

void NodeProcess::Ack(uint32_t peer_id, uint64_t seq) {
  mesh_.SendFrame(peer_id, LinkMsg::kAck, BytesView(EncodeAck(seq)));
}

void NodeProcess::HandleControl(uint32_t peer_id, LinkFrame frame) {
  if (peer_id != kMeshDriverId) {
    return;  // only the driver steers a server
  }
  // Applied through the serial queue so the ack also fences all earlier
  // envelope deliveries (the driver's ordering guarantee).
  switch (frame.type) {
    case LinkMsg::kRoster: {
      auto msg = DecodeRoster(BytesView(frame.body));
      if (!msg) {
        return;
      }
      serial_.Submit([this, msg = std::move(*msg), peer_id]() mutable {
        mesh_.SetRoster(std::move(msg.peers));
        Ack(peer_id, msg.seq);
      });
      break;
    }
    case LinkMsg::kJoinGroup: {
      auto msg = DecodeJoinGroup(BytesView(frame.body));
      if (!msg) {
        return;
      }
      serial_.Submit([this, msg = std::move(*msg), peer_id]() mutable {
        node_.JoinGroup(msg.gid, std::move(msg.keys));
        Ack(peer_id, msg.seq);
      });
      break;
    }
    case LinkMsg::kBeginRun: {
      auto msg = DecodeBeginRun(BytesView(frame.body));
      if (!msg) {
        return;
      }
      serial_.Submit([this, msg = *msg, peer_id] {
        run_key_ = msg.run_key;
        delivered_ = 0;
        Ack(peer_id, msg.seq);
      });
      break;
    }
    default:
      break;
  }
}

void NodeProcess::HandleEnvelope(Envelope envelope) {
  serial_.Submit([this, msg = std::move(envelope.msg)]() mutable {
    Process(std::move(msg));
  });
}

void NodeProcess::Process(NodeMsg msg) {
  if (!node_.Accepts(msg)) {
    // Misrouted, premature (keys not yet joined), or hostile: a protocol
    // fault the driver must see, not a crash.
    NodeMsg abort_msg;
    abort_msg.type = NodeMsg::Type::kAbort;
    abort_msg.gid = msg.gid;
    abort_msg.abort_reason =
        "server " + std::to_string(server_id_) +
        ": unroutable message for group " + std::to_string(msg.gid) +
        " at pos " + std::to_string(msg.chain_pos);
    Deliver(Envelope{server_id_, std::move(abort_msg)});
    return;
  }
  // Private generator for this delivery, key-separated exactly as
  // LocalBus::DrainServer does, so (seed, traffic) replays identically
  // across the two transports.
  std::array<uint8_t, 32> key =
      DeriveSubKey(run_key_, server_id_, delivered_++);
  Rng step_rng(BytesView(key.data(), key.size()));
  std::vector<Envelope> emitted;
  try {
    emitted = node_.Handle(msg, step_rng);
  } catch (const std::exception& e) {
    NodeMsg abort_msg;
    abort_msg.type = NodeMsg::Type::kAbort;
    abort_msg.gid = msg.gid;
    abort_msg.abort_reason = std::string("handler threw: ") + e.what();
    emitted.push_back(Envelope{server_id_, std::move(abort_msg)});
  } catch (...) {
    NodeMsg abort_msg;
    abort_msg.type = NodeMsg::Type::kAbort;
    abort_msg.gid = msg.gid;
    abort_msg.abort_reason = "handler threw a non-standard exception";
    emitted.push_back(Envelope{server_id_, std::move(abort_msg)});
  }
  for (Envelope& next : emitted) {
    Deliver(std::move(next));
  }
}

void NodeProcess::Deliver(Envelope envelope) {
  if (tamper_) {
    tamper_(envelope);
  }
  mesh_.Send(std::move(envelope));
}

}  // namespace atom
