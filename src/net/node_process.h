// NodeProcess: hosts one Atom server inside one OS process and wires it to
// the TCP peer mesh — the deployment shape the paper assumes (one server
// per machine), where LocalBus's in-process delivery becomes real
// encrypted links.
//
// The process is natively multi-round: every kBeginRound control message
// opens a round-scoped lane — its own 256-bit root key, its own DRBG
// counters, and its own SerialExecutor on the shared ThreadPool — and
// every envelope demultiplexes into its round's lane by the round id
// stamped on the wire. Lanes are bounded (max_rounds) and evicted on
// kRoundDone, so one slow or wedged round never blocks its successors and
// a dead round's state cannot accumulate.
//
// Two kinds of traffic flow through a round:
//
//  * Chain-protocol steps (kShuffleStep/kReEncStep) drive the hosted
//    AtomNode. They execute on node_serial_ — the one queue that ever
//    touches the AtomNode (shared with JoinGroup), so the single-serial
//    contract holds even when rounds overlap — while their DRBG counters
//    stay per-round: each delivery's private generator is key-separated
//    from its round's root key by (server id, per-round delivery count),
//    exactly LocalBus's discipline, so a seeded legacy run replays
//    byte-for-byte across transports.
//
//  * Engine rounds (kBeginRound carrying a WireRoundSpec) execute whole
//    group hops for the groups this process hosts (kHostGroup installs the
//    DKG material): inbound kHopBatch sub-batches assemble per
//    (layer, gid) slot exactly like the RoundEngine's hop DAG, the hop
//    runs GroupRuntime::RunHop with a DRBG key-separated from the round's
//    root by layer*width+gid — the engine's derivation — and the exit
//    phase runs distributed: this host sorts its exit batches
//    (SortTrapExits), ships per-destination buckets (kExitBuckets) to the
//    destination groups' hosts, checks arrivals against the round's trap
//    commitments (CheckExitGroup), and reports to the driver
//    (kExitReport). A seeded engine round therefore produces
//    byte-identical results over the mesh and in process.
//
// Every control message is acked only after it has been applied, which
// gives the driver a cross-link ordering fence. Failures never hang the
// deployment: an unreachable next-hop peer, a malformed frame, a missing
// group runtime, or a throwing handler all surface to the driver as a
// round-tagged kAbort envelope.
#ifndef SRC_NET_NODE_PROCESS_H_
#define SRC_NET_NODE_PROCESS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "src/core/group_runtime.h"
#include "src/net/mesh.h"
#include "src/util/parallel.h"

namespace atom {

class NodeProcess {
 public:
  // `identity` is this server's long-term key (its public half is what
  // the roster advertises); `driver_pk` authenticates the driver before
  // any roster exists. `max_rounds` bounds concurrently open round lanes;
  // a kBeginRound past the bound is refused with a round-tagged abort.
  // `pool` backs this server's serial lanes (null = the process-wide
  // shared pool); benches hosting many "servers" in one process give each
  // its own pool, mirroring the real one-pool-per-process deployment.
  NodeProcess(uint32_t server_id, Variant variant, KemKeypair identity,
              const Point& driver_pk, size_t max_rounds = 8,
              ThreadPool* pool = nullptr);

  // Forwards to the mesh's WAN emulation knob (benches). Set before
  // Start().
  void set_wire_delay(std::chrono::milliseconds delay);
  // Per-peer WAN matrix entry (overrides set_wire_delay for that peer);
  // benches shape a multi-region topology with these. Set before Start().
  void set_peer_profile(uint32_t peer_id, WanProfile profile);
  // Per-peer frame coalescing for engine-round fan-out (default on): all
  // sub-batches a hop owes one server travel as one kEnvelopeBundle frame
  // through the mesh's sender lane. Off selects the legacy
  // one-frame-per-envelope path — kept selectable so benches can pin
  // before/after rows and seeded results can be compared byte-for-byte.
  void set_coalesce_sends(bool on) { coalesce_ = on; }
  // Transport counters (bytes/frames/bundles per peer) for bench rows.
  MeshTransportStats TransportStats() const { return mesh_.Stats(); }
  ~NodeProcess();

  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;

  bool Listen(uint16_t port = 0);
  uint16_t port() const { return mesh_.listen_port(); }
  void Start();
  void Stop();

  uint32_t server_id() const { return server_id_; }

  // Installs a whole group's DKG output so this process executes that
  // group's engine hops. Normally arrives as a kHostGroup control
  // message; public for in-process tests.
  void HostGroup(uint32_t gid, DkgResult dkg);

  // Test hook (fault injection): mutates every outbound envelope before
  // it is sent — an "evil server" mid-chain for abort-propagation tests.
  // Set before Start().
  void SetOutboundTamper(std::function<void(Envelope&)> fn);

  // Scenario-harness fault injection (src/net/faults.h). Frame-level
  // faults and stalls thread through the mesh; round-ranged tamper rules
  // turn this server into a byzantine mixer (outbound hop batches get a
  // deterministically chosen ciphertext re-pointed, which the §4.4 trap
  // check catches at the exit). Set before Start().
  void SetFaultPlan(std::shared_ptr<FaultPlan> plan);

 private:
  // Inbound sub-batches for one hop, assembled per predecessor slot in
  // ascending gid order — the RoundEngine's HopNode, reconstructed from
  // round-tagged wire traffic.
  struct HopAssembly {
    std::vector<uint32_t> preds;
    std::vector<CiphertextBatch> inbound;
    std::vector<bool> got;
    size_t arrived = 0;
  };
  // One destination group's §4.4 inputs: every source group's buckets.
  struct ExitAssembly {
    std::vector<std::vector<Bytes>> traps;
    std::vector<std::vector<Bytes>> inner;
    std::vector<bool> got;
    size_t arrived = 0;
  };
  // Everything one round owns on this server. Created by kBeginRound,
  // dropped on kRoundDone; tasks capture it by shared_ptr so a stale task
  // from an evicted round runs against its own (harmless) state.
  struct RoundCtx {
    uint64_t round_id = 0;
    std::array<uint8_t, 32> root{};
    uint64_t delivered = 0;  // chain-protocol DRBG counter
    std::optional<WireRoundSpec> spec;  // engine rounds only
    std::map<uint64_t, HopAssembly> hops;  // key: layer * width + gid
    std::map<uint32_t, ExitAssembly> exits;  // key: dest gid hosted here
    std::atomic<bool> aborted{false};
  };
  // A serial execution lane. The SerialExecutor outlives the rounds that
  // pass through it (lanes are pooled, not created per round), so lane
  // teardown never blocks a reader thread.
  struct Lane {
    explicit Lane(ThreadPool* pool) : serial(pool) {}
    SerialExecutor serial;
    std::shared_ptr<RoundCtx> ctx;  // guarded by rounds_mu_
  };

  void HandleControl(uint32_t peer_id, LinkFrame frame);
  void HandleEnvelope(Envelope envelope);  // reader thread -> round lane
  void BeginRound(uint32_t peer_id, BeginRoundMsg msg);
  void FinishRound(uint64_t round_id);

  // Lane tasks (serial per round, on the shared pool).
  void Process(const std::shared_ptr<RoundCtx>& ctx, NodeMsg msg);
  void ProcessChain(const std::shared_ptr<RoundCtx>& ctx, NodeMsg msg);
  void ProcessHop(const std::shared_ptr<RoundCtx>& ctx, NodeMsg msg);
  void ProcessExitLayer(const std::shared_ptr<RoundCtx>& ctx, uint32_t gid,
                        CiphertextBatch exit_batch);
  void ProcessExitBuckets(const std::shared_ptr<RoundCtx>& ctx, NodeMsg msg);

  void Deliver(const std::shared_ptr<RoundCtx>& ctx, Envelope envelope);
  // Ships one hop's fan-out (dest_server, msg) pairs: self-sends
  // short-circuit into our own lane; remote sends group per destination
  // host so each peer gets one multi-envelope frame per hop (or the
  // legacy one-frame-per-envelope path when coalescing is off).
  void FanOut(const std::shared_ptr<RoundCtx>& ctx,
              std::vector<std::pair<uint32_t, NodeMsg>> sends);
  // Applies the fault plan's byzantine tamper to an outbound envelope
  // when its round is inside a tamper range.
  void ApplyPlanTamper(const std::shared_ptr<RoundCtx>& ctx,
                       Envelope& envelope);
  // Routes an engine-round envelope to the server hosting `dest_server`,
  // short-circuiting self-sends back into our own lane.
  void SendToServer(const std::shared_ptr<RoundCtx>& ctx,
                    uint32_t dest_server, NodeMsg msg);
  void AbortRound(const std::shared_ptr<RoundCtx>& ctx, uint32_t gid,
                  std::string reason);
  GroupRuntime* FindHostedGroup(uint32_t gid);
  void Ack(uint32_t peer_id, uint64_t seq);

  const uint32_t server_id_;
  const size_t max_rounds_;
  ThreadPool* const pool_;  // backs the lanes; null = shared pool
  AtomNode node_;
  TcpPeerMesh mesh_;
  // The only queue that touches node_ (JoinGroup + chain deliveries) and
  // the setup control plane (roster / host-group).
  SerialExecutor node_serial_;

  std::mutex rounds_mu_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::map<uint64_t, Lane*> active_;   // round id -> lane
  std::vector<Lane*> free_lanes_;
  std::set<uint64_t> finished_;        // tombstones: late frames dropped
  std::deque<uint64_t> finished_fifo_; // eviction order for the tombstones

  std::mutex groups_mu_;
  std::map<uint32_t, std::unique_ptr<GroupRuntime>> hosted_;

  std::function<void(Envelope&)> tamper_;
  std::shared_ptr<FaultPlan> fault_plan_;  // set before Start()
  bool coalesce_ = true;  // set before Start()
};

}  // namespace atom

#endif  // SRC_NET_NODE_PROCESS_H_
