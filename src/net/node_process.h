// NodeProcess: hosts one AtomNode inside one OS process and wires it to
// the TCP peer mesh — the deployment shape the paper assumes (one server
// per machine), where LocalBus's in-process delivery becomes real
// encrypted links.
//
// Lifecycle, driven entirely by messages from the round driver:
//   1. Listen() binds a port (0 = ephemeral; port() reports the choice).
//   2. Start() begins accepting authenticated links. Initially only the
//      driver's long-term key is trusted; the kRoster control message
//      installs the full peer directory.
//   3. kJoinGroup messages install per-group key shares; kBeginRun
//      installs the round's 256-bit root key and resets the per-run
//      delivery counter.
//   4. kEnvelope frames are protocol steps. They are handed to a
//      SerialExecutor on the shared ThreadPool — the same one-server,
//      one-serial-queue discipline LocalBus enforces — and each delivery
//      handles its message with a private DRBG key-separated from the run
//      key by (server id, delivery count), so a seeded multi-process run
//      replays the in-process LocalBus run byte for byte.
//
// Every control message is acked only after it has been applied through
// the serial queue, which gives the driver a cross-link ordering fence.
// Failures never hang the deployment: an unreachable next-hop peer, a
// malformed frame, or a throwing handler all surface to the driver as a
// kAbort envelope.
#ifndef SRC_NET_NODE_PROCESS_H_
#define SRC_NET_NODE_PROCESS_H_

#include <functional>
#include <memory>

#include "src/net/mesh.h"
#include "src/util/parallel.h"

namespace atom {

class NodeProcess {
 public:
  // `identity` is this server's long-term key (its public half is what
  // the roster advertises); `driver_pk` authenticates the driver before
  // any roster exists.
  NodeProcess(uint32_t server_id, Variant variant, KemKeypair identity,
              const Point& driver_pk);
  ~NodeProcess();

  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;

  bool Listen(uint16_t port = 0);
  uint16_t port() const { return mesh_.listen_port(); }
  void Start();
  void Stop();

  uint32_t server_id() const { return server_id_; }

  // Test hook (fault injection): mutates every outbound envelope before
  // it is sent — an "evil server" mid-chain for abort-propagation tests.
  // Set before Start().
  void SetOutboundTamper(std::function<void(Envelope&)> fn);

 private:
  void HandleControl(uint32_t peer_id, LinkFrame frame);
  void HandleEnvelope(Envelope envelope);  // reader thread -> serial queue
  void Process(NodeMsg msg);               // serial, on the shared pool
  void Deliver(Envelope envelope);
  void Ack(uint32_t peer_id, uint64_t seq);

  const uint32_t server_id_;
  AtomNode node_;
  TcpPeerMesh mesh_;
  SerialExecutor serial_;

  // Touched only from serial-queue tasks (single-threaded by contract).
  std::array<uint8_t, 32> run_key_{};
  uint64_t delivered_ = 0;

  std::function<void(Envelope&)> tamper_;
};

}  // namespace atom

#endif  // SRC_NET_NODE_PROCESS_H_
