#include "src/net/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "src/core/wire.h"
#include "src/crypto/aead.h"
#include "src/obs/metrics.h"
#include "src/util/serde.h"

namespace atom {
namespace {

using Clock = std::chrono::steady_clock;

// Gateway-wide ingress telemetry, aggregated across every ReactorGateway
// in the process (the distributed deployment runs one per entry group;
// tests that spin several up sequentially share the series). Per-loop
// counters live on the Loop itself, labeled {loop="i"}. Aggregate-only:
// outcomes and counts, never a client id.
struct GwMetrics {
  obs::Counter* handshakes_ok;
  obs::Counter* handshakes_failed;
  obs::Counter* verdicts[5];  // indexed by SubmitStatus

  static GwMetrics& Get() {
    static GwMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      GwMetrics out;
      out.handshakes_ok =
          reg.GetCounter("atom_gateway_handshakes_total{outcome=\"ok\"}");
      out.handshakes_failed =
          reg.GetCounter("atom_gateway_handshakes_total{outcome=\"failed\"}");
      const char* statuses[5] = {"accepted", "rejected", "closed",
                                 "backpressure", "foreign_id"};
      for (size_t s = 0; s < 5; s++) {
        out.verdicts[s] =
            reg.GetCounter(std::string("atom_gateway_verdicts_total{status=\"") +
                           statuses[s] + "\"}");
      }
      return out;
    }();
    return m;
  }
};

// epoll_data tags for the two non-connection descriptors.
constexpr uint64_t kEventFdTag = 0;
constexpr uint64_t kListenerTag = UINT64_MAX;

// Read chunk per recv call; the loop reads to EAGAIN (edge-triggered).
constexpr size_t kReadChunk = 64 * 1024;
// Bound on one connection's queued outbound bytes: a peer that stops
// reading is dropped here instead of growing the buffer without bound
// (the reactor's equivalent of the blocking gateway's send timeout).
constexpr size_t kMaxOutBuffer = 1 << 20;
// During the handshake nothing legitimate buffers more than a couple of
// handshake frames; past this the dialer is flooding, not negotiating.
constexpr size_t kMaxHandshakeBuffer = 2 * (kMaxHandshakeFrame + 4);
// Deadline sweep cadence (per loop); coarse is fine — deadlines are
// seconds-scale.
constexpr auto kSweepInterval = std::chrono::milliseconds(200);
// A draining connection gets this long to flush its tail, then dies.
constexpr auto kDrainTimeout = std::chrono::seconds(2);

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// All mutable connection state below is owned by the connection's event
// loop: only that loop's thread touches it (cross-thread results arrive
// as posted closures), so none of it needs a lock. The exceptions are
// in_flight — the credit count, guarded by the gateway's mu_ like the
// blocking backend's — and the const-after-handshake identity fields.
struct ReactorGateway::Conn {
  enum class State : uint8_t { kHandshaking, kWelcomed, kStreaming,
                               kDraining };

  uint64_t id = 0;
  size_t loop_index = 0;
  int fd = -1;
  State state = State::kHandshaking;
  bool dying = false;
  bool hs_inflight = false;       // a pool task owns the handshake object
  bool awaiting_confirm = false;  // response sent; next frame is confirm
  bool counted_established = false;
  FrameAssembler assembler{kMaxHandshakeFrame};
  LinkListenerHandshake handshake;
  RecordChannel channel;
  Bytes out;
  size_t out_pos = 0;
  Clock::time_point deadline;       // handshake / drain deadline
  Clock::time_point last_activity;  // feeds the idle timeout
  // Identity (const once established) and credit (guarded by mu_):
  uint64_t client_id = 0;
  Point pk;
  uint32_t in_flight = 0;

  ~Conn() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
};

struct ReactorGateway::Loop {
  size_t index = 0;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::mutex mu;
  std::deque<std::function<void()>> posted;  // guarded by mu
  bool stopped = false;                      // guarded by mu: posts drop
  bool exit = false;                         // loop-thread only
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns;
  Clock::time_point last_sweep;

  // Per-loop telemetry, labeled {loop="index"}; resolved once at Start.
  // epoll_wait_us samples only when obs::TimingEnabled().
  obs::Counter* accepts = nullptr;
  obs::Counter* reaps = nullptr;
  obs::Histogram* epoll_wait_us = nullptr;

  ~Loop() {
    if (epoll_fd >= 0) {
      ::close(epoll_fd);
    }
    if (event_fd >= 0) {
      ::close(event_fd);
    }
  }
};

struct ReactorGateway::ShardPump {
  explicit ShardPump(ThreadPool* pool) : serial(pool) {}
  SerialExecutor serial;
};

ReactorGateway::ReactorGateway(Round* round, ClientRegistry* registry,
                               KemKeypair identity, GatewayConfig config,
                               ThreadPool* pool)
    : round_(round),
      registry_(registry),
      identity_(std::move(identity)),
      config_(config),
      pool_(pool != nullptr ? pool : &ThreadPool::Shared()) {
  ATOM_CHECK(round_ != nullptr && registry_ != nullptr);
  pumps_.reserve(round_->NumGroups());
  for (size_t g = 0; g < round_->NumGroups(); g++) {
    pumps_.push_back(std::make_unique<ShardPump>(pool));
  }
  // Same intake hook as the blocking backend: everything the gateway
  // authenticates is admissible, nothing else.
  round_->SetClientAuth([registry](uint64_t client_id) {
    return registry->Lookup(client_id).has_value();
  });
}

ReactorGateway::~ReactorGateway() {
  Stop();
  round_->SetClientAuth(nullptr);
}

bool ReactorGateway::Listen(uint16_t port) {
  auto listener = TcpListener::Bind(port);
  if (!listener) {
    return false;
  }
  listener_ = std::move(*listener);
  return true;
}

bool ReactorGateway::ServesGroup(uint32_t gid) const {
  return config_.entry_group < 0 ||
         gid == static_cast<uint32_t>(config_.entry_group);
}

void ReactorGateway::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopped_ || !listener_.valid()) {
    return;
  }
  started_ = true;
  // The accept path is event-driven too: non-blocking listener in loop
  // 0's epoll set.
  int lflags = fcntl(listener_.fd(), F_GETFL, 0);
  fcntl(listener_.fd(), F_SETFL, lflags | O_NONBLOCK);

  size_t num_loops = config_.reactor_loops > 0 ? config_.reactor_loops : 1;
  loops_.reserve(num_loops);
  for (size_t i = 0; i < num_loops; i++) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    {
      obs::Registry& reg = obs::Registry::Global();
      const std::string label = "{loop=\"" + std::to_string(i) + "\"}";
      loop->accepts = reg.GetCounter("atom_gateway_accepts_total" + label);
      loop->reaps = reg.GetCounter("atom_gateway_reaps_total" + label);
      loop->epoll_wait_us =
          reg.GetHistogram("atom_gateway_epoll_wait_us" + label);
    }
    loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    loop->event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    ATOM_CHECK(loop->epoll_fd >= 0 && loop->event_fd >= 0);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEventFdTag;
    epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->event_fd, &ev);
    if (i == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN | EPOLLET;
      lev.data.u64 = kListenerTag;
      epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listener_.fd(), &lev);
    }
    loop->last_sweep = Clock::now();
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] { LoopMain(raw); });
  }
}

bool ReactorGateway::PostToLoop(size_t loop_index,
                                std::function<void()> fn) {
  Loop* loop = loops_[loop_index].get();
  {
    std::lock_guard<std::mutex> lock(loop->mu);
    if (loop->stopped) {
      return false;  // late pool-task result after Stop: dropped
    }
    loop->posted.push_back(std::move(fn));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      write(loop->event_fd, &one, sizeof(one));
  return true;
}

void ReactorGateway::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stopping_.store(true);
  // Each loop closes its own connections on its own thread, then exits:
  // no reader join can wedge on a blocked socket, and the join below is
  // deterministic.
  for (size_t i = 0; i < loops_.size(); i++) {
    PostToLoop(i, [this, i] {
      Loop* loop = loops_[i].get();
      {
        // Later posts (pump verdicts, handshake results) drop from here
        // on; this closure is the loop's last.
        std::lock_guard<std::mutex> lock(loop->mu);
        loop->stopped = true;
      }
      std::vector<std::shared_ptr<Conn>> conns;
      conns.reserve(loop->conns.size());
      for (auto& [id, conn] : loop->conns) {
        conns.push_back(conn);
      }
      for (auto& conn : conns) {
        CloseConn(loop, conn);
      }
      loop->exit = true;
    });
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) {
      loop->thread.join();
    }
    // A loop that never ran its stop closure (posted after stop raced a
    // never-started thread) still must refuse future posts.
    std::lock_guard<std::mutex> lock(loop->mu);
    loop->stopped = true;
    loop->posted.clear();
  }
  // Handshake tasks still on the pool hold `this`; wait them out (their
  // posted results were dropped above).
  {
    std::unique_lock<std::mutex> lock(hs_mu_);
    hs_cv_.wait(lock, [&] { return hs_tasks_ == 0; });
  }
  // Loops are gone; let in-flight pump tasks finish (their posted
  // verdicts drop harmlessly).
  for (auto& pump : pumps_) {
    pump->serial.Drain();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
  }
  listener_.Close();
}

void ReactorGateway::OpenRound(uint64_t round_id) {
  ATOM_CHECK_MSG(round_id != 0, "round id 0 marks a closed intake");
  open_round_.store(round_id, std::memory_order_release);
  Broadcast(ClientMsg::kRoundOpen, BytesView(EncodeRoundNotice(round_id)));
}

void ReactorGateway::Cutoff() {
  uint64_t closed = open_round_.exchange(0, std::memory_order_acq_rel);
  if (closed != 0) {
    Broadcast(ClientMsg::kRoundCutoff, BytesView(EncodeRoundNotice(closed)));
  }
  // Final pumps before any drain, so shards verify their tails
  // concurrently; a sharded fleet member only pumps its own group (the
  // per-shard single-consumer contract spans the fleet).
  for (uint32_t g = 0; g < pumps_.size(); g++) {
    if (!ServesGroup(g)) {
      continue;
    }
    pumps_[g]->serial.Submit([this, g] { PumpShard(g); });
  }
  for (uint32_t g = 0; g < pumps_.size(); g++) {
    if (!ServesGroup(g)) {
      continue;
    }
    pumps_[g]->serial.Drain();
  }
}

size_t ReactorGateway::ApplyRegistrySync(const RegistrySyncMsg& sync) {
  return registry_->ApplySync(sync);
}

size_t ReactorGateway::accepted_count() const {
  return accepted_.load(std::memory_order_relaxed);
}

size_t ReactorGateway::resolved_count() const {
  return resolved_.load(std::memory_order_relaxed);
}

size_t ReactorGateway::connection_count() const {
  return established_.load(std::memory_order_relaxed);
}

void ReactorGateway::LoopMain(Loop* loop) {
  std::vector<epoll_event> events(512);
  while (!loop->exit) {
    // Sampled wait latency: how long this loop sat in the kernel before
    // work arrived (a high tail under load means the loop is saturated
    // elsewhere, a low one that it is spinning on ready sockets).
    const bool timing = obs::TimingEnabled();
    const auto wait_start = timing ? Clock::now() : Clock::time_point{};
    int n = epoll_wait(loop->epoll_fd, events.data(),
                       static_cast<int>(events.size()), 100);
    if (timing) {
      loop->epoll_wait_us->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - wait_start)
              .count()));
    }
    // Posted closures first: a Stop must win against a burst of socket
    // events.
    for (;;) {
      std::deque<std::function<void()>> batch;
      {
        std::lock_guard<std::mutex> lock(loop->mu);
        batch.swap(loop->posted);
      }
      if (batch.empty()) {
        break;
      }
      for (auto& fn : batch) {
        fn();
      }
    }
    if (loop->exit) {
      break;
    }
    for (int i = 0; i < n; i++) {
      uint64_t tag = events[i].data.u64;
      uint32_t mask = events[i].events;
      if (tag == kEventFdTag) {
        uint64_t drained;
        [[maybe_unused]] ssize_t r =
            read(loop->event_fd, &drained, sizeof(drained));
        continue;
      }
      if (tag == kListenerTag) {
        AcceptReady(loop);
        continue;
      }
      auto it = loop->conns.find(tag);
      if (it == loop->conns.end()) {
        continue;  // closed earlier this wake
      }
      std::shared_ptr<Conn> conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(loop, conn);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        FlushWrites(loop, conn);
      }
      if (!conn->dying && (mask & (EPOLLIN | EPOLLRDHUP)) != 0) {
        HandleReadable(loop, conn);
      }
    }
    SweepDeadlines(loop);
  }
}

void ReactorGateway::AcceptReady(Loop* loop) {
  for (;;) {
    int fd = accept4(listener_.fd(), nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // EAGAIN drained the backlog; EMFILE etc. also just stop
    }
    if (stopping_.load() ||
        (config_.max_connections != 0 &&
         total_conns_.load() >= config_.max_connections)) {
      ::close(fd);
      continue;
    }
    SetNoDelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->id = next_conn_id_.fetch_add(1);
    conn->fd = fd;
    conn->loop_index = round_robin_.fetch_add(1) % loops_.size();
    total_conns_.fetch_add(1);
    loops_[conn->loop_index]->accepts->Add(1);
    bool posted = PostToLoop(conn->loop_index, [this, conn] {
      Loop* owner = loops_[conn->loop_index].get();
      auto now = Clock::now();
      conn->deadline =
          now + std::chrono::milliseconds(config_.handshake_deadline_ms);
      conn->last_activity = now;
      owner->conns.emplace(conn->id, conn);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
      ev.data.u64 = conn->id;
      if (epoll_ctl(owner->epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
        CloseConn(owner, conn);
      }
    });
    if (!posted) {
      total_conns_.fetch_sub(1);  // target loop already stopped
    }
  }
}

void ReactorGateway::HandleReadable(Loop* loop,
                                    const std::shared_ptr<Conn>& conn) {
  uint8_t buf[kReadChunk];
  for (;;) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity = Clock::now();
      if (conn->state == Conn::State::kDraining) {
        continue;  // discard input; we only flush the outbound tail
      }
      conn->assembler.Feed(BytesView(buf, static_cast<size_t>(n)));
      ProcessFrames(loop, conn);
      if (conn->dying) {
        return;
      }
      if (conn->state == Conn::State::kHandshaking &&
          conn->assembler.buffered() > kMaxHandshakeBuffer) {
        CloseConn(loop, conn);  // flooding the handshake phase
        return;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(loop, conn);  // EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    CloseConn(loop, conn);
    return;
  }
}

void ReactorGateway::ProcessFrames(Loop* loop,
                                   const std::shared_ptr<Conn>& conn) {
  for (;;) {
    if (conn->dying || conn->state == Conn::State::kDraining) {
      return;
    }
    if (conn->state == Conn::State::kHandshaking && conn->hs_inflight) {
      return;  // the pool task owns the handshake; frames wait buffered
    }
    auto frame = conn->assembler.Next();
    if (!frame) {
      if (conn->assembler.poisoned()) {
        CloseConn(loop, conn);  // oversize frame: hostile
      }
      return;
    }
    if (conn->state == Conn::State::kHandshaking) {
      if (!conn->awaiting_confirm) {
        // The hello costs two KEM operations — pool work, never loop
        // work. While it runs, this connection's frames stay buffered.
        conn->hs_inflight = true;
        {
          std::lock_guard<std::mutex> lock(hs_mu_);
          hs_tasks_++;
        }
        size_t loop_index = loop->index;
        pool_->Submit([this, conn, loop_index,
                       hello = std::move(*frame)]() {
          Rng rng = Rng::FromOsEntropy();
          auto resp = conn->handshake.OnHello(
              BytesView(hello), kGatewayLinkId, identity_,
              [this](uint64_t id) { return registry_->Lookup(id); }, rng);
          PostToLoop(loop_index,
                     [this, conn, resp = std::move(resp)]() mutable {
            conn->hs_inflight = false;
            if (conn->dying) {
              return;
            }
            Loop* owner = loops_[conn->loop_index].get();
            if (!resp) {
              CloseConn(owner, conn);  // unknown id / malformed hello
              return;
            }
            QueuePlain(owner, conn, BytesView(*resp));
            if (conn->dying) {
              return;
            }
            conn->awaiting_confirm = true;
            ProcessFrames(owner, conn);  // confirm may already be here
          });
          std::lock_guard<std::mutex> lock(hs_mu_);
          if (--hs_tasks_ == 0) {
            hs_cv_.notify_all();
          }
        });
        return;  // frames resume when the result posts back
      }
      // Confirm: one small AEAD open — fine on the loop.
      if (!conn->handshake.OnConfirm(BytesView(*frame))) {
        GwMetrics::Get().handshakes_failed->Add(1);
        CloseConn(loop, conn);
        return;
      }
      FinishHandshake(loop, conn);
      if (conn->dying) {
        return;
      }
      continue;
    }
    // Established: every frame is a sealed record.
    auto payload = conn->channel.Open(BytesView(*frame));
    if (!payload) {
      // Forged, replayed, reordered, or corrupted: kill the connection
      // so the failure is visible instead of resynchronizing silently.
      CloseConn(loop, conn);
      return;
    }
    auto client_frame = UnpackClientFrame(BytesView(*payload));
    if (!client_frame) {
      CloseConn(loop, conn);  // junk after an authenticated handshake
      return;
    }
    if (client_frame->type != ClientMsg::kSubmit) {
      continue;  // clients only ever send kSubmit; ignore the rest
    }
    auto msg = DecodeSubmit(BytesView(client_frame->body));
    if (!msg) {
      CloseConn(loop, conn);  // malformed submit envelope: hostile
      return;
    }
    conn->state = Conn::State::kStreaming;
    if (fault_plan_ != nullptr &&
        fault_plan_->DisconnectClient(conn->client_id)) {
      // Scenario-harness churn: the just-read submission is discarded
      // before it reaches the intake (missing verdict always means "not
      // accepted"); already-queued verdicts flush through the drain.
      StartDrain(loop, conn);
      return;
    }
    HandleSubmit(loop, conn, std::move(*msg));
  }
}

void ReactorGateway::FinishHandshake(Loop* loop,
                                     const std::shared_ptr<Conn>& conn) {
  conn->client_id = conn->handshake.peer_id();
  // The handshake only completes against the registered key; a failed
  // lookup here means the id was revoked mid-handshake.
  auto registered = registry_->Lookup(conn->client_id);
  if (!registered) {
    GwMetrics::Get().handshakes_failed->Add(1);
    CloseConn(loop, conn);
    return;
  }
  GwMetrics::Get().handshakes_ok->Add(1);
  conn->pk = *registered;
  conn->channel = conn->handshake.TakeChannel();
  conn->assembler.set_max_payload(kMaxFramePayload + kAeadTagSize);
  conn->state = Conn::State::kWelcomed;
  conn->counted_established = true;
  established_.fetch_add(1);

  GatewayWelcome welcome;
  welcome.credit = config_.credit_window;
  welcome.variant = static_cast<uint8_t>(round_->variant());
  welcome.plaintext_len =
      static_cast<uint32_t>(round_->layout().plaintext_len);
  welcome.padded_len = static_cast<uint32_t>(round_->layout().padded_len);
  welcome.num_points = static_cast<uint32_t>(round_->layout().num_points);
  for (uint32_t g = 0; g < round_->NumGroups(); g++) {
    welcome.entry_pks.push_back(round_->EntryPk(g));
  }
  if (round_->variant() == Variant::kTrap) {
    welcome.trustee_pk = round_->TrusteePk();
  }
  welcome.open_round = open_round_.load(std::memory_order_acquire);
  // No corrective-notice race here (unlike the blocking backend): round
  // broadcasts reach this connection as closures on this same loop, so
  // they are strictly ordered against this welcome — at worst the client
  // sees a duplicate notice.
  QueueRecord(loop, conn, BytesView(PackClientFrame(
      ClientMsg::kWelcome, BytesView(EncodeWelcome(welcome)))));
}

void ReactorGateway::HandleSubmit(Loop* loop,
                                  const std::shared_ptr<Conn>& conn,
                                  SubmitMsg msg) {
  if (open_round_.load(std::memory_order_acquire) == 0) {
    QueueResult(loop, conn, msg.seq, SubmitStatus::kClosed);
    return;
  }
  if (config_.require_sigs && !msg.has_sig) {
    QueueResult(loop, conn, msg.seq, SubmitStatus::kRejected);
    return;
  }
  StreamedSubmission item;
  if (msg.has_sig) {
    // Deferred to the pump's batched MSM, exactly like the blocking
    // backend; sign over the wire bytes so the pump re-encodes nothing.
    item.has_sig = true;
    item.sig_pk = conn->pk;
    item.sig = msg.sig;
    item.sig_msg = SubmissionSigMessage(BytesView(msg.submission));
  }
  uint32_t gid = 0;
  uint64_t submission_client = 0;
  if (round_->variant() == Variant::kTrap) {
    auto sub = DecodeTrapSubmission(BytesView(msg.submission));
    if (!sub) {
      QueueResult(loop, conn, msg.seq, SubmitStatus::kRejected);
      return;
    }
    gid = sub->entry_gid;
    submission_client = sub->client_id;
    item.trap = std::move(*sub);
  } else {
    auto sub = DecodeNizkSubmission(BytesView(msg.submission));
    if (!sub) {
      QueueResult(loop, conn, msg.seq, SubmitStatus::kRejected);
      return;
    }
    gid = sub->entry_gid;
    submission_client = sub->client_id;
    item.nizk = std::move(*sub);
  }
  if (submission_client != conn->client_id) {
    QueueResult(loop, conn, msg.seq, SubmitStatus::kForeignId);
    return;
  }
  if (gid >= round_->NumGroups() || !ServesGroup(gid)) {
    QueueResult(loop, conn, msg.seq, SubmitStatus::kRejected);
    return;
  }

  uint64_t cookie;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn->in_flight >= config_.credit_window) {
      cookie = 0;  // overdrawn: backpressure, not unbounded queueing
    } else {
      cookie = next_cookie_++;
      pending_[cookie] = PendingSubmit{conn, msg.seq};
      conn->in_flight++;
    }
  }
  if (cookie == 0) {
    QueueResult(loop, conn, msg.seq, SubmitStatus::kBackpressure);
    return;
  }
  item.cookie = cookie;
  if (!round_->StreamSubmit(std::move(item))) {
    // Shard ring full: the bound is the backpressure, not a stall.
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(cookie);
      conn->in_flight--;
    }
    QueueResult(loop, conn, msg.seq, SubmitStatus::kBackpressure);
    return;
  }
  SchedulePump(gid);
}

void ReactorGateway::SchedulePump(uint32_t gid) {
  pumps_[gid]->serial.Submit([this, gid] { PumpShard(gid); });
}

void ReactorGateway::PumpShard(uint32_t gid) {
  round_->PumpStream(
      gid, config_.verify_workers,
      [this](uint64_t cookie, bool accepted) {
        std::shared_ptr<Conn> conn;
        uint64_t seq = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pending_.find(cookie);
          if (it == pending_.end()) {
            return;
          }
          conn = it->second.conn;
          seq = it->second.seq;
          conn->in_flight--;
          pending_.erase(it);
        }
        resolved_.fetch_add(1, std::memory_order_relaxed);
        if (accepted) {
          accepted_.fetch_add(1, std::memory_order_relaxed);
        }
        // The verdict is sealed on the connection's own loop (the record
        // channel is loop-owned); a dead connection just drops it.
        PostToLoop(conn->loop_index, [this, conn, seq, accepted] {
          if (conn->dying) {
            return;
          }
          Loop* owner = loops_[conn->loop_index].get();
          QueueResult(owner, conn, seq,
                      accepted ? SubmitStatus::kAccepted
                               : SubmitStatus::kRejected);
        });
      });
}

void ReactorGateway::QueueRecord(Loop* loop,
                                 const std::shared_ptr<Conn>& conn,
                                 BytesView payload) {
  Bytes framed = EncodeFrame(BytesView(conn->channel.Seal(payload)));
  conn->out.insert(conn->out.end(), framed.begin(), framed.end());
  FlushWrites(loop, conn);
}

void ReactorGateway::QueuePlain(Loop* loop,
                                const std::shared_ptr<Conn>& conn,
                                BytesView payload) {
  Bytes framed = EncodeFrame(payload);
  conn->out.insert(conn->out.end(), framed.begin(), framed.end());
  FlushWrites(loop, conn);
}

void ReactorGateway::QueueResult(Loop* loop,
                                 const std::shared_ptr<Conn>& conn,
                                 uint64_t seq, SubmitStatus status) {
  // Every verdict that leaves the gateway is counted by outcome —
  // kBackpressure here is the client-visible face of the intake ring
  // bound and the credit window.
  GwMetrics::Get().verdicts[static_cast<size_t>(status)]->Add(1);
  QueueRecord(loop, conn, BytesView(PackClientFrame(
      ClientMsg::kSubmitResult,
      BytesView(EncodeSubmitResult(seq, status)))));
}

void ReactorGateway::FlushWrites(Loop* loop,
                                 const std::shared_ptr<Conn>& conn) {
  if (conn->dying) {
    return;
  }
  while (conn->out_pos < conn->out.size()) {
    ssize_t n = send(conn->fd, conn->out.data() + conn->out_pos,
                     conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;  // EPOLLOUT will resume the flush (edge on writability)
    }
    CloseConn(loop, conn);
    return;
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->state == Conn::State::kDraining) {
      CloseConn(loop, conn);  // tail flushed; the drain is complete
    }
    return;
  }
  // Residue: compact the sent prefix, and drop a peer that has let the
  // backlog grow past the bound (it stopped reading).
  if (conn->out_pos > kReadChunk) {
    conn->out.erase(conn->out.begin(),
                    conn->out.begin() + static_cast<long>(conn->out_pos));
    conn->out_pos = 0;
  }
  if (conn->out.size() - conn->out_pos > kMaxOutBuffer) {
    CloseConn(loop, conn);
  }
}

void ReactorGateway::CloseConn(Loop* loop,
                               const std::shared_ptr<Conn>& conn) {
  if (conn->dying) {
    return;
  }
  conn->dying = true;
  if (conn->counted_established) {
    conn->counted_established = false;
    established_.fetch_sub(1);
  }
  epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conn->fd = -1;
  total_conns_.fetch_sub(1);
  loop->conns.erase(conn->id);
}

void ReactorGateway::StartDrain(Loop* loop,
                                const std::shared_ptr<Conn>& conn) {
  if (conn->dying) {
    return;
  }
  if (conn->out_pos == conn->out.size()) {
    CloseConn(loop, conn);  // nothing to flush
    return;
  }
  conn->state = Conn::State::kDraining;
  conn->deadline = Clock::now() + kDrainTimeout;
  shutdown(conn->fd, SHUT_RD);  // we stop consuming; the tail still sends
}

void ReactorGateway::SweepDeadlines(Loop* loop) {
  auto now = Clock::now();
  if (now - loop->last_sweep < kSweepInterval) {
    return;
  }
  loop->last_sweep = now;
  std::vector<std::shared_ptr<Conn>> doomed;
  for (auto& [id, conn] : loop->conns) {
    if (conn->dying) {
      continue;
    }
    switch (conn->state) {
      case Conn::State::kHandshaking:
      case Conn::State::kDraining:
        if (now >= conn->deadline) {
          doomed.push_back(conn);  // stalled dialer / wedged drain: reap
        }
        break;
      case Conn::State::kWelcomed:
      case Conn::State::kStreaming:
        if (config_.idle_timeout_ms > 0 &&
            now - conn->last_activity >=
                std::chrono::milliseconds(config_.idle_timeout_ms)) {
          doomed.push_back(conn);
        }
        break;
    }
  }
  if (!doomed.empty()) {
    loop->reaps->Add(doomed.size());
  }
  for (auto& conn : doomed) {
    CloseConn(loop, conn);
  }
}

void ReactorGateway::Broadcast(ClientMsg type, BytesView body) {
  if (loops_.empty()) {
    return;  // not started
  }
  Bytes frame = PackClientFrame(type, body);
  for (size_t i = 0; i < loops_.size(); i++) {
    PostToLoop(i, [this, i, frame] {
      Loop* loop = loops_[i].get();
      std::vector<std::shared_ptr<Conn>> conns;
      conns.reserve(loop->conns.size());
      for (auto& [id, conn] : loop->conns) {
        if (!conn->dying && (conn->state == Conn::State::kWelcomed ||
                             conn->state == Conn::State::kStreaming)) {
          conns.push_back(conn);
        }
      }
      for (auto& conn : conns) {
        QueueRecord(loop, conn, BytesView(frame));
      }
    });
  }
}

GatewayFleet::GatewayFleet(Round* round, ClientRegistry* registry, Rng& rng,
                           GatewayBackend backend, GatewayConfig config,
                           ThreadPool* pool) {
  size_t groups = round->NumGroups();
  gateways_.reserve(groups);
  keys_.reserve(groups);
  for (size_t g = 0; g < groups; g++) {
    keys_.push_back(KemKeyGen(rng));
    GatewayConfig member = config;
    member.entry_group = static_cast<int64_t>(g);
    gateways_.push_back(MakeClientGateway(backend, round, registry,
                                          keys_.back(), member, pool));
  }
}

GatewayFleet::~GatewayFleet() { Stop(); }

bool GatewayFleet::Listen() {
  for (auto& gateway : gateways_) {
    if (!gateway->Listen(0)) {
      return false;
    }
  }
  return true;
}

void GatewayFleet::Start() {
  for (auto& gateway : gateways_) {
    gateway->Start();
  }
}

void GatewayFleet::Stop() {
  for (auto& gateway : gateways_) {
    gateway->Stop();
  }
}

void GatewayFleet::OpenRound(uint64_t round_id) {
  for (auto& gateway : gateways_) {
    gateway->OpenRound(round_id);
  }
}

void GatewayFleet::Cutoff() {
  // Each member drains exactly its own shard (entry_group), so together
  // they cover every group once.
  for (auto& gateway : gateways_) {
    gateway->Cutoff();
  }
}

void GatewayFleet::SetFaultPlan(const std::shared_ptr<FaultPlan>& plan) {
  for (auto& gateway : gateways_) {
    gateway->SetFaultPlan(plan);
  }
}

size_t GatewayFleet::ApplyRegistrySync(const RegistrySyncMsg& sync) {
  // Members share one registry; one apply covers the fleet.
  return gateways_.empty() ? 0 : gateways_[0]->ApplyRegistrySync(sync);
}

std::vector<GatewayEndpoint> GatewayFleet::Roster() const {
  std::vector<GatewayEndpoint> roster;
  roster.reserve(gateways_.size());
  for (size_t g = 0; g < gateways_.size(); g++) {
    roster.push_back(GatewayEndpoint{static_cast<uint32_t>(g),
                                     gateways_[g]->port(), keys_[g].pk});
  }
  return roster;
}

size_t GatewayFleet::accepted_count() const {
  size_t total = 0;
  for (const auto& gateway : gateways_) {
    total += gateway->accepted_count();
  }
  return total;
}

size_t GatewayFleet::connection_count() const {
  size_t total = 0;
  for (const auto& gateway : gateways_) {
    total += gateway->connection_count();
  }
  return total;
}

std::unique_ptr<ClientGateway> MakeClientGateway(
    GatewayBackend backend, Round* round, ClientRegistry* registry,
    KemKeypair identity, GatewayConfig config, ThreadPool* pool) {
  switch (backend) {
    case GatewayBackend::kReactor:
      return std::make_unique<ReactorGateway>(round, registry,
                                              std::move(identity), config,
                                              pool);
    case GatewayBackend::kThreadPerConnection:
    default:
      return std::make_unique<SubmissionGateway>(round, registry,
                                                 std::move(identity), config,
                                                 pool);
  }
}

}  // namespace atom
