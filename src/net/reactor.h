// ReactorGateway: the epoll edge-triggered client ingress tier.
//
// The thread-per-connection SubmissionGateway (src/net/gateway.h) burns a
// reader thread (and its stack) per client, which collapses around a few
// thousand sessions — far below the million-user deployments the paper
// sizes. The reactor serves the same protocol from a small fixed pool of
// event-loop threads owning non-blocking sockets:
//
//   loop 0..N-1:  epoll_wait -> read ready sockets to EAGAIN -> assemble
//                 frames -> advance each connection's state machine
//   pool tasks:   the expensive handshake step (KEM decrypt + encrypt)
//                 and, as ever, the shard pumps' signature/proof
//                 verification — an event loop never blocks on crypto
//
// Each connection is a state machine owned by exactly one loop (all of
// its mutable state is touched only on that loop's thread — no per-
// connection locks):
//
//   handshaking --hello/confirm--> welcomed --first kSubmit--> streaming
//        |                                                        |
//        +-- deadline/violation --> closed <-- drain flushed -- draining
//
// with bounded read/write buffers: a stalled dialer is reaped by the
// handshake deadline, an established-but-silent one by the idle timeout,
// and a peer that stops reading is dropped when its write buffer fills.
// Cross-thread work (handshake results, pump verdicts, broadcasts,
// Stop()) reaches a loop as posted closures through an eventfd, so
// Stop() closes every connection and joins every loop deterministically
// — no reader join can wedge on a blocked socket.
//
// Downstream the contract is byte-identical to SubmissionGateway: same
// wire protocol, same credit-window admission and kBackpressure
// semantics, same MPSC ring -> Round::StreamSubmit/PumpStream intake,
// same FaultPlan injection point (client disconnect after a kSubmit).
//
// GatewayFleet shards admission horizontally: one gateway per entry
// group over a shared Round and ClientRegistry, each admitting (and
// pumping) only its own group — the deployment shape for scaling ingress
// past one process's fd budget and one listener's accept rate.
#ifndef SRC_NET_REACTOR_H_
#define SRC_NET_REACTOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/net/gateway.h"

namespace atom {

class ReactorGateway : public ClientGateway {
 public:
  // Same contract as SubmissionGateway: `round` and `registry` must
  // outlive the gateway; `pool` backs handshake tasks and the shard pump
  // lanes (null = the process-wide shared pool).
  ReactorGateway(Round* round, ClientRegistry* registry, KemKeypair identity,
                 GatewayConfig config = {}, ThreadPool* pool = nullptr);
  ~ReactorGateway() override;

  ReactorGateway(const ReactorGateway&) = delete;
  ReactorGateway& operator=(const ReactorGateway&) = delete;

  bool Listen(uint16_t port = 0) override;
  uint16_t port() const override { return listener_.port(); }
  void Start() override;
  // Closes every connection and joins every loop deterministically; safe
  // against concurrent pump/handshake tasks (their posted results are
  // dropped once the loops stop). Idempotent.
  void Stop() override;

  const Point& pk() const override { return identity_.pk; }

  void OpenRound(uint64_t round_id) override;
  void Cutoff() override;
  size_t ApplyRegistrySync(const RegistrySyncMsg& sync) override;
  void SetFaultPlan(std::shared_ptr<FaultPlan> plan) override {
    fault_plan_ = std::move(plan);
  }

  size_t accepted_count() const override;
  size_t resolved_count() const override;
  // Established (welcomed) connections currently held.
  size_t connection_count() const override;

 private:
  struct Conn;
  struct Loop;
  struct ShardPump;

  void LoopMain(Loop* loop);
  bool PostToLoop(size_t loop_index, std::function<void()> fn);
  void AcceptReady(Loop* loop);
  void HandleReadable(Loop* loop, const std::shared_ptr<Conn>& conn);
  void ProcessFrames(Loop* loop, const std::shared_ptr<Conn>& conn);
  void FinishHandshake(Loop* loop, const std::shared_ptr<Conn>& conn);
  void HandleSubmit(Loop* loop, const std::shared_ptr<Conn>& conn,
                    SubmitMsg msg);
  void QueueRecord(Loop* loop, const std::shared_ptr<Conn>& conn,
                   BytesView payload);
  void QueuePlain(Loop* loop, const std::shared_ptr<Conn>& conn,
                  BytesView payload);
  void FlushWrites(Loop* loop, const std::shared_ptr<Conn>& conn);
  void QueueResult(Loop* loop, const std::shared_ptr<Conn>& conn,
                   uint64_t seq, SubmitStatus status);
  void CloseConn(Loop* loop, const std::shared_ptr<Conn>& conn);
  void StartDrain(Loop* loop, const std::shared_ptr<Conn>& conn);
  void SweepDeadlines(Loop* loop);
  void Broadcast(ClientMsg type, BytesView body);
  void SchedulePump(uint32_t gid);
  void PumpShard(uint32_t gid);
  bool ServesGroup(uint32_t gid) const;

  Round* const round_;
  ClientRegistry* const registry_;
  const KemKeypair identity_;
  const GatewayConfig config_;
  ThreadPool* const pool_;
  std::shared_ptr<FaultPlan> fault_plan_;  // set before Start()

  std::vector<std::unique_ptr<ShardPump>> pumps_;  // one per entry group
  std::vector<std::unique_ptr<Loop>> loops_;

  mutable std::mutex mu_;
  // Queued-but-unresolved submissions: cookie -> (connection, client seq).
  struct PendingSubmit {
    std::shared_ptr<Conn> conn;
    uint64_t seq = 0;
  };
  std::map<uint64_t, PendingSubmit> pending_;
  uint64_t next_cookie_ = 1;
  bool started_ = false;
  bool stopped_ = false;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> round_robin_{0};
  std::atomic<uint64_t> open_round_{0};
  std::atomic<size_t> accepted_{0};
  std::atomic<size_t> resolved_{0};
  std::atomic<size_t> established_{0};
  std::atomic<size_t> total_conns_{0};
  std::atomic<bool> stopping_{false};

  // In-flight handshake pool tasks; Stop() waits them out so none can
  // outlive the gateway (their posted results drop once the loops stop).
  std::mutex hs_mu_;
  std::condition_variable hs_cv_;
  size_t hs_tasks_ = 0;

  TcpListener listener_;
};

// One gateway per entry group over a shared Round + ClientRegistry: the
// horizontally sharded ingress deployment. Each member admits and pumps
// exactly its own group (GatewayConfig::entry_group), so the per-shard
// single-consumer intake contract holds across the fleet, and clients
// route by their message's entry group (FleetClient,
// src/net/client_session.h).
struct GatewayEndpoint {
  uint32_t gid = 0;
  uint16_t port = 0;
  Point pk;
};

class GatewayFleet {
 public:
  // Generates one identity key per member from `rng`. `config` is the
  // per-member template (entry_group is overwritten per shard).
  GatewayFleet(Round* round, ClientRegistry* registry, Rng& rng,
               GatewayBackend backend = GatewayBackend::kReactor,
               GatewayConfig config = {}, ThreadPool* pool = nullptr);
  ~GatewayFleet();

  GatewayFleet(const GatewayFleet&) = delete;
  GatewayFleet& operator=(const GatewayFleet&) = delete;

  // Binds every member on an ephemeral port; false if any bind fails.
  bool Listen();
  void Start();
  void Stop();

  void OpenRound(uint64_t round_id);
  void Cutoff();
  void SetFaultPlan(const std::shared_ptr<FaultPlan>& plan);
  size_t ApplyRegistrySync(const RegistrySyncMsg& sync);

  size_t size() const { return gateways_.size(); }
  ClientGateway& gateway(uint32_t gid) { return *gateways_[gid]; }

  // What a client needs to route: each shard's port and gateway key.
  std::vector<GatewayEndpoint> Roster() const;

  size_t accepted_count() const;
  size_t connection_count() const;

 private:
  std::vector<std::unique_ptr<ClientGateway>> gateways_;
  std::vector<KemKeypair> keys_;
};

}  // namespace atom

#endif  // SRC_NET_REACTOR_H_
