#include "src/net/registry.h"

#include <algorithm>

#include "src/util/serde.h"

namespace atom {
Bytes EncodeRegistrySync(uint64_t seq,
                         std::span<const ClientRecord> records) {
  ByteWriter w;
  w.U64(seq);
  w.U32(static_cast<uint32_t>(records.size()));
  for (const ClientRecord& record : records) {
    w.Raw(BytesView(record.Encode()));
  }
  return w.Take();
}

std::optional<RegistrySyncMsg> DecodeRegistrySync(BytesView bytes) {
  ByteReader r(bytes);
  auto seq = r.U64();
  auto count = r.U32();
  constexpr size_t kRecordSize = 8 + Point::kEncodedSize;
  if (!seq || !count || *count > kMaxRegistrySyncRecords ||
      *count > r.remaining() / kRecordSize) {
    return std::nullopt;
  }
  RegistrySyncMsg msg;
  msg.seq = *seq;
  msg.records.reserve(*count);
  for (uint32_t i = 0; i < *count; i++) {
    auto raw = r.Raw(kRecordSize);
    if (!raw) {
      return std::nullopt;
    }
    auto record = ClientRecord::Decode(BytesView(*raw));
    if (!record) {
      return std::nullopt;
    }
    msg.records.push_back(*record);
  }
  if (!r.Done()) {
    return std::nullopt;
  }
  return msg;
}

bool ClientRegistry::Register(const ClientRegistration& registration) {
  if (!VerifyClientRegistration(registration)) {
    return false;
  }
  return Add(registration.record);
}

bool ClientRegistry::Add(const ClientRecord& record) {
  if (record.client_id == 0 || record.pk.IsInfinity()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.emplace(record.client_id, record.pk).second;
}

size_t ClientRegistry::ApplySync(const RegistrySyncMsg& sync) {
  size_t added = 0;
  for (const ClientRecord& record : sync.records) {
    if (Add(record)) {
      added++;
    }
  }
  return added;
}

std::optional<Point> ClientRegistry::Lookup(uint64_t client_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client_id);
  if (it == clients_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool ClientRegistry::Revoke(uint64_t client_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.erase(client_id) > 0;
}

size_t ClientRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clients_.size();
}

std::vector<Bytes> ClientRegistry::EncodeSync(uint64_t first_seq) const {
  std::vector<ClientRecord> records;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records.reserve(clients_.size());
    for (const auto& [id, pk] : clients_) {
      records.push_back(ClientRecord{id, pk});
    }
  }
  std::vector<Bytes> frames;
  size_t offset = 0;
  uint64_t seq = first_seq;
  do {
    size_t n = std::min<size_t>(records.size() - offset,
                                kMaxRegistrySyncRecords);
    frames.push_back(EncodeRegistrySync(
        seq++, std::span(records).subspan(offset, n)));
    offset += n;
  } while (offset < records.size());
  return frames;
}

size_t ClientRegistry::SeedFromDirectory(const Directory& directory) {
  size_t added = 0;
  for (const ClientRecord& record : directory.clients()) {
    if (Add(record)) {
      added++;
    }
  }
  return added;
}

}  // namespace atom
