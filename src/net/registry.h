// Cross-group client registry: the gateway-side, thread-safe view of the
// Directory's registered clients (src/core/directory.h).
//
// Registration is global — one id namespace across every entry group, with
// duplicates rejected at registration time — which closes the id-squatting
// hole the per-group intake check cannot: before this registry, nothing
// stopped an attacker from claiming a victim's id at a *different* entry
// group for the epoch. A SubmissionGateway (src/net/gateway.h) authenticates
// every inbound client connection against this table (the SecureLink
// handshake proves possession of the registered key), and the Round's
// intake hook (Round::SetClientAuth) gates non-anonymous ids the same way.
//
// The registry syncs over the wire as a snapshot message (kRegistrySync in
// the client-facing control plane): a directory process pushes its client
// table to every gateway, which applies it with the same signature-free
// record validation the Directory already performed — the sync channel is
// authenticated, so re-verifying each Schnorr signature is optional and
// ApplySync accepts pre-verified records.
#ifndef SRC_NET_REGISTRY_H_
#define SRC_NET_REGISTRY_H_

#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "src/core/directory.h"

namespace atom {

// Cap on one sync frame's record count (the decoder rejects anything
// larger before allocating; the encoder chunks beneath it).
inline constexpr uint32_t kMaxRegistrySyncRecords = 1u << 20;

struct RegistrySyncMsg {
  uint64_t seq = 0;
  std::vector<ClientRecord> records;
};

// Wire form of a registry snapshot: u64 seq || u32 count || records.
// Decoding caps the count against the remaining bytes before allocating.
Bytes EncodeRegistrySync(uint64_t seq, std::span<const ClientRecord> records);
std::optional<RegistrySyncMsg> DecodeRegistrySync(BytesView bytes);

class ClientRegistry {
 public:
  ClientRegistry() = default;

  // Full registration path (a registry acting as its own authority):
  // verifies the signature and global uniqueness, exactly like
  // Directory::RegisterClient.
  bool Register(const ClientRegistration& registration);

  // Pre-verified record (sync apply / snapshot import). Still enforces
  // global uniqueness and rejects the reserved anonymous id.
  bool Add(const ClientRecord& record);

  // Applies a snapshot; returns the number of records newly added
  // (duplicates of already-known ids are skipped, not overwritten — the
  // first registration wins, matching the Directory).
  size_t ApplySync(const RegistrySyncMsg& sync);

  // The authenticated key for a client id; nullopt = not registered.
  std::optional<Point> Lookup(uint64_t client_id) const;

  // Drops a client's registration (key compromise / operator takedown).
  // Live SecureLinks are untouched — the handshake already completed —
  // but every later Lookup fails: new connections are refused at the
  // handshake and, because the Round's intake hook (SetClientAuth) goes
  // through this table, the revoked id's NEW submissions are rejected at
  // verification even on a surviving connection. Returns false when the
  // id was not registered.
  bool Revoke(uint64_t client_id);

  size_t size() const;

  // Snapshots the table into one or more sync frames, each at most
  // kMaxRegistrySyncRecords records (consecutive seq numbers from
  // `first_seq`) — a registry past the per-frame cap syncs in chunks
  // instead of emitting a frame every decoder rejects.
  std::vector<Bytes> EncodeSync(uint64_t first_seq) const;

  // Imports everything the Directory has registered (records there were
  // already signature-checked); returns the number newly added.
  size_t SeedFromDirectory(const Directory& directory);

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, Point> clients_;
};

}  // namespace atom

#endif  // SRC_NET_REGISTRY_H_
