#include "src/net/round_driver.h"

#include <algorithm>
#include <utility>

#include "src/core/wire.h"
#include "src/crypto/kem.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace atom {

namespace {

// Driver-side round telemetry (the fleet's servers carry their own engine
// metrics; these count what the coordinating process sees).
struct DriverMetrics {
  obs::Counter* rounds;
  obs::Counter* rounds_aborted;
  obs::Histogram* round_us;

  static DriverMetrics& Get() {
    static DriverMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      DriverMetrics out;
      out.rounds = reg.GetCounter("atom_driver_rounds_total");
      out.rounds_aborted = reg.GetCounter("atom_driver_rounds_aborted_total");
      out.round_us = reg.GetHistogram("atom_driver_round_duration_us");
      return out;
    }();
    return m;
  }
};

}  // namespace

DistributedRoundDriver::DistributedRoundDriver(TcpPeerMesh* mesh,
                                               std::vector<uint32_t> hosts)
    : mesh_(mesh), hosts_(std::move(hosts)) {
  ATOM_CHECK(mesh_ != nullptr);
  ATOM_CHECK_MSG(!hosts_.empty(), "need one host per topology group");
  unique_hosts_ = hosts_;
  std::sort(unique_hosts_.begin(), unique_hosts_.end());
  unique_hosts_.erase(
      std::unique(unique_hosts_.begin(), unique_hosts_.end()),
      unique_hosts_.end());
  mesh_->OnDriverEnvelope(
      [this](Envelope envelope) { HandleEnvelope(std::move(envelope)); });
  mesh_->OnPeerDown([this](uint32_t peer_id) { HandlePeerDown(peer_id); });
}

DistributedRoundDriver::~DistributedRoundDriver() {
  mesh_->OnDriverEnvelope(nullptr);
  mesh_->OnPeerDown(nullptr);
  std::vector<uint64_t> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, round] : rounds_) {
      if (!round->aborted) {
        round->aborted = true;
        round->abort_reason = "round " + std::to_string(id) +
                              ": driver destroyed before Wait";
      }
      abandoned.push_back(id);
    }
    cv_.notify_all();
  }
  // Only Wait() retires a round on the fleet; abandoned tickets would
  // otherwise pin the servers' bounded lane pools forever.
  for (uint64_t id : abandoned) {
    mesh_->BroadcastRoundDone(id, unique_hosts_);
  }
}

void DistributedRoundDriver::set_round_timeout(
    std::chrono::milliseconds timeout) {
  std::lock_guard<std::mutex> lock(mu_);
  round_timeout_ = timeout;
}

size_t DistributedRoundDriver::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rounds_.size();
}

uint64_t DistributedRoundDriver::Submit(EngineRound round) {
  ATOM_CHECK(round.topology != nullptr);
  ATOM_CHECK_MSG(round.faults.empty(),
                 "fault injection is in-process only; over the wire a "
                 "fault is a hostile server");
  const size_t layers = round.topology->NumLayers();
  const size_t width = round.topology->Width();
  ATOM_CHECK_MSG(layers >= 1 && width >= 1,
                 "topology must have at least one layer and one vertex");
  ATOM_CHECK_MSG(hosts_.size() == width, "need one host per topology group");
  ATOM_CHECK_MSG(round.groups.size() == width,
                 "need one GroupRuntime per topology vertex");
  ATOM_CHECK_MSG(round.entry.size() == width,
                 "need one entry batch per topology vertex");

  // The wire form of this round's plan, mirroring RoundEngine::Submit's
  // DAG construction (same adjacency, same hop indexing).
  WireRoundSpec spec;
  spec.variant = static_cast<uint8_t>(round.variant);
  spec.layers = static_cast<uint32_t>(layers);
  spec.width = static_cast<uint32_t>(width);
  spec.hop_workers = static_cast<uint32_t>(
      round.hop_workers < 1 ? 1 : round.hop_workers);
  spec.adjacency.resize(layers - 1);
  for (size_t layer = 0; layer + 1 < layers; layer++) {
    spec.adjacency[layer].resize(width);
    for (uint32_t g = 0; g < width; g++) {
      spec.adjacency[layer][g] = round.topology->Neighbors(layer, g);
    }
  }
  spec.hosts = hosts_;
  for (uint32_t g = 0; g < width; g++) {
    ATOM_CHECK(round.groups[g] != nullptr);
    spec.group_pks.push_back(round.groups[g]->pk());
  }
  // Commitments are the bulk of the spec (one hash per message per entry
  // group), and each host only ever checks its own groups' sets — so the
  // base spec ships empty sets and each host's kBeginRound carries just
  // the groups it hosts (moved, not copied: every gid has one host).
  std::vector<std::vector<std::array<uint8_t, 32>>> all_commitments;
  spec.commitments.resize(width);
  const Trustees* trustees = nullptr;
  if (round.exit.has_value()) {
    spec.native_exit = true;
    spec.plaintext_len =
        static_cast<uint32_t>(round.exit->layout.plaintext_len);
    spec.padded_len = static_cast<uint32_t>(round.exit->layout.padded_len);
    spec.num_points = static_cast<uint32_t>(round.exit->layout.num_points);
    if (round.variant == Variant::kTrap) {
      trustees = round.exit->trustees;
      ATOM_CHECK_MSG(trustees != nullptr,
                     "trap exit plan needs a trustee group");
      ATOM_CHECK_MSG(round.exit->commitments.size() == width,
                     "need one commitment set per entry group");
      all_commitments = std::move(round.exit->commitments);
    }
  }

  const uint64_t round_id = mesh_->AllocateRoundId();
  DriverMetrics::Get().rounds->Add(1);
  auto pending = std::make_shared<PendingRound>();
  pending->round_id = round_id;
  if (obs::TimingEnabled() || obs::Trace::Enabled()) {
    pending->submit_us = obs::Trace::NowUs();
  }
  pending->width = width;
  pending->layers = layers;
  pending->variant = round.variant;
  pending->hop_workers = spec.hop_workers;
  pending->native_exit = spec.native_exit;
  pending->trustees = trustees;
  pending->exits.resize(width);
  pending->exits_got.assign(width, false);
  pending->reports.resize(width);
  pending->inner.resize(width);
  pending->plains.resize(width);
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending->deadline = std::chrono::steady_clock::now() + round_timeout_;
    // Registered before any frame leaves, so a server's instant abort
    // reply (e.g. lane bound exceeded) finds its round.
    rounds_[round_id] = pending;
  }

  // Phase 1: open the round on every hosting server, ack-synchronized so
  // the root key and commitments land before any traffic that depends on
  // them (hop batches arrive on different links than ours).
  {
    obs::TraceSpan begin_span("begin_round", "driver", round_id);
    for (uint32_t host : unique_hosts_) {
      WireRoundSpec host_spec = spec;
      if (!all_commitments.empty()) {
        for (uint32_t g = 0; g < width; g++) {
          if (hosts_[g] == host) {
            host_spec.commitments[g] = std::move(all_commitments[g]);
          }
        }
      }
      if (!mesh_->SendBeginRound(host, round_id, round.seed, &host_spec)) {
        std::lock_guard<std::mutex> lock(mu_);
        AbortLocked(*pending, "round " + std::to_string(round_id) +
                                  ": server " + std::to_string(host) +
                                  " unreachable at round start");
        return round_id;
      }
    }
  }

  // Phase 2: flush the entry batches — round r+1's intake enters the
  // network while round r is still mixing. Coalesced (the default), every
  // entry batch one host serves travels as a single kEnvelopeBundle
  // through the mesh's sender lane, so encoding host n+1's bundle
  // overlaps the socket write of host n's; the legacy path serializes
  // one frame per group inline.
  obs::TraceSpan flush_span("intake_flush", "driver", round_id);
  if (coalesce_entries_) {
    std::map<uint32_t, std::vector<Envelope>> by_host;
    for (uint32_t g = 0; g < width; g++) {
      NodeMsg msg;
      msg.type = NodeMsg::Type::kHopBatch;
      msg.gid = g;
      msg.chain_pos = 0;
      msg.prev_pos = 0;
      msg.batch = std::move(round.entry[g]);
      by_host[hosts_[g]].push_back(
          Envelope{hosts_[g], std::move(msg), round_id});
    }
    for (auto& [host, envelopes] : by_host) {
      const uint32_t gid = envelopes[0].msg.gid;
      const uint32_t count = static_cast<uint32_t>(envelopes.size());
      Bytes body = count == 1 ? EncodeEnvelope(envelopes[0])
                              : EncodeEnvelopeBundle(envelopes);
      LinkMsg type =
          count == 1 ? LinkMsg::kEnvelope : LinkMsg::kEnvelopeBundle;
      if (!mesh_->SendFrameAsync(host, type, std::move(body), round_id,
                                 gid, count)) {
        std::lock_guard<std::mutex> lock(mu_);
        AbortLocked(*pending, "round " + std::to_string(round_id) +
                                  ": entry send to server " +
                                  std::to_string(host) + " failed");
        return round_id;
      }
    }
    return round_id;
  }
  for (uint32_t g = 0; g < width; g++) {
    NodeMsg msg;
    msg.type = NodeMsg::Type::kHopBatch;
    msg.gid = g;
    msg.chain_pos = 0;
    msg.prev_pos = 0;
    msg.batch = std::move(round.entry[g]);
    Envelope envelope{hosts_[g], std::move(msg), round_id};
    if (!mesh_->SendFrame(hosts_[g], LinkMsg::kEnvelope,
                          BytesView(EncodeEnvelope(envelope)))) {
      std::lock_guard<std::mutex> lock(mu_);
      AbortLocked(*pending, "round " + std::to_string(round_id) +
                                ": entry send to server " +
                                std::to_string(hosts_[g]) + " failed");
      return round_id;
    }
  }
  return round_id;
}

void DistributedRoundDriver::AbortLocked(PendingRound& round,
                                         std::string reason) {
  if (!round.aborted) {
    round.aborted = true;
    round.abort_reason = std::move(reason);
  }
  cv_.notify_all();
}

void DistributedRoundDriver::HandleEnvelope(Envelope envelope) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rounds_.find(envelope.round_id);
  if (it == rounds_.end()) {
    return;  // late frame for a resolved round: drop
  }
  PendingRound& round = *it->second;
  NodeMsg& msg = envelope.msg;
  switch (msg.type) {
    case NodeMsg::Type::kAbort:
      AbortLocked(round, "round " + std::to_string(round.round_id) + ": " +
                             msg.abort_reason);
      return;
    case NodeMsg::Type::kHopBatch:
      // chain_pos == layers marks a raw exit batch (no native exit plan).
      if (!round.native_exit && msg.chain_pos == round.layers &&
          msg.gid < round.width && !round.exits_got[msg.gid]) {
        round.exits_got[msg.gid] = true;
        round.exits[msg.gid] = std::move(msg.batch);
        round.exits_seen++;
        cv_.notify_all();
      }
      return;
    case NodeMsg::Type::kExitReport:
      if (round.native_exit && round.variant == Variant::kTrap &&
          msg.gid < round.width && !round.reports[msg.gid].has_value()) {
        round.reports[msg.gid] = msg.report;
        round.inner[msg.gid] = std::move(msg.exit_inner);
        round.reports_seen++;
        cv_.notify_all();
      }
      return;
    case NodeMsg::Type::kExitPlain:
      if (round.native_exit && round.variant == Variant::kNizk &&
          msg.gid < round.width && !round.plains[msg.gid].has_value()) {
        round.plains[msg.gid] = std::move(msg.exit_inner);
        round.plains_seen++;
        cv_.notify_all();
      }
      return;
    default:
      return;  // legacy chain traffic is not ours
  }
}

void DistributedRoundDriver::HandlePeerDown(uint32_t peer_id) {
  if (std::find(unique_hosts_.begin(), unique_hosts_.end(), peer_id) ==
      unique_hosts_.end()) {
    return;
  }
  // Per-round aborts, never a per-deployment failure: every round still
  // in flight loses this host; rounds submitted after a roster repair
  // start clean.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, round] : rounds_) {
    if (!round->Complete()) {
      AbortLocked(*round, "round " + std::to_string(id) + ": server " +
                              std::to_string(peer_id) +
                              " disconnected mid-round");
    }
  }
}

EngineRoundResult DistributedRoundDriver::Finalize(PendingRound& round) {
  EngineRoundResult result;
  if (round.aborted) {
    result.aborted = true;
    result.abort_reason = round.abort_reason;
    if (round.native_exit) {
      result.round.aborted = true;
      result.round.abort_reason = round.abort_reason;
    }
    return result;
  }
  if (!round.native_exit) {
    result.exits = std::move(round.exits);
    return result;
  }
  RoundResult& out = result.round;
  if (round.variant == Variant::kNizk) {
    for (size_t g = 0; g < round.width; g++) {
      for (Bytes& p : *round.plains[g]) {
        out.plaintexts.push_back(std::move(p));
      }
    }
    return result;
  }
  // Trap finalize, mirroring RoundEngine::ExecuteExitFinalize: reports in
  // ascending gid order, trustee decision, then pooled KEM decryption of
  // the gathered inner ciphertexts in the same flatten order.
  std::vector<GroupReport> reports;
  reports.reserve(round.width);
  for (size_t g = 0; g < round.width; g++) {
    reports.push_back(*round.reports[g]);
    out.traps_seen += reports.back().num_traps;
    out.inner_seen += reports.back().num_inner;
  }
  auto round_secret = round.trustees->MaybeReleaseKey(reports);
  if (!round_secret.has_value()) {
    out.aborted = true;
    // Round-scoped like every other driver abort: finalize runs on the
    // Wait caller's thread, but the failure is still one round's.
    out.abort_reason =
        "round " + std::to_string(round.round_id) +
        ": trustees refused to release the round key (trap check failed)";
    result.aborted = true;
    result.abort_reason = out.abort_reason;
    return result;
  }
  std::vector<const Bytes*> flat;
  for (size_t g = 0; g < round.width; g++) {
    for (const Bytes& ct : round.inner[g]) {
      flat.push_back(&ct);
    }
  }
  std::vector<std::optional<Bytes>> decrypted(flat.size());
  ParallelFor(round.hop_workers, flat.size(), [&](size_t i) {
    decrypted[i] = KemDecrypt(*round_secret, BytesView(*flat[i]));
  });
  for (auto& msg : decrypted) {
    if (msg.has_value()) {
      out.plaintexts.push_back(std::move(*msg));
    }
  }
  return result;
}

EngineRoundResult DistributedRoundDriver::Wait(uint64_t ticket) {
  std::shared_ptr<PendingRound> round;
  {
    // From the driver's seat this wait IS the fleet's mixing + exit work:
    // everything between the entry flush and the last collected report.
    obs::TraceSpan collect_span("collect", "driver", ticket);
    std::unique_lock<std::mutex> lock(mu_);
    auto it = rounds_.find(ticket);
    ATOM_CHECK_MSG(it != rounds_.end(),
                   "unknown or already-waited ticket");
    round = it->second;
    bool done = cv_.wait_until(lock, round->deadline,
                               [&] { return round->Complete(); });
    if (!done) {
      AbortLocked(*round, "round " + std::to_string(ticket) +
                              ": timed out waiting for the fleet");
    }
    rounds_.erase(ticket);
  }
  // Heavy finalize work (trustee decision, KEM decryption) runs on the
  // caller's thread, outside the lock — reader threads stay light.
  EngineRoundResult result;
  {
    obs::TraceSpan finalize_span("finalize", "driver", ticket);
    result = Finalize(*round);
  }
  DriverMetrics& metrics = DriverMetrics::Get();
  if (result.aborted) {
    metrics.rounds_aborted->Add(1);
  }
  if (round->submit_us >= 0) {
    const int64_t dur_us = obs::Trace::NowUs() - round->submit_us;
    metrics.round_us->Observe(static_cast<uint64_t>(dur_us));
    if (obs::Trace::Enabled()) {
      obs::TraceEvent event;
      event.name = "driver_round";
      event.cat = "driver";
      event.ts_us = round->submit_us;
      event.dur_us = dur_us;
      event.round_id = ticket;
      obs::Trace::Emit(event);
    }
  }
  // Retire the round on the fleet so the bounded lane pools free up.
  mesh_->BroadcastRoundDone(ticket, unique_hosts_);
  return result;
}

}  // namespace atom
