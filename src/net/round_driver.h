// DistributedRoundDriver: RoundEngine semantics over the TCP peer mesh.
//
// The in-process RoundEngine (src/core/engine.h) pipelines rounds through
// the permutation network on one machine; this driver runs the same
// Submit(EngineRound)/Wait(ticket) contract against a fleet of
// NodeProcess servers, one host per topology group. Submit ships the
// round's spec — root key, topology adjacency, host map, group keys,
// layout, and THIS round's trap commitments — as an ack-synchronized
// kBeginRound to every hosting server, then flushes the entry batches as
// round-tagged kHopBatch envelopes and returns immediately: round r+1's
// intake enters the network while round r is still mixing, which is the
// paper's §4.7 throughput mode with no global run barrier on the wire.
//
// Execution is split exactly along the engine's task boundaries:
//
//   * mixing hops and the exit sort/check stages run on the hosting
//     servers (see src/net/node_process.h), with hop randomness derived
//     from the round root by hop index — the engine's derivation — so a
//     seeded round produces byte-identical results on either executor;
//   * the finalize stage (trustee decision + inner-ciphertext KEM
//     decryption, or NIZK plaintext concatenation) runs here, on the
//     Wait caller's thread, from the servers' kExitReport/kExitPlain
//     messages gathered in ascending group order.
//
// Failures are per-round, never per-deployment: a peer that dies, a hop
// that trips, or a round that exceeds its deadline aborts THAT round with
// a round-scoped reason while other in-flight rounds keep mixing; a fresh
// round submitted after the roster is repaired completes normally.
//
// Lifetime: the driver registers itself as the mesh's envelope sink and
// unregisters in its destructor (the mesh blocks the unregistration on
// any in-flight callback, so teardown is race-free); the mesh itself
// must simply outlive the driver.
#ifndef SRC_NET_ROUND_DRIVER_H_
#define SRC_NET_ROUND_DRIVER_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/net/mesh.h"

namespace atom {

class DistributedRoundDriver {
 public:
  // `mesh` must be a driver-role mesh with its roster already connected
  // (ConnectAndPushRoster) and must outlive this object. hosts[gid] names
  // the server executing group gid's hops; every named server must have
  // received that group's kHostGroup material.
  DistributedRoundDriver(TcpPeerMesh* mesh, std::vector<uint32_t> hosts);
  ~DistributedRoundDriver();

  DistributedRoundDriver(const DistributedRoundDriver&) = delete;
  DistributedRoundDriver& operator=(const DistributedRoundDriver&) = delete;

  // Ships the round to the fleet and starts it. Mirrors
  // RoundEngine::Submit: entry batches are moved out of the spec, the
  // ticket is waited on once, and several submitted rounds overlap in
  // flight. spec.faults must be empty (fault injection is a test-side
  // concern; over the wire a fault is a hostile server). Never blocks on
  // mixing — only on the ack round-trip for the kBeginRound fan-out.
  uint64_t Submit(EngineRound round);

  // Blocks until the round resolves and returns its result — byte-
  // identical to RoundEngine::Wait for the same (spec, seed) when the
  // round completes cleanly. A round that exceeds the deadline aborts
  // with a round-scoped reason instead of hanging.
  EngineRoundResult Wait(uint64_t ticket);

  // Rounds submitted but not yet waited/resolved.
  size_t InFlight() const;

  void set_round_timeout(std::chrono::milliseconds timeout);
  // Entry-flush coalescing (default on): every entry batch one host
  // serves ships as one kEnvelopeBundle via the mesh's sender lane. Off
  // selects the legacy inline one-frame-per-group flush (before/after
  // bench rows). Set before Submit.
  void set_coalesce_entries(bool on) { coalesce_entries_ = on; }

 private:
  struct PendingRound {
    uint64_t round_id = 0;
    size_t width = 0;
    size_t layers = 0;
    Variant variant = Variant::kTrap;
    size_t hop_workers = 1;
    bool native_exit = false;
    const Trustees* trustees = nullptr;
    std::chrono::steady_clock::time_point deadline;

    // Collected per-gid slots (ascending-gid finalize order).
    std::vector<CiphertextBatch> exits;           // no exit plan
    std::vector<bool> exits_got;
    size_t exits_seen = 0;
    std::vector<std::optional<GroupReport>> reports;  // trap exit plan
    std::vector<std::vector<Bytes>> inner;
    size_t reports_seen = 0;
    std::vector<std::optional<std::vector<Bytes>>> plains;  // nizk plan
    size_t plains_seen = 0;

    bool aborted = false;
    std::string abort_reason;  // first abort wins
    // Trace::NowUs() at Submit (sampled when tracing/timing is on, -1
    // otherwise) so Wait can emit the round's full driver-side lifetime.
    int64_t submit_us = -1;

    bool Complete() const {
      if (aborted) {
        return true;
      }
      if (!native_exit) {
        return exits_seen >= width;
      }
      return variant == Variant::kTrap ? reports_seen >= width
                                       : plains_seen >= width;
    }
  };

  void HandleEnvelope(Envelope envelope);
  void HandlePeerDown(uint32_t peer_id);
  void AbortLocked(PendingRound& round, std::string reason);
  EngineRoundResult Finalize(PendingRound& round);

  TcpPeerMesh* mesh_;
  const std::vector<uint32_t> hosts_;
  std::vector<uint32_t> unique_hosts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, std::shared_ptr<PendingRound>> rounds_;
  std::chrono::milliseconds round_timeout_{std::chrono::seconds(120)};
  bool coalesce_entries_ = true;
};

}  // namespace atom

#endif  // SRC_NET_ROUND_DRIVER_H_
