#include "src/net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace atom {
namespace {

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<TcpSocket> TcpSocket::Dial(const std::string& host,
                                         uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string port_str = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0) {
    return std::nullopt;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      continue;
    }
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      break;
    }
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) {
    return std::nullopt;
  }
  SetNoDelay(fd);
  return TcpSocket(fd);
}

bool TcpSocket::SendAll(BytesView data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = send(fd_, data.data() + off, data.size() - off,
                     MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool TcpSocket::SendAllVec(const BytesView* parts, size_t n) {
  // MSG_NOSIGNAL has no writev equivalent, so use sendmsg with the same
  // flag; iovecs are rebuilt after a partial write to resume mid-part.
  constexpr size_t kMaxIov = 16;
  struct iovec iov[kMaxIov];
  size_t part = 0;   // first part not fully sent
  size_t off = 0;    // bytes of parts[part] already sent
  while (part < n) {
    size_t iovs = 0;
    for (size_t i = part; i < n && iovs < kMaxIov; i++) {
      size_t skip = (i == part) ? off : 0;
      if (parts[i].size() <= skip) {
        continue;
      }
      iov[iovs].iov_base =
          const_cast<uint8_t*>(parts[i].data() + skip);
      iov[iovs].iov_len = parts[i].size() - skip;
      iovs++;
    }
    if (iovs == 0) {
      return true;  // only empty parts remained
    }
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovs;
    ssize_t sent = sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    size_t advanced = static_cast<size_t>(sent);
    while (part < n && advanced >= parts[part].size() - off) {
      advanced -= parts[part].size() - off;
      part++;
      off = 0;
    }
    off += advanced;
  }
  return true;
}

bool TcpSocket::RecvAll(uint8_t* out, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t got = recv(fd_, out + off, n - off, 0);
    if (got < 0 && errno == EINTR) {
      continue;
    }
    if (got <= 0) {
      return false;  // EOF or error
    }
    off += static_cast<size_t>(got);
  }
  return true;
}

void TcpSocket::SetRecvTimeout(int millis) {
  if (fd_ < 0) {
    return;
  }
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void TcpSocket::SetSendTimeout(int millis) {
  if (fd_ < 0) {
    return;
  }
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void TcpSocket::ShutdownBoth() {
  if (fd_ >= 0) {
    shutdown(fd_, SHUT_RDWR);
  }
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

int TcpSocket::Release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void TcpSocket::SetNonBlocking(bool enabled) {
  if (fd_ < 0) {
    return;
  }
  int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) {
    return;
  }
  fcntl(fd_, F_SETFL,
        enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK));
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

std::optional<TcpListener> TcpListener::Bind(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return std::nullopt;
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  // A deep backlog: the reactor gateway rides connection storms (a flash
  // crowd of clients dialing at once) and drains accepts in batches; the
  // kernel clamps this to somaxconn.
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 4096) != 0) {
    close(fd);
    return std::nullopt;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    return std::nullopt;
  }
  TcpListener out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

std::optional<TcpSocket> TcpListener::Accept() {
  if (fd_ < 0) {
    return std::nullopt;
  }
  for (;;) {
    int fd = accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      return TcpSocket(fd);
    }
    if (errno != EINTR) {
      return std::nullopt;
    }
  }
}

void TcpListener::Shutdown() {
  if (fd_ >= 0) {
    shutdown(fd_, SHUT_RDWR);
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace atom
