// Thin RAII wrappers over POSIX TCP sockets: blocking connect/accept and
// full-buffer send/recv, which is all the transport needs — framing,
// encryption, and reconnect policy live above this layer (src/net/link.h,
// src/net/mesh.h). Loopback and LAN deployments both go through here; the
// wrappers never throw and report failure by return value so a dead peer
// is a recoverable protocol event, not a crash.
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/util/bytes.h"

namespace atom {

// A connected TCP stream. Move-only; closes on destruction.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket() { Close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  // Connects to host:port (numeric IP or resolvable name). nullopt on
  // failure. Sets TCP_NODELAY: protocol frames are latency-sensitive.
  static std::optional<TcpSocket> Dial(const std::string& host,
                                       uint16_t port);

  bool valid() const { return fd_ >= 0; }

  // Writes all of `data`; false on any error (peer gone). SIGPIPE is
  // suppressed so a dead peer surfaces as a return value.
  bool SendAll(BytesView data);

  // Scatter-gather send: writes `parts[0..n)` back-to-back as if they had
  // been concatenated, without the concatenation copy (writev under the
  // hood, with the usual EINTR / partial-write resume).
  bool SendAllVec(const BytesView* parts, size_t n);

  // Reads exactly n bytes; false on EOF or error.
  bool RecvAll(uint8_t* out, size_t n);

  // Bounds blocking reads (0 = no timeout). Used during handshakes so a
  // peer that connects and goes silent cannot stall the accept loop.
  void SetRecvTimeout(int millis);

  // Bounds blocking writes (0 = no timeout). The client gateway sets this
  // so a peer that stops reading (zero TCP window) fails the send instead
  // of wedging broadcast and verdict paths forever.
  void SetSendTimeout(int millis);

  // Unblocks any thread inside SendAll/RecvAll (they will fail) without
  // releasing the descriptor; safe to call concurrently with them.
  void ShutdownBoth();

  void Close();

  // The raw descriptor (for epoll registration); -1 when invalid. The
  // socket retains ownership.
  int fd() const { return fd_; }

  // Relinquishes ownership of the descriptor to the caller (the reactor
  // takes over the fd's lifetime); the socket becomes invalid.
  int Release();

  // Toggles O_NONBLOCK (the reactor's event loops own non-blocking
  // sockets; SendAll/RecvAll assume blocking mode).
  void SetNonBlocking(bool enabled);

 private:
  int fd_ = -1;
};

// A listening TCP socket. Move-only; closes on destruction.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds (port 0 picks an ephemeral port) and listens on all interfaces.
  static std::optional<TcpListener> Bind(uint16_t port);

  // The actually-bound port (useful after Bind(0)).
  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  // Blocks for one inbound connection; nullopt once Close()/ShutdownBoth
  // has been called from another thread or on error.
  std::optional<TcpSocket> Accept();

  // Unblocks a concurrent Accept (it returns nullopt).
  void Shutdown();

  void Close();

  // The raw descriptor (for epoll-driven accept); -1 when invalid. The
  // listener retains ownership.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace atom

#endif  // SRC_NET_SOCKET_H_
