#include "src/obs/export.h"

#include <cstdio>
#include <string>

namespace atom {
namespace obs {

MetricsHttpServer::MetricsHttpServer(Registry* registry)
    : registry_(registry != nullptr ? registry : &Registry::Global()) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(uint16_t port) {
  auto listener = TcpListener::Bind(port);
  if (!listener) {
    return false;
  }
  listener_ = std::move(*listener);
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

uint16_t MetricsHttpServer::port() const { return listener_.port(); }

void MetricsHttpServer::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  listener_.Shutdown();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  listener_.Close();
}

void MetricsHttpServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_.Accept();
    if (!conn) {
      return;  // Stop() shut the listener down
    }
    // Drain the request line so well-behaved clients don't see a reset;
    // the body served is the same regardless of path. A client that
    // connects and goes silent cannot wedge the loop past the timeout.
    conn->SetRecvTimeout(2000);
    uint8_t byte = 0;
    uint8_t prev = 0;
    for (int i = 0; i < 4096; i++) {
      if (!conn->RecvAll(&byte, 1)) {
        break;
      }
      if (prev == '\r' && byte == '\n') {
        break;
      }
      prev = byte;
    }
    std::string body = registry_->ExpositionText();
    char header[160];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  body.size());
    conn->SetSendTimeout(2000);
    if (conn->SendAll(BytesView(
            reinterpret_cast<const uint8_t*>(header),
            std::char_traits<char>::length(header)))) {
      conn->SendAll(BytesView(reinterpret_cast<const uint8_t*>(body.data()),
                              body.size()));
    }
  }
}

}  // namespace obs
}  // namespace atom
