// Fleet observability, part 3 (local half): a minimal plaintext HTTP
// endpoint serving a Registry's Prometheus-style exposition, for the
// optional per-process --metrics-port flag. One accept-loop thread; each
// connection gets a fresh snapshot and is closed — no keep-alive, no
// request parsing beyond draining the request line, which is all a
// scraper (or `curl`) needs. The cross-process half of export — the
// kMetricsSnapshot control frame — lives in src/net/control.h and
// src/net/mesh.h, because it rides the authenticated mesh links.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <thread>

#include "src/net/socket.h"
#include "src/obs/metrics.h"

namespace atom {
namespace obs {

class MetricsHttpServer {
 public:
  // Serves `registry` (Registry::Global() when null). Call Start() to
  // bind and begin serving.
  explicit MetricsHttpServer(Registry* registry = nullptr);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds (port 0 picks an ephemeral port) and starts the accept loop.
  bool Start(uint16_t port);
  // The actually-bound port (after Start(0)).
  uint16_t port() const;
  // Stops the accept loop and joins it. Idempotent; the dtor calls it.
  void Stop();

 private:
  void AcceptLoop();

  Registry* registry_;
  TcpListener listener_;
  std::thread accept_thread_;
  bool running_ = false;
};

}  // namespace obs
}  // namespace atom

#endif  // SRC_OBS_EXPORT_H_
